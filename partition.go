package temporalrank

import "fmt"

// A Partitioner assigns a global series ID to one of n shards. The
// paper's query family top-k(t1, t2, agg) decomposes over disjoint
// object partitions — a global top-k is a k-way merge of per-partition
// top-k answers — so any total, deterministic assignment is correct;
// the choice only affects balance. A Partitioner must be pure: the same
// (id, n) always yields the same shard in [0, n).
type Partitioner func(id, shards int) int

// HashPartition is the default Partitioner: a splitmix64 fingerprint of
// the series ID modulo the shard count. It decorrelates shard
// assignment from ID order, so datasets whose IDs encode ingest time or
// tenant grouping still spread evenly.
func HashPartition(id, shards int) int {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// ModuloPartition assigns id % shards — round-robin by ID. Perfectly
// balanced when IDs are dense, and handy in tests because the
// assignment is obvious by eye.
func ModuloPartition(id, shards int) int { return id % shards }

// checkPartition validates one Partitioner output before it is trusted
// to index into the shard table.
func checkPartition(p Partitioner, id, shards int) (int, error) {
	s := p(id, shards)
	if s < 0 || s >= shards {
		return 0, fmt.Errorf("temporalrank: partitioner put series %d on shard %d, want [0,%d): %w", id, s, shards, ErrBadConfig)
	}
	return s, nil
}
