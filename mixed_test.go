package temporalrank_test

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"temporalrank"
)

// This file is the randomized mixed-workload acceptance suite for the
// write-optimized ingest path: interleaved appends and queries, across
// every index method, with the memtable on and off, must answer
// exactly like a brute-force DB fed the same appends — at every step,
// with compactions forced mid-stream. Run under -race.

// mixedState drives one interleaved workload: it owns the reference DB
// (brute force over the same appends) and the per-series frontier so
// generated appends always land past each series' end.
type mixedState struct {
	t   *testing.T
	rng *rand.Rand
	ref *temporalrank.DB
	// end/val track each series' frontier vertex, mirrored on every
	// successful append.
	end []float64
	val []float64
}

func newMixedState(t *testing.T, inputs []temporalrank.SeriesInput, seed int64) *mixedState {
	t.Helper()
	ref, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	s := &mixedState{
		t:   t,
		rng: rand.New(rand.NewSource(seed)),
		ref: ref,
		end: make([]float64, len(inputs)),
		val: make([]float64, len(inputs)),
	}
	for i, in := range inputs {
		s.end[i] = in.Times[len(in.Times)-1]
		s.val[i] = in.Values[len(in.Values)-1]
	}
	return s
}

// appender is the write half of a system under test (Planner or
// Cluster).
type appender interface {
	Append(id int, t, v float64) error
}

// step applies one random append to both the system under test and the
// reference; occasionally it deliberately violates the frontier rule
// and demands that both sides reject it identically.
func (s *mixedState) append(sys appender, label string) {
	s.t.Helper()
	id := s.rng.Intn(len(s.end))
	if s.rng.Intn(12) == 0 {
		// Bad append: at or before the frontier. Both sides must refuse,
		// and refuse without mutating anything.
		bad := s.end[id] - s.rng.Float64()
		if err := sys.Append(id, bad, 1); err == nil {
			s.t.Fatalf("%s: append(%d, %g) behind frontier %g accepted", label, id, bad, s.end[id])
		}
		if err := s.ref.Append(id, bad, 1); err == nil {
			s.t.Fatalf("reference accepted append(%d, %g) behind frontier %g", id, bad, s.end[id])
		}
		return
	}
	tt := s.end[id] + 0.1 + s.rng.Float64()*4
	v := s.val[id] + s.rng.NormFloat64()*3
	if err := sys.Append(id, tt, v); err != nil {
		s.t.Fatalf("%s: append(%d, %g, %g): %v", label, id, tt, v, err)
	}
	if err := s.ref.Append(id, tt, v); err != nil {
		s.t.Fatalf("reference append(%d, %g, %g): %v", id, tt, v, err)
	}
	s.end[id], s.val[id] = tt, v
}

// query builds one random query spanning data both in the base and at
// the appended frontier.
func (s *mixedState) query(kmax int, maxEps float64) temporalrank.Query {
	span := s.ref.End() - s.ref.Start()
	t1 := s.ref.Start() + s.rng.Float64()*span*0.9
	t2 := t1 + s.rng.Float64()*(s.ref.End()-t1)
	k := 1 + s.rng.Intn(kmax)
	var q temporalrank.Query
	switch s.rng.Intn(3) {
	case 0:
		q = temporalrank.SumQuery(k, t1, t2)
	case 1:
		q = temporalrank.AvgQuery(k, t1, t2+1e-3)
	default:
		q = temporalrank.InstantQuery(k, t1)
	}
	q.MaxEpsilon = maxEps
	return q
}

// checkExact compares an exact answer against the brute-force
// reference rank by rank. Scores use a relative tolerance: the merged
// read path and the prefix-sum indexes accumulate in different orders
// than the reference scan, so last-ulp noise is expected; anything
// larger is a real divergence. Ties (equal scores, different IDs) pass
// on score alone.
func checkExact(t *testing.T, label string, got, want temporalrank.Answer) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Results), len(want.Results))
	}
	for j := range want.Results {
		g, w := got.Results[j].Score, want.Results[j].Score
		scale := math.Max(1, math.Abs(w))
		if math.Abs(g-w) > 1e-9*scale {
			t.Fatalf("%s rank %d: score %g (id %d), want %g (id %d)",
				label, j, g, got.Results[j].ID, w, want.Results[j].ID)
		}
	}
}

// checkApprox validates an approximate answer with the paper's (ε,α)
// per-rank bound: σ̃_j <= σ_j + εM and σ̃_j >= σ_j/α − εM, with
// α = 2·log₂(r+1) for the APPX2 family built with TargetR = r.
func checkApprox(t *testing.T, label string, got, want temporalrank.Answer, mass float64, targetR int) {
	t.Helper()
	bound := got.Epsilon*mass*(1+1e-7) + 1e-9
	alpha := 2 * math.Log2(float64(targetR)+1)
	for j := range got.Results {
		if j >= len(want.Results) {
			break
		}
		exact := want.Results[j].Score
		lo := exact/alpha - bound
		hi := exact + bound
		if s := got.Results[j].Score; s < lo || s > hi {
			t.Fatalf("%s rank %d: approx score %g outside [%g, %g] (ε=%g M=%g)",
				label, j, s, lo, hi, got.Epsilon, mass)
		}
	}
}

// TestMixedWorkloadEquivalence interleaves appends and queries on a
// Planner over every index method, with the memtable enabled and
// disabled, and demands brute-force-equivalent answers at every step.
// With the memtable on, compactions are forced at random points —
// including concurrently with the query they race. The sealed mode
// re-proves the same equivalence over arena-backed indexes: sealing
// is forced on at build time and re-applied by every compaction
// rebuild, so each generation the queries hit lives in a sealed slab.
func TestMixedWorkloadEquivalence(t *testing.T) {
	const targetR = 60
	methods := []struct {
		m      temporalrank.Method
		approx bool
	}{
		{temporalrank.MethodExact1, false},
		{temporalrank.MethodExact2, false},
		{temporalrank.MethodExact3, false},
		{temporalrank.MethodAppx1, true},
		{temporalrank.MethodAppx2, true},
		{temporalrank.MethodAppx2P, true},
	}
	modes := []struct {
		name     string
		memtable bool
		sealed   bool
	}{
		{"direct", false, false},
		{"memtable", true, false},
		{"memtable-sealed", true, true},
	}
	ctx := context.Background()
	for _, mc := range methods {
		for _, mode := range modes {
			memtable := mode.memtable
			name := string(mc.m) + "/" + mode.name
			t.Run(name, func(t *testing.T) {
				inputs := clusterInputs(t, 40, 20, 97)
				st := newMixedState(t, inputs, int64(len(name))*1009+7)
				db, err := temporalrank.NewDB(inputs)
				if err != nil {
					t.Fatal(err)
				}
				ix, err := db.BuildIndex(temporalrank.Options{Method: mc.m, TargetR: targetR, KMax: 24, SealIndexes: mode.sealed})
				if err != nil {
					t.Fatal(err)
				}
				p, err := temporalrank.NewPlanner(db, ix)
				if err != nil {
					t.Fatal(err)
				}
				p.EnableResultCache(64)
				if memtable {
					if err := p.EnableMemtable(temporalrank.MemtableOptions{DisableAutoCompact: true}); err != nil {
						t.Fatal(err)
					}
				}
				maxEps := 0.0
				if mc.approx {
					maxEps = 1.0
				}
				for step := 0; step < 60; step++ {
					if st.rng.Intn(5) < 3 {
						st.append(p, name)
						continue
					}
					q := st.query(12, maxEps)
					var wg sync.WaitGroup
					if memtable && st.rng.Intn(4) == 0 {
						// Race a compaction against this query: the reader must
						// keep answering from its pinned generation.
						wg.Add(1)
						go func() {
							defer wg.Done()
							if err := p.Compact(ctx); err != nil {
								t.Error(err)
							}
						}()
					}
					got, err := p.Run(ctx, q)
					wg.Wait()
					if err != nil {
						t.Fatalf("step %d %s: %v", step, q.Agg, err)
					}
					want, err := st.ref.Run(ctx, q)
					if err != nil {
						t.Fatal(err)
					}
					if got.Exact {
						checkExact(t, name, got, want)
					} else {
						checkApprox(t, name, got, want, st.ref.Snapshot().M(), targetR)
					}
				}
				if memtable {
					// Drain and re-verify: post-compaction answers must agree too.
					if err := p.Compact(ctx); err != nil {
						t.Fatal(err)
					}
					q := st.query(12, maxEps)
					got, err := p.Run(ctx, q)
					if err != nil {
						t.Fatal(err)
					}
					want, err := st.ref.Run(ctx, q)
					if err != nil {
						t.Fatal(err)
					}
					if got.Exact {
						checkExact(t, name+"/drained", got, want)
					} else {
						checkApprox(t, name+"/drained", got, want, st.ref.Snapshot().M(), targetR)
					}
					stats, ok := p.MemtableStats()
					if !ok || stats.ActiveSegments != 0 || stats.FrozenSegments != 0 {
						t.Fatalf("memtable not drained after Compact: %+v (ok=%v)", stats, ok)
					}
				}
			})
		}
	}
}

// TestMixedClusterEquivalence runs the interleaved workload through a
// Cluster — shard counts 1 and 8, memtable on and off — against the
// unpartitioned brute-force reference. With the memtable on, the flush
// threshold is tiny so background compactions trigger repeatedly
// mid-workload on their own.
func TestMixedClusterEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, shards := range []int{1, 8} {
		for _, memtable := range []bool{false, true} {
			name := "shards="
			name += string(rune('0' + shards))
			if memtable {
				name += "/memtable"
			} else {
				name += "/direct"
			}
			t.Run(name, func(t *testing.T) {
				inputs := clusterInputs(t, 48, 18, 131)
				st := newMixedState(t, inputs, int64(shards)*811+19)
				opts := temporalrank.ClusterOptions{
					Shards:      shards,
					Indexes:     []temporalrank.Options{{Method: temporalrank.MethodExact3}},
					ResultCache: 128,
				}
				if memtable {
					opts.Memtable = &temporalrank.MemtableOptions{FlushSegments: 16}
				}
				c, err := temporalrank.NewCluster(inputs, opts)
				if err != nil {
					t.Fatal(err)
				}
				for step := 0; step < 90; step++ {
					if st.rng.Intn(5) < 3 {
						st.append(c, name)
						continue
					}
					q := st.query(10, 0)
					got, err := c.Run(ctx, q)
					if err != nil {
						t.Fatalf("step %d %s: %v", step, q.Agg, err)
					}
					want, err := st.ref.Run(ctx, q)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Exact {
						t.Fatalf("step %d: exact-index cluster answered approximately: %+v", step, got)
					}
					checkExact(t, name, got, want)
				}
			})
		}
	}
}

// TestMixedConcurrentIngest hammers one memtable-backed planner from
// concurrent writers, readers, and an explicit compaction loop — the
// -race exercise for the generation swap, the bloom filter, and the
// scoped cache validation. Answers are checked for well-formedness
// (the interleaving is nondeterministic, so exact equivalence is the
// previous tests' job).
func TestMixedConcurrentIngest(t *testing.T) {
	inputs := clusterInputs(t, 32, 15, 173)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := temporalrank.NewPlanner(db, ix)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableResultCache(32)
	if err := p.EnableMemtable(temporalrank.MemtableOptions{FlushSegments: 64}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	start, end := db.Start(), db.End()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tt := end
			for i := 0; i < 300; i++ {
				tt += 0.5
				id := (w*16 + i) % 32
				// Both writers may race on one series; losing the race is a
				// legitimate behind-frontier rejection, not a failure.
				_ = p.Append(id, tt, float64(i%7))
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 41))
			for i := 0; i < 150; i++ {
				t1 := start + rng.Float64()*(end-start)
				q := temporalrank.SumQuery(1+rng.Intn(8), t1, t1+rng.Float64()*(end+150-t1))
				ans, err := p.Run(ctx, q)
				if err != nil {
					t.Error(err)
					return
				}
				if len(ans.Results) == 0 || len(ans.Results) > q.K {
					t.Errorf("malformed answer: %d results for k=%d", len(ans.Results), q.K)
					return
				}
				for j := 1; j < len(ans.Results); j++ {
					if ans.Results[j].Score > ans.Results[j-1].Score {
						t.Errorf("results not ranked at %d: %v", j, ans.Results)
						return
					}
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := p.Compact(ctx); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := p.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	stats, ok := p.MemtableStats()
	if !ok {
		t.Fatal("memtable stats unavailable")
	}
	if stats.ActiveSegments != 0 || stats.FrozenSegments != 0 {
		t.Fatalf("memtable not drained: %+v", stats)
	}
}
