// Package temporalrank ranks large temporal data by aggregate scores,
// implementing the VLDB 2012 paper "Ranking Large Temporal Data"
// (Jestes, Phillips, Li, Tang).
//
// A temporal database holds m objects, each a piecewise-linear score
// function g_i over time. An aggregate top-k query top-k(t1, t2, sum)
// returns the k objects with the largest σ_i(t1,t2) = ∫_{t1}^{t2} g_i.
//
// The package offers three exact indexes and five approximate indexes
// with (ε,α)-approximation guarantees:
//
//	Method      Guarantee        Query IOs            Index size
//	EXACT1      exact            O(log_B N + N/B)     O(N/B)
//	EXACT2      exact            O(Σ log_B n_i)       O(N/B)
//	EXACT3      exact            O(log_B N + m/B)     O(N/B)
//	APPX1-B     (ε, 1)           O(k/B + log_B r)     O(r²·kmax/B)
//	APPX2-B     (ε, 2·log r)     O(k·log r·log_B k)   O(r·kmax/B)
//	APPX1       (ε, 1)           O(k/B + log_B r)     O(r²·kmax/B)
//	APPX2       (ε, 2·log r)     O(k·log r·log_B k)   O(r·kmax/B)
//	APPX2+      empirically ~exact, APPX2 cost + k·log r lookups
//
// Quick start:
//
//	db, _ := temporalrank.NewDB([]temporalrank.SeriesInput{
//	    {Times: []float64{0, 1, 2}, Values: []float64{3, 5, 4}},
//	    {Times: []float64{0, 1, 2}, Values: []float64{6, 1, 2}},
//	})
//	idx, _ := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
//	top, _ := idx.TopK(1, 0.5, 1.5)
package temporalrank

import (
	"fmt"
	"sync"
	"sync/atomic"

	"temporalrank/internal/approx"
	"temporalrank/internal/blockio"
	"temporalrank/internal/breakpoint"
	"temporalrank/internal/core"
	"temporalrank/internal/exact"
	"temporalrank/internal/qcache"
	"temporalrank/internal/topk"
	"temporalrank/internal/tsdata"
)

// Method selects an index implementation.
type Method string

// The eight methods of the paper.
const (
	MethodExact1 Method = "EXACT1"
	MethodExact2 Method = "EXACT2"
	MethodExact3 Method = "EXACT3"
	MethodAppx1B Method = "APPX1-B"
	MethodAppx2B Method = "APPX2-B"
	MethodAppx1  Method = "APPX1"
	MethodAppx2  Method = "APPX2"
	MethodAppx2P Method = "APPX2+"
)

// IsApprox reports whether the method gives approximate answers.
func (m Method) IsApprox() bool {
	if m == MethodReference {
		return false
	}
	return core.IsApprox(core.MethodName(m))
}

// Methods lists all supported methods in the paper's order.
func Methods() []Method {
	out := make([]Method, 0, 8)
	for _, n := range core.AllMethods() {
		out = append(out, Method(n))
	}
	return out
}

// SeriesInput is one object's raw vertices: strictly increasing Times
// and equal-length Values (at least two points).
type SeriesInput struct {
	Times  []float64
	Values []float64
}

// Result is one ranked object.
type Result struct {
	ID    int     // object position in the DB (0-based)
	Score float64 // the method's (possibly approximate) σ(t1,t2)
}

// DB is an immutable-by-default temporal database; objects can only
// grow at their time frontier via Append (the paper's update model).
//
// DB is safe for concurrent use: reads (TopK, Score, InstantTopK, and
// the accessors) take a shared lock, and Index.Append takes the
// exclusive lock while it mutates the underlying dataset. When several
// indexes are built over one DB, route all appends through a single
// index — each index tracks its own per-object frontier.
type DB struct {
	// mu guards ds. Lock ordering: an Index always acquires its own
	// mutex before this one.
	mu sync.RWMutex
	ds *tsdata.Dataset
	// version counts successful appends. Every mutation path (DB.Append,
	// Index.Append, Planner.Append, Cluster.Append) funnels through
	// appendLocked, which bumps it while holding mu exclusively — so a
	// result cache keyed by (query, version) can never serve a
	// pre-append answer to a post-append reader, regardless of which
	// entry point performed the append.
	version atomic.Uint64
	// journal records each append as a (series, time-range) scoped
	// event, also from appendLocked; result caches validate entries
	// against it so only answers whose window overlaps an append are
	// invalidated.
	journal *qcache.Journal
}

// NewDB validates and assembles a database from raw series.
func NewDB(series []SeriesInput) (*DB, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("temporalrank: no series given: %w", ErrNoInput)
	}
	ss := make([]*tsdata.Series, len(series))
	for i, in := range series {
		s, err := tsdata.NewSeries(tsdata.SeriesID(i), in.Times, in.Values)
		if err != nil {
			return nil, err
		}
		ss[i] = s
	}
	ds, err := tsdata.NewDataset(ss)
	if err != nil {
		return nil, err
	}
	return &DB{ds: ds, journal: qcache.NewJournal(0)}, nil
}

// NewDBFromDataset wraps an existing dataset (used by the generators
// and the experiment harness).
func NewDBFromDataset(ds *tsdata.Dataset) *DB {
	return &DB{ds: ds, journal: qcache.NewJournal(0)}
}

// Dataset exposes the underlying dataset for advanced use.
//
// Deprecated: the returned dataset is NOT protected by the DB's lock —
// reading it concurrently with Index.Append is a data race. Use
// Snapshot for a safe copy, or the Querier/accessor methods which lock
// internally. Kept for callers that own the DB exclusively (the
// generators and the experiment harness).
func (db *DB) Dataset() *tsdata.Dataset { return db.ds }

// Snapshot returns a deep copy of the underlying dataset taken under
// the read lock, safe to use (and mutate) regardless of concurrent
// appends — the accessor the generators and the experiment harness
// should prefer over Dataset.
func (db *DB) Snapshot() *tsdata.Dataset {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ds.Clone()
}

// NumSeries returns m.
func (db *DB) NumSeries() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ds.NumSeries()
}

// NumSegments returns N.
func (db *DB) NumSegments() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ds.NumSegments()
}

// Start returns the left end of the temporal domain.
func (db *DB) Start() float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ds.Start()
}

// End returns the right end of the temporal domain (the paper's T).
func (db *DB) End() float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ds.End()
}

// Span returns the width of the temporal domain, End() − Start().
func (db *DB) Span() float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ds.Span()
}

// Score computes σ_i(t1,t2) exactly from the in-memory representation.
// An out-of-range id wraps ErrUnknownSeries.
func (db *DB) Score(id int, t1, t2 float64) (float64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if id < 0 || id >= db.ds.NumSeries() {
		return 0, fmt.Errorf("temporalrank: %w: %d", ErrUnknownSeries, id)
	}
	return db.ds.Series(tsdata.SeriesID(id)).Range(t1, t2), nil
}

// Append extends object id directly on the database — the ingest path
// for index-less DBs (and Cluster shards running pure brute force). A
// DB with indexes must append through Index.Append or Planner.Append
// instead, so the index structures advance with the data.
func (db *DB) Append(id int, t, v float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return appendLocked(db, nil, id, t, v)
}

// TopK computes the exact answer by brute force over the in-memory
// data — the reference all indexes are measured against.
//
// Deprecated: use Run with a Query; it adds context cancellation and a
// typed Answer. TopK remains as a thin wrapper.
func (db *DB) TopK(k int, t1, t2 float64) []Result {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return toResults(core.Reference(db.ds, k, t1, t2))
}

// Options configures BuildIndex.
type Options struct {
	// Method selects the index; default MethodExact3 (the paper's best
	// exact method).
	Method Method
	// BlockSize is the device page size in bytes (default 4096).
	BlockSize int
	// KMax bounds future query k on approximate methods (default 200).
	KMax int
	// Epsilon sets the (ε,α) error parameter directly; when 0, TargetR
	// is used instead.
	Epsilon float64
	// TargetR asks for about this many breakpoints (default 500).
	TargetR int
	// CacheBlocks enables an LRU buffer pool of that many pages.
	CacheBlocks int
	// BuildWorkers, when > 1, parallelizes construction across series
	// for methods that build one structure per object (EXACT2).
	BuildWorkers int
	// OnDiskPath stores the index in a file instead of memory.
	OnDiskPath string
	// SealIndexes packs the index's pages into a read-only arena
	// (blockio.Arena) after the build: one contiguous slab whose
	// zero-copy views need no locks or pin refcounts, and whose GC
	// footprint is a single heap object regardless of dataset size.
	// Sealing freezes the index's device, so direct Index.Append fails
	// with blockio.ErrReadOnlyDevice for methods that write pages on
	// append (EXACT1, EXACT2, APPX2+ between rebuilds); pair sealing
	// with the memtable ingest path, which buffers appends above the
	// index and rebuilds (and reseals) each compacted generation.
	// EXACT3 and the pure approximate methods keep full Append support
	// when sealed. A buffer pool (CacheBlocks) is pointless over an
	// arena and is dropped at seal time along with the build device.
	SealIndexes bool
}

// Index is a built aggregate top-k index.
//
// Index is safe for concurrent use: queries (TopK, Score, TopKAvg,
// InstantTopK, Stats) run in parallel under a shared lock, while
// Append takes the exclusive lock — both on the index (whose
// structures it grows or, for approximate methods, rebuilds) and on
// the DB (whose dataset it extends).
type Index struct {
	// mu guards m's internal structures. Queries hold it shared; Append
	// holds it exclusively. Lock ordering: mu before db.mu.
	mu sync.RWMutex
	m  exact.Method
	db *DB
	// opts records the build configuration (with Method normalized) so
	// memtable compaction can rebuild an equivalent index over the
	// compacted dataset.
	opts Options
}

// BuildIndex constructs an index over the database.
func (db *DB) BuildIndex(opts Options) (*Index, error) {
	name := core.MethodName(opts.Method)
	if opts.Method == "" {
		name = core.Exact3
	}
	cfg := core.Config{
		BlockSize:    opts.BlockSize,
		KMax:         opts.KMax,
		Epsilon:      opts.Epsilon,
		TargetR:      opts.TargetR,
		CacheBlocks:  opts.CacheBlocks,
		BuildWorkers: opts.BuildWorkers,
	}
	if opts.OnDiskPath != "" {
		path := opts.OnDiskPath
		cfg.NewDevice = func(bs int) (blockio.Device, error) {
			return blockio.OpenFileDevice(path, bs)
		}
	}
	db.mu.RLock()
	m, err := core.Build(name, db.ds, cfg)
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	opts.Method = Method(name)
	ix := &Index{m: m, db: db, opts: opts}
	if opts.SealIndexes {
		if err := ix.Seal(); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Seal packs the index's live pages into a read-only arena and
// re-seats the index onto it (see Options.SealIndexes for the
// trade-offs). Sealing an already-sealed index reseals it — a cheap
// no-op-shaped copy — and an index whose method cannot be sealed
// returns ErrUnsupported. Safe to call concurrently with queries: the
// swap happens under the exclusive lock.
func (ix *Index) Seal() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	s, ok := ix.m.(exact.Sealer)
	if !ok {
		return fmt.Errorf("temporalrank: method %s cannot be sealed: %w", ix.m.Name(), ErrBadConfig)
	}
	return s.Seal()
}

// Method returns the index's method name.
func (ix *Index) Method() Method { return Method(ix.m.Name()) }

// Epsilon returns the (ε,α) error parameter the index was built with;
// 0 for exact methods. The Planner compares it against a Query's
// MaxEpsilon when routing. The shared lock matters: an amortized
// rebuild (Append past the mass-doubling threshold) swaps the
// breakpoint set under the exclusive lock.
func (ix *Index) Epsilon() float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if a, ok := ix.m.(approx.Index); ok {
		return a.Epsilon()
	}
	return 0
}

// KMax returns the largest query k the index supports; 0 means
// unbounded (exact methods). Queries beyond KMax wrap ErrKTooLarge.
func (ix *Index) KMax() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if a, ok := ix.m.(approx.Index); ok {
		return a.KMax()
	}
	return 0
}

// breakpoints returns the size r of the index's breakpoint set (0 for
// exact methods) — an input to the Planner's cost model. Locked for
// the same rebuild-swap reason as Epsilon.
func (ix *Index) breakpoints() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if b, ok := ix.m.(interface{ Breaks() *breakpoint.Set }); ok {
		return b.Breaks().R()
	}
	return 0
}

// TopK answers top-k(t1, t2, sum) through the index.
//
// Deprecated: use Run with a Query; it adds context cancellation,
// per-query latency/IO measurement, and a typed Answer. TopK remains
// as a thin wrapper.
func (ix *Index) TopK(k int, t1, t2 float64) ([]Result, error) {
	return ix.topK(k, t1, t2)
}

func (ix *Index) topK(k int, t1, t2 float64) ([]Result, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	items, err := ix.m.TopK(k, t1, t2)
	if err != nil {
		return nil, err
	}
	return toResults(items), nil
}

// Score returns the index's estimate of σ_i(t1,t2): exact for exact
// methods; for approximate methods the stored estimate, or an error
// wrapping ErrNotMaterialized when the object is outside the
// materialized lists (no estimate exists — callers wanting a value for
// every object should use DB.Score or an exact index).
func (ix *Index) Score(id int, t1, t2 float64) (float64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.m.Score(tsdata.SeriesID(id), t1, t2)
}

// Append extends object id with a new segment ending at (t, v); t must
// be after the object's current end (§4 update model). The index and
// the DB stay consistent.
func (ix *Index) Append(id int, t, v float64) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.db.mu.Lock()
	defer ix.db.mu.Unlock()
	return appendLocked(ix.db, []*Index{ix}, id, t, v)
}

// appendAppliedMethod is satisfied by the approximate index structures:
// AppendApplied updates frontiers, mass accounting, and the amortized
// rebuild for a segment the caller already applied to the shared
// dataset. It is what lets several indexes over one dataset absorb the
// same append without mutating the dataset more than once.
type appendAppliedMethod interface {
	AppendApplied(id tsdata.SeriesID, t, v float64) error
}

// appendLocked applies one append across the dataset and every index in
// ixs, mutating the dataset exactly once. Callers hold each index's mu
// (in slice order) and db.mu. Approximate structures own the dataset
// mutation, so the first one performs it and the rest take the
// AppendApplied path; exact structures never touch the dataset, which
// is written directly when no approximate index did.
func appendLocked(db *DB, ixs []*Index, id int, t, v float64) error {
	if id < 0 || id >= db.ds.NumSeries() {
		return fmt.Errorf("temporalrank: %w: %d", ErrUnknownSeries, id)
	}
	// Validate the segment against the dataset frontier up front so a
	// bad append cannot advance some indexes and leave others behind.
	s := db.ds.Series(tsdata.SeriesID(id))
	seg := tsdata.Segment{T1: s.End(), T2: t, V1: s.VertexValue(s.NumSegments()), V2: v}
	if err := seg.Validate(); err != nil {
		return err
	}
	prevEnd := s.End()
	applied := false
	for _, ix := range ixs {
		var err error
		if core.IsApprox(core.MethodName(ix.m.Name())) && applied {
			aa, ok := ix.m.(appendAppliedMethod)
			if !ok {
				return fmt.Errorf("temporalrank: index %s cannot share an applied append", ix.Method())
			}
			err = aa.AppendApplied(tsdata.SeriesID(id), t, v)
		} else {
			err = ix.m.Append(tsdata.SeriesID(id), t, v)
			if core.IsApprox(core.MethodName(ix.m.Name())) {
				applied = true
			}
		}
		if err != nil {
			return err
		}
	}
	if !applied {
		if err := db.ds.Series(tsdata.SeriesID(id)).Append(t, v); err != nil {
			return err
		}
	}
	db.ds.Refresh()
	db.version.Add(1)
	if db.journal != nil {
		// The new segment covers (prevEnd, t]: only cached answers whose
		// window overlaps it can have observed different data.
		db.journal.Advance(qcache.Scope{Series: id, T1: prevEnd, T2: t})
	}
	return nil
}

// DataVersion returns a counter incremented by every successful append,
// whichever entry point performed it. Result caches (Planner, Cluster,
// or caller-built) key entries by this value so answers computed before
// an append are never served after it.
func (db *DB) DataVersion() uint64 { return db.version.Load() }

// Stats reports index size and cumulative device IO.
type Stats struct {
	Pages      int
	Bytes      int64
	DeviceIOs  uint64
	BlockSize  int
	MethodName string
}

// Stats returns current index statistics. The device counters are
// atomic, so this is safe (and non-blocking) even while queries are in
// flight.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	bs := ix.m.Device().BlockSize()
	pages := ix.m.IndexPages()
	return Stats{
		Pages:      pages,
		Bytes:      int64(pages) * int64(bs),
		DeviceIOs:  ix.m.Device().Stats().Total(),
		BlockSize:  bs,
		MethodName: ix.m.Name(),
	}
}

// ResetStats zeroes the device IO counters (for measuring one query).
func (ix *Index) ResetStats() {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.m.Device().ResetStats()
}

// DeviceIOs returns the device's cumulative IO count (Stats().Total()).
// Unlike Index.Stats it skips IndexPages(), whose NumPages() call takes
// the device mutex — this touches only the atomic counters, so it is
// the accessor the query engine samples around each call.
func (ix *Index) DeviceIOs() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.m.Device().Stats().Total()
}

func toResults(items []topk.Item) []Result {
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{ID: int(it.ID), Score: it.Score}
	}
	return out
}
