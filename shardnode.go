package temporalrank

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"

	"temporalrank/internal/blockio"
	"temporalrank/internal/remote"
	"temporalrank/internal/snapshot"
)

// This file is the server half of the distributed serving tier: a
// ShardNode hosts one or more cluster shards — each a Planner restored
// from its shard-NNNN.trsnap snapshot — and answers the RPCs a
// RemoteCluster router issues: query, append, score, checkpoint, meta
// (health/topology probe), snapshot (streamed transfer of one shard's
// full stack), and restore (pull a shard from a peer and install it,
// the replica bootstrap/catch-up path). cmd/shardserver is a thin main
// around this type.
//
// Every query answer leaves the node with GLOBAL series IDs: the node
// remaps its planner's local IDs through the shard manifest's
// ascending Global list, which preserves tie order, so the router's
// merge is plain topk.Merge — bit-identical to the in-process Cluster.

// RPC request/reply DTOs. All fields exported for gob.

// rpcShardInfo describes one hosted shard in a meta reply.
type rpcShardInfo struct {
	Shard     int
	NumShards int
	NumSeries int    // global object count m
	Version   uint64 // the shard DB's append counter
}

// rpcMetaReply answers the "meta" probe: every shard the node hosts.
type rpcMetaReply struct {
	Shards []rpcShardInfo
}

// rpcRoutingReply answers "routing": the global-ID list of one shard,
// from which a router derives global→shard placement.
type rpcRoutingReply struct {
	Global []int
}

type rpcQueryReq struct {
	Shard int
	Query Query
}

type rpcQueryReply struct {
	Answer Answer
}

type rpcAppendReq struct {
	Shard int
	ID    int // global series ID
	T, V  float64
}

type rpcAppendReply struct {
	Version uint64 // shard version after the append
}

type rpcScoreReq struct {
	Shard  int
	ID     int // global series ID
	T1, T2 float64
}

type rpcScoreReply struct {
	Score float64
}

// rpcShardReq names one shard (checkpoint, routing, snapshot streams).
type rpcShardReq struct {
	Shard int
}

// rpcRestoreReq tells a node to (re)bootstrap one shard by pulling a
// streamed snapshot from the peer at From.
type rpcRestoreReq struct {
	Shard int
	From  string
}

// nodeShard is one hosted shard: a restored single-node stack plus the
// manifest that carries its global routing.
type nodeShard struct {
	planner *Planner
	meta    *shardManifest
}

// ShardNode hosts shard replicas and serves the distributed tier's
// RPCs. Construct with NewShardNode, serve with Serve (usually on its
// own goroutine), stop with Close. Safe for concurrent use: queries
// and appends inherit the Planner locking rules; installing a restored
// shard swaps a pointer under the node lock.
type ShardNode struct {
	dir    string
	opts   ShardNodeOptions
	srv    *remote.Server
	client *remote.Client

	mu     sync.RWMutex
	shards map[int]*nodeShard
}

// ShardNodeOptions are a node's runtime knobs — applied to every shard
// the node hosts, whether restored at boot or installed later through
// a restore RPC.
type ShardNodeOptions struct {
	// Memtable, when non-nil, enables the write-optimized ingest path on
	// each hosted shard's planner: replicated appends land in that
	// shard's memtable delta layer instead of rebuilding indexes inline.
	Memtable *MemtableOptions
}

// NewShardNode restores every shard-NNNN.trsnap under dir (creating
// the directory if needed) and returns a node serving them. An empty
// directory is valid: the node starts hosting nothing and acquires
// shards through restore RPCs — the cold-replica bootstrap path.
func NewShardNode(dir string) (*ShardNode, error) {
	return NewShardNodeWithOptions(dir, ShardNodeOptions{})
}

// NewShardNodeWithOptions is NewShardNode with runtime knobs.
func NewShardNodeWithOptions(dir string, opts ShardNodeOptions) (*ShardNode, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("temporalrank: shard node: %w", err)
	}
	n := &ShardNode{
		dir:    dir,
		opts:   opts,
		srv:    remote.NewServer(0),
		client: remote.NewClient(remote.ClientOptions{}),
		shards: make(map[int]*nodeShard),
	}
	paths, err := listShardSnapshots(dir)
	if err != nil {
		return nil, err
	}
	for _, path := range paths {
		dev, err := blockio.OpenFileDeviceAt(path, blockio.DefaultBlockSize)
		if err != nil {
			return nil, fmt.Errorf("temporalrank: shard node open %s: %w", path, err)
		}
		p, sm, perr := openSnapshotStore(dev)
		cerr := dev.Close()
		if perr != nil {
			return nil, fmt.Errorf("temporalrank: shard node restore %s: %w", path, perr)
		}
		if cerr != nil {
			return nil, fmt.Errorf("temporalrank: shard node restore %s: %w", path, cerr)
		}
		if sm == nil {
			return nil, fmt.Errorf("temporalrank: %s is not a cluster shard snapshot: %w", path, ErrBadSnapshot)
		}
		if _, dup := n.shards[sm.Shard]; dup {
			return nil, fmt.Errorf("temporalrank: duplicate snapshot for shard %d under %s: %w", sm.Shard, dir, ErrBadSnapshot)
		}
		if opts.Memtable != nil {
			if err := p.EnableMemtable(*opts.Memtable); err != nil {
				return nil, fmt.Errorf("temporalrank: shard node %s: %w", path, err)
			}
		}
		n.shards[sm.Shard] = &nodeShard{planner: p, meta: sm}
	}
	n.register()
	return n, nil
}

// register wires the RPC handlers.
func (n *ShardNode) register() {
	n.srv.Handle("meta", n.handleMeta)
	n.srv.Handle("routing", n.handleRouting)
	n.srv.Handle("query", n.handleQuery)
	n.srv.Handle("append", n.handleAppend)
	n.srv.Handle("score", n.handleScore)
	n.srv.Handle("checkpoint", n.handleCheckpoint)
	n.srv.Handle("restore", n.handleRestore)
	n.srv.HandleStream("snapshot", n.handleSnapshot)
}

// Serve accepts RPC connections on ln until the node is closed. It
// blocks; run it on its own goroutine.
func (n *ShardNode) Serve(ln net.Listener) error { return n.srv.Serve(ln) }

// Close stops serving, severs open connections, and releases the
// node's outbound client. Hosted shards stay restorable from dir.
func (n *ShardNode) Close() error {
	err := n.srv.Close()
	if cerr := n.client.Close(); err == nil {
		err = cerr
	}
	return err
}

// Shards returns the sorted shard numbers the node currently hosts.
func (n *ShardNode) Shards() []int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]int, 0, len(n.shards))
	for s := range n.shards {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// shard fetches one hosted shard; a miss reports ErrShardUnavailable
// (the replica does not have the shard — the router fails over, or
// triggers a restore).
func (n *ShardNode) shard(id int) (*nodeShard, error) {
	n.mu.RLock()
	sh := n.shards[id]
	n.mu.RUnlock()
	if sh == nil {
		return nil, fmt.Errorf("temporalrank: shard %d not hosted: %w", id, ErrShardUnavailable)
	}
	return sh, nil
}

func (n *ShardNode) handleMeta(ctx context.Context, body []byte) (any, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	rep := rpcMetaReply{Shards: make([]rpcShardInfo, 0, len(n.shards))}
	for id, sh := range n.shards {
		rep.Shards = append(rep.Shards, rpcShardInfo{
			Shard:     id,
			NumShards: sh.meta.NumShards,
			NumSeries: sh.meta.NumSeries,
			Version:   sh.planner.DataVersion(),
		})
	}
	sort.Slice(rep.Shards, func(i, j int) bool { return rep.Shards[i].Shard < rep.Shards[j].Shard })
	return rep, nil
}

func (n *ShardNode) handleRouting(ctx context.Context, body []byte) (any, error) {
	var req rpcShardReq
	if err := remote.DecodeBody(body, &req); err != nil {
		return nil, err
	}
	sh, err := n.shard(req.Shard)
	if err != nil {
		return nil, err
	}
	return rpcRoutingReply{Global: sh.meta.Global}, nil
}

func (n *ShardNode) handleQuery(ctx context.Context, body []byte) (any, error) {
	var req rpcQueryReq
	if err := remote.DecodeBody(body, &req); err != nil {
		return nil, err
	}
	sh, err := n.shard(req.Shard)
	if err != nil {
		return nil, err
	}
	ans, err := sh.planner.Run(ctx, req.Query)
	if err != nil {
		return nil, err
	}
	// Remap local result IDs to global into a fresh slice — ans.Results
	// may alias the planner's result cache and must stay untouched. The
	// ascending Global list preserves tie order, so this list merges at
	// the router exactly like an in-process shard's.
	global := make([]Result, len(ans.Results))
	for i, r := range ans.Results {
		global[i] = Result{ID: sh.meta.Global[r.ID], Score: r.Score}
	}
	ans.Results = global
	return rpcQueryReply{Answer: ans}, nil
}

// localID maps a global series ID onto the shard's local ID space.
func (sh *nodeShard) localID(global int) (int, error) {
	i := sort.SearchInts(sh.meta.Global, global)
	if i >= len(sh.meta.Global) || sh.meta.Global[i] != global {
		return 0, fmt.Errorf("temporalrank: series %d not on shard %d: %w", global, sh.meta.Shard, ErrUnknownSeries)
	}
	return i, nil
}

func (n *ShardNode) handleAppend(ctx context.Context, body []byte) (any, error) {
	var req rpcAppendReq
	if err := remote.DecodeBody(body, &req); err != nil {
		return nil, err
	}
	sh, err := n.shard(req.Shard)
	if err != nil {
		return nil, err
	}
	local, err := sh.localID(req.ID)
	if err != nil {
		return nil, err
	}
	if err := sh.planner.Append(local, req.T, req.V); err != nil {
		return nil, err
	}
	return rpcAppendReply{Version: sh.planner.DataVersion()}, nil
}

func (n *ShardNode) handleScore(ctx context.Context, body []byte) (any, error) {
	var req rpcScoreReq
	if err := remote.DecodeBody(body, &req); err != nil {
		return nil, err
	}
	sh, err := n.shard(req.Shard)
	if err != nil {
		return nil, err
	}
	local, err := sh.localID(req.ID)
	if err != nil {
		return nil, err
	}
	score, err := sh.planner.Score(local, req.T1, req.T2)
	if err != nil {
		return nil, err
	}
	return rpcScoreReply{Score: score}, nil
}

func (n *ShardNode) handleCheckpoint(ctx context.Context, body []byte) (any, error) {
	var req rpcShardReq
	if err := remote.DecodeBody(body, &req); err != nil {
		return nil, err
	}
	sh, err := n.shard(req.Shard)
	if err != nil {
		return nil, err
	}
	if err := commitShardSnapshotFile(n.dir, req.Shard, sh.planner, sh.meta); err != nil {
		return nil, fmt.Errorf("temporalrank: checkpoint shard %d: %w", req.Shard, err)
	}
	return rpcAppendReply{Version: sh.planner.DataVersion()}, nil
}

// handleSnapshot streams one hosted shard's full stack: a point-in-time
// checkpoint onto a fresh in-memory device, whose raw page image is
// written to the stream. The receiving side replays it with
// snapshot.ReadDevicePages + the ordinary snapshot restore.
func (n *ShardNode) handleSnapshot(ctx context.Context, body []byte, w io.Writer) error {
	var req rpcShardReq
	if err := remote.DecodeBody(body, &req); err != nil {
		return err
	}
	sh, err := n.shard(req.Shard)
	if err != nil {
		return err
	}
	mem := blockio.NewMemDevice(blockio.DefaultBlockSize)
	if err := sh.planner.checkpointWith(mem, sh.meta); err != nil {
		return fmt.Errorf("temporalrank: snapshot shard %d: %w", req.Shard, err)
	}
	return snapshot.WriteDevicePages(w, mem)
}

// handleRestore (re)bootstraps one shard: pull the peer's streamed
// snapshot, restore it in memory, install it over whatever this node
// had for the shard, and persist it under dir so the next boot starts
// caught-up. The router calls this on a lagging or empty replica while
// holding its append lock, so the installed shard is exactly as
// current as the peer's.
func (n *ShardNode) handleRestore(ctx context.Context, body []byte) (any, error) {
	var req rpcRestoreReq
	if err := remote.DecodeBody(body, &req); err != nil {
		return nil, err
	}
	rc, err := n.client.CallStream(ctx, req.From, "snapshot", rpcShardReq{Shard: req.Shard})
	if err != nil {
		return nil, fmt.Errorf("temporalrank: restore shard %d from %s: %w", req.Shard, req.From, err)
	}
	mem, rerr := snapshot.ReadDevicePages(rc)
	cerr := rc.Close()
	if rerr != nil {
		return nil, fmt.Errorf("temporalrank: restore shard %d from %s: %w", req.Shard, req.From, rerr)
	}
	if cerr != nil {
		return nil, fmt.Errorf("temporalrank: restore shard %d from %s: %w", req.Shard, req.From, cerr)
	}
	p, sm, err := openSnapshotStore(mem)
	if err != nil {
		return nil, fmt.Errorf("temporalrank: restore shard %d from %s: %w", req.Shard, req.From, err)
	}
	if sm == nil || sm.Shard != req.Shard {
		return nil, fmt.Errorf("temporalrank: peer %s streamed the wrong shard: %w", req.From, ErrBadSnapshot)
	}
	if n.opts.Memtable != nil {
		if err := p.EnableMemtable(*n.opts.Memtable); err != nil {
			return nil, fmt.Errorf("temporalrank: restore shard %d: %w", req.Shard, err)
		}
	}
	sh := &nodeShard{planner: p, meta: sm}
	if err := commitShardSnapshotFile(n.dir, req.Shard, p, sm); err != nil {
		return nil, fmt.Errorf("temporalrank: restore shard %d: persist: %w", req.Shard, err)
	}
	n.mu.Lock()
	n.shards[req.Shard] = sh
	n.mu.Unlock()
	return rpcAppendReply{Version: p.DataVersion()}, nil
}

// listShardSnapshots globs dir for shard snapshot files, sorted.
func listShardSnapshots(dir string) ([]string, error) {
	paths, err := listSnapshotFiles(dir)
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
