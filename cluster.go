package temporalrank

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"temporalrank/internal/qcache"
	"temporalrank/internal/scatter"
	"temporalrank/internal/topk"
	"temporalrank/internal/tsdata"
)

// Cluster is the scale-out Querier: it hash-partitions series across N
// shards — each shard an independent DB with its own indexes, Planner,
// and blockio device — and answers a Query by scattering per-shard Runs
// over a bounded worker pool, then k-way merging the per-shard top-k
// answers. Because the paper's query family top-k(t1, t2, agg)
// decomposes over disjoint object partitions, the merged answer is
// exactly what a single node over the whole dataset would produce, down
// to tie order (equal scores break by ascending global series ID).
//
// Answer semantics of a cluster Run (see also MethodMixed):
//
//   - Results carry global series IDs, merged deterministically.
//   - Exact is true only when every shard answered exactly.
//   - Epsilon is the worst (maximum) shard ε — the sound bound for the
//     merged set, since each score is off by at most its own shard's ε.
//   - IOs sums per-shard device deltas. Each delta is snapshotted
//     inside its shard's goroutine against that shard's private device,
//     so one query's shards never cross-attribute each other's IOs.
//     (Two concurrent queries hitting the same shard can still swap
//     IOs on that shard's device, as on any single node.)
//   - Latency is the slowest shard's computation time (the critical
//     path of the scatter), not the sum.
//   - Method is the shards' common method, or MethodMixed when the
//     per-shard planners routed differently.
//
// Query.MaxEpsilon and Query.MaxIOs are routing hints applied by each
// shard's planner independently: MaxEpsilon bounds every shard's ε
// (hence the merged ε), while the advisory MaxIOs budget is honored
// per shard, so a cluster answer may cost up to NumShards x MaxIOs in
// total. As on a single node, the budget never relaxes correctness.
//
// Ingest is sharded the same way: Append routes one segment to its
// owning shard and advances every index on that shard consistently
// through Planner.Append.
//
// Cluster is safe for concurrent use; its shards inherit the DB/Index
// locking rules.
type Cluster struct {
	part    Partitioner
	workers int
	shards  []*clusterShard
	// shardOf / localOf map a global series ID to its shard and its
	// position inside that shard's DB. Immutable after construction.
	shardOf []int
	localOf []int
	// cache is the cluster-level result cache (nil when disabled): it
	// stores merged answers, so a repeated query skips the scatter AND
	// the k-way merge. Entries are validated against the per-shard
	// append journals below, scoped by the query's time window — an
	// append on any shard invalidates exactly the cached answers whose
	// window overlaps it, and stale merged answers stay unreachable by
	// construction.
	cache *qcache.Cache[queryKey, Answer]
	// journals are the non-empty shards' append journals, in shard
	// order. Immutable after construction.
	journals []*qcache.Journal
}

// clusterShard is one partition: an independent single-node stack. db
// and planner are nil when no series routed to the shard.
type clusterShard struct {
	db      *DB
	planner *Planner
	indexes []*Index
	// global maps the shard's local series IDs back to global IDs. It is
	// ascending (series are routed in global-ID order), so a shard's
	// tie-broken local order remaps to the correct global tie order.
	global []int
}

// MethodMixed marks a cluster Answer whose shards answered with
// different methods (for example, one shard's planner routed to an
// approximate index while another fell back to brute force).
const MethodMixed Method = "MIXED"

// Compile-time check: the cluster is a Querier like everything else.
var _ Querier = (*Cluster)(nil)

// ClusterOptions configures NewCluster and friends.
type ClusterOptions struct {
	// Shards is the number of partitions (default 1).
	Shards int
	// Partitioner assigns series to shards (default HashPartition).
	Partitioner Partitioner
	// Indexes is the index set built on every shard, in Planner
	// registration order. Empty means brute-force shards (every query
	// answered by the shard DB's reference scan).
	Indexes []Options
	// Workers bounds how many shards one Run queries concurrently
	// (default GOMAXPROCS). Construction always parallelizes across
	// GOMAXPROCS regardless.
	Workers int
	// ResultCache, when > 0, attaches a result cache of that many
	// entries to Run: repeated identical queries are answered from the
	// stored merged answer, and concurrent identical queries coalesce
	// into one scatter. Appends on any shard invalidate exactly the
	// cached answers whose query window overlaps the appended segment
	// (scoped invalidation), so cached answers are never stale.
	// 0 disables caching.
	ResultCache int
	// Memtable, when non-nil, enables the write-optimized ingest path
	// on every shard planner (see Planner.EnableMemtable): appends
	// become lock-light memtable inserts and background compaction
	// rebuilds shard indexes without blocking readers.
	Memtable *MemtableOptions
}

// NewCluster validates and assembles a sharded database from raw
// series. The slice index of each series is its global ID, exactly as
// in NewDB — a Cluster built from the same series as a DB answers
// queries with the same IDs.
func NewCluster(series []SeriesInput, opts ClusterOptions) (*Cluster, error) {
	return NewClusterContext(context.Background(), series, opts)
}

// NewClusterContext is NewCluster with a caller-supplied context
// governing the parallel shard and index builds: cancel it and the
// in-flight build tasks finish, queued ones are skipped, and the
// context's error is returned.
func NewClusterContext(ctx context.Context, series []SeriesInput, opts ClusterOptions) (*Cluster, error) {
	n := opts.Shards
	if n == 0 {
		n = 1
	}
	if n < 1 {
		return nil, fmt.Errorf("temporalrank: cluster needs >= 1 shard, got %d: %w", n, ErrBadConfig)
	}
	if len(series) == 0 {
		return nil, fmt.Errorf("temporalrank: no series given: %w", ErrNoInput)
	}
	part := opts.Partitioner
	if part == nil {
		part = HashPartition
	}
	c := &Cluster{
		part:    part,
		workers: opts.Workers,
		shards:  make([]*clusterShard, n),
		shardOf: make([]int, len(series)),
		localOf: make([]int, len(series)),
	}
	if opts.ResultCache > 0 {
		c.cache = qcache.New[queryKey, Answer](opts.ResultCache)
	}
	inputs := make([][]SeriesInput, n)
	for i := range c.shards {
		c.shards[i] = &clusterShard{}
	}
	for id, in := range series {
		s, err := checkPartition(part, id, n)
		if err != nil {
			return nil, err
		}
		sh := c.shards[s]
		c.shardOf[id] = s
		c.localOf[id] = len(sh.global)
		sh.global = append(sh.global, id)
		inputs[s] = append(inputs[s], in)
	}
	// Phase 1: shard DBs, in parallel. Each task writes only its own
	// shard slot.
	err := scatter.Run(ctx, n, runtime.GOMAXPROCS(0), func(_ context.Context, i int) error {
		if len(inputs[i]) == 0 {
			return nil // empty shard: fewer series than shards
		}
		db, err := NewDB(inputs[i])
		if err != nil {
			return fmt.Errorf("temporalrank: cluster shard %d: %w", i, err)
		}
		c.shards[i].db = db
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Phase 2: every (shard, index) build as one flat parallel batch, so
	// a single-shard multi-index cluster builds as concurrently as a
	// many-shard one.
	type buildJob struct{ shard, opt int }
	var jobs []buildJob
	for i, sh := range c.shards {
		if sh.db == nil {
			continue
		}
		sh.indexes = make([]*Index, len(opts.Indexes))
		for j := range opts.Indexes {
			jobs = append(jobs, buildJob{shard: i, opt: j})
		}
	}
	err = scatter.Run(ctx, len(jobs), runtime.GOMAXPROCS(0), func(_ context.Context, j int) error {
		b := jobs[j]
		ix, err := c.shards[b.shard].db.BuildIndex(opts.Indexes[b.opt])
		if err != nil {
			return fmt.Errorf("temporalrank: cluster shard %d index %q: %w", b.shard, opts.Indexes[b.opt].Method, err)
		}
		c.shards[b.shard].indexes[b.opt] = ix
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Phase 3: one planner per shard routes exactly like a single node.
	for i, sh := range c.shards {
		if sh.db == nil {
			continue
		}
		p, err := NewPlanner(sh.db, sh.indexes...)
		if err != nil {
			return nil, fmt.Errorf("temporalrank: cluster shard %d: %w", i, err)
		}
		if opts.Memtable != nil {
			if err := p.EnableMemtable(*opts.Memtable); err != nil {
				return nil, fmt.Errorf("temporalrank: cluster shard %d: %w", i, err)
			}
		}
		sh.planner = p
	}
	c.initJournals()
	return c, nil
}

// initJournals collects the non-empty shards' append journals for
// scoped cache validation. Called once construction (or restore) has
// built every shard planner.
func (c *Cluster) initJournals() {
	c.journals = c.journals[:0]
	for _, sh := range c.shards {
		if sh.planner != nil {
			c.journals = append(c.journals, sh.planner.journalRef())
		}
	}
}

// NewClusterFromSamples builds a sharded database from raw per-object
// samples, applying the chosen segmentation before partitioning — the
// sharded counterpart of NewDBFromSamples.
func NewClusterFromSamples(objects [][]Sample, method SegmentationMethod, errBudget float64, opts ClusterOptions) (*Cluster, error) {
	return NewClusterFromSamplesContext(context.Background(), objects, method, errBudget, opts)
}

// NewClusterFromSamplesContext is NewClusterFromSamples with a
// caller-supplied context governing the parallel build phases.
func NewClusterFromSamplesContext(ctx context.Context, objects [][]Sample, method SegmentationMethod, errBudget float64, opts ClusterOptions) (*Cluster, error) {
	inputs, err := segmentObjects(objects, method, errBudget)
	if err != nil {
		return nil, err
	}
	return NewClusterContext(ctx, inputs, opts)
}

// NewClusterFromDB re-partitions an existing single-node database into
// a cluster (the rankserver -shards path: load once, shard at startup).
// The cluster copies the DB's current data; later appends to either
// side do not propagate to the other.
func NewClusterFromDB(db *DB, opts ClusterOptions) (*Cluster, error) {
	return NewClusterFromDBContext(context.Background(), db, opts)
}

// NewClusterFromDBContext is NewClusterFromDB with a caller-supplied
// context governing the parallel build phases.
func NewClusterFromDBContext(ctx context.Context, db *DB, opts ClusterOptions) (*Cluster, error) {
	// Copy the vertices out under the read lock directly — no
	// intermediate Snapshot clone, so peak memory is the copy itself.
	db.mu.RLock()
	series := make([]SeriesInput, db.ds.NumSeries())
	for i, s := range db.ds.AllSeries() {
		nv := s.NumSegments() + 1
		times := make([]float64, nv)
		values := make([]float64, nv)
		for j := 0; j < nv; j++ {
			times[j] = s.VertexTime(j)
			values[j] = s.VertexValue(j)
		}
		series[i] = SeriesInput{Times: times, Values: values}
	}
	db.mu.RUnlock()
	return NewClusterContext(ctx, series, opts)
}

// NumShards returns the number of partitions (including empty ones).
func (c *Cluster) NumShards() int { return len(c.shards) }

// NumSeries returns the global object count m.
func (c *Cluster) NumSeries() int { return len(c.shardOf) }

// NumSegments returns the global segment count N (in memtable mode,
// of the compacted bases — segments still in a memtable are counted
// after their compaction).
func (c *Cluster) NumSegments() int {
	total := 0
	for _, sh := range c.shards {
		if sh.planner != nil {
			total += sh.planner.DB().NumSegments()
		}
	}
	return total
}

// Start returns the left end of the global temporal domain.
func (c *Cluster) Start() float64 {
	v, set := 0.0, false
	for _, sh := range c.shards {
		if sh.planner == nil {
			continue
		}
		if s := sh.planner.DB().Start(); !set || s < v {
			v, set = s, true
		}
	}
	return v
}

// End returns the right end of the global temporal domain (of the
// compacted bases, in memtable mode).
func (c *Cluster) End() float64 {
	v, set := 0.0, false
	for _, sh := range c.shards {
		if sh.planner == nil {
			continue
		}
		if e := sh.planner.DB().End(); !set || e > v {
			v, set = e, true
		}
	}
	return v
}

// Planners returns the per-shard planners, indexed by shard; entries
// are nil for empty shards. Through a planner callers reach each
// shard's DB and indexes for stats and direct queries.
func (c *Cluster) Planners() []*Planner {
	out := make([]*Planner, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.planner
	}
	return out
}

// CacheStats returns the cluster result cache's counters; ok is false
// when ClusterOptions.ResultCache was 0.
func (c *Cluster) CacheStats() (stats CacheStats, ok bool) {
	if c.cache == nil {
		return CacheStats{}, false
	}
	s := c.cache.Stats()
	return CacheStats{Hits: s.Hits, Misses: s.Misses, Coalesced: s.Coalesced}, true
}

// Run implements Querier by scatter-gather: every non-empty shard
// answers q through its own planner on a bounded worker pool
// (first-error-wins, context-cancellable), and the per-shard top-k
// lists are merged deterministically. With ClusterOptions.ResultCache
// set, repeated identical queries at the same data version are served
// from the stored merged answer and concurrent identical queries
// coalesce into one scatter. See the type docs for the merged Answer
// semantics.
//
//tr:hotpath
func (c *Cluster) Run(ctx context.Context, q Query) (Answer, error) {
	q = q.withDefaults()
	if err := q.Validate(); err != nil {
		return Answer{}, err
	}
	if c.cache == nil {
		return c.run(ctx, q)
	}
	// Journal versions are snapshotted before the scatter: an append
	// landing mid-run at worst wastes the entry (invalidated on the
	// next lookup), never serves stale data.
	//tr:alloc-ok miss-only closure: on the cached path DoScoped returns before calling it
	ans, _, err := c.cache.DoScoped(ctx, q.cacheKey(), c.journals, q.scope(), func() (Answer, error) {
		return c.run(ctx, q)
	})
	return ans, err
}

// gather is one Run's scatter scratch: per-shard answers, remapped
// top-k lists, and the answered mask. Pooled — the slices are reused
// across Runs with their backing arrays intact.
type gather struct {
	answers  []Answer
	lists    [][]topk.Item
	answered []bool
}

var gatherPool = sync.Pool{New: func() any { return new(gather) }}

// getGather returns a zeroed gather sized for n shards.
func getGather(n int) *gather {
	g := gatherPool.Get().(*gather)
	if cap(g.answers) < n {
		g.answers = make([]Answer, n)
		g.lists = make([][]topk.Item, n)
		g.answered = make([]bool, n)
		return g
	}
	g.answers = g.answers[:n]
	g.lists = g.lists[:n]
	g.answered = g.answered[:n]
	for i := 0; i < n; i++ {
		g.answers[i] = Answer{}
		g.lists[i] = nil
		g.answered[i] = false
	}
	return g
}

// putGather clears the result references (so pooled scratch does not
// pin per-query slices) and returns g to the pool.
func putGather(g *gather) {
	for i := range g.answers {
		g.answers[i] = Answer{}
		g.lists[i] = nil
	}
	gatherPool.Put(g)
}

// run executes one scatter-gather (the uncached Run body).
func (c *Cluster) run(ctx context.Context, q Query) (Answer, error) {
	// Single-shard fast path: local IDs equal global IDs (everything
	// routed to shard 0) and there is nothing to merge, so the shard
	// planner's answer is already the cluster answer — no scatter
	// machinery on the default -shards 1 hot path.
	if len(c.shards) == 1 && c.shards[0].db != nil {
		return c.shards[0].planner.Run(ctx, q)
	}
	g := getGather(len(c.shards))
	defer putGather(g)
	err := scatter.Run(ctx, len(c.shards), c.queryWorkers(), func(ctx context.Context, i int) error {
		sh := c.shards[i]
		if sh.db == nil {
			return nil
		}
		ans, err := sh.planner.Run(ctx, q)
		if err != nil {
			return fmt.Errorf("temporalrank: cluster shard %d: %w", i, err)
		}
		// Remap local result IDs to global inside the shard goroutine.
		// sh.global is ascending, so the shard's tie order (ascending
		// local ID) is the correct global tie order and the list stays in
		// merge order. The per-shard IO delta in ans was likewise
		// snapshotted here, against this shard's own device.
		items := make([]topk.Item, len(ans.Results))
		for j, r := range ans.Results {
			items[j] = topk.Item{ID: tsdata.SeriesID(sh.global[r.ID]), Score: r.Score}
		}
		g.lists[i] = items
		g.answers[i] = ans
		g.answered[i] = true
		return nil
	})
	if err != nil {
		return Answer{}, err
	}
	return mergeGather(q.K, g), nil
}

// mergeGather deterministically merges the per-shard answers collected
// in g into one cluster-level Answer for k: lists k-way merge with the
// global-ID tie-break, Exact ANDs, Epsilon and Latency take the worst
// shard, IOs sum, and Method is the shards' common method or
// MethodMixed. Shared by the in-process Cluster and the RemoteCluster
// router so both merge with identical semantics.
func mergeGather(k int, g *gather) Answer {
	merged := Answer{
		Results: toResults(topk.Merge(k, g.lists...)),
		Exact:   true,
	}
	first := true
	for i := range g.answers {
		if !g.answered[i] {
			continue
		}
		ans := g.answers[i]
		if first {
			merged.Method = ans.Method
			first = false
		} else if merged.Method != ans.Method {
			merged.Method = MethodMixed
		}
		merged.Exact = merged.Exact && ans.Exact
		if ans.Epsilon > merged.Epsilon {
			merged.Epsilon = ans.Epsilon
		}
		merged.IOs += ans.IOs
		if ans.Latency > merged.Latency {
			merged.Latency = ans.Latency
		}
	}
	return merged
}

// queryWorkers resolves the scatter bound for one Run.
func (c *Cluster) queryWorkers() int {
	if c.workers > 0 {
		return c.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Append extends global object id with a new segment ending at (t, v):
// the segment is routed to the owning shard and applied there through
// Planner.Append, which advances the shard DB and every shard index in
// one consistent step. Shards are independent, so appends to different
// shards proceed in parallel.
func (c *Cluster) Append(id int, t, v float64) error {
	sh, local, err := c.route(id)
	if err != nil {
		return err
	}
	return sh.planner.Append(local, t, v)
}

// Score returns the cluster's estimate of σ_id(t1,t2), answered by the
// owning shard's primary (first-registered) index, or its DB when the
// shard runs index-less. Approximate primaries answer with their stored
// estimate or ErrNotMaterialized, exactly as Index.Score.
func (c *Cluster) Score(id int, t1, t2 float64) (float64, error) {
	sh, local, err := c.route(id)
	if err != nil {
		return 0, err
	}
	return sh.planner.Score(local, t1, t2)
}

// route maps a global series ID to its shard and local ID.
func (c *Cluster) route(id int) (*clusterShard, int, error) {
	if id < 0 || id >= len(c.shardOf) {
		return nil, 0, fmt.Errorf("temporalrank: %w: %d", ErrUnknownSeries, id)
	}
	return c.shards[c.shardOf[id]], c.localOf[id], nil
}

// ClusterStats summarizes one cluster's shape and per-shard load.
type ClusterStats struct {
	Shards   int
	Objects  int
	Segments int
	// PerShard has one entry per shard (empty shards report zeros).
	PerShard []ShardStats
}

// ShardStats is one shard's slice of the data and its index footprint.
type ShardStats struct {
	Objects  int
	Segments int
	Indexes  []Stats
}

// Stats reports the cluster's shape: how the partitioner spread the
// objects and what each shard's indexes cost.
func (c *Cluster) Stats() ClusterStats {
	out := ClusterStats{
		Shards:   len(c.shards),
		Objects:  len(c.shardOf),
		PerShard: make([]ShardStats, len(c.shards)),
	}
	for i, sh := range c.shards {
		if sh.planner == nil {
			continue
		}
		db := sh.planner.DB()
		st := ShardStats{
			Objects:  db.NumSeries(),
			Segments: db.NumSegments(),
		}
		for _, ix := range sh.planner.Indexes() {
			st.Indexes = append(st.Indexes, ix.Stats())
		}
		out.PerShard[i] = st
		out.Segments += st.Segments
	}
	return out
}
