package temporalrank_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"temporalrank"
	"temporalrank/internal/gen"
)

// benchCluster builds a shard-count-parameterized cluster over one
// shared random-walk dataset (EXACT3 per shard, the serving default).
func benchCluster(b *testing.B, shards int) *temporalrank.Cluster {
	b.Helper()
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: 400, Navg: 60, Seed: 4, Span: 1000})
	if err != nil {
		b.Fatal(err)
	}
	c, err := temporalrank.NewClusterFromDB(temporalrank.NewDBFromDataset(ds), temporalrank.ClusterOptions{
		Shards:  shards,
		Indexes: []temporalrank.Options{{Method: temporalrank.MethodExact3}},
	})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkClusterRun measures one scatter-gather top-k per iteration
// at 1 vs 8 shards — the scale-out latency trajectory.
func BenchmarkClusterRun(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := benchCluster(b, shards)
			ctx := context.Background()
			rng := rand.New(rand.NewSource(9))
			span := c.End() - c.Start()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t1 := c.Start() + rng.Float64()*span*0.7
				if _, err := c.Run(ctx, temporalrank.SumQuery(10, t1, t1+span*0.2)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterAppend measures the sharded ingest path.
func BenchmarkClusterAppend(b *testing.B) {
	c := benchCluster(b, 8)
	rng := rand.New(rand.NewSource(10))
	tcur := c.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tcur += 0.25
		if err := c.Append(rng.Intn(c.NumSeries()), tcur, rng.NormFloat64()); err != nil {
			b.Fatal(err)
		}
	}
}
