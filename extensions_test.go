package temporalrank

import (
	"math"
	"math/rand"
	"testing"
)

func sampleObjects(rng *rand.Rand, m, n int) [][]Sample {
	objects := make([][]Sample, m)
	for i := range objects {
		samples := make([]Sample, n)
		t := 0.0
		for j := 0; j < n; j++ {
			samples[j] = Sample{T: t, V: 50 + 30*math.Sin(t/7+float64(i)) + rng.NormFloat64()*2}
			t += 0.5 + rng.Float64()
		}
		objects[i] = samples
	}
	return objects
}

func TestNewDBFromSamplesConnect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	objects := sampleObjects(rng, 5, 50)
	db, err := NewDBFromSamples(objects, SegmentConnect, 0)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSeries() != 5 {
		t.Errorf("m = %d", db.NumSeries())
	}
	// Connect keeps every sample: 49 segments per object.
	if db.NumSegments() != 5*49 {
		t.Errorf("N = %d, want 245", db.NumSegments())
	}
}

func TestNewDBFromSamplesSegmented(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	objects := sampleObjects(rng, 5, 200)
	full, err := NewDBFromSamples(objects, SegmentConnect, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []SegmentationMethod{SegmentSlidingWindow, SegmentBottomUp} {
		const budget = 5.0
		db, err := NewDBFromSamples(objects, method, budget)
		if err != nil {
			t.Fatal(err)
		}
		if db.NumSegments() >= full.NumSegments() {
			t.Errorf("method %d: segmentation did not compress (%d vs %d)",
				method, db.NumSegments(), full.NumSegments())
		}
		// Aggregates perturbed by at most δ·(t2−t1).
		t1 := db.Start() + (db.End()-db.Start())*0.2
		t2 := db.Start() + (db.End()-db.Start())*0.8
		for id := 0; id < db.NumSeries(); id++ {
			a, _ := full.Score(id, t1, t2)
			b, _ := db.Score(id, t1, t2)
			if d := math.Abs(a - b); d > budget*(t2-t1) {
				t.Errorf("method %d object %d: drift %g > %g", method, id, d, budget*(t2-t1))
			}
		}
	}
}

// TestNewDBFromSamplesBoundAllMethods sweeps all three segmentation
// methods over many random query intervals, asserting the L∞ budget
// bound on aggregates against SegmentConnect ground truth: a PLA with
// L∞ error δ perturbs any σ_i(t1,t2) by at most δ·(t2−t1). For
// SegmentConnect itself the drift must be exactly zero.
func TestNewDBFromSamplesBoundAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	objects := sampleObjects(rng, 8, 300)
	full, err := NewDBFromSamples(objects, SegmentConnect, 0)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 3.0
	for _, method := range []SegmentationMethod{SegmentConnect, SegmentSlidingWindow, SegmentBottomUp} {
		db, err := NewDBFromSamples(objects, method, budget)
		if err != nil {
			t.Fatalf("method %d: %v", method, err)
		}
		if db.NumSeries() != full.NumSeries() {
			t.Fatalf("method %d: m=%d, want %d", method, db.NumSeries(), full.NumSeries())
		}
		maxDrift := budget
		if method == SegmentConnect {
			maxDrift = 0
		}
		span := full.End() - full.Start()
		for trial := 0; trial < 30; trial++ {
			t1 := full.Start() + rng.Float64()*span*0.9
			t2 := t1 + rng.Float64()*(full.End()-t1)
			bound := maxDrift*(t2-t1) + 1e-9
			for id := 0; id < db.NumSeries(); id++ {
				want, err := full.Score(id, t1, t2)
				if err != nil {
					t.Fatal(err)
				}
				got, err := db.Score(id, t1, t2)
				if err != nil {
					t.Fatal(err)
				}
				if d := math.Abs(want - got); d > bound {
					t.Fatalf("method %d object %d [%g,%g]: drift %g > δ·(t2−t1) = %g",
						method, id, t1, t2, d, bound)
				}
			}
		}
		// The drift bound also caps how far top-k scores can move: the
		// top-1 aggregate under segmentation stays within the bound of
		// the true top-1 aggregate.
		refTop := full.TopK(1, full.Start(), full.End())
		segTop := db.TopK(1, full.Start(), full.End())
		if d := math.Abs(refTop[0].Score - segTop[0].Score); d > maxDrift*span+1e-9 {
			t.Fatalf("method %d: top-1 score drift %g > %g", method, d, maxDrift*span)
		}
	}
}

func TestNewDBFromSamplesErrors(t *testing.T) {
	if _, err := NewDBFromSamples(nil, SegmentConnect, 0); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := NewDBFromSamples([][]Sample{{{T: 0, V: 1}}}, SegmentConnect, 0); err == nil {
		t.Error("single-sample object accepted")
	}
	objects := [][]Sample{{{T: 0, V: 1}, {T: 1, V: 2}}}
	if _, err := NewDBFromSamples(objects, SegmentationMethod(99), 0); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestTopKAvg(t *testing.T) {
	db := smallDB(t)
	idx, err := db.BuildIndex(Options{Method: MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	sums, err := idx.TopK(2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	avgs, err := idx.TopKAvg(2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sums {
		if avgs[i].ID != sums[i].ID {
			t.Errorf("rank %d: avg ranking differs from sum ranking", i)
		}
		if !floatsClose(avgs[i].Score, sums[i].Score/1.0) {
			t.Errorf("rank %d: avg score %g, want %g", i, avgs[i].Score, sums[i].Score)
		}
	}
	// Wider interval: avg = sum / width.
	sums, _ = idx.TopK(1, 0, 3)
	avgs, _ = idx.TopKAvg(1, 0, 3)
	if !floatsClose(avgs[0].Score, sums[0].Score/3) {
		t.Errorf("avg = %g, want %g", avgs[0].Score, sums[0].Score/3)
	}
	if _, err := idx.TopKAvg(1, 2, 2); err == nil {
		t.Error("zero-width avg accepted")
	}
}

func floatsClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestInstantTopK(t *testing.T) {
	db := smallDB(t)
	// At t=1: object 0 scores 5, object 1 scores 1, object 2 scores 10.
	want := db.InstantTopK(2, 1)
	if want[0].ID != 2 || want[1].ID != 0 {
		t.Fatalf("reference instant ranking wrong: %v", want)
	}
	// EXACT3 answers natively via a stab.
	e3, err := db.BuildIndex(Options{Method: MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e3.InstantTopK(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].ID != want[i].ID || !floatsClose(got[i].Score, want[i].Score) {
			t.Errorf("rank %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Other methods fall back to the DB path.
	e1, err := db.BuildIndex(Options{Method: MethodExact1})
	if err != nil {
		t.Fatal(err)
	}
	got, err = e1.InstantTopK(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 2 {
		t.Errorf("fallback instant: %v", got)
	}
}

func TestInstantTopKAgainstDenseScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	objects := sampleObjects(rng, 20, 60)
	db, err := NewDBFromSamples(objects, SegmentConnect, 0)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.BuildIndex(Options{Method: MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		at := db.Start() + rng.Float64()*(db.End()-db.Start())
		got, err := idx.InstantTopK(5, at)
		if err != nil {
			t.Fatal(err)
		}
		want := db.InstantTopK(5, at)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("t=%g rank %d: %d vs %d", at, i, got[i].ID, want[i].ID)
			}
		}
	}
}
