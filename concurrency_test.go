package temporalrank_test

import (
	"math/rand"
	"sync"
	"testing"

	"temporalrank"
	"temporalrank/internal/gen"
)

// These tests are the -race regression net for the concurrent query
// engine: many goroutines querying one Index (TopK, InstantTopK,
// Score, Stats) while a writer interleaves Appends at the time
// frontier. Run with `go test -race` (CI does).

func concurrencyDB(t *testing.T) *temporalrank.DB {
	t.Helper()
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: 40, Navg: 30, Seed: 11, Span: 100})
	if err != nil {
		t.Fatal(err)
	}
	return temporalrank.NewDBFromDataset(ds)
}

func hammerIndex(t *testing.T, method temporalrank.Method) {
	t.Helper()
	db := concurrencyDB(t)
	ix, err := db.BuildIndex(temporalrank.Options{Method: method, TargetR: 60, KMax: 50})
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers          = 8
		queriesPerReader = 60
		appends          = 120
	)
	start, end := db.Start(), db.End()
	span := end - start

	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < queriesPerReader; q++ {
				t1 := start + rng.Float64()*span*0.8
				t2 := t1 + rng.Float64()*span*0.2
				switch q % 4 {
				case 0, 1:
					if _, err := ix.TopK(5, t1, t2); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := ix.InstantTopK(5, t1); err != nil {
						errs <- err
						return
					}
				default:
					if _, err := ix.Score(int(rng.Int31n(int32(db.NumSeries()))), t1, t2); err != nil {
						errs <- err
						return
					}
				}
				// Stats and ResetStats race-harmlessly with queries now
				// that the counters are atomic.
				_ = ix.Stats()
				if q%16 == 0 {
					ix.ResetStats()
				}
			}
		}(int64(r + 1))
	}

	// One writer appending at the frontier of round-robin objects.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		m := db.NumSeries()
		// Appends must land strictly after each object's current end;
		// march one shared clock forward past the global domain.
		tcur := end
		for a := 0; a < appends; a++ {
			tcur += 0.5 + rng.Float64()
			if err := ix.Append(a%m, tcur, rng.NormFloat64()*5); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The index must still agree with the reference after the dust
	// settles (exact methods exactly; approximate methods have their
	// own guarantee tests, so just require a well-formed answer).
	t1 := start + span*0.3
	t2 := start + span*0.6
	got, err := ix.TopK(5, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d results, want 5", len(got))
	}
	if !ix.Method().IsApprox() {
		want := db.TopK(5, t1, t2)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("rank %d: got object %d, want %d (got=%v want=%v)", i, got[i].ID, want[i].ID, got, want)
			}
		}
	}
}

func TestConcurrentQueriesAndAppendsExact3(t *testing.T) {
	hammerIndex(t, temporalrank.MethodExact3)
}

func TestConcurrentQueriesAndAppendsAppx2Plus(t *testing.T) {
	hammerIndex(t, temporalrank.MethodAppx2P)
}

// TestApproxAppendRefreshesDB pins the rule that an Append through an
// approximate index updates the DB-level aggregates immediately, not
// only at the next amortized rebuild.
func TestApproxAppendRefreshesDB(t *testing.T) {
	db := concurrencyDB(t)
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodAppx2, TargetR: 60, KMax: 50})
	if err != nil {
		t.Fatal(err)
	}
	segsBefore := db.NumSegments()
	tNew := db.End() + 5
	if err := ix.Append(0, tNew, 1.0); err != nil {
		t.Fatal(err)
	}
	if got := db.End(); got != tNew {
		t.Fatalf("db.End() = %g after append, want %g", got, tNew)
	}
	if got := db.NumSegments(); got != segsBefore+1 {
		t.Fatalf("db.NumSegments() = %d after append, want %d", got, segsBefore+1)
	}
}

// TestConcurrentDBReadsDuringAppend covers the other audited surface:
// brute-force DB reads racing an index writer over the same dataset.
func TestConcurrentDBReadsDuringAppend(t *testing.T) {
	db := concurrencyDB(t)
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				t1 := db.Start() + rng.Float64()*50
				_ = db.TopK(3, t1, t1+10)
				_ = db.InstantTopK(3, t1)
				if _, err := db.Score(int(rng.Int31n(int32(db.NumSeries()))), t1, t1+10); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(r + 50))
	}
	tcur := db.End()
	for a := 0; a < 100; a++ {
		tcur += 1
		if err := ix.Append(a%db.NumSeries(), tcur, float64(a%7)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
