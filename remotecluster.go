package temporalrank

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"temporalrank/internal/remote"
	"temporalrank/internal/scatter"
	"temporalrank/internal/topk"
	"temporalrank/internal/tsdata"
)

// RemoteCluster is the distributed Querier: the router half of the
// serving tier. Series are placed over N shard groups exactly as in
// the in-process Cluster (the placement is fixed by the snapshots the
// shard nodes restored); each group is served by R replica addresses,
// any one of which can answer a read. A query scatters over the
// groups, each group answers through a hedged fastest-of-two read
// across its live replicas, and the per-group top-k lists — already in
// global IDs — k-way merge through the same deterministic mergeGather
// as the in-process Cluster, so a RemoteCluster answers bit-identically
// to a single node over the same data.
//
// Failure semantics:
//
//   - A transport failure (dead connection, unreachable host) marks the
//     replica Down and the read fails over to the next live replica; the
//     query succeeds as long as one replica per group answers.
//   - An application error (bad query, unknown series) is returned
//     as-is: every replica would answer the same, so no failover.
//   - A group with no answering replica fails the query with a typed
//     ErrShardUnavailable.
//   - Appends go to the group's primary (first live replica) and are
//     replayed synchronously to the other live replicas; a follower that
//     fails or diverges is marked for resync and stops serving reads
//     until the health loop re-bootstraps it from the primary's streamed
//     snapshot (ShardNode "restore"), after which it serves again —
//     bit-identical, since the snapshot carries the full stack.
//
// RemoteCluster is safe for concurrent use.
type RemoteCluster struct {
	client    *remote.Client
	ownClient bool
	groups    []*remoteGroup
	shardOf   []int // global series ID → group index
	workers   int
	hedge     time.Duration
	callTO    time.Duration

	stop    chan struct{}
	healthW sync.WaitGroup
	closed  atomic.Bool
}

// ReplicaState is one replica's health as the router sees it.
type ReplicaState int32

const (
	// ReplicaLive serves reads and replicated appends.
	ReplicaLive ReplicaState = iota
	// ReplicaSyncing is reachable but lagging or missing its shard; it
	// serves nothing until the health loop re-bootstraps it.
	ReplicaSyncing
	// ReplicaDown is unreachable.
	ReplicaDown
)

func (s ReplicaState) String() string {
	switch s {
	case ReplicaLive:
		return "live"
	case ReplicaSyncing:
		return "syncing"
	default:
		return "down"
	}
}

// remoteReplica is one replica address plus its health state.
type remoteReplica struct {
	addr  string
	state atomic.Int32
}

func (r *remoteReplica) load() ReplicaState   { return ReplicaState(r.state.Load()) }
func (r *remoteReplica) store(s ReplicaState) { r.state.Store(int32(s)) }

// remoteGroup is one shard's replica set.
type remoteGroup struct {
	shard    int
	replicas []*remoteReplica
	// appendMu serializes appends and resyncs within the group: appends
	// replay synchronously to every live replica under it, and a resync
	// holds it for the snapshot transfer, so a re-bootstrapped replica
	// is exactly as current as its source when it goes live.
	appendMu sync.Mutex
	// next rotates the read start across replicas for load spread.
	next atomic.Uint32
}

// liveReplicas snapshots the group's currently-live replicas, rotated
// so consecutive reads start at different replicas.
func (g *remoteGroup) liveReplicas() []*remoteReplica {
	live := make([]*remoteReplica, 0, len(g.replicas))
	start := int(g.next.Add(1)) % len(g.replicas)
	for i := 0; i < len(g.replicas); i++ {
		r := g.replicas[(start+i)%len(g.replicas)]
		if r.load() == ReplicaLive {
			live = append(live, r)
		}
	}
	return live
}

// RemoteClusterOptions configures NewRemoteCluster.
type RemoteClusterOptions struct {
	// Workers bounds how many groups one Run queries concurrently
	// (default: all of them).
	Workers int
	// HedgeDelay is how long a group read waits on its first replica
	// before launching the hedge request at a second one; the faster
	// answer wins and the loser is canceled. 0 selects the 2ms default;
	// a negative value disables hedging.
	HedgeDelay time.Duration
	// HealthInterval is the period of the background health sweep that
	// probes replicas and re-bootstraps lagging ones. 0 selects the 1s
	// default; a negative value disables the loop (HealthCheck can
	// still be driven manually).
	HealthInterval time.Duration
	// CallTimeout bounds RPCs issued by methods without a caller
	// context (Append, Score). 0 leaves the Client's own guard (10s).
	CallTimeout time.Duration
	// Client overrides the RPC client (shared pools, custom timeouts).
	// Nil builds a private one, closed with the cluster.
	Client *remote.Client
}

// defaultHedgeDelay is the fastest-of-two trigger: long enough that the
// common-case answer arrives first and no hedge is sent, short enough
// to cut a straggler's tail.
const defaultHedgeDelay = 2 * time.Millisecond

// NewRemoteCluster connects to the given shard groups — groups[i]
// lists the replica addresses serving shard i — probes the topology,
// and returns a ready Querier. At least one replica per group must be
// reachable and hosting its shard; the others may be down or empty
// (they are marked for re-bootstrap by the health loop). The global
// series placement is read from the replicas' shard manifests and
// validated exhaustively: every series must be owned by exactly one
// group, and every replica must agree on the cluster shape.
func NewRemoteCluster(groups [][]string, opts RemoteClusterOptions) (*RemoteCluster, error) {
	return NewRemoteClusterContext(context.Background(), groups, opts)
}

// NewRemoteClusterContext is NewRemoteCluster with a caller context
// governing the topology probe.
func NewRemoteClusterContext(ctx context.Context, groups [][]string, opts RemoteClusterOptions) (*RemoteCluster, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("temporalrank: remote cluster needs >= 1 shard group: %w", ErrBadConfig)
	}
	c := &RemoteCluster{
		client:  opts.Client,
		workers: opts.Workers,
		hedge:   opts.HedgeDelay,
		callTO:  opts.CallTimeout,
		stop:    make(chan struct{}),
	}
	if c.hedge == 0 {
		c.hedge = defaultHedgeDelay
	}
	if c.client == nil {
		c.client = remote.NewClient(remote.ClientOptions{})
		c.ownClient = true
	}
	c.groups = make([]*remoteGroup, len(groups))
	for i, addrs := range groups {
		if len(addrs) == 0 {
			return nil, fmt.Errorf("temporalrank: shard group %d has no replicas: %w", i, ErrBadConfig)
		}
		g := &remoteGroup{shard: i, replicas: make([]*remoteReplica, len(addrs))}
		for j, addr := range addrs {
			if addr == "" {
				return nil, fmt.Errorf("temporalrank: shard group %d has an empty address: %w", i, ErrBadConfig)
			}
			g.replicas[j] = &remoteReplica{addr: addr}
		}
		c.groups[i] = g
	}
	if err := c.discover(ctx); err != nil {
		if c.ownClient {
			c.client.Close()
		}
		return nil, err
	}
	interval := opts.HealthInterval
	if interval == 0 {
		interval = time.Second
	}
	if interval > 0 {
		c.healthW.Add(1)
		go c.healthLoop(interval)
	}
	return c, nil
}

// discover probes every replica, validates the cluster shape, and
// builds the global routing table.
func (c *RemoteCluster) discover(ctx context.Context) error {
	numShards, numSeries := -1, -1
	routing := make([][]int, len(c.groups))
	for _, g := range c.groups {
		found := false
		for _, r := range g.replicas {
			var meta rpcMetaReply
			if err := c.client.Call(ctx, r.addr, "meta", nil, &meta); err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				r.store(ReplicaDown)
				continue
			}
			info, ok := findShardInfo(meta.Shards, g.shard)
			if !ok {
				r.store(ReplicaSyncing) // reachable, not hosting yet
				continue
			}
			if numShards == -1 {
				numShards, numSeries = info.NumShards, info.NumSeries
			}
			if info.NumShards != numShards || info.NumSeries != numSeries {
				return fmt.Errorf("temporalrank: replica %s disagrees on cluster shape (%d/%d vs %d/%d): %w",
					r.addr, info.NumShards, info.NumSeries, numShards, numSeries, ErrBadConfig)
			}
			r.store(ReplicaLive)
			if !found {
				var rt rpcRoutingReply
				if err := c.client.Call(ctx, r.addr, "routing", rpcShardReq{Shard: g.shard}, &rt); err != nil {
					return fmt.Errorf("temporalrank: routing for shard %d from %s: %w", g.shard, r.addr, err)
				}
				routing[g.shard] = rt.Global
				found = true
			}
		}
		if !found {
			return fmt.Errorf("temporalrank: no reachable replica hosts shard %d: %w", g.shard, ErrShardUnavailable)
		}
	}
	if numShards != len(c.groups) {
		return fmt.Errorf("temporalrank: snapshots describe %d shards but %d groups were given: %w",
			numShards, len(c.groups), ErrBadConfig)
	}
	c.shardOf = make([]int, numSeries)
	for g := range c.shardOf {
		c.shardOf[g] = -1
	}
	for shard, global := range routing {
		prev := -1
		for _, id := range global {
			if id < 0 || id >= numSeries || c.shardOf[id] != -1 {
				return fmt.Errorf("temporalrank: shard %d routes series %d twice or out of range: %w", shard, id, ErrBadConfig)
			}
			if id <= prev {
				return fmt.Errorf("temporalrank: shard %d global-ID list not ascending: %w", shard, ErrBadConfig)
			}
			c.shardOf[id] = shard
			prev = id
		}
	}
	for id, s := range c.shardOf {
		if s == -1 {
			return fmt.Errorf("temporalrank: no shard group owns series %d: %w", id, ErrBadConfig)
		}
	}
	return nil
}

// findShardInfo locates one shard's entry in a meta reply.
func findShardInfo(infos []rpcShardInfo, shard int) (rpcShardInfo, bool) {
	for _, info := range infos {
		if info.Shard == shard {
			return info, true
		}
	}
	return rpcShardInfo{}, false
}

// Compile-time check: the remote cluster is a Querier like everything
// else in the stack.
var _ Querier = (*RemoteCluster)(nil)

// NumShards returns the number of shard groups.
func (c *RemoteCluster) NumShards() int { return len(c.groups) }

// NumSeries returns the global object count m.
func (c *RemoteCluster) NumSeries() int { return len(c.shardOf) }

// Close stops the health loop and releases the private RPC client (a
// caller-supplied Client is left open).
func (c *RemoteCluster) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(c.stop)
	c.healthW.Wait()
	if c.ownClient {
		return c.client.Close()
	}
	return nil
}

// Run implements Querier by scatter-gather over the shard groups: each
// group answers through a hedged read across its live replicas, and
// the per-group lists merge deterministically — identical semantics to
// the in-process Cluster, over sockets.
func (c *RemoteCluster) Run(ctx context.Context, q Query) (Answer, error) {
	q = q.withDefaults()
	if err := q.Validate(); err != nil {
		return Answer{}, err
	}
	g := getGather(len(c.groups))
	defer putGather(g)
	err := scatter.Run(ctx, len(c.groups), c.queryWorkers(), func(ctx context.Context, i int) error {
		ans, err := c.groupRead(ctx, c.groups[i], q)
		if err != nil {
			return err
		}
		// Shard nodes answer in global IDs already (remapped through the
		// ascending manifest list), so the answer is merge-ready as-is.
		items := make([]topk.Item, len(ans.Results))
		for j, r := range ans.Results {
			items[j] = topk.Item{ID: tsdata.SeriesID(r.ID), Score: r.Score}
		}
		g.lists[i] = items
		g.answers[i] = ans
		g.answered[i] = true
		return nil
	})
	if err != nil {
		return Answer{}, err
	}
	return mergeGather(q.K, g), nil
}

// queryWorkers resolves the scatter bound for one Run.
func (c *RemoteCluster) queryWorkers() int {
	if c.workers > 0 {
		return c.workers
	}
	return len(c.groups)
}

// laneResult is one read lane's outcome.
type laneResult struct {
	ans Answer
	ok  bool
	err error
}

// groupRead answers q from one group: the first lane queries the first
// live replica immediately; if the answer has not arrived within the
// hedge delay, a second lane queries the next replica and the faster
// answer wins (the loser is canceled). Both lanes fail over on
// transport errors — a dead replica is marked Down and the lane moves
// to the next candidate — while application errors are final.
func (c *RemoteCluster) groupRead(ctx context.Context, g *remoteGroup, q Query) (Answer, error) {
	cands := g.liveReplicas()
	if len(cands) == 0 {
		return Answer{}, fmt.Errorf("temporalrank: shard %d has no live replica: %w", g.shard, ErrShardUnavailable)
	}
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int32
	results := make(chan laneResult, 2) // buffered: a losing lane's send never blocks
	lane := func() {
		var lastErr error
		for {
			i := int(next.Add(1)) - 1
			if i >= len(cands) {
				results <- laneResult{err: lastErr}
				return
			}
			r := cands[i]
			var rep rpcQueryReply
			err := c.client.CallOnce(lctx, r.addr, "query", rpcQueryReq{Shard: g.shard, Query: q}, &rep)
			if err == nil {
				results <- laneResult{ans: rep.Answer, ok: true}
				return
			}
			if lctx.Err() != nil {
				results <- laneResult{err: err}
				return
			}
			switch {
			case remote.Retryable(err):
				// Transport failure: the replica may be dead. Stop routing
				// to it and fail over within the lane.
				r.store(ReplicaDown)
				lastErr = err
			case errors.Is(err, ErrShardUnavailable):
				// Reachable but not hosting the shard (restarted empty):
				// mark for re-bootstrap and fail over.
				r.store(ReplicaSyncing)
				lastErr = err
			default:
				results <- laneResult{err: err} // application error: final
				return
			}
		}
	}
	lanes := 1
	go lane()
	if c.hedge >= 0 && len(cands) > 1 {
		lanes = 2
		go func() {
			t := time.NewTimer(c.hedge)
			defer t.Stop()
			select {
			case <-lctx.Done():
				results <- laneResult{err: lctx.Err()}
				return
			case <-t.C:
			}
			lane()
		}()
	}
	var appErr, transportErr error
	for i := 0; i < lanes; i++ {
		lr := <-results
		if lr.ok {
			return lr.ans, nil
		}
		var re *remote.Error
		switch {
		case lr.err == nil:
		case errors.As(lr.err, &re) && !errors.Is(lr.err, ErrShardUnavailable):
			appErr = lr.err
		default:
			transportErr = lr.err
		}
	}
	if appErr != nil {
		return Answer{}, appErr
	}
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}
	if transportErr != nil {
		return Answer{}, fmt.Errorf("temporalrank: shard %d has no answering replica: %w: %w", g.shard, transportErr, ErrShardUnavailable)
	}
	return Answer{}, fmt.Errorf("temporalrank: shard %d has no answering replica: %w", g.shard, ErrShardUnavailable)
}

// Append extends global object id with a new segment ending at (t, v).
// The segment is applied on the owning group's primary (its first live
// replica) and replayed synchronously to the group's other live
// replicas, so any live replica serves reads that include it. A
// follower that fails the replay or diverges is marked for resync and
// stops serving until the health loop re-bootstraps it.
func (c *RemoteCluster) Append(id int, t, v float64) error {
	if id < 0 || id >= len(c.shardOf) {
		return fmt.Errorf("temporalrank: %w: %d", ErrUnknownSeries, id)
	}
	g := c.groups[c.shardOf[id]]
	g.appendMu.Lock()
	defer g.appendMu.Unlock()
	ctx, cancel := c.callCtx()
	defer cancel()
	req := rpcAppendReq{Shard: g.shard, ID: id, T: t, V: v}
	var (
		primary *remoteReplica
		prep    rpcAppendReply
		lastErr error
	)
	for _, r := range g.replicas {
		if r.load() != ReplicaLive {
			continue
		}
		var rep rpcAppendReply
		// CallOnce: an append is not idempotent, so a transport failure
		// is never retried transparently — the replica is marked for
		// resync instead, which converges it whether or not the lost
		// call applied.
		err := c.client.CallOnce(ctx, r.addr, "append", req, &rep)
		if primary == nil {
			switch {
			case err == nil:
				primary, prep = r, rep
			case remote.Retryable(err):
				r.store(ReplicaDown)
				lastErr = err
			case errors.Is(err, ErrShardUnavailable):
				r.store(ReplicaSyncing)
				lastErr = err
			default:
				return err // validation failure: nothing was applied
			}
			continue
		}
		// Follower replay: any failure or version divergence demotes the
		// follower until it re-bootstraps from the primary.
		if err != nil || rep.Version != prep.Version {
			if err != nil && remote.Retryable(err) {
				r.store(ReplicaDown)
			} else {
				r.store(ReplicaSyncing)
			}
		}
	}
	if primary == nil {
		if lastErr != nil {
			return fmt.Errorf("temporalrank: append to shard %d: %w: %w", g.shard, lastErr, ErrShardUnavailable)
		}
		return fmt.Errorf("temporalrank: append to shard %d: %w", g.shard, ErrShardUnavailable)
	}
	return nil
}

// Score returns σ_id(t1,t2) as answered by the owning group (first
// live replica, with transport failover).
func (c *RemoteCluster) Score(id int, t1, t2 float64) (float64, error) {
	if id < 0 || id >= len(c.shardOf) {
		return 0, fmt.Errorf("temporalrank: %w: %d", ErrUnknownSeries, id)
	}
	g := c.groups[c.shardOf[id]]
	ctx, cancel := c.callCtx()
	defer cancel()
	var lastErr error
	for _, r := range g.liveReplicas() {
		var rep rpcScoreReply
		err := c.client.CallOnce(ctx, r.addr, "score", rpcScoreReq{Shard: g.shard, ID: id, T1: t1, T2: t2}, &rep)
		switch {
		case err == nil:
			return rep.Score, nil
		case remote.Retryable(err):
			r.store(ReplicaDown)
			lastErr = err
		case errors.Is(err, ErrShardUnavailable):
			r.store(ReplicaSyncing)
			lastErr = err
		default:
			return 0, err
		}
	}
	if lastErr != nil {
		return 0, fmt.Errorf("temporalrank: score on shard %d: %w: %w", g.shard, lastErr, ErrShardUnavailable)
	}
	return 0, fmt.Errorf("temporalrank: score on shard %d: %w", g.shard, ErrShardUnavailable)
}

// Checkpoint asks every reachable replica to persist its hosted shard
// back to its own data directory (atomically, temp+rename). Groups
// checkpoint in parallel; the first failure wins.
func (c *RemoteCluster) Checkpoint(ctx context.Context) error {
	return scatter.Run(ctx, len(c.groups), len(c.groups), func(ctx context.Context, i int) error {
		g := c.groups[i]
		persisted := false
		var lastErr error
		for _, r := range g.replicas {
			if r.load() != ReplicaLive {
				continue
			}
			if err := c.client.Call(ctx, r.addr, "checkpoint", rpcShardReq{Shard: g.shard}, nil); err != nil {
				lastErr = err
				continue
			}
			persisted = true
		}
		if !persisted {
			if lastErr != nil {
				return fmt.Errorf("temporalrank: checkpoint shard %d: %w", g.shard, lastErr)
			}
			return fmt.Errorf("temporalrank: checkpoint shard %d: %w", g.shard, ErrShardUnavailable)
		}
		return nil
	})
}

// callCtx builds the context for RPCs issued by methods without a
// caller context (Append, Score).
func (c *RemoteCluster) callCtx() (context.Context, context.CancelFunc) {
	if c.callTO > 0 {
		return context.WithTimeout(context.Background(), c.callTO)
	}
	return context.WithCancel(context.Background())
}

// healthLoop drives periodic HealthChecks until Close.
func (c *RemoteCluster) healthLoop(interval time.Duration) {
	defer c.healthW.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			//tr:alloc-ok background sweep, not a query path
			_ = c.HealthCheck(context.Background())
		}
	}
}

// HealthCheck probes every replica once and repairs what it can: an
// unreachable replica is marked Down, a reachable one that lags or
// lost its shard is re-bootstrapped from the group's most current
// replica (streamed snapshot transfer) and goes Live again. The check
// holds each group's append lock during its repair, so a re-bootstrapped
// replica is exactly as current as its source. It returns an error
// wrapping ErrShardUnavailable if any group finishes with no live
// replica. The background loop calls this periodically; tests and
// operators can drive it directly for deterministic recovery.
func (c *RemoteCluster) HealthCheck(ctx context.Context) error {
	var firstErr error
	for _, g := range c.groups {
		if err := c.checkGroup(ctx, g); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return firstErr
}

// checkGroup probes and repairs one group under its append lock.
func (c *RemoteCluster) checkGroup(ctx context.Context, g *remoteGroup) error {
	g.appendMu.Lock()
	defer g.appendMu.Unlock()
	type probe struct {
		r       *remoteReplica
		hosting bool
		version uint64
	}
	probes := make([]probe, 0, len(g.replicas))
	var best *probe
	for _, r := range g.replicas {
		var meta rpcMetaReply
		if err := c.client.Call(ctx, r.addr, "meta", nil, &meta); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			r.store(ReplicaDown)
			continue
		}
		p := probe{r: r}
		if info, ok := findShardInfo(meta.Shards, g.shard); ok {
			p.hosting, p.version = true, info.Version
		}
		probes = append(probes, p)
		if p.hosting && (best == nil || p.version > best.version) {
			best = &probes[len(probes)-1]
		}
	}
	if best == nil {
		// No reachable replica holds the shard: nothing to repair from.
		for _, p := range probes {
			p.r.store(ReplicaSyncing)
		}
		return fmt.Errorf("temporalrank: shard %d has no live replica: %w", g.shard, ErrShardUnavailable)
	}
	best.r.store(ReplicaLive)
	for i := range probes {
		p := &probes[i]
		if p.r == best.r {
			continue
		}
		if p.hosting && p.version == best.version {
			p.r.store(ReplicaLive)
			continue
		}
		// Lagging or empty: pull a fresh snapshot from the best replica.
		// The append lock is held, so the transferred state is final.
		var rep rpcAppendReply
		if err := c.client.Call(ctx, p.r.addr, "restore", rpcRestoreReq{Shard: g.shard, From: best.r.addr}, &rep); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			p.r.store(ReplicaSyncing)
			continue
		}
		if rep.Version == best.version {
			p.r.store(ReplicaLive)
		} else {
			p.r.store(ReplicaSyncing)
		}
	}
	return nil
}

// GroupHealth reports one shard group's replica states.
type GroupHealth struct {
	Shard    int
	Replicas []ReplicaHealth
}

// ReplicaHealth is one replica's address and current state.
type ReplicaHealth struct {
	Addr  string
	State string
}

// Health snapshots the router's view of every replica.
func (c *RemoteCluster) Health() []GroupHealth {
	out := make([]GroupHealth, len(c.groups))
	for i, g := range c.groups {
		gh := GroupHealth{Shard: g.shard, Replicas: make([]ReplicaHealth, len(g.replicas))}
		for j, r := range g.replicas {
			gh.Replicas[j] = ReplicaHealth{Addr: r.addr, State: r.load().String()}
		}
		out[i] = gh
	}
	return out
}
