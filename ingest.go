package temporalrank

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"temporalrank/internal/memtable"
	"temporalrank/internal/qcache"
	"temporalrank/internal/scatter"
	"temporalrank/internal/topk"
	"temporalrank/internal/tsdata"
)

// baseStack is one immutable generation's read stack: the compacted
// database plus the indexes built over it. It is the B of the
// memtable layer's Gen[B].
type baseStack struct {
	db      *DB
	indexes []*Index
}

// MemtableOptions configures the planner's write-optimized ingest
// path (EnableMemtable).
type MemtableOptions struct {
	// FlushSegments triggers a background compaction once the active
	// memtable holds this many segments (<= 0 selects 4096).
	FlushSegments int
	// Stripes is the memtable's lock-stripe count, rounded up to a
	// power of two (<= 0 selects the default, 16).
	Stripes int
	// DisableAutoCompact turns the background trigger off; the memtable
	// then drains only through explicit Planner.Compact calls (or a
	// Checkpoint, which compacts first). Meant for tests and benchmarks
	// that schedule compaction deterministically.
	DisableAutoCompact bool
}

// MemtableStats describes the ingest path's current state.
type MemtableStats struct {
	// ActiveSegments / ActiveSeries are the segment and distinct-series
	// counts of the table currently taking writes.
	ActiveSegments int64
	ActiveSeries   int
	// FrozenSegments is the size of the table a compaction is draining
	// (0 when none is in flight).
	FrozenSegments int64
	// Generations counts completed compactions.
	Generations uint64
	// Compacting reports whether a background compaction is running.
	Compacting bool
}

// ingestState is the planner's memtable mode: a generation layer in
// front of the (now immutable) base stack, plus the scoped invalidation
// journal and compaction bookkeeping.
type ingestState struct {
	opts     MemtableOptions
	journal  *qcache.Journal
	frontier memtable.FrontierFunc
	layer    *memtable.Layer[baseStack]
	// base0 is the DB version when the memtable was enabled; the
	// planner-reported DataVersion is base0 + journal.Version(), a pure
	// append count independent of compaction timing (replicas applying
	// the same appends report the same version no matter when each
	// compacts).
	base0 uint64
	// m is the series count, fixed for the planner's lifetime (the
	// paper's update model only grows series at their frontier).
	m int

	// compactMu serializes compactions (explicit Compact calls and the
	// background trigger).
	compactMu  sync.Mutex
	compacting atomic.Bool
	gens       atomic.Uint64
	diskGen    atomic.Uint64
	lastErr    atomic.Value // most recent background compaction error
}

// EnableMemtable switches the planner to write-optimized ingest: from
// now on Append inserts into an in-memory delta layer (lock-light,
// never touching the index structures), queries merge the delta with
// the immutable base indexes, and a background compaction periodically
// rebuilds the base from the accumulated deltas without blocking
// readers or writers.
//
// Call it after registering every index and before sharing the planner
// across goroutines; AddIndex is rejected afterwards. Appends must then
// go through Planner.Append (or Cluster.Append above it) — appending
// directly on the DB or an Index would bypass the delta layer.
func (p *Planner) EnableMemtable(opts MemtableOptions) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ingest != nil {
		return fmt.Errorf("temporalrank: memtable already enabled: %w", ErrBadConfig)
	}
	if opts.FlushSegments <= 0 {
		opts.FlushSegments = 4096
	}
	ing := &ingestState{
		opts:    opts,
		journal: qcache.NewJournal(0),
		base0:   p.db.version.Load(),
		m:       p.db.NumSeries(),
	}
	// The frontier of a series not present in the active table is its
	// end vertex in the frozen table (if a compaction holds one for it)
	// or the base dataset. Resolving through the layer keeps the chain
	// depth at two: once a compaction installs a new base, the frozen
	// table is gone and the base answers directly.
	ing.frontier = func(id int) (float64, float64, bool) {
		g := ing.layer.Load()
		if g.Frozen != nil {
			if t, v, ok := g.Frozen.Frontier(id); ok {
				return t, v, true
			}
		}
		return baseFrontier(g.Base.db, id)
	}
	ing.layer = memtable.NewLayer(&memtable.Gen[baseStack]{
		Base:   baseStack{db: p.db, indexes: append([]*Index(nil), p.indexes...)},
		Active: memtable.NewTable(ing.frontier, opts.Stripes),
	})
	p.ingest = ing
	p.journals = []*qcache.Journal{ing.journal}
	return nil
}

// baseFrontier returns the end vertex of series id in db.
func baseFrontier(db *DB, id int) (float64, float64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if id < 0 || id >= db.ds.NumSeries() {
		return 0, 0, false
	}
	s := db.ds.Series(tsdata.SeriesID(id))
	return s.End(), s.VertexValue(s.NumSegments()), true
}

// MemtableStats returns the ingest path's current state; ok is false
// when EnableMemtable has not been called.
func (p *Planner) MemtableStats() (stats MemtableStats, ok bool) {
	p.mu.RLock()
	ing := p.ingest
	p.mu.RUnlock()
	if ing == nil {
		return MemtableStats{}, false
	}
	g := ing.layer.Load()
	stats = MemtableStats{
		ActiveSegments: g.Active.Segments(),
		ActiveSeries:   g.Active.NumSeries(),
		Generations:    ing.gens.Load(),
		Compacting:     ing.compacting.Load(),
	}
	if g.Frozen != nil {
		stats.FrozenSegments = g.Frozen.Segments()
	}
	return stats, true
}

// appendMemtable is Planner.Append in memtable mode: insert into the
// delta layer, record the scoped invalidation event, maybe kick a
// background compaction. No index or DB lock is taken.
func (p *Planner) appendMemtable(ing *ingestState, id int, t, v float64) error {
	if id < 0 || id >= ing.m {
		return fmt.Errorf("temporalrank: %w: %d", ErrUnknownSeries, id)
	}
	prev, err := ing.layer.Append(id, t, v)
	if err != nil {
		return err
	}
	// Advance strictly after the insert is visible: a concurrent lookup
	// that misses this event can only have read post-insert data, so
	// entries are at worst invalidated needlessly, never stale.
	ing.journal.Advance(qcache.Scope{Series: id, T1: prev, T2: t})
	p.maybeCompact(ing)
	return nil
}

// maybeCompact starts a background compaction when the active table
// has reached the flush threshold and none is already running.
func (p *Planner) maybeCompact(ing *ingestState) {
	if ing.opts.DisableAutoCompact {
		return
	}
	if ing.layer.Load().Active.Segments() < int64(ing.opts.FlushSegments) {
		return
	}
	if !ing.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer ing.compacting.Store(false)
		if err := p.Compact(context.Background()); err != nil {
			ing.lastErr.Store(err)
		}
	}()
}

// Compact drains the memtable into a freshly built base stack: freeze
// the active table, rebuild dataset + indexes with the frozen deltas
// applied (no locks held — readers keep answering from the pinned
// generation, writers keep inserting into the new active table), then
// atomically install the new base. Returns with the memtable state
// drained of everything appended before the call began. No-op when the
// memtable is empty; an error leaves the frozen table in place to be
// retried by the next Compact.
func (p *Planner) Compact(ctx context.Context) error {
	p.mu.RLock()
	ing := p.ingest
	p.mu.RUnlock()
	if ing == nil {
		return fmt.Errorf("temporalrank: Compact without EnableMemtable: %w", ErrBadConfig)
	}
	ing.compactMu.Lock()
	defer ing.compactMu.Unlock()

	g := ing.layer.Update(func(old *memtable.Gen[baseStack]) *memtable.Gen[baseStack] {
		if old.Frozen != nil {
			// A previous attempt failed after freezing; drain that first.
			return old
		}
		if old.Active.Segments() == 0 {
			return old
		}
		return &memtable.Gen[baseStack]{
			Base:   old.Base,
			Frozen: old.Active,
			Active: memtable.NewTable(ing.frontier, ing.opts.Stripes),
		}
	})
	if g.Frozen == nil {
		return nil
	}
	newBase, err := rebuildBase(ctx, ing, g.Base, g.Frozen)
	if err != nil {
		return err
	}
	ing.layer.Update(func(old *memtable.Gen[baseStack]) *memtable.Gen[baseStack] {
		return &memtable.Gen[baseStack]{Base: newBase, Active: old.Active}
	})
	ing.gens.Add(1)
	return nil
}

// rebuildBase builds the next generation's base stack: a snapshot of
// the old dataset with the frozen deltas applied, and an index per old
// index rebuilt over it with the same build options (the existing build
// machinery — no incremental index surgery). Runs without any planner,
// DB, or index locks.
func rebuildBase(ctx context.Context, ing *ingestState, base baseStack, frozen *memtable.Table) (baseStack, error) {
	ds := base.db.Snapshot()
	var applied uint64
	var err error
	frozen.All(func(id int, times, values []float64) {
		if err != nil {
			return
		}
		s := ds.Series(tsdata.SeriesID(id))
		for j := range times {
			if e := s.Append(times[j], values[j]); e != nil {
				err = fmt.Errorf("temporalrank: compaction: series %d: %w", id, e)
				return
			}
			applied++
		}
	})
	if err != nil {
		return baseStack{}, err
	}
	ds.Refresh()
	db := NewDBFromDataset(ds)
	// The new base's version reflects the drained appends, so snapshot
	// manifests written from it stay consistent with the data.
	db.version.Store(base.db.version.Load() + applied)
	gen := ing.diskGen.Add(1)
	ixs := make([]*Index, len(base.indexes))
	berr := scatter.Run(ctx, len(base.indexes), runtime.GOMAXPROCS(0), func(_ context.Context, i int) error {
		opts := base.indexes[i].opts
		orig := opts.OnDiskPath
		if orig != "" {
			// Build against a per-generation file: the old index still
			// serves reads from its own file until the swap (and after,
			// for readers pinned to the old generation).
			opts.OnDiskPath = fmt.Sprintf("%s.gen%d", orig, gen)
		}
		ix, e := db.BuildIndex(opts)
		if e != nil {
			return e
		}
		// Keep the un-suffixed path in opts so the next rotation derives
		// generation names from the same stem.
		ix.opts.OnDiskPath = orig
		ixs[i] = ix
		return nil
	})
	if berr != nil {
		return baseStack{}, berr
	}
	return baseStack{db: db, indexes: ixs}, nil
}

// execute answers q against the current state: straight through the
// base planner when no memtable (or an empty one) is in play, otherwise
// by merging memtable deltas with a base answer.
func (p *Planner) execute(ctx context.Context, q Query, ing *ingestState) (Answer, error) {
	if ing == nil {
		return p.Plan(q).Run(ctx, q)
	}
	g := ing.layer.Load()
	if (g.Frozen == nil || g.Frozen.Segments() == 0) && g.Active.Segments() == 0 {
		return planStack(g.Base, q).Run(ctx, q)
	}
	return runMerged(ctx, q, g)
}

// runMerged answers q from a pinned generation: find the affected set
// (series whose memtable runs overlap the window), answer top-(k+|A|)
// from the base, then rank base candidates and affected series together
// using their true scores (base + delta).
//
// Correctness of the expansion: an unaffected series outside the base
// top-(k+|A|) is dominated by at least k+|A| base candidates, of which
// at least k are themselves unaffected (score unchanged) — so it can
// never enter the true top-k, and the candidate set is sufficient. For
// approximate base methods the (ε,α) guarantee carries over: affected
// candidates get exact scores, unaffected ones keep the base method's
// bounds.
func runMerged(ctx context.Context, q Query, g *memtable.Gen[baseStack]) (Answer, error) {
	start := time.Now()
	instant := q.Agg == AggInstant
	var affected map[int]float64
	collect := func(id int, x float64) {
		if affected == nil {
			affected = make(map[int]float64, 16)
		}
		if instant {
			// The frozen and active runs of a series cover disjoint
			// consecutive domains, so exactly one table reports the
			// instant.
			affected[id] = x
		} else {
			affected[id] += x
		}
	}
	if instant {
		if g.Frozen != nil {
			g.Frozen.CollectAt(q.T1, collect)
		}
		g.Active.CollectAt(q.T1, collect)
	} else {
		if g.Frozen != nil {
			g.Frozen.CollectRange(q.T1, q.T2, collect)
		}
		g.Active.CollectRange(q.T1, q.T2, collect)
	}
	if len(affected) == 0 {
		return planStack(g.Base, q).Run(ctx, q)
	}

	qb := q
	qb.K = q.K + len(affected)
	if m := g.Base.db.NumSeries(); qb.K > m {
		qb.K = m
	}
	base, err := planStack(g.Base, qb).Run(ctx, qb)
	if err != nil {
		return Answer{}, err
	}

	cand := make(map[int]float64, len(base.Results)+len(affected))
	for _, r := range base.Results {
		cand[r.ID] = r.Score
	}
	for id, x := range affected {
		switch {
		case instant:
			// The run covers the instant, which is past the base domain
			// for this series (runs start at the base frontier), so the
			// memtable value is the value.
			cand[id] = x
		default:
			bs, serr := g.Base.db.Score(id, q.T1, q.T2)
			if serr != nil {
				return Answer{}, serr
			}
			if q.Agg == AggAvg {
				cand[id] = (bs + x) / (q.T2 - q.T1)
			} else {
				cand[id] = bs + x
			}
		}
	}

	col := topk.GetCollector(q.K)
	for id, s := range cand {
		col.Add(tsdata.SeriesID(id), s)
	}
	res := toResults(col.Results())
	col.Release()
	return Answer{
		Results: res,
		Method:  base.Method,
		Exact:   base.Exact,
		Epsilon: base.Epsilon,
		IOs:     base.IOs,
		Latency: time.Since(start),
	}, nil
}

// DataVersion returns the planner's append counter: the DB's version
// in the default mode, or the memtable journal's logical append count
// on top of the version at EnableMemtable time. It is a pure function
// of the applied appends — compaction timing does not move it — so
// replicas that applied the same appends always agree.
func (p *Planner) DataVersion() uint64 {
	p.mu.RLock()
	ing := p.ingest
	p.mu.RUnlock()
	if ing == nil {
		return p.db.version.Load()
	}
	return ing.base0 + ing.journal.Version()
}

// Score returns the planner's estimate of σ_i(t1,t2) from the primary
// index (or the DB without one), plus any memtable delta in memtable
// mode.
func (p *Planner) Score(id int, t1, t2 float64) (float64, error) {
	p.mu.RLock()
	ing := p.ingest
	db, ixs := p.db, p.indexes
	p.mu.RUnlock()
	if ing == nil {
		if len(ixs) > 0 {
			return ixs[0].Score(id, t1, t2)
		}
		return db.Score(id, t1, t2)
	}
	g := ing.layer.Load()
	var base float64
	var err error
	if len(g.Base.indexes) > 0 {
		base, err = g.Base.indexes[0].Score(id, t1, t2)
	} else {
		base, err = g.Base.db.Score(id, t1, t2)
	}
	if err != nil {
		return 0, err
	}
	d := g.Active.Delta(id, t1, t2)
	if g.Frozen != nil {
		d += g.Frozen.Delta(id, t1, t2)
	}
	return base + d, nil
}

// journalRef returns the journal Run validates cache entries against:
// the memtable journal in memtable mode, the DB's otherwise.
func (p *Planner) journalRef() *qcache.Journal {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.ingest != nil {
		return p.ingest.journal
	}
	return p.db.journal
}

// SetCoarseInvalidation switches the planner's append events between
// (series, time-range) scoping (the default) and whole-cache
// invalidation — the pre-scoped behavior, kept as an A/B baseline for
// rankbench's mixed-workload measurement.
func (p *Planner) SetCoarseInvalidation(on bool) {
	p.journalRef().SetCoarse(on)
}
