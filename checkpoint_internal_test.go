package temporalrank

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"temporalrank/internal/blockio"
	"temporalrank/internal/gen"
)

// TestClusterCheckpointPartialFailureAtomic injects a device fault
// into one shard's snapshot write mid-Checkpoint and asserts the
// directory's previous generation survives untouched: no final file is
// replaced, no .tmp residue is left behind, and the directory still
// restores to the pre-checkpoint state. This is the guarantee that a
// snapshot directory never holds a mixed-generation cluster snapshot.
func TestClusterCheckpointPartialFailureAtomic(t *testing.T) {
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: 12, Navg: 8, Seed: 9, Span: 100})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]SeriesInput, ds.NumSeries())
	for i, s := range ds.AllSeries() {
		nv := s.NumSegments() + 1
		in := SeriesInput{Times: make([]float64, nv), Values: make([]float64, nv)}
		for j := 0; j < nv; j++ {
			in.Times[j] = s.VertexTime(j)
			in.Values[j] = s.VertexValue(j)
		}
		inputs[i] = in
	}
	c, err := NewCluster(inputs, ClusterOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := c.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	before := readSnapshotFiles(t, dir)
	if len(before) != 2 {
		t.Fatalf("seed checkpoint wrote %d files, want 2", len(before))
	}

	// Mutate the cluster so generation 2 would differ, then make shard
	// 1's write fail after a few operations.
	if err := c.Append(0, 200, 5); err != nil {
		t.Fatal(err)
	}
	orig := openSnapshotDevice
	defer func() { openSnapshotDevice = orig }()
	openSnapshotDevice = func(path string) (blockio.Device, error) {
		dev, err := orig(path)
		if err != nil {
			return nil, err
		}
		if strings.Contains(filepath.Base(path), "shard-0001") {
			return blockio.NewFaultDevice(dev, 10), nil
		}
		return dev, nil
	}
	err = c.Checkpoint(dir)
	if !errors.Is(err, blockio.ErrInjected) {
		t.Fatalf("checkpoint with injected fault: got %v, want ErrInjected", err)
	}

	// The directory must be byte-identical to the previous generation —
	// shard 0's successful write must NOT have been committed.
	after := readSnapshotFiles(t, dir)
	if len(after) != len(before) {
		t.Fatalf("file set changed: %d files, want %d", len(after), len(before))
	}
	for name, want := range before {
		if !bytes.Equal(after[name], want) {
			t.Fatalf("%s changed despite the failed checkpoint", name)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp residue %s left after failed checkpoint", e.Name())
		}
	}

	// And the untouched generation still restores (to the pre-append
	// state, which is the point: old but consistent).
	restored, err := OpenClusterSnapshot(dir, ClusterOptions{})
	if err != nil {
		t.Fatalf("restore after failed checkpoint: %v", err)
	}
	if restored.NumSeries() != c.NumSeries() {
		t.Fatalf("restored %d series, want %d", restored.NumSeries(), c.NumSeries())
	}

	// With the fault gone, the next checkpoint converges the directory
	// to the new generation.
	openSnapshotDevice = orig
	if err := c.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	converged := readSnapshotFiles(t, dir)
	same := true
	for name, want := range before {
		if !bytes.Equal(converged[name], want) {
			same = false
		}
	}
	if same {
		t.Fatal("retried checkpoint did not advance the generation")
	}
}

// readSnapshotFiles maps each shard snapshot file name to its bytes.
func readSnapshotFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	paths, err := listSnapshotFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = b
	}
	return out
}
