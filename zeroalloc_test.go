// The dynamic backstop for the //tr:hotpath annotations: the static
// hotalloc analyzer waives sanctioned allocations line by line, and
// this test proves the waivers honest by measuring the cached read
// path end to end. CI enforces the same property on
// BenchmarkPlannerCachedRun/cached via -benchmem.
//
// The race detector instruments allocations, so the measurement only
// holds in a normal build.
//
//go:build !race

package temporalrank_test

import (
	"context"
	"testing"

	"temporalrank"
)

// TestPlannerCachedRunZeroAllocs asserts the steady-state cached
// Planner.Run path — cacheKey, the qcache hit, the version load —
// allocates nothing per query.
func TestPlannerCachedRunZeroAllocs(t *testing.T) {
	ctx := context.Background()
	db, p := benchPlanner(t, 64)
	span := db.Span()
	qs := make([]temporalrank.Query, 8)
	for i := range qs {
		t1 := db.Start() + span*float64(i)/16
		qs[i] = temporalrank.SumQuery(10, t1, t1+span/4)
	}
	for _, q := range qs {
		if _, err := p.Run(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.Run(ctx, qs[i%len(qs)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("cached Planner.Run allocates %.1f allocs/op, want 0", allocs)
	}
}
