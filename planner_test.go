package temporalrank

import (
	"context"
	"math"
	"testing"
)

// plannerFixture builds a DB with one exact and two approximate
// indexes of different ε, the setup the Planner is designed for.
func plannerFixture(t *testing.T) (*DB, *Planner, *Index, *Index, *Index) {
	t.Helper()
	db := genDB(t)
	exact3, err := db.BuildIndex(Options{Method: MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := db.BuildIndex(Options{Method: MethodAppx2, TargetR: 40, KMax: 10})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := db.BuildIndex(Options{Method: MethodAppx2P, TargetR: 120, KMax: 10})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlanner(db, exact3, coarse, fine)
	if err != nil {
		t.Fatal(err)
	}
	return db, p, exact3, coarse, fine
}

// TestPlannerRoutesByEpsilon is the acceptance criterion: MaxEpsilon >
// 0 routes to an approximate index, MaxEpsilon == 0 to an exact one,
// and answers are validated against the DB.Run reference.
func TestPlannerRoutesByEpsilon(t *testing.T) {
	db, p, _, _, _ := plannerFixture(t)
	ctx := context.Background()
	t1 := db.Start() + db.Span()*0.1
	t2 := db.End() - db.Span()*0.1

	ref, err := db.Run(ctx, SumQuery(5, t1, t2))
	if err != nil {
		t.Fatal(err)
	}

	// Exact demand → exact index, answer identical to the reference.
	exactAns, err := p.Run(ctx, SumQuery(5, t1, t2))
	if err != nil {
		t.Fatal(err)
	}
	if exactAns.Method.IsApprox() || !exactAns.Exact {
		t.Fatalf("MaxEpsilon=0 answered by %s (exact=%v)", exactAns.Method, exactAns.Exact)
	}
	if !sameIDs(exactAns.Results, ref.Results) {
		t.Fatalf("exact route disagrees with reference: %v vs %v", exactAns.Results, ref.Results)
	}
	for i := range ref.Results {
		if d := math.Abs(exactAns.Results[i].Score - ref.Results[i].Score); d > 1e-7*(1+math.Abs(ref.Results[i].Score)) {
			t.Fatalf("rank %d: exact score %g vs reference %g", i, exactAns.Results[i].Score, ref.Results[i].Score)
		}
	}

	// Tolerant demand → approximate index within the tolerance, scores
	// within the (ε,α) additive bound εM of the reference.
	q := SumQuery(5, t1, t2)
	q.MaxEpsilon = 1.0 // generous: any approx index qualifies
	apxAns, err := p.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !apxAns.Method.IsApprox() || apxAns.Exact {
		t.Fatalf("MaxEpsilon>0 answered by %s (exact=%v)", apxAns.Method, apxAns.Exact)
	}
	if apxAns.Epsilon <= 0 || apxAns.Epsilon > q.MaxEpsilon {
		t.Fatalf("answer ε=%g outside (0, %g]", apxAns.Epsilon, q.MaxEpsilon)
	}
	// α for APPX2-family is 2·log r; the additive part alone bounds how
	// far any reported score can sit above its exact counterpart's
	// neighborhood. Validate loosely: every approximate score within
	// εM of SOME exact score ordering is hard to pin; use the paper's
	// per-rank bound σ̃_j <= σ_j + εM and σ̃_j >= σ_j/α − εM.
	m := db.Snapshot().M()
	bound := apxAns.Epsilon * m * (1 + 1e-7)
	alpha := 2 * math.Log2(120+1)
	for j := range apxAns.Results {
		if j >= len(ref.Results) {
			break
		}
		exactScore := ref.Results[j].Score
		lo := exactScore/alpha - bound
		hi := exactScore + bound
		if apxAns.Results[j].Score < lo-1e-9 || apxAns.Results[j].Score > hi+1e-9 {
			t.Fatalf("rank %d: approx score %g outside [%g, %g]", j, apxAns.Results[j].Score, lo, hi)
		}
	}
}

// TestPlannerEpsilonThreshold: a tight tolerance admits only the
// fine-ε index; an impossible one falls back to exact.
func TestPlannerEpsilonThreshold(t *testing.T) {
	db, p, _, coarse, fine := plannerFixture(t)
	if fine.Epsilon() >= coarse.Epsilon() {
		t.Skipf("fixture εs not ordered: fine %g, coarse %g", fine.Epsilon(), coarse.Epsilon())
	}
	q := SumQuery(5, db.Start(), db.End())

	// Tolerance between the two εs: only the fine index qualifies.
	q.MaxEpsilon = (fine.Epsilon() + coarse.Epsilon()) / 2
	if got := p.Plan(q); got != fine {
		t.Fatalf("mid tolerance routed to %T %v", got, got)
	}

	// Tolerance below every ε: exact fallback.
	q.MaxEpsilon = fine.Epsilon() / 2
	ix, ok := p.Plan(q).(*Index)
	if !ok || ix.Method().IsApprox() {
		t.Fatalf("sub-ε tolerance did not fall back to an exact index")
	}
}

// TestPlannerKMaxFallback: k beyond every approximate index's KMax
// forces the exact route even under a generous tolerance.
func TestPlannerKMaxFallback(t *testing.T) {
	db, p, exact3, _, _ := plannerFixture(t)
	q := SumQuery(15, db.Start(), db.End()) // KMax is 10 on both approx indexes
	q.MaxEpsilon = 1.0
	if got := p.Plan(q); got != exact3 {
		t.Fatalf("k>KMax routed to %v, want the exact index", got)
	}
	ans, err := p.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact {
		t.Fatalf("fallback answer not exact: %+v", ans)
	}
}

// TestPlannerInstantPrefersExact3 and the DB fallback without one.
func TestPlannerInstant(t *testing.T) {
	db, p, exact3, _, _ := plannerFixture(t)
	mid := (db.Start() + db.End()) / 2
	if got := p.Plan(InstantQuery(3, mid)); got != exact3 {
		t.Fatalf("instant routed to %v, want EXACT3", got)
	}

	// A planner with only approximate indexes scans the DB for
	// instants (and for exact demands).
	apx, err := db.BuildIndex(Options{Method: MethodAppx1, TargetR: 40, KMax: 10})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlanner(db, apx)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Plan(InstantQuery(3, mid)); got != db {
		t.Fatalf("instant without EXACT3 routed to %v, want DB", got)
	}
	if got := p2.Plan(SumQuery(3, db.Start(), db.End())); got != db {
		t.Fatalf("exact demand over approx-only planner routed to %v, want DB", got)
	}
	ans, err := p2.Run(context.Background(), SumQuery(3, db.Start(), db.End()))
	if err != nil {
		t.Fatal(err)
	}
	if ans.Method != MethodReference || !ans.Exact {
		t.Fatalf("DB fallback misreported: %+v", ans)
	}
}

// TestPlannerRejectsForeignIndex: indexes must be built over the
// planner's DB.
func TestPlannerRejectsForeignIndex(t *testing.T) {
	db := genDB(t)
	other := genDB(t)
	ix, err := other.BuildIndex(Options{Method: MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlanner(db, ix); err == nil {
		t.Fatal("foreign index accepted")
	}
	if _, err := NewPlanner(nil); err == nil {
		t.Fatal("nil DB accepted")
	}
}

// TestPlannerEmptyAnswersExactly: a planner with no indexes is just a
// validated brute-force reference.
func TestPlannerEmpty(t *testing.T) {
	db := genDB(t)
	p, err := NewPlanner(db)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := p.Run(context.Background(), SumQuery(4, db.Start(), db.End()))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(ans.Results, db.TopK(4, db.Start(), db.End())) {
		t.Fatal("empty planner disagrees with reference")
	}
}

// TestConcurrentPlannerMetadataDuringAppend pins the rebuild race: an
// amortized rebuild (Append past the mass-doubling threshold) swaps
// the approximate index's breakpoint set under the exclusive lock
// while the Planner reads Epsilon()/KMax() and its cost model — all of
// which must take the shared lock. Run under -race.
func TestConcurrentPlannerMetadataDuringAppend(t *testing.T) {
	db := genDB(t)
	ix, err := db.BuildIndex(Options{Method: MethodAppx2, TargetR: 30, KMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlanner(db, ix)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Big appended values push the mass past doubling repeatedly,
		// forcing several breakpoint-set swaps.
		tcur := db.End()
		for i := 0; i < 60; i++ {
			tcur += 2
			if err := ix.Append(i%db.NumSeries(), tcur, 5000); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	q := SumQuery(3, db.Start(), db.End())
	q.MaxEpsilon = 1
	for i := 0; i < 200; i++ {
		_ = ix.Epsilon()
		_ = ix.KMax()
		if _, err := p.Run(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
