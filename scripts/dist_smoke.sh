#!/usr/bin/env bash
# Distributed serving smoke: boots a real multi-process tier — three
# shardserver processes (each hosting both shards, so every shard has
# three replicas) behind a rankserver router — then proves the two
# properties the tier sells:
#
#   1. answers flow end to end over the HTTP API, and
#   2. kill -9 on a replica changes nothing: the same query returns
#      the same results, and /stats reports the corpse as down.
#
# CI runs this on every push. Locally: ./scripts/dist_smoke.sh
set -euo pipefail

PORT_BASE=${PORT_BASE:-7471}
ROUTER_PORT=${ROUTER_PORT:-8471}
NODES=3

command -v jq >/dev/null || { echo "dist_smoke: jq is required" >&2; exit 1; }

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work/bin/" ./cmd/shardserver ./cmd/rankserver ./cmd/rankbench

echo "== seed a 2-shard snapshot directory"
"$work/bin/rankbench" -m 200 -navg 40 -snapshot-write "$work/seed/"

groups_one=""
for i in $(seq 1 $NODES); do
  port=$((PORT_BASE + i - 1))
  mkdir -p "$work/node$i"
  cp "$work/seed/"shard-*.trsnap "$work/node$i/"
  "$work/bin/shardserver" -addr "127.0.0.1:$port" -data "$work/node$i/" \
    >"$work/node$i.log" 2>&1 &
  pids+=($!)
  groups_one+="${groups_one:+,}127.0.0.1:$port"
done
# Every node hosts both shards: the same three replicas back each group.
router_spec="$groups_one;$groups_one"

echo "== router over $router_spec"
"$work/bin/rankserver" -addr "127.0.0.1:$ROUTER_PORT" -router "$router_spec" \
  >"$work/router.log" 2>&1 &
pids+=($!)

base="http://127.0.0.1:$ROUTER_PORT"
for _ in $(seq 1 60); do
  curl -sf "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.5
done
curl -sf "$base/healthz" >/dev/null || {
  echo "dist_smoke: router never came up" >&2
  cat "$work/router.log" >&2
  exit 1
}

echo "== query through the full tier"
q="$base/query?agg=sum&k=10&t1=100&t2=600"
before=$(curl -sf "$q" | jq -c .results)
[ "$(jq length <<<"$before")" -gt 0 ] || { echo "dist_smoke: empty results" >&2; exit 1; }

stats=$(curl -sf "$base/stats")
[ "$(jq .shards <<<"$stats")" = 2 ] || { echo "dist_smoke: wrong shard count" >&2; exit 1; }
[ "$(jq -r .method <<<"$stats")" = REMOTE ] || { echo "dist_smoke: not in router mode" >&2; exit 1; }

echo "== kill one replica (kill -9), query again"
kill -9 "${pids[1]}"
after=$(curl -sf "$q" | jq -c .results)
if [ "$before" != "$after" ]; then
  echo "dist_smoke: results changed after replica kill" >&2
  echo "before: $before" >&2
  echo "after:  $after" >&2
  exit 1
fi

# The health loop (or the failover above) must notice the corpse.
sleep 2
curl -sf "$q" >/dev/null
states=$(curl -sf "$base/stats" | jq -r '[.router[].replicas[].state] | join(",")')
case "$states" in
  *down*) ;;
  *) echo "dist_smoke: killed replica never marked down (states: $states)" >&2; exit 1 ;;
esac

echo "== append and checkpoint through the router"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/append" \
  -H 'Content-Type: application/json' -d '{"id":3,"t":2000,"v":42.0}')
[ "$code" = 200 ] || { echo "dist_smoke: append returned $code" >&2; exit 1; }
curl -sf "$base/score?id=3&t1=1000&t2=2000" >/dev/null
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/checkpoint")
[ "$code" = 200 ] || { echo "dist_smoke: checkpoint returned $code" >&2; exit 1; }

echo "PASS: distributed tier survives replica loss with identical answers"
