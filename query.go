package temporalrank

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"temporalrank/internal/qcache"
	"temporalrank/internal/topk"
)

// This file defines the unified query API: a first-class Query value
// describing *what* the caller wants (aggregate, k, interval, error
// tolerance, IO budget) and the Querier interface implemented by every
// component that can answer one — the brute-force DB, every Index, the
// Planner, and engine.Executor. The older method-per-aggregate entry
// points (TopK, TopKAvg, InstantTopK) remain as thin deprecated
// wrappers over the same internals.

// Agg selects a Query's aggregate, the paper's operator family
// top-k(t1, t2, agg).
type Agg string

const (
	// AggSum ranks by σ_i(t1,t2) = ∫_{t1}^{t2} g_i — the core operator.
	AggSum Agg = "sum"
	// AggAvg ranks by σ_i(t1,t2)/(t2−t1); same order as sum, rescaled
	// scores (§4).
	AggAvg Agg = "avg"
	// AggInstant ranks by g_i(t); T1 carries the instant t.
	AggInstant Agg = "instant"
)

func (a Agg) valid() bool {
	switch a {
	case AggSum, AggAvg, AggInstant:
		return true
	}
	return false
}

// Query is one declarative top-k request. The zero value of Agg means
// AggSum, so Query{K: 10, T1: 0, T2: 100} is the paper's core query.
type Query struct {
	// Agg is the aggregate; empty defaults to AggSum.
	Agg Agg
	// K is the number of objects wanted (>= 1).
	K int
	// T1 and T2 bound the query interval [t1, t2]. For AggInstant, T1
	// carries the instant t and T2 is ignored.
	T1, T2 float64
	// MaxEpsilon is the largest acceptable (ε,α) error parameter. 0
	// demands an exact answer; a positive value lets the Planner route
	// to any approximate index built with ε <= MaxEpsilon. Ignored by
	// direct DB/Index execution, which always answer with their own
	// guarantee (reported in Answer).
	MaxEpsilon float64
	// MaxIOs is an advisory per-query IO budget for the Planner: among
	// the indexes satisfying MaxEpsilon it prefers one whose estimated
	// cost fits the budget. 0 means unlimited. It never relaxes
	// correctness — when no in-budget index qualifies, the cheapest
	// qualifying one is used anyway.
	MaxIOs uint64
}

// SumQuery builds the core aggregate query top-k(t1, t2, sum).
func SumQuery(k int, t1, t2 float64) Query { return Query{Agg: AggSum, K: k, T1: t1, T2: t2} }

// AvgQuery builds top-k(t1, t2, avg).
func AvgQuery(k int, t1, t2 float64) Query { return Query{Agg: AggAvg, K: k, T1: t1, T2: t2} }

// InstantQuery builds the instant query top-k(t).
func InstantQuery(k int, t float64) Query { return Query{Agg: AggInstant, K: k, T1: t} }

// withDefaults resolves the zero Agg to AggSum.
func (q Query) withDefaults() Query {
	if q.Agg == "" {
		q.Agg = AggSum
	}
	return q
}

// aggTag is the cache key's one-byte aggregate discriminator.
func (a Agg) aggTag() byte {
	switch a {
	case AggAvg:
		return 1
	case AggInstant:
		return 2
	default:
		return 0
	}
}

// queryKey is a Query's canonical fixed-size cache identity. It is a
// comparable value type, so result-cache lookups hash it without
// allocating — the cached read path is zero-alloc end to end.
type queryKey [41]byte

// cacheKey returns the query's canonical identity for result caching:
// two queries share a key exactly when every field that can influence
// the answer (aggregate, k, interval, tolerance, IO budget — the last
// two steer the Planner's routing, hence the reported method/ε) is
// byte-identical after canonicalization. The zero Agg collapses onto
// AggSum and an instant query's ignored T2 is canonicalized away, so
// spelling variants of the same request hit the same entry.
//
//tr:hotpath
func (q Query) cacheKey() queryKey {
	q = q.withDefaults()
	if q.Agg == AggInstant {
		q.T2 = 0
	}
	var b queryKey
	b[0] = q.Agg.aggTag()
	binary.LittleEndian.PutUint64(b[1:], uint64(q.K))
	binary.LittleEndian.PutUint64(b[9:], math.Float64bits(q.T1))
	binary.LittleEndian.PutUint64(b[17:], math.Float64bits(q.T2))
	binary.LittleEndian.PutUint64(b[25:], math.Float64bits(q.MaxEpsilon))
	binary.LittleEndian.PutUint64(b[33:], q.MaxIOs)
	return b
}

// scope returns the query's invalidation footprint for scoped result
// caching: all series over the query window (an instant query stabs a
// single point). An append overlapping this footprint can change the
// answer; one outside it cannot.
//
//tr:hotpath
func (q Query) scope() qcache.Scope {
	if q.Agg == AggInstant {
		return qcache.Scope{Series: -1, T1: q.T1, T2: q.T1}
	}
	return qcache.Scope{Series: -1, T1: q.T1, T2: q.T2}
}

// Validate checks the query's shape. Interval problems wrap
// ErrBadInterval so callers can classify them with errors.Is.
func (q Query) Validate() error {
	q = q.withDefaults()
	if !q.Agg.valid() {
		return fmt.Errorf("temporalrank: unknown aggregate %q", q.Agg)
	}
	if q.K < 1 {
		return fmt.Errorf("temporalrank: k must be >= 1, got %d", q.K)
	}
	if math.IsNaN(q.T1) || math.IsInf(q.T1, 0) {
		return fmt.Errorf("temporalrank: %w: non-finite t1 %g", ErrBadInterval, q.T1)
	}
	if q.Agg == AggInstant {
		return nil
	}
	if math.IsNaN(q.T2) || math.IsInf(q.T2, 0) {
		return fmt.Errorf("temporalrank: %w: non-finite t2 %g", ErrBadInterval, q.T2)
	}
	if q.T2 < q.T1 {
		return fmt.Errorf("temporalrank: %w: inverted [%g,%g]", ErrBadInterval, q.T1, q.T2)
	}
	if q.Agg == AggAvg && q.T2 == q.T1 {
		return fmt.Errorf("temporalrank: %w: avg needs t2 > t1, got [%g,%g]", ErrBadInterval, q.T1, q.T2)
	}
	return nil
}

// MethodReference identifies answers computed by brute force over the
// in-memory data (DB.Run) rather than through one of the paper's
// indexes. It is always exact.
const MethodReference Method = "REFERENCE"

// Answer is one executed Query.
//
// When a result cache is enabled (Planner.EnableResultCache,
// ClusterOptions.ResultCache), identical queries at the same data
// version share one Answer value: Results aliases the cached slice and
// must be treated as read-only, and Latency/IOs describe the run that
// populated the cache, not the (near-free) cached retrieval.
type Answer struct {
	// Results are the ranked objects, best first.
	Results []Result
	// Method is the index method that produced the answer;
	// MethodReference when the brute-force DB answered.
	Method Method
	// Exact reports whether the answer carries no approximation error.
	Exact bool
	// Epsilon is the (ε,α) error parameter of the answering structure;
	// 0 when Exact.
	Epsilon float64
	// Latency is the wall time of the computation alone (queueing in a
	// worker pool excluded).
	Latency time.Duration
	// IOs is the device IO delta observed over the call; 0 for the
	// in-memory brute force. A single index's device is shared by all
	// in-flight queries, so under concurrency overlapping queries' IOs
	// may be attributed to each other. Cluster answers avoid the
	// cross-shard version of this: each shard's delta is snapshotted
	// inside that shard's goroutine against its own private device, and
	// the merged IOs value is the sum of those per-shard deltas.
	IOs uint64
}

// Querier is anything that can answer a Query: the brute-force DB,
// every Index, the Planner, and engine.Executor. Run respects ctx —
// cancellation and deadlines abort promptly with ctx.Err().
type Querier interface {
	Run(ctx context.Context, q Query) (Answer, error)
}

// Compile-time checks: all query paths satisfy the one interface.
var (
	_ Querier = (*DB)(nil)
	_ Querier = (*Index)(nil)
	_ Querier = (*Planner)(nil)
	_ Querier = (*Cluster)(nil)
)

// ctxCheckStride bounds how many series a brute-force scan processes
// between context checks.
const ctxCheckStride = 1024

// Run implements Querier by brute force over the in-memory data — the
// exact reference every index is measured against. Long scans poll ctx
// every ctxCheckStride objects, so cancellation aborts mid-scan.
func (db *DB) Run(ctx context.Context, q Query) (Answer, error) {
	q = q.withDefaults()
	if err := q.Validate(); err != nil {
		return Answer{}, err
	}
	start := time.Now()
	db.mu.RLock()
	c := topk.GetCollector(q.K)
	defer c.Release()
	for i, s := range db.ds.AllSeries() {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				db.mu.RUnlock()
				return Answer{}, err
			}
		}
		switch q.Agg {
		case AggInstant:
			c.Add(s.ID, s.At(q.T1))
		default:
			c.Add(s.ID, s.Range(q.T1, q.T2))
		}
	}
	db.mu.RUnlock()
	res := toResults(c.Results())
	if q.Agg == AggAvg {
		rescaleAvg(res, q.T1, q.T2)
	}
	return Answer{
		Results: res,
		Method:  MethodReference,
		Exact:   true,
		Latency: time.Since(start),
	}, nil
}

// Run implements Querier through the index. The answer carries the
// index's own guarantee: exact methods (and instant queries, which are
// answered exactly regardless of method) report Exact; approximate
// methods report their ε. MaxEpsilon and MaxIOs are routing hints for
// the Planner and are not re-checked here — calling Run on a specific
// index is the "I chose this structure" path.
func (ix *Index) Run(ctx context.Context, q Query) (Answer, error) {
	q = q.withDefaults()
	if err := q.Validate(); err != nil {
		return Answer{}, err
	}
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}
	before := ix.DeviceIOs()
	start := time.Now()
	var (
		res []Result
		err error
	)
	switch q.Agg {
	case AggSum:
		res, err = ix.topK(q.K, q.T1, q.T2)
	case AggAvg:
		res, err = ix.topKAvg(q.K, q.T1, q.T2)
	case AggInstant:
		res, err = ix.instantTopK(q.K, q.T1)
	}
	if err != nil {
		return Answer{}, err
	}
	elapsed := time.Since(start)
	after := ix.DeviceIOs()
	var ios uint64
	if after > before { // guard against a concurrent ResetStats
		ios = after - before
	}
	exact := !ix.Method().IsApprox() || q.Agg == AggInstant
	var eps float64
	if !exact {
		eps = ix.Epsilon()
	}
	return Answer{
		Results: res,
		Method:  ix.Method(),
		Exact:   exact,
		Epsilon: eps,
		Latency: elapsed,
		IOs:     ios,
	}, nil
}

// rescaleAvg converts sum scores into averages over [t1, t2].
func rescaleAvg(res []Result, t1, t2 float64) {
	width := t2 - t1
	for i := range res {
		res[i].Score /= width
	}
}
