package temporalrank

import "temporalrank/internal/trerr"

// The package's typed sentinel errors. Every layer — the brute-force
// DB, the eight index implementations, the Planner, and the query
// engine — wraps these values, so callers can classify failures with
// errors.Is regardless of which component produced them:
//
//	_, err := idx.Score(id, t1, t2)
//	switch {
//	case errors.Is(err, temporalrank.ErrNotMaterialized):
//	    // fall back to db.Score for an exact answer
//	case errors.Is(err, temporalrank.ErrUnknownSeries):
//	    // 404
//	}
var (
	// ErrUnknownSeries reports an object id outside [0, NumSeries()).
	ErrUnknownSeries = trerr.ErrUnknownSeries

	// ErrKTooLarge reports a query k exceeding the KMax an approximate
	// index was built for (exact indexes accept any k).
	ErrKTooLarge = trerr.ErrKTooLarge

	// ErrNotMaterialized reports a per-object Score request that an
	// approximate index cannot answer: the object lies outside the
	// materialized top-KMax lists, so no estimate exists for it. The
	// caller can retry against an exact index or DB.Score.
	ErrNotMaterialized = trerr.ErrNotMaterialized

	// ErrBadInterval reports a non-finite, inverted, or (for AggAvg)
	// zero-width query interval.
	ErrBadInterval = trerr.ErrBadInterval
)
