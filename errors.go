package temporalrank

import "temporalrank/internal/trerr"

// The package's typed sentinel errors. Every layer — the brute-force
// DB, the eight index implementations, the Planner, and the query
// engine — wraps these values, so callers can classify failures with
// errors.Is regardless of which component produced them:
//
//	_, err := idx.Score(id, t1, t2)
//	switch {
//	case errors.Is(err, temporalrank.ErrNotMaterialized):
//	    // fall back to db.Score for an exact answer
//	case errors.Is(err, temporalrank.ErrUnknownSeries):
//	    // 404
//	}
var (
	// ErrUnknownSeries reports an object id outside [0, NumSeries()).
	ErrUnknownSeries = trerr.ErrUnknownSeries

	// ErrKTooLarge reports a query k exceeding the KMax an approximate
	// index was built for (exact indexes accept any k).
	ErrKTooLarge = trerr.ErrKTooLarge

	// ErrNotMaterialized reports a per-object Score request that an
	// approximate index cannot answer: the object lies outside the
	// materialized top-KMax lists, so no estimate exists for it. The
	// caller can retry against an exact index or DB.Score.
	ErrNotMaterialized = trerr.ErrNotMaterialized

	// ErrBadInterval reports a non-finite, inverted, or (for AggAvg)
	// zero-width query interval.
	ErrBadInterval = trerr.ErrBadInterval

	// ErrBadConfig reports constructor misuse: a nil DB or index, an
	// invalid shard count, an index built over a different DB, or a
	// partitioner that maps a series outside its shard table.
	ErrBadConfig = trerr.ErrBadConfig

	// ErrNoInput reports a constructor given an empty dataset — no
	// series (NewDB, NewCluster) or no sampled objects
	// (NewDBFromSamples, NewClusterFromSamples).
	ErrNoInput = trerr.ErrNoInput

	// ErrBadSnapshot reports a snapshot device that cannot be restored:
	// no completed checkpoint, a corrupt or torn header, a page whose
	// CRC does not match, a truncated file, or stream contents that fail
	// validation. OpenSnapshot and OpenClusterSnapshot wrap it.
	ErrBadSnapshot = trerr.ErrBadSnapshot

	// ErrSnapshotVersion reports a structurally valid snapshot written
	// by an incompatible (newer) snapshot format version.
	ErrSnapshotVersion = trerr.ErrSnapshotVersion

	// ErrShardUnavailable reports a RemoteCluster shard group with no
	// replica able to answer — every replica is down, unreachable, or
	// still bootstrapping from a snapshot. Transient by design: the
	// same query can succeed once one replica recovers.
	ErrShardUnavailable = trerr.ErrShardUnavailable
)
