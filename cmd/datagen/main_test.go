package main

import (
	"os"
	"path/filepath"
	"testing"

	"temporalrank/internal/tsio"
)

func TestRunCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.csv")
	if err := run("temp", 10, 15, 1, "csv", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := tsio.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSeries() != 10 {
		t.Errorf("m = %d", ds.NumSeries())
	}
}

func TestRunBinary(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.trk")
	if err := run("meme", 8, 20, 2, "binary", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := tsio.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSeries() != 8 {
		t.Errorf("m = %d", ds.NumSeries())
	}
}

func TestRunErrors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x")
	if err := run("nope", 5, 5, 1, "csv", out); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run("temp", 5, 5, 1, "nope", out); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run("temp", 0, 5, 1, "csv", out); err == nil {
		t.Error("m=0 accepted")
	}
}
