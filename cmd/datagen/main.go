// Command datagen generates synthetic Temp-like or Meme-like temporal
// datasets (the stand-ins for the paper's MesoWest and Memetracker
// data) and writes them as CSV ("id,time,value" rows) or the compact
// TRK1 binary format.
//
// Usage:
//
//	datagen -kind temp -m 1000 -navg 100 -o temp.csv
//	datagen -kind meme -m 5000 -navg 67 -format binary -o meme.trk
package main

import (
	"flag"
	"fmt"
	"os"

	"temporalrank/internal/gen"
	"temporalrank/internal/tsdata"
	"temporalrank/internal/tsio"
)

func main() {
	var (
		kind   = flag.String("kind", "temp", "generator: temp, meme, or walk")
		m      = flag.Int("m", 1000, "number of objects")
		navg   = flag.Int("navg", 100, "average readings per object")
		seed   = flag.Int64("seed", 2012, "RNG seed")
		format = flag.String("format", "csv", "output format: csv or binary")
		out    = flag.String("o", "-", "output path (- for stdout)")
	)
	flag.Parse()

	if err := run(*kind, *m, *navg, *seed, *format, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(kind string, m, navg int, seed int64, format, out string) error {
	var (
		ds  *tsdata.Dataset
		err error
	)
	switch kind {
	case "temp":
		ds, err = gen.Temp(gen.TempConfig{M: m, Navg: navg, Seed: seed})
	case "meme":
		ds, err = gen.Meme(gen.MemeConfig{M: m, Navg: navg, Seed: seed})
	case "walk":
		ds, err = gen.RandomWalk(gen.RandomWalkConfig{M: m, Navg: navg, Seed: seed})
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "csv":
		err = tsio.WriteCSV(w, ds)
	case "binary":
		err = tsio.WriteBinary(w, ds)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %s dataset: m=%d N=%d domain=[%g,%g]\n",
		kind, ds.NumSeries(), ds.NumSegments(), ds.Start(), ds.End())
	return nil
}
