package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"temporalrank"
	"temporalrank/internal/gen"
)

// httpPost sends a JSON body and returns the status code.
func httpPost(url, body string) (int, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// testCachedServer is testShardedServer with the result cache enabled —
// the -result-cache N serving configuration.
func testCachedServer(t *testing.T, shards, entries int) (*server, *temporalrank.DB, *httptest.Server) {
	t.Helper()
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: 50, Navg: 40, Seed: 5, Span: 200})
	if err != nil {
		t.Fatal(err)
	}
	db := temporalrank.NewDBFromDataset(ds)
	cluster, err := temporalrank.NewClusterFromDB(db, temporalrank.ClusterOptions{
		Shards:      shards,
		Indexes:     []temporalrank.Options{{Method: temporalrank.MethodExact3}},
		ResultCache: entries,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cluster, 8, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, db, ts
}

// TestStatsResultCacheBlock: /stats surfaces hit/miss/coalesce counts
// when the cache is on, and omits the block entirely when it is off.
func TestStatsResultCacheBlock(t *testing.T) {
	_, db, ts := testCachedServer(t, 2, 64)
	url := fmt.Sprintf("%s/query?agg=sum&k=5&t1=%g&t2=%g", ts.URL, db.Start(), db.End())
	var q struct {
		Results []struct {
			ID int `json:"id"`
		} `json:"results"`
	}
	for i := 0; i < 3; i++ {
		if code := getJSON(t, url, &q); code != 200 {
			t.Fatalf("query %d status %d", i, code)
		}
	}
	var stats struct {
		ResultCache *struct {
			Hits      uint64  `json:"hits"`
			Misses    uint64  `json:"misses"`
			Coalesced uint64  `json:"coalesced"`
			HitRatio  float64 `json:"hit_ratio"`
		} `json:"result_cache"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("/stats status %d", code)
	}
	if stats.ResultCache == nil {
		t.Fatal("/stats missing result_cache block on a cached server")
	}
	if stats.ResultCache.Misses < 1 || stats.ResultCache.Hits < 2 {
		t.Fatalf("result_cache = %+v, want >= 1 miss and >= 2 hits after 3 identical queries", *stats.ResultCache)
	}
	if stats.ResultCache.HitRatio <= 0 {
		t.Fatalf("hit_ratio = %g, want > 0", stats.ResultCache.HitRatio)
	}

	// Uncached server: the block must be absent.
	_, _, ts2 := testServer(t, temporalrank.MethodExact3)
	var raw map[string]any
	if code := getJSON(t, ts2.URL+"/stats", &raw); code != 200 {
		t.Fatalf("/stats status %d", code)
	}
	if _, ok := raw["result_cache"]; ok {
		t.Fatal("/stats exposes result_cache on an uncached server")
	}
}

// TestCachedServerAppendInvalidates: a cached /query answer must
// reflect a POST /append that happened in between.
func TestCachedServerAppendInvalidates(t *testing.T) {
	_, db, ts := testCachedServer(t, 2, 64)
	url := fmt.Sprintf("%s/query?agg=sum&k=3&t1=%g&t2=%g", ts.URL, db.Start(), db.End()+100)
	var before, after struct {
		Results []struct {
			ID    int     `json:"id"`
			Score float64 `json:"score"`
		} `json:"results"`
	}
	if code := getJSON(t, url, &before); code != 200 {
		t.Fatalf("status %d", code)
	}
	if code := getJSON(t, url, &before); code != 200 { // warm the cache
		t.Fatalf("status %d", code)
	}

	// Append a massive spike to the current last-ranked object.
	loser := before.Results[len(before.Results)-1].ID
	body := fmt.Sprintf(`{"id":%d,"t":%g,"v":%g}`, loser, db.End()+50, 1e9)
	resp, err := httpPost(ts.URL+"/append", body)
	if err != nil {
		t.Fatal(err)
	}
	if resp != 200 {
		t.Fatalf("/append status %d", resp)
	}

	if code := getJSON(t, url, &after); code != 200 {
		t.Fatalf("status %d", code)
	}
	if after.Results[0].ID != loser {
		t.Fatalf("post-append winner = %d, want appended object %d (stale cached answer?)",
			after.Results[0].ID, loser)
	}
}
