package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"temporalrank"
	"temporalrank/internal/gen"
)

// testRouterServer boots a full in-process distributed tier — a
// 2-shard cluster checkpointed to disk, one shardserver node per
// shard, a RemoteCluster over them — and fronts it with the router
// HTTP server. The local cluster is returned as the reference.
func testRouterServer(t *testing.T) (*temporalrank.Cluster, *httptest.Server) {
	t.Helper()
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: 40, Navg: 30, Seed: 11, Span: 200})
	if err != nil {
		t.Fatal(err)
	}
	db := temporalrank.NewDBFromDataset(ds)
	cluster, err := temporalrank.NewClusterFromDB(db, temporalrank.ClusterOptions{
		Shards:  2,
		Indexes: []temporalrank.Options{{Method: temporalrank.MethodExact3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	master := t.TempDir()
	if err := cluster.Checkpoint(master); err != nil {
		t.Fatal(err)
	}

	groups := make([][]string, cluster.NumShards())
	for shard := range groups {
		name := fmt.Sprintf("shard-%04d.trsnap", shard)
		dir := t.TempDir()
		blob, err := os.ReadFile(filepath.Join(master, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		node, err := temporalrank.NewShardNode(dir)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go node.Serve(ln)
		t.Cleanup(func() { node.Close() })
		groups[shard] = []string{ln.Addr().String()}
	}

	rc, err := temporalrank.NewRemoteCluster(groups, temporalrank.RemoteClusterOptions{
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newRouterServer(rc, 4, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		rc.Close()
	})
	return cluster, ts
}

// TestRouterModeServesSameAPI drives the router HTTP server end to
// end over real sockets: queries match the local reference cluster,
// appends replicate through to /score, /stats reports the remote
// topology, and /checkpoint fans out without error.
func TestRouterModeServesSameAPI(t *testing.T) {
	cluster, ts := testRouterServer(t)

	var q queryResponse
	if code := getJSON(t, ts.URL+"/query?agg=sum&k=7&t1=40&t2=160", &q); code != 200 {
		t.Fatalf("/query status %d", code)
	}
	want, err := cluster.Run(t.Context(), temporalrank.SumQuery(7, 40, 160))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Results) != len(want.Results) {
		t.Fatalf("router returned %d results, reference %d", len(q.Results), len(want.Results))
	}
	for i, r := range q.Results {
		if r.ID != want.Results[i].ID || r.Score != want.Results[i].Score {
			t.Fatalf("result %d: router (%d, %g), reference (%d, %g)",
				i, r.ID, r.Score, want.Results[i].ID, want.Results[i].Score)
		}
	}
	if !q.Exact {
		t.Fatal("exact query answered inexactly through the router")
	}

	var st statsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != 200 {
		t.Fatalf("/stats status %d", code)
	}
	if st.Method != "REMOTE" || st.Shards != 2 || st.Objects != cluster.NumSeries() {
		t.Fatalf("stats = method %q, %d shards, %d objects; want REMOTE, 2, %d",
			st.Method, st.Shards, st.Objects, cluster.NumSeries())
	}
	if len(st.Router) != 2 {
		t.Fatalf("stats lists %d shard groups, want 2", len(st.Router))
	}
	for _, g := range st.Router {
		for _, rep := range g.Replicas {
			if rep.State != "live" {
				t.Fatalf("replica %s in state %q, want live", rep.Addr, rep.State)
			}
		}
	}

	resp, err := ts.Client().Post(ts.URL+"/append", "application/json",
		bytes.NewReader([]byte(`{"id":3,"t":500,"v":9.5}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/append status %d", resp.StatusCode)
	}
	if err := cluster.Append(3, 500, 9.5); err != nil {
		t.Fatal(err)
	}
	var sc scoreResponse
	if code := getJSON(t, ts.URL+"/score?id=3&t1=400&t2=500", &sc); code != 200 {
		t.Fatalf("/score status %d", code)
	}
	wantScore, err := cluster.Score(3, 400, 500)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Score != wantScore {
		t.Fatalf("score after append = %g, reference %g", sc.Score, wantScore)
	}

	resp, err = ts.Client().Post(ts.URL+"/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/checkpoint status %d", resp.StatusCode)
	}
}
