package main

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// startPprof serves the net/http/pprof endpoints on a dedicated side
// listener. It is strictly opt-in: an empty addr (the -pprof default)
// returns (nil, nil, nil) and nothing is registered anywhere — in
// particular the profiling handlers are never mounted on the query
// mux, so a production listener cannot leak heap or CPU profiles.
//
// The handlers are registered on a private mux rather than through
// net/http/pprof's DefaultServeMux side effect, keeping the dependency
// explicit and the main handler clean.
func startPprof(addr string) (*http.Server, net.Listener, error) {
	if addr == "" {
		return nil, nil, nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() {
		// Serve returns ErrServerClosed on Close; anything else means the
		// side listener died, which must not take the query path down.
		_ = srv.Serve(ln)
	}()
	return srv, ln, nil
}
