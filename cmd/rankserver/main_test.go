package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"temporalrank"
	"temporalrank/internal/gen"
)

func testServer(t *testing.T, method temporalrank.Method) (*server, *temporalrank.DB, *httptest.Server) {
	t.Helper()
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: 50, Navg: 40, Seed: 5, Span: 200})
	if err != nil {
		t.Fatal(err)
	}
	db := temporalrank.NewDBFromDataset(ds)
	ix, err := db.BuildIndex(temporalrank.Options{Method: method, TargetR: 80, KMax: 50})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(db, ix, 8)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, db, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestParallelTopKMatchesReference is the load-style acceptance test:
// many goroutines issue /topk requests concurrently and every response
// must match the brute-force DB.TopK reference answer.
func TestParallelTopKMatchesReference(t *testing.T) {
	_, db, ts := testServer(t, temporalrank.MethodExact3)

	const (
		clients           = 10
		requestsPerClient = 30
	)
	span := db.End() - db.Start()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < requestsPerClient; i++ {
				t1 := db.Start() + rng.Float64()*span*0.8
				t2 := t1 + rng.Float64()*span*0.2
				var got queryResponse
				url := fmt.Sprintf("%s/topk?k=5&t1=%g&t2=%g", ts.URL, t1, t2)
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				code := resp.StatusCode
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("decode: %w", err)
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("status %d for %s", code, url)
					return
				}
				want := db.TopK(5, t1, t2)
				if len(got.Results) != len(want) {
					errs <- fmt.Errorf("got %d results, want %d", len(got.Results), len(want))
					return
				}
				for j := range want {
					if got.Results[j].ID != want[j].ID {
						errs <- fmt.Errorf("rank %d: got object %d, want %d", j, got.Results[j].ID, want[j].ID)
						return
					}
				}
			}
		}(int64(c + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var st statsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if st.Queries != clients*requestsPerClient {
		t.Fatalf("stats: got %d queries, want %d", st.Queries, clients*requestsPerClient)
	}
	if st.QueryErrors != 0 {
		t.Fatalf("stats: %d query errors", st.QueryErrors)
	}
}

// TestEndpoints exercises every route once, including appends racing
// queries on an approximate method.
func TestEndpoints(t *testing.T) {
	_, db, ts := testServer(t, temporalrank.MethodAppx2P)
	mid := (db.Start() + db.End()) / 2

	var q queryResponse
	if code := getJSON(t, fmt.Sprintf("%s/topk?k=3&t1=%g&t2=%g", ts.URL, db.Start(), db.End()), &q); code != http.StatusOK {
		t.Fatalf("/topk status %d", code)
	}
	if len(q.Results) != 3 || q.Method != "APPX2+" {
		t.Fatalf("bad /topk response: %+v", q)
	}
	if code := getJSON(t, fmt.Sprintf("%s/avg?k=3&t1=%g&t2=%g", ts.URL, db.Start(), db.End()), &q); code != http.StatusOK {
		t.Fatalf("/avg status %d", code)
	}
	if code := getJSON(t, fmt.Sprintf("%s/instant?k=3&t=%g", ts.URL, mid), &q); code != http.StatusOK {
		t.Fatalf("/instant status %d", code)
	}

	// Appends racing queries: writer posts /append while readers hit
	// /topk (the server-side mirror of the -race regression test).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tcur := db.End()
		for i := 0; i < 20; i++ {
			tcur += 1
			body, _ := json.Marshal(appendRequest{ID: i % db.NumSeries(), T: tcur, V: float64(i)})
			resp, err := http.Post(ts.URL+"/append", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/append status %d", resp.StatusCode)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		var r queryResponse
		getJSON(t, fmt.Sprintf("%s/topk?k=3&t1=%g&t2=%g", ts.URL, db.Start(), mid), &r)
	}
	wg.Wait()

	// Error paths.
	resp, err := http.Get(ts.URL + "/topk?k=3&t1=oops&t2=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad t1: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/topk?k=3&t1=5&t2=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("inverted interval: status %d, want 422", resp.StatusCode)
	}

	// k guards: non-positive k rejected, huge k clamped to m (a DoS
	// guard — k sizes the top-k heap).
	resp, err = http.Get(ts.URL + "/topk?k=0&t1=0&t2=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0: status %d, want 400", resp.StatusCode)
	}
	var clamped queryResponse
	if code := getJSON(t, fmt.Sprintf("%s/topk?k=2000000000&t1=%g&t2=%g", ts.URL, db.Start(), mid), &clamped); code != http.StatusOK {
		t.Fatalf("huge k: status %d, want 200", code)
	}
	if len(clamped.Results) > db.NumSeries() {
		t.Fatalf("huge k: %d results for %d objects", len(clamped.Results), db.NumSeries())
	}

	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("/healthz: %d %v", code, health)
	}
}

// TestLoadDBGen covers the synthetic data path used by -gen.
func TestLoadDBGen(t *testing.T) {
	db, err := loadDB("", false, "30x20", 2)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSeries() != 30 {
		t.Fatalf("got %d series, want 30", db.NumSeries())
	}
	if _, err := loadDB("", false, "garbage", 2); err == nil {
		t.Fatal("bad -gen spec should fail")
	}
	if _, err := loadDB("", false, "", 2); err == nil {
		t.Fatal("missing -data and -gen should fail")
	}
}
