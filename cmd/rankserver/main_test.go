package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"temporalrank"
	"temporalrank/internal/gen"
)

func testServer(t *testing.T, methods ...temporalrank.Method) (*server, *temporalrank.DB, *httptest.Server) {
	return testShardedServer(t, 1, methods...)
}

// testShardedServer builds a server over a cluster with the given shard
// count; shards=1 is the single-node configuration every pre-cluster
// test uses.
func testShardedServer(t *testing.T, shards int, methods ...temporalrank.Method) (*server, *temporalrank.DB, *httptest.Server) {
	t.Helper()
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: 50, Navg: 40, Seed: 5, Span: 200})
	if err != nil {
		t.Fatal(err)
	}
	db := temporalrank.NewDBFromDataset(ds)
	opts := make([]temporalrank.Options, len(methods))
	for i, m := range methods {
		opts[i] = temporalrank.Options{Method: m, TargetR: 80, KMax: 50}
	}
	cluster, err := temporalrank.NewClusterFromDB(db, temporalrank.ClusterOptions{
		Shards:  shards,
		Indexes: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cluster, 8, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, db, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestParallelTopKMatchesReference is the load-style acceptance test:
// many goroutines issue /topk requests concurrently and every response
// must match the brute-force DB.TopK reference answer.
func TestParallelTopKMatchesReference(t *testing.T) {
	_, db, ts := testServer(t, temporalrank.MethodExact3)

	const (
		clients           = 10
		requestsPerClient = 30
	)
	span := db.End() - db.Start()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < requestsPerClient; i++ {
				t1 := db.Start() + rng.Float64()*span*0.8
				t2 := t1 + rng.Float64()*span*0.2
				var got queryResponse
				url := fmt.Sprintf("%s/topk?k=5&t1=%g&t2=%g", ts.URL, t1, t2)
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				code := resp.StatusCode
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("decode: %w", err)
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("status %d for %s", code, url)
					return
				}
				want := db.TopK(5, t1, t2)
				if len(got.Results) != len(want) {
					errs <- fmt.Errorf("got %d results, want %d", len(got.Results), len(want))
					return
				}
				for j := range want {
					if got.Results[j].ID != want[j].ID {
						errs <- fmt.Errorf("rank %d: got object %d, want %d", j, got.Results[j].ID, want[j].ID)
						return
					}
				}
			}
		}(int64(c + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var st statsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if st.Queries != clients*requestsPerClient {
		t.Fatalf("stats: got %d queries, want %d", st.Queries, clients*requestsPerClient)
	}
	if st.QueryErrors != 0 {
		t.Fatalf("stats: %d query errors", st.QueryErrors)
	}
}

// TestEndpoints exercises every route once, including appends racing
// queries on an approximate method.
func TestEndpoints(t *testing.T) {
	_, db, ts := testServer(t, temporalrank.MethodAppx2P)
	mid := (db.Start() + db.End()) / 2

	var q queryResponse
	if code := getJSON(t, fmt.Sprintf("%s/topk?k=3&t1=%g&t2=%g", ts.URL, db.Start(), db.End()), &q); code != http.StatusOK {
		t.Fatalf("/topk status %d", code)
	}
	if len(q.Results) != 3 || q.Method != "APPX2+" {
		t.Fatalf("bad /topk response: %+v", q)
	}
	if code := getJSON(t, fmt.Sprintf("%s/avg?k=3&t1=%g&t2=%g", ts.URL, db.Start(), db.End()), &q); code != http.StatusOK {
		t.Fatalf("/avg status %d", code)
	}
	if code := getJSON(t, fmt.Sprintf("%s/instant?k=3&t=%g", ts.URL, mid), &q); code != http.StatusOK {
		t.Fatalf("/instant status %d", code)
	}

	// Appends racing queries: writer posts /append while readers hit
	// /topk (the server-side mirror of the -race regression test).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tcur := db.End()
		for i := 0; i < 20; i++ {
			tcur += 1
			body, _ := json.Marshal(appendRequest{ID: i % db.NumSeries(), T: tcur, V: float64(i)})
			resp, err := http.Post(ts.URL+"/append", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/append status %d", resp.StatusCode)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		var r queryResponse
		getJSON(t, fmt.Sprintf("%s/topk?k=3&t1=%g&t2=%g", ts.URL, db.Start(), mid), &r)
	}
	wg.Wait()

	// Error paths.
	resp, err := http.Get(ts.URL + "/topk?k=3&t1=oops&t2=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad t1: status %d, want 400", resp.StatusCode)
	}
	// An inverted interval is now a typed ErrBadInterval, mapped to 400
	// (it was a 422 before the unified query API).
	resp, err = http.Get(ts.URL + "/topk?k=3&t1=5&t2=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted interval: status %d, want 400", resp.StatusCode)
	}

	// k guards: non-positive k rejected, huge k clamped to m (a DoS
	// guard — k sizes the top-k heap).
	resp, err = http.Get(ts.URL + "/topk?k=0&t1=0&t2=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0: status %d, want 400", resp.StatusCode)
	}
	var clamped queryResponse
	if code := getJSON(t, fmt.Sprintf("%s/topk?k=2000000000&t1=%g&t2=%g", ts.URL, db.Start(), mid), &clamped); code != http.StatusOK {
		t.Fatalf("huge k: status %d, want 200", code)
	}
	if len(clamped.Results) > db.NumSeries() {
		t.Fatalf("huge k: %d results for %d objects", len(clamped.Results), db.NumSeries())
	}

	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("/healthz: %d %v", code, health)
	}
}

// TestQueryEndpoint exercises the unified /query route over a
// two-index planner: eps routes to the approximate index, no eps (or
// eps=0) to the exact one, and exact answers match the reference.
func TestQueryEndpoint(t *testing.T) {
	_, db, ts := testServer(t, temporalrank.MethodExact3, temporalrank.MethodAppx2)
	t1, t2 := db.Start(), db.End()

	var exactResp queryResponse
	if code := getJSON(t, fmt.Sprintf("%s/query?k=5&t1=%g&t2=%g", ts.URL, t1, t2), &exactResp); code != http.StatusOK {
		t.Fatalf("/query status %d", code)
	}
	if !exactResp.Exact || temporalrank.Method(exactResp.Method).IsApprox() {
		t.Fatalf("exact query answered by %q (exact=%v)", exactResp.Method, exactResp.Exact)
	}
	want := db.TopK(5, t1, t2)
	for j := range want {
		if exactResp.Results[j].ID != want[j].ID {
			t.Fatalf("rank %d: got object %d, want %d", j, exactResp.Results[j].ID, want[j].ID)
		}
	}

	var apxResp queryResponse
	if code := getJSON(t, fmt.Sprintf("%s/query?k=5&t1=%g&t2=%g&eps=0.9", ts.URL, t1, t2), &apxResp); code != http.StatusOK {
		t.Fatalf("/query eps status %d", code)
	}
	if !temporalrank.Method(apxResp.Method).IsApprox() {
		t.Fatalf("tolerant query answered by exact %q, want approximate", apxResp.Method)
	}
	if apxResp.Exact || apxResp.Epsilon <= 0 {
		t.Fatalf("approximate answer misreported: %+v", apxResp)
	}

	// avg through /query: same ranking, rescaled scores.
	var avgResp queryResponse
	if code := getJSON(t, fmt.Sprintf("%s/query?agg=avg&k=5&t1=%g&t2=%g", ts.URL, t1, t2), &avgResp); code != http.StatusOK {
		t.Fatalf("/query agg=avg status %d", code)
	}
	if avgResp.Agg != "avg" || len(avgResp.Results) != 5 {
		t.Fatalf("bad avg response: %+v", avgResp)
	}

	// instant through /query.
	var instResp queryResponse
	mid := (t1 + t2) / 2
	if code := getJSON(t, fmt.Sprintf("%s/query?agg=instant&k=5&t=%g", ts.URL, mid), &instResp); code != http.StatusOK {
		t.Fatalf("/query agg=instant status %d", code)
	}
	if !instResp.Exact {
		t.Fatalf("instant answers are always exact: %+v", instResp)
	}

	// Unknown aggregate → 400.
	resp, err := http.Get(fmt.Sprintf("%s/query?agg=median&k=5&t1=%g&t2=%g", ts.URL, t1, t2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("agg=median: status %d, want 400", resp.StatusCode)
	}
}

// TestScoreEndpoint covers /score on exact and approximate primaries,
// including the typed not-materialized and unknown-series failures.
func TestScoreEndpoint(t *testing.T) {
	_, db, ts := testServer(t, temporalrank.MethodExact2)
	t1, t2 := db.Start(), db.End()

	var sc scoreResponse
	if code := getJSON(t, fmt.Sprintf("%s/score?id=3&t1=%g&t2=%g", ts.URL, t1, t2), &sc); code != http.StatusOK {
		t.Fatalf("/score status %d", code)
	}
	wantScore, err := db.Score(3, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Exact || sc.Score != wantScore {
		t.Fatalf("/score got %+v, want exact %g", sc, wantScore)
	}

	resp, err := http.Get(fmt.Sprintf("%s/score?id=99999&t1=%g&t2=%g", ts.URL, t1, t2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown series: status %d, want 404", resp.StatusCode)
	}

	// Approximate primary: an object outside the materialized lists is
	// a 404, not a silent zero. KMax=5 over 50 objects guarantees most
	// ids are unmaterialized; scan until one answers 404.
	_, db2, ts2 := testServerKMax(t, temporalrank.MethodAppx2, 5)
	saw404 := false
	for id := 0; id < db2.NumSeries(); id++ {
		resp, err := http.Get(fmt.Sprintf("%s/score?id=%d&t1=%g&t2=%g", ts2.URL, id, db2.Start(), db2.End()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusNotFound:
			saw404 = true
		default:
			t.Fatalf("id %d: status %d", id, resp.StatusCode)
		}
		if saw404 {
			break
		}
	}
	if !saw404 {
		t.Fatal("no unmaterialized object answered 404")
	}
}

func testServerKMax(t *testing.T, method temporalrank.Method, kmax int) (*server, *temporalrank.DB, *httptest.Server) {
	t.Helper()
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: 50, Navg: 40, Seed: 5, Span: 200})
	if err != nil {
		t.Fatal(err)
	}
	db := temporalrank.NewDBFromDataset(ds)
	cluster, err := temporalrank.NewClusterFromDB(db, temporalrank.ClusterOptions{
		Indexes: []temporalrank.Options{{Method: method, TargetR: 80, KMax: kmax}},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(cluster, 4, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, db, ts
}

// TestAppendMultiIndex: appends on a multi-index server now succeed —
// Planner.Append advances every index consistently (they used to be
// rejected with 409 because a single Index.Append would silently stale
// its siblings). Both indexes must serve the appended data.
func TestAppendMultiIndex(t *testing.T) {
	_, db, ts := testServer(t, temporalrank.MethodExact3, temporalrank.MethodAppx2)
	tend := db.End()
	for i := 0; i < 10; i++ {
		tend += 1
		body, _ := json.Marshal(appendRequest{ID: 0, T: tend, V: 5})
		resp, err := http.Post(ts.URL+"/append", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("multi-index append %d: status %d, want 200", i, resp.StatusCode)
		}
	}
	var st statsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if st.DomainEnd != tend {
		t.Fatalf("domain end %g after appends, want %g", st.DomainEnd, tend)
	}
	// The exact index must see the appended mass: query an interval
	// covering only the new segments.
	var q queryResponse
	if code := getJSON(t, fmt.Sprintf("%s/query?k=1&t1=%g&t2=%g", ts.URL, db.End(), tend), &q); code != http.StatusOK {
		t.Fatalf("/query status %d", code)
	}
	if len(q.Results) != 1 || q.Results[0].ID != 0 {
		t.Fatalf("post-append query: %+v, want object 0 on top", q)
	}
	// A stale append (t behind the frontier) still fails cleanly.
	body, _ := json.Marshal(appendRequest{ID: 0, T: tend - 50, V: 1})
	resp, err := http.Post(ts.URL+"/append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("stale append accepted")
	}
}

// TestShardedServer: -shards 8 serves /query with correct merged
// results and metadata through the same HTTP surface.
func TestShardedServer(t *testing.T) {
	_, db, ts := testShardedServer(t, 8, temporalrank.MethodExact3)
	t1, t2 := db.Start(), db.End()

	var st statsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats status %d", code)
	}
	if st.Shards != 8 || st.Objects != db.NumSeries() || st.Segments != db.NumSegments() {
		t.Fatalf("sharded stats: %+v", st)
	}
	perShardTotal := 0
	for _, sh := range st.PerShard {
		perShardTotal += sh.Objects
	}
	if perShardTotal != db.NumSeries() {
		t.Fatalf("per-shard objects sum to %d, want %d", perShardTotal, db.NumSeries())
	}

	var q queryResponse
	if code := getJSON(t, fmt.Sprintf("%s/query?k=5&t1=%g&t2=%g", ts.URL, t1, t2), &q); code != http.StatusOK {
		t.Fatalf("/query status %d", code)
	}
	if q.Method != string(temporalrank.MethodExact3) || !q.Exact {
		t.Fatalf("merged metadata: %+v", q)
	}
	want := db.TopK(5, t1, t2)
	for j := range want {
		if q.Results[j].ID != want[j].ID {
			t.Fatalf("rank %d: got object %d, want %d", j, q.Results[j].ID, want[j].ID)
		}
	}

	// /score and /append route by global ID.
	var sc scoreResponse
	if code := getJSON(t, fmt.Sprintf("%s/score?id=7&t1=%g&t2=%g", ts.URL, t1, t2), &sc); code != http.StatusOK {
		t.Fatalf("/score status %d", code)
	}
	wantScore, err := db.Score(7, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	diff := sc.Score - wantScore
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-6 {
		t.Fatalf("sharded /score got %g, want %g", sc.Score, wantScore)
	}
	body, _ := json.Marshal(appendRequest{ID: 7, T: db.End() + 1, V: 2})
	resp, err := http.Post(ts.URL+"/append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded append: status %d", resp.StatusCode)
	}
}

// TestLoadDBGen covers the synthetic data path used by -gen.
func TestLoadDBGen(t *testing.T) {
	db, err := loadDB("", false, "30x20", 2)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSeries() != 30 {
		t.Fatalf("got %d series, want 30", db.NumSeries())
	}
	if _, err := loadDB("", false, "garbage", 2); err == nil {
		t.Fatal("bad -gen spec should fail")
	}
	if _, err := loadDB("", false, "", 2); err == nil {
		t.Fatal("missing -data and -gen should fail")
	}
}

// TestCheckpointEndpointAndRestore exercises the durable-snapshot
// lifecycle: POST /checkpoint writes per-shard files, a fresh server
// restores them (the restart path), and the restored server answers
// queries identically to the original.
func TestCheckpointEndpointAndRestore(t *testing.T) {
	srv, db, ts := testShardedServer(t, 2, temporalrank.MethodExact3)

	// Without -data DIR the endpoint must refuse, not write anywhere.
	resp, err := http.Post(ts.URL+"/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint without snapshot dir: status %d, want 409", resp.StatusCode)
	}

	dir := t.TempDir()
	srv.enableCheckpoint(dir)
	var ck struct {
		Status string `json:"status"`
		Dir    string `json:"dir"`
	}
	resp, err = http.Post(ts.URL+"/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ck.Status != "checkpointed" {
		t.Fatalf("checkpoint: status %d body %+v", resp.StatusCode, ck)
	}
	if !hasSnapshotFiles(dir) {
		t.Fatalf("no snapshot files in %s after /checkpoint", dir)
	}

	// "Restart": restore into a second server process's stack.
	restored, err := temporalrank.OpenClusterSnapshot(dir, temporalrank.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := newServer(restored, 4, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer func() {
		ts2.Close()
		srv2.Close()
	}()

	span := db.End() - db.Start()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		t1 := db.Start() + rng.Float64()*span*0.7
		t2 := t1 + rng.Float64()*span*0.3
		url := fmt.Sprintf("/query?agg=sum&k=5&t1=%g&t2=%g", t1, t2)
		var a, b struct {
			Results []struct {
				ID    int     `json:"id"`
				Score float64 `json:"score"`
			} `json:"results"`
		}
		if code := getJSON(t, ts.URL+url, &a); code != http.StatusOK {
			t.Fatalf("original %s: status %d", url, code)
		}
		if code := getJSON(t, ts2.URL+url, &b); code != http.StatusOK {
			t.Fatalf("restored %s: status %d", url, code)
		}
		if len(a.Results) != len(b.Results) {
			t.Fatalf("%s: %d vs %d results", url, len(a.Results), len(b.Results))
		}
		for i := range a.Results {
			if a.Results[i] != b.Results[i] {
				t.Fatalf("%s rank %d: original %+v, restored %+v", url, i, a.Results[i], b.Results[i])
			}
		}
	}

	// Appends keep working on the restored stack (frontiers survived).
	body := bytes.NewBufferString(fmt.Sprintf(`{"id":0,"t":%g,"v":1.5}`, db.End()+1))
	resp, err = http.Post(ts2.URL+"/append", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append on restored server: status %d", resp.StatusCode)
	}
}

// TestSnapshotDirDetection pins the -data disambiguation rules.
func TestSnapshotDirDetection(t *testing.T) {
	dir := t.TempDir()
	if got, err := snapshotDir(dir, ""); err != nil || got != dir {
		t.Fatalf("existing dir: got (%q, %v)", got, err)
	}
	file := dir + "/data.csv"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := snapshotDir(file, "10x10"); err != nil || got != "" {
		t.Fatalf("existing file: got (%q, %v), want legacy dataset mode", got, err)
	}
	fresh := dir + "/snaps"
	if got, err := snapshotDir(fresh, "10x10"); err != nil || got != fresh {
		t.Fatalf("fresh path with -gen: got (%q, %v)", got, err)
	}
	if fi, err := os.Stat(fresh); err != nil || !fi.IsDir() {
		t.Fatalf("fresh snapshot dir was not created: %v", err)
	}
	if got, err := snapshotDir(dir+"/missing.csv", ""); err != nil || got != "" {
		t.Fatalf("missing path without -gen: got (%q, %v)", got, err)
	}
}
