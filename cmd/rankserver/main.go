// Command rankserver serves aggregate top-k queries over HTTP: it
// loads (or generates) a temporal dataset, builds one or more of the
// paper's eight indexes, and answers queries through an adaptive
// Planner and the concurrent engine (internal/engine) so many clients
// can be in flight at once.
//
// Usage:
//
//	rankserver -data temp.csv -method EXACT3 -addr :8080
//	rankserver -gen 500x80 -method EXACT3,APPX2+ -workers 16
//	rankserver -gen 5000x80 -method EXACT3 -shards 8
//	rankserver -gen 5000x80 -method EXACT3 -data snapdir/
//
// When -data names a directory instead of a file, the server runs in
// durable mode: on boot it restores the directory's per-shard snapshot
// files (shard-*.trsnap) into a fully queryable cluster — no index is
// rebuilt, so restart time is IO-bound, not compute-bound — and falls
// back to -gen only when the directory holds no snapshot yet. A
// snapshot generation is written on graceful shutdown (SIGINT/SIGTERM)
// and on demand via POST /checkpoint; each shard file commits
// atomically, so a crash mid-checkpoint loses at most the new
// generation, never the previous one. In durable mode the restored
// snapshot fixes the shard count and index set, and -method/-shards/-r
// are ignored on restore.
//
// With several -method values each shard's Planner routes queries to
// the cheapest index satisfying their error tolerance (the eps
// parameter); eps=0 or no eps demands an exact answer. With -shards N
// the dataset is hash-partitioned across N independent shards (each
// its own DB, indexes, and device) and every query is scatter-gathered
// with a deterministic top-k merge — same answers, parallel execution.
//
// Endpoints (all JSON):
//
//	GET  /query?agg=sum&k=10&t1=50&t2=120&eps=0.05   primary: declarative query
//	GET  /topk?k=10&t1=50&t2=120   top-k(t1,t2,sum)  (deprecated: /query)
//	GET  /avg?k=10&t1=50&t2=120    top-k(t1,t2,avg)  (deprecated: /query)
//	GET  /instant?k=10&t=75        instant top-k(t)  (deprecated: /query)
//	GET  /score?id=3&t1=50&t2=120  one object's σ(t1,t2); 404 not_materialized
//	POST /append                    {"id":3,"t":130.5,"v":42.0} routed to the owning shard
//	POST /checkpoint                write a durable snapshot generation now (-data DIR mode)
//	GET  /stats                     dataset + per-shard + per-index + engine statistics
//	GET  /healthz                   liveness probe
//
// Every query runs under a -timeout deadline propagated through the
// worker pool; SIGINT/SIGTERM drain in-flight requests before exit
// (graceful shutdown).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"temporalrank"
	"temporalrank/internal/gen"
	"temporalrank/internal/tsio"
)

// config carries every flag so the validator can be table-tested
// without touching the global flag set.
type config struct {
	addr     string
	data     string
	binary   bool
	genSpec  string
	seed     int64
	method   string
	r        int
	kmax     int
	cache    int
	workers  int
	build    int
	shards   int
	swork    int
	timeout  time.Duration
	rcache   int
	memtable int
	pprof    string
	router   string
	hedge    time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.data, "data", "", "dataset path (CSV, or TRK1 with -binary), or a snapshot directory for durable restore/checkpoint")
	flag.BoolVar(&cfg.binary, "binary", false, "dataset is TRK1 binary")
	flag.StringVar(&cfg.genSpec, "gen", "", "generate a synthetic dataset instead of loading: MxN (objects x avg segments), e.g. 500x80")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for -gen")
	flag.StringVar(&cfg.method, "method", "EXACT3", "comma-separated index methods for the planner (EXACT1/2/3, APPX1-B, APPX2-B, APPX1, APPX2, APPX2+)")
	flag.IntVar(&cfg.r, "r", 500, "breakpoint budget for approximate methods")
	flag.IntVar(&cfg.kmax, "kmax", 200, "max k supported by approximate methods")
	flag.IntVar(&cfg.cache, "cache", 0, "LRU buffer pool size in pages (0 = none)")
	flag.IntVar(&cfg.workers, "workers", 0, "query worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.build, "build-workers", 0, "parallel build workers for per-series construction (0 = sequential)")
	flag.IntVar(&cfg.shards, "shards", 1, "hash-partition the dataset across this many shards")
	flag.IntVar(&cfg.swork, "shard-workers", 0, "per-query shard fan-out bound (0 = GOMAXPROCS; lower it to trade idle latency for less oversubscription under full load)")
	flag.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-query deadline (0 = none)")
	flag.IntVar(&cfg.rcache, "result-cache", 0, "versioned result cache size in entries (0 = off); repeated identical queries are answered from cache and concurrent identical queries coalesce into one run")
	flag.IntVar(&cfg.memtable, "memtable", 0, "enable the memtable ingest path on every shard, flushing after this many buffered segments (0 = off); appends become lock-light memtable inserts compacted in the background")
	flag.StringVar(&cfg.pprof, "pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); empty = off (the default — profiling endpoints are never exposed on the main listener)")
	flag.StringVar(&cfg.router, "router", "", "route queries to remote shardservers instead of hosting shards: replica addresses comma-separated, shard groups semicolon-separated, e.g. \"h1:7070,h2:7070;h3:7070,h4:7070\"")
	flag.DurationVar(&cfg.hedge, "hedge", 0, "-router mode: delay before hedging a slow shard read to another replica (0 = library default, negative = off)")
	flag.Parse()
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateConfig(cfg, set); err != nil {
		fmt.Fprintln(os.Stderr, "rankserver:", err)
		os.Exit(2)
	}
	var err error
	if cfg.router != "" {
		err = runRouter(cfg)
	} else {
		err = run(cfg.addr, cfg.data, cfg.binary, cfg.genSpec, cfg.seed, cfg.method, cfg.r, cfg.kmax, cfg.cache, cfg.workers, cfg.build, cfg.shards, cfg.swork, cfg.rcache, cfg.memtable, cfg.pprof, cfg.timeout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rankserver:", err)
		os.Exit(1)
	}
}

// localOnlyFlags shape locally hosted shards and are meaningless when
// -router delegates hosting to remote shardservers; rejecting them
// early beats silently ignoring a -gen or -method the operator
// expected to matter.
var localOnlyFlags = []string{
	"data", "binary", "gen", "seed", "method", "r", "kmax",
	"cache", "build-workers", "shards", "shard-workers", "result-cache",
	"memtable",
}

// routerOnlyFlags tune the remote read path and do nothing for local
// shards.
var routerOnlyFlags = []string{"hedge"}

// validateConfig rejects bad flag combinations with a one-line error
// before any dataset is loaded or index built. set holds the names of
// flags explicitly present on the command line, so defaults never
// trip the mutual-exclusion checks.
func validateConfig(c config, set map[string]bool) error {
	if c.router != "" {
		for _, name := range localOnlyFlags {
			if set[name] {
				return fmt.Errorf("-%s configures locally hosted shards and conflicts with -router (the shardservers own their data)", name)
			}
		}
		_, err := parseRouterGroups(c.router)
		return err
	}
	for _, name := range routerOnlyFlags {
		if set[name] {
			return fmt.Errorf("-%s only applies to -router mode", name)
		}
	}
	if c.shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", c.shards)
	}
	if c.data == "" && c.genSpec == "" {
		return fmt.Errorf("one of -data, -gen or -router is required")
	}
	if c.data != "" {
		return checkDataPath(c.data, c.genSpec)
	}
	return nil
}

// checkDataPath validates -data before any expensive build: an
// existing directory must accept writes (it receives checkpoint
// generations), and a fresh snapshot-directory target must be
// creatable. An existing regular file is a dataset; the loader
// validates its format.
func checkDataPath(data, genSpec string) error {
	fi, err := os.Stat(data)
	switch {
	case err == nil && fi.IsDir():
		probe := filepath.Join(data, ".rankserver.probe")
		f, err := os.Create(probe)
		if err != nil {
			return fmt.Errorf("-data directory %s is not writable: %w", data, err)
		}
		f.Close()
		os.Remove(probe)
		return nil
	case err == nil:
		return nil
	case os.IsNotExist(err) && genSpec != "":
		if err := os.MkdirAll(data, 0o755); err != nil {
			return fmt.Errorf("-data %s cannot be created: %w", data, err)
		}
		return nil
	case os.IsNotExist(err):
		return fmt.Errorf("-data %s does not exist (pass -gen to create a snapshot directory there)", data)
	default:
		return fmt.Errorf("-data %s: %w", data, err)
	}
}

// parseRouterGroups splits the -router topology spec: shard groups
// separated by semicolons, replica addresses within a group by
// commas. Group order is shard order.
func parseRouterGroups(spec string) ([][]string, error) {
	var groups [][]string
	for _, g := range strings.Split(spec, ";") {
		var addrs []string
		for _, a := range strings.Split(g, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("-router %q: empty shard group (want \"addr,addr;addr,addr\")", spec)
		}
		groups = append(groups, addrs)
	}
	return groups, nil
}

// runRouter serves the HTTP API over a RemoteCluster: every query
// scatters to one replica per shard group (hedging slow reads),
// appends replicate synchronously, and POST /checkpoint fans out to
// the shard primaries. The endpoints and wire format are identical to
// local mode, so clients cannot tell a router from a single node.
func runRouter(cfg config) error {
	groups, err := parseRouterGroups(cfg.router)
	if err != nil {
		return err
	}
	rc, err := temporalrank.NewRemoteCluster(groups, temporalrank.RemoteClusterOptions{
		HedgeDelay:  cfg.hedge,
		CallTimeout: cfg.timeout,
	})
	if err != nil {
		return fmt.Errorf("connect shard groups %q: %w", cfg.router, err)
	}
	defer rc.Close()
	srv, err := newRouterServer(rc, cfg.workers, cfg.timeout)
	if err != nil {
		return err
	}
	log.Printf("routing %d objects across %d shard groups", rc.NumSeries(), rc.NumShards())
	banner := fmt.Sprintf("routing on %s with %d workers", cfg.addr, srv.exec.Workers())
	return serveHTTP(cfg.addr, cfg.pprof, banner, srv, nil)
}

func run(addr, data string, binary bool, genSpec string, seed int64, methods string, r, kmax, cache, workers, build, shards, shardWorkers, resultCache, memtable int, pprofAddr string, timeout time.Duration) error {
	snapDir, err := snapshotDir(data, genSpec)
	if err != nil {
		return err
	}
	var mtOpts *temporalrank.MemtableOptions
	if memtable > 0 {
		mtOpts = &temporalrank.MemtableOptions{FlushSegments: memtable}
	}
	var cluster *temporalrank.Cluster
	if snapDir != "" && hasSnapshotFiles(snapDir) {
		restoreStart := time.Now()
		cluster, err = temporalrank.OpenClusterSnapshot(snapDir, temporalrank.ClusterOptions{
			Workers:     shardWorkers,
			ResultCache: resultCache,
			Memtable:    mtOpts,
		})
		if err != nil {
			return fmt.Errorf("restore snapshot %s: %w", snapDir, err)
		}
		log.Printf("restored %d shards (%d objects, %d segments) from %s in %v — no index rebuilt",
			cluster.NumShards(), cluster.NumSeries(), cluster.NumSegments(),
			snapDir, time.Since(restoreStart).Round(time.Millisecond))
	} else {
		dataFile := data
		if snapDir != "" {
			dataFile = "" // -data is the snapshot target, -gen is the source
		}
		db, err := loadDB(dataFile, binary, genSpec, seed)
		if err != nil {
			return err
		}
		log.Printf("loaded %d objects, %d segments, domain [%g, %g]",
			db.NumSeries(), db.NumSegments(), db.Start(), db.End())

		var opts []temporalrank.Options
		for _, m := range strings.Split(methods, ",") {
			m = strings.TrimSpace(m)
			if m == "" {
				continue
			}
			opts = append(opts, temporalrank.Options{
				Method:       temporalrank.Method(m),
				TargetR:      r,
				KMax:         kmax,
				CacheBlocks:  cache,
				BuildWorkers: build,
			})
		}
		if len(opts) == 0 {
			return fmt.Errorf("-method must name at least one index")
		}
		buildStart := time.Now()
		cluster, err = temporalrank.NewClusterFromDB(db, temporalrank.ClusterOptions{
			Shards:      shards,
			Indexes:     opts,
			Workers:     shardWorkers,
			ResultCache: resultCache,
			Memtable:    mtOpts,
		})
		if err != nil {
			return err
		}
		cst := cluster.Stats()
		for i, sst := range cst.PerShard {
			pages, bytes := 0, int64(0)
			for _, ist := range sst.Indexes {
				pages += ist.Pages
				bytes += ist.Bytes
			}
			log.Printf("shard %d: %d objects, %d segments, %d index pages (%d bytes)",
				i, sst.Objects, sst.Segments, pages, bytes)
		}
		log.Printf("%d shards x %d indexes built in %v",
			cst.Shards, len(opts), time.Since(buildStart).Round(time.Millisecond))
		if snapDir != "" {
			// Prime the directory so the next boot restores instead of
			// rebuilding, even if the process dies ungracefully later.
			primeStart := time.Now()
			if err := cluster.Checkpoint(snapDir); err != nil {
				return fmt.Errorf("initial checkpoint to %s: %w", snapDir, err)
			}
			log.Printf("checkpointed to %s in %v", snapDir, time.Since(primeStart).Round(time.Millisecond))
		}
	}

	srv, err := newServer(cluster, workers, timeout)
	if err != nil {
		return err
	}
	var onShutdown func() error
	if snapDir != "" {
		srv.enableCheckpoint(snapDir)
		onShutdown = func() error {
			elapsed, err := srv.checkpointNow()
			if err != nil {
				return fmt.Errorf("shutdown checkpoint to %s: %w", snapDir, err)
			}
			log.Printf("checkpointed to %s in %v", snapDir, elapsed.Round(time.Millisecond))
			return nil
		}
	}
	banner := fmt.Sprintf("serving %s on %s with %d workers", methods, addr, srv.exec.Workers())
	return serveHTTP(addr, pprofAddr, banner, srv, onShutdown)
}

// serveHTTP runs srv on addr with opt-in side-listener profiling and
// graceful shutdown: SIGINT/SIGTERM stops accepting, drains in-flight
// requests, stops the worker pool, then runs onShutdown (local mode's
// exit checkpoint).
func serveHTTP(addr, pprofAddr, banner string, srv *server, onShutdown func() error) error {
	defer srv.Close()
	httpSrv := &http.Server{Addr: addr, Handler: srv}

	// Opt-in profiling on a side listener, never on the query address.
	pprofSrv, pprofLn, err := startPprof(pprofAddr)
	if err != nil {
		return err
	}
	if pprofSrv != nil {
		log.Printf("pprof on http://%s/debug/pprof/", pprofLn.Addr())
		defer pprofSrv.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Print(banner)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if onShutdown != nil {
		return onShutdown()
	}
	return nil
}

// snapshotDir decides whether -data names a durable snapshot directory
// rather than a dataset file: an existing directory always does, and a
// nonexistent path does when -gen supplies the initial data (the
// directory is created). An existing file is a dataset, as before.
func snapshotDir(data, genSpec string) (string, error) {
	if data == "" {
		return "", nil
	}
	fi, err := os.Stat(data)
	switch {
	case err == nil && fi.IsDir():
		return data, nil
	case err == nil:
		return "", nil // regular file: legacy dataset path
	case os.IsNotExist(err) && genSpec != "":
		if err := os.MkdirAll(data, 0o755); err != nil {
			return "", fmt.Errorf("create snapshot directory: %w", err)
		}
		return data, nil
	case os.IsNotExist(err):
		return "", nil // let loadDB report the missing dataset file
	default:
		return "", err
	}
}

// hasSnapshotFiles reports whether dir holds at least one per-shard
// snapshot file to restore from.
func hasSnapshotFiles(dir string) bool {
	matches, err := filepath.Glob(filepath.Join(dir, temporalrank.SnapshotFilePattern))
	return err == nil && len(matches) > 0
}

func loadDB(data string, binary bool, genSpec string, seed int64) (*temporalrank.DB, error) {
	switch {
	case genSpec != "":
		var m, n int
		if _, err := fmt.Sscanf(genSpec, "%dx%d", &m, &n); err != nil {
			return nil, fmt.Errorf("bad -gen %q (want MxN, e.g. 500x80): %w", genSpec, err)
		}
		ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: m, Navg: n, Seed: seed, Span: 1000})
		if err != nil {
			return nil, err
		}
		return temporalrank.NewDBFromDataset(ds), nil
	case data != "":
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if binary {
			ds, err := tsio.ReadBinary(f)
			if err != nil {
				return nil, err
			}
			return temporalrank.NewDBFromDataset(ds), nil
		}
		ds, err := tsio.ReadCSV(f)
		if err != nil {
			return nil, err
		}
		return temporalrank.NewDBFromDataset(ds), nil
	default:
		return nil, fmt.Errorf("one of -data or -gen is required")
	}
}
