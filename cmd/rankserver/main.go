// Command rankserver serves aggregate top-k queries over HTTP: it
// loads (or generates) a temporal dataset, builds one or more of the
// paper's eight indexes, and answers queries through an adaptive
// Planner and the concurrent engine (internal/engine) so many clients
// can be in flight at once.
//
// Usage:
//
//	rankserver -data temp.csv -method EXACT3 -addr :8080
//	rankserver -gen 500x80 -method EXACT3,APPX2+ -workers 16
//	rankserver -gen 5000x80 -method EXACT3 -shards 8
//	rankserver -gen 5000x80 -method EXACT3 -data snapdir/
//
// When -data names a directory instead of a file, the server runs in
// durable mode: on boot it restores the directory's per-shard snapshot
// files (shard-*.trsnap) into a fully queryable cluster — no index is
// rebuilt, so restart time is IO-bound, not compute-bound — and falls
// back to -gen only when the directory holds no snapshot yet. A
// snapshot generation is written on graceful shutdown (SIGINT/SIGTERM)
// and on demand via POST /checkpoint; each shard file commits
// atomically, so a crash mid-checkpoint loses at most the new
// generation, never the previous one. In durable mode the restored
// snapshot fixes the shard count and index set, and -method/-shards/-r
// are ignored on restore.
//
// With several -method values each shard's Planner routes queries to
// the cheapest index satisfying their error tolerance (the eps
// parameter); eps=0 or no eps demands an exact answer. With -shards N
// the dataset is hash-partitioned across N independent shards (each
// its own DB, indexes, and device) and every query is scatter-gathered
// with a deterministic top-k merge — same answers, parallel execution.
//
// Endpoints (all JSON):
//
//	GET  /query?agg=sum&k=10&t1=50&t2=120&eps=0.05   primary: declarative query
//	GET  /topk?k=10&t1=50&t2=120   top-k(t1,t2,sum)  (deprecated: /query)
//	GET  /avg?k=10&t1=50&t2=120    top-k(t1,t2,avg)  (deprecated: /query)
//	GET  /instant?k=10&t=75        instant top-k(t)  (deprecated: /query)
//	GET  /score?id=3&t1=50&t2=120  one object's σ(t1,t2); 404 not_materialized
//	POST /append                    {"id":3,"t":130.5,"v":42.0} routed to the owning shard
//	POST /checkpoint                write a durable snapshot generation now (-data DIR mode)
//	GET  /stats                     dataset + per-shard + per-index + engine statistics
//	GET  /healthz                   liveness probe
//
// Every query runs under a -timeout deadline propagated through the
// worker pool; SIGINT/SIGTERM drain in-flight requests before exit
// (graceful shutdown).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"temporalrank"
	"temporalrank/internal/gen"
	"temporalrank/internal/tsio"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		data    = flag.String("data", "", "dataset path (CSV, or TRK1 with -binary), or a snapshot directory for durable restore/checkpoint")
		binary  = flag.Bool("binary", false, "dataset is TRK1 binary")
		genSpec = flag.String("gen", "", "generate a synthetic dataset instead of loading: MxN (objects x avg segments), e.g. 500x80")
		seed    = flag.Int64("seed", 1, "seed for -gen")
		method  = flag.String("method", "EXACT3", "comma-separated index methods for the planner (EXACT1/2/3, APPX1-B, APPX2-B, APPX1, APPX2, APPX2+)")
		r       = flag.Int("r", 500, "breakpoint budget for approximate methods")
		kmax    = flag.Int("kmax", 200, "max k supported by approximate methods")
		cache   = flag.Int("cache", 0, "LRU buffer pool size in pages (0 = none)")
		workers = flag.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
		build   = flag.Int("build-workers", 0, "parallel build workers for per-series construction (0 = sequential)")
		shards  = flag.Int("shards", 1, "hash-partition the dataset across this many shards")
		swork   = flag.Int("shard-workers", 0, "per-query shard fan-out bound (0 = GOMAXPROCS; lower it to trade idle latency for less oversubscription under full load)")
		timeout = flag.Duration("timeout", 10*time.Second, "per-query deadline (0 = none)")
		rcache  = flag.Int("result-cache", 0, "versioned result cache size in entries (0 = off); repeated identical queries are answered from cache and concurrent identical queries coalesce into one run")
		pprof   = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); empty = off (the default — profiling endpoints are never exposed on the main listener)")
	)
	flag.Parse()
	if err := run(*addr, *data, *binary, *genSpec, *seed, *method, *r, *kmax, *cache, *workers, *build, *shards, *swork, *rcache, *pprof, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "rankserver:", err)
		os.Exit(1)
	}
}

func run(addr, data string, binary bool, genSpec string, seed int64, methods string, r, kmax, cache, workers, build, shards, shardWorkers, resultCache int, pprofAddr string, timeout time.Duration) error {
	snapDir, err := snapshotDir(data, genSpec)
	if err != nil {
		return err
	}
	var cluster *temporalrank.Cluster
	if snapDir != "" && hasSnapshotFiles(snapDir) {
		restoreStart := time.Now()
		cluster, err = temporalrank.OpenClusterSnapshot(snapDir, temporalrank.ClusterOptions{
			Workers:     shardWorkers,
			ResultCache: resultCache,
		})
		if err != nil {
			return fmt.Errorf("restore snapshot %s: %w", snapDir, err)
		}
		log.Printf("restored %d shards (%d objects, %d segments) from %s in %v — no index rebuilt",
			cluster.NumShards(), cluster.NumSeries(), cluster.NumSegments(),
			snapDir, time.Since(restoreStart).Round(time.Millisecond))
	} else {
		dataFile := data
		if snapDir != "" {
			dataFile = "" // -data is the snapshot target, -gen is the source
		}
		db, err := loadDB(dataFile, binary, genSpec, seed)
		if err != nil {
			return err
		}
		log.Printf("loaded %d objects, %d segments, domain [%g, %g]",
			db.NumSeries(), db.NumSegments(), db.Start(), db.End())

		var opts []temporalrank.Options
		for _, m := range strings.Split(methods, ",") {
			m = strings.TrimSpace(m)
			if m == "" {
				continue
			}
			opts = append(opts, temporalrank.Options{
				Method:       temporalrank.Method(m),
				TargetR:      r,
				KMax:         kmax,
				CacheBlocks:  cache,
				BuildWorkers: build,
			})
		}
		if len(opts) == 0 {
			return fmt.Errorf("-method must name at least one index")
		}
		buildStart := time.Now()
		cluster, err = temporalrank.NewClusterFromDB(db, temporalrank.ClusterOptions{
			Shards:      shards,
			Indexes:     opts,
			Workers:     shardWorkers,
			ResultCache: resultCache,
		})
		if err != nil {
			return err
		}
		cst := cluster.Stats()
		for i, sst := range cst.PerShard {
			pages, bytes := 0, int64(0)
			for _, ist := range sst.Indexes {
				pages += ist.Pages
				bytes += ist.Bytes
			}
			log.Printf("shard %d: %d objects, %d segments, %d index pages (%d bytes)",
				i, sst.Objects, sst.Segments, pages, bytes)
		}
		log.Printf("%d shards x %d indexes built in %v",
			cst.Shards, len(opts), time.Since(buildStart).Round(time.Millisecond))
		if snapDir != "" {
			// Prime the directory so the next boot restores instead of
			// rebuilding, even if the process dies ungracefully later.
			primeStart := time.Now()
			if err := cluster.Checkpoint(snapDir); err != nil {
				return fmt.Errorf("initial checkpoint to %s: %w", snapDir, err)
			}
			log.Printf("checkpointed to %s in %v", snapDir, time.Since(primeStart).Round(time.Millisecond))
		}
	}

	srv, err := newServer(cluster, workers, timeout)
	if err != nil {
		return err
	}
	if snapDir != "" {
		srv.enableCheckpoint(snapDir)
	}
	defer srv.Close()
	httpSrv := &http.Server{Addr: addr, Handler: srv}

	// Opt-in profiling on a side listener, never on the query address.
	pprofSrv, pprofLn, err := startPprof(pprofAddr)
	if err != nil {
		return err
	}
	if pprofSrv != nil {
		log.Printf("pprof on http://%s/debug/pprof/", pprofLn.Addr())
		defer pprofSrv.Close()
	}

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, drain
	// in-flight requests, then stop the worker pool.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %s on %s with %d workers", methods, addr, srv.exec.Workers())
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if snapDir != "" {
		elapsed, err := srv.checkpointNow()
		if err != nil {
			return fmt.Errorf("shutdown checkpoint to %s: %w", snapDir, err)
		}
		log.Printf("checkpointed to %s in %v", snapDir, elapsed.Round(time.Millisecond))
	}
	return nil
}

// snapshotDir decides whether -data names a durable snapshot directory
// rather than a dataset file: an existing directory always does, and a
// nonexistent path does when -gen supplies the initial data (the
// directory is created). An existing file is a dataset, as before.
func snapshotDir(data, genSpec string) (string, error) {
	if data == "" {
		return "", nil
	}
	fi, err := os.Stat(data)
	switch {
	case err == nil && fi.IsDir():
		return data, nil
	case err == nil:
		return "", nil // regular file: legacy dataset path
	case os.IsNotExist(err) && genSpec != "":
		if err := os.MkdirAll(data, 0o755); err != nil {
			return "", fmt.Errorf("create snapshot directory: %w", err)
		}
		return data, nil
	case os.IsNotExist(err):
		return "", nil // let loadDB report the missing dataset file
	default:
		return "", err
	}
}

// hasSnapshotFiles reports whether dir holds at least one per-shard
// snapshot file to restore from.
func hasSnapshotFiles(dir string) bool {
	matches, err := filepath.Glob(filepath.Join(dir, temporalrank.SnapshotFilePattern))
	return err == nil && len(matches) > 0
}

func loadDB(data string, binary bool, genSpec string, seed int64) (*temporalrank.DB, error) {
	switch {
	case genSpec != "":
		var m, n int
		if _, err := fmt.Sscanf(genSpec, "%dx%d", &m, &n); err != nil {
			return nil, fmt.Errorf("bad -gen %q (want MxN, e.g. 500x80): %w", genSpec, err)
		}
		ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: m, Navg: n, Seed: seed, Span: 1000})
		if err != nil {
			return nil, err
		}
		return temporalrank.NewDBFromDataset(ds), nil
	case data != "":
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if binary {
			ds, err := tsio.ReadBinary(f)
			if err != nil {
				return nil, err
			}
			return temporalrank.NewDBFromDataset(ds), nil
		}
		ds, err := tsio.ReadCSV(f)
		if err != nil {
			return nil, err
		}
		return temporalrank.NewDBFromDataset(ds), nil
	default:
		return nil, fmt.Errorf("one of -data or -gen is required")
	}
}
