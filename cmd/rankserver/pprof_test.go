package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"temporalrank"
)

// TestPprofOffByDefault pins the opt-in contract from two sides: the
// empty -pprof default starts nothing, and the main query handler never
// serves /debug/pprof/ even when a side listener IS running.
func TestPprofOffByDefault(t *testing.T) {
	srv, ln, err := startPprof("")
	if err != nil {
		t.Fatal(err)
	}
	if srv != nil || ln != nil {
		t.Fatalf("startPprof(\"\") = (%v, %v), want (nil, nil): profiling must be opt-in", srv, ln)
	}

	_, _, ts := testServer(t, temporalrank.MethodExact3)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("main listener served /debug/pprof/ with %d, want 404", resp.StatusCode)
	}
}

func TestPprofSideListener(t *testing.T) {
	srv, ln, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index does not list profiles: %.200s", body)
	}
}
