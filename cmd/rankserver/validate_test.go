package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestValidateConfig exercises the flag-combination validator: every
// rejected combination must fail with a message naming the offending
// flag, before any dataset is loaded or index built.
func TestValidateConfig(t *testing.T) {
	dir := t.TempDir()
	dataFile := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(dataFile, []byte("0,0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name    string
		cfg     config
		set     []string
		wantErr string // substring; empty = must succeed
	}{
		{
			name: "gen only is valid",
			cfg:  config{genSpec: "100x10", shards: 1},
			set:  []string{"gen"},
		},
		{
			name: "existing dataset file is valid",
			cfg:  config{data: dataFile, shards: 1},
			set:  []string{"data"},
		},
		{
			name: "existing writable snapshot dir is valid",
			cfg:  config{data: dir, shards: 1},
			set:  []string{"data"},
		},
		{
			name: "router alone is valid",
			cfg:  config{router: "h1:7070,h2:7070;h3:7070", shards: 1},
			set:  []string{"router"},
		},
		{
			name: "router with hedge is valid",
			cfg:  config{router: "h1:7070", shards: 1},
			set:  []string{"router", "hedge"},
		},
		{
			name:    "zero shards",
			cfg:     config{genSpec: "100x10", shards: 0},
			set:     []string{"gen", "shards"},
			wantErr: "-shards must be >= 1",
		},
		{
			name:    "negative shards",
			cfg:     config{genSpec: "100x10", shards: -3},
			set:     []string{"gen", "shards"},
			wantErr: "-shards must be >= 1",
		},
		{
			name:    "no data source at all",
			cfg:     config{shards: 1},
			wantErr: "one of -data, -gen or -router is required",
		},
		{
			name:    "router conflicts with gen",
			cfg:     config{router: "h1:7070", genSpec: "100x10", shards: 1},
			set:     []string{"router", "gen"},
			wantErr: "-gen configures locally hosted shards",
		},
		{
			name:    "router conflicts with data",
			cfg:     config{router: "h1:7070", data: dataFile, shards: 1},
			set:     []string{"router", "data"},
			wantErr: "-data configures locally hosted shards",
		},
		{
			name:    "router conflicts with shards",
			cfg:     config{router: "h1:7070", shards: 4},
			set:     []string{"router", "shards"},
			wantErr: "-shards configures locally hosted shards",
		},
		{
			name:    "router conflicts with method",
			cfg:     config{router: "h1:7070", method: "APPX2+", shards: 1},
			set:     []string{"router", "method"},
			wantErr: "-method configures locally hosted shards",
		},
		{
			name:    "hedge without router",
			cfg:     config{genSpec: "100x10", shards: 1},
			set:     []string{"gen", "hedge"},
			wantErr: "-hedge only applies to -router mode",
		},
		{
			name:    "router with empty group",
			cfg:     config{router: "h1:7070;;h2:7070", shards: 1},
			set:     []string{"router"},
			wantErr: "empty shard group",
		},
		{
			name:    "data under a regular file",
			cfg:     config{data: filepath.Join(dataFile, "snaps"), genSpec: "100x10", shards: 1},
			set:     []string{"data", "gen"},
			wantErr: "-data",
		},
		{
			name:    "missing data without gen",
			cfg:     config{data: filepath.Join(dir, "nope.csv"), shards: 1},
			set:     []string{"data"},
			wantErr: "does not exist",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			set := make(map[string]bool, len(tt.set))
			for _, name := range tt.set {
				set[name] = true
			}
			err := validateConfig(tt.cfg, set)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("validateConfig() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateConfig() = nil, want error containing %q", tt.wantErr)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("validateConfig() = %q, want it to contain %q", err, tt.wantErr)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("error is not one line: %q", err)
			}
		})
	}
}

// TestValidateConfigCreatesSnapshotDir checks the -gen + fresh -data
// path: validation creates the snapshot directory so a later
// checkpoint cannot fail on a missing parent.
func TestValidateConfigCreatesSnapshotDir(t *testing.T) {
	target := filepath.Join(t.TempDir(), "snaps")
	cfg := config{data: target, genSpec: "100x10", shards: 1}
	if err := validateConfig(cfg, map[string]bool{"data": true, "gen": true}); err != nil {
		t.Fatalf("validateConfig() = %v, want nil", err)
	}
	fi, err := os.Stat(target)
	if err != nil || !fi.IsDir() {
		t.Fatalf("snapshot directory not created: %v", err)
	}
}

// TestParseRouterGroups checks the topology spec grammar: semicolons
// split shard groups, commas split replicas, whitespace is tolerated.
func TestParseRouterGroups(t *testing.T) {
	got, err := parseRouterGroups("h1:7070, h2:7070 ;h3:7070")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"h1:7070", "h2:7070"}, {"h3:7070"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseRouterGroups() = %v, want %v", got, want)
	}
	if _, err := parseRouterGroups(",;"); err == nil {
		t.Fatal("parseRouterGroups(\",;\") succeeded, want error")
	}
}
