package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"temporalrank"
	"temporalrank/internal/engine"
)

// server is the HTTP front end over one index and its query engine.
// It implements http.Handler, so tests mount it on httptest servers.
type server struct {
	db    *temporalrank.DB
	ix    *temporalrank.Index
	exec  *engine.Executor
	mux   *http.ServeMux
	start time.Time
}

func newServer(db *temporalrank.DB, ix *temporalrank.Index, workers int) *server {
	s := &server{
		db:    db,
		ix:    ix,
		exec:  engine.New(ix, workers),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("GET /topk", s.handleQuery(engine.OpTopK))
	s.mux.HandleFunc("GET /avg", s.handleQuery(engine.OpAvg))
	s.mux.HandleFunc("GET /instant", s.handleQuery(engine.OpInstant))
	s.mux.HandleFunc("POST /append", s.handleAppend)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the worker pool (after the HTTP server has drained).
func (s *server) Close() { s.exec.Close() }

// resultJSON is one ranked object on the wire.
type resultJSON struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// queryResponse is the body of /topk, /avg, and /instant. T2 is a
// pointer so instant queries omit it while an interval query's t2=0
// is still echoed.
type queryResponse struct {
	Method    string       `json:"method"`
	K         int          `json:"k"`
	T1        float64      `json:"t1"`
	T2        *float64     `json:"t2,omitempty"`
	Results   []resultJSON `json:"results"`
	LatencyNS int64        `json:"latency_ns"`
	IOs       uint64       `json:"ios"`
}

func (s *server) handleQuery(op engine.Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		k, err := intParam(r, "k", 10)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if k < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("k must be >= 1, got %d", k))
			return
		}
		// Clamp to the number of objects: a larger k cannot yield more
		// results, and an unbounded k would size the top-k heap from
		// attacker input.
		if m := s.db.NumSeries(); k > m {
			k = m
		}
		req := engine.Request{Op: op, K: k}
		if op == engine.OpInstant {
			t, err := floatParam(r, "t")
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			req.T1 = t
		} else {
			if req.T1, err = floatParam(r, "t1"); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if req.T2, err = floatParam(r, "t2"); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		}
		resp := s.exec.Do(r.Context(), req)
		if resp.Err != nil {
			writeError(w, http.StatusUnprocessableEntity, resp.Err)
			return
		}
		out := queryResponse{
			Method:    string(s.ix.Method()),
			K:         k,
			T1:        req.T1,
			Results:   make([]resultJSON, len(resp.Results)),
			LatencyNS: int64(resp.Latency),
			IOs:       resp.IOs,
		}
		if op != engine.OpInstant {
			t2 := req.T2
			out.T2 = &t2
		}
		for i, res := range resp.Results {
			out.Results[i] = resultJSON{ID: res.ID, Score: res.Score}
		}
		writeJSON(w, http.StatusOK, out)
	}
}

// appendRequest is the body of POST /append.
type appendRequest struct {
	ID int     `json:"id"`
	T  float64 `json:"t"`
	V  float64 `json:"v"`
}

func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req appendRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad append body: %w", err))
		return
	}
	if err := s.ix.Append(req.ID, req.T, req.V); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": req.ID, "t": req.T, "v": req.V, "status": "appended"})
}

// statsResponse is the body of /stats.
type statsResponse struct {
	Method        string  `json:"method"`
	Objects       int     `json:"objects"`
	Segments      int     `json:"segments"`
	DomainStart   float64 `json:"domain_start"`
	DomainEnd     float64 `json:"domain_end"`
	IndexPages    int     `json:"index_pages"`
	IndexBytes    int64   `json:"index_bytes"`
	BlockSize     int     `json:"block_size"`
	DeviceIOs     uint64  `json:"device_ios"`
	Workers       int     `json:"workers"`
	Queries       uint64  `json:"queries"`
	QueryErrors   uint64  `json:"query_errors"`
	BusyWorkers   int64   `json:"busy_workers"`
	QueryTimeNS   int64   `json:"query_time_ns"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	ist := s.ix.Stats()
	est := s.exec.Stats()
	writeJSON(w, http.StatusOK, statsResponse{
		Method:        ist.MethodName,
		Objects:       s.db.NumSeries(),
		Segments:      s.db.NumSegments(),
		DomainStart:   s.db.Start(),
		DomainEnd:     s.db.End(),
		IndexPages:    ist.Pages,
		IndexBytes:    ist.Bytes,
		BlockSize:     ist.BlockSize,
		DeviceIOs:     ist.DeviceIOs,
		Workers:       s.exec.Workers(),
		Queries:       est.Queries,
		QueryErrors:   est.Errors,
		BusyWorkers:   est.Busy,
		QueryTimeNS:   int64(est.TotalTime),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: %w", name, raw, err)
	}
	return v, nil
}

func floatParam(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %s", name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: %w", name, raw, err)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
