package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"temporalrank"
	"temporalrank/internal/engine"
)

// backend is the slice of cluster behavior the HTTP handlers need.
// Both *temporalrank.Cluster (local shards) and
// *temporalrank.RemoteCluster (-router mode) satisfy it, so every
// request flows through the same handler code regardless of where the
// shards live.
type backend interface {
	temporalrank.Querier
	Append(id int, t, v float64) error
	Score(id int, t1, t2 float64) (float64, error)
	NumSeries() int
}

// server is the HTTP front end over a backend — either a local
// Cluster (one or more shards, each an independent DB + indexes +
// Planner) or a RemoteCluster routing to shardserver replicas —
// executed through the concurrent query engine. A single-node
// deployment is simply the 1-shard cluster, so every request flows
// through the same Querier path regardless of -shards. It implements
// http.Handler, so tests mount it on httptest servers.
//
// /query is the primary endpoint: the caller states aggregate, k,
// interval and error tolerance; each shard's planner picks the
// cheapest index that satisfies them and the per-shard answers are
// merged deterministically. The older per-aggregate routes (/topk,
// /avg, /instant) delegate to the same code path with a fixed
// aggregate.
type server struct {
	backend backend
	// cluster is the local shard set; nil in -router mode, where
	// router carries the remote topology instead. Exactly one of the
	// two is non-nil.
	cluster *temporalrank.Cluster
	router  *temporalrank.RemoteCluster
	// primary is the first index of the first non-empty shard (nil when
	// the cluster runs brute-force): the structure /score reports and
	// the deprecated routes inherit their ε tolerance from. Shards are
	// built homogeneously, so it is representative of every shard.
	primary *temporalrank.Index
	exec    *engine.Executor
	mux     *http.ServeMux
	timeout time.Duration
	start   time.Time

	// snapDir, when set by enableCheckpoint, is the durable snapshot
	// directory POST /checkpoint and the shutdown path write to. snapMu
	// serializes checkpoints: the paged store is single-writer per
	// device, so a signal-triggered checkpoint must not interleave with
	// an endpoint-triggered one on the same files.
	snapDir string
	snapMu  sync.Mutex
}

func newServer(cluster *temporalrank.Cluster, workers int, timeout time.Duration) (*server, error) {
	s := newBaseServer(cluster, workers, timeout)
	s.cluster = cluster
	for _, p := range cluster.Planners() {
		if p == nil {
			continue
		}
		if ixs := p.Indexes(); len(ixs) > 0 {
			s.primary = ixs[0]
		}
		break
	}
	return s, nil
}

// newRouterServer fronts a RemoteCluster: same endpoints, but queries
// scatter to shardserver replicas instead of local planners. There is
// no local primary index (the structures live on the shard nodes), so
// /score reports the reference method and the deprecated routes carry
// no implied ε tolerance.
func newRouterServer(router *temporalrank.RemoteCluster, workers int, timeout time.Duration) (*server, error) {
	s := newBaseServer(router, workers, timeout)
	s.router = router
	return s, nil
}

func newBaseServer(b backend, workers int, timeout time.Duration) *server {
	s := &server{
		backend: b,
		exec:    engine.NewQuerier(b, workers),
		mux:     http.NewServeMux(),
		timeout: timeout,
		start:   time.Now(),
	}
	s.mux.HandleFunc("GET /query", s.handleQuery(""))
	s.mux.HandleFunc("GET /topk", s.handleQuery(temporalrank.AggSum))
	s.mux.HandleFunc("GET /avg", s.handleQuery(temporalrank.AggAvg))
	s.mux.HandleFunc("GET /instant", s.handleQuery(temporalrank.AggInstant))
	s.mux.HandleFunc("GET /score", s.handleScore)
	s.mux.HandleFunc("POST /append", s.handleAppend)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

// enableCheckpoint arms the durable-snapshot paths (POST /checkpoint
// and the shutdown checkpoint) with their target directory.
func (s *server) enableCheckpoint(dir string) { s.snapDir = dir }

// checkpointNow writes one snapshot generation for every shard,
// serialized against concurrent checkpoint requests. Queries keep
// running throughout (the checkpoint holds only shared locks); appends
// to a shard wait for that shard's write.
func (s *server) checkpointNow() (time.Duration, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()
	if err := s.cluster.Checkpoint(s.snapDir); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// handleCheckpoint serves POST /checkpoint: write a durable snapshot
// generation now. In -router mode the request fans out to every shard
// primary, which persists into its own -data directory; locally it
// writes to the -data directory (409 when the server runs without
// one).
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.router != nil {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		start := time.Now()
		if err := s.router.Checkpoint(ctx); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":     "checkpointed",
			"dir":        "remote",
			"elapsed_ns": int64(time.Since(start)),
		})
		return
	}
	if s.snapDir == "" {
		writeError(w, http.StatusConflict, fmt.Errorf("no snapshot directory configured (run with -data DIR)"))
		return
	}
	elapsed, err := s.checkpointNow()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "checkpointed",
		"dir":        s.snapDir,
		"elapsed_ns": int64(elapsed),
	})
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the worker pool (after the HTTP server has drained).
func (s *server) Close() { s.exec.Close() }

// queryCtx derives the per-request context, applying the server's
// timeout so slow scans cannot pin workers forever.
func (s *server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// resultJSON is one ranked object on the wire.
type resultJSON struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// queryResponse is the body of /query and the delegating routes. T2 is
// a pointer so instant queries omit it while an interval query's t2=0
// is still echoed.
type queryResponse struct {
	Agg       string       `json:"agg"`
	Method    string       `json:"method"`
	Exact     bool         `json:"exact"`
	Epsilon   float64      `json:"epsilon,omitempty"`
	K         int          `json:"k"`
	T1        float64      `json:"t1"`
	T2        *float64     `json:"t2,omitempty"`
	Results   []resultJSON `json:"results"`
	LatencyNS int64        `json:"latency_ns"`
	IOs       uint64       `json:"ios"`
}

// parseQuery assembles a temporalrank.Query from URL parameters. A
// fixed agg pins the aggregate (the deprecated routes, which also
// inherit the primary index's ε as their tolerance — preserving the
// pre-planner behavior where those routes answered through the
// server's own index, whatever its guarantee); otherwise the agg
// parameter chooses, defaulting to sum.
func (s *server) parseQuery(r *http.Request, fixed temporalrank.Agg) (temporalrank.Query, error) {
	q := temporalrank.Query{Agg: fixed}
	if q.Agg == "" {
		q.Agg = temporalrank.Agg(r.URL.Query().Get("agg"))
		if q.Agg == "" {
			q.Agg = temporalrank.AggSum
		}
	} else if s.primary != nil {
		q.MaxEpsilon = s.primary.Epsilon()
	}
	switch q.Agg {
	case temporalrank.AggSum, temporalrank.AggAvg, temporalrank.AggInstant:
	default:
		return q, fmt.Errorf("unknown agg %q (want sum, avg or instant)", q.Agg)
	}
	var err error
	if q.K, err = intParam(r, "k", 10); err != nil {
		return q, err
	}
	if q.K < 1 {
		return q, fmt.Errorf("k must be >= 1, got %d", q.K)
	}
	// Clamp to the number of objects: a larger k cannot yield more
	// results, and an unbounded k would size the top-k heap from
	// attacker input.
	if m := s.backend.NumSeries(); q.K > m {
		q.K = m
	}
	if q.Agg == temporalrank.AggInstant {
		// Accept t (documented) or t1 (the Query field carrying it).
		if r.URL.Query().Get("t") != "" {
			q.T1, err = floatParam(r, "t")
		} else {
			q.T1, err = floatParam(r, "t1")
		}
		if err != nil {
			return q, err
		}
	} else {
		if q.T1, err = floatParam(r, "t1"); err != nil {
			return q, err
		}
		if q.T2, err = floatParam(r, "t2"); err != nil {
			return q, err
		}
	}
	if raw := r.URL.Query().Get("eps"); raw != "" {
		if q.MaxEpsilon, err = strconv.ParseFloat(raw, 64); err != nil {
			return q, fmt.Errorf("bad eps=%q: %w", raw, err)
		}
	}
	if raw := r.URL.Query().Get("budget"); raw != "" {
		if q.MaxIOs, err = strconv.ParseUint(raw, 10, 64); err != nil {
			return q, fmt.Errorf("bad budget=%q: %w", raw, err)
		}
	}
	return q, nil
}

func (s *server) handleQuery(fixed temporalrank.Agg) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q, err := s.parseQuery(r, fixed)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		ans, err := s.exec.Run(ctx, q)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		out := queryResponse{
			Agg:       string(q.Agg),
			Method:    string(ans.Method),
			Exact:     ans.Exact,
			Epsilon:   ans.Epsilon,
			K:         q.K,
			T1:        q.T1,
			Results:   make([]resultJSON, len(ans.Results)),
			LatencyNS: int64(ans.Latency),
			IOs:       ans.IOs,
		}
		if q.Agg != temporalrank.AggInstant {
			t2 := q.T2
			out.T2 = &t2
		}
		for i, res := range ans.Results {
			out.Results[i] = resultJSON{ID: res.ID, Score: res.Score}
		}
		writeJSON(w, http.StatusOK, out)
	}
}

// scoreResponse is the body of /score.
type scoreResponse struct {
	ID     int     `json:"id"`
	T1     float64 `json:"t1"`
	T2     float64 `json:"t2"`
	Score  float64 `json:"score"`
	Method string  `json:"method"`
	Exact  bool    `json:"exact"`
}

// handleScore serves one object's σ(t1,t2) through the owning shard's
// primary index (or shard DB when index-less). An approximate index
// that has no estimate for the object answers 404 with code
// "not_materialized" — never a silent 0.
func (s *server) handleScore(w http.ResponseWriter, r *http.Request) {
	id, err := intParam(r, "id", -1)
	if err != nil || id < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing or bad id"))
		return
	}
	t1, err := floatParam(r, "t1")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	t2, err := floatParam(r, "t2")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	method := temporalrank.MethodReference
	if s.primary != nil {
		method = s.primary.Method()
	}
	score, err := s.backend.Score(id, t1, t2)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, scoreResponse{
		ID: id, T1: t1, T2: t2, Score: score,
		Method: string(method), Exact: !method.IsApprox(),
	})
}

// appendRequest is the body of POST /append.
type appendRequest struct {
	ID int     `json:"id"`
	T  float64 `json:"t"`
	V  float64 `json:"v"`
}

// handleAppend routes one segment to its owning shard, where
// Planner.Append advances the shard DB and every shard index in one
// consistent step — multi-index servers accept appends now (the old 409
// restriction existed because a single Index.Append would silently
// stale its siblings).
func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req appendRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad append body: %w", err))
		return
	}
	if err := s.backend.Append(req.ID, req.T, req.V); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": req.ID, "t": req.T, "v": req.V, "status": "appended"})
}

// indexStatsJSON is one index's entry in /stats. Shard identifies the
// partition the structure lives on (always 0 on single-node servers).
type indexStatsJSON struct {
	Shard      int     `json:"shard"`
	Method     string  `json:"method"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	KMax       int     `json:"kmax,omitempty"`
	IndexPages int     `json:"index_pages"`
	IndexBytes int64   `json:"index_bytes"`
	BlockSize  int     `json:"block_size"`
	DeviceIOs  uint64  `json:"device_ios"`
}

// shardStatsJSON is one shard's slice of the data.
type shardStatsJSON struct {
	Shard    int `json:"shard"`
	Objects  int `json:"objects"`
	Segments int `json:"segments"`
}

// resultCacheJSON is the /stats view of the versioned result cache
// (present only when the server runs with -result-cache > 0). Hits
// were answered from a stored result, misses executed the query, and
// coalesced requests joined another request's identical in-flight
// query. HitRatio is hits over all lookups.
type resultCacheJSON struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Coalesced uint64  `json:"coalesced"`
	HitRatio  float64 `json:"hit_ratio"`
}

// routerReplicaJSON and routerGroupJSON are the /stats view of the
// remote topology in -router mode: one entry per shard group with
// each replica's address and health state (live/syncing/down).
type routerReplicaJSON struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
}

type routerGroupJSON struct {
	Shard    int                 `json:"shard"`
	Replicas []routerReplicaJSON `json:"replicas"`
}

// statsResponse is the body of /stats. The top-level index fields
// mirror the primary index for pre-planner clients; the indexes array
// covers every structure on every shard, and the aggregate fields sum
// over them. In -router mode the index fields are absent (the
// structures live on the shard nodes) and router carries the replica
// topology instead.
type statsResponse struct {
	Method        string            `json:"method"`
	Router        []routerGroupJSON `json:"router,omitempty"`
	Shards        int               `json:"shards"`
	Objects       int               `json:"objects"`
	Segments      int               `json:"segments"`
	DomainStart   float64           `json:"domain_start"`
	DomainEnd     float64           `json:"domain_end"`
	PerShard      []shardStatsJSON  `json:"per_shard"`
	ResultCache   *resultCacheJSON  `json:"result_cache,omitempty"`
	Indexes       []indexStatsJSON  `json:"indexes"`
	IndexPages    int               `json:"index_pages"`
	IndexBytes    int64             `json:"index_bytes"`
	BlockSize     int               `json:"block_size"`
	DeviceIOs     uint64            `json:"device_ios"`
	Workers       int               `json:"workers"`
	Queries       uint64            `json:"queries"`
	QueryErrors   uint64            `json:"query_errors"`
	BusyWorkers   int64             `json:"busy_workers"`
	QueryTimeNS   int64             `json:"query_time_ns"`
	UptimeSeconds float64           `json:"uptime_seconds"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	est := s.exec.Stats()
	if s.router != nil {
		out := statsResponse{
			Method:        "REMOTE",
			Shards:        s.router.NumShards(),
			Objects:       s.router.NumSeries(),
			Workers:       s.exec.Workers(),
			Queries:       est.Queries,
			QueryErrors:   est.Errors,
			BusyWorkers:   est.Busy,
			QueryTimeNS:   int64(est.TotalTime),
			UptimeSeconds: time.Since(s.start).Seconds(),
		}
		for _, g := range s.router.Health() {
			rg := routerGroupJSON{Shard: g.Shard}
			for _, rep := range g.Replicas {
				rg.Replicas = append(rg.Replicas, routerReplicaJSON{Addr: rep.Addr, State: rep.State})
			}
			out.Router = append(out.Router, rg)
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	cst := s.cluster.Stats()
	out := statsResponse{
		Shards:        cst.Shards,
		Objects:       cst.Objects,
		Segments:      cst.Segments,
		DomainStart:   s.cluster.Start(),
		DomainEnd:     s.cluster.End(),
		Workers:       s.exec.Workers(),
		Queries:       est.Queries,
		QueryErrors:   est.Errors,
		BusyWorkers:   est.Busy,
		QueryTimeNS:   int64(est.TotalTime),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if cs, ok := s.cluster.CacheStats(); ok {
		out.ResultCache = &resultCacheJSON{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Coalesced: cs.Coalesced,
			HitRatio:  cs.HitRatio(),
		}
	}
	planners := s.cluster.Planners()
	for shard, sst := range cst.PerShard {
		out.PerShard = append(out.PerShard, shardStatsJSON{
			Shard: shard, Objects: sst.Objects, Segments: sst.Segments,
		})
		if planners[shard] == nil {
			continue
		}
		for _, ix := range planners[shard].Indexes() {
			ist := ix.Stats()
			out.Indexes = append(out.Indexes, indexStatsJSON{
				Shard:      shard,
				Method:     ist.MethodName,
				Epsilon:    ix.Epsilon(),
				KMax:       ix.KMax(),
				IndexPages: ist.Pages,
				IndexBytes: ist.Bytes,
				BlockSize:  ist.BlockSize,
				DeviceIOs:  ist.DeviceIOs,
			})
			if out.Method == "" {
				out.Method = ist.MethodName
				out.BlockSize = ist.BlockSize
			}
			out.IndexPages += ist.Pages
			out.IndexBytes += ist.Bytes
			out.DeviceIOs += ist.DeviceIOs
		}
	}
	if out.Method == "" {
		out.Method = string(temporalrank.MethodReference)
	}
	writeJSON(w, http.StatusOK, out)
}

// statusFor maps the package's typed errors onto HTTP statuses — the
// payoff of sentinel errors over string matching.
func statusFor(err error) int {
	switch {
	case errors.Is(err, temporalrank.ErrBadInterval):
		return http.StatusBadRequest
	case errors.Is(err, temporalrank.ErrUnknownSeries),
		errors.Is(err, temporalrank.ErrNotMaterialized):
		return http.StatusNotFound
	case errors.Is(err, temporalrank.ErrKTooLarge):
		return http.StatusUnprocessableEntity
	case errors.Is(err, temporalrank.ErrShardUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: %w", name, raw, err)
	}
	return v, nil
}

func floatParam(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %s", name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: %w", name, raw, err)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
