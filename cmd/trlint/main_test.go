package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCheckCleanRepo is the acceptance gate CI re-runs: the full suite
// over the whole module must report nothing.
func TestCheckCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	findings, err := Check("../..", []string{"./..."}, all)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestCheckCatchesInjected builds a scratch module carrying one
// deliberate violation per analyzer — a lock-order inversion, a
// hot-path allocation, a sentinel comparison, a dropped context — and
// proves the real loader-to-checker pipeline catches each, while the
// //trlint:ignore escape hatch still works.
func TestCheckCatchesInjected(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.24\n")
	write("scratch.go", `// Package scratch deliberately violates every trlint invariant.
package scratch

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

type Device interface {
	Read(id int, p []byte) error
	Write(id int, p []byte) error
	Alloc() (int, error)
	Free(id int) error
	Close() error
}

type pool struct {
	mu  sync.Mutex
	dev Device
}

func (p *pool) allocUnderLock() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dev.Alloc() // lockorder: alloc-path call under a lock
}

//tr:hotpath
func hotGrow(n int) []byte {
	return make([]byte, n) // hotalloc: unwaived allocation
}

//tr:hotpath
func hotWaived(n int) []byte {
	//tr:alloc-ok scratch for the test
	return make([]byte, n)
}

var ErrGone = errors.New("gone")

func isGone(err error) bool {
	return err == ErrGone // trerr: sentinel compared by value
}

func wrap(err error) error {
	return fmt.Errorf("wrap: %v", err) //trlint:ignore trerr exercising the suppression path
}

func deadline(ctx context.Context) error {
	sub := context.Background() // ctxflow: ctx in scope
	_ = sub
	return ctx.Err()
}
`)

	findings, err := Check(dir, []string{"./..."}, all)
	if err != nil {
		t.Fatal(err)
	}
	caught := make(map[string][]string)
	for _, f := range findings {
		caught[f.Analyzer] = append(caught[f.Analyzer], f.String())
	}
	for _, want := range []string{"lockorder", "trerr", "ctxflow", "hotalloc"} {
		if len(caught[want]) == 0 {
			t.Errorf("injected %s violation not caught; findings: %v", want, findings)
		}
	}
	// Exactly one finding per analyzer: hotWaived's //tr:alloc-ok and
	// wrap's //trlint:ignore each silenced their twin violation.
	for a, fs := range caught {
		if len(fs) != 1 {
			t.Errorf("%s: got %d findings, want 1: %v", a, len(fs), fs)
		}
	}
}
