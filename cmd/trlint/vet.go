package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"temporalrank/internal/analysis"
	"temporalrank/internal/analysis/checker"
	"temporalrank/internal/analysis/load"
)

// vetConfig is the JSON unit description the go command hands a
// vettool: one package's files plus the locations of its dependencies'
// export data.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one go vet unit: parse and type-check the files
// listed in the config (imports resolved through the export data the
// go command already built), run the analyzers, and report findings
// on stderr with a nonzero exit.
func vetUnit(cfgPath string, analyzers []*analysis.Analyzer, stderr *os.File) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "trlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "trlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The facts file must exist even though trlint exchanges no facts:
	// the go command caches it per unit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, "trlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(stderr, "trlint:", err)
			return typecheckFailure(cfg)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		fmt.Fprintln(stderr, "trlint:", err)
		return typecheckFailure(cfg)
	}
	unit := &load.Package{
		ImportPath: cfg.ImportPath,
		Name:       pkg.Name(),
		Dir:        cfg.Dir,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}
	findings, err := checker.Run([]*load.Package{unit}, fset, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "trlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func typecheckFailure(cfg vetConfig) int {
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	return 2
}
