// Command trlint is the engine's project-specific static analysis
// suite: a multichecker over the analyzers in internal/analysis/...
// that mechanically enforces the invariants the performance and
// correctness work of PRs 1-4 established by convention.
//
// Analyzers:
//
//	lockorder  blockio's shard-lock/device-call ordering rule
//	trerr      sentinel comparisons must use errors.Is; fmt.Errorf must %w errors
//	ctxflow    context.Background/TODO must not drop an in-scope caller context
//	hotalloc   //tr:hotpath functions must not allocate (waiver: //tr:alloc-ok)
//	pagecopy   //tr:hotpath functions must not copy pages where a View exists (waiver: //tr:pagecopy-ok)
//
// Standalone usage (what CI runs):
//
//	trlint ./...
//	trlint -hotalloc=false ./internal/blockio
//
// Any finding exits nonzero. A finding can be suppressed on its line
// (or the line above) with `//trlint:ignore <analyzer> <reason>`.
//
// The binary also speaks the go vet unit-checker protocol, so it
// works as a vettool:
//
//	go vet -vettool=$(which trlint) ./...
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"temporalrank/internal/analysis"
	"temporalrank/internal/analysis/checker"
	"temporalrank/internal/analysis/ctxflow"
	"temporalrank/internal/analysis/hotalloc"
	"temporalrank/internal/analysis/load"
	"temporalrank/internal/analysis/lockorder"
	"temporalrank/internal/analysis/pagecopy"
	trerrcheck "temporalrank/internal/analysis/trerr"
)

// all is the full analyzer suite, in reporting order.
var all = []*analysis.Analyzer{
	lockorder.Analyzer,
	trerrcheck.Analyzer,
	ctxflow.Analyzer,
	hotalloc.Analyzer,
	pagecopy.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("trlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	version := fs.String("V", "", "print version and exit (go vet tool protocol)")
	list := fs.Bool("list", false, "list analyzers and exit")
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = fs.Bool(a.Name, true, doc)
	}
	// go vet probes the tool's flags with a bare -flags argument and
	// expects a JSON description; trlint exposes none to the driver.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version != "" {
		// The go command caches vet results keyed by the tool's content,
		// so -V=full must end in a buildID derived from the binary; the
		// line's shape is the one cmd/go parses.
		if *version == "full" {
			fmt.Fprintf(stdout, "trlint version devel comments-go-here buildID=%s\n", selfContentID())
		} else {
			fmt.Fprintf(stdout, "trlint version devel\n")
		}
		return 0
	}
	if *list {
		for _, a := range all {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, doc)
		}
		return 0
	}
	var analyzers []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	// go vet invokes the tool with a single *.cfg argument describing
	// one package unit.
	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnit(rest[0], analyzers, stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Check(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "trlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, relativize(f))
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "trlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// Check loads patterns from dir and runs the analyzers — the
// programmatic entry point the tests drive.
func Check(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]checker.Finding, error) {
	loader := load.NewLoader(dir)
	units, err := loader.Load(patterns)
	if err != nil {
		return nil, err
	}
	return checker.Run(units, loader.Fset, analyzers)
}

// selfContentID hashes the running binary, giving the go command a
// cache key that changes whenever trlint is rebuilt with different
// code.
func selfContentID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%02x", h.Sum(nil))
}

// relativize shortens a finding's path to the working directory for
// readable output; the position is untouched on any error.
func relativize(f checker.Finding) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, f.Posn.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Posn.Filename = rel
		}
	}
	return f.String()
}
