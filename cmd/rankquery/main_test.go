package main

import (
	"os"
	"path/filepath"
	"testing"

	"temporalrank/internal/gen"
	"temporalrank/internal/tsio"
)

func writeFixture(t *testing.T, binary bool) string {
	t.Helper()
	ds, err := gen.Temp(gen.TempConfig{M: 15, Navg: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	name := "q.csv"
	if binary {
		name = "q.trk"
	}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if binary {
		err = tsio.WriteBinary(f, ds)
	} else {
		err = tsio.WriteCSV(f, ds)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunQueryCSV(t *testing.T) {
	path := writeFixture(t, false)
	for _, method := range []string{"EXACT1", "EXACT3", "APPX2"} {
		if err := run(path, false, method, 5, 50, 150, 30, 10, true); err != nil {
			t.Errorf("%s: %v", method, err)
		}
	}
}

func TestRunQueryBinaryDefaultInterval(t *testing.T) {
	path := writeFixture(t, true)
	// t2 <= t1 triggers the default-interval path.
	if err := run(path, true, "EXACT3", 3, 0, 0, 30, 10, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunQueryErrors(t *testing.T) {
	if err := run("", false, "EXACT3", 5, 0, 1, 30, 10, false); err == nil {
		t.Error("missing -data accepted")
	}
	if err := run("/nonexistent/file", false, "EXACT3", 5, 0, 1, 30, 10, false); err == nil {
		t.Error("missing file accepted")
	}
	path := writeFixture(t, false)
	if err := run(path, false, "NOPE", 5, 0, 1, 30, 10, false); err == nil {
		t.Error("unknown method accepted")
	}
	// CSV parsed as binary must fail on magic.
	if err := run(path, true, "EXACT3", 5, 0, 1, 30, 10, false); err == nil {
		t.Error("CSV parsed as binary accepted")
	}
}
