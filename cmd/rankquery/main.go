// Command rankquery loads a temporal dataset (CSV or TRK1 binary),
// builds one of the paper's indexes, and answers aggregate top-k
// queries: top-k(t1, t2, sum).
//
// Usage:
//
//	rankquery -data temp.csv -method EXACT3 -k 10 -t1 50 -t2 120
//	rankquery -data meme.trk -binary -method APPX2 -k 20 -t1 10 -t2 60 -r 300
//
// It prints the ranked objects with their aggregate scores and the
// query's IO count and latency.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"temporalrank"
	"temporalrank/internal/tsio"
)

func main() {
	var (
		data    = flag.String("data", "", "dataset path (required)")
		binary  = flag.Bool("binary", false, "dataset is TRK1 binary (default CSV)")
		method  = flag.String("method", "EXACT3", "index method (EXACT1/2/3, APPX1-B, APPX2-B, APPX1, APPX2, APPX2+)")
		k       = flag.Int("k", 10, "number of results")
		t1      = flag.Float64("t1", 0, "query interval start")
		t2      = flag.Float64("t2", 0, "query interval end")
		r       = flag.Int("r", 500, "breakpoint budget for approximate methods")
		kmax    = flag.Int("kmax", 200, "max k supported by approximate methods")
		verbose = flag.Bool("v", false, "print per-result exact scores for comparison")
	)
	flag.Parse()
	if err := run(*data, *binary, *method, *k, *t1, *t2, *r, *kmax, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "rankquery:", err)
		os.Exit(1)
	}
}

func run(data string, binary bool, method string, k int, t1, t2 float64, r, kmax int, verbose bool) error {
	if data == "" {
		return fmt.Errorf("-data is required")
	}
	f, err := os.Open(data)
	if err != nil {
		return err
	}
	defer f.Close()

	var db *temporalrank.DB
	if binary {
		ds, err := tsio.ReadBinary(f)
		if err != nil {
			return err
		}
		db = temporalrank.NewDBFromDataset(ds)
	} else {
		ds, err := tsio.ReadCSV(f)
		if err != nil {
			return err
		}
		db = temporalrank.NewDBFromDataset(ds)
	}
	fmt.Printf("loaded %d objects, %d segments, domain [%g, %g]\n",
		db.NumSeries(), db.NumSegments(), db.Start(), db.End())

	if t2 <= t1 {
		// Default to the middle 20% of the domain.
		span := db.End() - db.Start()
		t1 = db.Start() + span*0.4
		t2 = t1 + span*0.2
		fmt.Printf("no -t1/-t2 given; using [%g, %g]\n", t1, t2)
	}

	buildStart := time.Now()
	idx, err := db.BuildIndex(temporalrank.Options{
		Method:  temporalrank.Method(method),
		TargetR: r,
		KMax:    kmax,
	})
	if err != nil {
		return err
	}
	st := idx.Stats()
	fmt.Printf("built %s in %v: %d pages (%d bytes)\n",
		method, time.Since(buildStart).Round(time.Millisecond), st.Pages, st.Bytes)

	idx.ResetStats()
	queryStart := time.Now()
	results, err := idx.TopK(k, t1, t2)
	if err != nil {
		return err
	}
	elapsed := time.Since(queryStart)
	ios := idx.Stats().DeviceIOs

	fmt.Printf("\ntop-%d(%g, %g, sum) — %d IOs, %v\n", k, t1, t2, ios, elapsed)
	for rank, res := range results {
		line := fmt.Sprintf("%3d. object %-8d score %.4f", rank+1, res.ID, res.Score)
		if verbose {
			exact, err := db.Score(res.ID, t1, t2)
			if err == nil {
				line += fmt.Sprintf("   (exact %.4f)", exact)
			}
		}
		fmt.Println(line)
	}
	return nil
}
