package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"temporalrank"
	"temporalrank/internal/blockio"
	"temporalrank/internal/exp"
	"temporalrank/internal/gen"
)

// Pool benchmark shape, shared by measurePoolParallel and fillPool so
// the working set driven and the working set filled cannot diverge.
const (
	poolBlockSize = 128
	poolPages     = 2048
	poolReads     = 1_000_000
	poolTrials    = 5
)

// serveBenchConfig shapes the -serve-bench workload.
type serveBenchConfig struct {
	Concurrency int     // concurrent clients
	Queries     int     // total queries per run
	Distinct    int     // distinct query templates
	ZipfS       float64 // zipf skew (> 1); higher = more repetition
	CacheSize   int     // result cache entries for the cached run
}

// serveBenchRun is one configuration's measurement.
type serveBenchRun struct {
	Name          string  `json:"name"`
	Queries       int     `json:"queries"`
	Concurrency   int     `json:"concurrency"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	P50LatencyNS  int64   `json:"p50_latency_ns"`
	P99LatencyNS  int64   `json:"p99_latency_ns"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	Coalesced     uint64  `json:"coalesced"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

// poolBenchResult records the lock-striped buffer pool against the seed
// single-mutex design on the same concurrent read workload.
type poolBenchResult struct {
	Capacity         int     `json:"capacity_pages"`
	Readers          int     `json:"readers"`
	ReadsPerReader   int     `json:"reads_per_reader"`
	SeedOpsPerSec    float64 `json:"seed_ops_per_sec"`
	ShardedOpsPerSec float64 `json:"sharded_ops_per_sec"`
	Shards           int     `json:"shards"`
	Speedup          float64 `json:"speedup"`
}

// arenaHeapPoint is one sealed-index live-heap sample: how many heap
// objects the index retains after sealing, at one dataset scale.
type arenaHeapPoint struct {
	AvgSegments int   `json:"avg_segments"`
	HeapObjects int64 `json:"heap_objects"`
}

// serveBenchReport is BENCH_serve.json: the serving read-path
// trajectory artifact CI uploads per commit.
type serveBenchReport struct {
	GeneratedUnix int64            `json:"generated_unix"`
	GoMaxProcs    int              `json:"gomaxprocs"`
	NumCPU        int              `json:"num_cpu"`
	Objects       int              `json:"objects"`
	AvgSegments   int              `json:"avg_segments"`
	K             int              `json:"k"`
	Distinct      int              `json:"distinct_queries"`
	ZipfS         float64          `json:"zipf_s"`
	Runs          []serveBenchRun  `json:"runs"`
	BufferPool    poolBenchResult  `json:"buffer_pool"`
	ArenaHeap     []arenaHeapPoint `json:"arena_heap"`
}

// runServeBench replays a zipfian repeated-query workload (the shape a
// serving deployment sees: a hot head of popular queries and a long
// tail) against one Planner — uncached, cached, and over a sealed
// arena index — then benchmarks the buffer pool's parallel read path
// against the seed single-mutex design and samples the sealed index's
// live-heap footprint across dataset scales. Results land in path as
// JSON.
func runServeBench(path string, p exp.Params, cfg serveBenchConfig) error {
	if cfg.ZipfS <= 1 {
		return fmt.Errorf("-serve-zipf must be > 1 (rand.NewZipf's domain), got %g", cfg.ZipfS)
	}
	if cfg.Distinct < 1 {
		return fmt.Errorf("-serve-distinct must be >= 1, got %d", cfg.Distinct)
	}
	if cfg.Concurrency < 1 {
		return fmt.Errorf("-serve-concurrency must be >= 1, got %d", cfg.Concurrency)
	}
	if cfg.Queries < cfg.Concurrency {
		return fmt.Errorf("-serve-queries (%d) must be >= -serve-concurrency (%d)", cfg.Queries, cfg.Concurrency)
	}
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: p.M, Navg: p.Navg, Seed: p.Seed, Span: 1000})
	if err != nil {
		return err
	}
	db := temporalrank.NewDBFromDataset(ds)
	ix, err := db.BuildIndex(temporalrank.Options{
		Method:      temporalrank.MethodExact3,
		CacheBlocks: 1024,
	})
	if err != nil {
		return err
	}
	planner, err := temporalrank.NewPlanner(db, ix)
	if err != nil {
		return err
	}

	// Distinct query templates drawn zipfian: rank 0 dominates, exactly
	// the repetition profile a result cache exists for.
	rng := rand.New(rand.NewSource(p.Seed))
	span := db.Span()
	templates := make([]temporalrank.Query, cfg.Distinct)
	for i := range templates {
		t1 := db.Start() + rng.Float64()*span*(1-p.IntervalFrac)
		templates[i] = temporalrank.SumQuery(p.K, t1, t1+span*p.IntervalFrac)
	}

	report := serveBenchReport{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Objects:       p.M,
		AvgSegments:   p.Navg,
		K:             p.K,
		Distinct:      cfg.Distinct,
		ZipfS:         cfg.ZipfS,
	}
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			planner.EnableResultCache(cfg.CacheSize)
			name = "cached"
		} else {
			planner.EnableResultCache(0)
		}
		run, err := measureServe(planner, templates, name, cfg)
		if err != nil {
			return err
		}
		report.Runs = append(report.Runs, run)
	}
	// Arena run: the same uncached workload against the same method, but
	// with the index sealed into one contiguous slab — the pure
	// offset-arithmetic View path, no buffer pool or pinning in front.
	ixArena, err := db.BuildIndex(temporalrank.Options{
		Method:      temporalrank.MethodExact3,
		SealIndexes: true,
	})
	if err != nil {
		return err
	}
	plannerArena, err := temporalrank.NewPlanner(db, ixArena)
	if err != nil {
		return err
	}
	arenaRun, err := measureServe(plannerArena, templates, "arena", cfg)
	if err != nil {
		return err
	}
	report.Runs = append(report.Runs, arenaRun)
	report.ArenaHeap, err = measureArenaHeap(p.M, []int{p.Navg, p.Navg * 2, p.Navg * 4}, p.Seed)
	if err != nil {
		return err
	}
	// The pool comparison oversubscribes readers (2x the serve clients,
	// at least 16): the seed pool's weakness is lock contention, which
	// only materializes under thread pressure.
	poolReaders := 2 * cfg.Concurrency
	if poolReaders < 16 {
		poolReaders = 16
	}
	report.BufferPool = measurePoolParallel(poolReaders)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// warmServe drives single-threaded windows of the workload until it
// reaches steady state, so the first measured window can never include
// cold buffer-pool fills. Cached runs stabilize on the per-window cache
// hit ratio; uncached runs (no stats to watch) stabilize on per-window
// mean latency. A fixed iteration count can't do this: how many queries
// cold fills take depends on the dataset and cache sizes, which is
// exactly the run-to-run jitter this removes.
func warmServe(planner *temporalrank.Planner, templates []temporalrank.Query, zipfS float64) {
	const (
		window     = 64
		maxWindows = 50
		tolerance  = 0.01
	)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(templates)-1))
	var hits, misses uint64
	if st, ok := planner.CacheStats(); ok {
		hits, misses = st.Hits, st.Misses
	}
	prevRatio := -1.0
	prevLat := time.Duration(-1)
	for w := 0; w < maxWindows; w++ {
		t0 := time.Now()
		for i := 0; i < window; i++ {
			if _, err := planner.Run(ctx, templates[zipf.Uint64()]); err != nil {
				return
			}
		}
		lat := time.Since(t0) / window
		if st, ok := planner.CacheStats(); ok {
			dh, dm := st.Hits-hits, st.Misses-misses
			hits, misses = st.Hits, st.Misses
			ratio := 0.0
			if dh+dm > 0 {
				ratio = float64(dh) / float64(dh+dm)
			}
			if prevRatio >= 0 && math.Abs(ratio-prevRatio) < tolerance {
				return
			}
			prevRatio = ratio
			continue
		}
		if prevLat > 0 && lat > prevLat-prevLat/10 && lat < prevLat+prevLat/10 {
			return
		}
		prevLat = lat
	}
}

// measureServe drives cfg.Queries zipfian queries from cfg.Concurrency
// goroutines and summarizes throughput and tail latency. Cache counters
// are reported as measured-phase deltas, excluding warmup traffic.
func measureServe(planner *temporalrank.Planner, templates []temporalrank.Query, name string, cfg serveBenchConfig) (serveBenchRun, error) {
	warmServe(planner, templates, cfg.ZipfS)
	var h0, m0, c0 uint64
	if st, ok := planner.CacheStats(); ok {
		h0, m0, c0 = st.Hits, st.Misses, st.Coalesced
	}
	ctx := context.Background()
	perClient := cfg.Queries / cfg.Concurrency
	lat := make([][]time.Duration, cfg.Concurrency)
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Concurrency)
	start := time.Now()
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(templates)-1))
			mine := make([]time.Duration, perClient)
			for i := range mine {
				q := templates[zipf.Uint64()]
				t0 := time.Now()
				if _, err := planner.Run(ctx, q); err != nil {
					errs <- fmt.Errorf("serve bench %s: %w", name, err)
					return
				}
				mine[i] = time.Since(t0)
			}
			lat[c] = mine
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return serveBenchRun{}, err
	}
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	run := serveBenchRun{
		Name:        name,
		Queries:     len(all),
		Concurrency: cfg.Concurrency,
		OpsPerSec:   float64(len(all)) / elapsed.Seconds(),
	}
	if len(all) > 0 {
		run.P50LatencyNS = int64(all[len(all)/2])
		run.P99LatencyNS = int64(all[len(all)*99/100])
	}
	if st, ok := planner.CacheStats(); ok {
		run.CacheHits, run.CacheMisses, run.Coalesced = st.Hits-h0, st.Misses-m0, st.Coalesced-c0
		if total := run.CacheHits + run.CacheMisses; total > 0 {
			run.CacheHitRatio = float64(run.CacheHits) / float64(total)
		}
	}
	run.AllocsPerOp = measureAllocsPerOp(planner, templates[0])
	return run, nil
}

// measureAllocsPerOp reports heap allocations per repeated query — the
// "allocation diet" metric. Measured single-threaded over the hottest
// template so the Mallocs delta is attributable.
func measureAllocsPerOp(planner *temporalrank.Planner, q temporalrank.Query) float64 {
	const ops = 2000
	ctx := context.Background()
	// Warm pools and cache so steady state is measured.
	for i := 0; i < 50; i++ {
		if _, err := planner.Run(ctx, q); err != nil {
			return -1
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < ops; i++ {
		if _, err := planner.Run(ctx, q); err != nil {
			return -1
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / ops
}

// measureArenaHeap builds sealed EXACT3 indexes at growing dataset
// scales and records how many live heap objects each retains. A
// sealed index is one slab plus O(1) headers, so the retained object
// count must stay ~flat while the dataset — and the slab's bytes —
// grow 4x; the run fails otherwise, which is the bench's standing
// guard against the arena quietly re-fragmenting into per-page
// allocations.
func measureArenaHeap(m int, navgs []int, seed int64) ([]arenaHeapPoint, error) {
	points := make([]arenaHeapPoint, 0, len(navgs))
	var ms runtime.MemStats
	for _, navg := range navgs {
		ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: m, Navg: navg, Seed: seed, Span: 1000})
		if err != nil {
			return nil, err
		}
		db := temporalrank.NewDBFromDataset(ds)
		runtime.GC()
		runtime.ReadMemStats(&ms)
		before := int64(ms.HeapObjects)
		ix, err := db.BuildIndex(temporalrank.Options{
			Method:      temporalrank.MethodExact3,
			SealIndexes: true,
		})
		if err != nil {
			return nil, err
		}
		runtime.GC()
		runtime.ReadMemStats(&ms)
		points = append(points, arenaHeapPoint{AvgSegments: navg, HeapObjects: int64(ms.HeapObjects) - before})
		runtime.KeepAlive(ix)
	}
	lo, hi := points[0].HeapObjects, points[0].HeapObjects
	for _, pt := range points[1:] {
		lo, hi = min(lo, pt.HeapObjects), max(hi, pt.HeapObjects)
	}
	// Flatness: a 4x dataset may not cost more than 50% more retained
	// objects plus a fixed GC-noise allowance. Per-page retention would
	// blow through this immediately (thousands of pages per scale step).
	if lo < 0 {
		lo = 0
	}
	if hi > lo+lo/2+1024 {
		return nil, fmt.Errorf("sealed index heap objects not flat across dataset scales: %v", points)
	}
	return points, nil
}

// measurePoolParallel compares the sharded pool with the seed
// single-mutex LRU design on a concurrent fully-resident read workload
// (the same shape as BenchmarkBufferPoolParallel). Trials are
// interleaved so machine noise hits both designs, and each design
// reports its median trial.
func measurePoolParallel(readers int) poolBenchResult {
	if readers < 1 {
		readers = 1
	}
	// The striped pool's benefit is hardware parallelism; make sure the
	// scheduler can actually run the readers in parallel where the
	// hardware allows.
	prev := runtime.GOMAXPROCS(0)
	if readers > prev {
		runtime.GOMAXPROCS(readers)
		defer runtime.GOMAXPROCS(prev)
	}

	drive := func(read func(id blockio.PageID, buf []byte) error, ids []blockio.PageID) float64 {
		var wg sync.WaitGroup
		start := time.Now()
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				buf := make([]byte, poolBlockSize)
				x := seed*2862933555777941757 + 3037000493
				for i := 0; i < poolReads; i++ {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
					if err := read(ids[x%poolPages], buf); err != nil {
						panic(err)
					}
				}
			}(uint64(r) + 1)
		}
		wg.Wait()
		return float64(readers*poolReads) / time.Since(start).Seconds()
	}

	var seedOps, shardedOps []float64
	shards := 0
	for t := 0; t < poolTrials; t++ {
		seed := blockio.NewLegacyBufferPool(blockio.NewMemDevice(poolBlockSize), poolPages)
		seedOps = append(seedOps, drive(seed.Read, fillPool(seed.Alloc, seed.Write)))
		pool := blockio.NewBufferPool(blockio.NewMemDevice(poolBlockSize), poolPages)
		shards = pool.NumShards()
		shardedOps = append(shardedOps, drive(pool.Read, fillPool(pool.Alloc, pool.Write)))
	}
	sort.Float64s(seedOps)
	sort.Float64s(shardedOps)
	res := poolBenchResult{
		Capacity:         poolPages,
		Readers:          readers,
		ReadsPerReader:   poolReads,
		SeedOpsPerSec:    seedOps[poolTrials/2],
		ShardedOpsPerSec: shardedOps[poolTrials/2],
		Shards:           shards,
	}
	if res.SeedOpsPerSec > 0 {
		res.Speedup = res.ShardedOpsPerSec / res.SeedOpsPerSec
	}
	return res
}

// fillPool allocates and writes the benchmark working set.
func fillPool(alloc func() (blockio.PageID, error), write func(blockio.PageID, []byte) error) []blockio.PageID {
	ids := make([]blockio.PageID, poolPages)
	for i := range ids {
		id, err := alloc()
		if err != nil {
			panic(err)
		}
		ids[i] = id
		if err := write(id, []byte{byte(i)}); err != nil {
			panic(err)
		}
	}
	return ids
}
