package main

import (
	"testing"

	"temporalrank/internal/exp"
)

func tiny() exp.Params {
	p := exp.DefaultParams()
	p.M = 25
	p.Navg = 15
	p.KMax = 8
	p.K = 4
	p.R = 15
	p.NumQueries = 4
	return p
}

func TestRunSingleFigures(t *testing.T) {
	for _, fig := range []string{"12", "fig16", "updates", "ablations"} {
		if err := run(fig, tiny()); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("99", tiny()); err == nil {
		t.Error("unknown figure accepted")
	}
}
