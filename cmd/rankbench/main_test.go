package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"temporalrank/internal/exp"
)

func tiny() exp.Params {
	p := exp.DefaultParams()
	p.M = 25
	p.Navg = 15
	p.KMax = 8
	p.K = 4
	p.R = 15
	p.NumQueries = 4
	return p
}

func TestRunSingleFigures(t *testing.T) {
	for _, fig := range []string{"12", "fig16", "updates", "ablations"} {
		if err := run(fig, tiny()); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("99", tiny()); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunMixedBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_mixed.json")
	cfg := mixedBenchConfig{
		Concurrency: 2,
		Queries:     256,
		Distinct:    8,
		ZipfS:       1.2,
		CacheSize:   4,
		Flush:       64,
	}
	if err := runMixedBench(path, tiny(), cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report mixedBenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if report.ReadOnly.ReadOpsPerSec <= 0 || report.Mixed.ReadOpsPerSec <= 0 {
		t.Fatalf("degenerate read measurement: %+v", report)
	}
	if report.Mixed.Appends <= 0 {
		t.Fatalf("mixed phase recorded no appends: %+v", report.Mixed)
	}
	if report.Invalidation.ScopedHitRatio <= report.Invalidation.CoarseHitRatio {
		t.Fatalf("scoped hit ratio %.3f not better than coarse %.3f",
			report.Invalidation.ScopedHitRatio, report.Invalidation.CoarseHitRatio)
	}
}

func TestRunClusterBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	if err := runClusterBench(path, tiny()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report clusterBenchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("bad report JSON: %v", err)
	}
	if len(report.Runs) != 2 || report.Runs[0].Shards != 1 || report.Runs[1].Shards != 8 {
		t.Fatalf("report runs: %+v", report.Runs)
	}
	for _, r := range report.Runs {
		if r.OpsPerSec <= 0 || r.P50LatencyNS <= 0 {
			t.Fatalf("degenerate measurement: %+v", r)
		}
	}
}
