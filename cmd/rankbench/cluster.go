package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"temporalrank"
	"temporalrank/internal/exp"
	"temporalrank/internal/gen"
)

// clusterBenchRun is one shard count's measurement in BENCH_cluster.json.
type clusterBenchRun struct {
	Shards       int     `json:"shards"`
	Queries      int     `json:"queries"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	P50LatencyNS int64   `json:"p50_latency_ns"`
	BuildMS      int64   `json:"build_ms"`
}

// clusterBenchReport is the artifact the CI benchmark step uploads, so
// the scale-out perf trajectory is recorded per commit.
type clusterBenchReport struct {
	Objects     int               `json:"objects"`
	AvgSegments int               `json:"avg_segments"`
	K           int               `json:"k"`
	Method      string            `json:"method"`
	Runs        []clusterBenchRun `json:"runs"`
}

// runClusterBench measures the same top-k workload against a 1-shard
// and an 8-shard cluster (EXACT3 on every shard) and writes ops/sec and
// p50 latency per shard count to path as JSON.
func runClusterBench(path string, p exp.Params) error {
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: p.M, Navg: p.Navg, Seed: p.Seed, Span: 1000})
	if err != nil {
		return err
	}
	db := temporalrank.NewDBFromDataset(ds)
	report := clusterBenchReport{
		Objects:     p.M,
		AvgSegments: p.Navg,
		K:           p.K,
		Method:      string(temporalrank.MethodExact3),
	}
	for _, shards := range []int{1, 8} {
		buildStart := time.Now()
		c, err := temporalrank.NewClusterFromDB(db, temporalrank.ClusterOptions{
			Shards:  shards,
			Indexes: []temporalrank.Options{{Method: temporalrank.MethodExact3}},
		})
		if err != nil {
			return fmt.Errorf("cluster bench shards=%d: %w", shards, err)
		}
		buildMS := time.Since(buildStart).Milliseconds()
		run, err := measureCluster(c, shards, p)
		if err != nil {
			return err
		}
		run.BuildMS = buildMS
		report.Runs = append(report.Runs, run)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// measureCluster drives p.NumQueries random-interval top-k queries
// (after a small warmup) and summarizes throughput and p50 latency.
func measureCluster(c *temporalrank.Cluster, shards int, p exp.Params) (clusterBenchRun, error) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(p.Seed + int64(shards)))
	span := c.End() - c.Start()
	next := func() temporalrank.Query {
		t1 := c.Start() + rng.Float64()*span*(1-p.IntervalFrac)
		return temporalrank.SumQuery(p.K, t1, t1+span*p.IntervalFrac)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Run(ctx, next()); err != nil {
			return clusterBenchRun{}, fmt.Errorf("cluster bench warmup shards=%d: %w", shards, err)
		}
	}
	lat := make([]time.Duration, p.NumQueries)
	total := time.Duration(0)
	for i := range lat {
		q := next()
		start := time.Now()
		if _, err := c.Run(ctx, q); err != nil {
			return clusterBenchRun{}, fmt.Errorf("cluster bench shards=%d: %w", shards, err)
		}
		lat[i] = time.Since(start)
		total += lat[i]
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	return clusterBenchRun{
		Shards:       shards,
		Queries:      p.NumQueries,
		OpsPerSec:    float64(p.NumQueries) / total.Seconds(),
		P50LatencyNS: int64(lat[len(lat)/2]),
	}, nil
}
