package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"temporalrank"
	"temporalrank/internal/exp"
	"temporalrank/internal/gen"
)

// Topology for -dist-bench: small enough to boot in-process, big
// enough that every read crosses a socket and every group has a
// hedge target.
const (
	distShards   = 2
	distReplicas = 2
)

// distBenchConfig shapes the -dist-bench workload.
type distBenchConfig struct {
	Concurrency int // concurrent clients against the router
	Queries     int // total queries per run
}

// distBenchRun is one hedging configuration's measurement.
type distBenchRun struct {
	Name         string  `json:"name"`
	Queries      int     `json:"queries"`
	Concurrency  int     `json:"concurrency"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	P50LatencyNS int64   `json:"p50_latency_ns"`
	P99LatencyNS int64   `json:"p99_latency_ns"`
}

// distBenchReport is BENCH_dist.json: the distributed read-path
// artifact CI uploads per commit.
type distBenchReport struct {
	GeneratedUnix int64          `json:"generated_unix"`
	GoMaxProcs    int            `json:"gomaxprocs"`
	NumCPU        int            `json:"num_cpu"`
	Objects       int            `json:"objects"`
	AvgSegments   int            `json:"avg_segments"`
	K             int            `json:"k"`
	Shards        int            `json:"shards"`
	Replicas      int            `json:"replicas"`
	Runs          []distBenchRun `json:"runs"`
}

// runDistBench measures the distributed serving tier end to end: a
// shards×replicas tier of in-process shard nodes behind a
// RemoteCluster, driven over real TCP sockets, once with hedged reads
// disabled and once with the default hedge delay. Both runs use the
// same nodes, so the comparison isolates the hedging policy. On a
// healthy loopback tier the two should be close — hedging pays off
// under replica jitter, and this artifact records what it costs when
// nothing is wrong.
func runDistBench(path string, p exp.Params, cfg distBenchConfig) error {
	if cfg.Concurrency < 1 {
		return fmt.Errorf("-dist-concurrency must be >= 1, got %d", cfg.Concurrency)
	}
	if cfg.Queries < cfg.Concurrency {
		return fmt.Errorf("-dist-queries (%d) must be >= -dist-concurrency (%d)", cfg.Queries, cfg.Concurrency)
	}
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: p.M, Navg: p.Navg, Seed: p.Seed, Span: 1000})
	if err != nil {
		return err
	}
	cluster, err := temporalrank.NewClusterFromDB(temporalrank.NewDBFromDataset(ds), temporalrank.ClusterOptions{
		Shards:  distShards,
		Indexes: []temporalrank.Options{{Method: temporalrank.MethodExact3, CacheBlocks: 1024}},
	})
	if err != nil {
		return err
	}
	root, err := os.MkdirTemp("", "dist-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	master := filepath.Join(root, "master")
	if err := os.MkdirAll(master, 0o755); err != nil {
		return err
	}
	if err := cluster.Checkpoint(master); err != nil {
		return err
	}

	groups := make([][]string, distShards)
	for g := 0; g < distShards; g++ {
		name := fmt.Sprintf("shard-%04d.trsnap", g)
		blob, err := os.ReadFile(filepath.Join(master, name))
		if err != nil {
			return err
		}
		for r := 0; r < distReplicas; r++ {
			dir := filepath.Join(root, fmt.Sprintf("g%dr%d", g, r))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(dir, name), blob, 0o644); err != nil {
				return err
			}
			node, err := temporalrank.NewShardNode(dir)
			if err != nil {
				return err
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go node.Serve(ln)
			defer node.Close()
			groups[g] = append(groups[g], ln.Addr().String())
		}
	}

	// The same query templates for both runs; random but seeded.
	rng := rand.New(rand.NewSource(p.Seed))
	span := cluster.End() - cluster.Start()
	templates := make([]temporalrank.Query, 64)
	for i := range templates {
		t1 := cluster.Start() + rng.Float64()*span*(1-p.IntervalFrac)
		templates[i] = temporalrank.SumQuery(p.K, t1, t1+span*p.IntervalFrac)
	}

	report := distBenchReport{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Objects:       p.M,
		AvgSegments:   p.Navg,
		K:             p.K,
		Shards:        distShards,
		Replicas:      distReplicas,
	}
	for _, hedged := range []bool{false, true} {
		name, delay := "unhedged", time.Duration(-1)
		if hedged {
			name, delay = "hedged", 0 // 0 = the library default
		}
		rc, err := temporalrank.NewRemoteCluster(groups, temporalrank.RemoteClusterOptions{
			HedgeDelay:     delay,
			HealthInterval: -1,
		})
		if err != nil {
			return err
		}
		run, err := measureDist(rc, templates, name, cfg)
		rc.Close()
		if err != nil {
			return err
		}
		report.Runs = append(report.Runs, run)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// measureDist drives cfg.Queries round-robin template queries from
// cfg.Concurrency goroutines through the router and summarizes
// throughput and tail latency — the same shape as measureServe, but
// every query crosses sockets.
func measureDist(rc *temporalrank.RemoteCluster, templates []temporalrank.Query, name string, cfg distBenchConfig) (distBenchRun, error) {
	ctx := context.Background()
	perClient := cfg.Queries / cfg.Concurrency
	lat := make([][]time.Duration, cfg.Concurrency)
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Concurrency)
	start := time.Now()
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := make([]time.Duration, perClient)
			for i := range mine {
				q := templates[(c+i)%len(templates)]
				t0 := time.Now()
				if _, err := rc.Run(ctx, q); err != nil {
					errs <- fmt.Errorf("dist bench %s: %w", name, err)
					return
				}
				mine[i] = time.Since(t0)
			}
			lat[c] = mine
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return distBenchRun{}, err
	}
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	run := distBenchRun{
		Name:        name,
		Queries:     len(all),
		Concurrency: cfg.Concurrency,
		OpsPerSec:   float64(len(all)) / elapsed.Seconds(),
	}
	if len(all) > 0 {
		run.P50LatencyNS = int64(all[len(all)/2])
		run.P99LatencyNS = int64(all[len(all)*99/100])
	}
	return run, nil
}
