package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"temporalrank"
	"temporalrank/internal/exp"
	"temporalrank/internal/gen"
)

// restartMethods is the index set every restart measurement builds and
// restores: the strongest exact index plus an approximate one, the
// configuration a production rankserver would run.
var restartMethods = []temporalrank.Options{
	{Method: temporalrank.MethodExact3},
	{Method: temporalrank.MethodAppx2},
}

// restartRun is one dataset size's rebuild-vs-restore measurement.
type restartRun struct {
	Objects       int     `json:"objects"`
	AvgSegments   int     `json:"avg_segments"`
	Segments      int     `json:"segments"`
	BuildMS       float64 `json:"build_ms"`
	CheckpointMS  float64 `json:"checkpoint_ms"`
	RestoreMS     float64 `json:"restore_ms"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	Speedup       float64 `json:"speedup"` // build_ms / restore_ms
}

// restartReport is the BENCH_restart.json artifact: cold-start cost of
// rebuilding every index from the raw dataset versus restoring a
// checkpoint, across dataset sizes.
type restartReport struct {
	Methods []string     `json:"methods"`
	Shards  int          `json:"shards"`
	Runs    []restartRun `json:"runs"`
}

// runRestartBench measures, for each dataset size, (a) the time to
// build the cluster's indexes from the raw dataset — what every boot
// pays today — and (b) the time to restore the same state from a
// checkpoint, verifying the restored cluster answers a probe query
// identically before trusting the numbers.
func runRestartBench(path string, p exp.Params) error {
	sizes := []struct{ m, navg int }{
		{p.M / 4, p.Navg},
		{p.M, p.Navg},
		{p.M * 4, p.Navg},
	}
	report := restartReport{Shards: 1}
	for _, o := range restartMethods {
		report.Methods = append(report.Methods, string(o.Method))
	}
	dir, err := os.MkdirTemp("", "rankbench-restart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	for i, sz := range sizes {
		ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: sz.m, Navg: sz.navg, Seed: p.Seed, Span: 1000})
		if err != nil {
			return err
		}
		db := temporalrank.NewDBFromDataset(ds)

		buildStart := time.Now()
		c, err := temporalrank.NewClusterFromDB(db, temporalrank.ClusterOptions{
			Shards:  1,
			Indexes: restartMethods,
		})
		if err != nil {
			return fmt.Errorf("restart bench build m=%d: %w", sz.m, err)
		}
		buildMS := float64(time.Since(buildStart)) / float64(time.Millisecond)

		snapDir := filepath.Join(dir, fmt.Sprintf("size-%d", i))
		ckStart := time.Now()
		if err := c.Checkpoint(snapDir); err != nil {
			return fmt.Errorf("restart bench checkpoint m=%d: %w", sz.m, err)
		}
		ckMS := float64(time.Since(ckStart)) / float64(time.Millisecond)
		bytes, err := dirBytes(snapDir)
		if err != nil {
			return err
		}

		restoreStart := time.Now()
		restored, err := temporalrank.OpenClusterSnapshot(snapDir, temporalrank.ClusterOptions{})
		if err != nil {
			return fmt.Errorf("restart bench restore m=%d: %w", sz.m, err)
		}
		restoreMS := float64(time.Since(restoreStart)) / float64(time.Millisecond)

		if err := compareClusters(c, restored, p.Seed); err != nil {
			return fmt.Errorf("restart bench m=%d: %w", sz.m, err)
		}

		run := restartRun{
			Objects:       sz.m,
			AvgSegments:   sz.navg,
			Segments:      db.NumSegments(),
			BuildMS:       buildMS,
			CheckpointMS:  ckMS,
			RestoreMS:     restoreMS,
			SnapshotBytes: bytes,
			Speedup:       buildMS / restoreMS,
		}
		report.Runs = append(report.Runs, run)
		fmt.Printf("restart m=%d navg=%d: build %.1fms, checkpoint %.1fms, restore %.1fms (%.0fx)\n",
			sz.m, sz.navg, buildMS, ckMS, restoreMS, run.Speedup)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dirBytes sums the sizes of the snapshot files under dir.
func dirBytes(dir string) (int64, error) {
	matches, err := filepath.Glob(filepath.Join(dir, temporalrank.SnapshotFilePattern))
	if err != nil {
		return 0, err
	}
	var total int64
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}

// smokeQueries derives a deterministic probe workload from a cluster's
// time domain: a handful of sum/avg/instant queries spread across it.
func smokeQueries(start, end float64, k int, seed int64) []temporalrank.Query {
	rng := rand.New(rand.NewSource(seed))
	span := end - start
	qs := []temporalrank.Query{
		temporalrank.SumQuery(k, start, end),
		temporalrank.AvgQuery(k, start, end),
		temporalrank.InstantQuery(k, start+span/2),
	}
	for i := 0; i < 5; i++ {
		t1 := start + rng.Float64()*span*0.7
		t2 := t1 + rng.Float64()*span*0.3
		qs = append(qs, temporalrank.SumQuery(k, t1, t2), temporalrank.AvgQuery(k, t1, t2))
	}
	return qs
}

// compareClusters requires the two clusters to answer the probe
// workload identically, bit for bit — restore replays saved state, it
// does not recompute, so even float scores must match exactly.
func compareClusters(want, got *temporalrank.Cluster, seed int64) error {
	ctx := context.Background()
	for _, q := range smokeQueries(want.Start(), want.End(), 10, seed) {
		a, err := want.Run(ctx, q)
		if err != nil {
			return fmt.Errorf("probe on original: %w", err)
		}
		b, err := got.Run(ctx, q)
		if err != nil {
			return fmt.Errorf("probe on restored: %w", err)
		}
		if err := sameAnswer(a.Results, b.Results); err != nil {
			return fmt.Errorf("restored cluster diverges on %+v: %w", q, err)
		}
	}
	return nil
}

func sameAnswer(want, got []temporalrank.Result) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d vs %d results", len(want), len(got))
	}
	for i := range want {
		if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
			return fmt.Errorf("rank %d: want %d/%v, got %d/%v",
				i, want[i].ID, want[i].Score, got[i].ID, got[i].Score)
		}
	}
	return nil
}

// smokeAnswer is one probe query and its expected ranking, recorded by
// -snapshot-write and re-checked by -snapshot-check in a fresh process.
type smokeAnswer struct {
	Agg    string   `json:"agg"`
	K      int      `json:"k"`
	T1     float64  `json:"t1"`
	T2     float64  `json:"t2"`
	IDs    []int    `json:"ids"`
	Scores []uint64 `json:"scores"` // math.Float64bits, so JSON cannot blur equality
}

// smokeManifest is the expected.json sidecar -snapshot-write leaves
// next to the shard files.
type smokeManifest struct {
	Shards  int           `json:"shards"`
	Answers []smokeAnswer `json:"answers"`
}

const smokeManifestName = "expected.json"

// runSnapshotWrite builds a small deterministic cluster, checkpoints it
// into dir, and records the answers to a probe workload so a separate
// process (-snapshot-check) can verify the restore end to end.
func runSnapshotWrite(dir string, p exp.Params) error {
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: p.M, Navg: p.Navg, Seed: p.Seed, Span: 1000})
	if err != nil {
		return err
	}
	c, err := temporalrank.NewClusterFromDB(temporalrank.NewDBFromDataset(ds), temporalrank.ClusterOptions{
		Shards:  2,
		Indexes: restartMethods,
	})
	if err != nil {
		return err
	}
	if err := c.Checkpoint(dir); err != nil {
		return err
	}
	man := smokeManifest{Shards: c.NumShards()}
	ctx := context.Background()
	for _, q := range smokeQueries(c.Start(), c.End(), p.K, p.Seed) {
		ans, err := c.Run(ctx, q)
		if err != nil {
			return err
		}
		sa := smokeAnswer{Agg: string(q.Agg), K: q.K, T1: q.T1, T2: q.T2}
		for _, r := range ans.Results {
			sa.IDs = append(sa.IDs, r.ID)
			sa.Scores = append(sa.Scores, math.Float64bits(r.Score))
		}
		man.Answers = append(man.Answers, sa)
	}
	f, err := os.Create(filepath.Join(dir, smokeManifestName))
	if err != nil {
		return err
	}
	if err := json.NewEncoder(f).Encode(man); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("snapshot written to %s (%d shards, %d probe answers recorded)\n",
		dir, man.Shards, len(man.Answers))
	return nil
}

// runSnapshotCheck restores the cluster written by -snapshot-write in
// this (fresh) process and requires every recorded probe answer to
// match bit for bit. Nonzero exit on any divergence.
func runSnapshotCheck(dir string, p exp.Params) error {
	f, err := os.Open(filepath.Join(dir, smokeManifestName))
	if err != nil {
		return err
	}
	var man smokeManifest
	err = json.NewDecoder(f).Decode(&man)
	f.Close()
	if err != nil {
		return err
	}
	restoreStart := time.Now()
	c, err := temporalrank.OpenClusterSnapshot(dir, temporalrank.ClusterOptions{})
	if err != nil {
		return err
	}
	restoreMS := float64(time.Since(restoreStart)) / float64(time.Millisecond)
	if c.NumShards() != man.Shards {
		return fmt.Errorf("restored %d shards, want %d", c.NumShards(), man.Shards)
	}
	ctx := context.Background()
	for _, sa := range man.Answers {
		q := temporalrank.Query{Agg: temporalrank.Agg(sa.Agg), K: sa.K, T1: sa.T1, T2: sa.T2}
		ans, err := c.Run(ctx, q)
		if err != nil {
			return fmt.Errorf("probe %+v: %w", q, err)
		}
		if len(ans.Results) != len(sa.IDs) {
			return fmt.Errorf("probe %+v: %d results, want %d", q, len(ans.Results), len(sa.IDs))
		}
		for i, r := range ans.Results {
			if r.ID != sa.IDs[i] || math.Float64bits(r.Score) != sa.Scores[i] {
				return fmt.Errorf("probe %+v rank %d: got %d/%v, want %d/%v",
					q, i, r.ID, r.Score, sa.IDs[i], math.Float64frombits(sa.Scores[i]))
			}
		}
	}
	fmt.Printf("snapshot check ok: %d shards restored in %.1fms, %d probe answers match\n",
		man.Shards, restoreMS, len(man.Answers))
	return nil
}
