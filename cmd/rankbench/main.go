// Command rankbench regenerates the paper's evaluation tables and
// figures (Figures 11–20 of "Ranking Large Temporal Data", VLDB 2012)
// on synthetic Temp/Meme workloads.
//
// Usage:
//
//	rankbench -fig 12                 # one figure at defaults
//	rankbench -fig all -m 2000        # the whole evaluation, bigger data
//	rankbench -fig updates -queries 20
//	rankbench -cluster-bench BENCH_cluster.json   # 1- vs 8-shard scatter-gather
//	rankbench -serve-bench BENCH_serve.json -serve-concurrency 8
//	rankbench -restart-bench BENCH_restart.json   # rebuild vs snapshot restore
//	rankbench -mixed-bench BENCH_mixed.json       # reads racing a frontier writer
//	rankbench -snapshot-write snapdir/ && rankbench -snapshot-check snapdir/
//
// Figures: 11 12 13 14 15 16 17 18 19 20 updates ablations all
//
// -cluster-bench skips the figures and instead measures the sharded
// Cluster query path (ops/sec and p50 latency at 1 and 8 shards),
// writing the JSON report CI uploads as a perf-trajectory artifact.
//
// -serve-bench measures the serving read path instead: a zipfian
// repeated-query workload at -serve-concurrency clients through a
// Planner, uncached versus result-cached (ops/sec, p50/p99 latency,
// cache hit ratio), plus the lock-striped buffer pool against the seed
// single-mutex pool on a concurrent read workload. The report is the
// BENCH_serve.json trajectory artifact.
//
// -mixed-bench measures the write-optimized ingest path: the same
// zipfian read workload first alone, then racing a sustained frontier
// writer whose appends land in the memtable delta layer and drain
// through background compactions (read p99 must stay close to the
// read-only p99 — readers never block on ingest), plus a scoped-vs-
// coarse cache-invalidation A/B under a hot writer. The report is the
// BENCH_mixed.json trajectory artifact.
//
// -restart-bench measures cold-start cost across dataset sizes:
// building every index from the raw dataset versus restoring the same
// state from a durable snapshot (restore replays saved pages, it never
// rebuilds). The report is the BENCH_restart.json trajectory artifact.
// -snapshot-write / -snapshot-check are the CI restart smoke: the
// write half checkpoints a deterministic cluster and records probe
// answers; the check half restores it in a fresh process and verifies
// every answer bit for bit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"temporalrank/internal/exp"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to reproduce: 11..20, updates, ablations, or all")
		dataset   = flag.String("dataset", "temp", "dataset: temp, meme, or walk")
		m         = flag.Int("m", 0, "number of objects (0 = default)")
		navg      = flag.Int("navg", 0, "average segments per object (0 = default)")
		r         = flag.Int("r", 0, "breakpoint budget (0 = default)")
		k         = flag.Int("k", 0, "query k (0 = default)")
		kmax      = flag.Int("kmax", 0, "max k for approximate indexes (0 = default)")
		queries   = flag.Int("queries", 0, "queries per measurement (0 = default)")
		seed      = flag.Int64("seed", 0, "RNG seed (0 = default)")
		frac      = flag.Float64("frac", 0, "query interval as fraction of T (0 = default)")
		blockSize = flag.Int("block", 0, "device block size in bytes (0 = 4096)")
		cbench    = flag.String("cluster-bench", "", "write the 1- vs 8-shard cluster benchmark to this JSON file instead of running figures")
		sbench    = flag.String("serve-bench", "", "write the serving read-path benchmark (zipfian repeated queries, cached vs uncached, buffer pool) to this JSON file instead of running figures")
		sconc     = flag.Int("serve-concurrency", 8, "concurrent clients for -serve-bench")
		squeries  = flag.Int("serve-queries", 4000, "total queries per -serve-bench run")
		sdistinct = flag.Int("serve-distinct", 64, "distinct query templates for -serve-bench")
		szipf     = flag.Float64("serve-zipf", 1.2, "zipf skew for -serve-bench query repetition (> 1)")
		scache    = flag.Int("serve-cache", 256, "result cache entries for the cached -serve-bench run")
		mbench    = flag.String("mixed-bench", "", "write the mixed read/write ingest benchmark (memtable delta layer + scoped invalidation) to this JSON file instead of running figures")
		mconc     = flag.Int("mixed-concurrency", 8, "concurrent readers for -mixed-bench")
		mqueries  = flag.Int("mixed-queries", 4000, "queries per measured phase for -mixed-bench")
		mdistinct = flag.Int("mixed-distinct", 64, "distinct query templates for -mixed-bench")
		mzipf     = flag.Float64("mixed-zipf", 1.2, "zipf skew for -mixed-bench query repetition (> 1)")
		mcache    = flag.Int("mixed-cache", 32, "result cache entries for -mixed-bench (kept below -mixed-distinct so the measured tail includes the miss path)")
		mflush    = flag.Int("mixed-flush", 4096, "memtable flush threshold in segments for -mixed-bench (0 = default)")
		rstBench  = flag.String("restart-bench", "", "write the rebuild-vs-restore cold-start benchmark (across dataset sizes) to this JSON file instead of running figures")
		dbench    = flag.String("dist-bench", "", "write the distributed serving benchmark (2x2 shardserver tier behind a RemoteCluster, hedged vs unhedged reads) to this JSON file instead of running figures")
		dconc     = flag.Int("dist-concurrency", 8, "concurrent clients for -dist-bench")
		dqueries  = flag.Int("dist-queries", 2000, "total queries per -dist-bench run")
		snapWrite = flag.String("snapshot-write", "", "build a small deterministic cluster, checkpoint it into this directory, and record probe answers (CI restart smoke, write half)")
		snapCheck = flag.String("snapshot-check", "", "restore the cluster written by -snapshot-write from this directory in a fresh process and verify every recorded probe answer (CI restart smoke, check half)")
	)
	flag.Parse()

	p := exp.DefaultParams()
	p.Dataset = *dataset
	if *m > 0 {
		p.M = *m
	}
	if *navg > 0 {
		p.Navg = *navg
	}
	if *r > 0 {
		p.R = *r
	}
	if *k > 0 {
		p.K = *k
	}
	if *kmax > 0 {
		p.KMax = *kmax
	}
	if *queries > 0 {
		p.NumQueries = *queries
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *frac > 0 {
		p.IntervalFrac = *frac
	}
	if *blockSize > 0 {
		p.BlockSize = *blockSize
	}

	if *mbench != "" {
		cfg := mixedBenchConfig{
			Concurrency: *mconc,
			Queries:     *mqueries,
			Distinct:    *mdistinct,
			ZipfS:       *mzipf,
			CacheSize:   *mcache,
			Flush:       *mflush,
		}
		if err := runMixedBench(*mbench, p, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "rankbench:", err)
			os.Exit(1)
		}
		return
	}
	if *rstBench != "" {
		if err := runRestartBench(*rstBench, p); err != nil {
			fmt.Fprintln(os.Stderr, "rankbench:", err)
			os.Exit(1)
		}
		return
	}
	if *snapWrite != "" {
		if err := runSnapshotWrite(*snapWrite, p); err != nil {
			fmt.Fprintln(os.Stderr, "rankbench:", err)
			os.Exit(1)
		}
		return
	}
	if *snapCheck != "" {
		if err := runSnapshotCheck(*snapCheck, p); err != nil {
			fmt.Fprintln(os.Stderr, "rankbench:", err)
			os.Exit(1)
		}
		return
	}
	if *dbench != "" {
		cfg := distBenchConfig{Concurrency: *dconc, Queries: *dqueries}
		if err := runDistBench(*dbench, p, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "rankbench:", err)
			os.Exit(1)
		}
		return
	}
	if *cbench != "" {
		if err := runClusterBench(*cbench, p); err != nil {
			fmt.Fprintln(os.Stderr, "rankbench:", err)
			os.Exit(1)
		}
		return
	}
	if *sbench != "" {
		cfg := serveBenchConfig{
			Concurrency: *sconc,
			Queries:     *squeries,
			Distinct:    *sdistinct,
			ZipfS:       *szipf,
			CacheSize:   *scache,
		}
		if err := runServeBench(*sbench, p, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "rankbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*fig, p); err != nil {
		fmt.Fprintln(os.Stderr, "rankbench:", err)
		os.Exit(1)
	}
}

func run(fig string, p exp.Params) error {
	w := os.Stdout
	rSweep := exp.DefaultRSweep(p.R)
	mSweep := []int{p.M / 2, p.M, p.M * 2}
	navgSweep := []int{p.Navg / 2, p.Navg, p.Navg * 2}
	fracs := []float64{0.02, 0.10, 0.20, 0.30, 0.50}
	ks := []int{p.K / 2, p.K, p.KMax / 2, p.KMax}
	kmaxes := []int{p.KMax / 2, p.KMax, p.KMax * 2}

	dispatch := map[string]func() error{
		"11": func() error { _, err := exp.Fig11(w, p, rSweep); return err },
		"12": func() error { _, err := exp.Fig12(w, p, rSweep); return err },
		"13": func() error { _, err := exp.Fig13(w, p, mSweep); return err },
		"14": func() error { _, err := exp.Fig14(w, p, navgSweep); return err },
		"15": func() error { _, err := exp.Fig15(w, p, mSweep, navgSweep); return err },
		"16": func() error { _, err := exp.Fig16(w, p, fracs); return err },
		"17": func() error { _, err := exp.Fig17(w, p, ks); return err },
		"18": func() error { _, err := exp.Fig18(w, p, kmaxes); return err },
		"19": func() error { _, err := exp.Fig19(w, p); return err },
		"20": func() error { _, err := exp.Fig20(w, p); return err },
		"updates": func() error {
			_, err := exp.Updates(w, p, 200)
			return err
		},
		"ablations": func() error { _, err := exp.Ablations(w, p); return err },
	}

	if fig == "all" {
		order := []string{"11", "12", "13", "14", "15", "16", "17", "18", "19", "20", "updates", "ablations"}
		for _, f := range order {
			if err := dispatch[f](); err != nil {
				return fmt.Errorf("fig %s: %w", f, err)
			}
		}
		return nil
	}
	f, ok := dispatch[strings.TrimPrefix(fig, "fig")]
	if !ok {
		return fmt.Errorf("unknown figure %q (want 11..20, updates, ablations, all)", fig)
	}
	return f()
}
