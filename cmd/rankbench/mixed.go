package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"temporalrank"
	"temporalrank/internal/exp"
	"temporalrank/internal/gen"
)

// mixedBenchConfig shapes the -mixed-bench workload.
type mixedBenchConfig struct {
	Concurrency int     // concurrent reader clients
	Queries     int     // total queries per measured phase
	Distinct    int     // distinct query templates
	ZipfS       float64 // zipf skew (> 1)
	CacheSize   int     // result cache entries
	Flush       int     // memtable flush threshold in segments
}

// mixedBenchPhase is one measured phase: reads only, or reads racing a
// sustained frontier writer with background compaction.
type mixedBenchPhase struct {
	Name           string  `json:"name"`
	Queries        int     `json:"queries"`
	Concurrency    int     `json:"concurrency"`
	ReadOpsPerSec  float64 `json:"read_ops_per_sec"`
	P50LatencyNS   int64   `json:"p50_latency_ns"`
	P99LatencyNS   int64   `json:"p99_latency_ns"`
	Appends        int64   `json:"appends"`
	WriteOpsPerSec float64 `json:"write_ops_per_sec"`
	Compactions    uint64  `json:"compactions"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
}

// mixedInvalidationResult is the scoped-vs-coarse cache A/B: the same
// frontier-writer workload under (series, time-range)-scoped
// invalidation and under the global version-nuke baseline.
type mixedInvalidationResult struct {
	Appends          int     `json:"appends"`
	QueriesPerAppend int     `json:"queries_per_append"`
	ScopedHitRatio   float64 `json:"scoped_hit_ratio"`
	CoarseHitRatio   float64 `json:"coarse_hit_ratio"`
}

// mixedBenchReport is BENCH_mixed.json: the write-path trajectory
// artifact CI uploads per commit. The two headline numbers are
// P99Ratio (mixed-phase read p99 over read-only read p99 — readers are
// never blocked by ingest or compaction, so it must stay small) and
// the scoped-vs-coarse hit ratios (frontier writes must not evict
// answers about the past).
type mixedBenchReport struct {
	GeneratedUnix int64                   `json:"generated_unix"`
	GoMaxProcs    int                     `json:"gomaxprocs"`
	NumCPU        int                     `json:"num_cpu"`
	Objects       int                     `json:"objects"`
	AvgSegments   int                     `json:"avg_segments"`
	K             int                     `json:"k"`
	Distinct      int                     `json:"distinct_queries"`
	ZipfS         float64                 `json:"zipf_s"`
	FlushSegments int                     `json:"flush_segments"`
	ReadOnly      mixedBenchPhase         `json:"read_only"`
	Mixed         mixedBenchPhase         `json:"mixed"`
	P99Ratio      float64                 `json:"p99_read_latency_ratio"`
	Invalidation  mixedInvalidationResult `json:"invalidation"`
}

// runMixedBench measures the write-optimized ingest path: a zipfian
// read workload over past windows, first alone, then racing a sustained
// frontier writer whose appends land in the memtable and drain through
// background compactions. A final A/B reruns a hot-writer workload with
// scoped versus coarse cache invalidation. Results land in path as
// JSON.
func runMixedBench(path string, p exp.Params, cfg mixedBenchConfig) error {
	if cfg.ZipfS <= 1 {
		return fmt.Errorf("-mixed-zipf must be > 1 (rand.NewZipf's domain), got %g", cfg.ZipfS)
	}
	if cfg.Distinct < 1 {
		return fmt.Errorf("-mixed-distinct must be >= 1, got %d", cfg.Distinct)
	}
	if cfg.Concurrency < 1 {
		return fmt.Errorf("-mixed-concurrency must be >= 1, got %d", cfg.Concurrency)
	}
	if cfg.Queries < cfg.Concurrency {
		return fmt.Errorf("-mixed-queries (%d) must be >= -mixed-concurrency (%d)", cfg.Queries, cfg.Concurrency)
	}
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: p.M, Navg: p.Navg, Seed: p.Seed, Span: 1000})
	if err != nil {
		return err
	}
	db := temporalrank.NewDBFromDataset(ds)
	ix, err := db.BuildIndex(temporalrank.Options{
		Method:      temporalrank.MethodExact3,
		CacheBlocks: 1024,
	})
	if err != nil {
		return err
	}
	planner, err := temporalrank.NewPlanner(db, ix)
	if err != nil {
		return err
	}
	planner.EnableResultCache(cfg.CacheSize)
	if err := planner.EnableMemtable(temporalrank.MemtableOptions{FlushSegments: cfg.Flush}); err != nil {
		return err
	}

	// Query templates confined to the historical 80% of the span: the
	// writer appends strictly past the frontier, so scoped invalidation
	// keeps these answers hot while a coarse policy would nuke them.
	rng := rand.New(rand.NewSource(p.Seed))
	span := db.Span()
	templates := make([]temporalrank.Query, cfg.Distinct)
	for i := range templates {
		t1 := db.Start() + rng.Float64()*span*(0.8-p.IntervalFrac)
		templates[i] = temporalrank.SumQuery(p.K, t1, t1+span*p.IntervalFrac)
	}

	report := mixedBenchReport{
		GeneratedUnix: time.Now().Unix(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Objects:       p.M,
		AvgSegments:   p.Navg,
		K:             p.K,
		Distinct:      cfg.Distinct,
		ZipfS:         cfg.ZipfS,
		FlushSegments: cfg.Flush,
	}

	report.ReadOnly, err = measureMixedPhase(planner, templates, "read_only", cfg, false, db.End())
	if err != nil {
		return err
	}
	report.Mixed, err = measureMixedPhase(planner, templates, "mixed", cfg, true, db.End())
	if err != nil {
		return err
	}
	if report.ReadOnly.P99LatencyNS > 0 {
		report.P99Ratio = float64(report.Mixed.P99LatencyNS) / float64(report.ReadOnly.P99LatencyNS)
	}

	report.Invalidation, err = measureInvalidationAB(db, ix, cfg)
	if err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// measureMixedPhase drives cfg.Queries zipfian reads from
// cfg.Concurrency clients, optionally racing one frontier writer that
// appends for the whole read window (round-robin over every series,
// monotone timestamps past end). Cache counters are measured-phase
// deltas, compactions are the memtable generation delta.
func measureMixedPhase(planner *temporalrank.Planner, templates []temporalrank.Query, name string, cfg mixedBenchConfig, write bool, end float64) (mixedBenchPhase, error) {
	warmServe(planner, templates, cfg.ZipfS)
	var h0, m0 uint64
	if st, ok := planner.CacheStats(); ok {
		h0, m0 = st.Hits, st.Misses
	}
	var gen0 uint64
	if st, ok := planner.MemtableStats(); ok {
		gen0 = st.Generations
	}

	ctx := context.Background()
	perClient := cfg.Queries / cfg.Concurrency
	lat := make([][]time.Duration, cfg.Concurrency)
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Concurrency+1)

	stop := make(chan struct{})
	var appends atomic.Int64
	var writerWG sync.WaitGroup
	if write {
		// The writer appends strictly past every series' frontier
		// (monotone global clock starting beyond end) and paces itself
		// in bursts so the active table grows no faster than compaction
		// can drain it.
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			wrng := rand.New(rand.NewSource(7))
			m := planner.DB().NumSeries()
			t := end + 1
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				t += 0.01
				if err := planner.Append(i%m, t, wrng.NormFloat64()); err != nil {
					errs <- fmt.Errorf("mixed bench writer: %w", err)
					return
				}
				appends.Add(1)
				// Yield between bursts (and sleep occasionally to bound
				// the active table on many-core machines): on small
				// GOMAXPROCS an unyielding writer would measure
				// scheduler timeslices, not the ingest path.
				if i%64 == 63 {
					runtime.Gosched()
				}
				if i%4096 == 4095 {
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}

	start := time.Now()
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(templates)-1))
			mine := make([]time.Duration, perClient)
			for i := range mine {
				q := templates[zipf.Uint64()]
				t0 := time.Now()
				if _, err := planner.Run(ctx, q); err != nil {
					errs <- fmt.Errorf("mixed bench %s: %w", name, err)
					return
				}
				mine[i] = time.Since(t0)
				// Yield between reads so the writer and compactor get
				// scheduled on small GOMAXPROCS. Latency is measured
				// per read, between yields, so fairness here does not
				// inflate the recorded tail.
				if i%64 == 63 {
					runtime.Gosched()
				}
			}
			lat[c] = mine
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	writerWG.Wait()
	close(errs)
	for err := range errs {
		return mixedBenchPhase{}, err
	}

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	ph := mixedBenchPhase{
		Name:          name,
		Queries:       len(all),
		Concurrency:   cfg.Concurrency,
		ReadOpsPerSec: float64(len(all)) / elapsed.Seconds(),
		Appends:       appends.Load(),
	}
	if len(all) > 0 {
		ph.P50LatencyNS = int64(all[len(all)/2])
		ph.P99LatencyNS = int64(all[len(all)*99/100])
	}
	if write {
		ph.WriteOpsPerSec = float64(ph.Appends) / elapsed.Seconds()
	}
	if st, ok := planner.CacheStats(); ok {
		if total := (st.Hits - h0) + (st.Misses - m0); total > 0 {
			ph.CacheHitRatio = float64(st.Hits-h0) / float64(total)
		}
	}
	if st, ok := planner.MemtableStats(); ok {
		ph.Compactions = st.Generations - gen0
	}
	return ph, nil
}

// measureInvalidationAB replays an identical hot-writer workload — one
// frontier append, then a sweep over past-window templates — against
// two fresh planners over the same base: one with scoped invalidation
// (the default), one forced to the coarse global-nuke baseline.
func measureInvalidationAB(db *temporalrank.DB, ix *temporalrank.Index, cfg mixedBenchConfig) (mixedInvalidationResult, error) {
	const appendsN = 200
	span := db.Span()
	queries := []temporalrank.Query{
		temporalrank.SumQuery(10, db.Start(), db.Start()+span*0.5),
		temporalrank.AvgQuery(10, db.Start()+span*0.1, db.Start()+span*0.6),
		temporalrank.InstantQuery(10, db.Start()+span*0.3),
	}
	run := func(coarse bool) (float64, error) {
		p, err := temporalrank.NewPlanner(db, ix)
		if err != nil {
			return 0, err
		}
		p.EnableResultCache(cfg.CacheSize)
		if err := p.EnableMemtable(temporalrank.MemtableOptions{DisableAutoCompact: true}); err != nil {
			return 0, err
		}
		p.SetCoarseInvalidation(coarse)
		ctx := context.Background()
		t := db.End()
		for i := 0; i < appendsN; i++ {
			t += 0.5
			if err := p.Append(i%db.NumSeries(), t, 1); err != nil {
				return 0, err
			}
			for _, q := range queries {
				if _, err := p.Run(ctx, q); err != nil {
					return 0, err
				}
			}
		}
		st, ok := p.CacheStats()
		if !ok {
			return 0, fmt.Errorf("mixed bench: cache stats unavailable")
		}
		return st.HitRatio(), nil
	}
	res := mixedInvalidationResult{Appends: appendsN, QueriesPerAppend: len(queries)}
	var err error
	if res.ScopedHitRatio, err = run(false); err != nil {
		return res, err
	}
	if res.CoarseHitRatio, err = run(true); err != nil {
		return res, err
	}
	return res, nil
}
