// Command shardserver hosts cluster shard replicas for the distributed
// serving tier. It restores every shard-NNNN.trsnap snapshot under
// -data into a queryable Planner (no index rebuild) and serves the
// length-prefixed gob RPCs a RemoteCluster router issues:
//
//	meta        topology/health probe (hosted shards + data versions)
//	routing     one shard's global-ID list (router placement)
//	query       one shard's top-k answer, results in global IDs
//	append      apply one segment to a hosted shard
//	score       one object's σ(t1,t2) on its owning shard
//	checkpoint  persist a hosted shard back to -data atomically
//	snapshot    stream a point-in-time snapshot of one shard
//	restore     pull a shard from a peer and install it (bootstrap)
//
// An empty -data directory is valid: the node starts hosting nothing
// and acquires its shards through restore RPCs — how a replacement
// replica bootstraps. Seed snapshot directories come from
// Cluster.Checkpoint, rankserver's durable mode, or
// rankbench -snapshot-write.
//
// Usage:
//
//	shardserver -addr :7070 -data shards/
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"temporalrank"
)

func main() {
	var (
		addr     = flag.String("addr", ":7070", "RPC listen address")
		data     = flag.String("data", "", "snapshot directory holding this node's shard-NNNN.trsnap files (created if missing; may start empty)")
		memtable = flag.Int("memtable", 0, "enable the memtable ingest path on every hosted shard, flushing after this many buffered segments (0 disables)")
	)
	flag.Parse()
	if err := run(*addr, *data, *memtable); err != nil {
		fmt.Fprintln(os.Stderr, "shardserver:", err)
		os.Exit(1)
	}
}

func run(addr, data string, memtable int) error {
	if data == "" {
		return fmt.Errorf("-data is required (snapshot directory)")
	}
	var opts temporalrank.ShardNodeOptions
	if memtable > 0 {
		opts.Memtable = &temporalrank.MemtableOptions{FlushSegments: memtable}
	}
	node, err := temporalrank.NewShardNodeWithOptions(data, opts)
	if err != nil {
		return err
	}
	defer node.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("hosting shards %v from %s on %s", node.Shards(), data, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- node.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	return node.Close()
}
