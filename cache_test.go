package temporalrank_test

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"temporalrank"
)

// These tests pin the result cache's correctness contract: a cached
// query must observe every completed Append (version bump — staleness
// is impossible), and concurrent identical queries must coalesce into
// one run while every caller receives an identical Answer. Run with
// `go test -race` (CI does).

func cachePlanner(t *testing.T) (*temporalrank.DB, *temporalrank.Planner) {
	t.Helper()
	inputs := clusterInputs(t, 40, 25, 7)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := temporalrank.NewPlanner(db, ix)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableResultCache(32)
	return db, p
}

// TestResultCachePostAppend: after Planner.Append, a previously cached
// query must return the post-append answer, not the stored one.
func TestResultCachePostAppend(t *testing.T) {
	db, p := cachePlanner(t)
	ctx := context.Background()
	q := temporalrank.SumQuery(5, db.Start(), db.End())

	first, err := p.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache and verify it actually serves hits.
	again, err := p.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "cached repeat", again.Results, first.Results)
	if st, ok := p.CacheStats(); !ok || st.Hits == 0 {
		t.Fatalf("cache stats = %+v ok=%v, want >= 1 hit", st, ok)
	}

	// A large appended spike must change the winner; the cached entry
	// must not survive the version bump.
	loser := first.Results[len(first.Results)-1].ID
	if err := p.Append(loser, db.End()+10, 1e7); err != nil {
		t.Fatal(err)
	}
	after, err := p.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sameRanking(t, "post-append", after.Results, want.Results)
	if after.Results[0].ID == first.Results[0].ID && first.Results[0].ID != loser {
		t.Fatalf("post-append answer still led by pre-append winner %d (stale cache?)", first.Results[0].ID)
	}
}

// TestResultCacheAppendThroughAnyPath: appends that bypass the planner
// (DB.Append on an index-less planner's DB) still bump the version the
// cache keys on.
func TestResultCacheAppendThroughAnyPath(t *testing.T) {
	inputs := clusterInputs(t, 20, 15, 9)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := temporalrank.NewPlanner(db)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableResultCache(8)
	ctx := context.Background()
	q := temporalrank.SumQuery(3, db.Start(), db.End())
	if _, err := p.Run(ctx, q); err != nil {
		t.Fatal(err)
	}
	v := db.DataVersion()
	if err := db.Append(0, db.End()+5, 1e6); err != nil {
		t.Fatal(err)
	}
	if got := db.DataVersion(); got != v+1 {
		t.Fatalf("DataVersion = %d after DB.Append, want %d", got, v+1)
	}
	after, err := p.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "post-DB.Append", after.Results, want.Results)
}

// TestResultCacheCoalescedIdentical: concurrent identical queries on a
// cached planner must all receive identical Answers (the coalescing
// path shares one flight's result).
func TestResultCacheCoalescedIdentical(t *testing.T) {
	db, p := cachePlanner(t)
	ctx := context.Background()
	q := temporalrank.SumQuery(8, db.Start()+db.Span()*0.2, db.End()-db.Span()*0.2)

	const callers = 16
	var wg sync.WaitGroup
	answers := make([]temporalrank.Answer, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers[i], errs[i] = p.Run(ctx, q)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(answers[i].Results, answers[0].Results) {
			t.Fatalf("caller %d results differ:\n got %v\nwant %v", i, answers[i].Results, answers[0].Results)
		}
	}
	st, ok := p.CacheStats()
	if !ok {
		t.Fatal("cache not attached")
	}
	if st.Misses == 0 {
		t.Fatalf("stats = %+v, want at least one executing miss", st)
	}
	if st.Hits+st.Coalesced+st.Misses != callers {
		t.Fatalf("stats = %+v, lookups don't sum to %d", st, callers)
	}
}

// TestClusterCacheEquivalenceWithAppends re-runs the Cluster ≡ DB
// equivalence contract with the result cache enabled and Appends
// interleaved between repeated queries: every repetition must match the
// reference DB's current answer, before and after each append.
func TestClusterCacheEquivalenceWithAppends(t *testing.T) {
	inputs := clusterInputs(t, 50, 25, 13)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{
		Shards:      4,
		ResultCache: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(77))
	start, span := db.Start(), db.Span()

	queries := make([]temporalrank.Query, 6)
	for i := range queries {
		t1 := start + rng.Float64()*span*0.6
		queries[i] = temporalrank.SumQuery(1+rng.Intn(8), t1, t1+rng.Float64()*span*0.3)
	}
	check := func(round int) {
		for qi, q := range queries {
			got, err := cl.Run(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := db.Run(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			sameRanking(t, "round "+string(rune('0'+round))+" query "+string(rune('0'+qi)), got.Results, want.Results)
		}
	}
	check(0)
	check(1) // repeat: served from cache, must still match
	tcur := db.End()
	for round := 2; round < 5; round++ {
		// Append the same segments to both sides, then re-run the same
		// queries: cached pre-append entries must be unreachable.
		for a := 0; a < 5; a++ {
			id := rng.Intn(db.NumSeries())
			tcur += 1 + rng.Float64()
			v := rng.NormFloat64() * 50
			if err := cl.Append(id, tcur, v); err != nil {
				t.Fatal(err)
			}
			if err := db.Append(id, tcur, v); err != nil {
				t.Fatal(err)
			}
		}
		check(round)
	}
	if st, ok := cl.CacheStats(); !ok || st.Hits == 0 {
		t.Fatalf("cluster cache stats = %+v ok=%v, want hits > 0", st, ok)
	}
}

// TestCacheKeyDistinguishesQueries: different queries must never share
// an entry, including spelling variants that only canonicalization may
// merge.
func TestCacheKeyDistinguishesQueries(t *testing.T) {
	db, p := cachePlanner(t)
	ctx := context.Background()
	t1, t2 := db.Start(), db.End()
	qs := []temporalrank.Query{
		temporalrank.SumQuery(5, t1, t2),
		temporalrank.AvgQuery(5, t1, t2),
		temporalrank.SumQuery(6, t1, t2),
		temporalrank.SumQuery(5, t1, t2-1),
		{Agg: temporalrank.AggSum, K: 5, T1: t1, T2: t2, MaxEpsilon: 0.5},
	}
	for _, q := range qs {
		got, err := p.Run(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.Run(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		// MaxEpsilon > 0 may route differently, but this planner has only
		// exact indexes, so every variant must still match the reference.
		sameRanking(t, "distinct query", got.Results, want.Results)
	}
	// The zero-Agg spelling of a sum query must share the sum entry.
	if _, err := p.Run(ctx, temporalrank.Query{K: 5, T1: t1, T2: t2}); err != nil {
		t.Fatal(err)
	}
	st, _ := p.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("stats = %+v: zero-Agg spelling did not hit the AggSum entry", st)
	}
}
