// Memetracker: rank phrases by total observed coverage in a time
// window on a bursty, Meme-like dataset — the paper's second workload.
// Bursty data is the stress test for the approximate indexes: this
// example measures precision/recall and the size/IO advantage of
// APPX2 (1MB-scale index) against the exact answer, mirroring Figures
// 19–20.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"temporalrank"
	"temporalrank/internal/gen"
)

func main() {
	ds, err := gen.Meme(gen.MemeConfig{M: 3000, Navg: 67, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	db := temporalrank.NewDBFromDataset(ds)
	fmt.Printf("meme db: %d phrases, %d records, days [%.1f, %.1f]\n",
		db.NumSeries(), db.NumSegments(), db.Start(), db.End())

	apx, err := db.BuildIndex(temporalrank.Options{
		Method:  temporalrank.MethodAppx2,
		TargetR: 500,
		KMax:    100,
	})
	if err != nil {
		log.Fatal(err)
	}
	plus, err := db.BuildIndex(temporalrank.Options{
		Method:  temporalrank.MethodAppx2P,
		TargetR: 500,
		KMax:    100,
	})
	if err != nil {
		log.Fatal(err)
	}

	const k = 20
	rng := rand.New(rand.NewSource(1))
	span := db.End() - db.Start()

	var prApx, prPlus float64
	var ioApx, ioPlus uint64
	const trials = 25
	for q := 0; q < trials; q++ {
		t1 := db.Start() + rng.Float64()*span*0.7
		t2 := t1 + span*0.2
		want := db.TopK(k, t1, t2)
		set := map[int]bool{}
		for _, w := range want {
			set[w.ID] = true
		}
		count := func(idx *temporalrank.Index) (float64, uint64) {
			idx.ResetStats()
			got, err := idx.TopK(k, t1, t2)
			if err != nil {
				log.Fatal(err)
			}
			hits := 0
			for _, g := range got {
				if set[g.ID] {
					hits++
				}
			}
			return float64(hits) / float64(k), idx.Stats().DeviceIOs
		}
		p1, io1 := count(apx)
		p2, io2 := count(plus)
		prApx += p1
		prPlus += p2
		ioApx += io1
		ioPlus += io2
	}

	fmt.Printf("\nAPPX2 : precision/recall %.3f, avg IOs %.1f, index %d bytes\n",
		prApx/trials, float64(ioApx)/trials, apx.Stats().Bytes)
	fmt.Printf("APPX2+: precision/recall %.3f, avg IOs %.1f, index %d bytes\n",
		prPlus/trials, float64(ioPlus)/trials, plus.Stats().Bytes)

	// Show one concrete answer: the hottest memes of mid-season.
	t1 := db.Start() + span*0.45
	t2 := t1 + span*0.1
	top, err := plus.TopK(5, t1, t2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-5 phrases by total coverage in days [%.1f, %.1f]:\n", t1, t2)
	for rank, r := range top {
		fmt.Printf("  %d. phrase %-6d coverage %.1f\n", rank+1, r.ID, r.Score)
	}
}
