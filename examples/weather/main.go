// Weather: the paper's motivating example — "return the top-10
// weather stations having the highest average temperature from
// 10/01/2010 to 10/07/2010" — on a synthetic MesoWest-like dataset.
//
// It builds both the best exact index (EXACT3) and an approximate one
// (APPX1, (ε,1)-guarantee) and compares their answers and IO costs on
// the same queries. avg is sum/(t2-t1), so ranking by sum ranks by avg.
package main

import (
	"fmt"
	"log"
	"time"

	"temporalrank"
	"temporalrank/internal/gen"
)

func main() {
	// ~500 station-years of temperature curves (seasonal + diurnal).
	ds, err := gen.Temp(gen.TempConfig{M: 500, Navg: 365, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	db := temporalrank.NewDBFromDataset(ds)
	fmt.Printf("weather db: %d stations, %d readings, days [%.0f, %.0f]\n",
		db.NumSeries(), db.NumSegments(), db.Start(), db.End())

	exactIdx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		log.Fatal(err)
	}
	apxIdx, err := db.BuildIndex(temporalrank.Options{
		Method:  temporalrank.MethodAppx1,
		TargetR: 300,
		KMax:    50,
	})
	if err != nil {
		log.Fatal(err)
	}

	// "The first week of October": days 274–281.
	t1, t2 := 274.0, 281.0
	const k = 10

	run := func(name string, idx *temporalrank.Index) []temporalrank.Result {
		idx.ResetStats()
		start := time.Now()
		res, err := idx.TopK(k, t1, t2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: top-%d stations by avg temperature, days [%g,%g] — %d IOs, %v\n",
			name, k, t1, t2, idx.Stats().DeviceIOs, time.Since(start))
		for rank, r := range res {
			fmt.Printf("  %2d. station %-5d avg %.2f\n", rank+1, r.ID, r.Score/(t2-t1))
		}
		return res
	}

	exact := run("EXACT3", exactIdx)
	approx := run("APPX1 ", apxIdx)

	match := 0
	set := map[int]bool{}
	for _, r := range exact {
		set[r.ID] = true
	}
	for _, r := range approx {
		if set[r.ID] {
			match++
		}
	}
	fmt.Printf("\nagreement: %d/%d stations, APPX1 index %d bytes vs EXACT3 %d bytes\n",
		match, k, apxIdx.Stats().Bytes, exactIdx.Stats().Bytes)
}
