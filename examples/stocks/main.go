// Stocks: the paper's other motivating query — "find the top-20 stocks
// having the largest total transaction volumes from 02/05/2011 to
// 02/07/2011" — plus the §4 update model: trading days append new
// segments at the time frontier, and the index answers queries between
// appends without rebuilding.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"temporalrank"
)

const (
	numStocks = 400
	histDays  = 250 // one year of trading history
	liveDays  = 20  // appended live, day by day
	topK      = 10
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Historical volume curves: lognormal daily volumes with occasional
	// volume spikes (earnings days).
	series := make([]temporalrank.SeriesInput, numStocks)
	base := make([]float64, numStocks)
	for s := 0; s < numStocks; s++ {
		base[s] = math.Exp(rng.NormFloat64()*1.2 + 10) // typical daily volume
		times := make([]float64, histDays)
		values := make([]float64, histDays)
		for d := 0; d < histDays; d++ {
			times[d] = float64(d)
			v := base[s] * math.Exp(rng.NormFloat64()*0.4)
			if rng.Float64() < 0.02 {
				v *= 4 + rng.Float64()*6 // earnings spike
			}
			values[d] = v
		}
		series[s] = temporalrank.SeriesInput{Times: times, Values: values}
	}
	db, err := temporalrank.NewDB(series)
	if err != nil {
		log.Fatal(err)
	}

	// EXACT2 is the natural choice under heavy appends: per-object
	// B+-trees update in O(log_B n_i) and never go stale.
	idx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stock db: %d stocks, %d historical days\n", numStocks, histDays)

	// Trailing-3-day volume leaders before the live period.
	show := func(label string, t1, t2 float64) {
		res, err := idx.TopK(topK, t1, t2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — top-%d by total volume over days [%.0f, %.0f]:\n", label, topK, t1, t2)
		for rank, r := range res {
			fmt.Printf("  %2d. stock %-4d volume %.3g\n", rank+1, r.ID, r.Score)
		}
	}
	show("history", histDays-3, histDays-1)

	// Live trading: each day every stock appends one new reading; a
	// crash-day spike makes a mid-cap stock dominate.
	spotlight := 123
	for d := 0; d < liveDays; d++ {
		day := float64(histDays + d)
		for s := 0; s < numStocks; s++ {
			v := base[s] * math.Exp(rng.NormFloat64()*0.4)
			if s == spotlight && d >= liveDays/2 {
				v *= 50 // sustained frenzy in the spotlight stock
			}
			if err := idx.Append(s, day, v); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\nappended %d live days (%d segments) with O(log n) per append\n",
		liveDays, liveDays*numStocks)

	show("live window", float64(histDays+liveDays/2), float64(histDays+liveDays-1))
	fmt.Printf("\n(expect stock %d to lead the live window)\n", spotlight)
}
