// Persistence: checkpoint a built index stack to disk, then restore
// it with zero rebuilds. The checkpoint stores each index's device
// pages verbatim plus the dataset, so the restored Planner answers
// bit-for-bit identically to the original — and keeps accepting
// appends, because the append frontiers survive the round trip.
//
// The same protocol scales out: Cluster.Checkpoint writes one
// atomically-committed snapshot file per shard, and
// OpenClusterSnapshot reassembles the full cluster from them (what
// `rankserver -data dir/` does on boot).
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"temporalrank"
	"temporalrank/internal/blockio"
)

const (
	numObjects = 300
	numDays    = 120
)

func main() {
	rng := rand.New(rand.NewSource(7))
	series := make([]temporalrank.SeriesInput, numObjects)
	for i := range series {
		times := make([]float64, numDays)
		values := make([]float64, numDays)
		level := 30 + rng.Float64()*50
		for d := range times {
			times[d] = float64(d)
			level += rng.NormFloat64() * 3
			values[d] = math.Max(level, 0)
		}
		series[i] = temporalrank.SeriesInput{Times: times, Values: values}
	}

	// Build once: an exact and an approximate index behind a Planner.
	db, err := temporalrank.NewDB(series)
	if err != nil {
		log.Fatal(err)
	}
	buildStart := time.Now()
	exact, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		log.Fatal(err)
	}
	appx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodAppx2, TargetR: 64})
	if err != nil {
		log.Fatal(err)
	}
	planner, err := temporalrank.NewPlanner(db, exact, appx)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(buildStart)

	// Checkpoint the whole stack — dataset, both indexes, planner
	// metadata — into one atomically-committed snapshot file.
	dir, err := os.MkdirTemp("", "temporalrank-persistence-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "rank.trsnap")
	dev, err := blockio.OpenFileDeviceAt(path, blockio.DefaultBlockSize)
	if err != nil {
		log.Fatal(err)
	}
	if err := planner.Checkpoint(dev); err != nil {
		log.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("built in %v, checkpointed %d KiB to %s\n",
		buildTime.Round(time.Millisecond), fi.Size()/1024, filepath.Base(path))

	// "Restart": open the file in what would be a fresh process. No
	// index is rebuilt — the pages are replayed as written.
	dev2, err := blockio.OpenFileDeviceAt(path, blockio.DefaultBlockSize)
	if err != nil {
		log.Fatal(err)
	}
	defer dev2.Close()
	restoreStart := time.Now()
	restored, err := temporalrank.OpenSnapshot(dev2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored in %v (%.0fx faster than the build)\n\n",
		time.Since(restoreStart).Round(time.Microsecond),
		float64(buildTime)/float64(time.Since(restoreStart)))

	// The restored stack answers identically, bit for bit.
	ctx := context.Background()
	q := temporalrank.SumQuery(5, 20, 90)
	a, err := planner.Run(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	b, err := restored.Run(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-5 by sum over [20, 90]   original    restored")
	for i := range a.Results {
		same := "=="
		if a.Results[i] != b.Results[i] {
			same = "!!"
		}
		fmt.Printf("  #%d  object %3d            %10.2f  %s %.2f\n",
			i+1, a.Results[i].ID, a.Results[i].Score, same, b.Results[i].Score)
	}

	// And it is still live: appends keep working after restore.
	if err := restored.Append(0, float64(numDays), 999); err != nil {
		log.Fatal(err)
	}
	after, err := restored.Run(ctx, temporalrank.InstantQuery(3, float64(numDays)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter appending a spike to object 0: instant top-1 at t=%d is object %d (%.1f)\n",
		numDays, after.Results[0].ID, after.Results[0].Score)
}
