// Distributed serving: the same top-k queries, answered by a
// replicated tier of shard servers behind a scatter-gather router.
// This example boots the whole thing in one process — a 2-shard
// cluster checkpointed to disk, two replicas per shard restored from
// those snapshots, and a RemoteCluster routing over real TCP sockets
// — then shows the three properties the tier is built around:
//
//  1. Transparency: RemoteCluster implements Querier, and its answers
//     are bit-identical to the local cluster's.
//  2. Fault tolerance: killing a replica mid-flight degrades nothing;
//     reads fail over (and slow reads hedge) to the survivor.
//  3. Replicated ingest: appends go to every replica synchronously,
//     so failover never serves stale data.
//
// In production the four nodes are `shardserver` processes on
// different machines and the router is `rankserver -router`.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"

	"temporalrank"
)

const (
	numObjects = 300
	numDays    = 120
	shards     = 2
	replicas   = 2
)

func main() {
	rng := rand.New(rand.NewSource(7))
	series := make([]temporalrank.SeriesInput, numObjects)
	for i := range series {
		times := make([]float64, numDays)
		values := make([]float64, numDays)
		level := 20 + rng.Float64()*80
		for d := range times {
			times[d] = float64(d)
			level += rng.NormFloat64() * 4
			values[d] = math.Max(level, 0)
		}
		series[i] = temporalrank.SeriesInput{Times: times, Values: values}
	}

	// Build the reference cluster and checkpoint it: the snapshot
	// directory is how shard servers get their data in the first place.
	local, err := temporalrank.NewCluster(series, temporalrank.ClusterOptions{
		Shards:  shards,
		Indexes: []temporalrank.Options{{Method: temporalrank.MethodExact3}},
	})
	if err != nil {
		log.Fatal(err)
	}
	root, err := os.MkdirTemp("", "distributed-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	master := filepath.Join(root, "master")
	if err := os.MkdirAll(master, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := local.Checkpoint(master); err != nil {
		log.Fatal(err)
	}

	// Boot shards×replicas shard nodes, each restoring one shard's
	// snapshot file — group g's replicas all serve shard g.
	groups := make([][]string, shards)
	nodes := make([][]*temporalrank.ShardNode, shards)
	for g := 0; g < shards; g++ {
		name := fmt.Sprintf("shard-%04d.trsnap", g)
		blob, err := os.ReadFile(filepath.Join(master, name))
		if err != nil {
			log.Fatal(err)
		}
		for r := 0; r < replicas; r++ {
			dir := filepath.Join(root, fmt.Sprintf("g%dr%d", g, r))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, name), blob, 0o644); err != nil {
				log.Fatal(err)
			}
			node, err := temporalrank.NewShardNode(dir)
			if err != nil {
				log.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			go node.Serve(ln)
			defer node.Close()
			groups[g] = append(groups[g], ln.Addr().String())
			nodes[g] = append(nodes[g], node)
		}
		fmt.Printf("shard %d replicas: %v\n", g, groups[g])
	}

	// The router discovers the topology, checks every group hosts its
	// shard, and from here on is just another Querier.
	router, err := temporalrank.NewRemoteCluster(groups, temporalrank.RemoteClusterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()

	ctx := context.Background()
	q := temporalrank.SumQuery(5, 20, 90)
	remote, err := router.Run(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	reference, err := local.Run(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 by sum over [20, 90], routed across the tier:")
	for i, r := range remote.Results {
		fmt.Printf("  #%d  object %3d  score %.2f  (local: object %3d  score %.2f)\n",
			i+1, r.ID, r.Score, reference.Results[i].ID, reference.Results[i].Score)
	}

	// Kill one replica per group. Reads fail over to the survivors —
	// same answers, no errors.
	for g := range nodes {
		nodes[g][1].Close()
	}
	afterKill, err := router.Run(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	same := len(afterKill.Results) == len(remote.Results)
	for i := range afterKill.Results {
		same = same && afterKill.Results[i] == remote.Results[i]
	}
	fmt.Printf("\nkilled one replica per shard: query still answered, identical=%v\n", same)
	if err := router.HealthCheck(ctx); err != nil {
		log.Fatal(err)
	}
	for _, g := range router.Health() {
		for _, rep := range g.Replicas {
			fmt.Printf("  shard %d replica %s: %s\n", g.Shard, rep.Addr, rep.State)
		}
	}

	// Ingest still works against the surviving replicas and is
	// reflected by the very next read.
	if err := router.Append(7, float64(numDays)+10, 500); err != nil {
		log.Fatal(err)
	}
	score, err := router.Score(7, float64(numDays), float64(numDays)+10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nappended a spike to object 7 through the router; σ(last interval) = %.1f\n", score)
}
