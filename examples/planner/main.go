// Planner: one DB, several indexes, one declarative query API. The
// caller states its error tolerance per query and the Planner routes
// to the cheapest structure that satisfies it — exact when demanded,
// approximate when tolerated, brute force when nothing qualifies.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"

	"temporalrank"
)

const (
	numObjects = 300
	numDays    = 200
)

func main() {
	rng := rand.New(rand.NewSource(7))
	series := make([]temporalrank.SeriesInput, numObjects)
	for i := range series {
		times := make([]float64, numDays)
		values := make([]float64, numDays)
		level := 50 + rng.Float64()*100
		for d := range times {
			times[d] = float64(d)
			level += rng.NormFloat64() * 5
			values[d] = math.Max(level, 0)
		}
		series[i] = temporalrank.SeriesInput{Times: times, Values: values}
	}
	db, err := temporalrank.NewDB(series)
	if err != nil {
		log.Fatal(err)
	}

	// Exact path plus two approximate structures of different ε.
	exact3, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		log.Fatal(err)
	}
	coarse, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodAppx2, TargetR: 100, KMax: 50})
	if err != nil {
		log.Fatal(err)
	}
	fine, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodAppx2P, TargetR: 400, KMax: 50})
	if err != nil {
		log.Fatal(err)
	}
	planner, err := temporalrank.NewPlanner(db, exact3, coarse, fine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planner over %d indexes: ", len(planner.Indexes()))
	for _, ix := range planner.Indexes() {
		fmt.Printf("%s(ε=%.3g) ", ix.Method(), ix.Epsilon())
	}
	fmt.Println()

	ctx := context.Background()
	queries := []temporalrank.Query{
		{K: 10, T1: 20, T2: 120},                                   // exact demanded
		{K: 10, T1: 20, T2: 120, MaxEpsilon: 1},                    // any approximation fine
		{K: 10, T1: 20, T2: 120, MaxEpsilon: coarse.Epsilon() / 2}, // only the fine index fits
		{K: 10, T1: 20, T2: 120, MaxEpsilon: fine.Epsilon() / 10},  // tighter than every index → exact
		{Agg: temporalrank.AggInstant, K: 5, T1: 75},               // instant → EXACT3
	}
	for _, q := range queries {
		ans, err := planner.Run(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("agg=%-7s eps<=%-8.3g -> %-9s exact=%-5v ios=%-5d top: object %d (%.0f)\n",
			q.Agg, q.MaxEpsilon, ans.Method, ans.Exact, ans.IOs,
			ans.Results[0].ID, ans.Results[0].Score)
	}

	// Typed errors classify failures across every layer.
	if _, err := coarse.TopK(500, 20, 120); errors.Is(err, temporalrank.ErrKTooLarge) {
		fmt.Println("k=500 exceeds the approximate index's kmax — typed, not stringly")
	}
	if _, err := planner.Run(ctx, temporalrank.SumQuery(5, 120, 20)); errors.Is(err, temporalrank.ErrBadInterval) {
		fmt.Println("inverted interval rejected with ErrBadInterval")
	}
}
