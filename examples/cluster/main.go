// Cluster: scale-out without changing the query. Series are
// hash-partitioned across independent shards (each its own DB, index,
// Planner, and device); a query scatters to every shard and the
// per-shard top-k answers merge deterministically — same results, same
// tie order, as one big DB. Ingest routes each append to its owning
// shard, where every shard index advances consistently.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"temporalrank"
)

const (
	numObjects = 400
	numDays    = 150
	shards     = 8
)

func main() {
	rng := rand.New(rand.NewSource(3))
	series := make([]temporalrank.SeriesInput, numObjects)
	for i := range series {
		times := make([]float64, numDays)
		values := make([]float64, numDays)
		level := 20 + rng.Float64()*80
		for d := range times {
			times[d] = float64(d)
			level += rng.NormFloat64() * 4
			values[d] = math.Max(level, 0)
		}
		series[i] = temporalrank.SeriesInput{Times: times, Values: values}
	}

	// The single-node reference and the 8-shard cluster over the same
	// data. Both implement Querier, so the calling code is identical.
	db, err := temporalrank.NewDB(series)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := temporalrank.NewCluster(series, temporalrank.ClusterOptions{
		Shards:  shards,
		Indexes: []temporalrank.Options{{Method: temporalrank.MethodExact3}},
	})
	if err != nil {
		log.Fatal(err)
	}
	st := cluster.Stats()
	fmt.Printf("cluster: %d shards over %d objects (%d segments)\n", st.Shards, st.Objects, st.Segments)
	for i, sh := range st.PerShard {
		fmt.Printf("  shard %d: %d objects, %d segments\n", i, sh.Objects, sh.Segments)
	}

	ctx := context.Background()
	q := temporalrank.SumQuery(5, 30, 110)
	want, err := db.Run(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	got, err := cluster.Run(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-5(30, 110, sum), merged from %d shards via %s (exact=%v, ios=%d):\n",
		st.Shards, got.Method, got.Exact, got.IOs)
	for rank, r := range got.Results {
		marker := "=="
		if want.Results[rank].ID != r.ID {
			marker = "!=" // never happens: the merge is equivalence-preserving
		}
		fmt.Printf("  #%d object %-4d score %10.1f  %s single-node object %d\n",
			rank+1, r.ID, r.Score, marker, want.Results[rank].ID)
	}

	// Sharded ingest: appends route to the owning shard.
	for i := 0; i < 50; i++ {
		id := rng.Intn(numObjects)
		if err := cluster.Append(id, float64(numDays)+float64(i), 500); err != nil {
			log.Fatal(err)
		}
	}
	fresh, err := cluster.Run(ctx, temporalrank.SumQuery(3, float64(numDays), float64(numDays)+50))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter 50 routed appends, top-3 over the new window: ")
	for _, r := range fresh.Results {
		fmt.Printf("object %d (%.0f) ", r.ID, r.Score)
	}
	fmt.Println()
}
