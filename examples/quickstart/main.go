// Quickstart: build a tiny temporal database by hand, index it with
// the paper's best exact method (EXACT3), and run an aggregate top-k
// query — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"temporalrank"
)

func main() {
	// Three objects with hand-drawn piecewise-linear score curves over
	// the time domain [0, 4] — the shape of Figure 2 in the paper,
	// where o1 wins an interval without ever being the instant top-1.
	db, err := temporalrank.NewDB([]temporalrank.SeriesInput{
		{Times: []float64{0, 1, 2, 3, 4}, Values: []float64{5, 5, 5, 5, 5}}, // steady
		{Times: []float64{0, 1, 2, 3, 4}, Values: []float64{9, 1, 9, 1, 9}}, // spiky
		{Times: []float64{0, 2, 4}, Values: []float64{2, 8, 2}},             // one hump
	})
	if err != nil {
		log.Fatal(err)
	}

	idx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		log.Fatal(err)
	}

	for _, iv := range [][2]float64{{0, 4}, {1.5, 2.5}, {0.5, 1.5}} {
		results, err := idx.TopK(2, iv[0], iv[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("top-2(%g, %g, sum):\n", iv[0], iv[1])
		for rank, r := range results {
			fmt.Printf("  %d. object %d with aggregate score %.2f\n", rank+1, r.ID, r.Score)
		}
	}

	// Instant top-k is the degenerate case t1 == t2 (scores are all 0
	// under sum; the paper treats instants via its earlier work) —
	// aggregate ranking needs a real interval:
	best, _ := idx.TopK(1, 0, 4)
	fmt.Printf("overall winner across [0,4]: object %d\n", best[0].ID)
}
