// Quickstart: build a tiny temporal database by hand, index it with
// the paper's best exact method (EXACT3), and run an aggregate top-k
// query through the unified Query API — the minimal end-to-end use of
// the public surface.
package main

import (
	"context"
	"fmt"
	"log"

	"temporalrank"
)

func main() {
	// Three objects with hand-drawn piecewise-linear score curves over
	// the time domain [0, 4] — the shape of Figure 2 in the paper,
	// where o1 wins an interval without ever being the instant top-1.
	db, err := temporalrank.NewDB([]temporalrank.SeriesInput{
		{Times: []float64{0, 1, 2, 3, 4}, Values: []float64{5, 5, 5, 5, 5}}, // steady
		{Times: []float64{0, 1, 2, 3, 4}, Values: []float64{9, 1, 9, 1, 9}}, // spiky
		{Times: []float64{0, 2, 4}, Values: []float64{2, 8, 2}},             // one hump
	})
	if err != nil {
		log.Fatal(err)
	}

	idx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		log.Fatal(err)
	}

	// One Query value per request: the caller states aggregate, k and
	// interval; the Answer names the method that answered and whether
	// it is exact, and carries the measured latency and IO count.
	ctx := context.Background()
	for _, iv := range [][2]float64{{0, 4}, {1.5, 2.5}, {0.5, 1.5}} {
		ans, err := idx.Run(ctx, temporalrank.SumQuery(2, iv[0], iv[1]))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("top-2(%g, %g, sum) via %s (%d IOs):\n", iv[0], iv[1], ans.Method, ans.IOs)
		for rank, r := range ans.Results {
			fmt.Printf("  %d. object %d with aggregate score %.2f\n", rank+1, r.ID, r.Score)
		}
	}

	// The instant query top-k(t) rides the same API.
	inst, err := idx.Run(ctx, temporalrank.InstantQuery(1, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instant leader at t=2: object %d\n", inst.Results[0].ID)

	best, err := idx.Run(ctx, temporalrank.SumQuery(1, 0, 4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overall winner across [0,4]: object %d\n", best.Results[0].ID)
}
