// Package-level benchmarks: one testing.B target per table/figure of
// the paper's evaluation (§5). Each benchmark drives the same harness
// as `go run ./cmd/rankbench -fig <id>` at a reduced scale so that
// `go test -bench=.` completes on a laptop; pass -benchtime=1x (the
// harness already averages internally) and raise the exp.Params fields
// via the rankbench CLI for paper-scale runs.
//
// The benchmarks print the reproduced table through b.Log-free stdout
// only under -v; their timing numbers measure one full harness pass.
package temporalrank_test

import (
	"io"
	"testing"

	"temporalrank/internal/breakpoint"
	"temporalrank/internal/core"
	"temporalrank/internal/exp"
	"temporalrank/internal/tsdata"
)

func benchBuild2Baseline(ds *tsdata.Dataset, eps float64) (*breakpoint.Set, error) {
	return breakpoint.Build2Baseline(ds, eps)
}

func benchBuild2(ds *tsdata.Dataset, eps float64) (*breakpoint.Set, error) {
	return breakpoint.Build2(ds, eps)
}

// benchParams is the shared reduced scale for `go test -bench`.
func benchParams() exp.Params {
	p := exp.DefaultParams()
	p.M = 300
	p.Navg = 60
	p.KMax = 50
	p.K = 10
	p.R = 80
	p.NumQueries = 10
	return p
}

func runFig(b *testing.B, f func(w io.Writer, p exp.Params) error) {
	b.Helper()
	p := benchParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11_Breakpoints reproduces Fig. 11a–d (preprocessing vs r).
func BenchmarkFig11_Breakpoints(b *testing.B) {
	runFig(b, func(w io.Writer, p exp.Params) error {
		_, err := exp.Fig11(w, p, []int{p.R / 2, p.R})
		return err
	})
}

// BenchmarkFig12_QueryVsR reproduces Fig. 12a–d (query quality/cost vs r).
func BenchmarkFig12_QueryVsR(b *testing.B) {
	runFig(b, func(w io.Writer, p exp.Params) error {
		_, err := exp.Fig12(w, p, []int{p.R / 2, p.R})
		return err
	})
}

// BenchmarkFig13_VaryM reproduces Fig. 13a–d (scalability in m).
func BenchmarkFig13_VaryM(b *testing.B) {
	runFig(b, func(w io.Writer, p exp.Params) error {
		_, err := exp.Fig13(w, p, []int{p.M / 2, p.M})
		return err
	})
}

// BenchmarkFig14_VaryNavg reproduces Fig. 14a–d (scalability in navg).
func BenchmarkFig14_VaryNavg(b *testing.B) {
	runFig(b, func(w io.Writer, p exp.Params) error {
		_, err := exp.Fig14(w, p, []int{p.Navg / 2, p.Navg})
		return err
	})
}

// BenchmarkFig15_Quality reproduces Fig. 15a–d (quality vs scale).
func BenchmarkFig15_Quality(b *testing.B) {
	runFig(b, func(w io.Writer, p exp.Params) error {
		_, err := exp.Fig15(w, p, []int{p.M}, []int{p.Navg})
		return err
	})
}

// BenchmarkFig16_Interval reproduces Fig. 16a–d (query interval length).
func BenchmarkFig16_Interval(b *testing.B) {
	runFig(b, func(w io.Writer, p exp.Params) error {
		_, err := exp.Fig16(w, p, []float64{0.02, 0.2, 0.5})
		return err
	})
}

// BenchmarkFig17_VaryK reproduces Fig. 17a–d (query k).
func BenchmarkFig17_VaryK(b *testing.B) {
	runFig(b, func(w io.Writer, p exp.Params) error {
		_, err := exp.Fig17(w, p, []int{p.K, p.KMax})
		return err
	})
}

// BenchmarkFig18_VaryKmax reproduces Fig. 18a–d (kmax).
func BenchmarkFig18_VaryKmax(b *testing.B) {
	runFig(b, func(w io.Writer, p exp.Params) error {
		_, err := exp.Fig18(w, p, []int{p.KMax / 2, p.KMax})
		return err
	})
}

// BenchmarkFig19_Meme reproduces Fig. 19a–d (all methods on Meme).
func BenchmarkFig19_Meme(b *testing.B) {
	runFig(b, func(w io.Writer, p exp.Params) error {
		_, err := exp.Fig19(w, p)
		return err
	})
}

// BenchmarkFig20_MemeQuality reproduces Fig. 20a–b (quality on Meme).
func BenchmarkFig20_MemeQuality(b *testing.B) {
	runFig(b, func(w io.Writer, p exp.Params) error {
		_, err := exp.Fig20(w, p)
		return err
	})
}

// BenchmarkUpdates reproduces the §4 update-cost study.
func BenchmarkUpdates(b *testing.B) {
	runFig(b, func(w io.Writer, p exp.Params) error {
		_, err := exp.Updates(w, p, 100)
		return err
	})
}

// --- ablation benches (design choices DESIGN.md calls out) -------------

// BenchmarkAblation_B1VsB2 measures the two breakpoint constructions.
func BenchmarkAblation_B1VsB2(b *testing.B) {
	runFig(b, func(w io.Writer, p exp.Params) error {
		_, err := exp.Ablations(w, p)
		return err
	})
}

// BenchmarkAblation_B2Construction isolates baseline vs efficient B2.
func BenchmarkAblation_B2Construction(b *testing.B) {
	p := benchParams()
	ds, err := p.MakeDataset()
	if err != nil {
		b.Fatal(err)
	}
	eps := 0.001
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := benchBuild2Baseline(ds, eps); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("efficient", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := benchBuild2(ds, eps); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_BufferPool measures EXACT3 queries with and
// without an LRU page cache.
func BenchmarkAblation_BufferPool(b *testing.B) {
	p := benchParams()
	ds, err := p.MakeDataset()
	if err != nil {
		b.Fatal(err)
	}
	qs := p.MakeQueries(ds)
	for _, cache := range []int{0, 4096} {
		cfg := core.Config{BlockSize: p.BlockSize, KMax: p.KMax, TargetR: p.R, CacheBlocks: cache}
		m, err := core.Build(core.Exact3, ds, cfg)
		if err != nil {
			b.Fatal(err)
		}
		name := "nocache"
		if cache > 0 {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := m.TopK(p.K, q.T1, q.T2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ForestVsInterval compares EXACT2's m-tree forest
// against EXACT3's single interval tree on the same queries.
func BenchmarkAblation_ForestVsInterval(b *testing.B) {
	p := benchParams()
	ds, err := p.MakeDataset()
	if err != nil {
		b.Fatal(err)
	}
	qs := p.MakeQueries(ds)
	for _, name := range []core.MethodName{core.Exact2, core.Exact3} {
		m, err := core.Build(name, ds, core.Config{BlockSize: p.BlockSize})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := m.TopK(p.K, q.T1, q.T2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- micro-benchmarks on the hot query paths ---------------------------

// BenchmarkQuery_PerMethod measures a single top-k query per method at
// the shared bench scale (the per-op numbers behind Figs. 12d/13d).
func BenchmarkQuery_PerMethod(b *testing.B) {
	p := benchParams()
	ds, err := p.MakeDataset()
	if err != nil {
		b.Fatal(err)
	}
	qs := p.MakeQueries(ds)
	for _, name := range core.AllMethods() {
		m, err := core.Build(name, ds, core.Config{BlockSize: p.BlockSize, KMax: p.KMax, TargetR: p.R})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := m.TopK(p.K, q.T1, q.T2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuild_PerMethod measures index construction per method.
func BenchmarkBuild_PerMethod(b *testing.B) {
	p := benchParams()
	p.M = 150 // keep APPX1's r² construction inside bench budgets
	ds, err := p.MakeDataset()
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range core.AllMethods() {
		b.Run(string(name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(name, ds, core.Config{BlockSize: p.BlockSize, KMax: p.KMax, TargetR: p.R}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
