package temporalrank

import (
	"fmt"

	"temporalrank/internal/exact"
	"temporalrank/internal/pla"
	"temporalrank/internal/topk"
	"temporalrank/internal/tsdata"
)

// This file carries the §4 extensions of the paper beyond the core
// top-k(t1,t2,sum) operator: average aggregation, instant top-k, and
// the piecewise-linear segmentation preprocessing for raw samples.

// Sample is one raw (time, value) reading of an object before
// segmentation.
type Sample = pla.Sample

// SegmentationMethod selects how raw samples are converted to the
// piecewise-linear representation the indexes consume.
type SegmentationMethod int

const (
	// SegmentConnect keeps every sample as a vertex (what the paper
	// does with Temp and Meme: "we connect all consecutive readings").
	SegmentConnect SegmentationMethod = iota
	// SegmentSlidingWindow applies online greedy segmentation with the
	// given L∞ error budget.
	SegmentSlidingWindow
	// SegmentBottomUp applies offline bottom-up segmentation with the
	// given L∞ error budget (adaptive; fewest segments in practice).
	SegmentBottomUp
)

// NewDBFromSamples builds a database from raw per-object samples,
// applying the chosen segmentation. errBudget is the maximum vertical
// deviation of any dropped sample from its covering segment; it is
// ignored by SegmentConnect. An L∞ budget of δ perturbs any aggregate
// σ_i(t1,t2) by at most δ·(t2−t1).
func NewDBFromSamples(objects [][]Sample, method SegmentationMethod, errBudget float64) (*DB, error) {
	inputs, err := segmentObjects(objects, method, errBudget)
	if err != nil {
		return nil, err
	}
	series := make([]*tsdata.Series, len(inputs))
	for i, in := range inputs {
		s, err := tsdata.NewSeries(tsdata.SeriesID(i), in.Times, in.Values)
		if err != nil {
			return nil, fmt.Errorf("temporalrank: object %d: %w", i, err)
		}
		series[i] = s
	}
	ds, err := tsdata.NewDataset(series)
	if err != nil {
		return nil, err
	}
	return &DB{ds: ds}, nil
}

// segmentObjects converts raw per-object samples to piecewise-linear
// SeriesInput via the chosen segmentation — the shared front half of
// NewDBFromSamples and NewClusterFromSamples.
func segmentObjects(objects [][]Sample, method SegmentationMethod, errBudget float64) ([]SeriesInput, error) {
	if len(objects) == 0 {
		return nil, fmt.Errorf("temporalrank: no objects given: %w", ErrNoInput)
	}
	inputs := make([]SeriesInput, len(objects))
	for i, samples := range objects {
		var (
			res pla.Result
			err error
		)
		switch method {
		case SegmentConnect:
			res.Times = make([]float64, len(samples))
			res.Values = make([]float64, len(samples))
			for j, s := range samples {
				res.Times[j] = s.T
				res.Values[j] = s.V
			}
		case SegmentSlidingWindow:
			res, err = pla.SlidingWindow(samples, errBudget)
		case SegmentBottomUp:
			res, err = pla.BottomUp(samples, errBudget)
		default:
			return nil, fmt.Errorf("temporalrank: unknown segmentation method %d", method)
		}
		if err != nil {
			return nil, fmt.Errorf("temporalrank: object %d: %w", i, err)
		}
		inputs[i] = SeriesInput{Times: res.Times, Values: res.Values}
	}
	return inputs, nil
}

// TopKAvg ranks by the average score avg_i(t1,t2) = σ_i(t1,t2)/(t2−t1).
// Since the divisor is shared, the ranking equals the sum ranking (§4:
// sum "automatically implies support for the avg aggregation"); only
// the reported scores are rescaled.
//
// Deprecated: use Run with a Query{Agg: AggAvg}. TopKAvg remains as a
// thin wrapper.
func (ix *Index) TopKAvg(k int, t1, t2 float64) ([]Result, error) {
	return ix.topKAvg(k, t1, t2)
}

func (ix *Index) topKAvg(k int, t1, t2 float64) ([]Result, error) {
	if t2 <= t1 {
		return nil, fmt.Errorf("temporalrank: %w: avg needs t2 > t1, got [%g,%g]", ErrBadInterval, t1, t2)
	}
	res, err := ix.topK(k, t1, t2)
	if err != nil {
		return nil, err
	}
	rescaleAvg(res, t1, t2)
	return res, nil
}

// InstantTopK answers the instant query top-k(t): the k objects with
// the largest g_i(t). Supported natively by EXACT3 (one stabbing
// query); other methods fall back to the in-memory data, since the
// paper treats instants as its predecessor's problem.
//
// Deprecated: use Run with a Query{Agg: AggInstant}. InstantTopK
// remains as a thin wrapper.
func (ix *Index) InstantTopK(k int, t float64) ([]Result, error) {
	return ix.instantTopK(k, t)
}

func (ix *Index) instantTopK(k int, t float64) ([]Result, error) {
	ix.mu.RLock()
	if e3, ok := ix.m.(*exact.Exact3); ok {
		defer ix.mu.RUnlock()
		items, err := e3.InstantTopK(k, t)
		if err != nil {
			return nil, err
		}
		return toResults(items), nil
	}
	ix.mu.RUnlock()
	return ix.db.InstantTopK(k, t), nil
}

// InstantTopK computes the instant query against the in-memory data.
//
// Deprecated: use Run with a Query{Agg: AggInstant}. InstantTopK
// remains as a thin wrapper.
func (db *DB) InstantTopK(k int, t float64) []Result {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c := topk.GetCollector(k)
	defer c.Release()
	for _, s := range db.ds.AllSeries() {
		c.Add(s.ID, s.At(t))
	}
	return toResults(c.Results())
}
