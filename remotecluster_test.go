package temporalrank_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"temporalrank"
)

// The distributed acceptance suite: RemoteCluster over real TCP
// sockets (loopback listeners, separate ShardNode instances per
// replica) must answer exactly like the same planners queried
// in-process, and must keep answering through replica kills and
// re-bootstraps.

// tierNode is one in-process shard server bound to a real socket.
type tierNode struct {
	dir  string
	addr string
	node *temporalrank.ShardNode
}

// bootNode starts a ShardNode over dir on addr ("" picks an ephemeral
// loopback port). The caller stops it via stop().
func bootNode(t *testing.T, dir, addr string) *tierNode {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	node, err := temporalrank.NewShardNode(dir)
	if err != nil {
		t.Fatalf("shard node %s: %v", dir, err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		node.Close()
		t.Fatalf("listen %s: %v", addr, err)
	}
	go node.Serve(ln)
	n := &tierNode{dir: dir, addr: ln.Addr().String(), node: node}
	t.Cleanup(func() { n.stop() })
	return n
}

func (n *tierNode) stop() { n.node.Close() }

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// buildTier checkpoints a cluster of `groups` shards built over inputs
// and boots `replicas` shard nodes per group, each hosting exactly its
// group's shard. It returns the booted nodes as nodes[group][replica]
// and the master snapshot directory.
func buildTier(t *testing.T, inputs []temporalrank.SeriesInput, groups, replicas int, indexes []temporalrank.Options) (nodes [][]*tierNode, masterDir string) {
	t.Helper()
	c, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{Shards: groups, Indexes: indexes})
	if err != nil {
		t.Fatal(err)
	}
	masterDir = t.TempDir()
	if err := c.Checkpoint(masterDir); err != nil {
		t.Fatal(err)
	}
	nodes = make([][]*tierNode, groups)
	for g := 0; g < groups; g++ {
		shardFile := fmt.Sprintf("shard-%04d.trsnap", g)
		nodes[g] = make([]*tierNode, replicas)
		for r := 0; r < replicas; r++ {
			dir := filepath.Join(t.TempDir(), fmt.Sprintf("g%dr%d", g, r))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			copyFile(t, filepath.Join(masterDir, shardFile), filepath.Join(dir, shardFile))
			nodes[g][r] = bootNode(t, dir, "")
		}
	}
	return nodes, masterDir
}

// groupAddrs projects the booted nodes into NewRemoteCluster's input.
func groupAddrs(nodes [][]*tierNode) [][]string {
	out := make([][]string, len(nodes))
	for g, reps := range nodes {
		for _, n := range reps {
			out[g] = append(out[g], n.addr)
		}
	}
	return out
}

// testIndexes is the index set the distributed suite runs: one exact
// family and the most involved approximate one, so both routing
// outcomes cross the wire.
func testIndexes() []temporalrank.Options {
	return []temporalrank.Options{
		{Method: temporalrank.MethodExact3},
		{Method: temporalrank.MethodAppx2P, TargetR: 100, KMax: 50},
	}
}

// randomQueries yields the sum/avg/instant sweep the equivalence
// trials run, mixing exact and approximate tolerance.
func randomQueries(rng *rand.Rand, start, span float64) []temporalrank.Query {
	t1 := start + rng.Float64()*span*0.8
	t2 := t1 + rng.Float64()*span*0.2
	k := 1 + rng.Intn(12)
	eps := 0.0
	if rng.Intn(2) == 1 {
		eps = 0.5
	}
	return []temporalrank.Query{
		{Agg: temporalrank.AggSum, K: k, T1: t1, T2: t2, MaxEpsilon: eps},
		{Agg: temporalrank.AggAvg, K: k, T1: t1, T2: t2, MaxEpsilon: eps},
		{Agg: temporalrank.AggInstant, K: k, T1: t1, MaxEpsilon: eps},
	}
}

// TestRemoteClusterEquivalence is the load-bearing acceptance test:
// for groups {1,2} x replicas {1,2}, a RemoteCluster over sockets must
// answer every randomized sum/avg/instant query bit-identically to an
// in-process cluster restored from the same snapshots (same Results,
// Method, Exact, Epsilon), and exact queries must match the
// brute-force DB reference.
func TestRemoteClusterEquivalence(t *testing.T) {
	inputs := clusterInputs(t, 60, 25, 17)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	span := db.End() - db.Start()
	for _, groups := range []int{1, 2} {
		for _, replicas := range []int{1, 2} {
			t.Run(fmt.Sprintf("groups=%d/replicas=%d", groups, replicas), func(t *testing.T) {
				nodes, masterDir := buildTier(t, inputs, groups, replicas, testIndexes())
				local, err := temporalrank.OpenClusterSnapshot(masterDir, temporalrank.ClusterOptions{})
				if err != nil {
					t.Fatal(err)
				}
				rc, err := temporalrank.NewRemoteCluster(groupAddrs(nodes), temporalrank.RemoteClusterOptions{
					HealthInterval: -1, // driven manually; keeps trials deterministic
				})
				if err != nil {
					t.Fatal(err)
				}
				defer rc.Close()
				if rc.NumShards() != groups || rc.NumSeries() != db.NumSeries() {
					t.Fatalf("topology: %d shards / %d series, want %d / %d",
						rc.NumShards(), rc.NumSeries(), groups, db.NumSeries())
				}
				rng := rand.New(rand.NewSource(int64(groups*10 + replicas)))
				for trial := 0; trial < 15; trial++ {
					for _, q := range randomQueries(rng, db.Start(), span) {
						got, err := rc.Run(ctx, q)
						if err != nil {
							t.Fatalf("remote agg=%s: %v", q.Agg, err)
						}
						want, err := local.Run(ctx, q)
						if err != nil {
							t.Fatalf("local agg=%s: %v", q.Agg, err)
						}
						label := fmt.Sprintf("agg=%s eps=%g", q.Agg, q.MaxEpsilon)
						sameResults(t, label, got.Results, want.Results)
						if got.Method != want.Method || got.Exact != want.Exact || got.Epsilon != want.Epsilon {
							t.Fatalf("%s: merged answer (%s, exact=%v, eps=%g) != local (%s, exact=%v, eps=%g)",
								label, got.Method, got.Exact, got.Epsilon, want.Method, want.Exact, want.Epsilon)
						}
						if q.MaxEpsilon == 0 {
							ref, err := db.Run(ctx, q)
							if err != nil {
								t.Fatal(err)
							}
							sameRanking(t, label+" vs DB", got.Results, ref.Results)
						}
					}
				}
			})
		}
	}
}

// TestRemoteClusterScoreAndErrors checks the per-object paths and
// typed error propagation across the wire.
func TestRemoteClusterScoreAndErrors(t *testing.T) {
	inputs := clusterInputs(t, 30, 15, 5)
	nodes, _ := buildTier(t, inputs, 2, 1, []temporalrank.Options{{Method: temporalrank.MethodExact3}})
	rc, err := temporalrank.NewRemoteCluster(groupAddrs(nodes), temporalrank.RemoteClusterOptions{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < db.NumSeries(); id += 7 {
		got, err := rc.Score(id, db.Start(), db.End())
		if err != nil {
			t.Fatalf("score %d: %v", id, err)
		}
		want, err := db.Score(id, db.Start(), db.End())
		if err != nil {
			t.Fatal(err)
		}
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		scale := want
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		if diff > 1e-9*scale {
			t.Fatalf("score %d: got %g, want %g", id, got, want)
		}
	}
	if _, err := rc.Score(db.NumSeries()+5, 0, 1); !errors.Is(err, temporalrank.ErrUnknownSeries) {
		t.Fatalf("out-of-range score: %v", err)
	}
	if err := rc.Append(-1, 0, 0); !errors.Is(err, temporalrank.ErrUnknownSeries) {
		t.Fatalf("out-of-range append: %v", err)
	}
	// An invalid query fails typed across the wire, not as a transport
	// error.
	if _, err := rc.Run(context.Background(), temporalrank.Query{K: 1, T1: 10, T2: 5}); !errors.Is(err, temporalrank.ErrBadInterval) {
		t.Fatalf("inverted interval: %v", err)
	}
}

// TestRemoteClusterKillReplicaMidRun kills one replica per group while
// randomized queries are in flight: every query must keep succeeding
// (transport failover inside the group read) and keep answering
// exactly like the brute-force reference.
func TestRemoteClusterKillReplicaMidRun(t *testing.T) {
	inputs := clusterInputs(t, 60, 20, 23)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	nodes, _ := buildTier(t, inputs, 2, 2, []temporalrank.Options{{Method: temporalrank.MethodExact3}})
	rc, err := temporalrank.NewRemoteCluster(groupAddrs(nodes), temporalrank.RemoteClusterOptions{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	ctx := context.Background()
	span := db.End() - db.Start()
	stop := make(chan struct{})
	failures := make(chan error, 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				t1 := db.Start() + rng.Float64()*span*0.8
				t2 := t1 + rng.Float64()*span*0.2
				q := temporalrank.SumQuery(1+rng.Intn(10), t1, t2)
				got, err := rc.Run(ctx, q)
				if err != nil {
					failures <- fmt.Errorf("query during kill: %w", err)
					return
				}
				want, err := db.Run(ctx, q)
				if err != nil {
					failures <- err
					return
				}
				for j := range want.Results {
					if got.Results[j].ID != want.Results[j].ID {
						failures <- fmt.Errorf("rank %d: got ID %d, want %d", j, got.Results[j].ID, want.Results[j].ID)
						return
					}
				}
			}
		}(int64(w) + 100)
	}
	time.Sleep(50 * time.Millisecond) // let queries get in flight
	for g := range nodes {
		nodes[g][1].stop() // kill one replica per group mid-run
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(failures)
	for err := range failures {
		t.Error(err)
	}
	// With one replica per group gone, queries must still answer.
	if _, err := rc.Run(ctx, temporalrank.SumQuery(5, db.Start(), db.End())); err != nil {
		t.Fatalf("query after kill: %v", err)
	}
}

// TestRemoteClusterReplicaCatchUp is the bootstrap acceptance test: a
// replica killed, wiped, and restarted empty must catch up via the
// primary's streamed snapshot (including appends it missed) and then
// serve bit-identical answers on its own.
func TestRemoteClusterReplicaCatchUp(t *testing.T) {
	inputs := clusterInputs(t, 40, 15, 31)
	nodes, _ := buildTier(t, inputs, 2, 2, testIndexes())
	rc, err := temporalrank.NewRemoteCluster(groupAddrs(nodes), temporalrank.RemoteClusterOptions{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	ctx := context.Background()

	// Kill replica 1 of each group and wipe its state entirely.
	for g := range nodes {
		n := nodes[g][1]
		n.stop()
		if err := os.RemoveAll(n.dir); err != nil {
			t.Fatal(err)
		}
	}
	// Appends land on the surviving primaries (and mark the dead
	// replicas Down on the way).
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 30; i++ {
		id := rng.Intn(rc.NumSeries())
		if err := rc.Append(id, 1e6+float64(i), rng.Float64()*10); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// Capture the post-append answers while only the primaries serve.
	queries := []temporalrank.Query{
		temporalrank.SumQuery(10, 0, 1e6+30),
		temporalrank.AvgQuery(7, 100, 1e6),
		temporalrank.InstantQuery(5, 1e6+15),
		{Agg: temporalrank.AggSum, K: 8, T1: 0, T2: 1e6, MaxEpsilon: 0.5},
	}
	expected := make([]temporalrank.Answer, len(queries))
	for i, q := range queries {
		expected[i], err = rc.Run(ctx, q)
		if err != nil {
			t.Fatalf("pre-catch-up query %d: %v", i, err)
		}
	}

	// Restart the wiped replicas empty, on their original addresses.
	for g := range nodes {
		old := nodes[g][1]
		nodes[g][1] = bootNode(t, old.dir, old.addr)
	}
	// One health sweep must re-bootstrap them from the primaries.
	if err := rc.HealthCheck(ctx); err != nil {
		t.Fatalf("health check: %v", err)
	}
	for _, gh := range rc.Health() {
		for _, rh := range gh.Replicas {
			if rh.State != "live" {
				t.Fatalf("shard %d replica %s is %s after catch-up, want live", gh.Shard, rh.Addr, rh.State)
			}
		}
	}
	// Kill the primaries: the caught-up replicas now serve alone and
	// must answer bit-identically, appends included.
	for g := range nodes {
		nodes[g][0].stop()
	}
	for i, q := range queries {
		got, err := rc.Run(ctx, q)
		if err != nil {
			t.Fatalf("post-catch-up query %d: %v", i, err)
		}
		sameResults(t, fmt.Sprintf("catch-up query %d", i), got.Results, expected[i].Results)
		if got.Method != expected[i].Method || got.Exact != expected[i].Exact || got.Epsilon != expected[i].Epsilon {
			t.Fatalf("catch-up query %d: answer metadata diverged", i)
		}
	}
}

// TestRemoteClusterAllGroupsDown checks the typed degradation: with
// every replica of a group gone, queries fail with ErrShardUnavailable
// (not a hang, not an untyped error).
func TestRemoteClusterAllGroupsDown(t *testing.T) {
	inputs := clusterInputs(t, 20, 10, 3)
	nodes, _ := buildTier(t, inputs, 1, 2, []temporalrank.Options{{Method: temporalrank.MethodExact3}})
	rc, err := temporalrank.NewRemoteCluster(groupAddrs(nodes), temporalrank.RemoteClusterOptions{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for _, n := range nodes[0] {
		n.stop()
	}
	_, err = rc.Run(context.Background(), temporalrank.SumQuery(5, 0, 100))
	if !errors.Is(err, temporalrank.ErrShardUnavailable) {
		t.Fatalf("want ErrShardUnavailable, got %v", err)
	}
}
