package temporalrank_test

import (
	"context"
	"testing"

	"temporalrank"
)

// This file pins the planner-level contract of scoped cache
// invalidation: a cached answer is served iff no append since it was
// stored overlaps its (series, time-range) footprint — so frontier
// writes keep answers about the past hot — and the scoped policy's hit
// ratio strictly beats the coarse global-nuke baseline on a mixed
// workload.

func scopedFixture(t *testing.T, memtable bool) (*temporalrank.DB, *temporalrank.Planner) {
	t.Helper()
	inputs := clusterInputs(t, 30, 20, 271)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := temporalrank.NewPlanner(db, ix)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableResultCache(32)
	if memtable {
		if err := p.EnableMemtable(temporalrank.MemtableOptions{DisableAutoCompact: true}); err != nil {
			t.Fatal(err)
		}
	}
	return db, p
}

// TestScopedInvalidationServesIffNoOverlap: in both append modes
// (direct and memtable), a frontier append leaves past-window answers
// cached and invalidates exactly the answers whose window reaches the
// appended range.
func TestScopedInvalidationServesIffNoOverlap(t *testing.T) {
	for _, memtable := range []bool{false, true} {
		name := "direct"
		if memtable {
			name = "memtable"
		}
		t.Run(name, func(t *testing.T) {
			db, p := scopedFixture(t, memtable)
			ctx := context.Background()
			mid := db.Start() + db.Span()*0.5
			past := temporalrank.SumQuery(5, db.Start(), mid) // never touches the frontier
			wide := temporalrank.SumQuery(5, db.Start(), db.End()+100)

			hits := func() uint64 {
				st, ok := p.CacheStats()
				if !ok {
					t.Fatal("cache stats unavailable")
				}
				return st.Hits
			}
			mustRun := func(q temporalrank.Query) temporalrank.Answer {
				t.Helper()
				ans, err := p.Run(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				return ans
			}

			mustRun(past) // cold miss, stores
			mustRun(wide) // cold miss, stores
			h0 := hits()
			mustRun(past)
			mustRun(wide)
			if got := hits(); got != h0+2 {
				t.Fatalf("warm re-runs: %d hits, want %d", got, h0+2)
			}

			// Frontier append: past every series end, so inside wide's
			// [start, end+100] but outside past's [start, mid]. It must
			// invalidate wide and leave past cached.
			if err := p.Append(3, db.End()+1, 42); err != nil {
				t.Fatal(err)
			}
			h1 := hits()
			mustRun(past)
			if got := hits(); got != h1+1 {
				t.Fatalf("past-window answer was invalidated by a frontier append (hits %d, want %d)", got, h1+1)
			}
			wideAns := mustRun(wide)
			if got := hits(); got != h1+1 {
				t.Fatal("frontier-covering answer served stale from cache")
			}
			if len(wideAns.Results) == 0 {
				t.Fatal("recomputed answer is empty")
			}
		})
	}
}

// TestScopedHitRatioBeatsCoarsePlanner is the end-to-end A/B: the same
// frontier-writer mixed workload, scoped vs SetCoarseInvalidation, and
// the scoped hit ratio must be strictly better.
func TestScopedHitRatioBeatsCoarsePlanner(t *testing.T) {
	run := func(coarse bool) float64 {
		db, p := scopedFixture(t, true)
		p.SetCoarseInvalidation(coarse)
		ctx := context.Background()
		mid := db.Start() + db.Span()*0.5
		queries := []temporalrank.Query{
			temporalrank.SumQuery(5, db.Start(), mid),
			temporalrank.AvgQuery(3, db.Start(), mid*0.7),
			temporalrank.InstantQuery(4, mid*0.3),
		}
		tt := db.End()
		for i := 0; i < 50; i++ {
			tt += 0.5
			if err := p.Append(i%db.NumSeries(), tt, 1); err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				if _, err := p.Run(ctx, q); err != nil {
					t.Fatal(err)
				}
			}
		}
		st, ok := p.CacheStats()
		if !ok {
			t.Fatal("cache stats unavailable")
		}
		return st.HitRatio()
	}
	scoped := run(false)
	coarse := run(true)
	if scoped <= coarse {
		t.Fatalf("scoped hit ratio %.3f not strictly better than coarse %.3f", scoped, coarse)
	}
	if scoped < 0.9 {
		t.Fatalf("frontier writes should barely disturb past-window queries: scoped ratio %.3f", scoped)
	}
}
