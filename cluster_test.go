package temporalrank_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"temporalrank"
	"temporalrank/internal/gen"
)

// clusterInputs converts a deterministic random-walk dataset into the
// SeriesInput form shared by NewDB and NewCluster.
func clusterInputs(t *testing.T, m, navg int, seed int64) []temporalrank.SeriesInput {
	t.Helper()
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: m, Navg: navg, Seed: seed, Span: 300})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]temporalrank.SeriesInput, ds.NumSeries())
	for i, s := range ds.AllSeries() {
		nv := s.NumSegments() + 1
		in := temporalrank.SeriesInput{Times: make([]float64, nv), Values: make([]float64, nv)}
		for j := 0; j < nv; j++ {
			in.Times[j] = s.VertexTime(j)
			in.Values[j] = s.VertexValue(j)
		}
		inputs[i] = in
	}
	return inputs
}

func sameResults(t *testing.T, label string, got, want []temporalrank.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for j := range want {
		if got[j].ID != want[j].ID || got[j].Score != want[j].Score {
			t.Fatalf("%s rank %d: got (%d, %g), want (%d, %g)",
				label, j, got[j].ID, got[j].Score, want[j].ID, want[j].Score)
		}
	}
}

// sameRanking is sameResults with a relative score tolerance, for
// index-backed answers whose prefix-sum evaluation differs from the
// brute-force reference by float rounding (last-ulp noise).
func sameRanking(t *testing.T, label string, got, want []temporalrank.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for j := range want {
		diff := got[j].Score - want[j].Score
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if s := want[j].Score; s > 1 || s < -1 {
			if s < 0 {
				s = -s
			}
			scale = s
		}
		if got[j].ID != want[j].ID || diff > 1e-9*scale {
			t.Fatalf("%s rank %d: got (%d, %g), want (%d, %g)",
				label, j, got[j].ID, got[j].Score, want[j].ID, want[j].Score)
		}
	}
}

// TestClusterEquivalence is the randomized acceptance suite: for shard
// counts {1, 2, 8}, both partitioners, and all three aggregates, a
// Cluster over partitioned data must answer exactly like a single DB
// over all of it — same IDs, same scores, same tie order.
func TestClusterEquivalence(t *testing.T) {
	inputs := clusterInputs(t, 60, 30, 11)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	span := db.End() - db.Start()
	for _, shards := range []int{1, 2, 8} {
		for _, part := range []struct {
			name string
			p    temporalrank.Partitioner
		}{{"hash", temporalrank.HashPartition}, {"modulo", temporalrank.ModuloPartition}} {
			c, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{
				Shards: shards, Partitioner: part.p,
			})
			if err != nil {
				t.Fatalf("shards=%d %s: %v", shards, part.name, err)
			}
			if c.NumSeries() != db.NumSeries() || c.NumSegments() != db.NumSegments() {
				t.Fatalf("shards=%d %s: cluster shape (%d, %d) != db (%d, %d)",
					shards, part.name, c.NumSeries(), c.NumSegments(), db.NumSeries(), db.NumSegments())
			}
			rng := rand.New(rand.NewSource(int64(shards)*100 + 7))
			for trial := 0; trial < 20; trial++ {
				t1 := db.Start() + rng.Float64()*span*0.8
				t2 := t1 + rng.Float64()*span*0.2
				k := 1 + rng.Intn(12)
				queries := []temporalrank.Query{
					temporalrank.SumQuery(k, t1, t2),
					temporalrank.AvgQuery(k, t1, t2),
					temporalrank.InstantQuery(k, t1),
				}
				for _, q := range queries {
					want, err := db.Run(ctx, q)
					if err != nil {
						t.Fatal(err)
					}
					got, err := c.Run(ctx, q)
					if err != nil {
						t.Fatalf("shards=%d %s agg=%s: %v", shards, part.name, q.Agg, err)
					}
					sameResults(t, string(q.Agg), got.Results, want.Results)
					if !got.Exact || got.Epsilon != 0 {
						t.Fatalf("brute-force shards must answer exactly: %+v", got)
					}
					if got.Method != temporalrank.MethodReference {
						t.Fatalf("uniform shards reported method %q", got.Method)
					}
				}
			}
		}
	}
}

// TestClusterIndexedEquivalence repeats the equivalence check with an
// exact index on every shard, so the scatter path exercises the planner
// and real device IO.
func TestClusterIndexedEquivalence(t *testing.T) {
	inputs := clusterInputs(t, 50, 25, 3)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	span := db.End() - db.Start()
	for _, shards := range []int{1, 2, 8} {
		c, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{
			Shards:  shards,
			Indexes: []temporalrank.Options{{Method: temporalrank.MethodExact3}},
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(shards)))
		for trial := 0; trial < 15; trial++ {
			t1 := db.Start() + rng.Float64()*span*0.7
			t2 := t1 + rng.Float64()*span*0.3
			k := 1 + rng.Intn(10)
			want, err := db.Run(ctx, temporalrank.SumQuery(k, t1, t2))
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Run(ctx, temporalrank.SumQuery(k, t1, t2))
			if err != nil {
				t.Fatal(err)
			}
			sameRanking(t, "indexed sum", got.Results, want.Results)
			if got.Method != temporalrank.MethodExact3 {
				t.Fatalf("uniform EXACT3 shards reported %q", got.Method)
			}
			if !got.Exact {
				t.Fatalf("exact shards produced approximate answer: %+v", got)
			}
			if got.IOs == 0 {
				t.Fatal("indexed scatter reported zero IOs")
			}
		}
	}
}

// TestClusterTieBreak: identical constant series force every score
// equal, so the merged ranking must be ascending global IDs for any
// shard count — cross-shard determinism, the regression the
// deterministic merge exists for.
func TestClusterTieBreak(t *testing.T) {
	const m = 17
	inputs := make([]temporalrank.SeriesInput, m)
	for i := range inputs {
		inputs[i] = temporalrank.SeriesInput{Times: []float64{0, 10}, Values: []float64{2, 2}}
	}
	ctx := context.Background()
	for _, shards := range []int{1, 2, 8} {
		c, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		ans, err := c.Run(ctx, temporalrank.SumQuery(5, 1, 9))
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Results) != 5 {
			t.Fatalf("shards=%d: %d results", shards, len(ans.Results))
		}
		for j, r := range ans.Results {
			if r.ID != j {
				t.Fatalf("shards=%d rank %d: ID %d, want %d (ascending-ID tie order)", shards, j, r.ID, j)
			}
		}
	}
}

// TestClusterApproxMetadata checks the merged Answer metadata over
// approximate shards: ε is the max shard ε, Exact is false, and a
// uniform method is preserved.
func TestClusterApproxMetadata(t *testing.T) {
	inputs := clusterInputs(t, 40, 25, 9)
	c, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{
		Shards:  4,
		Indexes: []temporalrank.Options{{Method: temporalrank.MethodAppx2, TargetR: 40, KMax: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var maxEps float64
	for _, p := range c.Planners() {
		if p == nil {
			continue
		}
		for _, ix := range p.Indexes() {
			if e := ix.Epsilon(); e > maxEps {
				maxEps = e
			}
		}
	}
	if maxEps <= 0 {
		t.Fatal("approximate shards built with eps 0")
	}
	ans, err := c.Run(context.Background(), temporalrank.Query{
		K: 5, T1: c.Start(), T2: c.End(), MaxEpsilon: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Exact {
		t.Fatal("approximate shards produced Exact answer")
	}
	if ans.Epsilon != maxEps {
		t.Fatalf("merged epsilon %g, want max shard epsilon %g", ans.Epsilon, maxEps)
	}
	if ans.Method != temporalrank.MethodAppx2 {
		t.Fatalf("uniform APPX2 shards reported %q", ans.Method)
	}
}

// TestClusterCancellation: a cancelled context aborts the scatter with
// ctx.Err, both before it starts and mid-flight.
func TestClusterCancellation(t *testing.T) {
	inputs := clusterInputs(t, 64, 60, 5)
	c, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{Shards: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(ctx, temporalrank.SumQuery(3, c.Start(), c.End())); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Run: err = %v, want context.Canceled", err)
	}
	// Mid-scatter: fire many runs while cancelling concurrently; every
	// run must either succeed fully or fail with the context error —
	// never a partial merge.
	for trial := 0; trial < 20; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			cancel()
			close(done)
		}()
		ans, err := c.Run(ctx, temporalrank.SumQuery(5, c.Start(), c.End()))
		<-done
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("trial %d: err = %v, want context.Canceled", trial, err)
			}
			if len(ans.Results) != 0 {
				t.Fatalf("trial %d: failed Run returned partial results", trial)
			}
		} else if len(ans.Results) != 5 {
			t.Fatalf("trial %d: successful Run returned %d results", trial, len(ans.Results))
		}
	}
}

// TestClusterAppend drives the sharded ingest path, including the
// formerly-blocked multi-index shard, and re-checks equivalence after
// the appends.
func TestClusterAppend(t *testing.T) {
	inputs := clusterInputs(t, 30, 15, 21)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{
		Shards: 4,
		Indexes: []temporalrank.Options{
			{Method: temporalrank.MethodExact3},
			{Method: temporalrank.MethodAppx2, TargetR: 40, KMax: 20},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(77))
	tcur := db.End()
	for i := 0; i < 60; i++ {
		id := rng.Intn(db.NumSeries())
		tcur += 0.5
		v := rng.NormFloat64() * 10
		if err := c.Append(id, tcur, v); err != nil {
			t.Fatalf("cluster append %d: %v", i, err)
		}
		if err := db.Append(id, tcur, v); err != nil {
			t.Fatalf("db append %d: %v", i, err)
		}
	}
	if c.End() != db.End() {
		t.Fatalf("cluster end %g != db end %g after appends", c.End(), db.End())
	}
	span := db.End() - db.Start()
	for trial := 0; trial < 20; trial++ {
		t1 := db.Start() + rng.Float64()*span*0.8
		t2 := t1 + rng.Float64()*span*0.2
		want, err := db.Run(ctx, temporalrank.SumQuery(5, t1, t2))
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Run(ctx, temporalrank.SumQuery(5, t1, t2))
		if err != nil {
			t.Fatal(err)
		}
		sameRanking(t, "post-append", got.Results, want.Results)
	}
}

// TestClusterScoreAndRouting covers Score routing (exact and unknown
// IDs) and the shard layout invariants.
func TestClusterScoreAndRouting(t *testing.T) {
	inputs := clusterInputs(t, 25, 20, 31)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{
		Shards:  3,
		Indexes: []temporalrank.Options{{Method: temporalrank.MethodExact2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := db.Start(), db.End()
	for id := 0; id < db.NumSeries(); id++ {
		want, err := db.Score(id, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Score(id, t1, t2)
		if err != nil {
			t.Fatalf("score %d: %v", id, err)
		}
		if got != want {
			t.Fatalf("score %d: got %g, want %g", id, got, want)
		}
	}
	if _, err := c.Score(-1, t1, t2); !errors.Is(err, temporalrank.ErrUnknownSeries) {
		t.Fatalf("negative id: %v", err)
	}
	if _, err := c.Score(db.NumSeries(), t1, t2); !errors.Is(err, temporalrank.ErrUnknownSeries) {
		t.Fatalf("out-of-range id: %v", err)
	}
	if err := c.Append(db.NumSeries()+5, 1e9, 0); !errors.Is(err, temporalrank.ErrUnknownSeries) {
		t.Fatalf("append out-of-range id: %v", err)
	}
	st := c.Stats()
	if st.Shards != 3 || st.Objects != 25 || st.Segments != db.NumSegments() {
		t.Fatalf("cluster stats %+v", st)
	}
	total := 0
	for _, sh := range st.PerShard {
		total += sh.Objects
	}
	if total != 25 {
		t.Fatalf("per-shard objects sum to %d, want 25", total)
	}
}

// TestClusterMoreShardsThanSeries: empty shards must be harmless.
func TestClusterMoreShardsThanSeries(t *testing.T) {
	inputs := clusterInputs(t, 3, 10, 41)
	c, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := db.Run(ctx, temporalrank.SumQuery(3, db.Start(), db.End()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(ctx, temporalrank.SumQuery(3, c.Start(), c.End()))
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "sparse cluster", got.Results, want.Results)
}

// TestPlannerAppendMultiIndex: the single-node half of the sharded
// ingest path — one append through Planner.Append must advance the DB
// and every index (exact and approximate) consistently.
func TestPlannerAppendMultiIndex(t *testing.T) {
	inputs := clusterInputs(t, 20, 15, 51)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact2})
	if err != nil {
		t.Fatal(err)
	}
	e3, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	apx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodAppx2P, TargetR: 30, KMax: 15})
	if err != nil {
		t.Fatal(err)
	}
	p, err := temporalrank.NewPlanner(db, e2, e3, apx)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	tcur := db.End()
	for i := 0; i < 50; i++ {
		id := rng.Intn(db.NumSeries())
		tcur += 1
		v := rng.NormFloat64() * 5
		if err := p.Append(id, tcur, v); err != nil {
			t.Fatalf("planner append %d: %v", i, err)
		}
		if err := ref.Append(id, tcur, v); err != nil {
			t.Fatal(err)
		}
	}
	if db.NumSegments() != ref.NumSegments() || db.End() != ref.End() {
		t.Fatalf("db shape (%d, %g) != ref (%d, %g)",
			db.NumSegments(), db.End(), ref.NumSegments(), ref.End())
	}
	// A stale frontier would make the next append through any index
	// fail; every index must also answer the exact query correctly.
	ctx := context.Background()
	t1 := db.Start() + db.Span()*0.3
	t2 := db.Start() + db.Span()*0.9
	want, err := ref.Run(ctx, temporalrank.SumQuery(5, t1, t2))
	if err != nil {
		t.Fatal(err)
	}
	for _, ix := range []*temporalrank.Index{e2, e3} {
		got, err := ix.Run(ctx, temporalrank.SumQuery(5, t1, t2))
		if err != nil {
			t.Fatalf("%s: %v", ix.Method(), err)
		}
		sameRanking(t, string(ix.Method()), got.Results, want.Results)
	}
	// And each index accepts the next append (frontiers advanced).
	if err := p.Append(0, tcur+1, 1); err != nil {
		t.Fatalf("append after batch: %v", err)
	}
	// An append behind the frontier fails atomically: nothing advances.
	segsBefore := db.NumSegments()
	if err := p.Append(0, tcur-100, 1); err == nil {
		t.Fatal("stale append should fail")
	}
	if db.NumSegments() != segsBefore {
		t.Fatal("failed append advanced the dataset")
	}
	if err := p.Append(1, tcur+2, 1); err != nil {
		t.Fatalf("append after failed append: %v", err)
	}
}

// TestNewClusterFromSamples covers the sharded segmentation ingest.
func TestNewClusterFromSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	objects := make([][]temporalrank.Sample, 12)
	for i := range objects {
		samples := make([]temporalrank.Sample, 80)
		v := rng.NormFloat64()
		for j := range samples {
			v += rng.NormFloat64()
			samples[j] = temporalrank.Sample{T: float64(j), V: v}
		}
		objects[i] = samples
	}
	db, err := temporalrank.NewDBFromSamples(objects, temporalrank.SegmentBottomUp, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := temporalrank.NewClusterFromSamples(objects, temporalrank.SegmentBottomUp, 0.5, temporalrank.ClusterOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSegments() != db.NumSegments() {
		t.Fatalf("cluster segments %d != db %d", c.NumSegments(), db.NumSegments())
	}
	ctx := context.Background()
	want, err := db.Run(ctx, temporalrank.SumQuery(4, db.Start(), db.End()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(ctx, temporalrank.SumQuery(4, c.Start(), c.End()))
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "from samples", got.Results, want.Results)
}

// TestNewClusterFromDB: re-partitioning a DB must preserve answers.
func TestNewClusterFromDB(t *testing.T) {
	inputs := clusterInputs(t, 30, 20, 71)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := temporalrank.NewClusterFromDB(db, temporalrank.ClusterOptions{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := db.Run(ctx, temporalrank.SumQuery(6, db.Start(), db.End()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(ctx, temporalrank.SumQuery(6, c.Start(), c.End()))
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "from db", got.Results, want.Results)
}

// TestClusterBadOptions covers construction validation.
func TestClusterBadOptions(t *testing.T) {
	inputs := clusterInputs(t, 4, 5, 81)
	if _, err := temporalrank.NewCluster(nil, temporalrank.ClusterOptions{}); err == nil {
		t.Fatal("no series should fail")
	}
	if _, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{Shards: -2}); err == nil {
		t.Fatal("negative shards should fail")
	}
	bad := func(id, shards int) int { return shards + 3 }
	if _, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{Shards: 2, Partitioner: bad}); err == nil {
		t.Fatal("out-of-range partitioner should fail")
	}
}
