// Serving hot-path benchmarks: the result cache and the zero-alloc
// query scans. Unlike bench_test.go (which reproduces the paper's
// figures), these measure the read path a production deployment
// actually serves — repeated and concurrent queries through a Planner.
package temporalrank_test

import (
	"context"
	"testing"

	"temporalrank"
	"temporalrank/internal/gen"
)

func benchPlanner(b testing.TB, resultCache int) (*temporalrank.DB, *temporalrank.Planner) {
	b.Helper()
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: 300, Navg: 60, Seed: 3, Span: 1000})
	if err != nil {
		b.Fatal(err)
	}
	db := temporalrank.NewDBFromDataset(ds)
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3, CacheBlocks: 1024})
	if err != nil {
		b.Fatal(err)
	}
	p, err := temporalrank.NewPlanner(db, ix)
	if err != nil {
		b.Fatal(err)
	}
	if resultCache > 0 {
		p.EnableResultCache(resultCache)
	}
	return db, p
}

// BenchmarkPlannerCachedRun measures a repeated-query workload through
// Planner.Run with and without the result cache. The uncached case
// re-runs the full index scan every iteration (its allocs/op are the
// scan's working set); the cached case answers from the versioned
// result cache after the first run. The acceptance bar is a measurable
// drop in allocs/op for the repeated query.
func BenchmarkPlannerCachedRun(b *testing.B) {
	ctx := context.Background()
	run := func(b *testing.B, resultCache int) {
		db, p := benchPlanner(b, resultCache)
		// A small rotation of repeated queries, as a zipfian serving mix
		// would see for its hot keys.
		span := db.Span()
		qs := make([]temporalrank.Query, 8)
		for i := range qs {
			t1 := db.Start() + span*float64(i)/16
			qs[i] = temporalrank.SumQuery(10, t1, t1+span/4)
		}
		// Warm every rotation slot before the clock starts, so the cached
		// case measures steady-state hits (CI asserts 0 allocs/op on it at
		// -benchtime=1x) rather than the first miss.
		for _, q := range qs {
			if _, err := p.Run(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(ctx, qs[i%len(qs)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, 0) })
	b.Run("cached", func(b *testing.B) { run(b, 64) })
}

// BenchmarkPlannerCachedRunParallel is the concurrent variant: under
// RunParallel the cached case also exercises request coalescing.
func BenchmarkPlannerCachedRunParallel(b *testing.B) {
	ctx := context.Background()
	run := func(b *testing.B, resultCache int) {
		db, p := benchPlanner(b, resultCache)
		q := temporalrank.SumQuery(10, db.Start()+db.Span()/4, db.End()-db.Span()/4)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := p.Run(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("uncached", func(b *testing.B) { run(b, 0) })
	b.Run("cached", func(b *testing.B) { run(b, 64) })
}
