package temporalrank_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"temporalrank"
	"temporalrank/internal/blockio"
)

// snapshotQueries is the query mix every round-trip test replays: the
// three aggregates over a few intervals and ks, including boundary
// intervals.
func snapshotQueries(rng *rand.Rand, start, end float64, trials int) []temporalrank.Query {
	span := end - start
	qs := []temporalrank.Query{
		temporalrank.SumQuery(5, start, end),
		temporalrank.AvgQuery(3, start, end),
		temporalrank.InstantQuery(4, start+span/2),
	}
	for i := 0; i < trials; i++ {
		t1 := start + rng.Float64()*span*0.7
		t2 := t1 + rng.Float64()*span*0.3
		k := 1 + rng.Intn(8)
		qs = append(qs,
			temporalrank.SumQuery(k, t1, t2),
			temporalrank.AvgQuery(k, t1, t2),
			temporalrank.InstantQuery(k, t1),
		)
	}
	return qs
}

// requireSameAnswers runs every query against both queriers and
// requires bit-identical results — restored structures are raw page
// images of the originals, so even float rounding must agree.
func requireSameAnswers(t *testing.T, label string, qs []temporalrank.Query, want, got temporalrank.Querier) {
	t.Helper()
	ctx := context.Background()
	for _, q := range qs {
		w, err := want.Run(ctx, q)
		if err != nil {
			t.Fatalf("%s: original %s k=%d: %v", label, q.Agg, q.K, err)
		}
		g, err := got.Run(ctx, q)
		if err != nil {
			t.Fatalf("%s: restored %s k=%d: %v", label, q.Agg, q.K, err)
		}
		sameResults(t, label+"/"+string(q.Agg), g.Results, w.Results)
	}
}

// TestSnapshotRoundTripAllMethods builds one index per method over a
// randomized dataset, checkpoints the whole planner, restores it, and
// requires every method to answer every aggregate identically — then
// appends through both stacks and checks again, so the restored
// frontiers and amortized-rebuild counters are exercised too.
func TestSnapshotRoundTripAllMethods(t *testing.T) {
	inputs := clusterInputs(t, 30, 20, 42)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	var ixs []*temporalrank.Index
	for i, m := range temporalrank.Methods() {
		opts := temporalrank.Options{Method: m, BlockSize: 512, KMax: 16, TargetR: 24}
		if i%2 == 0 {
			opts.CacheBlocks = 32 // alternate raw devices and buffer pools
		}
		ix, err := db.BuildIndex(opts)
		if err != nil {
			t.Fatalf("build %s: %v", m, err)
		}
		ixs = append(ixs, ix)
	}
	p, err := temporalrank.NewPlanner(db, ixs...)
	if err != nil {
		t.Fatal(err)
	}
	p.EnableResultCache(64)

	dev := blockio.NewMemDevice(512)
	if err := p.Checkpoint(dev); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	p2, err := temporalrank.OpenSnapshot(dev)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}

	if got, want := p2.DB().DataVersion(), p.DB().DataVersion(); got != want {
		t.Fatalf("restored data version %d, want %d", got, want)
	}
	if _, ok := p2.CacheStats(); !ok {
		t.Fatal("restored planner lost its result cache")
	}
	ixs2 := p2.Indexes()
	if len(ixs2) != len(ixs) {
		t.Fatalf("restored %d indexes, want %d", len(ixs2), len(ixs))
	}

	rng := rand.New(rand.NewSource(1))
	qs := snapshotQueries(rng, db.Start(), db.End(), 6)
	for i := range ixs {
		if ixs2[i].Method() != ixs[i].Method() {
			t.Fatalf("index %d restored as %s, want %s", i, ixs2[i].Method(), ixs[i].Method())
		}
		requireSameAnswers(t, "index/"+string(ixs[i].Method()), qs, ixs[i], ixs2[i])
	}
	requireSameAnswers(t, "planner", qs, p, p2)

	// Append the same segments through both stacks; every frontier,
	// Exact3 tail, and approximate mass counter must have restored
	// correctly for the answers to keep agreeing.
	for n := 0; n < 10; n++ {
		id := rng.Intn(db.NumSeries())
		tEnd := p.DB().End() + 0.5 + rng.Float64()
		v := rng.Float64()*10 - 5
		if err := p.Append(id, tEnd, v); err != nil {
			t.Fatalf("append original: %v", err)
		}
		if err := p2.Append(id, tEnd, v); err != nil {
			t.Fatalf("append restored: %v", err)
		}
	}
	qs2 := snapshotQueries(rng, db.Start(), p.DB().End(), 4)
	for i := range ixs {
		requireSameAnswers(t, "post-append/"+string(ixs[i].Method()), qs2, ixs[i], ixs2[i])
	}
}

// TestSnapshotSecondGenerationSupersedes checkpoints, mutates, and
// checkpoints again onto the same device: restore must see the second
// generation's data.
func TestSnapshotSecondGenerationSupersedes(t *testing.T) {
	inputs := clusterInputs(t, 10, 8, 3)
	db, err := temporalrank.NewDB(inputs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3, BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	p, err := temporalrank.NewPlanner(db, ix)
	if err != nil {
		t.Fatal(err)
	}
	dev := blockio.NewMemDevice(256)
	if err := p.Checkpoint(dev); err != nil {
		t.Fatal(err)
	}
	if err := p.Append(0, db.End()+1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(dev); err != nil {
		t.Fatal(err)
	}
	p2, err := temporalrank.OpenSnapshot(dev)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p2.DB().NumSegments(), p.DB().NumSegments(); got != want {
		t.Fatalf("restored %d segments, want %d (second generation)", got, want)
	}
	rng := rand.New(rand.NewSource(9))
	requireSameAnswers(t, "gen2", snapshotQueries(rng, db.Start(), db.End(), 4), p, p2)
}

// TestSnapshotRejectsGarbage checks the typed-error contract on things
// that are not snapshots.
func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := temporalrank.OpenSnapshot(blockio.NewMemDevice(256)); !errors.Is(err, temporalrank.ErrBadSnapshot) {
		t.Fatalf("empty device: got %v, want ErrBadSnapshot", err)
	}
	dev := blockio.NewMemDevice(256)
	buf := make([]byte, 256)
	for i := 0; i < 8; i++ {
		id, _ := dev.Alloc()
		for j := range buf {
			buf[j] = byte(i*31 + j)
		}
		if err := dev.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := temporalrank.OpenSnapshot(dev); !errors.Is(err, temporalrank.ErrBadSnapshot) {
		t.Fatalf("garbage device: got %v, want ErrBadSnapshot", err)
	}
	if _, err := temporalrank.OpenClusterSnapshot(t.TempDir(), temporalrank.ClusterOptions{}); !errors.Is(err, temporalrank.ErrBadSnapshot) {
		t.Fatalf("empty dir: got %v, want ErrBadSnapshot", err)
	}
}

// TestClusterSnapshotRoundTrip checkpoints a cluster to per-shard
// files and restores it, for 1 and 8 shards, checking equivalence
// before and after post-restore appends, plus a second generation.
func TestClusterSnapshotRoundTrip(t *testing.T) {
	inputs := clusterInputs(t, 40, 15, 11)
	indexes := []temporalrank.Options{
		{Method: temporalrank.MethodExact3, BlockSize: 512},
		{Method: temporalrank.MethodAppx2, BlockSize: 512, KMax: 16, TargetR: 16},
	}
	for _, shards := range []int{1, 8} {
		c, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{
			Shards: shards, Indexes: indexes, ResultCache: 32,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		dir := t.TempDir()
		if err := c.Checkpoint(dir); err != nil {
			t.Fatalf("shards=%d checkpoint: %v", shards, err)
		}
		c2, err := temporalrank.OpenClusterSnapshot(dir, temporalrank.ClusterOptions{ResultCache: 32})
		if err != nil {
			t.Fatalf("shards=%d restore: %v", shards, err)
		}
		if c2.NumShards() != c.NumShards() || c2.NumSeries() != c.NumSeries() || c2.NumSegments() != c.NumSegments() {
			t.Fatalf("shards=%d: restored shape (%d, %d, %d) != original (%d, %d, %d)",
				shards, c2.NumShards(), c2.NumSeries(), c2.NumSegments(),
				c.NumShards(), c.NumSeries(), c.NumSegments())
		}
		rng := rand.New(rand.NewSource(int64(shards)))
		qs := snapshotQueries(rng, c.Start(), c.End(), 5)
		requireSameAnswers(t, "cluster", qs, c, c2)

		for n := 0; n < 8; n++ {
			id := rng.Intn(c.NumSeries())
			tEnd := c.End() + 0.5 + rng.Float64()
			v := rng.Float64() * 4
			if err := c.Append(id, tEnd, v); err != nil {
				t.Fatalf("shards=%d append original: %v", shards, err)
			}
			if err := c2.Append(id, tEnd, v); err != nil {
				t.Fatalf("shards=%d append restored: %v", shards, err)
			}
		}
		requireSameAnswers(t, "cluster post-append", snapshotQueries(rng, c.Start(), c.End(), 3), c, c2)

		// Second generation over the same files.
		if err := c2.Checkpoint(dir); err != nil {
			t.Fatalf("shards=%d re-checkpoint: %v", shards, err)
		}
		c3, err := temporalrank.OpenClusterSnapshot(dir, temporalrank.ClusterOptions{})
		if err != nil {
			t.Fatalf("shards=%d re-restore: %v", shards, err)
		}
		requireSameAnswers(t, "cluster gen2", snapshotQueries(rng, c.Start(), c.End(), 3), c2, c3)
	}
}

// TestClusterSnapshotRejectsCorruption flips one byte in every shard
// file position that matters and requires a typed failure, never a
// wrong cluster.
func TestClusterSnapshotRejectsCorruption(t *testing.T) {
	inputs := clusterInputs(t, 12, 10, 5)
	c, err := temporalrank.NewCluster(inputs, temporalrank.ClusterOptions{
		Shards:  2,
		Indexes: []temporalrank.Options{{Method: temporalrank.MethodExact1, BlockSize: 256}},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := c.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "shard-0000.trsnap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a data page in the middle of the file (headers occupy the
	// first two pages; past them every page is CRC-protected payload).
	pos := 2*blockio.DefaultBlockSize + len(raw)/2%max(len(raw)-2*blockio.DefaultBlockSize, 1)
	corrupted := append([]byte(nil), raw...)
	corrupted[pos] ^= 0x40
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := temporalrank.OpenClusterSnapshot(dir, temporalrank.ClusterOptions{}); !errors.Is(err, temporalrank.ErrBadSnapshot) {
		t.Fatalf("corrupt shard file: got %v, want ErrBadSnapshot", err)
	}
}

// TestCheckpointCrashSafety is the fault-injection sweep: a checkpoint
// is interrupted at every device-operation budget from zero until the
// first budget at which it completes; after every interruption the
// device must still restore the previous generation bit-exactly (or,
// at the very tail where only the final barrier remains, the new one)
// — never a corrupt or silently wrong stack.
func TestCheckpointCrashSafety(t *testing.T) {
	const maxBudget = 20000
	ctx := context.Background()
	inputs := clusterInputs(t, 6, 6, 21)
	refQuery := temporalrank.SumQuery(4, 0, 300)

	for budget := int64(0); ; budget++ {
		if budget > maxBudget {
			t.Fatalf("checkpoint still failing at budget %d", maxBudget)
		}
		mem := blockio.NewMemDevice(256)
		fd := blockio.NewFaultDevice(mem, -1)

		db, err := temporalrank.NewDB(inputs)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3, BlockSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		p, err := temporalrank.NewPlanner(db, ix)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Checkpoint(fd); err != nil {
			t.Fatalf("budget=%d: healthy generation-1 checkpoint: %v", budget, err)
		}
		ansA, err := p.Run(ctx, refQuery)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 4; n++ {
			if err := p.Append(n%db.NumSeries(), db.End()+1, float64(n)); err != nil {
				t.Fatal(err)
			}
		}
		ansB, err := p.Run(ctx, refQuery)
		if err != nil {
			t.Fatal(err)
		}

		fd.Arm(budget)
		cerr := p.Checkpoint(fd)
		fd.Disarm()
		if cerr != nil && !errors.Is(cerr, blockio.ErrInjected) {
			t.Fatalf("budget=%d: interrupted checkpoint returned untyped error: %v", budget, cerr)
		}

		// Whatever happened, the device must restore *a* committed
		// generation: the old one after an interruption (or the new one
		// if only the final barrier was cut), the new one on success.
		p2, err := temporalrank.OpenSnapshot(mem)
		if err != nil {
			t.Fatalf("budget=%d: device unrestorable after interrupted checkpoint: %v", budget, err)
		}
		got, err := p2.Run(ctx, refQuery)
		if err != nil {
			t.Fatalf("budget=%d: restored planner query: %v", budget, err)
		}
		matchesA := resultsEqual(got.Results, ansA.Results) && p2.DB().NumSegments() == db.NumSegments()-4
		matchesB := resultsEqual(got.Results, ansB.Results) && p2.DB().NumSegments() == db.NumSegments()
		if cerr == nil {
			if !matchesB {
				t.Fatalf("budget=%d: committed checkpoint restored stale or wrong data", budget)
			}
			break // first completing budget ends the sweep
		}
		if !matchesA && !matchesB {
			t.Fatalf("budget=%d: restored data matches neither generation (got %d results, %d segments)",
				budget, len(got.Results), p2.DB().NumSegments())
		}
	}
}

// resultsEqual is sameResults as a predicate.
func resultsEqual(a, b []temporalrank.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}
