package temporalrank_test

import (
	"context"
	"errors"
	"fmt"

	"temporalrank"
)

// The three objects of this example follow Figure 2 of the paper: o1
// (index 0 here) is never the instant leader on [t2,t3] yet wins the
// aggregate query there.
func ExampleDB_TopK() {
	db, err := temporalrank.NewDB([]temporalrank.SeriesInput{
		{Times: []float64{0, 2, 4}, Values: []float64{6, 6, 6}}, // steady o1
		{Times: []float64{0, 2, 4}, Values: []float64{9, 1, 9}}, // dipping o2
		{Times: []float64{0, 2, 4}, Values: []float64{1, 8, 1}}, // peaking o3
	})
	if err != nil {
		panic(err)
	}
	for _, r := range db.TopK(2, 1, 3) {
		fmt.Printf("object %d: %.1f\n", r.ID, r.Score)
	}
	// Output:
	// object 2: 12.5
	// object 0: 12.0
}

func ExampleIndex_TopK() {
	db, err := temporalrank.NewDB([]temporalrank.SeriesInput{
		{Times: []float64{0, 1, 2}, Values: []float64{3, 5, 4}},
		{Times: []float64{0, 1, 2}, Values: []float64{6, 1, 2}},
	})
	if err != nil {
		panic(err)
	}
	idx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		panic(err)
	}
	top, err := idx.TopK(1, 0.5, 1.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("winner: object %d\n", top[0].ID)
	// Output:
	// winner: object 0
}

func ExampleIndex_TopKAvg() {
	db, err := temporalrank.NewDB([]temporalrank.SeriesInput{
		{Times: []float64{0, 10}, Values: []float64{4, 4}},
		{Times: []float64{0, 10}, Values: []float64{1, 5}},
	})
	if err != nil {
		panic(err)
	}
	idx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact2})
	if err != nil {
		panic(err)
	}
	avg, err := idx.TopKAvg(1, 0, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("object %d averages %.1f\n", avg[0].ID, avg[0].Score)
	// Output:
	// object 0 averages 4.0
}

func ExampleIndex_InstantTopK() {
	db, err := temporalrank.NewDB([]temporalrank.SeriesInput{
		{Times: []float64{0, 2}, Values: []float64{0, 10}}, // rising
		{Times: []float64{0, 2}, Values: []float64{10, 0}}, // falling
	})
	if err != nil {
		panic(err)
	}
	idx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		panic(err)
	}
	early, _ := idx.InstantTopK(1, 0.5)
	late, _ := idx.InstantTopK(1, 1.5)
	fmt.Printf("at t=0.5 object %d leads; at t=1.5 object %d leads\n", early[0].ID, late[0].ID)
	// Output:
	// at t=0.5 object 1 leads; at t=1.5 object 0 leads
}

func ExampleNewDBFromSamples() {
	// Raw readings are segmented adaptively before indexing.
	objects := [][]temporalrank.Sample{
		{{T: 0, V: 1}, {T: 1, V: 2}, {T: 2, V: 3}, {T: 3, V: 4}, {T: 4, V: 5}}, // collinear
		{{T: 0, V: 5}, {T: 1, V: 0}, {T: 2, V: 5}, {T: 3, V: 0}, {T: 4, V: 5}}, // zig-zag
	}
	db, err := temporalrank.NewDBFromSamples(objects, temporalrank.SegmentBottomUp, 0.1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d objects, %d segments after segmentation\n", db.NumSeries(), db.NumSegments())
	// Output:
	// 2 objects, 5 segments after segmentation
}

// ExampleIndex_Run shows the unified query API: one Query value, one
// Run call, a typed Answer reporting which method answered and with
// what guarantee.
func ExampleIndex_Run() {
	db, err := temporalrank.NewDB([]temporalrank.SeriesInput{
		{Times: []float64{0, 2, 4}, Values: []float64{6, 6, 6}},
		{Times: []float64{0, 2, 4}, Values: []float64{9, 1, 9}},
		{Times: []float64{0, 2, 4}, Values: []float64{1, 8, 1}},
	})
	if err != nil {
		panic(err)
	}
	idx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		panic(err)
	}
	ans, err := idx.Run(context.Background(), temporalrank.Query{K: 2, T1: 1, T2: 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("answered by %s (exact=%v)\n", ans.Method, ans.Exact)
	for _, r := range ans.Results {
		fmt.Printf("object %d: %.1f\n", r.ID, r.Score)
	}
	// Output:
	// answered by EXACT3 (exact=true)
	// object 2: 12.5
	// object 0: 12.0
}

// ExamplePlanner routes queries by their declared error tolerance:
// MaxEpsilon == 0 demands an exact structure, MaxEpsilon > 0 admits
// the cheaper approximate one.
func ExamplePlanner() {
	series := make([]temporalrank.SeriesInput, 40)
	for i := range series {
		times := make([]float64, 50)
		values := make([]float64, 50)
		for j := range times {
			times[j] = float64(j)
			values[j] = float64((i*13+j*7)%29) + 1
		}
		series[i] = temporalrank.SeriesInput{Times: times, Values: values}
	}
	db, err := temporalrank.NewDB(series)
	if err != nil {
		panic(err)
	}
	exact, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		panic(err)
	}
	approx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodAppx2, TargetR: 30, KMax: 10})
	if err != nil {
		panic(err)
	}
	planner, err := temporalrank.NewPlanner(db, exact, approx)
	if err != nil {
		panic(err)
	}

	strict, err := planner.Run(context.Background(), temporalrank.Query{K: 3, T1: 5, T2: 45})
	if err != nil {
		panic(err)
	}
	tolerant, err := planner.Run(context.Background(),
		temporalrank.Query{K: 3, T1: 5, T2: 45, MaxEpsilon: 0.5})
	if err != nil {
		panic(err)
	}
	fmt.Printf("MaxEpsilon=0   -> %s (exact=%v)\n", strict.Method, strict.Exact)
	fmt.Printf("MaxEpsilon=0.5 -> %s (exact=%v)\n", tolerant.Method, tolerant.Exact)
	// Output:
	// MaxEpsilon=0   -> EXACT3 (exact=true)
	// MaxEpsilon=0.5 -> APPX2 (exact=false)
}

// ExampleErrNotMaterialized classifies failures with errors.Is — the
// payoff of typed sentinel errors over string matching.
func ExampleErrNotMaterialized() {
	series := make([]temporalrank.SeriesInput, 30)
	for i := range series {
		times := make([]float64, 20)
		values := make([]float64, 20)
		for j := range times {
			times[j] = float64(j)
			values[j] = float64((i*7+j*3)%17) + 1
		}
		series[i] = temporalrank.SeriesInput{Times: times, Values: values}
	}
	db, err := temporalrank.NewDB(series)
	if err != nil {
		panic(err)
	}
	// kmax=3 over 30 objects: most objects have no materialized score.
	idx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodAppx2, TargetR: 20, KMax: 3})
	if err != nil {
		panic(err)
	}
	for id := 0; id < db.NumSeries(); id++ {
		if _, err := idx.Score(id, 2, 18); errors.Is(err, temporalrank.ErrNotMaterialized) {
			exact, _ := db.Score(id, 2, 18)
			fmt.Printf("object %d not materialized; exact fallback %.0f\n", id, exact)
			break
		}
	}
	if _, err := idx.TopK(10, 2, 18); errors.Is(err, temporalrank.ErrKTooLarge) {
		fmt.Println("k=10 exceeds kmax=3")
	}
	// Output:
	// object 0 not materialized; exact fallback 148
	// k=10 exceeds kmax=3
}
