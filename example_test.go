package temporalrank_test

import (
	"fmt"

	"temporalrank"
)

// The three objects of this example follow Figure 2 of the paper: o1
// (index 0 here) is never the instant leader on [t2,t3] yet wins the
// aggregate query there.
func ExampleDB_TopK() {
	db, err := temporalrank.NewDB([]temporalrank.SeriesInput{
		{Times: []float64{0, 2, 4}, Values: []float64{6, 6, 6}}, // steady o1
		{Times: []float64{0, 2, 4}, Values: []float64{9, 1, 9}}, // dipping o2
		{Times: []float64{0, 2, 4}, Values: []float64{1, 8, 1}}, // peaking o3
	})
	if err != nil {
		panic(err)
	}
	for _, r := range db.TopK(2, 1, 3) {
		fmt.Printf("object %d: %.1f\n", r.ID, r.Score)
	}
	// Output:
	// object 2: 12.5
	// object 0: 12.0
}

func ExampleIndex_TopK() {
	db, err := temporalrank.NewDB([]temporalrank.SeriesInput{
		{Times: []float64{0, 1, 2}, Values: []float64{3, 5, 4}},
		{Times: []float64{0, 1, 2}, Values: []float64{6, 1, 2}},
	})
	if err != nil {
		panic(err)
	}
	idx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		panic(err)
	}
	top, err := idx.TopK(1, 0.5, 1.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("winner: object %d\n", top[0].ID)
	// Output:
	// winner: object 0
}

func ExampleIndex_TopKAvg() {
	db, err := temporalrank.NewDB([]temporalrank.SeriesInput{
		{Times: []float64{0, 10}, Values: []float64{4, 4}},
		{Times: []float64{0, 10}, Values: []float64{1, 5}},
	})
	if err != nil {
		panic(err)
	}
	idx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact2})
	if err != nil {
		panic(err)
	}
	avg, err := idx.TopKAvg(1, 0, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("object %d averages %.1f\n", avg[0].ID, avg[0].Score)
	// Output:
	// object 0 averages 4.0
}

func ExampleIndex_InstantTopK() {
	db, err := temporalrank.NewDB([]temporalrank.SeriesInput{
		{Times: []float64{0, 2}, Values: []float64{0, 10}}, // rising
		{Times: []float64{0, 2}, Values: []float64{10, 0}}, // falling
	})
	if err != nil {
		panic(err)
	}
	idx, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		panic(err)
	}
	early, _ := idx.InstantTopK(1, 0.5)
	late, _ := idx.InstantTopK(1, 1.5)
	fmt.Printf("at t=0.5 object %d leads; at t=1.5 object %d leads\n", early[0].ID, late[0].ID)
	// Output:
	// at t=0.5 object 1 leads; at t=1.5 object 0 leads
}

func ExampleNewDBFromSamples() {
	// Raw readings are segmented adaptively before indexing.
	objects := [][]temporalrank.Sample{
		{{T: 0, V: 1}, {T: 1, V: 2}, {T: 2, V: 3}, {T: 3, V: 4}, {T: 4, V: 5}}, // collinear
		{{T: 0, V: 5}, {T: 1, V: 0}, {T: 2, V: 5}, {T: 3, V: 0}, {T: 4, V: 5}}, // zig-zag
	}
	db, err := temporalrank.NewDBFromSamples(objects, temporalrank.SegmentBottomUp, 0.1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d objects, %d segments after segmentation\n", db.NumSeries(), db.NumSegments())
	// Output:
	// 2 objects, 5 segments after segmentation
}
