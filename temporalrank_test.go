package temporalrank

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"temporalrank/internal/gen"
)

func smallDB(t *testing.T) *DB {
	t.Helper()
	db, err := NewDB([]SeriesInput{
		{Times: []float64{0, 1, 2, 3}, Values: []float64{3, 5, 4, 2}},
		{Times: []float64{0, 1, 2, 3}, Values: []float64{6, 1, 2, 8}},
		{Times: []float64{0.5, 1.5, 2.5}, Values: []float64{10, 10, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewDBValidation(t *testing.T) {
	if _, err := NewDB(nil); err == nil {
		t.Error("empty DB accepted")
	}
	if _, err := NewDB([]SeriesInput{{Times: []float64{0}, Values: []float64{1}}}); err == nil {
		t.Error("single-point series accepted")
	}
	if _, err := NewDB([]SeriesInput{{Times: []float64{1, 0}, Values: []float64{1, 1}}}); err == nil {
		t.Error("unsorted times accepted")
	}
}

func TestDBAccessors(t *testing.T) {
	db := smallDB(t)
	if db.NumSeries() != 3 {
		t.Errorf("m = %d", db.NumSeries())
	}
	if db.NumSegments() != 3+3+2 {
		t.Errorf("N = %d", db.NumSegments())
	}
	if db.Start() != 0 || db.End() != 3 {
		t.Errorf("domain [%g,%g]", db.Start(), db.End())
	}
}

func TestDBScore(t *testing.T) {
	db := smallDB(t)
	// Object 2 is constant 10 on [0.5,2.5]: σ(1,2) = 10.
	got, err := db.Score(2, 1, 2)
	if err != nil || math.Abs(got-10) > 1e-12 {
		t.Errorf("Score = (%g, %v), want 10", got, err)
	}
	if _, err := db.Score(9, 0, 1); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestDBTopKReference(t *testing.T) {
	db := smallDB(t)
	res := db.TopK(2, 1, 2)
	if len(res) != 2 {
		t.Fatalf("len = %d", len(res))
	}
	if res[0].ID != 2 {
		t.Errorf("top = %d, want 2 (the constant-10 object)", res[0].ID)
	}
}

func TestBuildIndexDefaultsToExact3(t *testing.T) {
	db := smallDB(t)
	idx, err := db.BuildIndex(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Method() != MethodExact3 {
		t.Errorf("default method = %s", idx.Method())
	}
}

func TestEveryMethodThroughPublicAPI(t *testing.T) {
	ds, err := gen.Temp(gen.TempConfig{M: 25, Navg: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDBFromDataset(ds)
	t1 := db.Start() + (db.End()-db.Start())*0.2
	t2 := db.Start() + (db.End()-db.Start())*0.7
	want := db.TopK(5, t1, t2)
	for _, method := range Methods() {
		idx, err := db.BuildIndex(Options{Method: method, TargetR: 40, KMax: 10})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		got, err := idx.TopK(5, t1, t2)
		if err != nil {
			t.Fatalf("%s query: %v", method, err)
		}
		if len(got) != 5 {
			t.Fatalf("%s returned %d items", method, len(got))
		}
		// Exact methods must agree with the reference exactly.
		switch method {
		case MethodExact1, MethodExact2, MethodExact3:
			for j := range got {
				if got[j].ID != want[j].ID {
					t.Errorf("%s rank %d: ID %d, want %d", method, j, got[j].ID, want[j].ID)
				}
			}
		}
		st := idx.Stats()
		if st.Pages <= 0 || st.Bytes <= 0 || st.MethodName != string(method) {
			t.Errorf("%s stats incomplete: %+v", method, st)
		}
	}
}

func TestIndexAppendConsistency(t *testing.T) {
	db := smallDB(t)
	idx, err := db.BuildIndex(Options{Method: MethodExact2})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Append(0, 5, 100); err != nil {
		t.Fatal(err)
	}
	// Both the index and the DB must see the new mass on [3,5].
	fromIdx, err := idx.Score(0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	fromDB, err := db.Score(0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fromIdx-fromDB) > 1e-9 || fromIdx <= 0 {
		t.Errorf("index %g vs db %g", fromIdx, fromDB)
	}
	if err := idx.Append(99, 10, 1); err == nil {
		t.Error("unknown id append accepted")
	}
}

func TestOnDiskIndex(t *testing.T) {
	db := smallDB(t)
	path := filepath.Join(t.TempDir(), "index.bin")
	idx, err := db.BuildIndex(Options{Method: MethodExact3, OnDiskPath: path})
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.TopK(1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 2 {
		t.Errorf("on-disk top = %d", res[0].ID)
	}
}

func TestStatsAndReset(t *testing.T) {
	db := smallDB(t)
	idx, err := db.BuildIndex(Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx.ResetStats()
	if _, err := idx.TopK(1, 0, 3); err != nil {
		t.Fatal(err)
	}
	if idx.Stats().DeviceIOs == 0 {
		t.Error("no IOs recorded for a query")
	}
}

func TestApproxQualityThroughPublicAPI(t *testing.T) {
	ds, err := gen.Temp(gen.TempConfig{M: 40, Navg: 50, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDBFromDataset(ds)
	idx, err := db.BuildIndex(Options{Method: MethodAppx1, TargetR: 100, KMax: 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	hits, total := 0, 0
	for q := 0; q < 20; q++ {
		span := db.End() - db.Start()
		t1 := db.Start() + rng.Float64()*span*0.6
		t2 := t1 + span*0.2
		got, err := idx.TopK(10, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		want := db.TopK(10, t1, t2)
		set := map[int]bool{}
		for _, w := range want {
			set[w.ID] = true
		}
		for _, g := range got {
			total++
			if set[g.ID] {
				hits++
			}
		}
	}
	if pr := float64(hits) / float64(total); pr < 0.8 {
		t.Errorf("APPX1 precision over Temp = %g, want >= 0.8", pr)
	}
}
