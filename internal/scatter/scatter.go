// Package scatter is the shared bounded fan-out primitive: run n tasks
// on at most w goroutines, stop early on the first error, and respect
// context cancellation. It is the concurrency core under the Cluster's
// scatter-gather query path and the engine's parallel index builds —
// deliberately free of temporalrank imports so both layers can use it.
package scatter

import (
	"context"
	"sync"
	"sync/atomic"
)

// Run invokes fn(ctx, i) for every i in [0, n), keeping at most workers
// invocations in flight (workers <= 0 or > n means one goroutine per
// task). The context passed to fn is derived from ctx and is cancelled
// as soon as any invocation fails, so cooperative tasks abort promptly;
// tasks not yet started are skipped once the context is done.
//
// Run returns after every started task has finished. The result is the
// first error to occur — a task failure or ctx's own error — and nil
// only when all n tasks succeeded (first-error-wins).
func Run(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg    sync.WaitGroup
		once  sync.Once
		first error
		next  atomic.Int64
	)
	fail := func(err error) {
		once.Do(func() {
			first = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
