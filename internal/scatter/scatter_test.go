package scatter

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAllTasks(t *testing.T) {
	const n = 100
	var done [n]atomic.Bool
	err := Run(context.Background(), n, 7, func(_ context.Context, i int) error {
		done[i].Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("task %d never ran", i)
		}
	}
}

func TestRunBoundsWorkers(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := Run(context.Background(), 50, workers, func(context.Context, int) error {
		c := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d > %d workers", p, workers)
	}
}

// TestRunFirstErrorWins: a failing task cancels the derived context, so
// running siblings see the cancellation and unstarted tasks are skipped.
func TestRunFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	err := Run(context.Background(), 1000, 2, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task error to win", err)
	}
	if s := started.Load(); s > 4 {
		t.Fatalf("%d tasks started after the failure, want the remainder skipped", s)
	}
}

func TestRunParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	err := Run(ctx, 1_000_000, 4, func(context.Context, int) error {
		ran.Add(1)
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1_000_000 {
		t.Fatal("cancellation did not stop the scatter early")
	}
}

func TestRunEmptyAndDoneContext(t *testing.T) {
	if err := Run(context.Background(), 0, 4, nil); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Run(ctx, 5, 2, func(context.Context, int) error {
		return fmt.Errorf("should not run")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("done context: err = %v, want context.Canceled", err)
	}
}
