package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHitMissAndVersioning(t *testing.T) {
	c := New[string, int](8)
	ctx := context.Background()
	calls := 0
	fn := func(v int) func() (int, error) {
		return func() (int, error) { calls++; return v, nil }
	}

	got, cached, err := c.Do(ctx, "q", 1, fn(10))
	if err != nil || got != 10 || cached {
		t.Fatalf("first Do = (%d, %v, %v), want (10, false, nil)", got, cached, err)
	}
	got, cached, err = c.Do(ctx, "q", 1, fn(99))
	if err != nil || got != 10 || !cached {
		t.Fatalf("second Do = (%d, %v, %v), want cached 10", got, cached, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}

	// A version bump makes the entry unreachable: the computation runs
	// again and the new value is served thereafter.
	got, cached, err = c.Do(ctx, "q", 2, fn(20))
	if err != nil || got != 20 || cached {
		t.Fatalf("post-bump Do = (%d, %v, %v), want fresh 20", got, cached, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times after bump, want 2", calls)
	}
	got, _, _ = c.Do(ctx, "q", 2, fn(99))
	if got != 20 {
		t.Fatalf("post-bump cached value = %d, want 20", got)
	}

	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 || s.Coalesced != 0 {
		t.Fatalf("stats = %+v, want hits=2 misses=2 coalesced=0", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[string, int](2)
	ctx := context.Background()
	do := func(key string) (bool, error) {
		_, cached, err := c.Do(ctx, key, 1, func() (int, error) { return 1, nil })
		return cached, err
	}
	for _, k := range []string{"a", "b", "c"} { // c evicts a
		if _, err := do(k); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if cached, _ := do("a"); cached {
		t.Fatal("evicted entry served as hit")
	}
	if cached, _ := do("b"); cached {
		t.Fatal("entry b should have been evicted by a's re-insert")
	}
	if cached, _ := do("a"); !cached {
		t.Fatal("recently re-inserted entry missing")
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New[string, int](4)
	ctx := context.Background()
	boom := errors.New("boom")
	_, _, err := c.Do(ctx, "q", 1, func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, cached, err := c.Do(ctx, "q", 1, func() (int, error) { return 7, nil })
	if err != nil || got != 7 || cached {
		t.Fatalf("retry after error = (%d, %v, %v), want fresh 7", got, cached, err)
	}
}

// TestCoalescing pins the stampede property: N concurrent identical
// lookups execute the computation exactly once, and every caller
// receives the same value. Run under -race.
func TestCoalescing(t *testing.T) {
	c := New[string, int](4)
	ctx := context.Background()
	const callers = 16
	var executions atomic.Int64
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]int, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(ctx, "q", 1, func() (int, error) {
				executions.Add(1)
				<-release // hold the flight open until all callers queue
				return 42, nil
			})
			results[i], errs[i] = v, err
		}(i)
	}
	// Wait until the leader is inside fn, then give the others time to
	// join the flight before releasing it.
	for executions.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("computation executed %d times, want 1", n)
	}
	for i := range results {
		if errs[i] != nil || results[i] != 42 {
			t.Fatalf("caller %d got (%d, %v), want (42, nil)", i, results[i], errs[i])
		}
	}
	if s := c.Stats(); s.Misses != 1 || s.Coalesced != callers-1 {
		t.Fatalf("stats = %+v, want misses=1 coalesced=%d", s, callers-1)
	}
}

// TestFlightVersionIsolation: a flight started at version 1 must not
// absorb callers at version 2.
func TestFlightVersionIsolation(t *testing.T) {
	c := New[string, int](4)
	ctx := context.Background()
	release := make(chan struct{})
	started := make(chan struct{})

	done := make(chan int, 1)
	go func() {
		v, _, _ := c.Do(ctx, "q", 1, func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
		done <- v
	}()
	<-started
	// Same key, newer version: must run its own computation, not join.
	v2, cached, err := c.Do(ctx, "q", 2, func() (int, error) { return 2, nil })
	if err != nil || cached || v2 != 2 {
		t.Fatalf("v2 lookup = (%d, %v, %v), want fresh 2", v2, cached, err)
	}
	close(release)
	if v1 := <-done; v1 != 1 {
		t.Fatalf("v1 flight returned %d, want 1", v1)
	}
}

func TestWaiterContextCancellation(t *testing.T) {
	c := New[string, int](4)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "q", 1, func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, cached, err := c.Do(ctx, "q", 1, func() (int, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) || cached {
		t.Fatalf("cancelled waiter = (cached=%v, err=%v), want context.Canceled", cached, err)
	}
	close(release)
}

// TestFailedFlightDoesNotPoisonWaiters: when the leader's computation
// fails (e.g. its own context expired), a waiter with a healthy context
// retries and succeeds instead of inheriting the leader's error.
func TestFailedFlightDoesNotPoisonWaiters(t *testing.T) {
	c := New[string, int](4)
	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "q", 1, func() (int, error) {
			close(started)
			<-release
			return 0, context.DeadlineExceeded // leader's own deadline fired
		})
		leaderDone <- err
	}()
	<-started

	waiterDone := make(chan struct{})
	var wv int
	var wcached bool
	var werr error
	go func() {
		defer close(waiterDone)
		wv, wcached, werr = c.Do(context.Background(), "q", 1, func() (int, error) {
			return 7, nil // the waiter's retry executes its own run
		})
	}()
	// Let the waiter join the flight, then fail the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if err := <-leaderDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("leader err = %v, want its own DeadlineExceeded", err)
	}
	<-waiterDone
	if werr != nil || wv != 7 {
		t.Fatalf("waiter = (%d, %v), want (7, nil): healthy waiter must not inherit leader failure", wv, werr)
	}
	_ = wcached
	// The retry's result is cached for subsequent callers.
	got, cached, err := c.Do(context.Background(), "q", 1, func() (int, error) { return 99, nil })
	if err != nil || !cached || got != 7 {
		t.Fatalf("post-retry lookup = (%d, %v, %v), want cached 7", got, cached, err)
	}
}

// TestConcurrentMixedKeys hammers the cache with many goroutines over
// overlapping keys and versions — the -race net for the lock scheme.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New[string, string](8)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%5)
				version := uint64(i % 3)
				want := fmt.Sprintf("%s@%d", key, version)
				got, _, err := c.Do(ctx, key, version, func() (string, error) {
					return want, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if got != want {
					t.Errorf("Do(%s, %d) = %q, want %q (stale or cross-key value)", key, version, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
