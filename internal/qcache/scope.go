// Scoped invalidation: instead of a single dataset version that any
// append bumps (evicting every cached answer), mutations are recorded
// in a Journal as (series, time-range) scoped events, and each cached
// entry remembers the query footprint it depends on. A lookup serves a
// stored entry iff no journal event recorded since the entry was stored
// overlaps the entry's scope — so an append to series S at time t only
// invalidates answers whose window could have observed it, and a hot
// writer appending at the frontier no longer nukes answers about the
// past.
//
// Staleness stays impossible by construction: writers record the event
// after the data mutation is visible, so any lookup that could observe
// the old data also observes the event (or an even newer version) and
// misses. The journal is a bounded ring; when a lookup would need
// history the ring has already evicted, it conservatively reports
// "changed" — degrading to the old global-invalidation behavior, never
// serving stale.
package qcache

import (
	"context"
	"math"
	"sync"
)

// Scope is the (series, time-range) footprint of a cached answer or of
// a mutation event. Series < 0 means "all series". The time range is a
// closed interval [T1, T2]; an instant footprint is [t, t].
type Scope struct {
	Series int
	T1, T2 float64
}

// ScopeAll overlaps every scope: recording it invalidates everything,
// the pre-scoped "global nuke" behavior.
var ScopeAll = Scope{Series: -1, T1: math.Inf(-1), T2: math.Inf(1)}

// Overlaps reports whether the two footprints can share data: the
// series match (or either side is a wildcard) and the closed time
// intervals intersect.
func (s Scope) Overlaps(o Scope) bool {
	if s.Series >= 0 && o.Series >= 0 && s.Series != o.Series {
		return false
	}
	return s.T1 <= o.T2 && o.T1 <= s.T2
}

// defaultJournalEvents is the ring capacity when NewJournal is given a
// non-positive size: enough history that a reader revalidating a hot
// entry between appends never falls off the ring in practice, small
// enough (24 B/event) to embed one journal per DB.
const defaultJournalEvents = 1024

// Journal is an append-only, bounded record of scoped mutation events,
// identified by a monotone version counter (the version of a journal is
// the version of its newest event; a fresh journal is at version 0). It
// is safe for concurrent use.
type Journal struct {
	mu     sync.RWMutex
	ring   []Scope // event v lives at ring[(v-1) % len(ring)]
	ver    uint64
	coarse bool
}

// NewJournal creates a journal retaining the last capacity events
// (capacity <= 0 selects a default).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = defaultJournalEvents
	}
	return &Journal{ring: make([]Scope, capacity)}
}

// Advance records a mutation event with the given footprint and returns
// its version. Record the event only after the mutation is visible to
// readers: lookups then can't validate an entry computed from the old
// data past this event.
func (j *Journal) Advance(scope Scope) uint64 {
	j.mu.Lock()
	if j.coarse {
		scope = ScopeAll
	}
	j.ver++
	j.ring[(j.ver-1)%uint64(len(j.ring))] = scope
	ver := j.ver
	j.mu.Unlock()
	return ver
}

// Version returns the version of the newest recorded event (0 if none).
func (j *Journal) Version() uint64 {
	j.mu.RLock()
	v := j.ver
	j.mu.RUnlock()
	return v
}

// SetCoarse switches the journal to record every subsequent event as
// ScopeAll regardless of the scope passed to Advance — restoring the
// pre-scoped whole-cache invalidation behavior. Kept for A/B
// measurement (rankbench's global-invalidation baseline).
func (j *Journal) SetCoarse(on bool) {
	j.mu.Lock()
	j.coarse = on
	j.mu.Unlock()
}

// Unchanged reports whether no event recorded after version since
// overlaps scope. On ok == true, upTo is the journal's current version:
// the caller may advance its recorded version to upTo and skip the same
// events next time. ok == false means an overlapping event exists — or
// the ring has already evicted part of the needed history, in which
// case Unchanged conservatively reports changed.
func (j *Journal) Unchanged(since uint64, scope Scope) (upTo uint64, ok bool) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	if since >= j.ver {
		return j.ver, true
	}
	if j.ver-since > uint64(len(j.ring)) {
		return j.ver, false // history evicted: assume changed
	}
	for v := since + 1; v <= j.ver; v++ {
		if j.ring[(v-1)%uint64(len(j.ring))].Overlaps(scope) {
			return j.ver, false
		}
	}
	return j.ver, true
}

// DoScoped is Do with journal-scoped validity in place of a single
// version number: an entry stored by DoScoped is served while every
// journal in js reports Unchanged for the entry's scope since the
// versions recorded at store time. js must be the same journals (same
// order) on every call for a given key; scope must cover all data the
// answer depends on.
//
// Validated hits advance the entry's recorded versions in place, so the
// steady-state hit path performs no allocation. Coalescing, error, and
// context semantics match Do.
//
//tr:hotpath
func (c *Cache[K, V]) DoScoped(ctx context.Context, key K, js []*Journal, scope Scope, fn func() (V, error)) (v V, cached bool, err error) {
	for joined := 0; ; joined++ {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			e := el.Value.(*entry[K, V])
			if c.scopedValidLocked(e, js) {
				c.lru.MoveToFront(el)
				c.mu.Unlock()
				c.hits.Add(1)
				return e.val, true, nil
			}
			// Invalidated by an overlapping event (or stored by the
			// unscoped Do): reclaim the slot now.
			c.lru.Remove(el)
			delete(c.entries, key)
		}
		// Snapshot the journal versions before fn runs: events recorded
		// during fn must postdate the entry so the next lookup rechecks
		// them. The sum doubles as the flight identity — versions are
		// monotone, so equal sums imply equal vectors, and a caller that
		// has observed a newer event never joins an older flight.
		//tr:alloc-ok miss path only: the validated-hit path returned above
		versions := make([]uint64, len(js))
		var sum uint64
		for i, j := range js {
			versions[i] = j.Version()
			sum += versions[i]
		}
		fk := flightKey[K]{key: key, version: sum}
		if f, ok := c.flights[fk]; ok && joined < maxJoinedFlights {
			c.mu.Unlock()
			c.coalesced.Add(1)
			select {
			case <-f.done:
				if f.err == nil {
					return f.val, true, nil
				}
				if ctx.Err() != nil {
					var zero V
					return zero, false, ctx.Err()
				}
				continue
			case <-ctx.Done():
				var zero V
				return zero, false, ctx.Err()
			}
		}
		var f *flight[V]
		solo := false
		if _, occupied := c.flights[fk]; occupied {
			solo = true
		} else {
			//tr:alloc-ok miss path only: the validated-hit path returned above
			f = &flight[V]{done: make(chan struct{})}
			c.flights[fk] = f
		}
		c.mu.Unlock()

		c.misses.Add(1)
		val, err := fn()

		if solo {
			if err == nil {
				c.mu.Lock()
				c.storeScopedLocked(key, versions, scope, val)
				c.mu.Unlock()
			}
			return val, false, err
		}
		f.val, f.err = val, err
		c.mu.Lock()
		delete(c.flights, fk)
		if err == nil {
			c.storeScopedLocked(key, versions, scope, val)
		}
		c.mu.Unlock()
		close(f.done)
		return val, false, err
	}
}

// scopedValidLocked reports whether the entry is still valid against
// every journal, bumping its recorded versions in place as journals
// confirm no overlapping events. Caller holds c.mu; journal locks nest
// inside the cache lock (nothing acquires c.mu under a journal lock).
func (c *Cache[K, V]) scopedValidLocked(e *entry[K, V], js []*Journal) bool {
	if e.versions == nil || len(e.versions) != len(js) {
		return false
	}
	for i, j := range js {
		upTo, ok := j.Unchanged(e.versions[i], e.scope)
		if !ok {
			return false
		}
		e.versions[i] = upTo
	}
	return true
}

// storeScopedLocked inserts or refreshes a scoped entry, evicting from
// the LRU tail past capacity. Caller holds c.mu.
func (c *Cache[K, V]) storeScopedLocked(key K, versions []uint64, scope Scope, val V) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[K, V])
		e.versions = versions
		e.scope = scope
		e.val = val
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry[K, V]{key: key, versions: versions, scope: scope, val: val})
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		e := back.Value.(*entry[K, V])
		c.lru.Remove(back)
		delete(c.entries, e.key)
	}
}
