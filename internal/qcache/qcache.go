// Package qcache provides the serving read path's result cache: a
// bounded LRU keyed by a canonical query identity plus a dataset
// version number, with singleflight-style request coalescing.
//
// Versioning makes staleness impossible by construction rather than by
// invalidation bookkeeping: every lookup carries the caller's current
// dataset version, and an entry answers only the exact version it was
// computed under. Appends bump the version (the caller owns the
// counter), so post-append lookups miss and recompute; stale entries
// are dropped eagerly on the first mismatching lookup and otherwise age
// out of the LRU.
//
// Coalescing collapses the classic cache-stampede: when N concurrent
// callers ask for the same (key, version) that is not cached, exactly
// one executes the underlying computation and the other N-1 block on
// its completion and share the result. Errors are never cached, and a
// failed flight does not poison its waiters: a waiter whose own context
// is still live retries (joining a successor flight or leading its own)
// rather than inheriting the leader's failure — one client's tight
// deadline cannot fail the whole stampede it happened to lead.
package qcache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Cache is a bounded, versioned, coalescing result cache. The zero
// value is not usable; construct with New. Cache is safe for concurrent
// use.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[K]*list.Element // key -> *entry
	lru      *list.List          // front = most recently used
	flights  map[flightKey[K]]*flight[V]

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
}

// entry is one cached value. Entries stored by Do are valid only at
// their recorded version; entries stored by DoScoped (versions != nil)
// are valid while no journal event past their recorded versions
// overlaps their scope.
type entry[K comparable, V any] struct {
	key      K
	version  uint64
	versions []uint64
	scope    Scope
	val      V
}

// flightKey identifies one in-flight computation. The version is part
// of the identity: a flight started before an append must not serve
// callers that have already observed the post-append version.
type flightKey[K comparable] struct {
	key     K
	version uint64
}

// flight is one in-progress computation that waiters share.
type flight[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
}

// New creates a cache bounded to capacity entries (minimum 1).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		capacity: capacity,
		entries:  make(map[K]*list.Element, capacity),
		lru:      list.New(),
		flights:  make(map[flightKey[K]]*flight[V]),
	}
}

// Cap returns the entry bound the cache was created with.
func (c *Cache[K, V]) Cap() int { return c.capacity }

// Stats is the cache's cumulative effectiveness counters.
type Stats struct {
	// Hits counts lookups served from a stored entry.
	Hits uint64
	// Misses counts lookups that executed the computation.
	Misses uint64
	// Coalesced counts lookups that joined another caller's in-flight
	// computation instead of executing their own.
	Coalesced uint64
}

// Stats returns the cumulative counters. Lock-free.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
	}
}

// Len returns the number of stored entries (excluding in-flight
// computations).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// maxJoinedFlights bounds how many failed flights one caller will wait
// out before executing the computation itself. It guarantees progress
// under pathological continuous failure: each caller runs fn at most
// once on its own, exactly like an uncached call.
const maxJoinedFlights = 2

// Do returns the value for (key, version): from the cache when a
// current-version entry exists, from another caller's in-flight
// computation when one is running, otherwise by executing fn and
// storing its result. cached reports whether the caller avoided
// executing fn itself (a stored hit or a joined flight).
//
// A waiter whose ctx expires stops waiting and returns ctx.Err(); the
// flight itself keeps running under its leader. A flight that fails
// (for example because the leader's own context expired mid-run)
// returns its error only to the leader — waiters with live contexts
// retry, after maxJoinedFlights failed joins executing fn themselves.
//
//tr:hotpath
func (c *Cache[K, V]) Do(ctx context.Context, key K, version uint64, fn func() (V, error)) (v V, cached bool, err error) {
	fk := flightKey[K]{key: key, version: version}
	for joined := 0; ; joined++ {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			e := el.Value.(*entry[K, V])
			if e.versions == nil && e.version == version {
				c.lru.MoveToFront(el)
				c.mu.Unlock()
				c.hits.Add(1)
				return e.val, true, nil
			}
			// Version mismatch: the entry can never be served again (the
			// caller-supplied version is monotone), reclaim its slot now.
			c.lru.Remove(el)
			delete(c.entries, key)
		}
		if f, ok := c.flights[fk]; ok && joined < maxJoinedFlights {
			c.mu.Unlock()
			c.coalesced.Add(1)
			select {
			case <-f.done:
				if f.err == nil {
					return f.val, true, nil
				}
				// The flight failed under its leader. Our context may be
				// perfectly healthy — retry rather than inherit the error.
				if ctx.Err() != nil {
					var zero V
					return zero, false, ctx.Err()
				}
				continue
			case <-ctx.Done():
				var zero V
				return zero, false, ctx.Err()
			}
		}
		// Lead a new flight — or, when an earlier flight still occupies
		// the slot after maxJoinedFlights failed joins, execute solo
		// without registering (the occupying flight keeps serving its own
		// waiters).
		var f *flight[V]
		solo := false
		if _, occupied := c.flights[fk]; occupied {
			solo = true
		} else {
			//tr:alloc-ok miss path only: the hit path returned above
			f = &flight[V]{done: make(chan struct{})}
			c.flights[fk] = f
		}
		c.mu.Unlock()

		c.misses.Add(1)
		val, err := fn()

		if solo {
			if err == nil {
				c.mu.Lock()
				c.storeLocked(key, version, val)
				c.mu.Unlock()
			}
			return val, false, err
		}
		f.val, f.err = val, err
		c.mu.Lock()
		delete(c.flights, fk)
		if err == nil {
			c.storeLocked(key, version, val)
		}
		c.mu.Unlock()
		close(f.done)
		return val, false, err
	}
}

// storeLocked inserts or refreshes an entry, evicting from the LRU tail
// past capacity. Caller holds c.mu.
func (c *Cache[K, V]) storeLocked(key K, version uint64, val V) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[K, V])
		e.version = version
		e.versions = nil
		e.val = val
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry[K, V]{key: key, version: version, val: val})
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		e := back.Value.(*entry[K, V])
		c.lru.Remove(back)
		delete(c.entries, e.key)
	}
}
