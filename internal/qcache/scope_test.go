package qcache

import (
	"context"
	"math/rand"
	"sync"
	"testing"
)

func TestScopeOverlaps(t *testing.T) {
	cases := []struct {
		a, b Scope
		want bool
	}{
		{Scope{Series: 1, T1: 0, T2: 10}, Scope{Series: 1, T1: 5, T2: 15}, true},
		{Scope{Series: 1, T1: 0, T2: 10}, Scope{Series: 2, T1: 5, T2: 15}, false},
		{Scope{Series: -1, T1: 0, T2: 10}, Scope{Series: 2, T1: 5, T2: 15}, true},
		{Scope{Series: 1, T1: 0, T2: 10}, Scope{Series: -1, T1: 5, T2: 15}, true},
		{Scope{Series: 1, T1: 0, T2: 10}, Scope{Series: 1, T1: 10, T2: 20}, true},  // closed: touching endpoints share t=10
		{Scope{Series: 1, T1: 0, T2: 10}, Scope{Series: 1, T1: 11, T2: 20}, false}, // disjoint in time
		{ScopeAll, Scope{Series: 7, T1: 1e9, T2: 1e9}, true},
		{Scope{Series: 3, T1: 5, T2: 5}, Scope{Series: 3, T1: 5, T2: 5}, true}, // instant on instant
	}
	for i, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("case %d: %+v.Overlaps(%+v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("case %d: overlap not symmetric", i)
		}
	}
}

func TestJournalUnchanged(t *testing.T) {
	j := NewJournal(8)
	probe := Scope{Series: 1, T1: 0, T2: 10}

	if upTo, ok := j.Unchanged(0, probe); !ok || upTo != 0 {
		t.Fatalf("fresh journal: (%d, %v), want (0, true)", upTo, ok)
	}
	v1 := j.Advance(Scope{Series: 2, T1: 0, T2: 10}) // other series
	if v1 != 1 {
		t.Fatalf("first event version %d", v1)
	}
	if upTo, ok := j.Unchanged(0, probe); !ok || upTo != 1 {
		t.Fatalf("non-overlapping event broke validity: (%d, %v)", upTo, ok)
	}
	j.Advance(Scope{Series: 1, T1: 20, T2: 30}) // same series, disjoint time
	if _, ok := j.Unchanged(0, probe); !ok {
		t.Fatal("disjoint-time event broke validity")
	}
	j.Advance(Scope{Series: 1, T1: 5, T2: 6}) // overlapping
	if _, ok := j.Unchanged(0, probe); ok {
		t.Fatal("overlapping event not detected")
	}
	// Validity resumes past the overlapping event.
	if upTo, ok := j.Unchanged(3, probe); !ok || upTo != 3 {
		t.Fatalf("validity past the overlap: (%d, %v)", upTo, ok)
	}
}

// TestJournalEvictionConservative: once the ring has dropped the needed
// history, Unchanged must report changed even when every evicted event
// was harmless.
func TestJournalEvictionConservative(t *testing.T) {
	j := NewJournal(4)
	probe := Scope{Series: 1, T1: 0, T2: 10}
	for i := 0; i < 4; i++ {
		j.Advance(Scope{Series: 99, T1: 1000, T2: 1001}) // far away
	}
	if _, ok := j.Unchanged(0, probe); !ok {
		t.Fatal("history still fully in the ring, should validate")
	}
	j.Advance(Scope{Series: 99, T1: 1000, T2: 1001}) // pushes event 1 out
	if _, ok := j.Unchanged(0, probe); ok {
		t.Fatal("evicted history validated — must be conservative")
	}
	if _, ok := j.Unchanged(1, probe); !ok {
		t.Fatal("since=1 needs events 2..5, all retained — should validate")
	}
}

func TestJournalCoarse(t *testing.T) {
	j := NewJournal(8)
	j.SetCoarse(true)
	j.Advance(Scope{Series: 5, T1: 100, T2: 101})
	if _, ok := j.Unchanged(0, Scope{Series: 6, T1: 0, T2: 1}); ok {
		t.Fatal("coarse mode must record ScopeAll: unrelated scope validated")
	}
	j.SetCoarse(false)
	j.Advance(Scope{Series: 5, T1: 100, T2: 101})
	if _, ok := j.Unchanged(1, Scope{Series: 6, T1: 0, T2: 1}); !ok {
		t.Fatal("scoped mode resumed, unrelated scope should validate")
	}
}

// TestDoScopedProperty is the randomized model check for scoped
// invalidation: against a replayable model of every journal event, a
// cached answer is served iff no event recorded since the entry's
// (continually re-validated) version overlaps its scope — and a served
// answer is always the exact value stored.
func TestDoScopedProperty(t *testing.T) {
	const (
		keys   = 6
		series = 4
		steps  = 4000
	)
	rng := rand.New(rand.NewSource(42))
	c := New[int, int](keys) // capacity == keys: no LRU eviction interferes
	j := NewJournal(0)       // default capacity far above steps between lookups
	ctx := context.Background()

	// The model: every event ever recorded, plus per-key entry state.
	type modelEntry struct {
		validatedAt uint64 // events <= this are known non-overlapping
		scope       Scope
		val         int
		live        bool
	}
	var events []Scope // events[v-1] is the scope of version v
	model := make([]modelEntry, keys)
	randScope := func() Scope {
		t1 := rng.Float64() * 100
		return Scope{Series: rng.Intn(series), T1: t1, T2: t1 + rng.Float64()*20}
	}
	next := 1000 // distinct value per computation

	for step := 0; step < steps; step++ {
		if rng.Intn(2) == 0 {
			s := randScope()
			j.Advance(s)
			events = append(events, s)
			continue
		}
		key := rng.Intn(keys)
		var scope Scope
		if m := model[key]; m.live {
			scope = m.scope // a key's scope is stable, like a query's footprint
		} else {
			scope = randScope()
		}
		// What the model predicts BEFORE the call.
		expectHit := false
		if m := model[key]; m.live {
			expectHit = true
			for v := m.validatedAt + 1; v <= uint64(len(events)); v++ {
				if events[v-1].Overlaps(m.scope) {
					expectHit = false
					break
				}
			}
		}
		next++
		mine := next
		got, cached, err := c.DoScoped(ctx, key, []*Journal{j}, scope, func() (int, error) {
			return mine, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if cached != expectHit {
			t.Fatalf("step %d key %d: cached=%v, model says %v (validatedAt=%d, events=%d)",
				step, key, cached, expectHit, model[key].validatedAt, len(events))
		}
		if cached {
			if got != model[key].val {
				t.Fatalf("step %d key %d: served %d, stored value was %d — STALE",
					step, key, got, model[key].val)
			}
			model[key].validatedAt = uint64(len(events))
		} else {
			if got != mine {
				t.Fatalf("step %d key %d: miss returned %d, fn computed %d", step, key, got, mine)
			}
			model[key] = modelEntry{validatedAt: uint64(len(events)), scope: scope, val: mine, live: true}
		}
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("degenerate run: %+v — property not exercised", st)
	}
}

// TestDoScopedMultiJournal: with several journals (the cluster case),
// an overlapping event in ANY journal invalidates.
func TestDoScopedMultiJournal(t *testing.T) {
	c := New[string, int](4)
	j1, j2 := NewJournal(8), NewJournal(8)
	js := []*Journal{j1, j2}
	scope := Scope{Series: -1, T1: 0, T2: 10}
	ctx := context.Background()

	calls := 0
	fn := func() (int, error) { calls++; return calls, nil }
	if _, cached, _ := c.DoScoped(ctx, "q", js, scope, fn); cached {
		t.Fatal("first call hit")
	}
	if _, cached, _ := c.DoScoped(ctx, "q", js, scope, fn); !cached {
		t.Fatal("unchanged journals missed")
	}
	j2.Advance(Scope{Series: 0, T1: 5, T2: 6})
	if _, cached, _ := c.DoScoped(ctx, "q", js, scope, fn); cached {
		t.Fatal("overlap in second journal not detected")
	}
	j1.Advance(Scope{Series: 0, T1: 100, T2: 101}) // outside scope
	if _, cached, _ := c.DoScoped(ctx, "q", js, scope, fn); !cached {
		t.Fatal("non-overlapping event caused a miss")
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2", calls)
	}
}

// TestDoScopedDoInterplay: entries stored by the unscoped Do are never
// served by DoScoped and vice versa — the two validity disciplines
// don't cross-contaminate.
func TestDoScopedDoInterplay(t *testing.T) {
	c := New[string, int](4)
	j := NewJournal(8)
	ctx := context.Background()
	scope := Scope{Series: -1, T1: 0, T2: 10}

	if _, _, err := c.Do(ctx, "k", 7, func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, cached, _ := c.DoScoped(ctx, "k", []*Journal{j}, scope, func() (int, error) { return 2, nil }); cached {
		t.Fatal("DoScoped served a Do entry")
	}
	if _, cached, _ := c.Do(ctx, "k", 7, func() (int, error) { return 3, nil }); cached {
		t.Fatal("Do served a DoScoped entry")
	}
}

// TestDoScopedHitRatioBeatsCoarse is the regression the scoped design
// exists for: under a frontier-writer workload (appends always past
// the cached windows), scoped invalidation keeps serving hits while
// the coarse global-nuke baseline misses on every post-append lookup.
func TestDoScopedHitRatioBeatsCoarse(t *testing.T) {
	run := func(coarse bool) Stats {
		c := New[string, int](16)
		j := NewJournal(0)
		j.SetCoarse(coarse)
		ctx := context.Background()
		frontier := 1000.0
		for i := 0; i < 200; i++ {
			// One append at the frontier, then two queries about the past.
			j.Advance(Scope{Series: i % 8, T1: frontier, T2: frontier + 1})
			frontier++
			for _, key := range []string{"old-a", "old-b"} {
				scope := Scope{Series: -1, T1: 0, T2: 100}
				if _, _, err := c.DoScoped(ctx, key, []*Journal{j}, scope, func() (int, error) { return i, nil }); err != nil {
					t.Fatal(err)
				}
			}
		}
		return c.Stats()
	}
	scoped := run(false)
	coarse := run(true)
	scopedRatio := float64(scoped.Hits) / float64(scoped.Hits+scoped.Misses)
	coarseRatio := float64(coarse.Hits) / float64(coarse.Hits+coarse.Misses)
	if scopedRatio <= coarseRatio {
		t.Fatalf("scoped hit ratio %.3f not better than coarse %.3f", scopedRatio, coarseRatio)
	}
	if scoped.Hits < 390 { // 400 lookups, 2 cold misses
		t.Fatalf("scoped mode should hit nearly always: %+v", scoped)
	}
	if coarse.Hits != 0 {
		t.Fatalf("coarse mode with an append before every lookup pair should never hit: %+v", coarse)
	}
}

// TestDoScopedConcurrent exercises the zero-alloc validated-hit path
// and the flight identity under concurrency; run with -race.
func TestDoScopedConcurrent(t *testing.T) {
	c := New[int, int](8)
	j := NewJournal(0)
	ctx := context.Background()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			j.Advance(Scope{Series: i % 3, T1: float64(i), T2: float64(i + 1)})
		}
	}()
	var errs [4]error
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := i % 8
				scope := Scope{Series: key % 3, T1: float64(i % 50), T2: float64(i%50 + 5)}
				if _, _, err := c.DoScoped(ctx, key, []*Journal{j}, scope, func() (int, error) { return i, nil }); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	<-done
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// BenchmarkDoScopedHit asserts the steady-state validated-hit path
// stays allocation-free (CI checks allocs/op on the planner's cached
// benchmark; this pins the qcache layer in isolation).
func BenchmarkDoScopedHit(b *testing.B) {
	c := New[int, int](4)
	j := NewJournal(0)
	ctx := context.Background()
	scope := Scope{Series: -1, T1: 0, T2: 10}
	if _, _, err := c.DoScoped(ctx, 1, []*Journal{j}, scope, func() (int, error) { return 7, nil }); err != nil {
		b.Fatal(err)
	}
	js := []*Journal{j}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%16 == 0 {
			j.Advance(Scope{Series: 0, T1: 1000, T2: 1001}) // never overlaps
		}
		if _, cached, _ := c.DoScoped(ctx, 1, js, scope, func() (int, error) { return 7, nil }); !cached {
			b.Fatal("hit path missed")
		}
	}
}
