package pla

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"temporalrank/internal/tsdata"
)

// noisySine produces samples of a sine with volatility bursts: smooth
// regions reward adaptive segmentation.
func noisySine(rng *rand.Rand, n int) []Sample {
	out := make([]Sample, n)
	t := 0.0
	for i := 0; i < n; i++ {
		v := 50 + 30*math.Sin(t/10)
		// A volatile burst in the middle fifth.
		if i > 2*n/5 && i < 3*n/5 {
			v += rng.NormFloat64() * 15
		}
		out[i] = Sample{T: t, V: v}
		t += 0.5 + rng.Float64()*0.5
	}
	return out
}

func TestValidate(t *testing.T) {
	if _, err := FixedInterval([]Sample{{T: 0, V: 1}}, 2); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := FixedInterval([]Sample{{T: 0, V: 1}, {T: 0, V: 2}}, 2); err == nil {
		t.Error("duplicate time accepted")
	}
	if _, err := FixedInterval([]Sample{{T: 0, V: math.NaN()}, {T: 1, V: 2}}, 2); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := FixedInterval([]Sample{{T: 0, V: 1}, {T: 1, V: 2}}, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := SlidingWindow([]Sample{{T: 0, V: 1}, {T: 1, V: 2}}, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestFixedIntervalCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := noisySine(rng, 200)
	for _, n := range []int{1, 5, 20, 100} {
		r, err := FixedInterval(samples, n)
		if err != nil {
			t.Fatal(err)
		}
		if r.NumSegments() > n {
			t.Errorf("n=%d: got %d segments", n, r.NumSegments())
		}
		if r.Times[0] != samples[0].T || r.Times[len(r.Times)-1] != samples[len(samples)-1].T {
			t.Errorf("n=%d: endpoints not preserved", n)
		}
	}
}

func TestSlidingWindowRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := noisySine(rng, 300)
	for _, budget := range []float64{1, 5, 20} {
		r, err := SlidingWindow(samples, budget)
		if err != nil {
			t.Fatal(err)
		}
		// The greedy split guarantees each segment's internal deviation
		// is within budget when measured against its own span.
		if got := r.Error(samples); got > budget*(1+1e-9) {
			t.Errorf("budget %g: error %g", budget, got)
		}
	}
}

func TestBottomUpRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := noisySine(rng, 150)
	for _, budget := range []float64{1, 5, 20} {
		r, err := BottomUp(samples, budget)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Error(samples); got > budget*(1+1e-9) {
			t.Errorf("budget %g: error %g", budget, got)
		}
	}
}

func TestTighterBudgetMoreSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := noisySine(rng, 300)
	loose, _ := SlidingWindow(samples, 20)
	tight, _ := SlidingWindow(samples, 1)
	if tight.NumSegments() <= loose.NumSegments() {
		t.Errorf("tight budget %d segments <= loose %d", tight.NumSegments(), loose.NumSegments())
	}
}

// TestAdaptiveBeatsFixed reproduces the paper's observation 2: at equal
// segment counts, the adaptive (bottom-up) method achieves lower error
// than the fixed-interval method on data with non-uniform volatility.
func TestAdaptiveBeatsFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	wins := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		samples := noisySine(rng, 200)
		const n = 25
		fixed, err := FixedInterval(samples, n)
		if err != nil {
			t.Fatal(err)
		}
		adaptive, err := BottomUpBudget(samples, fixed.NumSegments())
		if err != nil {
			t.Fatal(err)
		}
		if adaptive.NumSegments() > fixed.NumSegments() {
			t.Fatalf("budget overshoot: %d > %d", adaptive.NumSegments(), fixed.NumSegments())
		}
		if adaptive.Error(samples) < fixed.Error(samples) {
			wins++
		}
	}
	if wins < trials*7/10 {
		t.Errorf("adaptive beat fixed only %d/%d times", wins, trials)
	}
}

// TestResultFeedsSeries: segmentation output plugs into the data model
// and preserves aggregates up to δ·(t2−t1).
func TestResultFeedsSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	samples := noisySine(rng, 250)
	const budget = 2.0
	r, err := BottomUp(samples, budget)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tsdata.NewSeries(0, r.Times, r.Values)
	if err != nil {
		t.Fatalf("segmentation output rejected by tsdata: %v", err)
	}
	// Dense (per-sample) reference series.
	times := make([]float64, len(samples))
	values := make([]float64, len(samples))
	for i, sm := range samples {
		times[i] = sm.T
		values[i] = sm.V
	}
	dense, err := tsdata.NewSeries(1, times, values)
	if err != nil {
		t.Fatal(err)
	}
	t1 := samples[20].T
	t2 := samples[200].T
	got := s.Range(t1, t2)
	want := dense.Range(t1, t2)
	if d := math.Abs(got - want); d > budget*(t2-t1) {
		t.Errorf("aggregate drift %g exceeds δ(t2-t1) = %g", d, budget*(t2-t1))
	}
}

// Property: all three segmenters preserve the first and last samples
// exactly and emit strictly increasing times.
func TestSegmentersWellFormedProperty(t *testing.T) {
	f := func(seed int64, mode uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		samples := noisySine(rng, 20+rng.Intn(150))
		var (
			r   Result
			err error
		)
		switch mode % 3 {
		case 0:
			r, err = FixedInterval(samples, 1+rng.Intn(30))
		case 1:
			r, err = SlidingWindow(samples, rng.Float64()*10)
		default:
			r, err = BottomUp(samples, rng.Float64()*10)
		}
		if err != nil {
			return false
		}
		if len(r.Times) != len(r.Values) || len(r.Times) < 2 {
			return false
		}
		if r.Times[0] != samples[0].T || r.Values[0] != samples[0].V {
			return false
		}
		last := len(samples) - 1
		if r.Times[len(r.Times)-1] != samples[last].T || r.Values[len(r.Values)-1] != samples[last].V {
			return false
		}
		for i := 1; i < len(r.Times); i++ {
			if r.Times[i] <= r.Times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestZeroBudgetKeepsCollinearOnly(t *testing.T) {
	// Perfectly collinear samples collapse to one segment even at
	// budget 0.
	samples := []Sample{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	r, err := BottomUp(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumSegments() != 1 {
		t.Errorf("collinear: %d segments, want 1", r.NumSegments())
	}
	// Non-collinear data stays fully resolved.
	bent := []Sample{{0, 0}, {1, 5}, {2, 0}}
	r, err = BottomUp(bent, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumSegments() != 2 {
		t.Errorf("bent: %d segments, want 2", r.NumSegments())
	}
}
