// Package pla converts raw sampled time series into the
// piecewise-linear representation the ranking indexes consume — the
// preprocessing step the paper assumes has already happened (§1: "we
// assume that the data has already been converted to a piecewise
// linear representation by any segmentation method", citing the
// piecewise-linear-approximation literature [12, 16, 6, 1]).
//
// Three classic segmenters are provided:
//
//   - FixedInterval: non-adaptive; one vertex every N/n samples.
//   - SlidingWindow: online greedy; grows a segment until its L∞
//     deviation would exceed the budget (Keogh et al., ICDM 2001).
//   - BottomUp: offline; starts from per-sample segments and
//     repeatedly merges the cheapest adjacent pair while the budget
//     holds — the adaptive method the paper's observation 2 says beats
//     non-adaptive segmentation at equal segment counts.
//
// Error metric: maximum vertical deviation (L∞) of dropped samples
// from the interpolating line, which composes soundly with the
// indexes' own (ε,α) guarantees: a PLA with L∞ error δ shifts any
// σ_i(t1,t2) by at most δ·(t2−t1).
package pla

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one raw reading.
type Sample struct {
	T float64
	V float64
}

// validate checks samples are finite, time-sorted and deduplicated.
func validate(samples []Sample) error {
	if len(samples) < 2 {
		return fmt.Errorf("pla: need at least 2 samples, got %d", len(samples))
	}
	for i, s := range samples {
		if math.IsNaN(s.T) || math.IsInf(s.T, 0) || math.IsNaN(s.V) || math.IsInf(s.V, 0) {
			return fmt.Errorf("pla: non-finite sample %d", i)
		}
		if i > 0 && s.T <= samples[i-1].T {
			return fmt.Errorf("pla: times not strictly increasing at %d", i)
		}
	}
	return nil
}

// Result is a segmentation: vertex lists ready for tsdata.NewSeries.
type Result struct {
	Times  []float64
	Values []float64
}

// NumSegments returns the number of linear pieces.
func (r Result) NumSegments() int { return len(r.Times) - 1 }

// maxDeviation returns the L∞ error of approximating samples[lo..hi]
// (inclusive) by the straight line between its endpoints.
func maxDeviation(samples []Sample, lo, hi int) float64 {
	a, b := samples[lo], samples[hi]
	dt := b.T - a.T
	var worst float64
	for i := lo + 1; i < hi; i++ {
		w := (samples[i].T - a.T) / dt
		lineV := a.V*(1-w) + b.V*w
		if d := math.Abs(samples[i].V - lineV); d > worst {
			worst = d
		}
	}
	return worst
}

// Error reports the L∞ deviation of the segmentation against the
// original samples (each sample compared to the covering segment).
func (r Result) Error(samples []Sample) float64 {
	var worst float64
	for _, s := range samples {
		idx := sort.SearchFloat64s(r.Times, s.T)
		if idx >= len(r.Times) {
			idx = len(r.Times) - 1
		}
		var lo int
		if r.Times[idx] == s.T {
			continue // vertex: exact
		}
		lo = idx - 1
		if lo < 0 {
			lo = 0
		}
		dt := r.Times[lo+1] - r.Times[lo]
		w := (s.T - r.Times[lo]) / dt
		lineV := r.Values[lo]*(1-w) + r.Values[lo+1]*w
		if d := math.Abs(s.V - lineV); d > worst {
			worst = d
		}
	}
	return worst
}

// FixedInterval keeps every ceil((N-1)/n)-th sample as a vertex,
// producing at most n segments regardless of local volatility.
func FixedInterval(samples []Sample, n int) (Result, error) {
	if err := validate(samples); err != nil {
		return Result{}, err
	}
	if n < 1 {
		return Result{}, fmt.Errorf("pla: need n >= 1 segments, got %d", n)
	}
	last := len(samples) - 1
	step := (last + n - 1) / n
	if step < 1 {
		step = 1
	}
	var r Result
	for i := 0; i < last; i += step {
		r.Times = append(r.Times, samples[i].T)
		r.Values = append(r.Values, samples[i].V)
	}
	r.Times = append(r.Times, samples[last].T)
	r.Values = append(r.Values, samples[last].V)
	return r, nil
}

// SlidingWindow grows each segment greedily until adding the next
// sample would push the segment's L∞ deviation past maxErr.
func SlidingWindow(samples []Sample, maxErr float64) (Result, error) {
	if err := validate(samples); err != nil {
		return Result{}, err
	}
	if maxErr < 0 {
		return Result{}, fmt.Errorf("pla: negative error budget %g", maxErr)
	}
	var r Result
	r.Times = append(r.Times, samples[0].T)
	r.Values = append(r.Values, samples[0].V)
	anchor := 0
	for i := 2; i < len(samples); i++ {
		if maxDeviation(samples, anchor, i) > maxErr {
			r.Times = append(r.Times, samples[i-1].T)
			r.Values = append(r.Values, samples[i-1].V)
			anchor = i - 1
		}
	}
	last := len(samples) - 1
	r.Times = append(r.Times, samples[last].T)
	r.Values = append(r.Values, samples[last].V)
	return r, nil
}

// BottomUp starts with one segment per adjacent sample pair and merges
// the cheapest adjacent pair of segments while the merged segment's
// deviation stays within maxErr. O(N²) worst case in this simple
// implementation (N = samples per object is modest after per-object
// splitting; the classic heap-based variant is O(N log N)).
func BottomUp(samples []Sample, maxErr float64) (Result, error) {
	if err := validate(samples); err != nil {
		return Result{}, err
	}
	if maxErr < 0 {
		return Result{}, fmt.Errorf("pla: negative error budget %g", maxErr)
	}
	// boundaries[i] = sample index of vertex i.
	boundaries := make([]int, len(samples))
	for i := range boundaries {
		boundaries[i] = i
	}
	// cost[i] = deviation of merging segments i and i+1 (i.e. dropping
	// boundary i+1).
	for len(boundaries) > 2 {
		bestIdx, bestCost := -1, math.Inf(1)
		for i := 0; i+2 < len(boundaries); i++ {
			c := maxDeviation(samples, boundaries[i], boundaries[i+2])
			if c < bestCost {
				bestCost, bestIdx = c, i
			}
		}
		if bestCost > maxErr {
			break
		}
		boundaries = append(boundaries[:bestIdx+1], boundaries[bestIdx+2:]...)
	}
	var r Result
	for _, b := range boundaries {
		r.Times = append(r.Times, samples[b].T)
		r.Values = append(r.Values, samples[b].V)
	}
	return r, nil
}

// BottomUpBudget merges until exactly n segments remain (or no merge is
// possible), ignoring the error budget — used to compare adaptive vs
// non-adaptive segmentation at equal segment counts (the paper's
// observation 2).
func BottomUpBudget(samples []Sample, n int) (Result, error) {
	if err := validate(samples); err != nil {
		return Result{}, err
	}
	if n < 1 {
		return Result{}, fmt.Errorf("pla: need n >= 1 segments, got %d", n)
	}
	boundaries := make([]int, len(samples))
	for i := range boundaries {
		boundaries[i] = i
	}
	for len(boundaries)-1 > n {
		bestIdx, bestCost := -1, math.Inf(1)
		for i := 0; i+2 < len(boundaries); i++ {
			c := maxDeviation(samples, boundaries[i], boundaries[i+2])
			if c < bestCost {
				bestCost, bestIdx = c, i
			}
		}
		if bestIdx < 0 {
			break
		}
		boundaries = append(boundaries[:bestIdx+1], boundaries[bestIdx+2:]...)
	}
	var r Result
	for _, b := range boundaries {
		r.Times = append(r.Times, samples[b].T)
		r.Values = append(r.Values, samples[b].V)
	}
	return r, nil
}
