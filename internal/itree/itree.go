// Package itree implements a static external-memory interval tree over
// a blockio.Device, supporting stabbing queries: given t, report every
// stored interval [lo, hi) that contains t.
//
// It is the substrate of the paper's best exact method, EXACT3 (§2,
// "Using one interval tree"): the I⁻ interval decomposition of all m
// objects is indexed in one structure, and a top-k(t1,t2,sum) query
// reduces to two stabbing queries that each return exactly one entry
// per object, in O(log_B N + m/B) IOs.
//
// The classic centered interval tree is used (intervals stored at the
// highest node whose center they contain, in two lists sorted by left
// endpoint ascending and right endpoint descending), serialized onto
// device pages: one page per node, plus chained list pages. This is a
// simplification of the Arge–Vitter external interval tree the paper
// cites — same static query-IO behaviour, simpler construction — which
// suffices because EXACT3 only appends at the time frontier (handled by
// a small in-memory tail, see exact.Exact3).
package itree

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"temporalrank/internal/blockio"
)

// Interval is a half-open interval [Lo, Hi) with an opaque fixed-size
// payload.
type Interval struct {
	Lo, Hi  float64
	Payload []byte
}

// Contains reports whether t ∈ [Lo, Hi).
func (iv Interval) Contains(t float64) bool { return iv.Lo <= t && t < iv.Hi }

// Tree is a read-only interval tree on a device.
type Tree struct {
	dev          blockio.Device
	payloadSize  int
	root         blockio.PageID
	numIntervals int
	height       int
	listCap      int // entries per list page
}

const (
	nodeSize       = 8 + 8 + 8 + 8 + 4 + 8 + 4 // center, left, right, lHead, lCount, rHead, rCount
	listHeaderSize = 2 + 8                     // count uint16, next PageID
	intervalSize   = 16                        // lo, hi
)

// Build constructs the tree from the given intervals (any order).
// Every payload must have length payloadSize and every interval must
// satisfy Lo < Hi.
func Build(dev blockio.Device, payloadSize int, intervals []Interval) (*Tree, error) {
	t := &Tree{dev: dev, payloadSize: payloadSize}
	t.listCap = (dev.BlockSize() - listHeaderSize) / (intervalSize + payloadSize)
	if t.listCap < 1 || dev.BlockSize() < nodeSize {
		return nil, fmt.Errorf("itree: block size %d too small for payload %d", dev.BlockSize(), payloadSize)
	}
	for i, iv := range intervals {
		if !(iv.Lo < iv.Hi) {
			return nil, fmt.Errorf("itree: interval %d degenerate: [%g,%g)", i, iv.Lo, iv.Hi)
		}
		if len(iv.Payload) != payloadSize {
			return nil, fmt.Errorf("itree: interval %d payload %d bytes, want %d", i, len(iv.Payload), payloadSize)
		}
	}
	t.numIntervals = len(intervals)
	work := append([]Interval(nil), intervals...)
	root, height, err := t.build(work, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.height = height
	return t, nil
}

// Meta is the handful of fields that, together with the device holding
// the node pages, fully determine a Tree. Snapshot checkpoints persist
// it alongside the raw page image; Open reattaches.
type Meta struct {
	Root         blockio.PageID
	Height       int
	NumIntervals int
	PayloadSize  int
}

// Meta captures the tree's persistent handle state.
func (t *Tree) Meta() Meta {
	return Meta{Root: t.root, Height: t.height, NumIntervals: t.numIntervals, PayloadSize: t.payloadSize}
}

// Open reattaches a tree to node pages already present on dev (the
// restore path — no nodes are rebuilt). An empty tree has an invalid
// root and zero height, exactly as Build leaves it for no intervals.
func Open(dev blockio.Device, m Meta) (*Tree, error) {
	if m.NumIntervals < 0 || m.PayloadSize < 1 {
		return nil, fmt.Errorf("itree: invalid meta %+v", m)
	}
	t := &Tree{dev: dev, payloadSize: m.PayloadSize, root: m.Root, height: m.Height, numIntervals: m.NumIntervals}
	t.listCap = (dev.BlockSize() - listHeaderSize) / (intervalSize + m.PayloadSize)
	if t.listCap < 1 || dev.BlockSize() < nodeSize {
		return nil, fmt.Errorf("itree: block size %d too small for payload %d", dev.BlockSize(), m.PayloadSize)
	}
	if m.NumIntervals > 0 && (m.Root == blockio.InvalidPage || m.Height < 1) {
		return nil, fmt.Errorf("itree: meta claims %d intervals but no root", m.NumIntervals)
	}
	return t, nil
}

// Len returns the number of stored intervals.
func (t *Tree) Len() int { return t.numIntervals }

// Height returns the node depth of the tree.
func (t *Tree) Height() int { return t.height }

// maxDepth guards against degenerate recursion; 64 levels is far beyond
// any balanced shape for in-range inputs.
const maxDepth = 64

func (t *Tree) build(ivs []Interval, depth int) (blockio.PageID, int, error) {
	if len(ivs) == 0 {
		return blockio.InvalidPage, 0, nil
	}
	if depth > maxDepth {
		return blockio.InvalidPage, 0, fmt.Errorf("itree: degenerate recursion (depth %d, %d intervals)", depth, len(ivs))
	}
	center := pickCenter(ivs)
	var left, mid, right []Interval
	for _, iv := range ivs {
		switch {
		case iv.Hi <= center:
			left = append(left, iv)
		case iv.Lo > center:
			right = append(right, iv)
		default:
			mid = append(mid, iv)
		}
	}
	if len(mid) == 0 && (len(left) == len(ivs) || len(right) == len(ivs)) {
		return blockio.InvalidPage, 0, fmt.Errorf("itree: center %g did not split %d intervals", center, len(ivs))
	}

	leftPage, lh, err := t.build(left, depth+1)
	if err != nil {
		return blockio.InvalidPage, 0, err
	}
	rightPage, rh, err := t.build(right, depth+1)
	if err != nil {
		return blockio.InvalidPage, 0, err
	}

	// Lists: ascending lo, and descending hi.
	byLo := append([]Interval(nil), mid...)
	sort.Slice(byLo, func(a, b int) bool { return byLo[a].Lo < byLo[b].Lo })
	byHi := append([]Interval(nil), mid...)
	sort.Slice(byHi, func(a, b int) bool { return byHi[a].Hi > byHi[b].Hi })

	lHead, err := t.writeList(byLo)
	if err != nil {
		return blockio.InvalidPage, 0, err
	}
	rHead, err := t.writeList(byHi)
	if err != nil {
		return blockio.InvalidPage, 0, err
	}

	page, err := t.dev.Alloc()
	if err != nil {
		return blockio.InvalidPage, 0, err
	}
	buf := make([]byte, t.dev.BlockSize())
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(center))
	putPageID(buf[8:], leftPage)
	putPageID(buf[16:], rightPage)
	putPageID(buf[24:], lHead)
	binary.LittleEndian.PutUint32(buf[32:], uint32(len(mid)))
	putPageID(buf[36:], rHead)
	binary.LittleEndian.PutUint32(buf[44:], uint32(len(mid)))
	if err := t.dev.Write(page, buf); err != nil {
		return blockio.InvalidPage, 0, err
	}
	h := 1
	if lh+1 > h {
		h = lh + 1
	}
	if rh+1 > h {
		h = rh + 1
	}
	return page, h, nil
}

// pickCenter returns the midpoint of the two middle endpoints, which
// balances endpoint counts across children.
func pickCenter(ivs []Interval) float64 {
	eps := make([]float64, 0, 2*len(ivs))
	for _, iv := range ivs {
		eps = append(eps, iv.Lo, iv.Hi)
	}
	sort.Float64s(eps)
	k := len(eps) / 2
	return (eps[k-1] + eps[k]) / 2
}

// writeList serializes intervals into a chain of list pages, returning
// the head page (InvalidPage when empty). Page order preserves slice
// order so scan early-exit works.
func (t *Tree) writeList(ivs []Interval) (blockio.PageID, error) {
	if len(ivs) == 0 {
		return blockio.InvalidPage, nil
	}
	// Allocate pages first so each page can point at its successor.
	numPages := (len(ivs) + t.listCap - 1) / t.listCap
	pages := make([]blockio.PageID, numPages)
	for i := range pages {
		p, err := t.dev.Alloc()
		if err != nil {
			return blockio.InvalidPage, err
		}
		pages[i] = p
	}
	buf := make([]byte, t.dev.BlockSize())
	for pi := 0; pi < numPages; pi++ {
		start := pi * t.listCap
		end := start + t.listCap
		if end > len(ivs) {
			end = len(ivs)
		}
		for i := range buf {
			buf[i] = 0
		}
		binary.LittleEndian.PutUint16(buf[0:], uint16(end-start))
		next := blockio.InvalidPage
		if pi+1 < numPages {
			next = pages[pi+1]
		}
		putPageID(buf[2:], next)
		off := listHeaderSize
		for _, iv := range ivs[start:end] {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(iv.Lo))
			binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(iv.Hi))
			copy(buf[off+16:off+16+t.payloadSize], iv.Payload)
			off += intervalSize + t.payloadSize
		}
		if err := t.dev.Write(pages[pi], buf); err != nil {
			return blockio.InvalidPage, err
		}
	}
	return pages[0], nil
}

// Stab invokes visit for every stored interval containing t. The
// payload slice passed to visit aliases the page view of the list page
// being scanned; it is valid only for the duration of the visit call —
// copy it to retain. Iteration stops early if visit returns false.
//
// Stabs are the EXACT3 hot path (two per top-k query): each node and
// list page is decoded in place from a zero-copy view, holding at most
// one view at a time (the node header is decoded to locals and its
// view released before the lists are scanned).
//
//tr:hotpath
func (t *Tree) Stab(x float64, visit func(iv Interval) bool) error {
	page := t.root
	for page != blockio.InvalidPage {
		v, err := blockio.View(t.dev, page)
		if err != nil {
			return err
		}
		buf := v.Data()
		center := math.Float64frombits(binary.LittleEndian.Uint64(buf[0:]))
		leftPage := getPageID(buf[8:])
		rightPage := getPageID(buf[16:])
		lHead := getPageID(buf[24:])
		rHead := getPageID(buf[36:])
		v.Release()
		switch {
		case x < center:
			// Ascending-lo list: all entries with lo <= x contain x.
			//tr:alloc-ok closure captures stay on the stack: scanList does not retain fn
			done, err := t.scanList(lHead, func(iv Interval) (bool, bool) {
				if iv.Lo > x {
					return false, true // stop scanning, continue traversal
				}
				return !visit(iv), false
			})
			if err != nil {
				return err
			}
			if done {
				return nil
			}
			page = leftPage
		case x > center:
			// Descending-hi list: all entries with hi > x contain x.
			//tr:alloc-ok closure captures stay on the stack: scanList does not retain fn
			done, err := t.scanList(rHead, func(iv Interval) (bool, bool) {
				if iv.Hi <= x {
					return false, true
				}
				return !visit(iv), false
			})
			if err != nil {
				return err
			}
			if done {
				return nil
			}
			page = rightPage
		default: // x == center: every interval at this node contains x.
			//tr:alloc-ok closure captures stay on the stack: scanList does not retain fn
			_, err := t.scanList(lHead, func(iv Interval) (bool, bool) {
				return !visit(iv), false
			})
			return err
		}
	}
	return nil
}

// scanList walks a list chain, decoding entries in place from each
// page's view (released before the next page is mapped). fn returns
// (stopAll, stopScan): stopAll aborts the whole stab (visit returned
// false); stopScan ends this list early (sorted early-exit). Returns
// stopAll.
//
//tr:hotpath
func (t *Tree) scanList(head blockio.PageID, fn func(iv Interval) (bool, bool)) (bool, error) {
	page := head
	for page != blockio.InvalidPage {
		v, err := blockio.View(t.dev, page)
		if err != nil {
			return false, err
		}
		buf := v.Data()
		count := int(binary.LittleEndian.Uint16(buf[0:]))
		next := getPageID(buf[2:])
		off := listHeaderSize
		for i := 0; i < count; i++ {
			iv := Interval{
				Lo:      math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])),
				Hi:      math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
				Payload: buf[off+16 : off+16+t.payloadSize],
			}
			stopAll, stopScan := fn(iv)
			if !stopAll && !stopScan {
				off += intervalSize + t.payloadSize
				continue
			}
			v.Release()
			if stopAll {
				return true, nil
			}
			return false, nil
		}
		v.Release()
		page = next
	}
	return false, nil
}

// SetDevice re-seats the tree onto a device holding the same page
// image — the seal path swaps the build device for an Arena. The
// caller must guarantee no operation is in flight.
func (t *Tree) SetDevice(dev blockio.Device) { t.dev = dev }

func getPageID(b []byte) blockio.PageID {
	return blockio.PageID(int64(binary.LittleEndian.Uint64(b)))
}

func putPageID(b []byte, p blockio.PageID) {
	binary.LittleEndian.PutUint64(b, uint64(int64(p)))
}
