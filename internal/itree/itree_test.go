package itree

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"temporalrank/internal/blockio"
)

func payload(id uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, id)
	return b
}

func payloadID(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

func stabIDs(t *testing.T, tr *Tree, x float64) []uint32 {
	t.Helper()
	var ids []uint32
	err := tr.Stab(x, func(iv Interval) bool {
		ids = append(ids, payloadID(iv.Payload))
		return true
	})
	if err != nil {
		t.Fatalf("Stab(%g): %v", x, err)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func bruteStab(ivs []Interval, x float64) []uint32 {
	var ids []uint32
	for _, iv := range ivs {
		if iv.Contains(x) {
			ids = append(ids, payloadID(iv.Payload))
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func eqIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr, err := Build(blockio.NewMemDevice(256), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := stabIDs(t, tr, 5); len(got) != 0 {
		t.Errorf("stab on empty returned %v", got)
	}
}

func TestSingleInterval(t *testing.T) {
	ivs := []Interval{{Lo: 1, Hi: 3, Payload: payload(7)}}
	tr, err := Build(blockio.NewMemDevice(256), 4, ivs)
	if err != nil {
		t.Fatal(err)
	}
	if got := stabIDs(t, tr, 2); !eqIDs(got, []uint32{7}) {
		t.Errorf("stab(2) = %v", got)
	}
	if got := stabIDs(t, tr, 1); !eqIDs(got, []uint32{7}) {
		t.Errorf("stab(1) = %v (lo is inclusive)", got)
	}
	if got := stabIDs(t, tr, 3); len(got) != 0 {
		t.Errorf("stab(3) = %v (hi is exclusive)", got)
	}
	if got := stabIDs(t, tr, 0); len(got) != 0 {
		t.Errorf("stab(0) = %v", got)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(blockio.NewMemDevice(256), 4, []Interval{{Lo: 2, Hi: 2, Payload: payload(0)}}); err == nil {
		t.Error("degenerate interval accepted")
	}
	if _, err := Build(blockio.NewMemDevice(256), 4, []Interval{{Lo: 0, Hi: 1, Payload: make([]byte, 8)}}); err == nil {
		t.Error("wrong payload size accepted")
	}
	if _, err := Build(blockio.NewMemDevice(16), 4, []Interval{{Lo: 0, Hi: 1, Payload: payload(0)}}); err == nil {
		t.Error("tiny block size accepted")
	}
}

func TestDisjointPartitionPerObject(t *testing.T) {
	// Model the EXACT3 use: each of m objects contributes a partition
	// of [0, 100); stabbing anywhere must return exactly one interval
	// per object.
	rng := rand.New(rand.NewSource(1))
	const m = 40
	var ivs []Interval
	for obj := 0; obj < m; obj++ {
		cuts := []float64{0}
		for c := rng.Float64() * 10; c < 100; c += 0.5 + rng.Float64()*10 {
			cuts = append(cuts, c)
		}
		cuts = append(cuts, 100)
		for j := 0; j+1 < len(cuts); j++ {
			ivs = append(ivs, Interval{Lo: cuts[j], Hi: cuts[j+1], Payload: payload(uint32(obj))})
		}
	}
	tr, err := Build(blockio.NewMemDevice(512), 4, ivs)
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 200; probe++ {
		x := rng.Float64() * 99.99
		got := stabIDs(t, tr, x)
		if len(got) != m {
			t.Fatalf("stab(%g) returned %d intervals, want %d", x, len(got), m)
		}
		for i, id := range got {
			if id != uint32(i) {
				t.Fatalf("stab(%g): object %d missing", x, i)
			}
		}
	}
}

func TestStabMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := rng.Float64() * 100
			ivs[i] = Interval{Lo: lo, Hi: lo + 0.01 + rng.Float64()*30, Payload: payload(uint32(i))}
		}
		tr, err := Build(blockio.NewMemDevice(256), 4, ivs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for probe := 0; probe < 50; probe++ {
			x := rng.Float64()*140 - 10
			got := stabIDs(t, tr, x)
			want := bruteStab(ivs, x)
			if !eqIDs(got, want) {
				t.Fatalf("trial %d stab(%g): got %d ids, want %d", trial, x, len(got), len(want))
			}
		}
		// Also probe exact endpoints (boundary semantics).
		for probe := 0; probe < 20; probe++ {
			iv := ivs[rng.Intn(n)]
			for _, x := range []float64{iv.Lo, iv.Hi} {
				if !eqIDs(stabIDs(t, tr, x), bruteStab(ivs, x)) {
					t.Fatalf("trial %d endpoint stab(%g) mismatch", trial, x)
				}
			}
		}
	}
}

func TestStabEarlyExit(t *testing.T) {
	var ivs []Interval
	for i := 0; i < 50; i++ {
		ivs = append(ivs, Interval{Lo: 0, Hi: 100, Payload: payload(uint32(i))})
	}
	tr, err := Build(blockio.NewMemDevice(256), 4, ivs)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	err = tr.Stab(50, func(iv Interval) bool {
		count++
		return count < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("early exit visited %d, want 5", count)
	}
}

func TestIdenticalIntervals(t *testing.T) {
	var ivs []Interval
	for i := 0; i < 30; i++ {
		ivs = append(ivs, Interval{Lo: 5, Hi: 10, Payload: payload(uint32(i))})
	}
	tr, err := Build(blockio.NewMemDevice(128), 4, ivs)
	if err != nil {
		t.Fatal(err)
	}
	if got := stabIDs(t, tr, 7); len(got) != 30 {
		t.Errorf("identical intervals: stab found %d, want 30", len(got))
	}
	if got := stabIDs(t, tr, 10); len(got) != 0 {
		t.Errorf("hi-exclusive violated: %v", got)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	// Disjoint intervals -> pure binary splits; height ~ log2(n).
	var ivs []Interval
	n := 1024
	for i := 0; i < n; i++ {
		ivs = append(ivs, Interval{Lo: float64(i), Hi: float64(i) + 0.5, Payload: payload(uint32(i))})
	}
	tr, err := Build(blockio.NewMemDevice(4096), 4, ivs)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() > 2*11 {
		t.Errorf("height = %d for %d disjoint intervals, want O(log n)", tr.Height(), n)
	}
}

func TestStabIOBounded(t *testing.T) {
	// For a per-object partition, a stab costs O(height + m/listCap)
	// page reads, far below reading the whole structure.
	dev := blockio.NewMemDevice(4096)
	var ivs []Interval
	const m = 100
	for obj := 0; obj < m; obj++ {
		for j := 0; j < 100; j++ {
			ivs = append(ivs, Interval{Lo: float64(j), Hi: float64(j + 1), Payload: payload(uint32(obj))})
		}
	}
	tr, err := Build(dev, 4, ivs)
	if err != nil {
		t.Fatal(err)
	}
	total := dev.NumPages()
	dev.ResetStats()
	_ = stabIDs(t, tr, 42.5)
	reads := int(dev.Stats().Reads)
	if reads > total/10 {
		t.Errorf("stab read %d of %d pages; want a small fraction", reads, total)
	}
}

// Property: stab equals brute force on random inputs (quick-check
// sized-down version of the table test above).
func TestStabBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := math.Floor(rng.Float64()*40) / 2
			ivs[i] = Interval{Lo: lo, Hi: lo + 0.5 + math.Floor(rng.Float64()*20)/2, Payload: payload(uint32(i))}
		}
		tr, err := Build(blockio.NewMemDevice(128), 4, ivs)
		if err != nil {
			return false
		}
		for probe := 0; probe < 25; probe++ {
			x := math.Floor(rng.Float64()*100)/2 - 5
			var got []uint32
			if err := tr.Stab(x, func(iv Interval) bool {
				got = append(got, payloadID(iv.Payload))
				return true
			}); err != nil {
				return false
			}
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			if !eqIDs(got, bruteStab(ivs, x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
