package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"temporalrank"
	"temporalrank/internal/gen"
)

func testDB(t *testing.T) *temporalrank.DB {
	t.Helper()
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: 60, Navg: 40, Seed: 7, Span: 100})
	if err != nil {
		t.Fatal(err)
	}
	return temporalrank.NewDBFromDataset(ds)
}

func sameIDs(a, b []temporalrank.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

// TestExecBatchMatchesReference runs a large batch through the pool
// and checks every response against the brute-force reference.
func TestExecBatchMatchesReference(t *testing.T) {
	db := testDB(t)
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ix, 8)
	defer e.Close()

	rng := rand.New(rand.NewSource(42))
	span := db.End() - db.Start()
	reqs := make([]Request, 200)
	for i := range reqs {
		t1 := db.Start() + rng.Float64()*span*0.8
		t2 := t1 + rng.Float64()*span*0.2
		reqs[i] = Request{Op: OpTopK, K: 5, T1: t1, T2: t2}
	}
	resps := e.Exec(context.Background(), reqs)
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		want := db.TopK(reqs[i].K, reqs[i].T1, reqs[i].T2)
		if !sameIDs(r.Results, want) {
			t.Fatalf("query %d: got %v want %v", i, r.Results, want)
		}
	}
	st := e.Stats()
	if st.Queries != 200 {
		t.Fatalf("stats: got %d queries, want 200", st.Queries)
	}
	if st.Errors != 0 {
		t.Fatalf("stats: got %d errors, want 0", st.Errors)
	}
}

// TestDoOps exercises each op through Do.
func TestDoOps(t *testing.T) {
	db := testDB(t)
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ix, 2)
	defer e.Close()
	ctx := context.Background()
	mid := (db.Start() + db.End()) / 2

	if r := e.Do(ctx, Request{Op: OpTopK, K: 3, T1: db.Start(), T2: db.End()}); r.Err != nil || len(r.Results) != 3 {
		t.Fatalf("topk: %+v", r)
	}
	if r := e.Do(ctx, Request{Op: OpAvg, K: 3, T1: db.Start(), T2: db.End()}); r.Err != nil || len(r.Results) != 3 {
		t.Fatalf("avg: %+v", r)
	}
	if r := e.Do(ctx, Request{Op: OpInstant, K: 3, T1: mid}); r.Err != nil || len(r.Results) != 3 {
		t.Fatalf("instant: %+v", r)
	}
	if r := e.Do(ctx, Request{Op: Op("nope")}); r.Err == nil {
		t.Fatal("unknown op should fail")
	}
}

// TestClosedExecutor verifies clean failure after Close.
func TestClosedExecutor(t *testing.T) {
	db := testDB(t)
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact1})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ix, 2)
	e.Close()
	e.Close() // idempotent
	if r := e.Do(context.Background(), Request{Op: OpTopK, K: 1, T1: 0, T2: 1}); r.Err == nil {
		t.Fatal("Do after Close should fail")
	}
}

// TestBuildIndexesParallel builds all eight methods concurrently and
// cross-checks one query per index against the reference.
func TestBuildIndexesParallel(t *testing.T) {
	db := testDB(t)
	var opts []temporalrank.Options
	for _, m := range temporalrank.Methods() {
		opts = append(opts, temporalrank.Options{Method: m, TargetR: 80, KMax: 50, BuildWorkers: 4})
	}
	ixs, err := BuildIndexes(db, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	t1 := db.Start() + (db.End()-db.Start())*0.3
	t2 := db.Start() + (db.End()-db.Start())*0.7
	want := db.TopK(5, t1, t2)
	for i, ix := range ixs {
		got, err := ix.TopK(5, t1, t2)
		if err != nil {
			t.Fatalf("%s: %v", opts[i].Method, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: got %d results, want %d", opts[i].Method, len(got), len(want))
		}
		// Exact methods must match the reference exactly.
		if i < 3 && !sameIDs(got, want) {
			t.Fatalf("%s: got %v want %v", opts[i].Method, got, want)
		}
	}
}

// TestExact2ParallelBuildMatchesSequential verifies the per-series
// parallel construction answers identically to the sequential build.
func TestExact2ParallelBuildMatchesSequential(t *testing.T) {
	db := testDB(t)
	seq, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact2})
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact2, BuildWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	span := db.End() - db.Start()
	for q := 0; q < 50; q++ {
		t1 := db.Start() + rng.Float64()*span*0.8
		t2 := t1 + rng.Float64()*span*0.2
		a, err := seq.TopK(7, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.TopK(7, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(a, b) {
			t.Fatalf("query %d: sequential %v parallel %v", q, a, b)
		}
	}
}

// TestRunBatchQueries drives the unified Query path through the pool
// and cross-checks the reference, including planner-backed executors.
func TestRunBatchQueries(t *testing.T) {
	db := testDB(t)
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	planner, err := temporalrank.NewPlanner(db, ix)
	if err != nil {
		t.Fatal(err)
	}
	e := NewQuerier(planner, 8)
	defer e.Close()

	rng := rand.New(rand.NewSource(9))
	span := db.End() - db.Start()
	qs := make([]temporalrank.Query, 100)
	for i := range qs {
		t1 := db.Start() + rng.Float64()*span*0.8
		qs[i] = temporalrank.SumQuery(5, t1, t1+rng.Float64()*span*0.2)
	}
	results := e.RunBatch(context.Background(), qs)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if !r.Answer.Exact {
			t.Fatalf("query %d: exact index answered approximately", i)
		}
		if !sameIDs(r.Answer.Results, db.TopK(qs[i].K, qs[i].T1, qs[i].T2)) {
			t.Fatalf("query %d: wrong answer", i)
		}
	}

	// Executor is itself a Querier.
	var q temporalrank.Querier = e
	ans, err := q.Run(context.Background(), temporalrank.SumQuery(3, db.Start(), db.End()))
	if err != nil || len(ans.Results) != 3 {
		t.Fatalf("executor as Querier: %v %+v", err, ans)
	}
}

// TestBatchCancellation is the acceptance test for context threading:
// cancelling an in-flight batch terminates it promptly — queued jobs
// are dropped without touching the backend, and only the at-most-
// Workers() queries already executing finish. Run under -race.
func TestBatchCancellation(t *testing.T) {
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: 400, Navg: 60, Seed: 3, Span: 100})
	if err != nil {
		t.Fatal(err)
	}
	db := temporalrank.NewDBFromDataset(ds)
	// The brute-force backend scans all 400 series per query, so a
	// batch of 500 queries on 2 workers is far from done when we cancel.
	e := NewQuerier(db, 2)
	defer e.Close()

	qs := make([]temporalrank.Query, 500)
	for i := range qs {
		qs[i] = temporalrank.SumQuery(10, db.Start(), db.End())
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []Result, 1)
	go func() { done <- e.RunBatch(ctx, qs) }()
	cancel()

	results := <-done
	var cancelled, completed int
	for _, r := range results {
		switch {
		case r.Err == nil:
			completed++
		case errors.Is(r.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("unexpected error: %v", r.Err)
		}
	}
	if cancelled == 0 {
		t.Fatal("cancellation observed no ctx.Err() results")
	}
	if completed == len(qs) {
		t.Fatal("every query completed despite cancellation")
	}
	t.Logf("batch of %d: %d completed, %d cancelled", len(qs), completed, cancelled)
}

// TestLegacyShimsDelegate: the deprecated Request/Response API is a
// thin veneer over Run and yields identical answers.
func TestLegacyShimsDelegate(t *testing.T) {
	db := testDB(t)
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact2})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ix, 2)
	defer e.Close()
	if e.Index() != ix {
		t.Fatal("Index() accessor lost the index")
	}
	ctx := context.Background()
	legacy := e.Do(ctx, Request{Op: OpTopK, K: 4, T1: db.Start(), T2: db.End()})
	if legacy.Err != nil {
		t.Fatal(legacy.Err)
	}
	ans, err := e.Run(ctx, temporalrank.SumQuery(4, db.Start(), db.End()))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(legacy.Results, ans.Results) {
		t.Fatal("legacy Do disagrees with Run")
	}
}
