package engine

import (
	"context"
	"math/rand"
	"testing"

	"temporalrank"
	"temporalrank/internal/gen"
)

func testDB(t *testing.T) *temporalrank.DB {
	t.Helper()
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: 60, Navg: 40, Seed: 7, Span: 100})
	if err != nil {
		t.Fatal(err)
	}
	return temporalrank.NewDBFromDataset(ds)
}

func sameIDs(a, b []temporalrank.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

// TestExecBatchMatchesReference runs a large batch through the pool
// and checks every response against the brute-force reference.
func TestExecBatchMatchesReference(t *testing.T) {
	db := testDB(t)
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ix, 8)
	defer e.Close()

	rng := rand.New(rand.NewSource(42))
	span := db.End() - db.Start()
	reqs := make([]Request, 200)
	for i := range reqs {
		t1 := db.Start() + rng.Float64()*span*0.8
		t2 := t1 + rng.Float64()*span*0.2
		reqs[i] = Request{Op: OpTopK, K: 5, T1: t1, T2: t2}
	}
	resps := e.Exec(context.Background(), reqs)
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		want := db.TopK(reqs[i].K, reqs[i].T1, reqs[i].T2)
		if !sameIDs(r.Results, want) {
			t.Fatalf("query %d: got %v want %v", i, r.Results, want)
		}
	}
	st := e.Stats()
	if st.Queries != 200 {
		t.Fatalf("stats: got %d queries, want 200", st.Queries)
	}
	if st.Errors != 0 {
		t.Fatalf("stats: got %d errors, want 0", st.Errors)
	}
}

// TestDoOps exercises each op through Do.
func TestDoOps(t *testing.T) {
	db := testDB(t)
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact3})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ix, 2)
	defer e.Close()
	ctx := context.Background()
	mid := (db.Start() + db.End()) / 2

	if r := e.Do(ctx, Request{Op: OpTopK, K: 3, T1: db.Start(), T2: db.End()}); r.Err != nil || len(r.Results) != 3 {
		t.Fatalf("topk: %+v", r)
	}
	if r := e.Do(ctx, Request{Op: OpAvg, K: 3, T1: db.Start(), T2: db.End()}); r.Err != nil || len(r.Results) != 3 {
		t.Fatalf("avg: %+v", r)
	}
	if r := e.Do(ctx, Request{Op: OpInstant, K: 3, T1: mid}); r.Err != nil || len(r.Results) != 3 {
		t.Fatalf("instant: %+v", r)
	}
	if r := e.Do(ctx, Request{Op: Op("nope")}); r.Err == nil {
		t.Fatal("unknown op should fail")
	}
}

// TestClosedExecutor verifies clean failure after Close.
func TestClosedExecutor(t *testing.T) {
	db := testDB(t)
	ix, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact1})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ix, 2)
	e.Close()
	e.Close() // idempotent
	if r := e.Do(context.Background(), Request{Op: OpTopK, K: 1, T1: 0, T2: 1}); r.Err == nil {
		t.Fatal("Do after Close should fail")
	}
}

// TestBuildIndexesParallel builds all eight methods concurrently and
// cross-checks one query per index against the reference.
func TestBuildIndexesParallel(t *testing.T) {
	db := testDB(t)
	var opts []temporalrank.Options
	for _, m := range temporalrank.Methods() {
		opts = append(opts, temporalrank.Options{Method: m, TargetR: 80, KMax: 50, BuildWorkers: 4})
	}
	ixs, err := BuildIndexes(db, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	t1 := db.Start() + (db.End()-db.Start())*0.3
	t2 := db.Start() + (db.End()-db.Start())*0.7
	want := db.TopK(5, t1, t2)
	for i, ix := range ixs {
		got, err := ix.TopK(5, t1, t2)
		if err != nil {
			t.Fatalf("%s: %v", opts[i].Method, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: got %d results, want %d", opts[i].Method, len(got), len(want))
		}
		// Exact methods must match the reference exactly.
		if i < 3 && !sameIDs(got, want) {
			t.Fatalf("%s: got %v want %v", opts[i].Method, got, want)
		}
	}
}

// TestExact2ParallelBuildMatchesSequential verifies the per-series
// parallel construction answers identically to the sequential build.
func TestExact2ParallelBuildMatchesSequential(t *testing.T) {
	db := testDB(t)
	seq, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact2})
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.BuildIndex(temporalrank.Options{Method: temporalrank.MethodExact2, BuildWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	span := db.End() - db.Start()
	for q := 0; q < 50; q++ {
		t1 := db.Start() + rng.Float64()*span*0.8
		t2 := t1 + rng.Float64()*span*0.2
		a, err := seq.TopK(7, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.TopK(7, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(a, b) {
			t.Fatalf("query %d: sequential %v parallel %v", q, a, b)
		}
	}
}
