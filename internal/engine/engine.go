// Package engine is the concurrent query layer over the public
// Querier interface: a worker pool that executes batches of
// temporalrank.Query values in parallel and reports per-query latency
// and IO, plus helpers that parallelize index construction. It is the
// serving-side counterpart of the paper's single-query cost model —
// the structures answer one query in O(...) IOs, and the engine keeps
// many such queries in flight against the same (read-safe) backend.
//
// The backend can be anything implementing temporalrank.Querier: a
// single Index, the brute-force DB, or a Planner routing across
// several indexes. Executor itself implements Querier, so pools
// compose with everything else that runs queries.
//
// cmd/rankserver mounts an Executor behind an HTTP API; tests drive it
// directly.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"temporalrank"
	"temporalrank/internal/scatter"
)

// Op names a query operation.
//
// Deprecated: build a temporalrank.Query instead; the Op enum is kept
// only so pre-Query callers keep compiling.
type Op string

// The legacy operations, mirroring the old Index API.
const (
	// OpTopK is top-k(t1,t2,sum) through the index.
	OpTopK Op = "topk"
	// OpAvg is top-k(t1,t2,avg): same ranking, rescaled scores.
	OpAvg Op = "avg"
	// OpInstant is the instant query top-k(t); T1 carries t.
	OpInstant Op = "instant"
)

// Request is one query in the legacy enum encoding.
//
// Deprecated: use temporalrank.Query with Run/RunBatch.
type Request struct {
	Op Op
	K  int
	T1 float64 // query start; the instant t for OpInstant
	T2 float64 // query end; unused by OpInstant
}

// query converts the legacy encoding to a Query. Unknown ops map to an
// invalid aggregate so execution fails with a descriptive error, as
// before.
func (r Request) query() temporalrank.Query {
	q := temporalrank.Query{K: r.K, T1: r.T1, T2: r.T2}
	switch r.Op {
	case OpTopK:
		q.Agg = temporalrank.AggSum
	case OpAvg:
		q.Agg = temporalrank.AggAvg
	case OpInstant:
		q.Agg = temporalrank.AggInstant
	default:
		q.Agg = temporalrank.Agg(r.Op)
	}
	return q
}

// Response is one executed legacy request.
//
// Deprecated: use temporalrank.Answer via Run/RunBatch.
type Response struct {
	Results []temporalrank.Result
	// Latency is the wall time of the backend call alone (queueing in
	// the worker pool excluded).
	Latency time.Duration
	// IOs is the device IO delta observed over the call. The device is
	// shared by all in-flight queries, so under concurrency this
	// attributes overlapping queries' IOs to each other; it is exact
	// when the executor has one worker or one in-flight query.
	IOs uint64
	Err error
}

// Result pairs an Answer with its error — one element of a RunBatch.
type Result struct {
	Answer temporalrank.Answer
	Err    error
}

// Stats aggregates an executor's lifetime activity.
type Stats struct {
	Queries   uint64 // completed queries, including failed ones
	Errors    uint64 // completed queries that returned an error
	Busy      int64  // queries executing right now
	TotalTime time.Duration
}

type job struct {
	ctx  context.Context
	q    temporalrank.Query
	done func(Result)
}

// Executor is a fixed-size worker pool executing queries against one
// Querier backend. Create with New or NewQuerier, release with Close.
type Executor struct {
	backend temporalrank.Querier
	ix      *temporalrank.Index // non-nil only when built by New
	workers int
	jobs    chan job
	wg      sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	queries atomic.Uint64
	errors  atomic.Uint64
	busy    atomic.Int64
	nanos   atomic.Int64
}

// Executor is itself a Querier: Run goes through the pool.
var _ temporalrank.Querier = (*Executor)(nil)

// NewQuerier starts an executor over any Querier backend — an Index, a
// Planner, or the brute-force DB — with the given number of workers
// (defaults to GOMAXPROCS when workers <= 0).
func NewQuerier(backend temporalrank.Querier, workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Executor{backend: backend, workers: workers, jobs: make(chan job)}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for j := range e.jobs {
				j.done(e.run(j))
			}
		}()
	}
	return e
}

// New starts an executor over a single index.
func New(ix *temporalrank.Index, workers int) *Executor {
	e := NewQuerier(ix, workers)
	e.ix = ix
	return e
}

// Workers returns the pool size.
func (e *Executor) Workers() int { return e.workers }

// Backend returns the Querier the executor serves.
func (e *Executor) Backend() temporalrank.Querier { return e.backend }

// Index returns the index the executor serves, or nil when the backend
// is not a single index (see Backend).
func (e *Executor) Index() *temporalrank.Index { return e.ix }

// run executes one job on the calling worker. A job whose context is
// already done is dropped without touching the backend, so a cancelled
// batch terminates promptly even when its jobs were already queued.
func (e *Executor) run(j job) Result {
	if err := j.ctx.Err(); err != nil {
		e.queries.Add(1)
		e.errors.Add(1)
		return Result{Err: err}
	}
	e.busy.Add(1)
	defer e.busy.Add(-1)
	start := time.Now()
	ans, err := e.backend.Run(j.ctx, j.q)
	elapsed := time.Since(start)
	e.queries.Add(1)
	if err != nil {
		e.errors.Add(1)
		// A failed Run returns a zero Answer; report the measured wall
		// time anyway so error-latency telemetry keeps working.
		if ans.Latency == 0 {
			ans.Latency = elapsed
		}
	}
	e.nanos.Add(int64(elapsed))
	return Result{Answer: ans, Err: err}
}

// submit hands a job to the pool, or fails fast when the executor is
// closed or the context is done.
func (e *Executor) submit(ctx context.Context, j job) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return fmt.Errorf("engine: executor is closed")
	}
	select {
	case e.jobs <- j:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run implements temporalrank.Querier: one query through the pool,
// waiting for its answer. Cancellation covers the whole span — queue
// wait, execution start, and the wait for the response.
func (e *Executor) Run(ctx context.Context, q temporalrank.Query) (temporalrank.Answer, error) {
	out := make(chan Result, 1)
	err := e.submit(ctx, job{ctx: ctx, q: q, done: func(r Result) { out <- r }})
	if err != nil {
		return temporalrank.Answer{}, err
	}
	select {
	case r := <-out:
		return r.Answer, r.Err
	case <-ctx.Done():
		// The job may still run; its response is dropped.
		return temporalrank.Answer{}, ctx.Err()
	}
}

// RunBatch executes a batch, returning results in query order. All
// queries run through the worker pool, so up to Workers() of them
// proceed in parallel. A cancelled context fails the not-yet-submitted
// remainder with ctx.Err(), drops queued-but-unstarted jobs, and waits
// only for the at-most-Workers() queries already executing.
func (e *Executor) RunBatch(ctx context.Context, qs []temporalrank.Query) []Result {
	out := make([]Result, len(qs))
	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		idx := i
		err := e.submit(ctx, job{ctx: ctx, q: qs[i], done: func(r Result) {
			out[idx] = r
			wg.Done()
		}})
		if err != nil {
			out[idx] = Result{Err: err}
			wg.Done()
		}
	}
	wg.Wait()
	return out
}

// Do executes one legacy request through the pool.
//
// Deprecated: use Run with a temporalrank.Query.
func (e *Executor) Do(ctx context.Context, req Request) Response {
	ans, err := e.Run(ctx, req.query())
	return toResponse(ans, err)
}

// Exec executes a legacy batch, returning responses in request order.
//
// Deprecated: use RunBatch with temporalrank.Query values.
func (e *Executor) Exec(ctx context.Context, reqs []Request) []Response {
	qs := make([]temporalrank.Query, len(reqs))
	for i, r := range reqs {
		qs[i] = r.query()
	}
	results := e.RunBatch(ctx, qs)
	out := make([]Response, len(results))
	for i, r := range results {
		out[i] = toResponse(r.Answer, r.Err)
	}
	return out
}

func toResponse(ans temporalrank.Answer, err error) Response {
	return Response{Results: ans.Results, Latency: ans.Latency, IOs: ans.IOs, Err: err}
}

// Stats returns a snapshot of lifetime executor activity.
func (e *Executor) Stats() Stats {
	return Stats{
		Queries:   e.queries.Load(),
		Errors:    e.errors.Load(),
		Busy:      e.busy.Load(),
		TotalTime: time.Duration(e.nanos.Load()),
	}
}

// Close stops the workers after draining queued jobs. Safe to call
// more than once; Run/RunBatch after Close fail cleanly.
func (e *Executor) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.jobs)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

// BuildIndexes constructs one index per option concurrently (up to
// workers at once; defaults to GOMAXPROCS when workers <= 0) over the
// shared scatter pool. The result slice is parallel to opts. The first
// build failure wins: in-flight builds finish, queued ones are skipped,
// and that error is returned.
func BuildIndexes(db *temporalrank.DB, opts []temporalrank.Options, workers int) ([]*temporalrank.Index, error) {
	return BuildIndexesContext(context.Background(), db, opts, workers)
}

// BuildIndexesContext is BuildIndexes with a caller-supplied context:
// cancel it and in-flight builds finish, queued ones are skipped, and
// the context's error is returned.
func BuildIndexesContext(ctx context.Context, db *temporalrank.DB, opts []temporalrank.Options, workers int) ([]*temporalrank.Index, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ixs := make([]*temporalrank.Index, len(opts))
	err := scatter.Run(ctx, len(opts), workers, func(_ context.Context, i int) error {
		ix, err := db.BuildIndex(opts[i])
		if err != nil {
			return fmt.Errorf("engine: build %q: %w", opts[i].Method, err)
		}
		ixs[i] = ix
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ixs, nil
}
