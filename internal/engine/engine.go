// Package engine is the concurrent query layer over a built index: a
// worker pool that executes batches of aggregate top-k queries in
// parallel and reports per-query latency and IO, plus helpers that
// parallelize index construction. It is the serving-side counterpart
// of the paper's single-query cost model — the structures answer one
// query in O(...) IOs, and the engine keeps many such queries in
// flight against the same (read-safe) index.
//
// cmd/rankserver mounts an Executor behind an HTTP API; tests drive it
// directly.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"temporalrank"
)

// Op names a query operation.
type Op string

// The operations the executor understands, mirroring the Index API.
const (
	// OpTopK is top-k(t1,t2,sum) through the index.
	OpTopK Op = "topk"
	// OpAvg is top-k(t1,t2,avg): same ranking, rescaled scores.
	OpAvg Op = "avg"
	// OpInstant is the instant query top-k(t); T1 carries t.
	OpInstant Op = "instant"
)

// Request is one query to execute.
type Request struct {
	Op Op
	K  int
	T1 float64 // query start; the instant t for OpInstant
	T2 float64 // query end; unused by OpInstant
}

// Response is one executed query.
type Response struct {
	Results []temporalrank.Result
	// Latency is the wall time of the index call alone (queueing in the
	// worker pool excluded).
	Latency time.Duration
	// IOs is the device IO delta observed over the call. The device is
	// shared by all in-flight queries, so under concurrency this
	// attributes overlapping queries' IOs to each other; it is exact
	// when the executor has one worker or one in-flight query.
	IOs uint64
	Err error
}

// Stats aggregates an executor's lifetime activity.
type Stats struct {
	Queries   uint64 // completed queries, including failed ones
	Errors    uint64 // completed queries that returned an error
	Busy      int64  // queries executing right now
	TotalTime time.Duration
}

type job struct {
	req  Request
	done func(Response)
}

// Executor is a fixed-size worker pool executing queries against one
// index. Create with New, release with Close.
type Executor struct {
	ix      *temporalrank.Index
	workers int
	jobs    chan job
	wg      sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	queries atomic.Uint64
	errors  atomic.Uint64
	busy    atomic.Int64
	nanos   atomic.Int64
}

// New starts an executor with the given number of workers (defaults to
// GOMAXPROCS when workers <= 0).
func New(ix *temporalrank.Index, workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Executor{ix: ix, workers: workers, jobs: make(chan job)}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for j := range e.jobs {
				j.done(e.run(j.req))
			}
		}()
	}
	return e
}

// Workers returns the pool size.
func (e *Executor) Workers() int { return e.workers }

// Index returns the index the executor serves.
func (e *Executor) Index() *temporalrank.Index { return e.ix }

// run executes one request on the calling worker.
func (e *Executor) run(req Request) Response {
	e.busy.Add(1)
	defer e.busy.Add(-1)
	before := e.ix.DeviceIOs()
	start := time.Now()
	var (
		res []temporalrank.Result
		err error
	)
	switch req.Op {
	case OpTopK:
		res, err = e.ix.TopK(req.K, req.T1, req.T2)
	case OpAvg:
		res, err = e.ix.TopKAvg(req.K, req.T1, req.T2)
	case OpInstant:
		res, err = e.ix.InstantTopK(req.K, req.T1)
	default:
		err = fmt.Errorf("engine: unknown op %q", req.Op)
	}
	elapsed := time.Since(start)
	after := e.ix.DeviceIOs()
	var ios uint64
	if after > before { // guard against a concurrent ResetStats
		ios = after - before
	}
	e.queries.Add(1)
	if err != nil {
		e.errors.Add(1)
	}
	e.nanos.Add(int64(elapsed))
	return Response{Results: res, Latency: elapsed, IOs: ios, Err: err}
}

// submit hands a job to the pool, or fails fast when the executor is
// closed or the context is done.
func (e *Executor) submit(ctx context.Context, j job) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return fmt.Errorf("engine: executor is closed")
	}
	select {
	case e.jobs <- j:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do executes one request through the pool and waits for its response.
func (e *Executor) Do(ctx context.Context, req Request) Response {
	out := make(chan Response, 1)
	if err := e.submit(ctx, job{req: req, done: func(r Response) { out <- r }}); err != nil {
		return Response{Err: err}
	}
	select {
	case r := <-out:
		return r
	case <-ctx.Done():
		// The job may still run; its response is dropped.
		return Response{Err: ctx.Err()}
	}
}

// Exec executes a batch, returning responses in request order. All
// requests run through the worker pool, so up to Workers() of them
// proceed in parallel. A cancelled context fails the not-yet-submitted
// remainder with ctx.Err() but waits for already-running queries.
func (e *Executor) Exec(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		idx := i
		err := e.submit(ctx, job{req: reqs[i], done: func(r Response) {
			out[idx] = r
			wg.Done()
		}})
		if err != nil {
			out[idx] = Response{Err: err}
			wg.Done()
		}
	}
	wg.Wait()
	return out
}

// Stats returns a snapshot of lifetime executor activity.
func (e *Executor) Stats() Stats {
	return Stats{
		Queries:   e.queries.Load(),
		Errors:    e.errors.Load(),
		Busy:      e.busy.Load(),
		TotalTime: time.Duration(e.nanos.Load()),
	}
}

// Close stops the workers after draining queued jobs. Safe to call
// more than once; Do/Exec after Close fail cleanly.
func (e *Executor) Close() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.jobs)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

// BuildIndexes constructs one index per option concurrently (up to
// workers at once; defaults to GOMAXPROCS when workers <= 0). The
// result slice is parallel to opts. On any failure the first error is
// returned after all builds settle.
func BuildIndexes(db *temporalrank.DB, opts []temporalrank.Options, workers int) ([]*temporalrank.Index, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ixs := make([]*temporalrank.Index, len(opts))
	errs := make([]error, len(opts))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range opts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ixs[i], errs[i] = db.BuildIndex(opts[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: build %q: %w", opts[i].Method, err)
		}
	}
	return ixs, nil
}
