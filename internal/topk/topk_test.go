package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"temporalrank/internal/tsdata"
)

func TestCollectorBasic(t *testing.T) {
	c := NewCollector(3)
	scores := []float64{5, 1, 9, 3, 7, 2}
	for i, s := range scores {
		c.Add(tsdata.SeriesID(i), s)
	}
	got := c.Results()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	want := []float64{9, 7, 5}
	for i, it := range got {
		if it.Score != want[i] {
			t.Errorf("rank %d score = %g, want %g", i, it.Score, want[i])
		}
	}
}

func TestCollectorFewerThanK(t *testing.T) {
	c := NewCollector(10)
	c.Add(0, 1)
	c.Add(1, 2)
	got := c.Results()
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	if got[0].Score != 2 || got[1].Score != 1 {
		t.Errorf("results %v", got)
	}
	if _, ok := c.Threshold(); ok {
		t.Error("Threshold available before k items")
	}
}

func TestCollectorThreshold(t *testing.T) {
	c := NewCollector(2)
	c.Add(0, 5)
	c.Add(1, 3)
	th, ok := c.Threshold()
	if !ok || th != 3 {
		t.Errorf("Threshold = (%g,%v), want (3,true)", th, ok)
	}
	c.Add(2, 4)
	th, _ = c.Threshold()
	if th != 4 {
		t.Errorf("Threshold after improvement = %g, want 4", th)
	}
}

func TestCollectorTieBreaksByID(t *testing.T) {
	c := NewCollector(2)
	c.Add(5, 1)
	c.Add(3, 1)
	c.Add(9, 1)
	got := c.Results()
	if got[0].ID != 3 || got[1].ID != 5 {
		t.Errorf("tie-break wrong: %v (want IDs 3,5)", got)
	}
}

func TestCollectorKBelowOne(t *testing.T) {
	c := NewCollector(0)
	if c.K() != 1 {
		t.Errorf("K = %d, want clamp to 1", c.K())
	}
	c.Add(1, 10)
	c.Add(2, 20)
	got := c.Results()
	if len(got) != 1 || got[0].ID != 2 {
		t.Errorf("results %v", got)
	}
}

// Property: collector matches full sort + truncate for random inputs.
func TestCollectorMatchesSortProperty(t *testing.T) {
	f := func(seed int64, rawK uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(rawK)%20 + 1
		n := 1 + rng.Intn(300)
		items := make([]Item, n)
		c := NewCollector(k)
		for i := range items {
			// Coarse scores force plenty of ties.
			s := float64(rng.Intn(40))
			items[i] = Item{ID: tsdata.SeriesID(i), Score: s}
			c.Add(tsdata.SeriesID(i), s)
		}
		SortItems(items)
		want := items
		if len(want) > k {
			want = want[:k]
		}
		got := c.Results()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSortItemsStableOrder(t *testing.T) {
	items := []Item{{ID: 2, Score: 1}, {ID: 1, Score: 1}, {ID: 0, Score: 5}}
	SortItems(items)
	wantIDs := []tsdata.SeriesID{0, 1, 2}
	for i, it := range items {
		if it.ID != wantIDs[i] {
			t.Errorf("pos %d ID = %d, want %d", i, it.ID, wantIDs[i])
		}
	}
}

// TestMergeMatchesGlobalCollector: partitioning items arbitrarily,
// collecting per partition and merging must equal one global collector —
// the invariant the sharded Cluster relies on.
func TestMergeMatchesGlobalCollector(t *testing.T) {
	f := func(seed int64, rawK uint8, rawParts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(rawK)%20 + 1
		parts := int(rawParts)%8 + 1
		n := 1 + rng.Intn(300)
		global := NewCollector(k)
		colls := make([]*Collector, parts)
		for p := range colls {
			colls[p] = NewCollector(k)
		}
		for i := 0; i < n; i++ {
			// Coarse scores force cross-partition ties.
			s := float64(rng.Intn(25))
			global.Add(tsdata.SeriesID(i), s)
			colls[rng.Intn(parts)].Add(tsdata.SeriesID(i), s)
		}
		lists := make([][]Item, parts)
		for p, c := range colls {
			lists[p] = c.Results()
		}
		got := Merge(k, lists...)
		want := global.Results()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestMergeDuplicateScores is the regression test for deterministic
// tie-breaking: equal scores scattered across partitions must come back
// ordered by ascending ID no matter how the partitions were formed.
func TestMergeDuplicateScores(t *testing.T) {
	splits := [][][]Item{
		{{{ID: 4, Score: 7}, {ID: 1, Score: 2}}, {{ID: 0, Score: 7}, {ID: 3, Score: 7}}, {{ID: 2, Score: 7}}},
		{{{ID: 0, Score: 7}, {ID: 1, Score: 2}}, {{ID: 2, Score: 7}, {ID: 3, Score: 7}, {ID: 4, Score: 7}}},
		{{{ID: 0, Score: 7}, {ID: 2, Score: 7}, {ID: 3, Score: 7}, {ID: 4, Score: 7}, {ID: 1, Score: 2}}},
	}
	want := []Item{{ID: 0, Score: 7}, {ID: 2, Score: 7}, {ID: 3, Score: 7}, {ID: 4, Score: 7}}
	for i, lists := range splits {
		got := Merge(4, lists...)
		if len(got) != len(want) {
			t.Fatalf("split %d: len = %d, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("split %d rank %d = %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
}

func TestMergeEdgeCases(t *testing.T) {
	if got := Merge(3); len(got) != 0 {
		t.Errorf("no lists: %v, want empty", got)
	}
	if got := Merge(3, nil, []Item{}); len(got) != 0 {
		t.Errorf("empty lists: %v, want empty", got)
	}
	one := []Item{{ID: 1, Score: 5}, {ID: 2, Score: 3}}
	if got := Merge(0, one); len(got) != 1 || got[0].ID != 1 {
		t.Errorf("k clamp: %v, want just ID 1", got)
	}
	// k larger than the union: everything comes back, still ordered.
	got := Merge(10, []Item{{ID: 1, Score: 5}}, []Item{{ID: 0, Score: 5}})
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Errorf("k beyond union: %v", got)
	}
}

func TestPrecisionRecall(t *testing.T) {
	exact := []Item{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}
	approx := []Item{{ID: 2}, {ID: 3}, {ID: 9}, {ID: 1}}
	if got := PrecisionRecall(approx, exact); got != 0.75 {
		t.Errorf("PrecisionRecall = %g, want 0.75", got)
	}
	if got := PrecisionRecall(exact, exact); got != 1 {
		t.Errorf("self PrecisionRecall = %g, want 1", got)
	}
	if got := PrecisionRecall(nil, exact); got != 0 {
		t.Errorf("empty approx = %g, want 0", got)
	}
	if got := PrecisionRecall(nil, nil); got != 1 {
		t.Errorf("both empty = %g, want 1", got)
	}
}

func TestApproxRatio(t *testing.T) {
	truth := map[tsdata.SeriesID]float64{1: 10, 2: 20, 3: 0}
	lookup := func(id tsdata.SeriesID) float64 { return truth[id] }
	approx := []Item{{ID: 1, Score: 11}, {ID: 2, Score: 18}}
	got := ApproxRatio(approx, lookup)
	want := (11.0/10 + 18.0/20) / 2
	if got != want {
		t.Errorf("ApproxRatio = %g, want %g", got, want)
	}
	// Zero-truth items are skipped.
	if got := ApproxRatio([]Item{{ID: 3, Score: 5}}, lookup); got != 1 {
		t.Errorf("all-zero-truth ratio = %g, want 1", got)
	}
}

func TestRankwiseError(t *testing.T) {
	a := []Item{{Score: 10}, {Score: 5}}
	b := []Item{{Score: 9}, {Score: 8}}
	if got := RankwiseError(a, b); got != 3 {
		t.Errorf("RankwiseError = %g, want 3", got)
	}
	if got := RankwiseError(nil, b); got != 0 {
		t.Errorf("empty = %g, want 0", got)
	}
}

// Property: the retained set always contains the global maximum.
func TestCollectorKeepsMaxProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCollector(1 + rng.Intn(5))
		n := 1 + rng.Intn(100)
		best := Item{ID: -1}
		first := true
		for i := 0; i < n; i++ {
			it := Item{ID: tsdata.SeriesID(i), Score: rng.NormFloat64() * 100}
			if first || less(best, it) {
				best = it
				first = false
			}
			c.Add(it.ID, it.Score)
		}
		res := c.Results()
		return len(res) > 0 && res[0] == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestResultsDoesNotDrainCollector(t *testing.T) {
	c := NewCollector(2)
	c.Add(0, 1)
	c.Add(1, 2)
	r1 := c.Results()
	c.Add(2, 3)
	r2 := c.Results()
	if len(r1) != 2 || len(r2) != 2 {
		t.Fatal("collector drained by Results")
	}
	if r2[0].Score != 3 {
		t.Error("collector stopped accepting after Results")
	}
	if !sort.SliceIsSorted(r2, func(a, b int) bool { return r2[a].Score > r2[b].Score }) {
		t.Error("results not sorted")
	}
}

// permutations returns every ordering of n list indices.
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for pos := 0; pos <= len(sub); pos++ {
			p := make([]int, 0, n)
			p = append(p, sub[:pos]...)
			p = append(p, n-1)
			p = append(p, sub[pos:]...)
			out = append(out, p)
		}
	}
	return out
}

// TestMergeDuplicateScoresOrderIndependent models network reordering
// in the distributed tier: per-shard top-k lists carrying many
// duplicate scores arrive at the router in arbitrary order, and the
// merged global list must be identical for EVERY arrival order — the
// deterministic ascending-global-ID tie-break cannot depend on which
// shard answered first.
func TestMergeDuplicateScoresOrderIndependent(t *testing.T) {
	// Scores drawn from a tiny set so cross-list duplicates are the
	// common case, not the corner case.
	scorePool := []float64{9, 7, 7, 7, 4, 4, 1}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		numLists := 2 + rng.Intn(3) // 2..4 lists: all orders checked below
		lists := make([][]Item, numLists)
		var all []Item
		nextID := tsdata.SeriesID(0)
		for i := range lists {
			n := 1 + rng.Intn(6)
			for j := 0; j < n; j++ {
				it := Item{ID: nextID, Score: scorePool[rng.Intn(len(scorePool))]}
				nextID++
				lists[i] = append(lists[i], it)
				all = append(all, it)
			}
			SortItems(lists[i])
		}
		k := 1 + rng.Intn(len(all))
		// Reference: a single node's answer — global sort, first k.
		want := make([]Item, len(all))
		copy(want, all)
		SortItems(want)
		if len(want) > k {
			want = want[:k]
		}
		for _, perm := range permutations(numLists) {
			shuffled := make([][]Item, numLists)
			for pos, idx := range perm {
				shuffled[pos] = lists[idx]
			}
			got := Merge(k, shuffled...)
			if len(got) != len(want) {
				t.Fatalf("trial %d perm %v: %d items, want %d", trial, perm, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("trial %d perm %v rank %d: got (%d, %g), want (%d, %g) — merge depends on list arrival order",
						trial, perm, j, got[j].ID, got[j].Score, want[j].ID, want[j].Score)
				}
			}
		}
	}
}
