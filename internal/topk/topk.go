// Package topk provides bounded top-k selection and the ranking-quality
// metrics used in the paper's evaluation (§5): precision/recall between
// an approximate and an exact top-k set, and the average approximation
// ratio σ̃_i(t1,t2)/σ_i(t1,t2) over returned objects.
package topk

import (
	"container/heap"
	"sort"
	"sync"

	"temporalrank/internal/tsdata"
)

// Item is a scored object.
type Item struct {
	ID    tsdata.SeriesID
	Score float64
}

// Collector selects the k items with the largest scores using a
// size-bounded min-heap (the paper's "priority queue of size k").
// Ties on score break toward the smaller ID so results are
// deterministic across methods.
type Collector struct {
	k     int
	items minHeap
}

// NewCollector creates a collector for the top k items (k >= 1).
func NewCollector(k int) *Collector {
	if k < 1 {
		k = 1
	}
	return &Collector{k: k, items: make(minHeap, 0, k+1)}
}

// collectorPool recycles collectors across queries: every query on the
// hot read path builds one size-k heap, and under concurrent serving
// load those heap allocations are pure churn. Get/Release pair around a
// single query's lifetime.
var collectorPool = sync.Pool{New: func() any { return new(Collector) }}

// GetCollector returns a pooled collector reset for the top k items.
// Release it with Release once its Results have been copied out.
//
//tr:hotpath
func GetCollector(k int) *Collector {
	c := collectorPool.Get().(*Collector)
	c.Reset(k)
	return c
}

// Reset empties the collector and re-arms it for k, keeping the backing
// array when it is large enough.
//
//tr:hotpath
func (c *Collector) Reset(k int) {
	if k < 1 {
		k = 1
	}
	c.k = k
	if cap(c.items) < k+1 {
		//tr:alloc-ok one-time growth: steady-state pool reuse keeps the array
		c.items = make(minHeap, 0, k+1)
	} else {
		c.items = c.items[:0]
	}
}

// Release returns the collector to the pool. The collector must not be
// used afterwards; Results() output remains valid (it is always a
// copy).
//
//tr:hotpath
func (c *Collector) Release() { collectorPool.Put(c) }

// K returns the configured bound.
func (c *Collector) K() int { return c.k }

// Add offers an item; it is retained only if it ranks in the current
// top k. The sift operations are hand-rolled rather than delegated to
// container/heap: heap.Push/Fix take interface{} and box every Item,
// which on the serving path means k heap allocations per query.
//
//tr:hotpath
func (c *Collector) Add(id tsdata.SeriesID, score float64) {
	it := Item{ID: id, Score: score}
	if len(c.items) < c.k {
		//tr:alloc-ok never grows: NewCollector/Reset pre-reserve k+1 capacity
		c.items = append(c.items, it)
		c.items.siftUp(len(c.items) - 1)
		return
	}
	if less(c.items[0], it) {
		c.items[0] = it
		c.items.siftDown(0)
	}
}

// siftUp restores the min-heap property after appending at i.
//
//tr:hotpath
func (h minHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDown restores the min-heap property after replacing the root.
//
//tr:hotpath
func (h minHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		small := left
		if right := left + 1; right < n && less(h[right], h[left]) {
			small = right
		}
		if !less(h[small], h[i]) {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// Threshold returns the smallest retained score (the k-th best so
// far), or -Inf semantics via ok=false when fewer than k items are
// held.
func (c *Collector) Threshold() (float64, bool) {
	if len(c.items) < c.k {
		return 0, false
	}
	return c.items[0].Score, true
}

// Len returns the number of retained items (<= k).
func (c *Collector) Len() int { return len(c.items) }

// Results returns the retained items ordered by descending score
// (ties: ascending ID). The collector remains usable.
func (c *Collector) Results() []Item {
	out := make([]Item, len(c.items))
	copy(out, c.items)
	SortItems(out)
	return out
}

// SortItems orders items by descending score, ties by ascending ID.
// Small lists — every per-query top-k, where this runs on the serving
// hot path — use an allocation-free insertion sort; sort.Slice costs
// two heap allocations per call (the comparator closure and the
// reflect-based swapper) and only wins on lists far larger than any
// practical k.
//
//tr:hotpath
func SortItems(items []Item) {
	if len(items) <= 64 {
		for i := 1; i < len(items); i++ {
			for j := i; j > 0 && less(items[j-1], items[j]); j-- {
				items[j-1], items[j] = items[j], items[j-1]
			}
		}
		return
	}
	//tr:alloc-ok cold path: per-query k never reaches 64; closure+swapper are fine here
	sort.Slice(items, func(a, b int) bool { return less(items[b], items[a]) })
}

// less is the heap ordering: a ranks strictly below b.
func less(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// minHeap is a size-bounded min-heap maintained by siftUp/siftDown
// (deliberately not a container/heap.Interface; see Collector.Add).
type minHeap []Item

// --- k-way merge ------------------------------------------------------

// Merge k-way merges per-partition top-k lists into a global top-k.
// Every input list must already be in the package order (descending
// score, ties broken by ascending ID — what Collector.Results and
// SortItems produce), and the lists are assumed ID-disjoint (disjoint
// partitions of one object universe). The output is the best k items
// overall, in the same deterministic order, so merging the per-shard
// answers of a partitioned dataset yields exactly the list a single
// node would have produced.
func Merge(k int, lists ...[]Item) []Item {
	if k < 1 {
		k = 1
	}
	h := make(mergeHeap, 0, len(lists))
	for _, l := range lists {
		if len(l) > 0 {
			h = append(h, cursor{list: l})
		}
	}
	heap.Init(&h)
	out := make([]Item, 0, k)
	for len(out) < k && len(h) > 0 {
		c := &h[0]
		out = append(out, c.list[c.pos])
		c.pos++
		if c.pos == len(c.list) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

// cursor is one partially-consumed input list of a Merge.
type cursor struct {
	list []Item
	pos  int
}

// mergeHeap orders cursors by their current head so the best-ranked
// head is always at the root.
type mergeHeap []cursor

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return less(h[j].list[h[j].pos], h[i].list[h[i].pos]) }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(cursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// --- quality metrics -------------------------------------------------

// PrecisionRecall returns |approx ∩ exact| / k. Since both sets have
// the same cardinality k, precision equals recall (as noted in §5).
func PrecisionRecall(approx, exact []Item) float64 {
	if len(exact) == 0 {
		return 1
	}
	set := make(map[tsdata.SeriesID]bool, len(exact))
	for _, it := range exact {
		set[it.ID] = true
	}
	hits := 0
	for _, it := range approx {
		if set[it.ID] {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

// ApproxRatio returns the average of σ̃_i/σ_i over the approximate
// result set, where trueScore supplies σ_i(t1,t2) for any object.
// Items whose true score is ~0 are skipped (the ratio is undefined);
// if every item is skipped the ratio is reported as exactly 1.
func ApproxRatio(approx []Item, trueScore func(tsdata.SeriesID) float64) float64 {
	var sum float64
	n := 0
	for _, it := range approx {
		exact := trueScore(it.ID)
		if exact == 0 {
			continue
		}
		sum += it.Score / exact
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// RankwiseError returns max_j |approxScore_j - exactScore_j| over
// ranks j — the quantity bounded by εM in Definition 2 (for α=1).
func RankwiseError(approx, exact []Item) float64 {
	n := len(approx)
	if len(exact) < n {
		n = len(exact)
	}
	var worst float64
	for j := 0; j < n; j++ {
		d := approx[j].Score - exact[j].Score
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
