package breakpoint

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"temporalrank/internal/tsdata"
)

// Build2Baseline constructs BREAKPOINTS2 with the per-object max rule:
// a breakpoint is placed whenever some object accumulates εM of
// |aggregate| since the previous breakpoint. This is the paper's
// baseline (BREAKPOINTS2-B): after each cut, every object's running
// integral is recomputed, costing O(rm) on top of the O(N log N) sweep.
func Build2Baseline(ds *tsdata.Dataset, eps float64) (*Set, error) {
	return build2(ds, eps, false)
}

// Build2 constructs BREAKPOINTS2 with the lazy-refinement candidate
// heap (BREAKPOINTS2-E): identical output to Build2Baseline, without
// the per-cut O(m) reset.
func Build2(ds *tsdata.Dataset, eps float64) (*Set, error) {
	return build2(ds, eps, true)
}

// objState tracks one object during the sweep.
type objState struct {
	cur     tsdata.Segment // last segment popped for this object
	hasCur  bool
	acc     float64 // |σ_i|(lastReset_i, cur.T2): integral of processed data since this object's last accounted reset
	resetAt float64 // the breakpoint time acc is measured from
	seq     int     // candidate sequence number (stale-entry detection)
}

// candidate is a heap entry: a lower bound on the time object obj next
// reaches εM of accumulated |aggregate| since the breakpoint current at
// epoch.
type candidate struct {
	t     float64
	obj   tsdata.SeriesID
	seq   int
	epoch int
}

type candHeap []candidate

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func build2(ds *tsdata.Dataset, eps float64, lazy bool) (*Set, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("breakpoint: eps must be positive, got %g", eps)
	}
	M := ds.M()
	threshold := eps * M
	if threshold <= 0 {
		return nil, fmt.Errorf("breakpoint: zero-mass dataset")
	}
	flat := ds.FlatSegments()
	m := ds.NumSeries()

	states := make([]objState, m)
	for i := range states {
		states[i].resetAt = ds.Start()
	}
	var cands candHeap
	epoch := 0
	lastBP := ds.Start()
	times := []float64{ds.Start()}

	// refresh recomputes object i's exact candidate under the current
	// breakpoint and pushes it; it also re-bases acc to lastBP.
	refresh := func(i int) {
		st := &states[i]
		if !st.hasCur {
			return
		}
		if st.resetAt < lastBP {
			// Drop the part of acc that precedes the current breakpoint.
			// Only the current segment can straddle lastBP (any earlier
			// segment of this object ended before some segment started
			// at or before lastBP).
			st.acc = st.cur.AbsIntegralOver(lastBP, st.cur.T2)
			st.resetAt = lastBP
		}
		if st.acc < threshold {
			return
		}
		// The crossing lies within the current segment's processed span.
		from := math.Max(lastBP, st.cur.T1)
		already := st.acc - st.cur.AbsIntegralOver(from, st.cur.T2)
		t, ok := st.cur.SolveAbsIntegralForward(from, threshold-already)
		if !ok {
			return
		}
		st.seq++
		heap.Push(&cands, candidate{t: t, obj: tsdata.SeriesID(i), seq: st.seq, epoch: epoch})
	}

	// nextFire returns the exact earliest crossing among candidates,
	// lazily re-keying stale entries (whose times are valid lower
	// bounds, since cuts only push crossings later).
	nextFire := func() (candidate, bool) {
		for len(cands) > 0 {
			top := cands[0]
			st := &states[top.obj]
			if top.seq != st.seq {
				heap.Pop(&cands) // superseded
				continue
			}
			if top.epoch == epoch {
				return top, true
			}
			// Stale: recompute under the current breakpoint.
			heap.Pop(&cands)
			refresh(int(top.obj))
		}
		return candidate{}, false
	}

	// emit places a breakpoint at bp and resets accounting.
	emit := func(bp float64) {
		if bp <= times[len(times)-1] {
			return // numeric noise; never move backwards
		}
		times = append(times, bp)
		lastBP = bp
		epoch++
		if !lazy {
			// Baseline: recompute every object immediately (O(m) per cut).
			for i := range states {
				states[i].seq++ // invalidate all outstanding candidates
			}
			cands = cands[:0]
			for i := range states {
				refresh(i)
			}
		}
		// Lazy mode: outstanding candidates stay as lower bounds and are
		// re-keyed on demand by nextFire.
	}

	// fireBefore emits every crossing that occurs strictly before limit.
	fireBefore := func(limit float64) {
		for {
			c, ok := nextFire()
			if !ok || c.t >= limit {
				return
			}
			emit(c.t)
			// The firing object may cross again within its current
			// segment under the new breakpoint.
			refresh(int(c.obj))
		}
	}

	for _, ref := range flat {
		fireBefore(ref.Segment.T1)
		st := &states[ref.Series]
		// Fold the new segment into the object's accumulator.
		if st.resetAt < lastBP {
			if st.hasCur {
				st.acc = st.cur.AbsIntegralOver(lastBP, st.cur.T2)
			} else {
				st.acc = 0
			}
			st.resetAt = lastBP
		}
		st.acc += ref.Segment.AbsIntegralOver(math.Max(lastBP, ref.Segment.T1), ref.Segment.T2)
		st.cur = ref.Segment
		st.hasCur = true
		if st.acc >= threshold {
			refresh(int(ref.Series))
		}
	}
	fireBefore(math.Inf(1))

	if last := times[len(times)-1]; last < ds.End() {
		times = append(times, ds.End())
	}
	return &Set{Times: times, Epsilon: eps, M: M}, nil
}

// Build2WithTargetR bisects ε so that Build2 yields approximately r
// breakpoints (within the given tolerance or 40 iterations). This is
// how the §5 experiments compare B1 and B2 "given the same budget r":
// BREAKPOINTS1 fixes r = 1/ε+1, while BREAKPOINTS2's r depends on the
// data, so the effective ε achieving a budget must be searched.
func Build2WithTargetR(ds *tsdata.Dataset, r int, lazy bool) (*Set, error) {
	if r < 2 {
		return nil, fmt.Errorf("breakpoint: target r must be >= 2, got %d", r)
	}
	builder := Build2
	if !lazy {
		builder = Build2Baseline
	}
	lo, hi := 1e-12, 1.0 // ε range; smaller ε -> more breakpoints
	var best *Set
	for iter := 0; iter < 40; iter++ {
		mid := math.Sqrt(lo * hi) // geometric bisection over magnitudes
		s, err := builder(ds, mid)
		if err != nil {
			return nil, err
		}
		if best == nil || absInt(s.R()-r) < absInt(best.R()-r) {
			best = s
		}
		switch {
		case s.R() == r:
			return s, nil
		case s.R() > r:
			lo = mid
		default:
			hi = mid
		}
	}
	return best, nil
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Extend repairs a breakpoint set after appends: every breakpoint at
// or after firstNew (the earliest left endpoint of any appended
// segment) is discarded and the max-rule sweep is re-run from the last
// surviving breakpoint to the new end of the data, keeping the set's
// original threshold tau = epsilon*M_build fixed - the paragraph-4 update scheme:
// "always constructing breakpoints (and the index structures on top of
// them) using a fixed value of tau, and when M doubles, we rebuild".
// Gaps before firstNew received no new mass, so Lemma 2 keeps holding
// for them; re-emitted gaps satisfy it by construction.
func (s *Set) Extend(ds *tsdata.Dataset, firstNew float64) error {
	threshold := s.Epsilon * s.M // fixed tau from build time
	if threshold <= 0 {
		return fmt.Errorf("breakpoint: set has no threshold")
	}
	// Keep breakpoints strictly before firstNew (always keep b0).
	keep := sort.SearchFloat64s(s.Times, firstNew)
	if keep < 1 {
		keep = 1
	}
	s.Times = s.Times[:keep]
	last := s.Times[keep-1]
	if ds.End() <= last {
		return nil
	}
	// Repeatedly emit the earliest crossing of tau after `last` across
	// all objects. O(m * tail) per emitted breakpoint; adequate for the
	// incremental-update path (full rebuilds use Build2).
	for {
		next := math.Inf(1)
		for _, ser := range ds.AllSeries() {
			if ser.End() <= last {
				continue
			}
			acc := 0.0
			j := ser.SegmentAt(math.Max(last, ser.Start()))
			for ; j < ser.NumSegments(); j++ {
				seg := ser.Segment(j)
				from := math.Max(last, seg.T1)
				if from >= seg.T2 {
					continue
				}
				area := seg.AbsIntegralOver(from, seg.T2)
				if acc+area >= threshold {
					t, ok := seg.SolveAbsIntegralForward(from, threshold-acc)
					if ok && t < next {
						next = t
					}
					break
				}
				acc += area
			}
		}
		if math.IsInf(next, 1) {
			break
		}
		if next <= last {
			return fmt.Errorf("breakpoint: extend stalled at %g", next)
		}
		s.Times = append(s.Times, next)
		last = next
	}
	if last < ds.End() {
		s.Times = append(s.Times, ds.End())
	}
	return nil
}
