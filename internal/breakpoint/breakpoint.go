// Package breakpoint implements the ε-breakpoint constructions of §3.1:
//
//   - Build1 (BREAKPOINTS1): sweep the total aggregate Σ_i σ_i and cut
//     whenever it accumulates εM, yielding exactly r = ⌈1/ε⌉+1
//     breakpoints.
//   - Build2Baseline (BREAKPOINTS2, baseline): cut whenever any single
//     object's aggregate since the last cut reaches εM; resets all m
//     running integrals per cut (the O(rm + N log N) construction).
//   - Build2 (BREAKPOINTS2, efficient): same output, but avoids the
//     O(rm) reset cost with a lazy-refinement candidate heap. After a
//     cut, every object's threshold-crossing time can only move later,
//     so pre-cut candidates remain valid lower bounds and are re-keyed
//     only when they surface at the top of the heap — the same
//     O(N log N) bound as Lemma 1 (substituting for the unpublished
//     bookkeeping of the technical report's §9.1).
//
// Both constructions guarantee the Lemma 2 property: for any object i
// and consecutive breakpoints b_j, b_{j+1}, σ_i(b_j, b_{j+1}) ≤ εM —
// using absolute integrals throughout so the §4 negative-score
// extension holds unchanged.
package breakpoint

import (
	"fmt"
	"math"
	"sort"

	"temporalrank/internal/tsdata"
)

// Set is an ordered set of breakpoints over the dataset's temporal
// domain, b_0 = Start < b_1 < ... < b_{r-1} = End.
type Set struct {
	Times   []float64
	Epsilon float64 // the ε the set was built with
	M       float64 // Σ_i ∫|g_i| at build time
}

// R returns r, the number of breakpoints.
func (s *Set) R() int { return len(s.Times) }

// Snap returns B(t): the smallest breakpoint ≥ t (clamped to the last
// breakpoint when t exceeds the domain) and its index.
func (s *Set) Snap(t float64) (float64, int) {
	idx := sort.SearchFloat64s(s.Times, t)
	if idx >= len(s.Times) {
		idx = len(s.Times) - 1
	}
	return s.Times[idx], idx
}

// Validate checks ordering invariants (used by tests and loaders).
func (s *Set) Validate() error {
	if len(s.Times) < 2 {
		return fmt.Errorf("breakpoint: need at least 2 breakpoints, have %d", len(s.Times))
	}
	for i := 1; i < len(s.Times); i++ {
		if !(s.Times[i] > s.Times[i-1]) {
			return fmt.Errorf("breakpoint: not strictly increasing at %d (%g, %g)", i, s.Times[i-1], s.Times[i])
		}
	}
	return nil
}

// EpsilonForR1 returns the ε that makes BREAKPOINTS1 produce about r
// breakpoints (r = 1/ε + 1).
func EpsilonForR1(r int) float64 {
	if r < 2 {
		r = 2
	}
	return 1 / float64(r-1)
}

// --- BREAKPOINTS1 ------------------------------------------------------

// sweepEvent is a change point of the total |score| function: dValue
// captures jumps (objects appearing/disappearing), dSlope captures
// slope changes (vertices and zero crossings).
type sweepEvent struct {
	t      float64
	dValue float64
	dSlope float64
}

// Build1 constructs BREAKPOINTS1 with threshold εM on the summed
// aggregate. O(N log N) time dominated by event sorting.
func Build1(ds *tsdata.Dataset, eps float64) (*Set, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("breakpoint: eps must be positive, got %g", eps)
	}
	M := ds.M()
	threshold := eps * M
	events := buildSweepEvents(ds)

	times := []float64{ds.Start()}
	var v, w float64 // V(t) = Σ|g_i(t)|, W(t) = dV/dt
	cur := ds.Start()
	acc := 0.0 // Σ_i |σ_i|(lastBP, cur)
	ei := 0
	// Process events in order; between events V is linear.
	for ei < len(events) {
		ev := events[ei]
		dt := ev.t - cur
		if dt > 0 {
			segArea := w/2*dt*dt + v*dt
			for acc+segArea >= threshold && threshold > 0 {
				// A breakpoint lands inside (cur, ev.t].
				x, ok := solveQuad(v, w, threshold-acc, dt)
				if !ok {
					break
				}
				bp := cur + x
				if bp <= times[len(times)-1] {
					// Numeric underflow: force minimal progress.
					break
				}
				times = append(times, bp)
				// Advance the sweep state to bp.
				v += w * x
				cur = bp
				dt = ev.t - cur
				segArea = w/2*dt*dt + v*dt
				acc = 0
			}
			acc += segArea
			v += w * dt
			cur = ev.t
		}
		v += ev.dValue
		w += ev.dSlope
		ei++
	}
	if last := times[len(times)-1]; last < ds.End() {
		times = append(times, ds.End())
	}
	return &Set{Times: times, Epsilon: eps, M: M}, nil
}

// buildSweepEvents emits the change points of Σ_i |g_i(t)|.
func buildSweepEvents(ds *tsdata.Dataset) []sweepEvent {
	var events []sweepEvent
	for _, s := range ds.AllSeries() {
		n := s.NumSegments()
		for j := 0; j < n; j++ {
			seg := s.Segment(j)
			w := seg.Slope()
			sL, sR := segSign(seg.V1, w), segSign(seg.V2, -w)
			// Slope of |g| entering this segment is sL*w; leaving, sR*w.
			if j == 0 {
				events = append(events, sweepEvent{t: seg.T1, dValue: math.Abs(seg.V1), dSlope: sL * w})
			} else {
				prev := s.Segment(j - 1)
				pw := prev.Slope()
				pSR := segSign(prev.V2, -pw)
				events = append(events, sweepEvent{t: seg.T1, dSlope: sL*w - pSR*pw})
			}
			// Zero crossing inside the segment flips |g|'s slope sign.
			if (seg.V1 < 0) != (seg.V2 < 0) && seg.V1 != seg.V2 {
				tz := seg.T1 + (seg.T2-seg.T1)*seg.V1/(seg.V1-seg.V2)
				if tz > seg.T1 && tz < seg.T2 {
					events = append(events, sweepEvent{t: tz, dSlope: (sR - sL) * w})
				}
			}
			if j == n-1 {
				events = append(events, sweepEvent{t: seg.T2, dValue: -math.Abs(seg.V2), dSlope: -sR * w})
			}
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].t < events[b].t })
	return events
}

// segSign gives the sign of |g| relative to g near an endpoint with
// value v; when v == 0 the sign is taken from the direction d the
// function moves (slope into the segment for the left endpoint,
// negated slope for the right).
func segSign(v, d float64) float64 {
	if v > 0 {
		return 1
	}
	if v < 0 {
		return -1
	}
	if d >= 0 {
		return 1
	}
	return -1
}

// solveQuad solves w/2·x² + v·x = target for the smallest x in
// (0, maxX], clamping rounding noise at the boundary.
func solveQuad(v, w, target, maxX float64) (float64, bool) {
	const tiny = 1e-300
	if target <= 0 {
		return 0, false
	}
	if math.Abs(w) < tiny {
		if v <= 0 {
			return 0, false
		}
		x := target / v
		if x > maxX*(1+1e-9) {
			return 0, false
		}
		return math.Min(x, maxX), true
	}
	disc := v*v + 2*w*target
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	best := math.Inf(1)
	for _, r := range [2]float64{(-v + sq) / w, (-v - sq) / w} {
		if r > 0 && r < best {
			best = r
		}
	}
	if math.IsInf(best, 1) || best > maxX*(1+1e-9) {
		return 0, false
	}
	return math.Min(best, maxX), true
}
