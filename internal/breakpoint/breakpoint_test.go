package breakpoint

import (
	"math"
	"math/rand"
	"testing"

	"temporalrank/internal/tsdata"
)

func randomSeries(rng *rand.Rand, id tsdata.SeriesID, n int, negative bool) *tsdata.Series {
	times := make([]float64, n+1)
	values := make([]float64, n+1)
	t := rng.Float64() * 2
	for j := 0; j <= n; j++ {
		times[j] = t
		t += 0.2 + rng.Float64()*2
		v := rng.Float64() * 100
		if negative {
			v -= 50
		}
		values[j] = v
	}
	s, err := tsdata.NewSeries(id, times, values)
	if err != nil {
		panic(err)
	}
	return s
}

func randomDataset(seed int64, m, maxSegs int, negative bool) *tsdata.Dataset {
	rng := rand.New(rand.NewSource(seed))
	series := make([]*tsdata.Series, m)
	for i := 0; i < m; i++ {
		series[i] = randomSeries(rng, tsdata.SeriesID(i), 1+rng.Intn(maxSegs), negative)
	}
	d, err := tsdata.NewDataset(series)
	if err != nil {
		panic(err)
	}
	return d
}

// checkLemma2 verifies that between any two consecutive breakpoints no
// single object accumulates more than εM of |aggregate| (the invariant
// both constructions guarantee, Lemma 2).
func checkLemma2(t *testing.T, name string, ds *tsdata.Dataset, s *Set) {
	t.Helper()
	limit := s.Epsilon * s.M * (1 + 1e-7)
	for j := 0; j+1 < len(s.Times); j++ {
		for _, ser := range ds.AllSeries() {
			got := ser.AbsRange(s.Times[j], s.Times[j+1])
			if got > limit {
				t.Fatalf("%s: object %d has |σ|=%g > εM=%g in [b%d=%g, b%d=%g]",
					name, ser.ID, got, s.Epsilon*s.M, j, s.Times[j], j+1, s.Times[j+1])
			}
		}
	}
}

// checkTotalRule verifies BREAKPOINTS1's stronger invariant: the SUM of
// all objects' |aggregates| between consecutive interior breakpoints is
// εM (up to fp tolerance); the final gap may be smaller.
func checkTotalRule(t *testing.T, ds *tsdata.Dataset, s *Set) {
	t.Helper()
	want := s.Epsilon * s.M
	for j := 0; j+2 < len(s.Times); j++ {
		var total float64
		for _, ser := range ds.AllSeries() {
			total += ser.AbsRange(s.Times[j], s.Times[j+1])
		}
		if math.Abs(total-want) > want*1e-6 {
			t.Fatalf("B1 gap %d: Σ|σ| = %g, want εM = %g", j, total, want)
		}
	}
}

func TestBuild1CountMatchesTheory(t *testing.T) {
	ds := randomDataset(1, 20, 30, false)
	for _, r := range []int{5, 11, 51, 101} {
		eps := EpsilonForR1(r)
		s, err := Build1(ds, eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		// r = 1/eps + 1 breakpoints (±1 for the final fractional gap).
		if s.R() < r || s.R() > r+1 {
			t.Errorf("Build1(eps=%g): r = %d, want %d or %d", eps, s.R(), r, r+1)
		}
		checkTotalRule(t, ds, s)
		checkLemma2(t, "B1", ds, s)
	}
}

func TestBuild1Endpoints(t *testing.T) {
	ds := randomDataset(2, 10, 10, false)
	s, err := Build1(ds, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Times[0] != ds.Start() {
		t.Errorf("b0 = %g, want %g", s.Times[0], ds.Start())
	}
	if s.Times[len(s.Times)-1] != ds.End() {
		t.Errorf("br = %g, want %g", s.Times[len(s.Times)-1], ds.End())
	}
}

func TestBuild1InvalidEps(t *testing.T) {
	ds := randomDataset(3, 5, 5, false)
	if _, err := Build1(ds, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Build1(ds, -1); err == nil {
		t.Error("eps<0 accepted")
	}
}

func TestBuild2Lemma2(t *testing.T) {
	ds := randomDataset(4, 25, 30, false)
	for _, eps := range []float64{0.2, 0.05, 0.01} {
		s, err := Build2(ds, eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		checkLemma2(t, "B2-E", ds, s)
		sb, err := Build2Baseline(ds, eps)
		if err != nil {
			t.Fatal(err)
		}
		checkLemma2(t, "B2-B", ds, sb)
	}
}

// TestBuild2TightCuts: each interior breakpoint of B2 must be caused by
// some object reaching (approximately) εM — cuts should not be
// gratuitously early. We verify the max over objects of |σ| in each
// interior gap is close to εM.
func TestBuild2TightCuts(t *testing.T) {
	ds := randomDataset(5, 15, 25, false)
	eps := 0.02
	s, err := Build2(ds, eps)
	if err != nil {
		t.Fatal(err)
	}
	want := eps * s.M
	for j := 0; j+2 < len(s.Times); j++ {
		var maxAgg float64
		for _, ser := range ds.AllSeries() {
			if a := ser.AbsRange(s.Times[j], s.Times[j+1]); a > maxAgg {
				maxAgg = a
			}
		}
		if maxAgg < want*(1-1e-6) {
			t.Fatalf("B2 gap %d: max|σ| = %g < εM = %g (cut too early)", j, maxAgg, want)
		}
	}
}

func TestBuild2BaselineEqualsEfficient(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		neg := seed%2 == 0
		ds := randomDataset(10+seed, 12, 20, neg)
		for _, eps := range []float64{0.3, 0.08, 0.02} {
			a, err := Build2Baseline(ds, eps)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Build2(ds, eps)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Times) != len(b.Times) {
				t.Fatalf("seed %d eps %g: baseline r=%d, efficient r=%d", seed, eps, len(a.Times), len(b.Times))
			}
			for i := range a.Times {
				if math.Abs(a.Times[i]-b.Times[i]) > 1e-7*(1+math.Abs(a.Times[i])) {
					t.Fatalf("seed %d eps %g: breakpoint %d differs: %g vs %g",
						seed, eps, i, a.Times[i], b.Times[i])
				}
			}
		}
	}
}

// TestB2NoLargerThanB1: BREAKPOINTS2 never needs more breakpoints than
// BREAKPOINTS1 at the same ε (max ≤ sum).
func TestB2NoLargerThanB1(t *testing.T) {
	ds := randomDataset(6, 20, 25, false)
	for _, eps := range []float64{0.1, 0.02, 0.005} {
		b1, err := Build1(ds, eps)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := Build2(ds, eps)
		if err != nil {
			t.Fatal(err)
		}
		if b2.R() > b1.R() {
			t.Errorf("eps=%g: B2 r=%d > B1 r=%d", eps, b2.R(), b1.R())
		}
	}
}

// TestB2MuchSmallerOnManyObjects reproduces the Fig. 11a effect: with
// many comparable objects, the max rule cuts far less often than the
// sum rule, so B2 needs a much smaller ε to reach the same r.
func TestB2MuchSmallerOnManyObjects(t *testing.T) {
	ds := randomDataset(7, 60, 20, false)
	eps := 0.01
	b1, _ := Build1(ds, eps)
	b2, _ := Build2(ds, eps)
	if b2.R()*5 > b1.R() {
		t.Errorf("B2 r=%d should be ≪ B1 r=%d with m=60 objects", b2.R(), b1.R())
	}
}

func TestNegativeScores(t *testing.T) {
	ds := randomDataset(8, 15, 20, true)
	if !ds.HasNegative() {
		t.Fatal("fixture should contain negatives")
	}
	for _, eps := range []float64{0.1, 0.02} {
		b1, err := Build1(ds, eps)
		if err != nil {
			t.Fatal(err)
		}
		checkLemma2(t, "B1(neg)", ds, b1)
		checkTotalRule(t, ds, b1)
		b2, err := Build2(ds, eps)
		if err != nil {
			t.Fatal(err)
		}
		checkLemma2(t, "B2(neg)", ds, b2)
	}
}

func TestSnap(t *testing.T) {
	s := &Set{Times: []float64{0, 10, 20, 30}}
	cases := []struct {
		t    float64
		want float64
		idx  int
	}{
		{-5, 0, 0}, {0, 0, 0}, {0.1, 10, 1}, {10, 10, 1},
		{15, 20, 2}, {30, 30, 3}, {35, 30, 3},
	}
	for _, c := range cases {
		got, idx := s.Snap(c.t)
		if got != c.want || idx != c.idx {
			t.Errorf("Snap(%g) = (%g,%d), want (%g,%d)", c.t, got, idx, c.want, c.idx)
		}
	}
}

func TestSetValidate(t *testing.T) {
	if err := (&Set{Times: []float64{0, 1, 2}}).Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := (&Set{Times: []float64{0}}).Validate(); err == nil {
		t.Error("single breakpoint accepted")
	}
	if err := (&Set{Times: []float64{0, 1, 1}}).Validate(); err == nil {
		t.Error("duplicate accepted")
	}
	if err := (&Set{Times: []float64{0, 2, 1}}).Validate(); err == nil {
		t.Error("unsorted accepted")
	}
}

func TestBuild2WithTargetR(t *testing.T) {
	ds := randomDataset(9, 20, 25, false)
	for _, r := range []int{10, 40, 100} {
		s, err := Build2WithTargetR(ds, r, true)
		if err != nil {
			t.Fatal(err)
		}
		// Bisection should land within 25% of the budget.
		if absInt(s.R()-r) > r/4+2 {
			t.Errorf("target r=%d: got %d breakpoints", r, s.R())
		}
		checkLemma2(t, "B2(targetR)", ds, s)
	}
	if _, err := Build2WithTargetR(ds, 1, true); err == nil {
		t.Error("r=1 accepted")
	}
}

// TestSingleGiantSegment: one object holds nearly all the mass in one
// long segment; B2 must cut inside the segment repeatedly.
func TestSingleGiantSegment(t *testing.T) {
	big, err := tsdata.NewSeries(0, []float64{0, 100}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	small, err := tsdata.NewSeries(1, []float64{0, 100}, []float64{0.01, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := tsdata.NewDataset([]*tsdata.Series{big, small})
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.05
	s, err := Build2(ds, eps)
	if err != nil {
		t.Fatal(err)
	}
	checkLemma2(t, "B2(giant)", ds, s)
	// The big object has ~0.999 of M; expect ~1/0.05 ≈ 20 cuts.
	if s.R() < 15 {
		t.Errorf("r = %d, want about 20 cuts inside the giant segment", s.R())
	}
	sb, err := Build2Baseline(ds, eps)
	if err != nil {
		t.Fatal(err)
	}
	if sb.R() != s.R() {
		t.Errorf("baseline r=%d != efficient r=%d", sb.R(), s.R())
	}
}

func TestBuild1MultipleCutsWithinElementaryInterval(t *testing.T) {
	// A single two-segment object forces many cuts inside segments.
	ser, err := tsdata.NewSeries(0, []float64{0, 50, 100}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := tsdata.NewDataset([]*tsdata.Series{ser})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build1(ds, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.R() < 11 {
		t.Errorf("r = %d, want 11 for eps=0.1 on constant data", s.R())
	}
	checkTotalRule(t, ds, s)
	// Cuts should be evenly spaced on constant data.
	for j := 1; j+1 < len(s.Times); j++ {
		gap := s.Times[j] - s.Times[j-1]
		if math.Abs(gap-10) > 1e-6 {
			t.Errorf("gap %d = %g, want 10", j, gap)
		}
	}
}

func TestExtendPreservesLemma2(t *testing.T) {
	ds := randomDataset(60, 12, 15, false)
	eps := 0.03
	s, err := Build2(ds, eps)
	if err != nil {
		t.Fatal(err)
	}
	rBefore := s.R()
	// Append new data to every object (the §4 update model). Objects
	// end at different times, so some appends land inside the original
	// breakpoint domain — Extend must repair those gaps too.
	rng := rand.New(rand.NewSource(61))
	firstNew := math.Inf(1)
	for _, ser := range ds.AllSeries() {
		end := ser.End()
		if end < firstNew {
			firstNew = end
		}
		for a := 0; a < 20; a++ {
			end += 0.2 + rng.Float64()
			if err := ser.Append(end, rng.Float64()*100); err != nil {
				t.Fatal(err)
			}
		}
	}
	ds.Refresh()
	if err := s.Extend(ds, firstNew); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.R() <= rBefore {
		t.Errorf("Extend added no breakpoints (%d -> %d) despite new mass", rBefore, s.R())
	}
	if got := s.Times[len(s.Times)-1]; got != ds.End() {
		t.Errorf("last breakpoint %g != new end %g", got, ds.End())
	}
	// Lemma 2 with the ORIGINAL threshold τ = ε·M_build must hold over
	// the extended region too.
	limit := s.Epsilon * s.M * (1 + 1e-7)
	for j := 0; j+1 < len(s.Times); j++ {
		for _, ser := range ds.AllSeries() {
			if got := ser.AbsRange(s.Times[j], s.Times[j+1]); got > limit {
				t.Fatalf("gap %d [%g,%g]: object %d |σ|=%g > τ=%g",
					j, s.Times[j], s.Times[j+1], ser.ID, got, s.Epsilon*s.M)
			}
		}
	}
}

func TestExtendNoNewData(t *testing.T) {
	ds := randomDataset(62, 5, 8, false)
	s, err := Build2(ds, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r := s.R()
	if err := s.Extend(ds, ds.End()); err != nil {
		t.Fatal(err)
	}
	if s.R() != r {
		t.Errorf("Extend without new data changed r: %d -> %d", r, s.R())
	}
}
