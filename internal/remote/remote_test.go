package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"temporalrank/internal/trerr"
)

// startServer brings up a Server on an ephemeral loopback listener and
// returns it with its address; cleanup closes everything.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

type echoReq struct {
	Text string
	N    int
}

func TestUnaryRoundTrip(t *testing.T) {
	srv, addr := startServer(t)
	srv.Handle("echo", func(ctx context.Context, req []byte) (any, error) {
		var in echoReq
		if err := decodeBody(req, &in); err != nil {
			return nil, err
		}
		in.N++
		return in, nil
	})
	c := NewClient(ClientOptions{})
	defer c.Close()

	var out echoReq
	if err := c.Call(context.Background(), addr, "echo", echoReq{Text: "hi", N: 41}, &out); err != nil {
		t.Fatalf("call: %v", err)
	}
	if out.Text != "hi" || out.N != 42 {
		t.Fatalf("got %+v, want {hi 42}", out)
	}
}

func TestSentinelErrorsCrossTheWire(t *testing.T) {
	srv, addr := startServer(t)
	srv.Handle("fail", func(ctx context.Context, req []byte) (any, error) {
		return nil, fmt.Errorf("series 9 of 4: %w", trerr.ErrUnknownSeries)
	})
	srv.Handle("unavail", func(ctx context.Context, req []byte) (any, error) {
		return nil, trerr.ErrShardUnavailable
	})
	c := NewClient(ClientOptions{})
	defer c.Close()

	err := c.Call(context.Background(), addr, "fail", nil, nil)
	if !errors.Is(err, trerr.ErrUnknownSeries) {
		t.Fatalf("errors.Is(err, ErrUnknownSeries) = false; err = %v", err)
	}
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("remote application error does not unwrap to *Error: %v", err)
	}
	if ae.Code != "unknown_series" {
		t.Fatalf("code = %q, want unknown_series", ae.Code)
	}
	if Retryable(err) {
		t.Fatal("application error classified retryable")
	}

	if err := c.Call(context.Background(), addr, "unavail", nil, nil); !errors.Is(err, trerr.ErrShardUnavailable) {
		t.Fatalf("errors.Is(err, ErrShardUnavailable) = false; err = %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, addr := startServer(t)
	c := NewClient(ClientOptions{})
	defer c.Close()
	err := c.Call(context.Background(), addr, "nope", nil, nil)
	if err == nil {
		t.Fatal("unknown method succeeded")
	}
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("unknown-method error is not an application error: %v", err)
	}
}

func TestDeadlinePropagatesToHandler(t *testing.T) {
	srv, addr := startServer(t)
	release := make(chan struct{})
	srv.Handle("slow", func(ctx context.Context, req []byte) (any, error) {
		defer close(release)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, nil
		}
	})
	c := NewClient(ClientOptions{})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Call(ctx, addr, "slow", nil, nil)
	if err == nil {
		t.Fatal("deadline-bound call succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("call blocked %v past its 50ms deadline", elapsed)
	}
	select {
	case <-release:
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not observe the propagated deadline")
	}
}

func TestCancelUnblocksCall(t *testing.T) {
	srv, addr := startServer(t)
	srv.Handle("hang", func(ctx context.Context, req []byte) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	c := NewClient(ClientOptions{})
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	err := c.Call(ctx, addr, "hang", nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if Retryable(err) {
		t.Fatal("cancellation classified retryable")
	}
}

func TestRetryOnTransportFailure(t *testing.T) {
	// A listener that tears down the first two connections before any
	// response, then serves normally.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	srv := NewServer(0)
	defer srv.Close()
	var calls atomic.Int32
	srv.Handle("flaky", func(ctx context.Context, req []byte) (any, error) {
		calls.Add(1)
		return nil, nil
	})
	var accepted atomic.Int32
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			if accepted.Add(1) <= 2 {
				nc.Close()
				continue
			}
			go srv.serveConn(nc)
		}
	}()

	c := NewClient(ClientOptions{Retries: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	defer c.Close()
	if err := c.Call(context.Background(), ln.Addr().String(), "flaky", nil, nil); err != nil {
		t.Fatalf("call after retries: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("handler ran %d times, want 1", got)
	}

	// CallOnce must not retry: a fresh client (empty pool) dials, the
	// listener tears the connection, and the failure surfaces directly.
	accepted.Store(0)
	c2 := NewClient(ClientOptions{})
	defer c2.Close()
	if err := c2.CallOnce(context.Background(), ln.Addr().String(), "flaky", nil, nil); err == nil {
		t.Fatal("CallOnce succeeded despite torn connection")
	}
}

func TestStreaming(t *testing.T) {
	srv, addr := startServer(t)
	payload := bytes.Repeat([]byte("0123456789abcdef"), 64<<10) // 1 MiB, spans multiple chunks
	srv.HandleStream("blob", func(ctx context.Context, req []byte, w io.Writer) error {
		_, err := w.Write(payload)
		return err
	})
	srv.HandleStream("midfail", func(ctx context.Context, req []byte, w io.Writer) error {
		if _, err := w.Write([]byte("partial")); err != nil {
			return err
		}
		return fmt.Errorf("disk gone: %w", trerr.ErrBadSnapshot)
	})
	c := NewClient(ClientOptions{})
	defer c.Close()

	rc, err := c.CallStream(context.Background(), addr, "blob", nil)
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	rc.Close()
	if !bytes.Equal(got, payload) {
		t.Fatalf("stream mismatch: got %d bytes, want %d", len(got), len(payload))
	}

	// A mid-stream handler failure must surface typed, not as silent EOF.
	rc, err = c.CallStream(context.Background(), addr, "midfail", nil)
	if err != nil {
		t.Fatalf("open midfail stream: %v", err)
	}
	_, err = io.ReadAll(rc)
	rc.Close()
	if !errors.Is(err, trerr.ErrBadSnapshot) {
		t.Fatalf("mid-stream failure: errors.Is(err, ErrBadSnapshot) = false; err = %v", err)
	}
}

func TestConnectionPoolReuse(t *testing.T) {
	srv, addr := startServer(t)
	srv.Handle("ping", func(ctx context.Context, req []byte) (any, error) { return nil, nil })
	c := NewClient(ClientOptions{})
	defer c.Close()

	for i := 0; i < 5; i++ {
		if err := c.Call(context.Background(), addr, "ping", nil, nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	srv.mu.Lock()
	open := len(srv.conns)
	srv.mu.Unlock()
	if open != 1 {
		t.Fatalf("5 sequential calls used %d connections, want 1 (pooling broken)", open)
	}
}

// TestCanceledCallDoesNotPoisonPool is the regression test for a
// pooled-connection race: a call that succeeded re-pooled its
// connection while its cancellation watcher was still armed, so a
// cancel arriving just after re-pool forced a past deadline onto a
// conn another call now owned — which then failed with a bogus
// transport error. Healthy calls sharing a client with canceled ones
// must never see transport failures.
func TestCanceledCallDoesNotPoisonPool(t *testing.T) {
	srv, addr := startServer(t)
	srv.Handle("ping", func(ctx context.Context, req []byte) (any, error) { return nil, nil })
	c := NewClient(ClientOptions{})
	defer c.Close()

	const iters = 200
	var wg sync.WaitGroup
	failures := make(chan error, iters)
	wg.Add(2)
	go func() {
		// Canceler: each call succeeds, then its context is canceled
		// immediately — the window where a late watcher used to fire.
		defer wg.Done()
		for i := 0; i < iters; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			_ = c.Call(ctx, addr, "ping", nil, nil)
			cancel()
		}
	}()
	go func() {
		// Victim: plain calls on the same pool must all succeed.
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := c.CallOnce(context.Background(), addr, "ping", nil, nil); err != nil {
				failures <- err
				return
			}
		}
	}()
	wg.Wait()
	close(failures)
	for err := range failures {
		t.Fatalf("healthy call failed alongside canceled calls: %v", err)
	}
}

func TestServerCloseUnblocksHandlers(t *testing.T) {
	srv, addr := startServer(t)
	entered := make(chan struct{})
	srv.Handle("wait", func(ctx context.Context, req []byte) (any, error) {
		close(entered)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	c := NewClient(ClientOptions{CallTimeout: 30 * time.Second})
	defer c.Close()

	done := make(chan error, 1)
	go func() { done <- c.Call(context.Background(), addr, "wait", nil, nil) }()
	<-entered
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call succeeded after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call did not unblock after server close")
	}
}
