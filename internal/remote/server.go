package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Handler answers one unary call: decode the argument from req, return
// the reply value (gob-encoded into the response body) or an error
// (flattened to a wire code). A nil reply sends an empty body.
type Handler func(ctx context.Context, req []byte) (any, error)

// StreamHandler answers one streaming call by writing the raw response
// byte stream to w; the server chunks it into More=true frames. A
// returned error is attached to the final frame so the client's reader
// fails typed instead of truncating silently.
type StreamHandler func(ctx context.Context, req []byte, w io.Writer) error

// Server dispatches length-prefixed gob calls to registered handlers.
// Each accepted connection is served by one goroutine processing calls
// sequentially (the client never pipelines).
type Server struct {
	maxFrame int

	mu      sync.Mutex
	unary   map[string]Handler
	stream  map[string]StreamHandler
	lns     map[net.Listener]struct{}
	conns   map[net.Conn]struct{}
	closed  bool
	baseCtx context.Context
	cancel  context.CancelFunc
	serveWG sync.WaitGroup
}

// NewServer creates an empty server. maxFrame <= 0 selects
// DefaultMaxFrame.
func NewServer(maxFrame int) *Server {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		maxFrame: maxFrame,
		unary:    make(map[string]Handler),
		stream:   make(map[string]StreamHandler),
		lns:      make(map[net.Listener]struct{}),
		conns:    make(map[net.Conn]struct{}),
		baseCtx:  ctx,
		cancel:   cancel,
	}
}

// Handle registers a unary handler. Registration after Serve has
// started is safe; re-registering a name replaces the handler.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	s.unary[method] = h
	s.mu.Unlock()
}

// HandleStream registers a streaming handler.
func (s *Server) HandleStream(method string, h StreamHandler) {
	s.mu.Lock()
	s.stream[method] = h
	s.mu.Unlock()
}

// Serve accepts connections on ln until the listener or the server is
// closed. It blocks; run it on its own goroutine. The returned error
// is nil after a clean Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("remote: server is closed")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("remote: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.serveWG.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.serveWG.Done()
			s.serveConn(nc)
			s.mu.Lock()
			delete(s.conns, nc)
			s.mu.Unlock()
		}()
	}
}

// Close stops all listeners, severs open connections, cancels every
// in-flight handler context, and waits for handler goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.cancel()
	s.serveWG.Wait()
	return nil
}

// serveConn processes calls on one connection until it errors or the
// peer hangs up.
func (s *Server) serveConn(nc net.Conn) {
	defer nc.Close()
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	for {
		// Idle connections may sit in the client pool indefinitely:
		// no read deadline between requests.
		_ = nc.SetDeadline(time.Time{})
		var req request
		if err := readFrame(br, s.maxFrame, &req); err != nil {
			return
		}
		if !s.dispatch(nc, bw, req) {
			return
		}
	}
}

// dispatch runs one call and reports whether the connection is still
// usable for the next one.
func (s *Server) dispatch(nc net.Conn, bw *bufio.Writer, req request) bool {
	ctx := s.baseCtx
	var cancel context.CancelFunc
	if req.Deadline != 0 {
		deadline := time.Unix(0, req.Deadline)
		_ = nc.SetDeadline(deadline)
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	s.mu.Lock()
	uh := s.unary[req.Method]
	sh := s.stream[req.Method]
	s.mu.Unlock()
	switch {
	case uh != nil:
		return s.runUnary(bw, ctx, uh, req)
	case sh != nil:
		return s.runStream(bw, ctx, sh, req)
	default:
		return s.reply(bw, response{Code: genericCode, Msg: "remote: unknown method " + req.Method})
	}
}

func (s *Server) runUnary(bw *bufio.Writer, ctx context.Context, h Handler, req request) bool {
	out, err := h(ctx, req.Body)
	if err != nil {
		code, msg := encodeError(err)
		return s.reply(bw, response{Code: code, Msg: msg})
	}
	body, err := encodeBody(out)
	if err != nil {
		code, msg := encodeError(err)
		return s.reply(bw, response{Code: code, Msg: msg})
	}
	return s.reply(bw, response{Body: body})
}

func (s *Server) runStream(bw *bufio.Writer, ctx context.Context, h StreamHandler, req request) bool {
	cw := &chunkWriter{s: s, bw: bw}
	err := h(ctx, req.Body, cw)
	if cw.fail {
		return false // a chunk failed to transmit: connection is torn
	}
	final := response{}
	if err != nil {
		final.Code, final.Msg = encodeError(err)
	}
	return s.reply(bw, final)
}

// reply writes one response frame; false means the connection is dead.
func (s *Server) reply(bw *bufio.Writer, resp response) bool {
	if err := writeFrame(bw, s.maxFrame, &resp); err != nil {
		return false
	}
	return bw.Flush() == nil
}

// streamChunk bounds one More=true frame's body. Small enough to keep
// per-frame allocation modest, large enough that a snapshot transfer
// is not dominated by framing overhead.
const streamChunk = 256 << 10

// chunkWriter adapts a StreamHandler's io.Writer to More=true frames.
type chunkWriter struct {
	s    *Server
	bw   *bufio.Writer
	fail bool
}

func (cw *chunkWriter) Write(p []byte) (int, error) {
	if cw.fail {
		return 0, fmt.Errorf("remote: stream connection failed")
	}
	total := 0
	for len(p) > 0 {
		n := min(len(p), streamChunk)
		frame := response{More: true, Body: p[:n]}
		if err := writeFrame(cw.bw, cw.s.maxFrame, &frame); err != nil {
			cw.fail = true
			return total, err
		}
		p = p[n:]
		total += n
	}
	// No flush per write: the final frame's flush in reply() pushes
	// everything; bufio flushes intermediate data as its buffer fills.
	return total, nil
}
