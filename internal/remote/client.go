package remote

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// ClientOptions tunes a Client. The zero value is usable: every field
// falls back to the documented default.
type ClientOptions struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// CallTimeout is the per-call guard applied when the caller's
	// context carries no deadline of its own (default 10s). It exists
	// so a hung peer can never pin a pooled connection forever.
	CallTimeout time.Duration
	// MaxIdlePerHost bounds pooled idle connections per address
	// (default 2).
	MaxIdlePerHost int
	// Retries is how many additional attempts Call makes after a
	// transport failure (default 2, so 3 attempts total). Application
	// errors and context cancellation are never retried.
	Retries int
	// BackoffBase and BackoffMax shape the jittered exponential backoff
	// between retry attempts (defaults 5ms and 100ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxFrame bounds one frame's payload (default DefaultMaxFrame).
	MaxFrame int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.MaxIdlePerHost <= 0 {
		o.MaxIdlePerHost = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 5 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 100 * time.Millisecond
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	return o
}

// Client issues calls to remote servers with per-host connection
// pooling. It is safe for concurrent use; each in-flight call owns one
// connection exclusively (no multiplexing — concurrency is achieved by
// opening more connections, bounded by the peers' accept capacity).
type Client struct {
	opts ClientOptions

	mu     sync.Mutex
	idle   map[string][]*clientConn
	closed bool
}

// clientConn is one pooled TCP connection with its buffered endpoints.
type clientConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func (cc *clientConn) close() { _ = cc.nc.Close() }

// NewClient creates a client; opts fields at zero take their defaults.
func NewClient(opts ClientOptions) *Client {
	return &Client{opts: opts.withDefaults(), idle: make(map[string][]*clientConn)}
}

// Close drops every pooled connection. In-flight calls finish on their
// own connections; their connections are closed instead of re-pooled.
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = make(map[string][]*clientConn)
	c.closed = true
	c.mu.Unlock()
	for _, conns := range idle {
		for _, cc := range conns {
			cc.close()
		}
	}
	return nil
}

// Call invokes method on addr, gob-encoding in as the argument and
// decoding the reply into out (out may be nil for calls without a
// reply body). Transport failures are retried up to Retries times with
// jittered exponential backoff; application errors (those that unwrap
// to *Error) and context cancellation are returned immediately.
func (c *Client) Call(ctx context.Context, addr, method string, in, out any) error {
	return c.do(ctx, addr, method, in, out, c.opts.Retries)
}

// CallOnce is Call without retries — for non-idempotent methods
// (append) and for callers running their own failover loop (the
// hedged-read path), where a transparent retry would double-apply or
// double-count.
func (c *Client) CallOnce(ctx context.Context, addr, method string, in, out any) error {
	return c.do(ctx, addr, method, in, out, 0)
}

func (c *Client) do(ctx context.Context, addr, method string, in, out any, retries int) error {
	body, err := encodeBody(in)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		err = c.roundTrip(ctx, addr, method, body, out)
		if err == nil || !Retryable(err) || attempt >= retries {
			return err
		}
		if berr := c.backoff(ctx, attempt); berr != nil {
			return fmt.Errorf("remote: %s %s: %w", addr, method, berr)
		}
	}
}

// Retryable reports whether err is a transport failure — one where the
// peer may simply be gone and a retry (or a different replica) can
// succeed. Application errors and context cancellation are final.
func Retryable(err error) bool {
	var ae *Error
	if errors.As(err, &ae) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// backoff sleeps the jittered exponential delay for attempt, aborting
// early when ctx is done.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.opts.BackoffBase << attempt
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	// Full jitter in [d/2, d): desynchronizes retry storms from many
	// clients that failed at the same instant.
	d = d/2 + rand.N(d/2+1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// roundTrip performs one attempt of a unary call.
func (c *Client) roundTrip(ctx context.Context, addr, method string, body []byte, out any) error {
	cc, err := c.getConn(ctx, addr)
	if err != nil {
		return err
	}
	deadline, stop := c.armConn(ctx, cc)
	defer stop()
	resp, err := c.exchange(cc, request{Method: method, Deadline: deadline, Body: body})
	if err != nil {
		cc.close()
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("remote: %s %s: %w", addr, method, cerr)
		}
		return err
	}
	if resp.More {
		// A streaming answer to a unary call: drain-impossible, drop it.
		cc.close()
		return fmt.Errorf("remote: %s %s: unexpected streaming response", addr, method)
	}
	// Disarm before re-pooling: once the conn is back in the pool
	// another call may own it, and a late watcher firing on this call's
	// cancellation would poison that call's IO with a forced deadline.
	stop()
	c.putConn(addr, cc)
	if resp.Code != "" {
		return decodeError(resp.Code, resp.Msg)
	}
	if out != nil {
		return decodeBody(resp.Body, out)
	}
	return nil
}

// CallStream invokes a streaming method and returns a reader over the
// raw response byte stream. The returned ReadCloser must be closed;
// closing after full consumption (io.EOF) re-pools the connection,
// closing early discards it. A mid-stream server failure surfaces as a
// typed error from Read (never a silent truncation). Dial-phase
// failures are retried like Call; once the first byte arrives the
// stream is not retried.
func (c *Client) CallStream(ctx context.Context, addr, method string, in any) (io.ReadCloser, error) {
	body, err := encodeBody(in)
	if err != nil {
		return nil, err
	}
	var rc io.ReadCloser
	for attempt := 0; ; attempt++ {
		rc, err = c.openStream(ctx, addr, request{Method: method, Body: body})
		if err == nil || !Retryable(err) || attempt >= c.opts.Retries {
			return rc, err
		}
		if berr := c.backoff(ctx, attempt); berr != nil {
			return nil, fmt.Errorf("remote: %s %s: %w", addr, method, berr)
		}
	}
}

func (c *Client) openStream(ctx context.Context, addr string, req request) (io.ReadCloser, error) {
	cc, err := c.getConn(ctx, addr)
	if err != nil {
		return nil, err
	}
	deadline, stop := c.armConn(ctx, cc)
	req.Deadline = deadline
	first, err := c.exchange(cc, req)
	if err != nil {
		stop()
		cc.close()
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("remote: %s %s: %w", addr, req.Method, cerr)
		}
		return nil, err
	}
	if !first.More && first.Code != "" {
		stop()
		c.putConn(addr, cc)
		return nil, decodeError(first.Code, first.Msg)
	}
	return &streamReader{c: c, addr: addr, cc: cc, stop: stop, cur: first}, nil
}

// exchange writes one request frame and reads one response frame on an
// armed connection.
func (c *Client) exchange(cc *clientConn, req request) (response, error) {
	var resp response
	if err := writeFrame(cc.bw, c.opts.MaxFrame, &req); err != nil {
		return resp, err
	}
	if err := cc.bw.Flush(); err != nil {
		return resp, fmt.Errorf("remote: flush request: %w", err)
	}
	err := readFrame(cc.br, c.opts.MaxFrame, &resp)
	return resp, err
}

// armConn applies the call deadline to the connection and spawns the
// context watcher that unblocks IO on cancellation. It returns the
// deadline to transmit to the server and an idempotent stop function
// that must run when the call's IO is over — and strictly BEFORE the
// connection is re-pooled, since after putConn another call owns the
// conn and a late deadline write would poison its IO.
func (c *Client) armConn(ctx context.Context, cc *clientConn) (int64, func()) {
	deadline, ok := ctx.Deadline()
	if !ok || deadline.After(time.Now().Add(c.opts.CallTimeout)) {
		deadline = time.Now().Add(c.opts.CallTimeout)
	}
	_ = cc.nc.SetDeadline(deadline)
	wire := deadline.UnixNano()
	if ctx.Done() == nil {
		var once sync.Once
		return wire, func() {
			once.Do(func() { _ = cc.nc.SetDeadline(time.Time{}) })
		}
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-ctx.Done():
			// Force in-flight reads/writes to fail now.
			_ = cc.nc.SetDeadline(time.Unix(1, 0))
		case <-done:
		}
	}()
	var once sync.Once
	return wire, func() {
		once.Do(func() {
			close(done)
			// Wait the watcher out: one that already committed to the
			// ctx.Done branch would otherwise stamp its forced deadline
			// AFTER the clear below — poisoning the conn while it sits
			// idle in the pool, so the next call on it fails instantly
			// with a timeout that Retryable() treats as a dead peer.
			<-exited
			_ = cc.nc.SetDeadline(time.Time{})
		})
	}
}

func (c *Client) getConn(ctx context.Context, addr string) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("remote: client is closed")
	}
	if conns := c.idle[addr]; len(conns) > 0 {
		cc := conns[len(conns)-1]
		c.idle[addr] = conns[:len(conns)-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	d := net.Dialer{Timeout: c.opts.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &clientConn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}, nil
}

func (c *Client) putConn(addr string, cc *clientConn) {
	c.mu.Lock()
	if c.closed || len(c.idle[addr]) >= c.opts.MaxIdlePerHost {
		c.mu.Unlock()
		cc.close()
		return
	}
	c.idle[addr] = append(c.idle[addr], cc)
	c.mu.Unlock()
}

// streamReader adapts the chunked response frames of a streaming call
// to io.Reader.
type streamReader struct {
	c    *Client
	addr string
	cc   *clientConn
	stop func()
	cur  response // frame being consumed; cur.Body drains first
	done bool     // final frame fully handled
	fail bool     // transport/app failure: connection not reusable
}

func (r *streamReader) Read(p []byte) (int, error) {
	for len(r.cur.Body) == 0 {
		if !r.cur.More {
			r.done = true
			if r.cur.Code != "" {
				r.fail = true
				return 0, decodeError(r.cur.Code, r.cur.Msg)
			}
			return 0, io.EOF
		}
		r.cur = response{}
		if err := readFrame(r.cc.br, r.c.opts.MaxFrame, &r.cur); err != nil {
			r.fail = true
			return 0, err
		}
	}
	n := copy(p, r.cur.Body)
	r.cur.Body = r.cur.Body[n:]
	return n, nil
}

// Close releases the stream's connection: back to the pool when the
// stream was fully consumed, closed otherwise (unread frames would
// poison the next call on it).
func (r *streamReader) Close() error {
	r.stop()
	if r.done && !r.fail && len(r.cur.Body) == 0 {
		r.c.putConn(r.addr, r.cc)
	} else {
		r.cc.close()
	}
	return nil
}
