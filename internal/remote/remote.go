// Package remote is the stdlib-only RPC layer under the distributed
// serving tier: length-prefixed gob frames over TCP, per-call
// deadlines propagated to the server, bounded retries with jittered
// backoff, per-host connection pooling, and chunked response streaming
// (used for snapshot transfer during replica bootstrap).
//
// Wire shape — every frame is
//
//	[4-byte big-endian length][gob payload]
//
// where the payload is one request or response envelope. A request
// carries a method name, an absolute deadline, and an opaque
// gob-encoded body; a response carries an error code (empty on
// success), a body, and a More flag — a streaming handler emits a
// chain of More=true frames followed by one final More=false frame,
// which also carries the error code if the stream failed mid-way.
//
// Application failures travel as typed codes that map back onto the
// package's sentinel errors (internal/trerr), so errors.Is keeps
// working across process boundaries: a shard server failing with
// trerr.ErrUnknownSeries surfaces on the client as an error for which
// errors.Is(err, trerr.ErrUnknownSeries) is true. Transport failures
// (dial errors, torn frames, closed connections) are ordinary errors
// that do NOT unwrap to *remote.Error — the distinction callers use to
// decide between failover (transport: the replica may be dead) and
// propagation (application: every replica would answer the same).
package remote

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"temporalrank/internal/trerr"
)

// DefaultMaxFrame bounds a single frame's payload; a corrupt or
// malicious length prefix fails fast instead of ballooning allocation.
const DefaultMaxFrame = 64 << 20

// request is the client→server envelope of one call.
type request struct {
	// Method names the registered handler.
	Method string
	// Deadline is the caller's absolute deadline in Unix nanoseconds
	// (0 = none); the server derives the handler context from it, so a
	// timed-out client does not leave the handler running unbounded.
	Deadline int64
	// Body is the gob-encoded argument (nil for argument-less calls).
	Body []byte
}

// response is the server→client envelope. A unary call answers with a
// single More=false frame. A streaming call answers with zero or more
// More=true frames whose bodies are raw stream chunks, then a final
// More=false frame (carrying Code/Msg when the stream failed).
type response struct {
	Code string
	Msg  string
	More bool
	Body []byte
}

// Error is an application-level failure relayed from a remote handler.
// It unwraps to the sentinel its code names, so errors.Is classifies
// remote failures exactly like local ones. A failed call that does NOT
// unwrap to *Error is a transport failure (connection, framing,
// timeout) — the replica itself may be unhealthy.
type Error struct {
	Code string
	Msg  string
	base error
}

func (e *Error) Error() string {
	if e.Msg != "" {
		return e.Msg
	}
	return "remote error " + e.Code
}

func (e *Error) Unwrap() error { return e.base }

// wireCodes maps sentinel errors to their stable wire codes. Order
// matters only for encoding specificity; every entry is bidirectional.
var wireCodes = []struct {
	code string
	err  error
}{
	{"unknown_series", trerr.ErrUnknownSeries},
	{"k_too_large", trerr.ErrKTooLarge},
	{"not_materialized", trerr.ErrNotMaterialized},
	{"bad_interval", trerr.ErrBadInterval},
	{"bad_config", trerr.ErrBadConfig},
	{"no_input", trerr.ErrNoInput},
	{"bad_snapshot", trerr.ErrBadSnapshot},
	{"snapshot_version", trerr.ErrSnapshotVersion},
	{"unavailable", trerr.ErrShardUnavailable},
	{"deadline", context.DeadlineExceeded},
	{"canceled", context.Canceled},
}

// genericCode tags application errors that match no sentinel.
const genericCode = "error"

// encodeError flattens a handler failure to its wire code and message.
func encodeError(err error) (code, msg string) {
	for _, wc := range wireCodes {
		if errors.Is(err, wc.err) {
			return wc.code, err.Error()
		}
	}
	return genericCode, err.Error()
}

// decodeError rebuilds the typed error on the client side.
func decodeError(code, msg string) error {
	for _, wc := range wireCodes {
		if wc.code == code {
			return &Error{Code: code, Msg: msg, base: wc.err}
		}
	}
	return &Error{Code: code, Msg: msg}
}

// writeFrame gob-encodes v and writes it as one length-prefixed frame.
func writeFrame(w io.Writer, maxFrame int, v any) error {
	var b bytes.Buffer
	b.Write(make([]byte, 4))
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		return fmt.Errorf("remote: encode frame: %w", err)
	}
	n := b.Len() - 4
	if n > maxFrame {
		return fmt.Errorf("remote: frame of %d bytes exceeds the %d-byte bound", n, maxFrame)
	}
	binary.BigEndian.PutUint32(b.Bytes()[:4], uint32(n))
	if _, err := w.Write(b.Bytes()); err != nil {
		return fmt.Errorf("remote: write frame: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed frame and gob-decodes it into v.
func readFrame(r io.Reader, maxFrame int, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("remote: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxFrame) {
		return fmt.Errorf("remote: frame claims %d bytes, bound is %d", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("remote: read frame body: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(v); err != nil {
		return fmt.Errorf("remote: decode frame: %w", err)
	}
	return nil
}

// encodeBody gob-encodes a call argument or reply value.
func encodeBody(v any) ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		return nil, fmt.Errorf("remote: encode body: %w", err)
	}
	return b.Bytes(), nil
}

// DecodeBody gob-decodes a request body into v — the helper handlers
// use to unpack their argument.
func DecodeBody(b []byte, v any) error { return decodeBody(b, v) }

// decodeBody gob-decodes a call argument or reply value.
func decodeBody(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("remote: decode body: %w", err)
	}
	return nil
}
