// Package approx implements the paper's approximate aggregate top-k
// indexes (§3.2, §3.3):
//
//   - Query1: the nested-B+-tree structure over all O(r²) breakpoint
//     pairs, answering (ε,1)-approximate top-k in O(k/B + log_B r) IOs.
//   - Query2: the dyadic-interval structure over O(r) intervals,
//     answering (ε,2·log r)-approximate top-k in O(k·log r·log_B k)
//     IOs with Θ(r·kmax/B) space.
//   - The combined methods APPX1-B, APPX2-B (BREAKPOINTS1-based),
//     APPX1, APPX2 (BREAKPOINTS2-based), and APPX2+ (APPX2 with exact
//     rescoring of the candidate set through an EXACT2 forest).
//
// All structures store their payload on a blockio.Device so query IO
// follows the paper's cost model. Top-k lists are densely packed into
// a shared page arena (lists freely span and share pages), so index
// size really is Θ(r²·kmax/B) / Θ(r·kmax/B) rather than one page per
// list.
package approx

import (
	"encoding/binary"
	"fmt"
	"math"

	"temporalrank/internal/blockio"
	"temporalrank/internal/topk"
	"temporalrank/internal/trerr"
	"temporalrank/internal/tsdata"
)

const (
	arenaHeaderSize = 8     // next-page pointer
	listEntrySize   = 4 + 8 // series uint32, score float64
)

// listRef locates a packed top-k list in the arena.
type listRef struct {
	head  blockio.PageID
	off   uint16 // byte offset of the first entry in the head page
	count uint32
}

const listRefSize = 8 + 2 + 4

func putNextPtr(buf []byte, p blockio.PageID) {
	v := int64(p)
	binary.LittleEndian.PutUint64(buf[0:], uint64(v))
}

func (r listRef) encode(b []byte) {
	binary.LittleEndian.PutUint64(b[0:], uint64(int64(r.head)))
	binary.LittleEndian.PutUint16(b[8:], r.off)
	binary.LittleEndian.PutUint32(b[10:], r.count)
}

func decodeListRef(b []byte) listRef {
	return listRef{
		head:  blockio.PageID(int64(binary.LittleEndian.Uint64(b[0:]))),
		off:   binary.LittleEndian.Uint16(b[8:]),
		count: binary.LittleEndian.Uint32(b[10:]),
	}
}

// listArena packs top-k lists densely into device pages. Each page
// begins with a next-page pointer; a list is (head page, offset,
// count) and may span any number of consecutive arena pages.
type listArena struct {
	dev  blockio.Device
	buf  []byte
	page blockio.PageID
	off  int
}

func newListArena(dev blockio.Device) (*listArena, error) {
	if dev.BlockSize() < arenaHeaderSize+listEntrySize {
		return nil, fmt.Errorf("approx: block size %d too small for list entries", dev.BlockSize())
	}
	if dev.BlockSize() > 1<<16 {
		return nil, fmt.Errorf("approx: block size %d exceeds list offset range", dev.BlockSize())
	}
	return &listArena{
		dev:  dev,
		buf:  make([]byte, dev.BlockSize()),
		page: blockio.InvalidPage,
		off:  dev.BlockSize(), // force allocation on first Put
	}, nil
}

// advance allocates the next arena page, chaining it from the current
// one, and flushes the current page.
func (a *listArena) advance() error {
	p, err := a.dev.Alloc()
	if err != nil {
		return err
	}
	if a.page != blockio.InvalidPage {
		putNextPtr(a.buf, p)
		if err := a.dev.Write(a.page, a.buf); err != nil {
			return err
		}
	}
	for i := range a.buf {
		a.buf[i] = 0
	}
	putNextPtr(a.buf, blockio.InvalidPage)
	a.page = p
	a.off = arenaHeaderSize
	return nil
}

// Put appends a list (already rank-ordered) and returns its reference.
func (a *listArena) Put(items []topk.Item) (listRef, error) {
	if len(items) == 0 {
		return listRef{head: blockio.InvalidPage}, nil
	}
	if a.off+listEntrySize > len(a.buf) {
		if err := a.advance(); err != nil {
			return listRef{}, err
		}
	}
	ref := listRef{head: a.page, off: uint16(a.off), count: uint32(len(items))}
	for _, it := range items {
		if a.off+listEntrySize > len(a.buf) {
			if err := a.advance(); err != nil {
				return listRef{}, err
			}
		}
		binary.LittleEndian.PutUint32(a.buf[a.off:], uint32(it.ID))
		binary.LittleEndian.PutUint64(a.buf[a.off+4:], math.Float64bits(it.Score))
		a.off += listEntrySize
	}
	return ref, nil
}

// Flush writes the trailing partial page; call once after all Puts.
func (a *listArena) Flush() error {
	if a.page == blockio.InvalidPage {
		return nil
	}
	return a.dev.Write(a.page, a.buf)
}

// readList reads up to limit items of a packed list (limit < 0 reads
// all).
func readList(dev blockio.Device, ref listRef, limit int) ([]topk.Item, error) {
	if ref.head == blockio.InvalidPage || ref.count == 0 || limit == 0 {
		return nil, nil
	}
	want := int(ref.count)
	if limit > 0 && limit < want {
		want = limit
	}
	out := make([]topk.Item, 0, want)
	// List reads run once per (query, breakpoint) on the approximate
	// read path; each chained page is decoded in place from a zero-copy
	// view, held only while its entries are consumed.
	v, err := blockio.View(dev, ref.head)
	if err != nil {
		return nil, err
	}
	buf := v.Data()
	off := int(ref.off)
	for len(out) < want {
		if off+listEntrySize > len(buf) {
			next := blockio.PageID(int64(binary.LittleEndian.Uint64(buf[0:])))
			if next == blockio.InvalidPage {
				v.Release()
				return nil, fmt.Errorf("approx: list truncated at %d of %d entries", len(out), want)
			}
			nv, err := blockio.View(dev, next)
			if err != nil {
				v.Release()
				return nil, err
			}
			v.Release()
			v = nv
			buf = v.Data()
			off = arenaHeaderSize
		}
		out = append(out, topk.Item{
			ID:    tsdata.SeriesID(binary.LittleEndian.Uint32(buf[off:])),
			Score: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:])),
		})
		off += listEntrySize
	}
	v.Release()
	return out, nil
}

// prefixAtBreakpoints computes P[i][j] = σ_i(Start, b_j) for every
// object i and breakpoint j in one pass per object, so any snapped
// interval aggregate is P[i][j'] - P[i][j].
//
// This replaces the paper's r-way running-sum sweep with an equivalent
// prefix-matrix construction (see DESIGN.md §5.3); the resulting index
// bytes are identical.
func prefixAtBreakpoints(ds *tsdata.Dataset, times []float64) [][]float64 {
	m := ds.NumSeries()
	p := make([][]float64, m)
	for i := 0; i < m; i++ {
		s := ds.Series(tsdata.SeriesID(i))
		row := make([]float64, len(times))
		for j, b := range times {
			row[j] = s.Range(ds.Start(), b)
		}
		p[i] = row
	}
	return p
}

func validateQuery(t1, t2 float64) error {
	if math.IsNaN(t1) || math.IsNaN(t2) || math.IsInf(t1, 0) || math.IsInf(t2, 0) {
		return fmt.Errorf("approx: %w: non-finite [%g,%g]", trerr.ErrBadInterval, t1, t2)
	}
	if t2 < t1 {
		return fmt.Errorf("approx: %w: inverted [%g,%g]", trerr.ErrBadInterval, t1, t2)
	}
	return nil
}
