package approx

import (
	"fmt"

	"temporalrank/internal/blockio"
	"temporalrank/internal/bptree"
	"temporalrank/internal/breakpoint"
	"temporalrank/internal/exact"
	"temporalrank/internal/trerr"
	"temporalrank/internal/tsdata"
)

// This file is the persistence boundary of the approximate methods.
// The materialized lists and nested trees already live on each index's
// blockio.Device; the State structs capture the in-memory directory on
// top of them — breakpoint tables, tree metas, the dyadic node
// directory, and the §4 amortization counters — so Restore reattaches
// a fully live index (including its rebuild trigger) without
// recomputing breakpoints or lists.

// ListRef is the exported form of a packed top-k list locator.
type ListRef struct {
	Head  blockio.PageID
	Off   uint16
	Count uint32
}

func (r listRef) export() ListRef   { return ListRef{Head: r.head, Off: r.off, Count: r.count} }
func (r ListRef) internal() listRef { return listRef{head: r.Head, off: r.Off, count: r.Count} }

// Query1State is Query1's handle state.
type Query1State struct {
	KMax  int
	Top   bptree.Meta
	Lower []bptree.Meta
}

// State captures the handle state for checkpointing.
func (q *Query1) State() Query1State {
	st := Query1State{KMax: q.kmax, Top: q.ttop.Meta(), Lower: make([]bptree.Meta, len(q.lower))}
	for i, t := range q.lower {
		st.Lower[i] = t.Meta()
	}
	return st
}

// RestoreQuery1 reattaches a Query1 to its restored device image.
func RestoreQuery1(dev blockio.Device, bps *breakpoint.Set, st Query1State) (*Query1, error) {
	if st.KMax < 1 {
		return nil, fmt.Errorf("approx: restore query1: kmax %d: %w", st.KMax, trerr.ErrBadSnapshot)
	}
	if len(st.Lower) != bps.R() {
		return nil, fmt.Errorf("approx: restore query1: %d lower trees for r=%d: %w",
			len(st.Lower), bps.R(), trerr.ErrBadSnapshot)
	}
	q := &Query1{dev: dev, bps: bps, kmax: st.KMax, lower: make([]*bptree.Tree, len(st.Lower))}
	var err error
	if q.ttop, err = bptree.Open(dev, st.Top); err != nil {
		return nil, fmt.Errorf("approx: restore query1 top tree: %v: %w", err, trerr.ErrBadSnapshot)
	}
	for i, m := range st.Lower {
		if q.lower[i], err = bptree.Open(dev, m); err != nil {
			return nil, fmt.Errorf("approx: restore query1 lower tree %d: %v: %w", i, err, trerr.ErrBadSnapshot)
		}
	}
	return q, nil
}

// Query2Node is the exported form of one dyadic-directory node.
type Query2Node struct {
	Lo, Hi      int
	Left, Right int
	List        ListRef
}

// Query2State is Query2's handle state: the full in-memory node
// directory (the lists it references stay on the device).
type Query2State struct {
	KMax  int
	Root  int
	Nodes []Query2Node
}

// State captures the handle state for checkpointing.
func (q *Query2) State() Query2State {
	st := Query2State{KMax: q.kmax, Root: q.root, Nodes: make([]Query2Node, len(q.nodes))}
	for i, n := range q.nodes {
		st.Nodes[i] = Query2Node{Lo: n.lo, Hi: n.hi, Left: n.left, Right: n.right, List: n.list.export()}
	}
	return st
}

// RestoreQuery2 reattaches a Query2 to its restored device image,
// re-validating the directory's structural invariants so a corrupt
// snapshot cannot smuggle in out-of-range node references.
func RestoreQuery2(dev blockio.Device, bps *breakpoint.Set, st Query2State) (*Query2, error) {
	if st.KMax < 1 {
		return nil, fmt.Errorf("approx: restore query2: kmax %d: %w", st.KMax, trerr.ErrBadSnapshot)
	}
	n := len(st.Nodes)
	if n == 0 || st.Root < 0 || st.Root >= n {
		return nil, fmt.Errorf("approx: restore query2: root %d of %d nodes: %w", st.Root, n, trerr.ErrBadSnapshot)
	}
	q := &Query2{dev: dev, bps: bps, kmax: st.KMax, root: st.Root, nodes: make([]dyadicNode, n)}
	for i, node := range st.Nodes {
		if node.Lo < 0 || node.Hi <= node.Lo || node.Hi >= bps.R() {
			return nil, fmt.Errorf("approx: restore query2: node %d spans gaps [%d,%d) of r=%d: %w",
				i, node.Lo, node.Hi, bps.R(), trerr.ErrBadSnapshot)
		}
		if node.Left >= n || node.Right >= n || (node.Left < 0) != (node.Right < 0) {
			return nil, fmt.Errorf("approx: restore query2: node %d children (%d,%d): %w",
				i, node.Left, node.Right, trerr.ErrBadSnapshot)
		}
		q.nodes[i] = dyadicNode{lo: node.Lo, hi: node.Hi, left: node.Left, right: node.Right, list: node.List.internal()}
	}
	return q, nil
}

// BaseState carries the §4 amortized-update accounting shared by every
// approximate method.
type BaseState struct {
	BuildM       float64
	PendingMass  float64
	PendingSegs  int
	RebuildCount int
}

func (a *appxBase) baseState() BaseState {
	return BaseState{
		BuildM:       a.buildM,
		PendingMass:  a.pendingMass,
		PendingSegs:  a.pendingSegs,
		RebuildCount: a.rebuildCount,
	}
}

// restoreBase rebuilds the appxBase around a restored dataset: the
// frontier is rederived from the series (dataset and index frontiers
// advance in lockstep through the locked append path) and the
// amortization counters come from the checkpoint, so the next rebuild
// triggers exactly where it would have without the restart.
func restoreBase(name string, dev blockio.Device, ds *tsdata.Dataset, bps *breakpoint.Set, kmax int, kind Kind, st BaseState) appxBase {
	a := newAppxBase(name, dev, ds, bps, kmax, kind)
	a.buildM = st.BuildM
	a.pendingMass = st.PendingMass
	a.pendingSegs = st.PendingSegs
	a.rebuildCount = st.RebuildCount
	return a
}

// restoreBreaks validates and heap-allocates a checkpointed breakpoint
// table.
func restoreBreaks(st breakpoint.Set) (*breakpoint.Set, error) {
	bps := st
	if err := bps.Validate(); err != nil {
		return nil, fmt.Errorf("approx: restore breakpoints: %v: %w", err, trerr.ErrBadSnapshot)
	}
	return &bps, nil
}

// Appx1State is Appx1's full handle state.
type Appx1State struct {
	Base   BaseState
	Kind   Kind
	KMax   int
	Breaks breakpoint.Set
	Q      Query1State
}

// State captures the handle state for checkpointing.
func (a *Appx1) State() Appx1State {
	return Appx1State{Base: a.baseState(), Kind: a.kind, KMax: a.kmax, Breaks: *a.bps, Q: a.q.State()}
}

// RestoreAppx1 reattaches an Appx1 to its restored device image.
func RestoreAppx1(dev blockio.Device, ds *tsdata.Dataset, st Appx1State) (*Appx1, error) {
	bps, err := restoreBreaks(st.Breaks)
	if err != nil {
		return nil, err
	}
	q, err := RestoreQuery1(dev, bps, st.Q)
	if err != nil {
		return nil, err
	}
	a := &Appx1{appxBase: restoreBase(appxName("APPX1", st.Kind), dev, ds, bps, st.KMax, st.Kind, st.Base), q: q}
	a.initRebuild()
	return a, nil
}

// Appx2State is Appx2's full handle state.
type Appx2State struct {
	Base   BaseState
	Kind   Kind
	KMax   int
	Breaks breakpoint.Set
	Q      Query2State
}

// State captures the handle state for checkpointing.
func (a *Appx2) State() Appx2State {
	return Appx2State{Base: a.baseState(), Kind: a.kind, KMax: a.kmax, Breaks: *a.bps, Q: a.q.State()}
}

// RestoreAppx2 reattaches an Appx2 to its restored device image.
func RestoreAppx2(dev blockio.Device, ds *tsdata.Dataset, st Appx2State) (*Appx2, error) {
	bps, err := restoreBreaks(st.Breaks)
	if err != nil {
		return nil, err
	}
	q, err := RestoreQuery2(dev, bps, st.Q)
	if err != nil {
		return nil, err
	}
	a := &Appx2{appxBase: restoreBase(appxName("APPX2", st.Kind), dev, ds, bps, st.KMax, st.Kind, st.Base), q: q}
	a.initRebuild()
	return a, nil
}

// Appx2PlusState is Appx2Plus's full handle state: the dyadic
// directory plus the rescoring forest, which share one device.
type Appx2PlusState struct {
	Base         BaseState
	Kind         Kind
	KMax         int
	BuildWorkers int
	Breaks       breakpoint.Set
	Q            Query2State
	E2           exact.Exact2State
}

// State captures the handle state for checkpointing.
func (a *Appx2Plus) State() Appx2PlusState {
	return Appx2PlusState{
		Base:         a.baseState(),
		Kind:         a.kind,
		KMax:         a.kmax,
		BuildWorkers: a.buildWorkers,
		Breaks:       *a.bps,
		Q:            a.q.State(),
		E2:           a.e2.State(),
	}
}

// RestoreAppx2Plus reattaches an Appx2Plus to its restored device
// image.
func RestoreAppx2Plus(dev blockio.Device, ds *tsdata.Dataset, st Appx2PlusState) (*Appx2Plus, error) {
	bps, err := restoreBreaks(st.Breaks)
	if err != nil {
		return nil, err
	}
	q, err := RestoreQuery2(dev, bps, st.Q)
	if err != nil {
		return nil, err
	}
	e2, err := exact.RestoreExact2(dev, ds, st.E2)
	if err != nil {
		return nil, err
	}
	a := &Appx2Plus{
		appxBase:     restoreBase(appxName("APPX2+", st.Kind), dev, ds, bps, st.KMax, st.Kind, st.Base),
		q:            q,
		e2:           e2,
		buildWorkers: st.BuildWorkers,
	}
	a.initRebuild()
	return a, nil
}
