package approx

import (
	"encoding/binary"
	"errors"
	"fmt"

	"temporalrank/internal/blockio"
	"temporalrank/internal/bptree"
	"temporalrank/internal/breakpoint"
	"temporalrank/internal/topk"
	"temporalrank/internal/trerr"
	"temporalrank/internal/tsdata"
)

// lowerValueSize holds a packed listRef (padded to 16 bytes).
const lowerValueSize = 16

// topValueSize: index of the lower tree for a left breakpoint.
const topValueSize = 4

// Query1 is the nested-B+-tree structure: a top-level tree keyed by the
// left breakpoint B(t1) whose entries point to per-breakpoint lower
// trees keyed by the right breakpoint B(t2); each lower-tree entry
// references the materialized top-kmax list of the snapped interval.
// (ε,1)-approximate for both aggregate scores and top-k sets.
type Query1 struct {
	dev   blockio.Device
	bps   *breakpoint.Set
	kmax  int
	ttop  *bptree.Tree
	lower []*bptree.Tree
}

// BuildQuery1 materializes all r(r+1)/2 snapped intervals.
func BuildQuery1(dev blockio.Device, ds *tsdata.Dataset, bps *breakpoint.Set, kmax int) (*Query1, error) {
	if kmax < 1 {
		return nil, fmt.Errorf("approx: kmax must be >= 1, got %d", kmax)
	}
	if err := bps.Validate(); err != nil {
		return nil, err
	}
	r := bps.R()
	prefix := prefixAtBreakpoints(ds, bps.Times)
	m := ds.NumSeries()
	arena, err := newListArena(dev)
	if err != nil {
		return nil, err
	}

	q := &Query1{dev: dev, bps: bps, kmax: kmax, lower: make([]*bptree.Tree, r)}
	topEntries := make([]bptree.Entry, r)
	for j := 0; j < r; j++ {
		lowerEntries := make([]bptree.Entry, 0, r-j)
		for jp := j; jp < r; jp++ {
			ref := listRef{head: blockio.InvalidPage}
			if jp > j {
				c := topk.NewCollector(kmax)
				for i := 0; i < m; i++ {
					c.Add(tsdata.SeriesID(i), prefix[i][jp]-prefix[i][j])
				}
				ref, err = arena.Put(c.Results())
				if err != nil {
					return nil, err
				}
			}
			v := make([]byte, lowerValueSize)
			ref.encode(v)
			lowerEntries = append(lowerEntries, bptree.Entry{Key: bps.Times[jp], Value: v})
		}
		lt, err := bptree.BulkLoad(dev, lowerValueSize, lowerEntries)
		if err != nil {
			return nil, fmt.Errorf("approx: query1 lower tree %d: %w", j, err)
		}
		q.lower[j] = lt
		tv := make([]byte, topValueSize)
		binary.LittleEndian.PutUint32(tv, uint32(j))
		topEntries[j] = bptree.Entry{Key: bps.Times[j], Value: tv}
	}
	if err := arena.Flush(); err != nil {
		return nil, err
	}
	tt, err := bptree.BulkLoad(dev, topValueSize, topEntries)
	if err != nil {
		return nil, fmt.Errorf("approx: query1 top tree: %w", err)
	}
	q.ttop = tt
	return q, nil
}

// KMax returns the largest supported k.
func (q *Query1) KMax() int { return q.kmax }

// Breakpoints returns the underlying breakpoint set.
func (q *Query1) Breakpoints() *breakpoint.Set { return q.bps }

// setDevice re-seats the structure (both tree levels and the packed
// lists) onto a device holding the same page image — the seal path.
func (q *Query1) setDevice(dev blockio.Device) {
	q.dev = dev
	q.ttop.SetDevice(dev)
	for _, t := range q.lower {
		t.SetDevice(dev)
	}
}

// TopK answers the approximate query by snapping [t1,t2] to
// [B(t1),B(t2)] through the two tree levels and reading the
// materialized list. k must be <= kmax.
func (q *Query1) TopK(k int, t1, t2 float64) ([]topk.Item, error) {
	if err := validateQuery(t1, t2); err != nil {
		return nil, err
	}
	if k > q.kmax {
		return nil, fmt.Errorf("approx: %w: k=%d kmax=%d", trerr.ErrKTooLarge, k, q.kmax)
	}
	// Snap through the top-level tree: first breakpoint >= t1 (clamped
	// to the last breakpoint when t1 exceeds the domain).
	cur, err := q.ttop.SearchCeil(t1)
	if errors.Is(err, bptree.ErrNotFound) {
		return nil, nil // snapped interval is empty: no scored objects
	}
	if err != nil {
		return nil, err
	}
	j := int(binary.LittleEndian.Uint32(cur.Value()))
	cur.Close()
	// Snap t2 through the lower tree of b_j.
	lc, err := q.lower[j].SearchCeil(t2)
	if errors.Is(err, bptree.ErrNotFound) {
		// B(t2) beyond the last breakpoint: snap down to the last one
		// (the paper assumes [t1,t2] ⊆ [0,T]; we clamp for robustness).
		_, v, lerr := q.lower[j].Last()
		if lerr != nil {
			return nil, lerr
		}
		return readList(q.dev, decodeListRef(v), k)
	}
	if err != nil {
		return nil, err
	}
	ref := decodeListRef(lc.Value())
	lc.Close()
	return readList(q.dev, ref, k)
}
