package approx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"temporalrank/internal/blockio"
	"temporalrank/internal/breakpoint"
	"temporalrank/internal/topk"
	"temporalrank/internal/tsdata"
)

// This file property-tests the paper's formal guarantees with
// testing/quick over random datasets, ε values, and query intervals.

// TestDefinition2TransferProperty checks Lemma 6 end to end for APPX1:
// the j-th approximate score is an (ε,1)-approximation of BOTH its own
// object's exact score and the exact j-th ranked score, for random
// data, random ε, and random queries.
func TestDefinition2TransferProperty(t *testing.T) {
	f := func(seed int64, rawEps, c1, c2 float64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(seed, 5+rng.Intn(20), 3+rng.Intn(15), seed%3 == 0)
		eps := 0.005 + math.Abs(math.Mod(rawEps, 0.1))
		bps, err := breakpoint.Build2(ds, eps)
		if err != nil {
			return false
		}
		const kmax = 8
		q, err := BuildQuery1(blockio.NewMemDevice(512), ds, bps, kmax)
		if err != nil {
			return false
		}
		span := ds.Span()
		t1 := ds.Start() + span*frac(c1)
		t2 := t1 + (ds.End()-t1)*frac(c2)
		if t2 <= t1 {
			return true
		}
		k := 1 + rng.Intn(kmax)
		got, err := q.TopK(k, t1, t2)
		if err != nil {
			return false
		}
		ref := topk.NewCollector(k)
		for _, s := range ds.AllSeries() {
			ref.Add(s.ID, s.Range(t1, t2))
		}
		want := ref.Results()
		bound := eps*ds.M()*(1+1e-9) + 1e-9
		for j := range got {
			if j >= len(want) {
				break
			}
			// (ε,1) against the exact j-th ranked score.
			if math.Abs(got[j].Score-want[j].Score) > bound {
				return false
			}
			// (ε,1) against the returned object's own exact score.
			own := ds.Series(got[j].ID).Range(t1, t2)
			if math.Abs(got[j].Score-own) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLemma2SnapErrorProperty: for any object and any query, the
// snapped-interval aggregate differs from the true aggregate by at
// most 2εM (εM per endpoint; Lemma 2 states εM per endpoint move).
func TestLemma2SnapErrorProperty(t *testing.T) {
	f := func(seed int64, rawEps, c1, c2 float64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(seed+1000, 3+rng.Intn(15), 2+rng.Intn(12), false)
		eps := 0.01 + math.Abs(math.Mod(rawEps, 0.2))
		bps, err := breakpoint.Build2(ds, eps)
		if err != nil {
			return false
		}
		span := ds.Span()
		t1 := ds.Start() + span*frac(c1)*0.9
		t2 := t1 + (ds.End()-t1)*frac(c2)
		if t2 <= t1 {
			return true
		}
		b1, _ := bps.Snap(t1)
		b2, _ := bps.Snap(t2)
		bound := 2*eps*ds.M()*(1+1e-9) + 1e-9
		for _, s := range ds.AllSeries() {
			exact := s.Range(t1, t2)
			snapped := s.Range(b1, b2)
			if math.Abs(exact-snapped) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuery2LowerBoundProperty: APPX2's returned score never exceeds
// σ(B(t1),B(t2)) for the same object (each dyadic piece contributes its
// true sub-aggregate or nothing), and hence never exceeds σ + εM... the
// upper half of the (ε, 2log r) guarantee.
func TestQuery2LowerBoundProperty(t *testing.T) {
	f := func(seed int64, c1, c2 float64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(seed+2000, 5+rng.Intn(15), 3+rng.Intn(10), false)
		bps, err := breakpoint.Build2(ds, 0.02)
		if err != nil {
			return false
		}
		q, err := BuildQuery2(blockio.NewMemDevice(512), ds, bps, 6)
		if err != nil {
			return false
		}
		span := ds.Span()
		t1 := ds.Start() + span*frac(c1)*0.9
		t2 := t1 + (ds.End()-t1)*frac(c2)
		if t2 <= t1 {
			return true
		}
		b1, _ := bps.Snap(t1)
		b2, _ := bps.Snap(t2)
		cands, err := q.Candidates(6, t1, t2)
		if err != nil {
			return false
		}
		for id, score := range cands {
			snapped := ds.Series(id).Range(b1, b2)
			if score > snapped*(1+1e-9)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func frac(x float64) float64 {
	x = math.Abs(math.Mod(x, 1))
	if math.IsNaN(x) {
		return 0.3
	}
	return x
}

// TestConcurrentQueries: read-only queries on a shared index must be
// safe from multiple goroutines (devices are mutex-guarded; query
// state is per-call).
func TestConcurrentQueries(t *testing.T) {
	ds := randomDataset(55, 30, 20, false)
	idx, err := NewAppx1(blockio.NewMemDevice(1024), ds, KindB2, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	e3ref := func(t1, t2 float64) []topk.Item {
		c := topk.NewCollector(5)
		for _, s := range ds.AllSeries() {
			c.Add(s.ID, s.Range(t1, t2))
		}
		return c.Results()
	}
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				t1 := ds.Start() + rng.Float64()*ds.Span()*0.5
				t2 := t1 + rng.Float64()*(ds.End()-t1)
				got, err := idx.TopK(5, t1, t2)
				if err != nil {
					errs <- err
					return
				}
				_ = got
				_ = e3ref
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var _ = tsdata.SeriesID(0)
