package approx

import (
	"fmt"

	"temporalrank/internal/blockio"
	"temporalrank/internal/breakpoint"
	"temporalrank/internal/topk"
	"temporalrank/internal/trerr"
	"temporalrank/internal/tsdata"
)

// Query2 is the dyadic-interval structure: a balanced binary tree over
// the r-1 elementary breakpoint gaps; each node materializes the
// top-kmax list of its spanned interval [b_lo, b_hi]. Any snapped query
// interval decomposes into at most 2·log r node intervals whose lists
// are merged by summing scores per object — the (ε, 2·log r)-
// approximation of Lemma 4/5, with Θ(r·kmax/B) space.
type Query2 struct {
	dev  blockio.Device
	bps  *breakpoint.Set
	kmax int

	// Node directory (in memory, O(r); the lists live on the device —
	// the paper likewise keeps its binary tree over B resident while
	// charging IO for the top-k lists).
	nodes []dyadicNode
	root  int
}

type dyadicNode struct {
	lo, hi      int // gap range [lo, hi): covers time [b_lo, b_hi]
	left, right int // children node indices, -1 for leaves
	list        listRef
}

// BuildQuery2 materializes the O(r) dyadic interval lists.
func BuildQuery2(dev blockio.Device, ds *tsdata.Dataset, bps *breakpoint.Set, kmax int) (*Query2, error) {
	if kmax < 1 {
		return nil, fmt.Errorf("approx: kmax must be >= 1, got %d", kmax)
	}
	if err := bps.Validate(); err != nil {
		return nil, err
	}
	prefix := prefixAtBreakpoints(ds, bps.Times)
	m := ds.NumSeries()
	arena, err := newListArena(dev)
	if err != nil {
		return nil, err
	}
	q := &Query2{dev: dev, bps: bps, kmax: kmax}

	var build func(lo, hi int) (int, error)
	build = func(lo, hi int) (int, error) {
		idx := len(q.nodes)
		q.nodes = append(q.nodes, dyadicNode{lo: lo, hi: hi, left: -1, right: -1})
		// Materialize this node's top-kmax list over [b_lo, b_hi].
		c := topk.NewCollector(kmax)
		for i := 0; i < m; i++ {
			c.Add(tsdata.SeriesID(i), prefix[i][hi]-prefix[i][lo])
		}
		ref, err := arena.Put(c.Results())
		if err != nil {
			return 0, err
		}
		q.nodes[idx].list = ref
		if hi-lo > 1 {
			mid := (lo + hi) / 2
			l, err := build(lo, mid)
			if err != nil {
				return 0, err
			}
			rr, err := build(mid, hi)
			if err != nil {
				return 0, err
			}
			q.nodes[idx].left = l
			q.nodes[idx].right = rr
		}
		return idx, nil
	}
	root, err := build(0, bps.R()-1)
	if err != nil {
		return nil, err
	}
	if err := arena.Flush(); err != nil {
		return nil, err
	}
	q.root = root
	return q, nil
}

// KMax returns the largest supported k.
func (q *Query2) KMax() int { return q.kmax }

// Breakpoints returns the underlying breakpoint set.
func (q *Query2) Breakpoints() *breakpoint.Set { return q.bps }

// setDevice re-seats the packed lists onto a device holding the same
// page image — the seal path (the node directory is in memory and
// carries over unchanged).
func (q *Query2) setDevice(dev blockio.Device) { q.dev = dev }

// NumNodes returns the number of dyadic intervals (diagnostics; < 2r).
func (q *Query2) NumNodes() int { return len(q.nodes) }

// Decompose returns the canonical node cover of gap range [a, b): at
// most 2·log r nodes (exported for the candidate-set property tests).
func (q *Query2) Decompose(a, b int) []int {
	var out []int
	var rec func(n int)
	rec = func(n int) {
		node := q.nodes[n]
		if a <= node.lo && node.hi <= b {
			out = append(out, n)
			return
		}
		if node.left < 0 {
			return
		}
		mid := (node.lo + node.hi) / 2
		if a < mid {
			rec(node.left)
		}
		if b > mid {
			rec(node.right)
		}
	}
	if a < b {
		rec(q.root)
	}
	return out
}

// TopK answers the approximate query: snap, decompose into dyadic
// nodes, merge their top-kmax lists by summing per-object scores, and
// return the k best of the candidate set K (|K| <= 2k·log r).
func (q *Query2) TopK(k int, t1, t2 float64) ([]topk.Item, error) {
	cands, err := q.Candidates(k, t1, t2)
	if err != nil {
		return nil, err
	}
	c := topk.NewCollector(k)
	for id, score := range cands {
		c.Add(id, score)
	}
	return c.Results(), nil
}

// Candidates returns the merged candidate set K for a query: object ->
// summed score over the covering dyadic intervals. APPX2 ranks K by
// these sums; APPX2+ rescores K exactly.
func (q *Query2) Candidates(k int, t1, t2 float64) (map[tsdata.SeriesID]float64, error) {
	if err := validateQuery(t1, t2); err != nil {
		return nil, err
	}
	if k > q.kmax {
		return nil, fmt.Errorf("approx: %w: k=%d kmax=%d", trerr.ErrKTooLarge, k, q.kmax)
	}
	_, a := q.bps.Snap(t1)
	_, b := q.bps.Snap(t2)
	cands := make(map[tsdata.SeriesID]float64)
	if a >= b {
		return cands, nil
	}
	for _, n := range q.Decompose(a, b) {
		items, err := readList(q.dev, q.nodes[n].list, k)
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			cands[it.ID] += it.Score
		}
	}
	return cands, nil
}
