package approx

import (
	"fmt"

	"temporalrank/internal/blockio"
	"temporalrank/internal/breakpoint"
	"temporalrank/internal/exact"
	"temporalrank/internal/topk"
	"temporalrank/internal/trerr"
	"temporalrank/internal/tsdata"
)

// Kind selects which breakpoint construction an APPX method uses.
type Kind int

const (
	// KindB1 uses BREAKPOINTS1 (the "-B" basic variants).
	KindB1 Kind = iota
	// KindB2 uses BREAKPOINTS2 (the improved variants).
	KindB2
)

// Index is an approximate method: everything an exact.Method does,
// plus approximation metadata.
type Index interface {
	exact.Method
	// Epsilon returns the ε the index was built with.
	Epsilon() float64
	// KMax returns the largest supported query k.
	KMax() int
}

// appxBase carries the pieces shared by all APPX variants, including
// the §4 amortized update machinery: appended segments are tracked and
// the whole structure is rebuilt when the dataset mass M doubles.
type appxBase struct {
	name string
	dev  blockio.Device
	ds   *tsdata.Dataset
	bps  *breakpoint.Set
	kmax int
	kind Kind

	buildM       float64
	pendingMass  float64
	pendingSegs  int
	rebuildCount int
	frontier     []vertex
	rebuild      func() error
	// sealFn, when set by a variant's Seal, is re-applied after every
	// amortized rebuild: the rebuild swaps in a fresh build device, so
	// a sealed index reseals each generation to stay an arena.
	sealFn func() error
}

type vertex struct{ t, v float64 }

func newAppxBase(name string, dev blockio.Device, ds *tsdata.Dataset, bps *breakpoint.Set, kmax int, kind Kind) appxBase {
	fr := make([]vertex, ds.NumSeries())
	for i, s := range ds.AllSeries() {
		fr[i] = vertex{t: s.End(), v: s.VertexValue(s.NumSegments())}
	}
	return appxBase{
		name: name, dev: dev, ds: ds, bps: bps, kmax: kmax, kind: kind,
		buildM: ds.M(), frontier: fr,
	}
}

func (a *appxBase) Name() string            { return a.name }
func (a *appxBase) Device() blockio.Device  { return a.dev }
func (a *appxBase) IndexPages() int         { return a.dev.NumPages() }
func (a *appxBase) Epsilon() float64        { return a.bps.Epsilon }
func (a *appxBase) KMax() int               { return a.kmax }
func (a *appxBase) RebuildCount() int       { return a.rebuildCount }
func (a *appxBase) Breaks() *breakpoint.Set { return a.bps }

// Append implements the amortized §4 update scheme: the new segment is
// applied to the backing dataset; when the accumulated mass doubles M,
// the breakpoints and query structures are rebuilt with the original τ
// = εM threshold semantics (the rebuild recomputes everything with the
// current M). Until a rebuild the index answers from the structures
// built at buildM — the (ε,α) guarantee degrades to at most (2ε,α)
// since M grows by at most 2× between rebuilds.
func (a *appxBase) Append(id tsdata.SeriesID, t, v float64) error {
	return a.append(id, t, v, true)
}

// AppendApplied is Append for a segment the caller has already applied
// to the shared dataset — the multi-index ingest path, where several
// indexes over one dataset each track their own frontier but the
// dataset mutation must happen exactly once. Frontier and mass
// accounting, and the amortized rebuild, run exactly as in Append; only
// the dataset write is skipped.
func (a *appxBase) AppendApplied(id tsdata.SeriesID, t, v float64) error {
	return a.append(id, t, v, false)
}

func (a *appxBase) append(id tsdata.SeriesID, t, v float64, applyDS bool) error {
	if id < 0 || int(id) >= a.ds.NumSeries() {
		return fmt.Errorf("%s: %w: %d", a.name, trerr.ErrUnknownSeries, id)
	}
	fr := a.frontier[id]
	seg := tsdata.Segment{T1: fr.t, T2: t, V1: fr.v, V2: v}
	if err := seg.Validate(); err != nil {
		return err
	}
	if applyDS {
		if err := a.ds.Series(id).Append(t, v); err != nil {
			return err
		}
	}
	a.frontier[id] = vertex{t: t, v: v}
	a.pendingMass += seg.AbsIntegral()
	a.pendingSegs++
	if a.buildM+a.pendingMass >= 2*a.buildM {
		a.ds.Refresh()
		if err := a.rebuild(); err != nil {
			return err
		}
		a.rebuildCount++
		a.buildM = a.ds.M()
		a.pendingMass = 0
		a.pendingSegs = 0
		if a.sealFn != nil {
			if err := a.sealFn(); err != nil {
				return err
			}
		}
	}
	return nil
}

// sealDevice swaps a.dev for a sealed arena holding the same page
// image and closes the old device, returning the arena so the variant
// can re-seat its query structures.
func (a *appxBase) sealDevice() (*blockio.Arena, error) {
	ar, err := blockio.Seal(a.dev)
	if err != nil {
		return nil, err
	}
	old := a.dev
	a.dev = ar
	if err := old.Close(); err != nil {
		return nil, err
	}
	return ar, nil
}

// buildBreaks constructs the configured breakpoint flavour.
func buildBreaks(ds *tsdata.Dataset, kind Kind, eps float64) (*breakpoint.Set, error) {
	if kind == KindB1 {
		return breakpoint.Build1(ds, eps)
	}
	return breakpoint.Build2(ds, eps)
}

// --- APPX1 / APPX1-B ---------------------------------------------------

// Appx1 combines breakpoints with Query1: (ε,1)-approximate.
type Appx1 struct {
	appxBase
	q *Query1
}

// NewAppx1 builds APPX1 (kind=KindB2) or APPX1-B (kind=KindB1) with
// error parameter eps and maximum query depth kmax.
func NewAppx1(dev blockio.Device, ds *tsdata.Dataset, kind Kind, eps float64, kmax int) (*Appx1, error) {
	bps, err := buildBreaks(ds, kind, eps)
	if err != nil {
		return nil, err
	}
	return NewAppx1WithBreaks(dev, ds, kind, bps, kmax)
}

// NewAppx1WithBreaks builds APPX1 over a precomputed breakpoint set
// (used by the harness to share breakpoints across methods).
func NewAppx1WithBreaks(dev blockio.Device, ds *tsdata.Dataset, kind Kind, bps *breakpoint.Set, kmax int) (*Appx1, error) {
	q, err := BuildQuery1(dev, ds, bps, kmax)
	if err != nil {
		return nil, err
	}
	a := &Appx1{appxBase: newAppxBase(appxName("APPX1", kind), dev, ds, bps, kmax, kind), q: q}
	a.initRebuild()
	return a, nil
}

// appxName maps a method family to its reported name for the kind.
func appxName(base string, kind Kind) string {
	if kind == KindB1 {
		return base + "-B"
	}
	return base
}

// initRebuild installs the §4 amortized-rebuild closure. Shared by the
// build and restore constructors so a restored index degrades and
// rebuilds exactly like the original.
func (a *Appx1) initRebuild() {
	a.rebuild = func() error {
		bps, err := buildBreaks(a.ds, a.kind, a.bps.Epsilon)
		if err != nil {
			return err
		}
		dev := blockio.NewMemDevice(a.dev.BlockSize())
		q, err := BuildQuery1(dev, a.ds, bps, a.kmax)
		if err != nil {
			return err
		}
		a.bps, a.dev, a.q = bps, dev, q
		return nil
	}
}

// Seal implements exact.Sealer. The sealed state survives amortized
// rebuilds: each rebuild's fresh device is resealed before the append
// that triggered it returns.
func (a *Appx1) Seal() error {
	ar, err := a.sealDevice()
	if err != nil {
		return err
	}
	a.q.setDevice(ar)
	a.sealFn = a.Seal
	return nil
}

// TopK implements exact.Method.
func (a *Appx1) TopK(k int, t1, t2 float64) ([]topk.Item, error) {
	return a.q.TopK(k, t1, t2)
}

// Score implements exact.Method: the (ε,1) estimate if the object is
// in the snapped interval's top-kmax, else trerr.ErrNotMaterialized —
// the structure stores no estimate for objects outside the
// materialized lists, and a silent 0.0 would be indistinguishable from
// a true zero aggregate.
func (a *Appx1) Score(id tsdata.SeriesID, t1, t2 float64) (float64, error) {
	if id < 0 || int(id) >= a.ds.NumSeries() {
		return 0, fmt.Errorf("%s: %w: %d", a.name, trerr.ErrUnknownSeries, id)
	}
	items, err := a.q.TopK(a.kmax, t1, t2)
	if err != nil {
		return 0, err
	}
	for _, it := range items {
		if it.ID == id {
			return it.Score, nil
		}
	}
	return 0, fmt.Errorf("%s: %w: series %d outside the top-%d lists", a.name, trerr.ErrNotMaterialized, id, a.kmax)
}

// --- APPX2 / APPX2-B ---------------------------------------------------

// Appx2 combines breakpoints with Query2: (ε,2·log r)-approximate.
type Appx2 struct {
	appxBase
	q *Query2
}

// NewAppx2 builds APPX2 (kind=KindB2) or APPX2-B (kind=KindB1).
func NewAppx2(dev blockio.Device, ds *tsdata.Dataset, kind Kind, eps float64, kmax int) (*Appx2, error) {
	bps, err := buildBreaks(ds, kind, eps)
	if err != nil {
		return nil, err
	}
	return NewAppx2WithBreaks(dev, ds, kind, bps, kmax)
}

// NewAppx2WithBreaks builds APPX2 over a precomputed breakpoint set.
func NewAppx2WithBreaks(dev blockio.Device, ds *tsdata.Dataset, kind Kind, bps *breakpoint.Set, kmax int) (*Appx2, error) {
	q, err := BuildQuery2(dev, ds, bps, kmax)
	if err != nil {
		return nil, err
	}
	a := &Appx2{appxBase: newAppxBase(appxName("APPX2", kind), dev, ds, bps, kmax, kind), q: q}
	a.initRebuild()
	return a, nil
}

// initRebuild installs the amortized-rebuild closure (see
// Appx1.initRebuild).
func (a *Appx2) initRebuild() {
	a.rebuild = func() error {
		bps, err := buildBreaks(a.ds, a.kind, a.bps.Epsilon)
		if err != nil {
			return err
		}
		dev := blockio.NewMemDevice(a.dev.BlockSize())
		q, err := BuildQuery2(dev, a.ds, bps, a.kmax)
		if err != nil {
			return err
		}
		a.bps, a.dev, a.q = bps, dev, q
		return nil
	}
}

// Seal implements exact.Sealer (see Appx1.Seal).
func (a *Appx2) Seal() error {
	ar, err := a.sealDevice()
	if err != nil {
		return err
	}
	a.q.setDevice(ar)
	a.sealFn = a.Seal
	return nil
}

// TopK implements exact.Method.
func (a *Appx2) TopK(k int, t1, t2 float64) ([]topk.Item, error) {
	return a.q.TopK(k, t1, t2)
}

// Score implements exact.Method (same convention as Appx1.Score:
// trerr.ErrNotMaterialized when the object is outside the candidate
// set, rather than a silent 0.0).
func (a *Appx2) Score(id tsdata.SeriesID, t1, t2 float64) (float64, error) {
	if id < 0 || int(id) >= a.ds.NumSeries() {
		return 0, fmt.Errorf("%s: %w: %d", a.name, trerr.ErrUnknownSeries, id)
	}
	cands, err := a.q.Candidates(a.kmax, t1, t2)
	if err != nil {
		return 0, err
	}
	s, ok := cands[id]
	if !ok {
		return 0, fmt.Errorf("%s: %w: series %d outside the candidate set", a.name, trerr.ErrNotMaterialized, id)
	}
	return s, nil
}

// Query2Index exposes the underlying dyadic structure (for the
// candidate-set property tests and the harness).
func (a *Appx2) Query2Index() *Query2 { return a.q }

// --- APPX2+ -------------------------------------------------------------

// Appx2Plus is APPX2 with exact rescoring: the dyadic candidate set K
// is re-evaluated through an EXACT2 forest (built on the same device,
// which is why its index size is O(N/B) like the exact methods), then
// the k best exact scores win. Empirically near-exact at APPX2 query
// cost plus |K| tree lookups.
type Appx2Plus struct {
	appxBase
	q            *Query2
	e2           *exact.Exact2
	buildWorkers int
}

// NewAppx2Plus builds APPX2+ (the paper always pairs it with
// BREAKPOINTS2, but both kinds are supported).
func NewAppx2Plus(dev blockio.Device, ds *tsdata.Dataset, kind Kind, eps float64, kmax int) (*Appx2Plus, error) {
	bps, err := buildBreaks(ds, kind, eps)
	if err != nil {
		return nil, err
	}
	return NewAppx2PlusWithBreaks(dev, ds, kind, bps, kmax)
}

// NewAppx2PlusWithBreaks builds APPX2+ over a precomputed breakpoint
// set.
func NewAppx2PlusWithBreaks(dev blockio.Device, ds *tsdata.Dataset, kind Kind, bps *breakpoint.Set, kmax int) (*Appx2Plus, error) {
	return NewAppx2PlusWithBreaksParallel(dev, ds, kind, bps, kmax, 1)
}

// NewAppx2PlusWithBreaksParallel is NewAppx2PlusWithBreaks with the
// rescoring forest's per-series construction spread over buildWorkers
// goroutines (also on the amortized rebuilds triggered by Append).
func NewAppx2PlusWithBreaksParallel(dev blockio.Device, ds *tsdata.Dataset, kind Kind, bps *breakpoint.Set, kmax, buildWorkers int) (*Appx2Plus, error) {
	q, err := BuildQuery2(dev, ds, bps, kmax)
	if err != nil {
		return nil, err
	}
	e2, err := exact.BuildExact2Parallel(dev, ds, buildWorkers)
	if err != nil {
		return nil, err
	}
	a := &Appx2Plus{
		appxBase:     newAppxBase(appxName("APPX2+", kind), dev, ds, bps, kmax, kind),
		q:            q,
		e2:           e2,
		buildWorkers: buildWorkers,
	}
	a.initRebuild()
	return a, nil
}

// initRebuild installs the amortized-rebuild closure (see
// Appx1.initRebuild); the rescoring forest rebuilds with the
// configured worker count.
func (a *Appx2Plus) initRebuild() {
	a.rebuild = func() error {
		bps, err := buildBreaks(a.ds, a.kind, a.bps.Epsilon)
		if err != nil {
			return err
		}
		dev := blockio.NewMemDevice(a.dev.BlockSize())
		q, err := BuildQuery2(dev, a.ds, bps, a.kmax)
		if err != nil {
			return err
		}
		e2, err := exact.BuildExact2Parallel(dev, a.ds, a.buildWorkers)
		if err != nil {
			return err
		}
		a.bps, a.dev, a.q, a.e2 = bps, dev, q, e2
		return nil
	}
}

// Seal implements exact.Sealer. The dyadic lists and the EXACT2
// rescoring forest share one device, so one arena serves both; the
// forest is re-seated via Exact2.SetDevice. Incremental appends
// between rebuilds fail once sealed (the forest inserts), so a sealed
// APPX2+ belongs behind the memtable like the exact write-path
// methods.
func (a *Appx2Plus) Seal() error {
	ar, err := a.sealDevice()
	if err != nil {
		return err
	}
	a.q.setDevice(ar)
	a.e2.SetDevice(ar)
	a.sealFn = a.Seal
	return nil
}

// TopK implements exact.Method: dyadic candidates, exact rescoring.
func (a *Appx2Plus) TopK(k int, t1, t2 float64) ([]topk.Item, error) {
	cands, err := a.q.Candidates(k, t1, t2)
	if err != nil {
		return nil, err
	}
	c := topk.NewCollector(k)
	for id := range cands {
		s, err := a.e2.Score(id, t1, t2)
		if err != nil {
			return nil, err
		}
		c.Add(id, s)
	}
	return c.Results(), nil
}

// Score implements exact.Method: exact when the object is a candidate.
func (a *Appx2Plus) Score(id tsdata.SeriesID, t1, t2 float64) (float64, error) {
	return a.e2.Score(id, t1, t2)
}

// Append also forwards the new segment to the EXACT2 forest so exact
// rescoring stays current between rebuilds.
func (a *Appx2Plus) Append(id tsdata.SeriesID, t, v float64) error {
	return a.append2p(id, t, v, true)
}

// AppendApplied mirrors Append for a dataset-already-applied segment
// (see appxBase.AppendApplied), keeping the rescoring forest in sync.
func (a *Appx2Plus) AppendApplied(id tsdata.SeriesID, t, v float64) error {
	return a.append2p(id, t, v, false)
}

func (a *Appx2Plus) append2p(id tsdata.SeriesID, t, v float64, applyDS bool) error {
	if id < 0 || int(id) >= a.ds.NumSeries() {
		return fmt.Errorf("%s: %w: %d", a.name, trerr.ErrUnknownSeries, id)
	}
	rebuildsBefore := a.rebuildCount
	if err := a.appxBase.append(id, t, v, applyDS); err != nil {
		return err
	}
	if a.rebuildCount == rebuildsBefore {
		// No rebuild: keep the forest in sync incrementally. The EXACT2
		// forest keeps its own frontier, so the applied path forwards too.
		return a.e2.Append(id, t, v)
	}
	return nil
}

var (
	_ Index = (*Appx1)(nil)
	_ Index = (*Appx2)(nil)
	_ Index = (*Appx2Plus)(nil)
)
