package approx

import (
	"math"
	"math/rand"
	"testing"

	"temporalrank/internal/blockio"
	"temporalrank/internal/breakpoint"
	"temporalrank/internal/exact"
	"temporalrank/internal/topk"
	"temporalrank/internal/tsdata"
)

func randomSeries(rng *rand.Rand, id tsdata.SeriesID, n int, negative bool) *tsdata.Series {
	times := make([]float64, n+1)
	values := make([]float64, n+1)
	t := rng.Float64() * 2
	for j := 0; j <= n; j++ {
		times[j] = t
		t += 0.2 + rng.Float64()*2
		v := rng.Float64() * 100
		if negative {
			v -= 50
		}
		values[j] = v
	}
	s, err := tsdata.NewSeries(id, times, values)
	if err != nil {
		panic(err)
	}
	return s
}

func randomDataset(seed int64, m, maxSegs int, negative bool) *tsdata.Dataset {
	rng := rand.New(rand.NewSource(seed))
	series := make([]*tsdata.Series, m)
	for i := 0; i < m; i++ {
		series[i] = randomSeries(rng, tsdata.SeriesID(i), 1+rng.Intn(maxSegs), negative)
	}
	d, err := tsdata.NewDataset(series)
	if err != nil {
		panic(err)
	}
	return d
}

func referenceTopK(ds *tsdata.Dataset, k int, t1, t2 float64) []topk.Item {
	c := topk.NewCollector(k)
	for _, s := range ds.AllSeries() {
		c.Add(s.ID, s.Range(t1, t2))
	}
	return c.Results()
}

func randomQuery(rng *rand.Rand, ds *tsdata.Dataset) (float64, float64) {
	t1 := ds.Start() + rng.Float64()*ds.Span()*0.75
	t2 := t1 + rng.Float64()*(ds.End()-t1)
	return t1, t2
}

// --- Query1 ------------------------------------------------------------

func TestQuery1EpsilonOneGuarantee(t *testing.T) {
	ds := randomDataset(1, 30, 20, false)
	eps := 0.02
	bps, err := breakpoint.Build2(ds, eps)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQuery1(blockio.NewMemDevice(1024), ds, bps, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	bound := eps * ds.M() * (1 + 1e-7)
	for trial := 0; trial < 40; trial++ {
		t1, t2 := randomQuery(rng, ds)
		k := 1 + rng.Intn(10)
		got, err := q.TopK(k, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceTopK(ds, k, t1, t2)
		// Definition 2 with α=1: the j-th approximate score must be
		// within εM of the j-th exact score.
		for j := range got {
			if j >= len(want) {
				break
			}
			if d := math.Abs(got[j].Score - want[j].Score); d > bound {
				t.Fatalf("trial %d rank %d: |σ̃-σ| = %g > εM = %g", trial, j, d, bound)
			}
			// And within εM of its own exact score.
			own := ds.Series(got[j].ID).Range(t1, t2)
			if d := math.Abs(got[j].Score - own); d > bound {
				t.Fatalf("trial %d rank %d: own-score error %g > εM", trial, j, d)
			}
		}
	}
}

func TestQuery1ExactOnSnappedIntervals(t *testing.T) {
	// Querying exactly on breakpoints must return exact scores.
	ds := randomDataset(3, 20, 15, false)
	bps, err := breakpoint.Build2(ds, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQuery1(blockio.NewMemDevice(1024), ds, bps, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		a := rng.Intn(bps.R() - 1)
		b := a + 1 + rng.Intn(bps.R()-a-1)
		t1, t2 := bps.Times[a], bps.Times[b]
		got, err := q.TopK(5, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceTopK(ds, 5, t1, t2)
		for j := range got {
			if math.Abs(got[j].Score-want[j].Score) > 1e-7*(1+math.Abs(want[j].Score)) {
				t.Fatalf("snapped query rank %d: %g vs %g", j, got[j].Score, want[j].Score)
			}
			if got[j].ID != want[j].ID {
				t.Fatalf("snapped query rank %d: ID %d vs %d", j, got[j].ID, want[j].ID)
			}
		}
	}
}

func TestQuery1KExceedsKmax(t *testing.T) {
	ds := randomDataset(5, 10, 5, false)
	bps, _ := breakpoint.Build2(ds, 0.1)
	q, err := BuildQuery1(blockio.NewMemDevice(1024), ds, bps, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.TopK(4, ds.Start(), ds.End()); err == nil {
		t.Error("k > kmax accepted")
	}
}

func TestQuery1DegenerateSnap(t *testing.T) {
	ds := randomDataset(6, 10, 5, false)
	bps, _ := breakpoint.Build2(ds, 0.1)
	q, err := BuildQuery1(blockio.NewMemDevice(1024), ds, bps, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Interval so narrow both ends snap to the same breakpoint: empty.
	gap := bps.Times[1] - bps.Times[0]
	t1 := bps.Times[1] - gap*0.01
	got, err := q.TopK(3, t1, t1+gap*0.001)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range got {
		if it.Score != 0 {
			t.Errorf("degenerate snap returned nonzero score %g", it.Score)
		}
	}
}

// --- Query2 ------------------------------------------------------------

func TestQuery2Guarantee(t *testing.T) {
	ds := randomDataset(7, 30, 20, false)
	eps := 0.01
	bps, err := breakpoint.Build2(ds, eps)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQuery2(blockio.NewMemDevice(1024), ds, bps, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := float64(bps.R())
	alpha := 2 * math.Log2(r)
	bound := eps * ds.M() * (1 + 1e-7)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		t1, t2 := randomQuery(rng, ds)
		k := 1 + rng.Intn(10)
		got, err := q.TopK(k, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceTopK(ds, k, t1, t2)
		for j := range got {
			if j >= len(want) {
				break
			}
			exactScore := want[j].Score
			lo := exactScore/alpha - bound
			hi := exactScore + bound
			if got[j].Score < lo-1e-9 || got[j].Score > hi+1e-9 {
				t.Fatalf("trial %d rank %d: σ̃=%g outside [σ/α-εM, σ+εM]=[%g,%g] (σ=%g, α=%g)",
					trial, j, got[j].Score, lo, hi, exactScore, alpha)
			}
		}
	}
}

func TestQuery2DecomposeProperties(t *testing.T) {
	ds := randomDataset(9, 15, 15, false)
	bps, err := breakpoint.Build2(ds, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQuery2(blockio.NewMemDevice(1024), ds, bps, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := bps.R()
	maxNodes := 2 * int(math.Ceil(math.Log2(float64(r))))
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		a := rng.Intn(r - 1)
		b := a + 1 + rng.Intn(r-1-a)
		nodes := q.Decompose(a, b)
		if len(nodes) > maxNodes {
			t.Fatalf("decompose(%d,%d) used %d nodes > 2·log r = %d", a, b, len(nodes), maxNodes)
		}
		// The union must cover [a,b) exactly, disjointly.
		covered := make([]bool, r-1)
		for _, n := range nodes {
			node := q.nodes[n]
			for g := node.lo; g < node.hi; g++ {
				if covered[g] {
					t.Fatalf("decompose(%d,%d): gap %d covered twice", a, b, g)
				}
				covered[g] = true
			}
		}
		for g := 0; g < r-1; g++ {
			want := g >= a && g < b
			if covered[g] != want {
				t.Fatalf("decompose(%d,%d): gap %d covered=%v want %v", a, b, g, covered[g], want)
			}
		}
	}
	// Empty and inverted ranges decompose to nothing.
	if len(q.Decompose(3, 3)) != 0 || len(q.Decompose(5, 2)) != 0 {
		t.Error("degenerate decompose not empty")
	}
}

func TestQuery2NodeCountLinear(t *testing.T) {
	ds := randomDataset(11, 10, 20, false)
	bps, err := breakpoint.Build2(ds, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQuery2(blockio.NewMemDevice(1024), ds, bps, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() >= 2*bps.R() {
		t.Errorf("nodes = %d, want < 2r = %d", q.NumNodes(), 2*bps.R())
	}
}

func TestQuery2CandidateSize(t *testing.T) {
	// |K| <= 2k·log r (Lemma 5's candidate bound).
	ds := randomDataset(12, 40, 20, false)
	bps, err := breakpoint.Build2(ds, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BuildQuery2(blockio.NewMemDevice(1024), ds, bps, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	logr := math.Ceil(math.Log2(float64(bps.R())))
	for trial := 0; trial < 50; trial++ {
		t1, t2 := randomQuery(rng, ds)
		k := 1 + rng.Intn(20)
		cands, err := q.Candidates(k, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) > int(2*float64(k)*logr) {
			t.Fatalf("|K| = %d > 2k·log r = %g", len(cands), 2*float64(k)*logr)
		}
	}
}

// --- combined APPX methods ----------------------------------------------

func buildFive(t *testing.T, ds *tsdata.Dataset, eps float64, kmax int) []Index {
	t.Helper()
	mk := func(f func() (Index, error)) Index {
		idx, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	return []Index{
		mk(func() (Index, error) {
			return NewAppx1(blockio.NewMemDevice(1024), ds, KindB1, eps, kmax)
		}),
		mk(func() (Index, error) {
			return NewAppx2(blockio.NewMemDevice(1024), ds, KindB1, eps, kmax)
		}),
		mk(func() (Index, error) {
			return NewAppx1(blockio.NewMemDevice(1024), ds, KindB2, eps, kmax)
		}),
		mk(func() (Index, error) {
			return NewAppx2(blockio.NewMemDevice(1024), ds, KindB2, eps, kmax)
		}),
		mk(func() (Index, error) {
			return NewAppx2Plus(blockio.NewMemDevice(1024), ds, KindB2, eps, kmax)
		}),
	}
}

func TestAppxNames(t *testing.T) {
	ds := randomDataset(14, 8, 8, false)
	idxs := buildFive(t, ds, 0.05, 5)
	want := []string{"APPX1-B", "APPX2-B", "APPX1", "APPX2", "APPX2+"}
	for i, idx := range idxs {
		if idx.Name() != want[i] {
			t.Errorf("index %d name = %q, want %q", i, idx.Name(), want[i])
		}
	}
}

func TestAppxHighPrecisionOnRealisticEps(t *testing.T) {
	ds := randomDataset(15, 30, 25, false)
	// εM must be small relative to a single object's mass (~M/m) for
	// high precision; the paper's effective ε at r=500 is ~1e-8.
	idxs := buildFive(t, ds, 0.001, 20)
	rng := rand.New(rand.NewSource(16))
	const k = 10
	for _, idx := range idxs {
		var prSum float64
		trials := 25
		for q := 0; q < trials; q++ {
			t1, t2 := randomQuery(rng, ds)
			got, err := idx.TopK(k, t1, t2)
			if err != nil {
				t.Fatalf("%s: %v", idx.Name(), err)
			}
			want := referenceTopK(ds, k, t1, t2)
			prSum += topk.PrecisionRecall(got, want)
		}
		pr := prSum / float64(trials)
		// Uniform random objects have near-identical aggregates, the
		// hardest case for ranking; the dyadic methods (APPX2 family)
		// legitimately trade precision for their O(r·kmax) size here.
		// Real-shaped workloads (internal/gen) recover the paper's >90%.
		threshold := 0.85
		if idx.Name() == "APPX2" || idx.Name() == "APPX2-B" {
			threshold = 0.55
		}
		if pr < threshold {
			t.Errorf("%s: precision/recall = %.3f, want >= %.2f at eps=0.0005", idx.Name(), pr, threshold)
		}
	}
}

func TestAppx2PlusNearExact(t *testing.T) {
	ds := randomDataset(17, 40, 20, false)
	idx, err := NewAppx2Plus(blockio.NewMemDevice(1024), ds, KindB2, 0.01, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	for q := 0; q < 20; q++ {
		t1, t2 := randomQuery(rng, ds)
		got, err := idx.TopK(10, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		// Scores of returned objects are exact (rescored via EXACT2).
		for _, it := range got {
			want := ds.Series(it.ID).Range(t1, t2)
			if math.Abs(it.Score-want) > 1e-7*(1+math.Abs(want)) {
				t.Fatalf("APPX2+ score for %d = %g, want exact %g", it.ID, it.Score, want)
			}
		}
	}
}

func TestAppxQueryIOFarBelowExact3(t *testing.T) {
	ds := randomDataset(19, 120, 40, false)
	e3, err := exact.BuildExact3(blockio.NewMemDevice(1024), ds)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := NewAppx1(blockio.NewMemDevice(1024), ds, KindB2, 0.02, 20)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAppx2(blockio.NewMemDevice(1024), ds, KindB2, 0.02, 20)
	if err != nil {
		t.Fatal(err)
	}
	t1 := ds.Start() + ds.Span()*0.2
	t2 := ds.Start() + ds.Span()*0.5
	measure := func(m exact.Method) uint64 {
		m.Device().ResetStats()
		if _, err := m.TopK(10, t1, t2); err != nil {
			t.Fatal(err)
		}
		return m.Device().Stats().Total()
	}
	ioE3 := measure(e3)
	io1 := measure(a1)
	io2 := measure(a2)
	if io1*5 > ioE3 || io2*5 > ioE3 {
		t.Errorf("approx IOs (%d, %d) should be far below EXACT3 (%d)", io1, io2, ioE3)
	}
}

func TestAppx1SmallerEpsEffectOfB2(t *testing.T) {
	// With the same r budget, B2-based APPX1 must have much smaller
	// effective eps than B1-based APPX1-B (Fig. 11a).
	ds := randomDataset(20, 40, 20, false)
	r := 50
	b1, err := breakpoint.Build1(ds, breakpoint.EpsilonForR1(r))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := breakpoint.Build2WithTargetR(ds, r, true)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Epsilon >= b1.Epsilon {
		t.Errorf("B2 eps %g should be < B1 eps %g at the same r", b2.Epsilon, b1.Epsilon)
	}
}

func TestAppxIndexSizeOrdering(t *testing.T) {
	// Fig. 11c: APPX2 ≪ APPX1 ≪ EXACT3-scale (APPX2+ includes EXACT2).
	ds := randomDataset(21, 60, 30, false)
	eps := 0.01
	a1, err := NewAppx1(blockio.NewMemDevice(1024), ds, KindB2, eps, 50)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAppx2(blockio.NewMemDevice(1024), ds, KindB2, eps, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a2.IndexPages() >= a1.IndexPages() {
		t.Errorf("APPX2 pages (%d) should be below APPX1 pages (%d)", a2.IndexPages(), a1.IndexPages())
	}
}

func TestAppxNegativeScores(t *testing.T) {
	ds := randomDataset(22, 25, 15, true)
	idxs := buildFive(t, ds, 0.01, 10)
	rng := rand.New(rand.NewSource(23))
	bound := 0.01 * ds.M() * (1 + 1e-7)
	for _, idx := range idxs {
		if idx.Name() != "APPX1" && idx.Name() != "APPX1-B" {
			continue // the tight ±εM check applies to the (ε,1) methods
		}
		for q := 0; q < 15; q++ {
			t1, t2 := randomQuery(rng, ds)
			got, err := idx.TopK(5, t1, t2)
			if err != nil {
				t.Fatalf("%s: %v", idx.Name(), err)
			}
			want := referenceTopK(ds, 5, t1, t2)
			for j := range got {
				if j >= len(want) {
					break
				}
				if d := math.Abs(got[j].Score - want[j].Score); d > bound {
					t.Fatalf("%s(neg) rank %d: error %g > εM %g", idx.Name(), j, d, bound)
				}
			}
		}
	}
}

func TestAppxUpdateRebuildOnMDoubling(t *testing.T) {
	ds := randomDataset(24, 10, 6, false)
	idx, err := NewAppx2(blockio.NewMemDevice(1024), ds, KindB2, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	if idx.RebuildCount() != 0 {
		t.Fatal("fresh index claims rebuilds")
	}
	// Append heavy segments until M doubles.
	bigV := 1000.0
	origEnd := ds.End()
	end := origEnd
	for i := 0; i < 100 && idx.RebuildCount() == 0; i++ {
		end += 1
		if err := idx.Append(0, end, bigV); err != nil {
			t.Fatal(err)
		}
	}
	if idx.RebuildCount() == 0 {
		t.Fatal("no rebuild despite M more than doubling")
	}
	// After rebuild the index must see the new data.
	got, err := idx.TopK(1, origEnd, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].ID != 0 {
		t.Errorf("after rebuild, object 0 should dominate [%g,%g]: %v", origEnd, end, got)
	}
}

func TestAppx2PlusForestStaysFresh(t *testing.T) {
	ds := randomDataset(25, 8, 6, false)
	idx, err := NewAppx2Plus(blockio.NewMemDevice(1024), ds, KindB2, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A small append (no rebuild) must still be visible to exact
	// rescoring via the forest.
	endT := ds.End()
	if err := idx.Append(3, endT+1, 50); err != nil {
		t.Fatal(err)
	}
	if idx.RebuildCount() != 0 {
		t.Skip("mass doubled unexpectedly; covered by the rebuild test")
	}
	s, err := idx.Score(3, endT, endT+1)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Errorf("forest did not see the appended segment: score %g", s)
	}
}

func TestAppxInvalidInputs(t *testing.T) {
	ds := randomDataset(26, 5, 5, false)
	if _, err := NewAppx1(blockio.NewMemDevice(1024), ds, KindB2, -0.1, 5); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := NewAppx2(blockio.NewMemDevice(1024), ds, KindB2, 0.1, 0); err == nil {
		t.Error("kmax=0 accepted")
	}
	idx, err := NewAppx2(blockio.NewMemDevice(1024), ds, KindB2, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.TopK(3, 5, 2); err == nil {
		t.Error("inverted interval accepted")
	}
	if err := idx.Append(tsdata.SeriesID(99), 1e9, 1); err == nil {
		t.Error("unknown series append accepted")
	}
}

func TestApproxFaultPropagation(t *testing.T) {
	ds := randomDataset(70, 20, 12, false)
	for _, build := range []struct {
		name string
		mk   func(dev blockio.Device) (Index, error)
	}{
		{"APPX1", func(dev blockio.Device) (Index, error) {
			return NewAppx1(dev, ds, KindB2, 0.05, 5)
		}},
		{"APPX2", func(dev blockio.Device) (Index, error) {
			return NewAppx2(dev, ds, KindB2, 0.05, 5)
		}},
		{"APPX2+", func(dev blockio.Device) (Index, error) {
			return NewAppx2Plus(dev, ds, KindB2, 0.05, 5)
		}},
	} {
		fd := blockio.NewFaultDevice(blockio.NewMemDevice(512), -1)
		idx, err := build.mk(fd)
		if err != nil {
			t.Fatalf("%s build: %v", build.name, err)
		}
		t1 := ds.Start() + ds.Span()*0.2
		t2 := ds.Start() + ds.Span()*0.7
		fd.ResetStats()
		if _, err := idx.TopK(3, t1, t2); err != nil {
			t.Fatalf("%s healthy: %v", build.name, err)
		}
		ops := int64(fd.Stats().Total())
		for budget := int64(0); budget < ops; budget++ {
			fd.Arm(budget)
			if _, err := idx.TopK(3, t1, t2); err == nil {
				t.Errorf("%s: fault at %d/%d swallowed", build.name, budget, ops)
			}
		}
		fd.Disarm()
		if _, err := idx.TopK(3, t1, t2); err != nil {
			t.Errorf("%s did not recover: %v", build.name, err)
		}
		// Build-time faults surface too (budget 0: first device op fails).
		fb := blockio.NewFaultDevice(blockio.NewMemDevice(512), 0)
		if _, err := build.mk(fb); err == nil {
			t.Errorf("%s: build fault swallowed", build.name)
		}
	}
}

func TestApproxOnFileDevice(t *testing.T) {
	ds := randomDataset(71, 25, 15, false)
	dev, err := blockio.OpenFileDevice(t.TempDir()+"/appx.bin", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	idx, err := NewAppx1(dev, ds, KindB2, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	var prSum float64
	const trials = 10
	for q := 0; q < trials; q++ {
		// Fixed 20%-of-domain intervals: wide enough that the snapped
		// interval is never empty.
		t1 := ds.Start() + rng.Float64()*ds.Span()*0.7
		t2 := t1 + ds.Span()*0.2
		got, err := idx.TopK(5, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		prSum += topk.PrecisionRecall(got, referenceTopK(ds, 5, t1, t2))
	}
	if pr := prSum / trials; pr < 0.5 {
		t.Errorf("file-backed APPX1 avg precision %g", pr)
	}
}
