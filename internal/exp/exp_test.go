package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyParams keeps harness tests fast.
func tinyParams() Params {
	p := DefaultParams()
	p.M = 40
	p.Navg = 25
	p.KMax = 10
	p.K = 5
	p.R = 25
	p.NumQueries = 5
	return p
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig11Shape(t *testing.T) {
	var buf bytes.Buffer
	tab, err := Fig11(&buf, tinyParams(), []int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	if len(tab.Rows[0]) != len(tab.Columns) {
		t.Fatalf("row width %d != %d columns", len(tab.Rows[0]), len(tab.Columns))
	}
	// Fig 11a effect: eps(B2) < eps(B1) at the same r.
	for _, row := range tab.Rows {
		eps1 := parseF(t, row[1])
		eps2 := parseF(t, row[2])
		if eps2 >= eps1 {
			t.Errorf("r=%s: eps(B2)=%g not below eps(B1)=%g", row[0], eps2, eps1)
		}
	}
	if !strings.Contains(buf.String(), "Fig 11") {
		t.Error("table not rendered")
	}
}

func TestFig12ShapeAndOrdering(t *testing.T) {
	var buf bytes.Buffer
	tab, err := Fig12(&buf, tinyParams(), []int{20})
	if err != nil {
		t.Fatal(err)
	}
	// 5 approx + EXACT3 = 6 rows.
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	ios := map[string]float64{}
	for _, row := range tab.Rows {
		ios[row[1]] = parseF(t, row[4])
	}
	// Fig 12c effect: the pure approximate methods beat EXACT3 on IOs.
	for _, m := range []string{"APPX1", "APPX2", "APPX1-B", "APPX2-B"} {
		if ios[m] >= ios["EXACT3"] {
			t.Errorf("%s IOs (%g) not below EXACT3 (%g)", m, ios[m], ios["EXACT3"])
		}
	}
}

func TestFig13Ordering(t *testing.T) {
	var buf bytes.Buffer
	tab, err := Fig13(&buf, tinyParams(), []int{20, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (2 settings x 6 methods)", len(tab.Rows))
	}
	// EXACT2 query IOs grow with m; APPX1 IOs stay flat-ish (Fig 13c).
	get := func(setting, method string) float64 {
		for _, row := range tab.Rows {
			if row[0] == setting && row[1] == method {
				return parseF(t, row[4])
			}
		}
		t.Fatalf("row %s/%s missing", setting, method)
		return 0
	}
	if get("m=60", "EXACT2") <= get("m=20", "EXACT2") {
		t.Error("EXACT2 IOs should grow with m")
	}
	if get("m=60", "APPX1") > get("m=20", "APPX1")*2 {
		t.Error("APPX1 IOs should be m-independent")
	}
}

func TestFig14Runs(t *testing.T) {
	var buf bytes.Buffer
	tab, err := Fig14(&buf, tinyParams(), []int{15, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig15QualityBounds(t *testing.T) {
	var buf bytes.Buffer
	tab, err := Fig15(&buf, tinyParams(), []int{30}, []int{20})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		pr := parseF(t, row[2])
		if pr < 0 || pr > 1 {
			t.Errorf("precision %g out of [0,1]", pr)
		}
		ratio := parseF(t, row[3])
		if ratio < 0.2 || ratio > 3 {
			t.Errorf("%s ratio %g implausible", row[1], ratio)
		}
	}
}

func TestFig16Exact1Grows(t *testing.T) {
	p := tinyParams()
	p.M = 30
	p.Navg = 60
	var buf bytes.Buffer
	tab, err := Fig16(&buf, p, []float64{0.02, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	get := func(frac, method string) float64 {
		for _, row := range tab.Rows {
			if row[0] == frac && row[1] == method {
				return parseF(t, row[2])
			}
		}
		t.Fatalf("row %s/%s missing", frac, method)
		return 0
	}
	if get("50%", "EXACT1") <= get("2%", "EXACT1") {
		t.Error("EXACT1 IOs must grow with the interval (Fig 16a)")
	}
	if get("50%", "EXACT3") > 3*get("2%", "EXACT3") {
		t.Error("EXACT3 IOs should be interval-insensitive")
	}
}

func TestFig17Runs(t *testing.T) {
	var buf bytes.Buffer
	tab, err := Fig17(&buf, tinyParams(), []int{2, 5, 50})
	if err != nil {
		t.Fatal(err)
	}
	// k=50 > kmax=10 is skipped: 2 settings x 6 methods.
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
}

func TestFig18KmaxAffectsApproxSizeOnly(t *testing.T) {
	var buf bytes.Buffer
	// Small blocks so a kmax doubling crosses page boundaries (at 4KB
	// both tiny lists round up to one page and the growth is invisible).
	p := tinyParams()
	p.BlockSize = 128
	tab, err := Fig18(&buf, p, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	get := func(setting, method string) float64 {
		for _, row := range tab.Rows {
			if row[0] == setting && row[1] == method {
				return parseF(t, row[2])
			}
		}
		t.Fatalf("row %s/%s missing", setting, method)
		return 0
	}
	if get("kmax=10", "APPX1") <= get("kmax=5", "APPX1") {
		t.Error("APPX1 size should grow with kmax")
	}
	if get("kmax=10", "EXACT3") != get("kmax=5", "EXACT3") {
		t.Error("EXACT3 size must not depend on kmax")
	}
}

func TestFig19AllMethods(t *testing.T) {
	p := tinyParams()
	var buf bytes.Buffer
	tab, err := Fig19(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 methods", len(tab.Rows))
	}
}

func TestFig20Quality(t *testing.T) {
	p := tinyParams()
	var buf bytes.Buffer
	tab, err := Fig20(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 approx methods", len(tab.Rows))
	}
}

func TestUpdates(t *testing.T) {
	p := tinyParams()
	var buf bytes.Buffer
	tab, err := Updates(&buf, p, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
}

func TestAblations(t *testing.T) {
	p := tinyParams()
	var buf bytes.Buffer
	tab, err := Ablations(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Cached EXACT3 must not exceed uncached IOs.
	var cached, uncached float64 = -1, -1
	for _, row := range tab.Rows {
		if row[0] == "bufferpool" && strings.Contains(row[1], "no-cache") {
			uncached = parseF(t, row[2])
		}
		if row[0] == "bufferpool" && strings.Contains(row[1], "cached") {
			cached = parseF(t, row[2])
		}
	}
	if cached < 0 || uncached < 0 || cached > uncached {
		t.Errorf("bufferpool ablation: cached=%g uncached=%g", cached, uncached)
	}
}

func TestMakeDatasetKinds(t *testing.T) {
	for _, d := range []string{"temp", "meme", "walk"} {
		p := tinyParams()
		p.Dataset = d
		if _, err := p.MakeDataset(); err != nil {
			t.Errorf("%s: %v", d, err)
		}
	}
	p := tinyParams()
	p.Dataset = "nope"
	if _, err := p.MakeDataset(); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestMakeQueriesReproducible(t *testing.T) {
	p := tinyParams()
	ds, err := p.MakeDataset()
	if err != nil {
		t.Fatal(err)
	}
	a := p.MakeQueries(ds)
	b := p.MakeQueries(ds)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("queries not reproducible")
		}
	}
	for _, q := range a {
		if q.T1 < ds.Start() || q.T2 > ds.End() || q.T2 <= q.T1 {
			t.Fatalf("query %+v outside domain [%g,%g]", q, ds.Start(), ds.End())
		}
	}
}
