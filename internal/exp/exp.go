// Package exp is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (§5, Figures 11–20 plus the
// update study) on the synthetic Temp and Meme workloads, printing one
// row per parameter setting with the same series the paper plots.
//
// Each Fig* function is self-contained: it generates data, builds the
// methods under test, runs measured queries, and returns a Table (also
// rendered to the writer). cmd/rankbench exposes them on the command
// line; the root bench_test.go exposes them as testing.B benchmarks.
package exp

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"temporalrank/internal/core"
	"temporalrank/internal/exact"
	"temporalrank/internal/gen"
	"temporalrank/internal/topk"
	"temporalrank/internal/tsdata"
)

// Params scales an experiment. The zero value is unusable; start from
// DefaultParams (laptop-scale defaults standing in for the paper's
// defaults m=50,000, navg=1,000, kmax=200, k=50, r=500 — see
// EXPERIMENTS.md for the mapping).
type Params struct {
	Dataset      string // "temp" or "meme"
	M            int    // number of objects
	Navg         int    // average segments per object
	Seed         int64
	KMax         int     // max k the approximate indexes support
	K            int     // query k
	R            int     // breakpoint budget
	IntervalFrac float64 // (t2-t1) as a fraction of T
	NumQueries   int     // queries averaged per measurement
	BlockSize    int
}

// DefaultParams returns the laptop-scale defaults.
func DefaultParams() Params {
	return Params{
		Dataset:      "temp",
		M:            1000,
		Navg:         100,
		Seed:         2012, // the paper's year, for luck and determinism
		KMax:         100,
		K:            20,
		R:            150,
		IntervalFrac: 0.20,
		NumQueries:   40,
		BlockSize:    4096,
	}
}

// Scaled returns a copy with M and Navg overridden when positive.
func (p Params) Scaled(m, navg int) Params {
	if m > 0 {
		p.M = m
	}
	if navg > 0 {
		p.Navg = navg
	}
	return p
}

// MakeDataset builds the configured synthetic dataset.
func (p Params) MakeDataset() (*tsdata.Dataset, error) {
	switch p.Dataset {
	case "", "temp":
		return gen.Temp(gen.TempConfig{M: p.M, Navg: p.Navg, Seed: p.Seed})
	case "meme":
		return gen.Meme(gen.MemeConfig{M: p.M, Navg: p.Navg, Seed: p.Seed})
	case "walk":
		return gen.RandomWalk(gen.RandomWalkConfig{M: p.M, Navg: p.Navg, Seed: p.Seed})
	default:
		return nil, fmt.Errorf("exp: unknown dataset %q", p.Dataset)
	}
}

func (p Params) config() core.Config {
	return core.Config{BlockSize: p.BlockSize, KMax: p.KMax, TargetR: p.R}
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render prints the table aligned.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
}

// Cell formatting helpers.
func fmtInt(v int) string     { return fmt.Sprintf("%d", v) }
func fmtU64(v uint64) string  { return fmt.Sprintf("%d", v) }
func fmtBytes(v int64) string { return fmt.Sprintf("%d", v) }
func fmtF(v float64) string   { return fmt.Sprintf("%.4f", v) }
func fmtSci(v float64) string { return fmt.Sprintf("%.3g", v) }
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}

// Query is one measured query interval.
type Query struct{ T1, T2 float64 }

// MakeQueries draws NumQueries random intervals of the configured
// length, reproducibly.
func (p Params) MakeQueries(ds *tsdata.Dataset) []Query {
	rng := rand.New(rand.NewSource(p.Seed + 1))
	span := ds.Span()
	length := span * p.IntervalFrac
	qs := make([]Query, p.NumQueries)
	for i := range qs {
		t1 := ds.Start() + rng.Float64()*(span-length)
		qs[i] = Query{T1: t1, T2: t1 + length}
	}
	return qs
}

// MethodMeasurement aggregates query metrics for one method.
type MethodMeasurement struct {
	Name      string
	AvgIOs    float64
	AvgTime   time.Duration
	Precision float64
	Ratio     float64
}

// MeasureQueries runs all queries through a method, comparing against
// ground truth from the dataset.
func MeasureQueries(m exact.Method, ds *tsdata.Dataset, qs []Query, k int) (*MethodMeasurement, error) {
	var (
		totalIOs  uint64
		totalTime time.Duration
		prSum     float64
		ratioSum  float64
	)
	for _, q := range qs {
		st, err := core.MeasureQuery(m, k, q.T1, q.T2)
		if err != nil {
			return nil, err
		}
		totalIOs += st.IOs.Total()
		totalTime += st.Elapsed
		want := core.Reference(ds, k, q.T1, q.T2)
		prSum += topk.PrecisionRecall(st.Items, want)
		ratioSum += topk.ApproxRatio(st.Items, func(id tsdata.SeriesID) float64 {
			return ds.Series(id).Range(q.T1, q.T2)
		})
	}
	n := float64(len(qs))
	return &MethodMeasurement{
		Name:      m.Name(),
		AvgIOs:    float64(totalIOs) / n,
		AvgTime:   time.Duration(float64(totalTime) / n),
		Precision: prSum / n,
		Ratio:     ratioSum / n,
	}, nil
}
