package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"temporalrank/internal/breakpoint"
	"temporalrank/internal/core"
	"temporalrank/internal/exact"
	"temporalrank/internal/tsdata"
)

// Fig19 reproduces the Meme evaluation (Fig. 19a–d): index size, build
// time, query IOs and query time for all eight methods on the bursty
// dataset.
func Fig19(w io.Writer, p Params) (*Table, error) {
	p.Dataset = "meme"
	ds, err := p.MakeDataset()
	if err != nil {
		return nil, err
	}
	qs := p.MakeQueries(ds)
	t := &Table{
		Title:   fmt.Sprintf("Fig 19: Meme dataset — m=%d navg=%d k=%d r=%d", p.M, p.Navg, p.K, p.R),
		Columns: scaleColumns,
	}
	for _, name := range core.AllMethods() {
		br, err := core.BuildMeasured(name, ds, p.config())
		if err != nil {
			return nil, err
		}
		mm, err := MeasureQueries(br.Method, ds, qs, p.K)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"meme", br.Method.Name(),
			fmtBytes(br.IndexBytes), fmtDur(br.BuildTime),
			fmtF(mm.AvgIOs), fmtDur(mm.AvgTime),
		})
	}
	t.Render(w)
	return t, nil
}

// Fig20 reproduces the Meme quality study (Fig. 20a–b):
// precision/recall and approximation ratio of the five approximate
// methods on the bursty dataset.
func Fig20(w io.Writer, p Params) (*Table, error) {
	p.Dataset = "meme"
	ds, err := p.MakeDataset()
	if err != nil {
		return nil, err
	}
	qs := p.MakeQueries(ds)
	b1, err := breakpoint.Build1(ds, breakpoint.EpsilonForR1(p.R))
	if err != nil {
		return nil, err
	}
	b2, err := breakpoint.Build2WithTargetR(ds, p.R, true)
	if err != nil {
		return nil, err
	}
	methods, err := buildApproxSet(ds, b1, b2, p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig 20: Meme quality — m=%d navg=%d k=%d r=%d", p.M, p.Navg, p.K, p.R),
		Columns: []string{"method", "prec/recall", "ratio"},
	}
	for _, m := range methods {
		mm, err := MeasureQueries(m, ds, qs, p.K)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{mm.Name, fmtF(mm.Precision), fmtF(mm.Ratio)})
	}
	t.Render(w)
	return t, nil
}

// Updates reproduces the §4/§5 update study: the amortized per-segment
// append cost of every method (the paper reports update ∝ build/N,
// with EXACT1 penalized for single inserts and EXACT2/APPX2+ cheap).
func Updates(w io.Writer, p Params, numAppends int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Updates: %d appends — %s m=%d navg=%d", numAppends, p.Dataset, p.M, p.Navg),
		Columns: []string{"method", "avg append time", "avg append IOs"},
	}
	for _, name := range core.AllMethods() {
		// Fresh dataset per method: appends mutate shared state.
		ds, err := p.MakeDataset()
		if err != nil {
			return nil, err
		}
		m, err := core.Build(name, ds, p.config())
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(p.Seed + 7))
		frontier := make([]float64, ds.NumSeries())
		for i, s := range ds.AllSeries() {
			frontier[i] = s.End()
		}
		m.Device().ResetStats()
		start := time.Now()
		for a := 0; a < numAppends; a++ {
			id := tsdata.SeriesID(rng.Intn(ds.NumSeries()))
			frontier[id] += 0.01 + rng.Float64()
			if err := m.Append(id, frontier[id], 100+rng.Float64()*50); err != nil {
				return nil, fmt.Errorf("%s append: %w", name, err)
			}
		}
		elapsed := time.Since(start)
		ios := m.Device().Stats().Total()
		t.Rows = append(t.Rows, []string{
			string(name),
			fmtDur(time.Duration(int64(elapsed) / int64(numAppends))),
			fmtF(float64(ios) / float64(numAppends)),
		})
	}
	t.Render(w)
	return t, nil
}

// Ablations runs the design-choice studies DESIGN.md calls out:
// B1-vs-B2 effective ε, B2 construction variants, buffer-pool effect,
// and the forest-vs-interval-tree comparison.
func Ablations(w io.Writer, p Params) (*Table, error) {
	ds, err := p.MakeDataset()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Ablations — %s m=%d navg=%d r=%d", p.Dataset, p.M, p.Navg, p.R),
		Columns: []string{"study", "variant", "value"},
	}

	// (1) B1 vs B2 effective epsilon at the same r.
	b1eps := breakpoint.EpsilonForR1(p.R)
	b2, err := breakpoint.Build2WithTargetR(ds, p.R, true)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"eps@r", "BREAKPOINTS1", fmtSci(b1eps)},
		[]string{"eps@r", "BREAKPOINTS2", fmtSci(b2.Epsilon)},
	)

	// (2) B2 baseline vs efficient build time.
	start := time.Now()
	if _, err := breakpoint.Build2Baseline(ds, b2.Epsilon); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"B2 build", "baseline", fmtDur(time.Since(start))})
	start = time.Now()
	if _, err := breakpoint.Build2(ds, b2.Epsilon); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"B2 build", "efficient", fmtDur(time.Since(start))})

	// (3) Buffer pool: EXACT3 query IOs with and without a cache.
	qs := p.MakeQueries(ds)
	cold, err := core.Build(core.Exact3, ds, p.config())
	if err != nil {
		return nil, err
	}
	cfg := p.config()
	cfg.CacheBlocks = 2048
	warm, err := core.Build(core.Exact3, ds, cfg)
	if err != nil {
		return nil, err
	}
	measure := func(m exact.Method) float64 {
		var total uint64
		for _, q := range qs {
			st, err := core.MeasureQuery(m, p.K, q.T1, q.T2)
			if err != nil {
				return -1
			}
			total += st.IOs.Total()
		}
		return float64(total) / float64(len(qs))
	}
	t.Rows = append(t.Rows,
		[]string{"bufferpool", "EXACT3 no-cache IOs", fmtF(measure(cold))},
		[]string{"bufferpool", "EXACT3 cached IOs", fmtF(measure(warm))},
	)

	// (4) Forest (EXACT2) vs single interval tree (EXACT3) query IOs.
	e2, err := core.Build(core.Exact2, ds, p.config())
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"forest-vs-itree", "EXACT2 IOs", fmtF(measure(e2))},
		[]string{"forest-vs-itree", "EXACT3 IOs", fmtF(measure(cold))},
	)

	t.Render(w)
	return t, nil
}
