package exp

import (
	"fmt"
	"io"
	"time"

	"temporalrank/internal/approx"
	"temporalrank/internal/blockio"
	"temporalrank/internal/breakpoint"
	"temporalrank/internal/core"
	"temporalrank/internal/exact"
	"temporalrank/internal/tsdata"
)

// DefaultRSweep mirrors Fig. 11/12's r = 100..1000 sweep, scaled.
func DefaultRSweep(base int) []int {
	return []int{base * 2 / 3, base, base * 2, base * 3}
}

// Fig11 reproduces the preprocessing study (Fig. 11a–d): effective ε of
// B1 vs B2 at equal r, breakpoint build times (B1, B2-B, B2-E), and
// index size / build time of the five approximate methods vs EXACT3.
func Fig11(w io.Writer, p Params, rSweep []int) (*Table, error) {
	ds, err := p.MakeDataset()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Fig 11: vary r (preprocessing) — %s m=%d navg=%d kmax=%d",
			p.Dataset, p.M, p.Navg, p.KMax),
		Columns: []string{"r", "eps(B1)", "eps(B2)", "tB1", "tB2-B", "tB2-E",
			"sz:APPX1-B", "sz:APPX2-B", "sz:APPX1", "sz:APPX2", "sz:APPX2+", "sz:EXACT3",
			"bld:APPX1-B", "bld:APPX2-B", "bld:APPX1", "bld:APPX2", "bld:APPX2+", "bld:EXACT3"},
	}
	for _, r := range rSweep {
		eps1 := breakpoint.EpsilonForR1(r)
		start := time.Now()
		b1, err := breakpoint.Build1(ds, eps1)
		if err != nil {
			return nil, err
		}
		tB1 := time.Since(start)

		// Find B2's effective eps for the same r budget.
		b2, err := breakpoint.Build2WithTargetR(ds, r, true)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		if _, err := breakpoint.Build2Baseline(ds, b2.Epsilon); err != nil {
			return nil, err
		}
		tB2B := time.Since(start)
		start = time.Now()
		if _, err := breakpoint.Build2(ds, b2.Epsilon); err != nil {
			return nil, err
		}
		tB2E := time.Since(start)

		type built struct {
			pages int
			dur   time.Duration
		}
		buildIdx := func(f func(dev blockio.Device) (exact.Method, error)) (built, error) {
			dev := blockio.NewMemDevice(p.BlockSize)
			s := time.Now()
			m, err := f(dev)
			if err != nil {
				return built{}, err
			}
			return built{pages: m.IndexPages(), dur: time.Since(s)}, nil
		}
		a1b, err := buildIdx(func(dev blockio.Device) (exact.Method, error) {
			return approx.NewAppx1WithBreaks(dev, ds, approx.KindB1, b1, p.KMax)
		})
		if err != nil {
			return nil, err
		}
		a2b, err := buildIdx(func(dev blockio.Device) (exact.Method, error) {
			return approx.NewAppx2WithBreaks(dev, ds, approx.KindB1, b1, p.KMax)
		})
		if err != nil {
			return nil, err
		}
		a1, err := buildIdx(func(dev blockio.Device) (exact.Method, error) {
			return approx.NewAppx1WithBreaks(dev, ds, approx.KindB2, b2, p.KMax)
		})
		if err != nil {
			return nil, err
		}
		a2, err := buildIdx(func(dev blockio.Device) (exact.Method, error) {
			return approx.NewAppx2WithBreaks(dev, ds, approx.KindB2, b2, p.KMax)
		})
		if err != nil {
			return nil, err
		}
		a2p, err := buildIdx(func(dev blockio.Device) (exact.Method, error) {
			return approx.NewAppx2PlusWithBreaks(dev, ds, approx.KindB2, b2, p.KMax)
		})
		if err != nil {
			return nil, err
		}
		e3, err := buildIdx(func(dev blockio.Device) (exact.Method, error) {
			return exact.BuildExact3(dev, ds)
		})
		if err != nil {
			return nil, err
		}
		bs := int64(p.BlockSize)
		t.Rows = append(t.Rows, []string{
			fmtInt(r), fmtSci(eps1), fmtSci(b2.Epsilon),
			fmtDur(tB1), fmtDur(tB2B), fmtDur(tB2E),
			fmtBytes(int64(a1b.pages) * bs), fmtBytes(int64(a2b.pages) * bs),
			fmtBytes(int64(a1.pages) * bs), fmtBytes(int64(a2.pages) * bs),
			fmtBytes(int64(a2p.pages) * bs), fmtBytes(int64(e3.pages) * bs),
			fmtDur(a1b.dur), fmtDur(a2b.dur), fmtDur(a1.dur), fmtDur(a2.dur),
			fmtDur(a2p.dur), fmtDur(e3.dur),
		})
	}
	t.Render(w)
	return t, nil
}

// Fig12 reproduces the query study vs r (Fig. 12a–d): precision/recall,
// approximation ratio, IOs, and query time of the five approximate
// methods, with EXACT3 as the IO/time reference.
func Fig12(w io.Writer, p Params, rSweep []int) (*Table, error) {
	ds, err := p.MakeDataset()
	if err != nil {
		return nil, err
	}
	qs := p.MakeQueries(ds)
	t := &Table{
		Title: fmt.Sprintf("Fig 12: vary r (query) — %s m=%d navg=%d k=%d",
			p.Dataset, p.M, p.Navg, p.K),
		Columns: []string{"r", "method", "prec/recall", "ratio", "IOs", "time"},
	}
	for _, r := range rSweep {
		eps1 := breakpoint.EpsilonForR1(r)
		b1, err := breakpoint.Build1(ds, eps1)
		if err != nil {
			return nil, err
		}
		b2, err := breakpoint.Build2WithTargetR(ds, r, true)
		if err != nil {
			return nil, err
		}
		methods, err := buildApproxSet(ds, b1, b2, p)
		if err != nil {
			return nil, err
		}
		e3, err := exact.BuildExact3(blockio.NewMemDevice(p.BlockSize), ds)
		if err != nil {
			return nil, err
		}
		methods = append(methods, e3)
		for _, m := range methods {
			mm, err := MeasureQueries(m, ds, qs, p.K)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmtInt(r), mm.Name, fmtF(mm.Precision), fmtF(mm.Ratio),
				fmtF(mm.AvgIOs), fmtDur(mm.AvgTime),
			})
		}
	}
	t.Render(w)
	return t, nil
}

// buildApproxSet builds the five approximate methods over shared
// breakpoint sets.
func buildApproxSet(ds *tsdata.Dataset, b1, b2 *breakpoint.Set, p Params) ([]exact.Method, error) {
	var out []exact.Method
	a1b, err := approx.NewAppx1WithBreaks(blockio.NewMemDevice(p.BlockSize), ds, approx.KindB1, b1, p.KMax)
	if err != nil {
		return nil, err
	}
	a2b, err := approx.NewAppx2WithBreaks(blockio.NewMemDevice(p.BlockSize), ds, approx.KindB1, b1, p.KMax)
	if err != nil {
		return nil, err
	}
	a1, err := approx.NewAppx1WithBreaks(blockio.NewMemDevice(p.BlockSize), ds, approx.KindB2, b2, p.KMax)
	if err != nil {
		return nil, err
	}
	a2, err := approx.NewAppx2WithBreaks(blockio.NewMemDevice(p.BlockSize), ds, approx.KindB2, b2, p.KMax)
	if err != nil {
		return nil, err
	}
	a2p, err := approx.NewAppx2PlusWithBreaks(blockio.NewMemDevice(p.BlockSize), ds, approx.KindB2, b2, p.KMax)
	if err != nil {
		return nil, err
	}
	out = append(out, a1b, a2b, a1, a2, a2p)
	return out, nil
}

// selectedMethods builds the methods Figures 13–18 track (the three
// exact methods plus APPX1, APPX2, APPX2+ — the paper drops the basic
// variants after Fig. 12).
func selectedMethods(ds *tsdata.Dataset, p Params) ([]*core.BuildResult, error) {
	names := []core.MethodName{core.Exact1, core.Exact2, core.Exact3, core.Appx1, core.Appx2, core.Appx2P}
	out := make([]*core.BuildResult, 0, len(names))
	for _, n := range names {
		br, err := core.BuildMeasured(n, ds, p.config())
		if err != nil {
			return nil, err
		}
		out = append(out, br)
	}
	return out, nil
}
