package exp

import (
	"fmt"
	"io"
)

// scaleRow measures size/build/query metrics for one dataset setting —
// the shared engine behind Figures 13, 14, 19.
func scaleRow(t *Table, label string, p Params) error {
	ds, err := p.MakeDataset()
	if err != nil {
		return err
	}
	qs := p.MakeQueries(ds)
	builds, err := selectedMethods(ds, p)
	if err != nil {
		return err
	}
	for _, br := range builds {
		mm, err := MeasureQueries(br.Method, ds, qs, p.K)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			label, br.Method.Name(),
			fmtBytes(br.IndexBytes), fmtDur(br.BuildTime),
			fmtF(mm.AvgIOs), fmtDur(mm.AvgTime),
		})
	}
	return nil
}

var scaleColumns = []string{"setting", "method", "index bytes", "build time", "query IOs", "query time"}

// Fig13 reproduces the scalability-in-m study (Fig. 13a–d): index
// size, build time, query IOs and query time for EXACT1/2/3 and
// APPX1/2/2+ as the number of objects grows.
func Fig13(w io.Writer, p Params, mSweep []int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Fig 13: vary m — %s navg=%d k=%d r=%d", p.Dataset, p.Navg, p.K, p.R),
		Columns: scaleColumns,
	}
	for _, m := range mSweep {
		if err := scaleRow(t, fmt.Sprintf("m=%d", m), p.Scaled(m, 0)); err != nil {
			return nil, err
		}
	}
	t.Render(w)
	return t, nil
}

// Fig14 reproduces the scalability-in-navg study (Fig. 14a–d).
func Fig14(w io.Writer, p Params, navgSweep []int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Fig 14: vary navg — %s m=%d k=%d r=%d", p.Dataset, p.M, p.K, p.R),
		Columns: scaleColumns,
	}
	for _, navg := range navgSweep {
		if err := scaleRow(t, fmt.Sprintf("navg=%d", navg), p.Scaled(0, navg)); err != nil {
			return nil, err
		}
	}
	t.Render(w)
	return t, nil
}

// Fig15 reproduces the quality-vs-scale study (Fig. 15a–d):
// precision/recall and approximation ratio of APPX1, APPX2, APPX2+ as
// m and navg grow.
func Fig15(w io.Writer, p Params, mSweep, navgSweep []int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Fig 15: quality vs scale — %s k=%d r=%d", p.Dataset, p.K, p.R),
		Columns: []string{"setting", "method", "prec/recall", "ratio"},
	}
	row := func(label string, p Params) error {
		ds, err := p.MakeDataset()
		if err != nil {
			return err
		}
		qs := p.MakeQueries(ds)
		builds, err := selectedMethods(ds, p)
		if err != nil {
			return err
		}
		for _, br := range builds {
			if br.Method.Name() == "EXACT1" || br.Method.Name() == "EXACT2" || br.Method.Name() == "EXACT3" {
				continue
			}
			mm, err := MeasureQueries(br.Method, ds, qs, p.K)
			if err != nil {
				return err
			}
			t.Rows = append(t.Rows, []string{label, br.Method.Name(), fmtF(mm.Precision), fmtF(mm.Ratio)})
		}
		return nil
	}
	for _, m := range mSweep {
		if err := row(fmt.Sprintf("m=%d", m), p.Scaled(m, 0)); err != nil {
			return nil, err
		}
	}
	for _, navg := range navgSweep {
		if err := row(fmt.Sprintf("navg=%d", navg), p.Scaled(0, navg)); err != nil {
			return nil, err
		}
	}
	t.Render(w)
	return t, nil
}

// Fig16 reproduces the query-interval-length study (Fig. 16a–d): IOs,
// query time, precision and ratio as (t2-t1) grows from 2% to 50% of
// T. EXACT1's linear dependence on the interval is the headline.
func Fig16(w io.Writer, p Params, fracs []float64) (*Table, error) {
	ds, err := p.MakeDataset()
	if err != nil {
		return nil, err
	}
	builds, err := selectedMethods(ds, p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig 16: vary (t2-t1) — %s m=%d navg=%d k=%d", p.Dataset, p.M, p.Navg, p.K),
		Columns: []string{"(t2-t1)/T", "method", "IOs", "time", "prec/recall", "ratio"},
	}
	for _, f := range fracs {
		pf := p
		pf.IntervalFrac = f
		qs := pf.MakeQueries(ds)
		for _, br := range builds {
			mm, err := MeasureQueries(br.Method, ds, qs, p.K)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f%%", f*100), br.Method.Name(),
				fmtF(mm.AvgIOs), fmtDur(mm.AvgTime), fmtF(mm.Precision), fmtF(mm.Ratio),
			})
		}
	}
	t.Render(w)
	return t, nil
}

// Fig17 reproduces the vary-k study (Fig. 17a–d).
func Fig17(w io.Writer, p Params, ks []int) (*Table, error) {
	ds, err := p.MakeDataset()
	if err != nil {
		return nil, err
	}
	qs := p.MakeQueries(ds)
	builds, err := selectedMethods(ds, p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Fig 17: vary k — %s m=%d navg=%d kmax=%d", p.Dataset, p.M, p.Navg, p.KMax),
		Columns: []string{"k", "method", "IOs", "time", "prec/recall", "ratio"},
	}
	for _, k := range ks {
		if k > p.KMax {
			continue
		}
		for _, br := range builds {
			mm, err := MeasureQueries(br.Method, ds, qs, k)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmtInt(k), br.Method.Name(),
				fmtF(mm.AvgIOs), fmtDur(mm.AvgTime), fmtF(mm.Precision), fmtF(mm.Ratio),
			})
		}
	}
	t.Render(w)
	return t, nil
}

// Fig18 reproduces the vary-kmax study (Fig. 18a–d): kmax linearly
// affects the approximate methods' size and build cost but not query
// cost at fixed k; exact methods are unaffected.
func Fig18(w io.Writer, p Params, kmaxes []int) (*Table, error) {
	ds, err := p.MakeDataset()
	if err != nil {
		return nil, err
	}
	qs := p.MakeQueries(ds)
	t := &Table{
		Title:   fmt.Sprintf("Fig 18: vary kmax — %s m=%d navg=%d k=%d r=%d", p.Dataset, p.M, p.Navg, p.K, p.R),
		Columns: scaleColumns,
	}
	for _, kmax := range kmaxes {
		pk := p
		pk.KMax = kmax
		builds, err := selectedMethods(ds, pk)
		if err != nil {
			return nil, err
		}
		for _, br := range builds {
			k := p.K
			if k > kmax {
				k = kmax
			}
			mm, err := MeasureQueries(br.Method, ds, qs, k)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("kmax=%d", kmax), br.Method.Name(),
				fmtBytes(br.IndexBytes), fmtDur(br.BuildTime),
				fmtF(mm.AvgIOs), fmtDur(mm.AvgTime),
			})
		}
	}
	t.Render(w)
	return t, nil
}
