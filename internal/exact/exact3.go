package exact

import (
	"fmt"
	"sort"
	"sync"

	"temporalrank/internal/blockio"
	"temporalrank/internal/itree"
	"temporalrank/internal/topk"
	"temporalrank/internal/trerr"
	"temporalrank/internal/tsdata"
)

// exact3PayloadSize: series id (4) + V1, V2 (16) + prefix σ_i(I_{i,ℓ})
// (8). The segment's time endpoints equal the interval bounds [lo, hi).
const exact3PayloadSize = 4 + 16 + 8

// Exact3 indexes the I⁻ decomposition of every object in one external
// interval tree; a top-k query issues two stabbing queries (at t1 and
// t2) and applies Eq. (2) per object — the paper's best exact method.
//
// Each object also contributes two zero-valued sentinel intervals
// covering the time before its first and after its last vertex, so a
// stab anywhere in the global domain returns exactly one entry per
// object and Eq. (2) needs no per-object clamping.
type Exact3 struct {
	dev  blockio.Device
	tree *itree.Tree
	m    int

	domainLo, domainHi float64

	frontier []vertex
	// builtEnd[i] is object i's last vertex time at build; appends past
	// it live in the in-memory tail until the next rebuild (the static
	// interval tree is read-only; see Append).
	builtEnd []float64
	// tails is indexed by series ID (not a map: the stab visitor checks
	// it once per interval, and a map lookup there puts a hash on the
	// hot path for every object on every query).
	tails [][]tailEntry
}

// tailEntry mirrors an interval-tree entry for appended segments.
type tailEntry struct {
	seg    tsdata.Segment
	prefix float64 // σ_i(t_{i,0}, seg.T2)
}

// BuildExact3 builds the interval tree for the dataset on dev.
func BuildExact3(dev blockio.Device, ds *tsdata.Dataset) (*Exact3, error) {
	m := ds.NumSeries()
	// Sentinels need strictly positive width beyond the domain.
	pad := ds.Span() * 0.01
	if pad <= 0 {
		pad = 1
	}
	lo := ds.Start() - pad
	hi := ds.End() + pad

	intervals := make([]itree.Interval, 0, ds.NumSegments()+2*m)
	for _, s := range ds.AllSeries() {
		n := s.NumSegments()
		// Left sentinel: zero function before the object begins.
		if s.Start() > lo {
			intervals = append(intervals, sentinelInterval(s.ID, lo, s.Start(), 0))
		}
		for j := 0; j < n; j++ {
			seg := s.Segment(j)
			p := make([]byte, exact3PayloadSize)
			putSeriesID(p[0:], s.ID)
			putF64(p[4:], seg.V1)
			putF64(p[12:], seg.V2)
			putF64(p[20:], s.Prefix(j+1))
			intervals = append(intervals, itree.Interval{Lo: seg.T1, Hi: seg.T2, Payload: p})
		}
		// Right sentinel: zero function after the object ends, carrying
		// the full prefix.
		intervals = append(intervals, sentinelInterval(s.ID, s.End(), hi, s.Total()))
	}
	tree, err := itree.Build(dev, exact3PayloadSize, intervals)
	if err != nil {
		return nil, fmt.Errorf("exact3: %w", err)
	}
	frontier := make([]vertex, m)
	builtEnd := make([]float64, m)
	for i, s := range ds.AllSeries() {
		frontier[i] = vertex{t: s.End(), v: s.VertexValue(s.NumSegments())}
		builtEnd[i] = s.End()
	}
	return &Exact3{
		dev:      dev,
		tree:     tree,
		m:        m,
		domainLo: lo,
		domainHi: hi,
		frontier: frontier,
		builtEnd: builtEnd,
		tails:    make([][]tailEntry, ds.NumSeries()),
	}, nil
}

func sentinelInterval(id tsdata.SeriesID, lo, hi, prefix float64) itree.Interval {
	p := make([]byte, exact3PayloadSize)
	putSeriesID(p[0:], id)
	putF64(p[4:], 0)
	putF64(p[12:], 0)
	putF64(p[20:], prefix)
	return itree.Interval{Lo: lo, Hi: hi, Payload: p}
}

// Name implements Method.
func (e *Exact3) Name() string { return "EXACT3" }

// Device implements Method.
func (e *Exact3) Device() blockio.Device { return e.dev }

// IndexPages implements Method.
func (e *Exact3) IndexPages() int { return e.dev.NumPages() }

// Seal implements Sealer. EXACT3 is the natural sealing target: the
// interval tree is static by construction (appends land in the
// in-memory tail), so a sealed EXACT3 keeps full Append support while
// every stab runs lock-free over one contiguous slab.
func (e *Exact3) Seal() error {
	ar, err := blockio.Seal(e.dev)
	if err != nil {
		return err
	}
	old := e.dev
	e.dev = ar
	e.tree.SetDevice(ar)
	return old.Close()
}

// TopK implements Method: two stabbing queries then the shared top-k
// pass.
func (e *Exact3) TopK(k int, t1, t2 float64) ([]topk.Item, error) {
	sums, err := e.allScores(t1, t2)
	if err != nil {
		return nil, err
	}
	items := collectTopK(k, *sums)
	putScores(sums)
	return items, nil
}

// scorePool recycles the per-query σ-vectors (one float64 per object,
// two vectors per query) — the largest single allocation on the EXACT3
// read path. It traffics in *[]float64 so Get and Put round-trip the
// same pointer object: putting the slice value (or a fresh pointer to
// it) would re-box it on every release, costing an allocation per
// vector per query.
var scorePool sync.Pool

// getScores returns a pointer to a zeroed score slice of length m.
//
//tr:hotpath
func getScores(m int) *[]float64 {
	if v := scorePool.Get(); v != nil {
		p := v.(*[]float64)
		if cap(*p) >= m {
			s := (*p)[:m]
			for i := range s {
				s[i] = 0
			}
			*p = s
			return p
		}
	}
	//tr:alloc-ok one-time growth: steady-state pool reuse keeps the vector
	s := make([]float64, m)
	return &s
}

// putScores returns a pointer obtained from getScores to the pool.
//
//tr:hotpath
func putScores(p *[]float64) {
	if cap(*p) == 0 {
		return
	}
	scorePool.Put(p)
}

// allScores computes σ_i(t1,t2) for every object via two stabs. The
// returned vector comes from scorePool; callers release it with
// putScores once the values are consumed.
func (e *Exact3) allScores(t1, t2 float64) (*[]float64, error) {
	if err := validateQuery(t1, t2); err != nil {
		return nil, err
	}
	hi, err := e.stabSigma(t2)
	if err != nil {
		return nil, err
	}
	lo, err := e.stabSigma(t1)
	if err != nil {
		putScores(hi)
		return nil, err
	}
	h, l := *hi, *lo
	for i := range h {
		h[i] -= l[i]
	}
	putScores(lo)
	return hi, nil
}

// clampStatic confines a stab coordinate to where the static tree's
// sentinels guarantee exactly one interval per object. Values beyond
// the built domain are snapped just inside the right sentinel, which is
// correct because every object is flat zero there (appends past the
// domain are resolved against the tail overlay with the unclamped t).
func (e *Exact3) clampStatic(t float64) float64 {
	if t < e.domainLo {
		return e.domainLo
	}
	if t >= e.domainHi {
		return e.domainHi - (e.domainHi-e.domainLo)*1e-12
	}
	return t
}

// stabSigma returns σ_i(t_{i,0}, t) for every object i: a stab at t
// yields each object's covering interval, whose prefix minus the
// partial trapezoid beyond t gives the prefix aggregate at t. Appended
// tails override the static tree's right sentinels.
func (e *Exact3) stabSigma(t float64) (*[]float64, error) {
	outp := getScores(e.m)
	out := *outp
	stabT := e.clampStatic(t)
	err := e.tree.Stab(stabT, func(iv itree.Interval) bool {
		id := getSeriesID(iv.Payload[0:])
		// If the object has tail segments and t lies at/after the end
		// of the built data, the tail path computes this value instead.
		if tail := e.tails[id]; len(tail) > 0 && t >= e.builtEnd[int(id)] {
			out[id] = tailSigma(tail, t)
			return true
		}
		seg := tsdata.Segment{T1: iv.Lo, T2: iv.Hi, V1: getF64(iv.Payload[4:]), V2: getF64(iv.Payload[12:])}
		prefix := getF64(iv.Payload[20:])
		out[id] = prefix - seg.IntegralFrom(stabT)
		return true
	})
	if err != nil {
		putScores(outp)
		return nil, err
	}
	return outp, nil
}

// tailSigma evaluates σ up to t against the append tail (sorted by
// segment start).
func tailSigma(tail []tailEntry, t float64) float64 {
	// Before the first tail segment: the prefix at the built end equals
	// the first tail prefix minus that segment's full area.
	first := tail[0]
	if t <= first.seg.T1 {
		return first.prefix - first.seg.Integral()
	}
	// Find the last tail segment starting at or before t.
	idx := sort.Search(len(tail), func(i int) bool { return tail[i].seg.T1 > t }) - 1
	te := tail[idx]
	if t >= te.seg.T2 {
		return te.prefix
	}
	return te.prefix - te.seg.IntegralFrom(t)
}

// Score implements Method. The interval tree has no single-object
// access path (that is EXACT2's specialty), so this runs the two stabs
// and projects one component.
func (e *Exact3) Score(id tsdata.SeriesID, t1, t2 float64) (float64, error) {
	if id < 0 || int(id) >= e.m {
		return 0, fmt.Errorf("exact3: %w: %d", trerr.ErrUnknownSeries, id)
	}
	sums, err := e.allScores(t1, t2)
	if err != nil {
		return 0, err
	}
	s := (*sums)[id]
	putScores(sums)
	return s, nil
}

// Append implements Method. New segments land in an in-memory tail
// overlay consulted by queries; a production deployment would fold the
// tail into the static tree on rebuild (the paper's amortized
// O(log_B N) insert uses the dynamic Arge–Vitter tree instead).
func (e *Exact3) Append(id tsdata.SeriesID, t, v float64) error {
	if id < 0 || int(id) >= e.m {
		return fmt.Errorf("exact3: %w: %d", trerr.ErrUnknownSeries, id)
	}
	fr := e.frontier[id]
	seg := tsdata.Segment{T1: fr.t, T2: t, V1: fr.v, V2: v}
	if err := seg.Validate(); err != nil {
		return err
	}
	var prevPrefix float64
	if tail := e.tails[id]; len(tail) > 0 {
		prevPrefix = tail[len(tail)-1].prefix
	} else {
		// σ_i at the built end: recover it with a stab just inside the
		// right sentinel (prefix field of the sentinel).
		err := e.tree.Stab(e.clampStatic(e.domainHi), func(iv itree.Interval) bool {
			if getSeriesID(iv.Payload[0:]) == id {
				prevPrefix = getF64(iv.Payload[20:])
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	e.tails[id] = append(e.tails[id], tailEntry{seg: seg, prefix: prevPrefix + seg.Integral()})
	e.frontier[id] = vertex{t: t, v: v}
	return nil
}

// TailSegments returns the number of segments living in the overlay
// (diagnostics; large values suggest a rebuild).
func (e *Exact3) TailSegments() int {
	n := 0
	for _, t := range e.tails {
		n += len(t)
	}
	return n
}

// InstantTopK answers the instant top-k query top-k(t) of the paper's
// predecessor work (Li, Yi, Le: "Top-k queries on temporal data", VLDB
// Journal 2010): the k objects with the largest g_i(t) at one time
// instant. A single stabbing query suffices — each returned interval
// carries its object's segment, evaluated at t. Objects outside their
// domain at t score 0 (their sentinel's flat-zero segment).
func (e *Exact3) InstantTopK(k int, t float64) ([]topk.Item, error) {
	if err := validateQuery(t, t); err != nil {
		return nil, err
	}
	c := topk.GetCollector(k)
	defer c.Release()
	stabT := e.clampStatic(t)
	err := e.tree.Stab(stabT, func(iv itree.Interval) bool {
		id := getSeriesID(iv.Payload[0:])
		if tail := e.tails[id]; len(tail) > 0 && t >= e.builtEnd[int(id)] {
			c.Add(id, tailAt(tail, t))
			return true
		}
		seg := tsdata.Segment{T1: iv.Lo, T2: iv.Hi, V1: getF64(iv.Payload[4:]), V2: getF64(iv.Payload[12:])}
		c.Add(id, seg.At(stabT))
		return true
	})
	if err != nil {
		return nil, err
	}
	return c.Results(), nil
}

// tailAt evaluates g at t against the append tail (0 beyond it).
func tailAt(tail []tailEntry, t float64) float64 {
	for _, te := range tail {
		if t >= te.seg.T1 && t <= te.seg.T2 {
			return te.seg.At(t)
		}
	}
	return 0
}
