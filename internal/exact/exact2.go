package exact

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"temporalrank/internal/blockio"
	"temporalrank/internal/bptree"
	"temporalrank/internal/topk"
	"temporalrank/internal/trerr"
	"temporalrank/internal/tsdata"
)

// exact2ValueSize is the per-entry payload of an object tree T_i:
// V1, V2 of segment g_{i,ℓ} (its endpoints in time are [previous key,
// key]) plus T1 (the segment's left endpoint, needed because keys of
// neighbouring entries are not co-resident in a page) and the prefix
// aggregate σ_i(I_{i,ℓ}). The segment right endpoint t_{i,ℓ} is the
// tree key.
const exact2ValueSize = 8 + 8 + 8 + 8 // T1, V1, V2, prefix

// Exact2 is the "forest of B+-trees" method: one prefix-sum tree per
// object. A query runs Eq. (2) against every tree.
type Exact2 struct {
	dev   blockio.Device
	trees []*bptree.Tree
	// Per-object domains for query clamping.
	starts, ends []float64
	frontier     []vertex
}

// BuildExact2 bulk-loads the m object trees onto dev.
func BuildExact2(dev blockio.Device, ds *tsdata.Dataset) (*Exact2, error) {
	return BuildExact2Parallel(dev, ds, 1)
}

// BuildExact2Parallel bulk-loads the m object trees with up to workers
// goroutines. The forest answers queries identically to the sequential
// build: each tree is built independently and the device serializes
// page allocation, so only the interleaving of page IDs across trees
// differs. Raw-device IO counts match the sequential build too; under
// a BufferPool the interleaving perturbs LRU order, so cached build
// IO can differ run to run. workers <= 1 builds sequentially with
// deterministic page order.
func BuildExact2Parallel(dev blockio.Device, ds *tsdata.Dataset, workers int) (*Exact2, error) {
	m := ds.NumSeries()
	e := &Exact2{
		dev:      dev,
		trees:    make([]*bptree.Tree, m),
		starts:   make([]float64, m),
		ends:     make([]float64, m),
		frontier: make([]vertex, m),
	}
	series := ds.AllSeries()
	// buildTree is the single copy of the per-object entry layout,
	// shared by the sequential and parallel paths. Distinct i never
	// collide on e's slices, so no locking is needed around the stores.
	buildTree := func(i int) error {
		s := series[i]
		n := s.NumSegments()
		entries := make([]bptree.Entry, n)
		for j := 0; j < n; j++ {
			seg := s.Segment(j)
			v := make([]byte, exact2ValueSize)
			putF64(v[0:], seg.T1)
			putF64(v[8:], seg.V1)
			putF64(v[16:], seg.V2)
			putF64(v[24:], s.Prefix(j+1))
			entries[j] = bptree.Entry{Key: seg.T2, Value: v}
		}
		tree, err := bptree.BulkLoad(dev, exact2ValueSize, entries)
		if err != nil {
			return fmt.Errorf("exact2: bulk load tree %d: %w", i, err)
		}
		e.trees[i] = tree
		e.starts[i] = s.Start()
		e.ends[i] = s.End()
		e.frontier[i] = vertex{t: s.End(), v: s.VertexValue(n)}
		return nil
	}
	if workers <= 1 {
		for i := 0; i < m; i++ {
			if err := buildTree(i); err != nil {
				return nil, err
			}
		}
		return e, nil
	}
	if workers > m {
		workers = m
	}
	var (
		wg     sync.WaitGroup
		next   = make(chan int)
		mu     sync.Mutex
		ferr   error
		failed atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if failed.Load() {
					continue // drain without building once a tree failed
				}
				if err := buildTree(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if ferr == nil {
						ferr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < m && !failed.Load(); i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if ferr != nil {
		return nil, ferr
	}
	return e, nil
}

// Name implements Method.
func (e *Exact2) Name() string { return "EXACT2" }

// Device implements Method.
func (e *Exact2) Device() blockio.Device { return e.dev }

// IndexPages implements Method.
func (e *Exact2) IndexPages() int { return e.dev.NumPages() }

// SetDevice re-seats the forest — and every per-object tree — onto a
// device holding the same page image. Exported because Appx2Plus's
// rescoring forest shares its device with the dyadic lists: when that
// combined device is sealed, the forest must be re-seated by the
// sealer. Callers must guarantee no operation is in flight.
func (e *Exact2) SetDevice(dev blockio.Device) {
	e.dev = dev
	for _, t := range e.trees {
		t.SetDevice(dev)
	}
}

// Seal implements Sealer (see Exact1.Seal: Append fails once sealed).
func (e *Exact2) Seal() error {
	ar, err := blockio.Seal(e.dev)
	if err != nil {
		return err
	}
	old := e.dev
	e.SetDevice(ar)
	return old.Close()
}

// TopK implements Method.
func (e *Exact2) TopK(k int, t1, t2 float64) ([]topk.Item, error) {
	if err := validateQuery(t1, t2); err != nil {
		return nil, err
	}
	sums := make([]float64, len(e.trees))
	for i := range e.trees {
		s, err := e.Score(tsdata.SeriesID(i), t1, t2)
		if err != nil {
			return nil, err
		}
		sums[i] = s
	}
	return collectTopK(k, sums), nil
}

// Score implements Method: Eq. (2) with two O(log_B n_i) searches.
func (e *Exact2) Score(id tsdata.SeriesID, t1, t2 float64) (float64, error) {
	if id < 0 || int(id) >= len(e.trees) {
		return 0, fmt.Errorf("exact2: %w: %d", trerr.ErrUnknownSeries, id)
	}
	if err := validateQuery(t1, t2); err != nil {
		return 0, err
	}
	// Clamp to the object's domain; g_i is 0 outside it.
	if t1 < e.starts[id] {
		t1 = e.starts[id]
	}
	if t2 > e.ends[id] {
		t2 = e.ends[id]
	}
	if t2 <= t1 {
		return 0, nil
	}
	hi, err := e.sigmaTo(id, t2)
	if err != nil {
		return 0, err
	}
	lo, err := e.sigmaTo(id, t1)
	if err != nil {
		return 0, err
	}
	return hi - lo, nil
}

// sigmaTo returns σ_i(t_{i,0}, t) for t within the object's domain:
// locate the entry e_L whose key t_{i,L} is the first >= t, then
// subtract the part of segment g_L beyond t from the stored prefix.
func (e *Exact2) sigmaTo(id tsdata.SeriesID, t float64) (float64, error) {
	cur, err := e.trees[id].SearchCeil(t)
	if errors.Is(err, bptree.ErrNotFound) {
		// t is past the last key: the object's domain was clamped, so
		// this is only reachable through floating-point equality edge
		// cases; the full prefix applies.
		_, v, lerr := e.trees[id].Last()
		if lerr != nil {
			return 0, lerr
		}
		return getF64(v[24:]), nil
	}
	if err != nil {
		return 0, err
	}
	defer cur.Close()
	key := cur.Key()
	v := cur.Value()
	seg := tsdata.Segment{T1: getF64(v[0:]), T2: key, V1: getF64(v[8:]), V2: getF64(v[16:])}
	prefix := getF64(v[24:])
	return prefix - seg.IntegralOver(t, key), nil
}

// Append implements Method: O(log_B n_i) — fetch σ_i(I_{i,n_i}) from
// the last entry of T_i, extend it with the new trapezoid, insert.
func (e *Exact2) Append(id tsdata.SeriesID, t, v float64) error {
	if id < 0 || int(id) >= len(e.trees) {
		return fmt.Errorf("exact2: %w: %d", trerr.ErrUnknownSeries, id)
	}
	fr := e.frontier[id]
	seg := tsdata.Segment{T1: fr.t, T2: t, V1: fr.v, V2: v}
	if err := seg.Validate(); err != nil {
		return err
	}
	_, lastVal, err := e.trees[id].Last()
	if err != nil {
		return err
	}
	prefix := getF64(lastVal[24:]) + seg.Integral()
	val := make([]byte, exact2ValueSize)
	putF64(val[0:], seg.T1)
	putF64(val[8:], seg.V1)
	putF64(val[16:], seg.V2)
	putF64(val[24:], prefix)
	if err := e.trees[id].Insert(seg.T2, val); err != nil {
		return err
	}
	e.frontier[id] = vertex{t: t, v: v}
	e.ends[id] = t
	return nil
}

// NumTrees returns m (diagnostics).
func (e *Exact2) NumTrees() int { return len(e.trees) }
