package exact

import (
	"errors"
	"testing"

	"temporalrank/internal/blockio"
)

// TestQueryFaultPropagation injects device failures at every possible
// point of a query and verifies each method returns the error instead
// of panicking or fabricating results.
func TestQueryFaultPropagation(t *testing.T) {
	ds := randomDataset(40, 20, 15, false)
	builders := []struct {
		name  string
		build func(dev blockio.Device) (Method, error)
	}{
		{"EXACT1", func(dev blockio.Device) (Method, error) { return BuildExact1(dev, ds) }},
		{"EXACT2", func(dev blockio.Device) (Method, error) { return BuildExact2(dev, ds) }},
		{"EXACT3", func(dev blockio.Device) (Method, error) { return BuildExact3(dev, ds) }},
	}
	t1 := ds.Start() + ds.Span()*0.2
	t2 := ds.Start() + ds.Span()*0.7
	for _, b := range builders {
		fd := blockio.NewFaultDevice(blockio.NewMemDevice(512), -1)
		m, err := b.build(fd)
		if err != nil {
			t.Fatalf("%s build: %v", b.name, err)
		}
		// Baseline: healthy query to learn the IO count.
		fd.ResetStats()
		if _, err := m.TopK(5, t1, t2); err != nil {
			t.Fatalf("%s healthy query: %v", b.name, err)
		}
		ops := int64(fd.Stats().Total())
		if ops == 0 {
			t.Fatalf("%s: healthy query did no IO", b.name)
		}
		// Fail at several budgets across the query's IO trace.
		for _, budget := range []int64{0, 1, ops / 2, ops - 1} {
			fd.Arm(budget)
			_, err := m.TopK(5, t1, t2)
			if err == nil {
				t.Errorf("%s: fault at budget %d/%d swallowed", b.name, budget, ops)
			} else if !errors.Is(err, blockio.ErrInjected) {
				t.Errorf("%s: fault at budget %d returned %v, want ErrInjected", b.name, budget, err)
			}
			fd.Disarm()
		}
		// After disarming, the index must still answer correctly.
		got, err := m.TopK(5, t1, t2)
		if err != nil {
			t.Fatalf("%s post-fault query: %v", b.name, err)
		}
		itemsMatch(t, b.name+"(recovered)", got, referenceTopK(ds, 5, t1, t2))
	}
}

// TestBuildFaultPropagation: failures during construction surface as
// errors.
func TestBuildFaultPropagation(t *testing.T) {
	ds := randomDataset(41, 10, 10, false)
	// Learn each build's healthy op count, then fail at fractions of it.
	healthy := func(build func(dev blockio.Device) error) int64 {
		dev := blockio.NewMemDevice(512)
		if err := build(dev); err != nil {
			t.Fatalf("healthy build failed: %v", err)
		}
		s := dev.Stats()
		return int64(s.Total() + s.Allocs)
	}
	builds := []struct {
		name string
		f    func(dev blockio.Device) error
	}{
		{"EXACT2", func(dev blockio.Device) error { _, err := BuildExact2(dev, ds); return err }},
		{"EXACT3", func(dev blockio.Device) error { _, err := BuildExact3(dev, ds); return err }},
	}
	for _, b := range builds {
		ops := healthy(b.f)
		for _, budget := range []int64{0, 1, ops / 2, ops - 1} {
			fd := blockio.NewFaultDevice(blockio.NewMemDevice(512), budget)
			if err := b.f(fd); !errors.Is(err, blockio.ErrInjected) {
				t.Errorf("%s build with budget %d/%d: err = %v, want ErrInjected", b.name, budget, ops, err)
			}
		}
	}
}

// TestAppendFaultPropagation: failures during appends surface too.
func TestAppendFaultPropagation(t *testing.T) {
	ds := randomDataset(42, 10, 10, false)
	fd := blockio.NewFaultDevice(blockio.NewMemDevice(512), -1)
	m, err := BuildExact2(fd, ds)
	if err != nil {
		t.Fatal(err)
	}
	fd.Arm(0)
	if err := m.Append(0, ds.End()+1, 5); !errors.Is(err, blockio.ErrInjected) {
		t.Errorf("append fault: err = %v, want ErrInjected", err)
	}
}
