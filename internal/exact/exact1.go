package exact

import (
	"errors"
	"fmt"

	"temporalrank/internal/blockio"
	"temporalrank/internal/bptree"
	"temporalrank/internal/extsort"
	"temporalrank/internal/topk"
	"temporalrank/internal/trerr"
	"temporalrank/internal/tsdata"
)

// exact1ValueSize is the leaf payload: series id (4) + T2, V1, V2 (24).
// The segment's left endpoint T1 is the tree key.
const exact1ValueSize = 4 + 24

// Exact1 is the paper's improved baseline: all N segments in one
// B+-tree keyed by left endpoint; queries sweep the leaf level across
// the query range maintaining one running sum per object.
type Exact1 struct {
	dev  blockio.Device
	tree *bptree.Tree
	m    int

	// maxDur is the longest segment duration in the index. A segment
	// overlapping [t1,t2] must have T1 in (t1-maxDur, t2], so the leaf
	// sweep starts at SearchCeil(t1-maxDur). The paper starts the scan
	// "at the segments containing t1", which a B+-tree on left
	// endpoints cannot locate exactly when segments straddle t1; the
	// maxDur look-back makes the sweep provably complete while keeping
	// the same asymptotics for realistic (short-segment) data.
	maxDur float64

	// frontier[i] is object i's current last vertex, so Append(id,t,v)
	// can form the new segment (the §4 update model appends at the
	// current time instance only).
	frontier []vertex
}

type vertex struct{ t, v float64 }

// BuildExact1 bulk-loads the index from the dataset onto dev.
func BuildExact1(dev blockio.Device, ds *tsdata.Dataset) (*Exact1, error) {
	flat := ds.FlatSegments()
	entries := make([]bptree.Entry, len(flat))
	var maxDur float64
	for i, ref := range flat {
		v := make([]byte, exact1ValueSize)
		putSeriesID(v[0:], ref.Series)
		putF64(v[4:], ref.Segment.T2)
		putF64(v[12:], ref.Segment.V1)
		putF64(v[20:], ref.Segment.V2)
		entries[i] = bptree.Entry{Key: ref.Segment.T1, Value: v}
		if d := ref.Segment.Duration(); d > maxDur {
			maxDur = d
		}
	}
	tree, err := bptree.BulkLoad(dev, exact1ValueSize, entries)
	if err != nil {
		return nil, fmt.Errorf("exact1: bulk load: %w", err)
	}
	frontier := make([]vertex, ds.NumSeries())
	for i, s := range ds.AllSeries() {
		frontier[i] = vertex{t: s.End(), v: s.VertexValue(s.NumSegments())}
	}
	return &Exact1{dev: dev, tree: tree, m: ds.NumSeries(), maxDur: maxDur, frontier: frontier}, nil
}

// BuildExact1External builds the same index through the out-of-core
// path: segments are externally sorted on scratch (internal/extsort, a
// stand-in for TPIE's sort) with an in-memory budget of budgetRecords
// records, then bulk-loaded. Byte-for-byte equivalent to BuildExact1;
// used when N exceeds memory.
func BuildExact1External(dev, scratch blockio.Device, ds *tsdata.Dataset, budgetRecords int) (*Exact1, error) {
	const recSize = 8 + exact1ValueSize // key T1 + value payload
	sorter, err := extsort.New(scratch, recSize, budgetRecords, func(a, b []byte) bool {
		ka := getF64(a[0:])
		kb := getF64(b[0:])
		if ka != kb {
			return ka < kb
		}
		// Tie-break on (series, left endpoint already equal): keep the
		// same deterministic order as Dataset.FlatSegments.
		return getSeriesID(a[8:]) < getSeriesID(b[8:])
	})
	if err != nil {
		return nil, err
	}
	var maxDur float64
	rec := make([]byte, recSize)
	for _, s := range ds.AllSeries() {
		for j := 0; j < s.NumSegments(); j++ {
			seg := s.Segment(j)
			putF64(rec[0:], seg.T1)
			putSeriesID(rec[8:], s.ID)
			putF64(rec[12:], seg.T2)
			putF64(rec[20:], seg.V1)
			putF64(rec[28:], seg.V2)
			if err := sorter.Add(rec); err != nil {
				return nil, err
			}
			if d := seg.Duration(); d > maxDur {
				maxDur = d
			}
		}
	}
	it, err := sorter.Sort()
	if err != nil {
		return nil, err
	}
	entries := make([]bptree.Entry, 0, ds.NumSegments())
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		v := make([]byte, exact1ValueSize)
		copy(v, r[8:])
		entries = append(entries, bptree.Entry{Key: getF64(r[0:]), Value: v})
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	tree, err := bptree.BulkLoad(dev, exact1ValueSize, entries)
	if err != nil {
		return nil, fmt.Errorf("exact1: bulk load: %w", err)
	}
	frontier := make([]vertex, ds.NumSeries())
	for i, s := range ds.AllSeries() {
		frontier[i] = vertex{t: s.End(), v: s.VertexValue(s.NumSegments())}
	}
	return &Exact1{dev: dev, tree: tree, m: ds.NumSeries(), maxDur: maxDur, frontier: frontier}, nil
}

// Name implements Method.
func (e *Exact1) Name() string { return "EXACT1" }

// Device implements Method.
func (e *Exact1) Device() blockio.Device { return e.dev }

// IndexPages implements Method.
func (e *Exact1) IndexPages() int { return e.dev.NumPages() }

// Seal implements Sealer: the tree's page image is packed into a
// read-only arena and the index re-seated onto it; the old device is
// closed. Append fails with blockio.ErrReadOnlyDevice afterwards
// (EXACT1 inserts into the sealed tree), so seal only ingest-quiesced
// generations — the memtable path does.
func (e *Exact1) Seal() error {
	ar, err := blockio.Seal(e.dev)
	if err != nil {
		return err
	}
	old := e.dev
	e.dev = ar
	e.tree.SetDevice(ar)
	return old.Close()
}

// TopK implements Method.
func (e *Exact1) TopK(k int, t1, t2 float64) ([]topk.Item, error) {
	sums, err := e.runningSums(t1, t2)
	if err != nil {
		return nil, err
	}
	return collectTopK(k, sums), nil
}

// Score implements Method. Exact1 has no per-object access path, so
// this performs the same sweep and picks one sum; it exists to satisfy
// the interface (the harness only calls Score on approximate methods
// and on Exact2/Exact3).
func (e *Exact1) Score(id tsdata.SeriesID, t1, t2 float64) (float64, error) {
	sums, err := e.runningSums(t1, t2)
	if err != nil {
		return 0, err
	}
	if int(id) >= len(sums) {
		return 0, fmt.Errorf("exact1: %w: %d", trerr.ErrUnknownSeries, id)
	}
	return sums[id], nil
}

// runningSums performs the leaf sweep, returning σ_i(t1,t2) for all i.
func (e *Exact1) runningSums(t1, t2 float64) ([]float64, error) {
	if err := validateQuery(t1, t2); err != nil {
		return nil, err
	}
	sums := make([]float64, e.m)
	cur, err := e.tree.SearchCeil(t1 - e.maxDur)
	if errors.Is(err, bptree.ErrNotFound) {
		return sums, nil
	}
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	for {
		segT1 := cur.Key()
		if segT1 > t2 {
			break
		}
		v := cur.Value()
		id := getSeriesID(v[0:])
		seg := tsdata.Segment{T1: segT1, T2: getF64(v[4:]), V1: getF64(v[12:]), V2: getF64(v[20:])}
		sums[id] += seg.IntegralOver(t1, t2)
		if !cur.Next() {
			break
		}
	}
	if cur.Err() != nil {
		return nil, cur.Err()
	}
	return sums, nil
}

// Append implements Method: O(log_B N) insert of the new segment
// formed by the object's current frontier and the new vertex (t, v).
func (e *Exact1) Append(id tsdata.SeriesID, t, v float64) error {
	if int(id) >= e.m || id < 0 {
		return fmt.Errorf("exact1: %w: %d", trerr.ErrUnknownSeries, id)
	}
	fr := e.frontier[id]
	seg := tsdata.Segment{T1: fr.t, T2: t, V1: fr.v, V2: v}
	if err := seg.Validate(); err != nil {
		return err
	}
	val := make([]byte, exact1ValueSize)
	putSeriesID(val[0:], id)
	putF64(val[4:], seg.T2)
	putF64(val[12:], seg.V1)
	putF64(val[20:], seg.V2)
	if d := seg.Duration(); d > e.maxDur {
		e.maxDur = d
	}
	if err := e.tree.Insert(seg.T1, val); err != nil {
		return err
	}
	e.frontier[id] = vertex{t: t, v: v}
	return nil
}
