// Package exact implements the paper's three exact methods for
// aggregate top-k queries on temporal data (§2):
//
//   - Exact1: one B+-tree over all N segments keyed by left endpoint;
//     a query scans every segment overlapping [t1,t2] maintaining m
//     running sums. O(log_B N + Σq_i/B) IOs, degrading to O(N/B).
//   - Exact2: a forest of m B+-trees, one per object, with prefix sums
//     σ_i(I_{i,ℓ}) in the leaves; a query does two searches per tree
//     and applies Eq. (2). O(Σ log_B n_i) IOs.
//   - Exact3: a single external interval tree over the I⁻ interval
//     decomposition of all objects; a query is two stabbing queries.
//     O(log_B N + m/B) IOs — the paper's best exact method.
//
// All three return identical answers; they differ only in IO behaviour.
package exact

import (
	"encoding/binary"
	"fmt"
	"math"

	"temporalrank/internal/blockio"
	"temporalrank/internal/topk"
	"temporalrank/internal/trerr"
	"temporalrank/internal/tsdata"
)

// Method is the common behaviour of the exact indexes (and is also
// satisfied by the approximate indexes in internal/approx, which lets
// the experiment harness treat all eight methods uniformly).
type Method interface {
	// Name returns the paper's name for the method (e.g. "EXACT3").
	Name() string
	// TopK answers top-k(t1,t2,sum): the k objects with the largest
	// σ_i(t1,t2), ordered by descending aggregate score.
	TopK(k int, t1, t2 float64) ([]topk.Item, error)
	// Score returns the method's estimate of σ_i(t1,t2) for one object
	// (exact methods return the exact value).
	Score(id tsdata.SeriesID, t1, t2 float64) (float64, error)
	// Device exposes the index's block device for IO accounting.
	Device() blockio.Device
	// IndexPages returns the number of live pages the index occupies.
	IndexPages() int
	// Append applies the §4 update model: extend object id with a new
	// segment ending at (t, v).
	Append(id tsdata.SeriesID, t, v float64) error
}

// Sealer is implemented by indexes whose post-build page image can be
// sealed into a read-only blockio.Arena: one contiguous slab, lock-
// and refcount-free zero-copy views, flat GC cost. Sealing freezes the
// device — methods that write pages on Append (EXACT1, EXACT2, and
// APPX2+'s rescoring forest) fail with blockio.ErrReadOnlyDevice once
// sealed, so sealing pairs with the memtable ingest path, where
// appends buffer above the index and each compacted generation is
// rebuilt and resealed.
type Sealer interface {
	Seal() error
}

// collectTopK runs the shared final step of every method: push all m
// aggregate scores through a size-k priority queue (pooled — this runs
// once per query on every exact path).
func collectTopK(k int, scores []float64) []topk.Item {
	c := topk.GetCollector(k)
	defer c.Release()
	for i, s := range scores {
		c.Add(tsdata.SeriesID(i), s)
	}
	return c.Results()
}

func putF64(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }
func getF64(b []byte) float64    { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

func putSeriesID(b []byte, id tsdata.SeriesID) { binary.LittleEndian.PutUint32(b, uint32(id)) }
func getSeriesID(b []byte) tsdata.SeriesID     { return tsdata.SeriesID(binary.LittleEndian.Uint32(b)) }

func validateQuery(t1, t2 float64) error {
	if math.IsNaN(t1) || math.IsNaN(t2) || math.IsInf(t1, 0) || math.IsInf(t2, 0) {
		return fmt.Errorf("exact: %w: non-finite [%g,%g]", trerr.ErrBadInterval, t1, t2)
	}
	if t2 < t1 {
		return fmt.Errorf("exact: %w: inverted [%g,%g]", trerr.ErrBadInterval, t1, t2)
	}
	return nil
}
