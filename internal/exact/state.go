package exact

import (
	"fmt"

	"temporalrank/internal/blockio"
	"temporalrank/internal/bptree"
	"temporalrank/internal/itree"
	"temporalrank/internal/trerr"
	"temporalrank/internal/tsdata"
)

// This file is the persistence boundary of the exact methods. Every
// structure's node pages already live on its blockio.Device, so a
// checkpoint stores (a) the raw device image and (b) the small typed
// State captured here; Restore reattaches handles to the restored
// pages without rebuilding anything.
//
// Per-object frontiers (and Exact2's start/end clamps) are NOT part of
// the state: the append path advances the dataset and every index
// frontier in one locked step, so a checkpointed dataset always agrees
// with its indexes' frontiers and Restore rederives them from the
// restored series. Exact3's tail overlay and built-end watermarks are
// the exception — they encode which appends the static interval tree
// has not absorbed yet — so they are serialized.

// Exact1State is Exact1's handle state.
type Exact1State struct {
	Tree   bptree.Meta
	MaxDur float64
}

// State captures the handle state for checkpointing.
func (e *Exact1) State() Exact1State {
	return Exact1State{Tree: e.tree.Meta(), MaxDur: e.maxDur}
}

// RestoreExact1 reattaches an Exact1 to its restored device image.
func RestoreExact1(dev blockio.Device, ds *tsdata.Dataset, st Exact1State) (*Exact1, error) {
	tree, err := bptree.Open(dev, st.Tree)
	if err != nil {
		return nil, fmt.Errorf("exact1: restore: %v: %w", err, trerr.ErrBadSnapshot)
	}
	if tree.Len() != ds.NumSegments() {
		return nil, fmt.Errorf("exact1: restore: tree has %d entries for %d segments: %w",
			tree.Len(), ds.NumSegments(), trerr.ErrBadSnapshot)
	}
	return &Exact1{
		dev:      dev,
		tree:     tree,
		m:        ds.NumSeries(),
		maxDur:   st.MaxDur,
		frontier: datasetFrontier(ds),
	}, nil
}

// Exact2State is Exact2's handle state: one tree meta per object.
type Exact2State struct {
	Trees []bptree.Meta
}

// State captures the handle state for checkpointing.
func (e *Exact2) State() Exact2State {
	st := Exact2State{Trees: make([]bptree.Meta, len(e.trees))}
	for i, t := range e.trees {
		st.Trees[i] = t.Meta()
	}
	return st
}

// RestoreExact2 reattaches the forest to its restored device image.
func RestoreExact2(dev blockio.Device, ds *tsdata.Dataset, st Exact2State) (*Exact2, error) {
	m := ds.NumSeries()
	if len(st.Trees) != m {
		return nil, fmt.Errorf("exact2: restore: %d trees for %d objects: %w", len(st.Trees), m, trerr.ErrBadSnapshot)
	}
	e := &Exact2{
		dev:      dev,
		trees:    make([]*bptree.Tree, m),
		starts:   make([]float64, m),
		ends:     make([]float64, m),
		frontier: datasetFrontier(ds),
	}
	for i, s := range ds.AllSeries() {
		t, err := bptree.Open(dev, st.Trees[i])
		if err != nil {
			return nil, fmt.Errorf("exact2: restore tree %d: %v: %w", i, err, trerr.ErrBadSnapshot)
		}
		if t.Len() != s.NumSegments() {
			return nil, fmt.Errorf("exact2: restore tree %d: %d entries for %d segments: %w",
				i, t.Len(), s.NumSegments(), trerr.ErrBadSnapshot)
		}
		e.trees[i] = t
		e.starts[i] = s.Start()
		e.ends[i] = s.End()
	}
	return e, nil
}

// Exact3Tail is the exported form of one tail-overlay entry: a segment
// appended after the static interval tree was built, with its running
// prefix σ_i(t_{i,0}, Seg.T2).
type Exact3Tail struct {
	Seg    tsdata.Segment
	Prefix float64
}

// Exact3State is Exact3's handle state, including the append overlay
// the static tree has not absorbed.
type Exact3State struct {
	Tree               itree.Meta
	DomainLo, DomainHi float64
	BuiltEnd           []float64
	Tails              map[tsdata.SeriesID][]Exact3Tail
}

// State captures the handle state for checkpointing.
func (e *Exact3) State() Exact3State {
	st := Exact3State{
		Tree:     e.tree.Meta(),
		DomainLo: e.domainLo,
		DomainHi: e.domainHi,
		BuiltEnd: append([]float64(nil), e.builtEnd...),
		Tails:    make(map[tsdata.SeriesID][]Exact3Tail, len(e.tails)),
	}
	for id, tail := range e.tails {
		if len(tail) == 0 {
			continue // keep the sparse wire shape: only appended series
		}
		out := make([]Exact3Tail, len(tail))
		for j, te := range tail {
			out[j] = Exact3Tail{Seg: te.seg, Prefix: te.prefix}
		}
		st.Tails[tsdata.SeriesID(id)] = out
	}
	return st
}

// RestoreExact3 reattaches an Exact3 to its restored device image.
func RestoreExact3(dev blockio.Device, ds *tsdata.Dataset, st Exact3State) (*Exact3, error) {
	m := ds.NumSeries()
	if len(st.BuiltEnd) != m {
		return nil, fmt.Errorf("exact3: restore: %d built-end marks for %d objects: %w",
			len(st.BuiltEnd), m, trerr.ErrBadSnapshot)
	}
	tree, err := itree.Open(dev, st.Tree)
	if err != nil {
		return nil, fmt.Errorf("exact3: restore: %v: %w", err, trerr.ErrBadSnapshot)
	}
	e := &Exact3{
		dev:      dev,
		tree:     tree,
		m:        m,
		domainLo: st.DomainLo,
		domainHi: st.DomainHi,
		frontier: datasetFrontier(ds),
		builtEnd: append([]float64(nil), st.BuiltEnd...),
		tails:    make([][]tailEntry, m),
	}
	for id, tail := range st.Tails {
		if int(id) < 0 || int(id) >= m {
			return nil, fmt.Errorf("exact3: restore: tail for unknown series %d: %w", id, trerr.ErrBadSnapshot)
		}
		in := make([]tailEntry, len(tail))
		for j, te := range tail {
			in[j] = tailEntry{seg: te.Seg, prefix: te.Prefix}
		}
		e.tails[id] = in
	}
	return e, nil
}

// datasetFrontier derives the per-object append frontier from the
// dataset (valid because dataset and index frontiers advance in
// lockstep through the locked append path).
func datasetFrontier(ds *tsdata.Dataset) []vertex {
	frontier := make([]vertex, ds.NumSeries())
	for i, s := range ds.AllSeries() {
		frontier[i] = vertex{t: s.End(), v: s.VertexValue(s.NumSegments())}
	}
	return frontier
}
