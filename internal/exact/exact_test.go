package exact

import (
	"math"
	"math/rand"
	"testing"

	"temporalrank/internal/blockio"
	"temporalrank/internal/topk"
	"temporalrank/internal/tsdata"
)

// --- fixtures --------------------------------------------------------

func randomSeries(rng *rand.Rand, id tsdata.SeriesID, n int, negative bool) *tsdata.Series {
	times := make([]float64, n+1)
	values := make([]float64, n+1)
	t := rng.Float64() * 3
	for j := 0; j <= n; j++ {
		times[j] = t
		t += 0.2 + rng.Float64()*2
		v := rng.Float64() * 100
		if negative {
			v -= 50
		}
		values[j] = v
	}
	s, err := tsdata.NewSeries(id, times, values)
	if err != nil {
		panic(err)
	}
	return s
}

func randomDataset(seed int64, m, maxSegs int, negative bool) *tsdata.Dataset {
	rng := rand.New(rand.NewSource(seed))
	series := make([]*tsdata.Series, m)
	for i := 0; i < m; i++ {
		series[i] = randomSeries(rng, tsdata.SeriesID(i), 1+rng.Intn(maxSegs), negative)
	}
	d, err := tsdata.NewDataset(series)
	if err != nil {
		panic(err)
	}
	return d
}

// referenceTopK computes the ground truth with the in-memory prefix
// arrays.
func referenceTopK(ds *tsdata.Dataset, k int, t1, t2 float64) []topk.Item {
	c := topk.NewCollector(k)
	for _, s := range ds.AllSeries() {
		c.Add(s.ID, s.Range(t1, t2))
	}
	return c.Results()
}

func buildAll(t *testing.T, ds *tsdata.Dataset) []Method {
	t.Helper()
	e1, err := BuildExact1(blockio.NewMemDevice(512), ds)
	if err != nil {
		t.Fatalf("BuildExact1: %v", err)
	}
	e2, err := BuildExact2(blockio.NewMemDevice(512), ds)
	if err != nil {
		t.Fatalf("BuildExact2: %v", err)
	}
	e3, err := BuildExact3(blockio.NewMemDevice(512), ds)
	if err != nil {
		t.Fatalf("BuildExact3: %v", err)
	}
	return []Method{e1, e2, e3}
}

func approxEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return d <= tol
	}
	return d <= tol*scale
}

func itemsMatch(t *testing.T, name string, got, want []topk.Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d", name, len(got), len(want))
	}
	for j := range got {
		// Scores must agree tightly; IDs may legitimately differ only
		// on exact ties, which the deterministic tie-break rules out.
		if !approxEq(got[j].Score, want[j].Score, 1e-9) {
			t.Fatalf("%s rank %d: score %g, want %g", name, j, got[j].Score, want[j].Score)
		}
		if got[j].ID != want[j].ID {
			t.Fatalf("%s rank %d: ID %d, want %d (scores %g vs %g)",
				name, j, got[j].ID, want[j].ID, got[j].Score, want[j].Score)
		}
	}
}

// --- correctness -------------------------------------------------------

func TestAllMethodsMatchReference(t *testing.T) {
	ds := randomDataset(1, 60, 40, false)
	methods := buildAll(t, ds)
	rng := rand.New(rand.NewSource(2))
	span := ds.Span()
	for q := 0; q < 25; q++ {
		t1 := ds.Start() + rng.Float64()*span*0.8
		t2 := t1 + rng.Float64()*(ds.End()-t1)
		k := 1 + rng.Intn(10)
		want := referenceTopK(ds, k, t1, t2)
		for _, m := range methods {
			got, err := m.TopK(k, t1, t2)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			itemsMatch(t, m.Name(), got, want)
		}
	}
}

func TestAllMethodsNegativeScores(t *testing.T) {
	ds := randomDataset(3, 40, 25, true)
	methods := buildAll(t, ds)
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 15; q++ {
		t1 := ds.Start() + rng.Float64()*ds.Span()*0.7
		t2 := t1 + rng.Float64()*(ds.End()-t1)
		want := referenceTopK(ds, 5, t1, t2)
		for _, m := range methods {
			got, err := m.TopK(5, t1, t2)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			itemsMatch(t, m.Name()+"(neg)", got, want)
		}
	}
}

func TestQueryOutsideDomain(t *testing.T) {
	ds := randomDataset(5, 10, 10, false)
	methods := buildAll(t, ds)
	cases := [][2]float64{
		{ds.Start() - 10, ds.Start() - 5}, // fully left
		{ds.End() + 5, ds.End() + 10},     // fully right
		{ds.Start() - 10, ds.End() + 10},  // covering
	}
	for _, c := range cases {
		want := referenceTopK(ds, 3, c[0], c[1])
		for _, m := range methods {
			got, err := m.TopK(3, c[0], c[1])
			if err != nil {
				t.Fatalf("%s [%g,%g]: %v", m.Name(), c[0], c[1], err)
			}
			itemsMatch(t, m.Name(), got, want)
		}
	}
}

func TestDegenerateInterval(t *testing.T) {
	ds := randomDataset(6, 10, 10, false)
	methods := buildAll(t, ds)
	mid := (ds.Start() + ds.End()) / 2
	for _, m := range methods {
		got, err := m.TopK(3, mid, mid)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for _, it := range got {
			if it.Score != 0 {
				t.Errorf("%s: zero-width interval gave score %g", m.Name(), it.Score)
			}
		}
	}
}

func TestInvalidQueries(t *testing.T) {
	ds := randomDataset(7, 5, 5, false)
	methods := buildAll(t, ds)
	for _, m := range methods {
		if _, err := m.TopK(3, 5, 2); err == nil {
			t.Errorf("%s: inverted interval accepted", m.Name())
		}
		if _, err := m.TopK(3, math.NaN(), 2); err == nil {
			t.Errorf("%s: NaN accepted", m.Name())
		}
		if _, err := m.TopK(3, 0, math.Inf(1)); err == nil {
			t.Errorf("%s: Inf accepted", m.Name())
		}
	}
}

func TestScoreMatchesRange(t *testing.T) {
	ds := randomDataset(8, 20, 20, false)
	methods := buildAll(t, ds)
	rng := rand.New(rand.NewSource(9))
	for q := 0; q < 10; q++ {
		t1 := ds.Start() + rng.Float64()*ds.Span()/2
		t2 := t1 + rng.Float64()*(ds.End()-t1)
		id := tsdata.SeriesID(rng.Intn(ds.NumSeries()))
		want := ds.Series(id).Range(t1, t2)
		for _, m := range methods {
			got, err := m.Score(id, t1, t2)
			if err != nil {
				t.Fatalf("%s Score: %v", m.Name(), err)
			}
			if !approxEq(got, want, 1e-9) {
				t.Errorf("%s Score(%d) = %g, want %g", m.Name(), id, got, want)
			}
		}
	}
	// Unknown series rejected.
	for _, m := range methods {
		if _, err := m.Score(tsdata.SeriesID(999), 0, 1); err == nil {
			t.Errorf("%s: unknown series accepted", m.Name())
		}
	}
}

// --- updates ----------------------------------------------------------

func TestAppendAllMethods(t *testing.T) {
	ds := randomDataset(10, 15, 10, false)
	mirror := ds.Clone()
	methods := buildAll(t, ds)
	rng := rand.New(rand.NewSource(11))

	// Apply the same appends to the indexes and the in-memory mirror.
	for step := 0; step < 60; step++ {
		id := tsdata.SeriesID(rng.Intn(ds.NumSeries()))
		s := mirror.Series(id)
		nt := s.End() + 0.1 + rng.Float64()*2
		nv := rng.Float64() * 100
		if err := s.Append(nt, nv); err != nil {
			t.Fatal(err)
		}
		for _, m := range methods {
			if err := m.Append(id, nt, nv); err != nil {
				t.Fatalf("%s append: %v", m.Name(), err)
			}
		}
	}
	mirror.Refresh()

	for q := 0; q < 15; q++ {
		t1 := mirror.Start() + rng.Float64()*mirror.Span()*0.8
		t2 := t1 + rng.Float64()*(mirror.End()-t1)
		want := referenceTopK(mirror, 5, t1, t2)
		for _, m := range methods {
			got, err := m.TopK(5, t1, t2)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			itemsMatch(t, m.Name()+"(updated)", got, want)
		}
	}
}

func TestAppendValidation(t *testing.T) {
	ds := randomDataset(12, 5, 5, false)
	methods := buildAll(t, ds)
	for _, m := range methods {
		if err := m.Append(tsdata.SeriesID(99), 1e9, 0); err == nil {
			t.Errorf("%s: unknown series append accepted", m.Name())
		}
		// Append before the frontier must fail.
		if err := m.Append(0, ds.Start()-100, 0); err == nil {
			t.Errorf("%s: backwards append accepted", m.Name())
		}
	}
}

func TestExact3TailCounting(t *testing.T) {
	ds := randomDataset(13, 5, 5, false)
	e3, err := BuildExact3(blockio.NewMemDevice(512), ds)
	if err != nil {
		t.Fatal(err)
	}
	if e3.TailSegments() != 0 {
		t.Errorf("fresh tail = %d", e3.TailSegments())
	}
	if err := e3.Append(0, ds.End()+1, 5); err != nil {
		t.Fatal(err)
	}
	if err := e3.Append(0, ds.End()+2, 6); err != nil {
		t.Fatal(err)
	}
	if e3.TailSegments() != 2 {
		t.Errorf("tail = %d, want 2", e3.TailSegments())
	}
}

// --- IO behaviour -------------------------------------------------------

// TestIOOrdering verifies the paper's headline comparison: for large m,
// EXACT3 queries take far fewer IOs than EXACT2, and long intervals make
// EXACT1 the most expensive (Fig. 13c, 16a).
func TestIOOrdering(t *testing.T) {
	ds := randomDataset(14, 150, 60, false)
	e1, _ := BuildExact1(blockio.NewMemDevice(512), ds)
	e2, _ := BuildExact2(blockio.NewMemDevice(512), ds)
	e3, _ := BuildExact3(blockio.NewMemDevice(512), ds)

	t1 := ds.Start() + ds.Span()*0.2
	t2 := ds.Start() + ds.Span()*0.8 // long interval: 60% of T

	measure := func(m Method) uint64 {
		m.Device().ResetStats()
		if _, err := m.TopK(10, t1, t2); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		return m.Device().Stats().Total()
	}
	io1, io2, io3 := measure(e1), measure(e2), measure(e3)
	if io3 >= io2 {
		t.Errorf("EXACT3 (%d IOs) should beat EXACT2 (%d IOs) at m=150", io3, io2)
	}
	if io3 >= io1 {
		t.Errorf("EXACT3 (%d IOs) should beat EXACT1 (%d IOs) on long intervals", io3, io1)
	}
}

// TestExact1IntervalSensitivity: EXACT1's IO cost grows with the query
// interval while EXACT3's does not appreciably (Fig. 16a).
func TestExact1IntervalSensitivity(t *testing.T) {
	ds := randomDataset(15, 50, 80, false)
	e1, _ := BuildExact1(blockio.NewMemDevice(512), ds)
	e3, _ := BuildExact3(blockio.NewMemDevice(512), ds)

	frac := func(m Method, f float64) uint64 {
		t1 := ds.Start() + ds.Span()*0.1
		t2 := t1 + ds.Span()*f
		m.Device().ResetStats()
		if _, err := m.TopK(10, t1, t2); err != nil {
			t.Fatal(err)
		}
		return m.Device().Stats().Total()
	}
	small1, large1 := frac(e1, 0.02), frac(e1, 0.6)
	small3, large3 := frac(e3, 0.02), frac(e3, 0.6)
	if large1 <= small1 {
		t.Errorf("EXACT1 IOs should grow with interval: %d -> %d", small1, large1)
	}
	if large3 > small3*3 {
		t.Errorf("EXACT3 IOs should be interval-insensitive: %d -> %d", small3, large3)
	}
}

func TestBuildOnFileDevice(t *testing.T) {
	ds := randomDataset(16, 20, 20, false)
	dev, err := blockio.OpenFileDevice(t.TempDir()+"/exact3.bin", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	e3, err := BuildExact3(dev, ds)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceTopK(ds, 5, ds.Start(), ds.End())
	got, err := e3.TopK(5, ds.Start(), ds.End())
	if err != nil {
		t.Fatal(err)
	}
	itemsMatch(t, "EXACT3(file)", got, want)
}

func TestSingleSegmentObjects(t *testing.T) {
	// Boundary shape: every object has exactly one segment.
	series := make([]*tsdata.Series, 10)
	for i := range series {
		s, err := tsdata.NewSeries(tsdata.SeriesID(i),
			[]float64{0, 10}, []float64{float64(i), float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		series[i] = s
	}
	ds, err := tsdata.NewDataset(series)
	if err != nil {
		t.Fatal(err)
	}
	methods := buildAll(t, ds)
	want := referenceTopK(ds, 3, 2, 8)
	for _, m := range methods {
		got, err := m.TopK(3, 2, 8)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		itemsMatch(t, m.Name(), got, want)
		// Highest-valued object must rank first.
		if got[0].ID != 9 {
			t.Errorf("%s: top object = %d, want 9", m.Name(), got[0].ID)
		}
	}
}

func TestExact1ExternalMatchesInMemory(t *testing.T) {
	ds := randomDataset(30, 25, 30, false)
	inMem, err := BuildExact1(blockio.NewMemDevice(512), ds)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny budget forces run spilling and merging.
	ext, err := BuildExact1External(blockio.NewMemDevice(512), blockio.NewMemDevice(512), ds, 17)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for q := 0; q < 15; q++ {
		t1 := ds.Start() + rng.Float64()*ds.Span()*0.7
		t2 := t1 + rng.Float64()*(ds.End()-t1)
		a, err := inMem.TopK(7, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ext.TopK(7, t1, t2)
		if err != nil {
			t.Fatal(err)
		}
		itemsMatch(t, "EXACT1-external", b, a)
	}
}

func TestExact3InstantTopK(t *testing.T) {
	ds := randomDataset(50, 30, 20, false)
	e3, err := BuildExact3(blockio.NewMemDevice(512), ds)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 25; trial++ {
		at := ds.Start() + rng.Float64()*ds.Span()
		want := topk.NewCollector(5)
		for _, s := range ds.AllSeries() {
			want.Add(s.ID, s.At(at))
		}
		got, err := e3.InstantTopK(5, at)
		if err != nil {
			t.Fatal(err)
		}
		itemsMatch(t, "InstantTopK", got, want.Results())
	}
	// After appends, instants inside the tail must evaluate the tail.
	id := tsdata.SeriesID(0)
	end := ds.Series(id).End()
	if err := e3.Append(id, end+2, 1e6); err != nil {
		t.Fatal(err)
	}
	got, err := e3.InstantTopK(1, end+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].ID != id {
		t.Errorf("instant in tail: got %v, want object %d on top", got, id)
	}
}

func TestExact3InstantTopKOutsideDomain(t *testing.T) {
	ds := randomDataset(52, 8, 8, false)
	e3, err := BuildExact3(blockio.NewMemDevice(512), ds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e3.InstantTopK(3, ds.End()+100)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range got {
		if it.Score != 0 {
			t.Errorf("score %g beyond domain, want 0", it.Score)
		}
	}
}
