package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"temporalrank/internal/tsdata"
)

func approxEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return d <= tol
	}
	return d <= tol*scale
}

func TestSegmentAtHorner(t *testing.T) {
	// p(t) = 1 + 2u + 3u² at u = t-1.
	s := Segment{T1: 1, T2: 5, Coeffs: []float64{1, 2, 3}}
	if got := s.At(1); got != 1 {
		t.Errorf("At(T1) = %g", got)
	}
	if got := s.At(3); got != 1+4+12 {
		t.Errorf("At(3) = %g, want 17", got)
	}
}

func TestSegmentIntegralClosedForm(t *testing.T) {
	// ∫_0^2 (1 + 2u + 3u²) du = 2 + 4 + 8 = 14.
	s := Segment{T1: 0, T2: 2, Coeffs: []float64{1, 2, 3}}
	if got := s.Integral(); !approxEq(got, 14, 1e-12) {
		t.Errorf("Integral = %g, want 14", got)
	}
	// Clipped: ∫_1^2 = (u+u²+u³) from 1 to 2 = 14 - 3 = 11.
	if got := s.IntegralOver(1, 2); !approxEq(got, 11, 1e-12) {
		t.Errorf("IntegralOver(1,2) = %g, want 11", got)
	}
	if got := s.IntegralOver(5, 9); got != 0 {
		t.Errorf("disjoint = %g", got)
	}
}

func TestSegmentValidate(t *testing.T) {
	if err := (Segment{T1: 0, T2: 1, Coeffs: []float64{1}}).Validate(); err != nil {
		t.Errorf("constant rejected: %v", err)
	}
	bads := []Segment{
		{T1: 1, T2: 1, Coeffs: []float64{1}},
		{T1: 0, T2: 1},
		{T1: 0, T2: 1, Coeffs: []float64{math.NaN()}},
	}
	for _, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad segment %+v accepted", b)
		}
	}
}

// Property: polynomial integral matches numeric quadrature.
func TestIntegralMatchesQuadratureProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		deg := 1 + rng.Intn(4)
		coeffs := make([]float64, deg+1)
		for i := range coeffs {
			coeffs[i] = rng.NormFloat64() * 3
		}
		s := Segment{T1: rng.Float64(), T2: 1 + rng.Float64()*4, Coeffs: coeffs}
		s.T2 += s.T1
		a := s.T1 + (s.T2-s.T1)*rng.Float64()*0.5
		b := a + (s.T2-a)*rng.Float64()
		if b <= a {
			return true
		}
		// Simpson quadrature with many panels.
		const n = 2000
		h := (b - a) / n
		sum := s.At(a) + s.At(b)
		for i := 1; i < n; i++ {
			x := a + h*float64(i)
			if i%2 == 1 {
				sum += 4 * s.At(x)
			} else {
				sum += 2 * s.At(x)
			}
		}
		quad := sum * h / 3
		return approxEq(s.IntegralOver(a, b), quad, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSeriesValidateAndRange(t *testing.T) {
	s := Series{Segments: []Segment{
		{T1: 0, T2: 2, Coeffs: []float64{1, 1}},       // 1+u
		{T1: 2, T2: 4, Coeffs: []float64{3, 0, -0.5}}, // 3 - u²/2
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// ∫_0^2 (1+u) = 4; ∫_2^4 (3 - u²/2) with u=t-2: 6 - 8/6 = 4.6667.
	want := 4 + 6 - 8.0/6
	if got := s.Range(0, 4); !approxEq(got, want, 1e-12) {
		t.Errorf("Range = %g, want %g", got, want)
	}
	// Gap rejected.
	bad := Series{Segments: []Segment{
		{T1: 0, T2: 1, Coeffs: []float64{1}},
		{T1: 2, T2: 3, Coeffs: []float64{1}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("gap accepted")
	}
}

func TestToSamplesErrorBound(t *testing.T) {
	// A strongly curved quadratic: sampling must be dense enough that
	// linear interpolation stays within budget.
	s := Series{Segments: []Segment{
		{T1: 0, T2: 10, Coeffs: []float64{0, 0, 2}}, // 2u²
	}}
	for _, budget := range []float64{1, 0.1, 0.01} {
		samples, err := s.ToSamples(budget)
		if err != nil {
			t.Fatal(err)
		}
		// Verify interpolation error against the true polynomial.
		for i := 0; i+1 < len(samples); i++ {
			a, b := samples[i], samples[i+1]
			for w := 0.1; w < 1; w += 0.2 {
				tt := a.T + (b.T-a.T)*w
				lin := a.V*(1-w) + b.V*w
				if d := math.Abs(lin - s.At(tt)); d > budget*(1+1e-9) {
					t.Fatalf("budget %g: interpolation error %g at t=%g", budget, d, tt)
				}
			}
		}
	}
	if _, err := s.ToSamples(0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestToSamplesFeedsLinearPipeline(t *testing.T) {
	// End to end: polynomial -> samples -> tsdata.Series; aggregates
	// agree within budget·(t2−t1).
	s := Series{Segments: []Segment{
		{T1: 0, T2: 5, Coeffs: []float64{10, 1, 0.3}},
		{T1: 5, T2: 10, Coeffs: []float64{10 + 5 + 0.3*25, -2, 0.1}},
	}}
	const budget = 0.05
	samples, err := s.ToSamples(budget)
	if err != nil {
		t.Fatal(err)
	}
	times := make([]float64, len(samples))
	values := make([]float64, len(samples))
	for i, sm := range samples {
		times[i] = sm.T
		values[i] = sm.V
	}
	lin, err := tsdata.NewSeries(0, times, values)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range [][2]float64{{0, 10}, {1, 4}, {3, 8}, {6, 9.5}} {
		exact := s.Range(iv[0], iv[1])
		got := lin.Range(iv[0], iv[1])
		if d := math.Abs(exact - got); d > budget*(iv[1]-iv[0])+1e-9 {
			t.Errorf("[%g,%g]: drift %g > %g", iv[0], iv[1], d, budget*(iv[1]-iv[0]))
		}
	}
}

func TestLinearPolynomialFewSamples(t *testing.T) {
	// Degree-1 pieces need only their endpoints regardless of budget.
	s := Series{Segments: []Segment{{T1: 0, T2: 100, Coeffs: []float64{1, 2}}}}
	samples, err := s.ToSamples(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Errorf("linear piece sampled %d points, want 2", len(samples))
	}
}
