// Package poly implements piecewise-polynomial score functions — the
// §4 "General time series with arbitrary functions" extension: "all of
// our methods also naturally work with any piecewise polynomial
// functions p: the only change is ... how to compute σ_i(I) ... we
// simply compute it using the integral over p_{i,j}".
//
// A polynomial segment evaluates and integrates exactly (closed form);
// ToSamples bridges to the piecewise-linear pipeline by sampling at a
// resolution chosen from a supplied L∞ error budget via the standard
// second-derivative bound, after which internal/pla re-segments
// adaptively. This gives the indexes the paper's two options for "more
// precision": more linear segments, or native polynomial pieces for
// σ(I) computation.
package poly

import (
	"fmt"
	"math"

	"temporalrank/internal/pla"
)

// Segment is one polynomial piece over [T1, T2): value(t) = Σ_d
// Coeffs[d]·(t−T1)^d. Coefficients are in the local coordinate u =
// t−T1 for numeric stability.
type Segment struct {
	T1, T2 float64
	Coeffs []float64
}

// Validate checks the segment is well formed.
func (s Segment) Validate() error {
	if !(s.T1 < s.T2) || math.IsNaN(s.T1) || math.IsInf(s.T2, 0) {
		return fmt.Errorf("poly: bad span [%g,%g)", s.T1, s.T2)
	}
	if len(s.Coeffs) == 0 {
		return fmt.Errorf("poly: no coefficients")
	}
	for i, c := range s.Coeffs {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("poly: non-finite coefficient %d", i)
		}
	}
	return nil
}

// Degree returns the polynomial degree.
func (s Segment) Degree() int { return len(s.Coeffs) - 1 }

// At evaluates the polynomial at t (Horner form).
func (s Segment) At(t float64) float64 {
	u := t - s.T1
	v := 0.0
	for d := len(s.Coeffs) - 1; d >= 0; d-- {
		v = v*u + s.Coeffs[d]
	}
	return v
}

// Integral returns ∫_{T1}^{T2} p(t) dt in closed form.
func (s Segment) Integral() float64 { return s.IntegralOver(s.T1, s.T2) }

// IntegralOver returns ∫ p over [t1,t2] ∩ [T1,T2] exactly: the
// antiderivative Σ_d c_d·u^{d+1}/(d+1) evaluated at the clipped local
// endpoints — this is the paper's "σ_i(I) = ∫_{t∈I} p_{i,j}(t) dt".
func (s Segment) IntegralOver(t1, t2 float64) float64 {
	lo := math.Max(t1, s.T1) - s.T1
	hi := math.Min(t2, s.T2) - s.T1
	if hi <= lo {
		return 0
	}
	return s.antideriv(hi) - s.antideriv(lo)
}

func (s Segment) antideriv(u float64) float64 {
	v := 0.0
	for d := len(s.Coeffs) - 1; d >= 0; d-- {
		v = (v + s.Coeffs[d]/float64(d+1)) * u
	}
	return v
}

// secondDerivativeBound returns max |p”(t)| over the span (by
// evaluating the (exactly computed) second-derivative polynomial on a
// dense grid — adequate for the low degrees used in practice).
func (s Segment) secondDerivativeBound() float64 {
	if len(s.Coeffs) <= 2 {
		return 0
	}
	dd := make([]float64, len(s.Coeffs)-2)
	for d := 2; d < len(s.Coeffs); d++ {
		dd[d-2] = s.Coeffs[d] * float64(d) * float64(d-1)
	}
	ddSeg := Segment{T1: s.T1, T2: s.T2, Coeffs: dd}
	worst := 0.0
	const grid = 64
	for i := 0; i <= grid; i++ {
		t := s.T1 + (s.T2-s.T1)*float64(i)/grid
		if v := math.Abs(ddSeg.At(t)); v > worst {
			worst = v
		}
	}
	return worst
}

// Series is one object: contiguous polynomial pieces.
type Series struct {
	Segments []Segment
}

// Validate checks contiguity and per-piece validity.
func (s Series) Validate() error {
	if len(s.Segments) == 0 {
		return fmt.Errorf("poly: empty series")
	}
	for i, seg := range s.Segments {
		if err := seg.Validate(); err != nil {
			return fmt.Errorf("poly: piece %d: %w", i, err)
		}
		if i > 0 && seg.T1 != s.Segments[i-1].T2 {
			return fmt.Errorf("poly: piece %d not contiguous", i)
		}
	}
	return nil
}

// At evaluates the series at t (0 outside its domain).
func (s Series) At(t float64) float64 {
	for _, seg := range s.Segments {
		if t >= seg.T1 && t < seg.T2 {
			return seg.At(t)
		}
	}
	if n := len(s.Segments); n > 0 && t == s.Segments[n-1].T2 {
		return s.Segments[n-1].At(t)
	}
	return 0
}

// Range computes σ(t1,t2) exactly over the polynomial pieces.
func (s Series) Range(t1, t2 float64) float64 {
	var sum float64
	for _, seg := range s.Segments {
		sum += seg.IntegralOver(t1, t2)
	}
	return sum
}

// ToSamples converts the series to samples dense enough that linear
// interpolation between consecutive samples deviates at most maxErr
// from the polynomial (chord error bound |p”|·h²/8 ≤ maxErr), ready
// for pla segmentation or direct SegmentConnect ingestion.
func (s Series) ToSamples(maxErr float64) ([]pla.Sample, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if maxErr <= 0 {
		return nil, fmt.Errorf("poly: error budget must be positive, got %g", maxErr)
	}
	var out []pla.Sample
	for _, seg := range s.Segments {
		span := seg.T2 - seg.T1
		steps := 1
		if bound := seg.secondDerivativeBound(); bound > 0 {
			h := math.Sqrt(8 * maxErr / bound)
			steps = int(math.Ceil(span / h))
			if steps < 1 {
				steps = 1
			}
		}
		for i := 0; i < steps; i++ {
			t := seg.T1 + span*float64(i)/float64(steps)
			out = append(out, pla.Sample{T: t, V: seg.At(t)})
		}
	}
	last := s.Segments[len(s.Segments)-1]
	out = append(out, pla.Sample{T: last.T2, V: last.At(last.T2)})
	return out, nil
}
