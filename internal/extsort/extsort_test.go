package extsort

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"temporalrank/internal/blockio"
)

func u64rec(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func u64less(a, b []byte) bool {
	return binary.LittleEndian.Uint64(a) < binary.LittleEndian.Uint64(b)
}

func drain(t *testing.T, it *Iterator) []uint64 {
	t.Helper()
	var out []uint64
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, binary.LittleEndian.Uint64(rec))
	}
	if it.Err() != nil {
		t.Fatalf("iterator error: %v", it.Err())
	}
	return out
}

func TestNewValidation(t *testing.T) {
	dev := blockio.NewMemDevice(64)
	if _, err := New(dev, 0, 100, u64less); err == nil {
		t.Error("zero record size accepted")
	}
	if _, err := New(dev, 8, 100, nil); err == nil {
		t.Error("nil comparator accepted")
	}
	if _, err := New(blockio.NewMemDevice(8), 8, 100, u64less); err == nil {
		t.Error("block too small accepted")
	}
}

func TestInMemoryPath(t *testing.T) {
	s, err := New(blockio.NewMemDevice(256), 8, 1000, u64less)
	if err != nil {
		t.Fatal(err)
	}
	vals := []uint64{5, 1, 9, 3, 3, 7}
	for _, v := range vals {
		if err := s.Add(u64rec(v)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Runs() != 0 {
		t.Errorf("spilled %d runs under budget", s.Runs())
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	want := []uint64{1, 3, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pos %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSpillingPath(t *testing.T) {
	dev := blockio.NewMemDevice(64) // tiny pages force multi-page runs
	s, err := New(dev, 8, 16, u64less)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n := 5000
	want := make([]uint64, n)
	for i := 0; i < n; i++ {
		v := uint64(rng.Intn(1000))
		want[i] = v
		if err := s.Add(u64rec(v)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Runs() < 2 {
		t.Fatalf("runs = %d, expected spilling", s.Runs())
	}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	if len(got) != n {
		t.Fatalf("drained %d of %d", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pos %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestEmptySort(t *testing.T) {
	s, err := New(blockio.NewMemDevice(256), 8, 100, u64less)
	if err != nil {
		t.Fatal(err)
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); ok {
		t.Error("empty sorter yielded a record")
	}
}

func TestMisuse(t *testing.T) {
	s, _ := New(blockio.NewMemDevice(256), 8, 100, u64less)
	if err := s.Add(make([]byte, 4)); err == nil {
		t.Error("wrong record size accepted")
	}
	if _, err := s.Sort(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sort(); err == nil {
		t.Error("double Sort accepted")
	}
	if err := s.Add(u64rec(1)); err == nil {
		t.Error("Add after Sort accepted")
	}
}

func TestLargeRecordsWithPayload(t *testing.T) {
	// 40-byte records sorted by an embedded key; payload must ride
	// along intact.
	const recSize = 40
	dev := blockio.NewMemDevice(128)
	less := func(a, b []byte) bool {
		return binary.LittleEndian.Uint64(a) < binary.LittleEndian.Uint64(b)
	}
	s, err := New(dev, recSize, 16, less)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	n := 500
	for i := 0; i < n; i++ {
		rec := make([]byte, recSize)
		binary.LittleEndian.PutUint64(rec, uint64(rng.Intn(100)))
		// Payload encodes the key too, for verification.
		copy(rec[8:], rec[:8])
		rng.Read(rec[16:])
		copy(rec[32:], rec[:8])
		if err := s.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	count := 0
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		key := binary.LittleEndian.Uint64(rec)
		if key < prev {
			t.Fatalf("out of order: %d after %d", key, prev)
		}
		if !bytes.Equal(rec[:8], rec[8:16]) || !bytes.Equal(rec[:8], rec[32:40]) {
			t.Fatal("payload corrupted")
		}
		prev = key
		count++
	}
	if count != n {
		t.Fatalf("count = %d", count)
	}
}

// Property: external sort equals sort.Slice for random inputs across
// random budgets (exercising both paths and the merge).
func TestMatchesSortProperty(t *testing.T) {
	f := func(seed int64, rawBudget uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := int(rawBudget)%64 + 16
		s, err := New(blockio.NewMemDevice(96), 8, budget, u64less)
		if err != nil {
			return false
		}
		n := rng.Intn(600)
		want := make([]uint64, n)
		for i := 0; i < n; i++ {
			v := uint64(rng.Intn(50))
			want[i] = v
			if err := s.Add(u64rec(v)); err != nil {
				return false
			}
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		it, err := s.Sort()
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			rec, ok := it.Next()
			if !ok || binary.LittleEndian.Uint64(rec) != want[i] {
				return false
			}
		}
		_, ok := it.Next()
		return !ok && it.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Stability: equal keys keep insertion order (SliceStable + ordered
// merge of runs in creation order is stable only within runs; we do
// not promise global stability, but equal keys must all survive).
func TestEqualKeysAllSurvive(t *testing.T) {
	s, _ := New(blockio.NewMemDevice(96), 8, 16, u64less)
	const n = 200
	for i := 0; i < n; i++ {
		if err := s.Add(u64rec(7)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	if len(got) != n {
		t.Fatalf("lost records: %d of %d", len(got), n)
	}
}
