// Package extsort provides external-memory sorting of fixed-size
// records over a blockio.Device — the substrate the paper gets from
// TPIE's sort (its constructions all begin by sorting the N segments,
// at O((N/B) log_B N) IOs).
//
// Records are opaque fixed-size byte strings ordered by a caller
// comparator. Input is buffered up to a configurable in-memory budget;
// full buffers are sorted and spilled as runs (chained page sequences);
// Sort() k-way-merges the runs. With a budget of at least the input
// size no device pages are used at all, matching how the laptop-scale
// experiments run while preserving the out-of-core path for big data.
package extsort

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"

	"temporalrank/internal/blockio"
)

// Less orders two records.
type Less func(a, b []byte) bool

// Sorter accumulates records and produces a sorted iterator.
type Sorter struct {
	dev        blockio.Device
	recordSize int
	budget     int // max in-memory records before spilling
	less       Less

	buf    [][]byte
	runs   []runRef
	sorted bool
	count  int
}

// runRef locates a spilled run.
type runRef struct {
	head  blockio.PageID
	count int
}

const pageHeaderSize = 8 + 2 // next pointer, record count

// New creates a sorter for recordSize-byte records with an in-memory
// budget of budgetRecords (minimum 16).
func New(dev blockio.Device, recordSize, budgetRecords int, less Less) (*Sorter, error) {
	if recordSize <= 0 {
		return nil, fmt.Errorf("extsort: record size must be positive, got %d", recordSize)
	}
	if dev.BlockSize() < pageHeaderSize+recordSize {
		return nil, fmt.Errorf("extsort: block size %d too small for %d-byte records", dev.BlockSize(), recordSize)
	}
	if less == nil {
		return nil, fmt.Errorf("extsort: nil comparator")
	}
	if budgetRecords < 16 {
		budgetRecords = 16
	}
	return &Sorter{dev: dev, recordSize: recordSize, budget: budgetRecords, less: less}, nil
}

// Len returns the number of records added.
func (s *Sorter) Len() int { return s.count }

// Runs returns the number of spilled runs (diagnostics).
func (s *Sorter) Runs() int { return len(s.runs) }

// Add appends one record (copied).
func (s *Sorter) Add(record []byte) error {
	if s.sorted {
		return fmt.Errorf("extsort: Add after Sort")
	}
	if len(record) != s.recordSize {
		return fmt.Errorf("extsort: record is %d bytes, want %d", len(record), s.recordSize)
	}
	cp := make([]byte, s.recordSize)
	copy(cp, record)
	s.buf = append(s.buf, cp)
	s.count++
	if len(s.buf) >= s.budget {
		return s.spill()
	}
	return nil
}

// spill sorts the buffer and writes it as one run.
func (s *Sorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	sort.SliceStable(s.buf, func(a, b int) bool { return s.less(s.buf[a], s.buf[b]) })
	perPage := (s.dev.BlockSize() - pageHeaderSize) / s.recordSize
	numPages := (len(s.buf) + perPage - 1) / perPage
	pages := make([]blockio.PageID, numPages)
	for i := range pages {
		p, err := s.dev.Alloc()
		if err != nil {
			return err
		}
		pages[i] = p
	}
	buf := make([]byte, s.dev.BlockSize())
	for pi := 0; pi < numPages; pi++ {
		start := pi * perPage
		end := start + perPage
		if end > len(s.buf) {
			end = len(s.buf)
		}
		for i := range buf {
			buf[i] = 0
		}
		next := blockio.InvalidPage
		if pi+1 < numPages {
			next = pages[pi+1]
		}
		binary.LittleEndian.PutUint64(buf[0:], uint64(int64(next)))
		binary.LittleEndian.PutUint16(buf[8:], uint16(end-start))
		off := pageHeaderSize
		for _, rec := range s.buf[start:end] {
			copy(buf[off:], rec)
			off += s.recordSize
		}
		if err := s.dev.Write(pages[pi], buf); err != nil {
			return err
		}
	}
	s.runs = append(s.runs, runRef{head: pages[0], count: len(s.buf)})
	s.buf = s.buf[:0]
	return nil
}

// Sort finalizes input and returns an iterator over all records in
// order. The sorter cannot be reused.
func (s *Sorter) Sort() (*Iterator, error) {
	if s.sorted {
		return nil, fmt.Errorf("extsort: Sort called twice")
	}
	s.sorted = true
	if len(s.runs) == 0 {
		// Pure in-memory path.
		sort.SliceStable(s.buf, func(a, b int) bool { return s.less(s.buf[a], s.buf[b]) })
		return &Iterator{mem: s.buf, less: s.less}, nil
	}
	if err := s.spill(); err != nil {
		return nil, err
	}
	it := &Iterator{less: s.less}
	for _, run := range s.runs {
		rr, err := newRunReader(s.dev, s.recordSize, run)
		if err != nil {
			return nil, err
		}
		if rr != nil {
			it.heap = append(it.heap, rr)
		}
	}
	heap.Init((*readerHeap)(it))
	return it, nil
}

// Iterator yields records in sorted order.
type Iterator struct {
	// In-memory mode.
	mem [][]byte
	pos int
	// Merge mode.
	heap []*runReader
	less Less
	err  error
}

// Next returns the next record (aliasing an internal buffer valid
// until the following Next) and false at the end.
func (it *Iterator) Next() ([]byte, bool) {
	if it.err != nil {
		return nil, false
	}
	if it.heap == nil {
		if it.pos >= len(it.mem) {
			return nil, false
		}
		rec := it.mem[it.pos]
		it.pos++
		return rec, true
	}
	if len(it.heap) == 0 {
		return nil, false
	}
	top := it.heap[0]
	rec := append([]byte(nil), top.current...)
	ok, err := top.advance()
	if err != nil {
		it.err = err
		return nil, false
	}
	if ok {
		heap.Fix((*readerHeap)(it), 0)
	} else {
		heap.Pop((*readerHeap)(it))
	}
	return rec, true
}

// Err reports a device error that terminated iteration.
func (it *Iterator) Err() error { return it.err }

// runReader streams one spilled run.
type runReader struct {
	dev        blockio.Device
	recordSize int
	buf        []byte
	page       blockio.PageID
	idx        int // record index within page
	pageCount  int
	remaining  int
	current    []byte
}

func newRunReader(dev blockio.Device, recordSize int, run runRef) (*runReader, error) {
	if run.count == 0 {
		return nil, nil
	}
	r := &runReader{
		dev:        dev,
		recordSize: recordSize,
		buf:        make([]byte, dev.BlockSize()),
		page:       run.head,
		remaining:  run.count,
	}
	if err := r.loadPage(run.head); err != nil {
		return nil, err
	}
	ok, err := r.advance()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return r, nil
}

func (r *runReader) loadPage(p blockio.PageID) error {
	if err := r.dev.Read(p, r.buf); err != nil {
		return err
	}
	r.page = p
	r.idx = 0
	r.pageCount = int(binary.LittleEndian.Uint16(r.buf[8:]))
	return nil
}

func (r *runReader) advance() (bool, error) {
	if r.remaining == 0 {
		return false, nil
	}
	if r.idx >= r.pageCount {
		next := blockio.PageID(int64(binary.LittleEndian.Uint64(r.buf[0:])))
		if next == blockio.InvalidPage {
			return false, fmt.Errorf("extsort: run truncated with %d records remaining", r.remaining)
		}
		if err := r.loadPage(next); err != nil {
			return false, err
		}
	}
	off := pageHeaderSize + r.idx*r.recordSize
	r.current = r.buf[off : off+r.recordSize]
	r.idx++
	r.remaining--
	return true, nil
}

// readerHeap orders run readers by their current record.
type readerHeap Iterator

func (h *readerHeap) Len() int { return len(h.heap) }
func (h *readerHeap) Less(i, j int) bool {
	return h.less(h.heap[i].current, h.heap[j].current)
}
func (h *readerHeap) Swap(i, j int)      { h.heap[i], h.heap[j] = h.heap[j], h.heap[i] }
func (h *readerHeap) Push(x interface{}) { h.heap = append(h.heap, x.(*runReader)) }
func (h *readerHeap) Pop() interface{} {
	old := h.heap
	n := len(old)
	x := old[n-1]
	h.heap = old[:n-1]
	return x
}
