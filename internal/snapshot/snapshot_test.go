package snapshot

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"temporalrank/internal/blockio"
	"temporalrank/internal/trerr"
)

// writeGen writes one generation holding a single named stream.
func writeGen(t *testing.T, s *Store, name string, payload []byte) {
	t.Helper()
	cp, err := s.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	w, err := cp.Stream(name, TypeManifest)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := cp.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func readStream(t *testing.T, s *Store, name string) []byte {
	t.Helper()
	r, err := s.OpenStream(name, TypeManifest)
	if err != nil {
		t.Fatalf("OpenStream(%q): %v", name, err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll(%q): %v", name, err)
	}
	return data
}

func TestStoreRoundTripAndGenerations(t *testing.T) {
	dev := blockio.NewMemDevice(128)
	s, err := Open(dev)
	if err != nil {
		t.Fatalf("Open fresh: %v", err)
	}
	if err := s.Err(); !errors.Is(err, trerr.ErrBadSnapshot) {
		t.Fatalf("fresh store Err = %v, want ErrBadSnapshot", err)
	}

	// Payload spanning several 128-byte pages.
	payload := bytes.Repeat([]byte("temporal-rank-snapshot-"), 40)
	writeGen(t, s, "a", payload)
	if s.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", s.Generation())
	}
	if got := readStream(t, s, "a"); !bytes.Equal(got, payload) {
		t.Fatalf("stream a mismatch: %d bytes vs %d", len(got), len(payload))
	}

	// Second generation through the same store, then a reopen.
	writeGen(t, s, "b", []byte("second"))
	if s.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", s.Generation())
	}
	extentAfter2 := blockio.DeviceExtent(dev)

	s2, err := Open(dev)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if s2.Generation() != 2 {
		t.Fatalf("reopened generation = %d, want 2", s2.Generation())
	}
	if got := readStream(t, s2, "b"); string(got) != "second" {
		t.Fatalf("stream b = %q", got)
	}
	if _, err := s2.OpenStream("a", TypeManifest); !errors.Is(err, trerr.ErrBadSnapshot) {
		t.Fatalf("dead generation's stream still visible: %v", err)
	}

	// Space reclamation: many more generations should not grow the
	// device much beyond two generations' footprint.
	for i := 0; i < 20; i++ {
		writeGen(t, s2, "a", payload)
	}
	if extent := blockio.DeviceExtent(dev); extent > 2*extentAfter2+8 {
		t.Fatalf("extent grew to %d after 20 generations (was %d after 2): free-set reuse broken", extent, extentAfter2)
	}
}

func TestStoreRejectsCorruptPage(t *testing.T) {
	dev := blockio.NewMemDevice(128)
	s, _ := Open(dev)
	payload := bytes.Repeat([]byte("x"), 500)
	writeGen(t, s, "a", payload)

	// Flip a byte in every data page except the headers; at least one
	// reopened read must fail with the typed error.
	var hit bool
	for id := 2; id < blockio.DeviceExtent(dev); id++ {
		buf := make([]byte, 128)
		if err := dev.Read(blockio.PageID(id), buf); err != nil {
			continue
		}
		buf[20] ^= 0xff
		if err := dev.Write(blockio.PageID(id), buf); err != nil {
			t.Fatalf("corrupt page %d: %v", id, err)
		}
		s2, err := Open(dev)
		if err != nil {
			t.Fatalf("Open after corruption: %v", err)
		}
		loadErr := s2.Err()
		if loadErr == nil {
			r, err := s2.OpenStream("a", TypeManifest)
			if err == nil {
				_, err = io.ReadAll(r)
			}
			loadErr = err
		}
		if loadErr != nil {
			if !errors.Is(loadErr, trerr.ErrBadSnapshot) {
				t.Fatalf("corruption surfaced as untyped error: %v", loadErr)
			}
			hit = true
		}
		buf[20] ^= 0xff // restore
		if err := dev.Write(blockio.PageID(id), buf); err != nil {
			t.Fatalf("restore page %d: %v", id, err)
		}
	}
	if !hit {
		t.Fatal("no corruption detected across any data page")
	}
}

func TestStoreTornHeaderFallsBack(t *testing.T) {
	dev := blockio.NewMemDevice(128)
	s, _ := Open(dev)
	writeGen(t, s, "a", []byte("gen-one"))
	writeGen(t, s, "a", []byte("gen-two"))

	// Tear the newest header (slot 0 holds gen 1, slot 1 holds gen 2
	// after two commits; find it by decoding).
	for slot := 0; slot < 2; slot++ {
		buf := make([]byte, 128)
		if err := dev.Read(blockio.PageID(slot), buf); err != nil {
			t.Fatal(err)
		}
		h, err := decodeHeader(buf, 128)
		if err != nil || h.gen != 2 {
			continue
		}
		buf[41] ^= 0xff // corrupt the header CRC
		if err := dev.Write(blockio.PageID(slot), buf); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dev)
	if err != nil {
		t.Fatalf("Open with torn header: %v", err)
	}
	if s2.Generation() != 1 {
		t.Fatalf("generation = %d, want fallback to 1", s2.Generation())
	}
	if got := readStream(t, s2, "a"); string(got) != "gen-one" {
		t.Fatalf("fallback content = %q, want gen-one", got)
	}
}

func TestVersionGate(t *testing.T) {
	dev := blockio.NewMemDevice(128)
	s, _ := Open(dev)
	writeGen(t, s, "a", []byte("data"))

	// Rewrite both headers claiming a future format version.
	for slot := 0; slot < 2; slot++ {
		buf := make([]byte, 128)
		if err := dev.Read(blockio.PageID(slot), buf); err != nil {
			t.Fatal(err)
		}
		if _, err := decodeHeader(buf, 128); err != nil {
			continue
		}
		encodeHeader(buf, header{version: FormatVersion + 1, blockSize: 128, gen: 9})
		if err := dev.Write(blockio.PageID(slot), buf); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dev)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s2.Err(); !errors.Is(err, trerr.ErrSnapshotVersion) {
		t.Fatalf("Err = %v, want ErrSnapshotVersion", err)
	}
	if _, err := s2.Begin(); !errors.Is(err, trerr.ErrSnapshotVersion) {
		t.Fatalf("Begin = %v, want refusal with ErrSnapshotVersion", err)
	}
}
