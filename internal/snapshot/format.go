// Package snapshot implements the durable on-disk checkpoint format:
// a page-granular layout written through the blockio.Device
// abstraction, so the same code path serves memory-backed tests,
// fault-injection sweeps, and real files (optionally behind a
// BufferPool).
//
// # Layout
//
// A snapshot device is an array of fixed-size pages:
//
//	page 0   header slot A ┐ shadow pair: the slot with the highest
//	page 1   header slot B ┘ valid generation is the live checkpoint
//	page 2+  chained stream pages (TOC, dataset, index meta, index pages)
//
// Every data page carries a 16-byte header — type tag, payload length,
// CRC32-C of the payload, and the next page in its chain — so restore
// verifies integrity page by page and a torn or truncated file is
// rejected with a typed error rather than decoded into a wrong DB.
//
// # Commit protocol
//
// A checkpoint never writes into pages referenced by the live
// generation: writers draw from the derived free set (every page below
// the extent that the live generation does not own) and extend the
// device when that runs out. Commit then syncs the data pages, writes
// the new header — generation+1, pointing at the new TOC — into the
// *standby* slot, and syncs again. A crash at any operation leaves the
// previous generation fully intact: either the old header still has
// the highest valid generation, or the new header is torn and fails
// its CRC, falling back to the old slot. Space from dead generations
// is reclaimed by the next checkpoint's free-set derivation, so the
// file converges to roughly two generations' footprint.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"temporalrank/internal/blockio"
	"temporalrank/internal/trerr"
)

// FormatVersion is the on-disk format generation this package reads
// and writes. A valid header with a different version fails with
// trerr.ErrSnapshotVersion.
const FormatVersion = 1

// magic identifies a snapshot header page.
const magic = "TRSNAP01"

// MinBlockSize is the smallest page size the format supports: the
// 16-byte page header plus a useful payload.
const MinBlockSize = 64

// pageHeaderSize is the per-page overhead: type, flags, payload
// length, payload CRC32-C, next-page pointer.
const pageHeaderSize = 16

// headerSlots is the number of shadow header pages (slots 0 and 1).
const headerSlots = 2

// Stream page-type tags. Each stream's pages carry its tag, so a chain
// that wanders into another stream's pages (a corruption mode CRCs
// alone cannot catch when stale pages hold valid old content) is
// detected by tag mismatch.
const (
	// TypeTOC tags the table-of-contents stream (written last, rooted
	// in the header).
	TypeTOC byte = 1
	// TypeManifest tags the top-level manifest stream.
	TypeManifest byte = 2
	// TypeDataset tags the serialized dataset vertices.
	TypeDataset byte = 3
	// TypeIndexMeta tags an index's typed metadata (tree roots,
	// breakpoint tables, amortization state, build options).
	TypeIndexMeta byte = 4
	// TypeIndexPages tags an index's raw device-page image.
	TypeIndexPages byte = 5
	// TypeShardMeta tags a cluster shard's placement metadata.
	TypeShardMeta byte = 6
)

// castagnoli is the CRC32-C table shared by header and page checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// header is the decoded form of a header slot page.
//
//	[0:8]   magic "TRSNAP01"
//	[8:12]  format version (u32 LE)
//	[12:16] block size (u32 LE)
//	[16:24] generation (u64 LE)
//	[24:32] TOC head page (i64 LE)
//	[32:40] TOC payload byte length (u64 LE)
//	[40:44] CRC32-C of bytes [0:40]
type header struct {
	version   uint32
	blockSize uint32
	gen       uint64
	tocHead   blockio.PageID
	tocLen    uint64
}

// headerSize is the encoded header length including its CRC.
const headerSize = 44

// encodeHeader writes h into buf (len >= headerSize; the remainder of
// the page is left as-is and ignored by decode).
func encodeHeader(buf []byte, h header) {
	copy(buf[0:8], magic)
	binary.LittleEndian.PutUint32(buf[8:12], h.version)
	binary.LittleEndian.PutUint32(buf[12:16], h.blockSize)
	binary.LittleEndian.PutUint64(buf[16:24], h.gen)
	binary.LittleEndian.PutUint64(buf[24:32], uint64(h.tocHead))
	binary.LittleEndian.PutUint64(buf[32:40], h.tocLen)
	binary.LittleEndian.PutUint32(buf[40:44], crc32.Checksum(buf[0:40], castagnoli))
}

// decodeHeader parses a header slot. A page that is not a (complete,
// untorn) snapshot header wraps trerr.ErrBadSnapshot; a valid header
// from an incompatible format wraps trerr.ErrSnapshotVersion.
func decodeHeader(buf []byte, blockSize int) (header, error) {
	if len(buf) < headerSize {
		return header{}, fmt.Errorf("snapshot: header short: %w", trerr.ErrBadSnapshot)
	}
	if string(buf[0:8]) != magic {
		return header{}, fmt.Errorf("snapshot: bad magic: %w", trerr.ErrBadSnapshot)
	}
	if got, want := crc32.Checksum(buf[0:40], castagnoli), binary.LittleEndian.Uint32(buf[40:44]); got != want {
		return header{}, fmt.Errorf("snapshot: header checksum mismatch (torn write): %w", trerr.ErrBadSnapshot)
	}
	h := header{
		version:   binary.LittleEndian.Uint32(buf[8:12]),
		blockSize: binary.LittleEndian.Uint32(buf[12:16]),
		gen:       binary.LittleEndian.Uint64(buf[16:24]),
		tocHead:   blockio.PageID(binary.LittleEndian.Uint64(buf[24:32])),
		tocLen:    binary.LittleEndian.Uint64(buf[32:40]),
	}
	if h.version != FormatVersion {
		return header{}, fmt.Errorf("snapshot: format version %d (this build reads %d): %w",
			h.version, FormatVersion, trerr.ErrSnapshotVersion)
	}
	if int(h.blockSize) != blockSize {
		return header{}, fmt.Errorf("snapshot: written with block size %d, opened with %d: %w",
			h.blockSize, blockSize, trerr.ErrBadSnapshot)
	}
	return h, nil
}

// encodePageHeader finalizes a stream page in place: buf is a full
// page whose payload occupies [pageHeaderSize : pageHeaderSize+n).
func encodePageHeader(buf []byte, typ byte, n int, next blockio.PageID) {
	buf[0] = typ
	buf[1] = 0
	binary.LittleEndian.PutUint16(buf[2:4], uint16(n))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[pageHeaderSize:pageHeaderSize+n], castagnoli))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(next))
}

// decodePageHeader validates one stream page — type tag, payload
// bounds, payload CRC — and returns its payload length and successor.
//
//tr:hotpath
func decodePageHeader(buf []byte, wantType byte) (n int, next blockio.PageID, err error) {
	if buf[0] != wantType {
		//tr:alloc-ok corrupt-page error path; the clean path below allocates nothing
		return 0, blockio.InvalidPage, fmt.Errorf("snapshot: page type %d where %d expected: %w",
			buf[0], wantType, trerr.ErrBadSnapshot)
	}
	n = int(binary.LittleEndian.Uint16(buf[2:4]))
	if pageHeaderSize+n > len(buf) {
		//tr:alloc-ok corrupt-page error path
		return 0, blockio.InvalidPage, fmt.Errorf("snapshot: payload length %d exceeds page: %w", n, trerr.ErrBadSnapshot)
	}
	if got, want := crc32.Checksum(buf[pageHeaderSize:pageHeaderSize+n], castagnoli), binary.LittleEndian.Uint32(buf[4:8]); got != want {
		//tr:alloc-ok corrupt-page error path
		return 0, blockio.InvalidPage, fmt.Errorf("snapshot: page checksum mismatch: %w", trerr.ErrBadSnapshot)
	}
	return n, blockio.PageID(binary.LittleEndian.Uint64(buf[8:16])), nil
}
