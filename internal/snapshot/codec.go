package snapshot

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"temporalrank/internal/blockio"
	"temporalrank/internal/trerr"
	"temporalrank/internal/tsdata"
)

// Writer/Reader are sticky-error little-endian codecs over a stream.
// They carry the flat encodings (TOC, dataset vertices, raw device
// images) where reflection-based encoders would dominate restore time;
// structured index metadata rides on encoding/gob on top of the same
// streams.

// Writer encodes primitive values into an io.Writer; the first error
// sticks and subsequent calls are no-ops.
type Writer struct {
	w       io.Writer
	scratch [8]byte
	err     error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, if any.
func (b *Writer) Err() error { return b.err }

func (b *Writer) write(p []byte) {
	if b.err != nil {
		return
	}
	_, b.err = b.w.Write(p)
}

// U8 writes one byte.
func (b *Writer) U8(v byte) { b.write([]byte{v}) }

// U32 writes a little-endian uint32.
func (b *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(b.scratch[:4], v)
	b.write(b.scratch[:4])
}

// U64 writes a little-endian uint64.
func (b *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(b.scratch[:8], v)
	b.write(b.scratch[:8])
}

// I64 writes a little-endian int64.
func (b *Writer) I64(v int64) { b.U64(uint64(v)) }

// F64 writes a float64 bit pattern.
func (b *Writer) F64(v float64) { b.U64(math.Float64bits(v)) }

// Str writes a length-prefixed string (u16 length).
func (b *Writer) Str(s string) {
	if len(s) > math.MaxUint16 {
		if b.err == nil {
			b.err = fmt.Errorf("snapshot: string of %d bytes exceeds format limit", len(s))
		}
		return
	}
	binary.LittleEndian.PutUint16(b.scratch[:2], uint16(len(s)))
	b.write(b.scratch[:2])
	b.write([]byte(s))
}

// F64s writes a float slice (count-free: the caller encodes the count).
// Values are chunked through a page-sized scratch buffer so large
// vertex arrays do not pay one Write call per float.
func (b *Writer) F64s(xs []float64) {
	if b.err != nil {
		return
	}
	buf := blockio.GetPageBuf(blockio.DefaultBlockSize)
	defer blockio.PutPageBuf(buf)
	chunk := *buf
	off := 0
	for _, x := range xs {
		if off+8 > len(chunk) {
			b.write(chunk[:off])
			off = 0
		}
		binary.LittleEndian.PutUint64(chunk[off:off+8], math.Float64bits(x))
		off += 8
	}
	if off > 0 {
		b.write(chunk[:off])
	}
}

// Reader decodes what Writer encodes. Any IO or bounds failure sticks
// and wraps trerr.ErrBadSnapshot: a short read here means a truncated
// or inconsistent stream.
type Reader struct {
	r       io.Reader
	scratch [8]byte
	err     error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Err returns the first decode error, if any.
func (b *Reader) Err() error { return b.err }

func (b *Reader) read(p []byte) bool {
	if b.err != nil {
		return false
	}
	if _, err := io.ReadFull(b.r, p); err != nil {
		b.err = fmt.Errorf("snapshot: short stream: %v: %w", err, trerr.ErrBadSnapshot)
		return false
	}
	return true
}

// U8 reads one byte.
func (b *Reader) U8() byte {
	if !b.read(b.scratch[:1]) {
		return 0
	}
	return b.scratch[0]
}

// U32 reads a little-endian uint32.
func (b *Reader) U32() uint32 {
	if !b.read(b.scratch[:4]) {
		return 0
	}
	return binary.LittleEndian.Uint32(b.scratch[:4])
}

// U64 reads a little-endian uint64.
func (b *Reader) U64() uint64 {
	if !b.read(b.scratch[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(b.scratch[:8])
}

// I64 reads a little-endian int64.
func (b *Reader) I64() int64 { return int64(b.U64()) }

// F64 reads a float64.
func (b *Reader) F64() float64 { return math.Float64frombits(b.U64()) }

// Str reads a length-prefixed string.
func (b *Reader) Str() string {
	if !b.read(b.scratch[:2]) {
		return ""
	}
	n := int(binary.LittleEndian.Uint16(b.scratch[:2]))
	p := make([]byte, n)
	if !b.read(p) {
		return ""
	}
	return string(p)
}

// F64s reads n floats into a fresh slice.
func (b *Reader) F64s(n int) []float64 {
	if b.err != nil {
		return nil
	}
	out := make([]float64, n)
	buf := blockio.GetPageBuf(blockio.DefaultBlockSize)
	defer blockio.PutPageBuf(buf)
	chunk := *buf
	chunk = chunk[:len(chunk)-len(chunk)%8]
	for i := 0; i < n; {
		want := (n - i) * 8
		if want > len(chunk) {
			want = len(chunk)
		}
		if !b.read(chunk[:want]) {
			return nil
		}
		for off := 0; off < want; off += 8 {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[off : off+8]))
			i++
		}
	}
	return out
}

// count reads a u32 count and bounds-checks it against limit.
func (b *Reader) count(what string, limit int) int {
	n := b.U32()
	if b.err != nil {
		return 0
	}
	if int64(n) > int64(limit) {
		b.err = fmt.Errorf("snapshot: implausible %s count %d: %w", what, n, trerr.ErrBadSnapshot)
		return 0
	}
	return int(n)
}

// maxCount bounds every decoded count: far above any real dataset,
// far below anything that could be used to balloon allocations from a
// corrupt length field.
const maxCount = 1 << 30

// encodeTOC writes the table of contents.
func encodeTOC(w io.Writer, toc []StreamInfo) error {
	b := NewWriter(w)
	b.U32(uint32(len(toc)))
	for _, info := range toc {
		b.U8(info.Type)
		b.Str(info.Name)
		b.I64(int64(info.Head))
		b.I64(info.Len)
	}
	return b.Err()
}

// decodeTOC reads the table of contents.
func decodeTOC(r io.Reader) ([]StreamInfo, error) {
	b := NewReader(r)
	n := b.count("stream", 1<<16)
	out := make([]StreamInfo, 0, n)
	for i := 0; i < n; i++ {
		info := StreamInfo{Type: b.U8(), Name: b.Str(), Head: blockio.PageID(b.I64()), Len: b.I64()}
		if b.Err() != nil {
			return nil, b.Err()
		}
		if info.Len < 0 {
			return nil, fmt.Errorf("snapshot: negative stream length for %q: %w", info.Name, trerr.ErrBadSnapshot)
		}
		out = append(out, info)
	}
	return out, b.Err()
}

// WriteDataset serializes the dataset as per-series vertex arrays.
// Series IDs are positional (NewDataset enforces density), so only the
// vertex count and the two float arrays are stored per series; prefix
// sums are recomputed by NewSeries on restore.
func WriteDataset(w io.Writer, ds *tsdata.Dataset) error {
	b := NewWriter(w)
	series := ds.AllSeries()
	b.U32(uint32(len(series)))
	for _, s := range series {
		n := s.NumSegments() + 1
		b.U32(uint32(n))
		for j := 0; j < n; j++ {
			b.F64(s.VertexTime(j))
		}
		for j := 0; j < n; j++ {
			b.F64(s.VertexValue(j))
		}
	}
	return b.Err()
}

// ReadDataset reconstructs a Dataset. All series-level invariants
// (strictly increasing times, finite values) are re-validated by
// NewSeries, so a snapshot that decodes but violates them is rejected
// as ErrBadSnapshot rather than admitted as a malformed DB.
func ReadDataset(r io.Reader) (*tsdata.Dataset, error) {
	b := NewReader(r)
	m := b.count("series", maxCount)
	if b.Err() != nil {
		return nil, b.Err()
	}
	series := make([]*tsdata.Series, 0, m)
	for i := 0; i < m; i++ {
		n := b.count("vertex", maxCount)
		times := b.F64s(n)
		values := b.F64s(n)
		if b.Err() != nil {
			return nil, b.Err()
		}
		s, err := tsdata.NewSeries(tsdata.SeriesID(i), times, values)
		if err != nil {
			return nil, fmt.Errorf("snapshot: series %d invalid: %v: %w", i, err, trerr.ErrBadSnapshot)
		}
		series = append(series, s)
	}
	if b.Err() != nil {
		return nil, b.Err()
	}
	ds, err := tsdata.NewDataset(series)
	if err != nil {
		return nil, fmt.Errorf("snapshot: dataset invalid: %v: %w", err, trerr.ErrBadSnapshot)
	}
	return ds, nil
}

// WriteDevicePages serializes a device's full page image: extent,
// freed slots, then every live page's raw bytes in ascending ID order
// (IDs are implicit in that order). Index nodes embed PageIDs, so the
// image preserves the device's address space exactly — restore
// rebuilds nothing.
func WriteDevicePages(w io.Writer, dev blockio.Device) error {
	extent := blockio.DeviceExtent(dev)
	freed := blockio.DeviceFreed(dev)
	b := NewWriter(w)
	b.U32(uint32(dev.BlockSize()))
	b.I64(int64(extent))
	b.U32(uint32(len(freed)))
	freedSet := make(map[blockio.PageID]bool, len(freed))
	for _, id := range freed {
		b.I64(int64(id))
		freedSet[id] = true
	}
	if b.Err() != nil {
		return b.Err()
	}
	buf := blockio.GetPageBuf(dev.BlockSize())
	defer blockio.PutPageBuf(buf)
	for id := blockio.PageID(0); int(id) < extent; id++ {
		if freedSet[id] {
			continue
		}
		if err := dev.Read(id, *buf); err != nil {
			return fmt.Errorf("snapshot: copy page %d: %w", id, err)
		}
		b.write(*buf)
	}
	return b.Err()
}

// ReadDevicePages reconstructs the device image into a fresh
// MemDevice with a clean IO ledger.
func ReadDevicePages(r io.Reader) (*blockio.MemDevice, error) {
	b := NewReader(r)
	bs := int(b.U32())
	extent := b.I64()
	if b.Err() != nil {
		return nil, b.Err()
	}
	if bs < MinBlockSize || bs > 1<<24 {
		return nil, fmt.Errorf("snapshot: implausible index block size %d: %w", bs, trerr.ErrBadSnapshot)
	}
	if extent < 0 || extent > maxCount {
		return nil, fmt.Errorf("snapshot: implausible device extent %d: %w", extent, trerr.ErrBadSnapshot)
	}
	nFreed := b.count("freed page", maxCount)
	freedSet := make(map[blockio.PageID]bool, nFreed)
	for i := 0; i < nFreed; i++ {
		id := blockio.PageID(b.I64())
		if b.Err() != nil {
			return nil, b.Err()
		}
		if id < 0 || int64(id) >= extent {
			return nil, fmt.Errorf("snapshot: freed page %d outside extent %d: %w", id, extent, trerr.ErrBadSnapshot)
		}
		freedSet[id] = true
	}
	dev := blockio.NewMemDevice(bs)
	for i := int64(0); i < extent; i++ {
		if _, err := dev.Alloc(); err != nil {
			return nil, err
		}
	}
	buf := blockio.GetPageBuf(bs)
	defer blockio.PutPageBuf(buf)
	for id := blockio.PageID(0); int64(id) < extent; id++ {
		if freedSet[id] {
			continue
		}
		if !b.read(*buf) {
			return nil, b.Err()
		}
		if err := dev.Write(id, *buf); err != nil {
			return nil, err
		}
	}
	for id := blockio.PageID(0); int64(id) < extent; id++ {
		if freedSet[id] {
			if err := dev.Free(id); err != nil {
				return nil, err
			}
		}
	}
	dev.ResetStats()
	return dev, nil
}
