package snapshot

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"temporalrank/internal/blockio"
	"temporalrank/internal/trerr"
)

// StreamInfo describes one named stream of the live generation.
type StreamInfo struct {
	Name string
	Type byte
	Head blockio.PageID
	Len  int64
}

// Store mediates all access to one snapshot device: it owns the shadow
// header pair, the live generation's page set, and the derived free
// set new checkpoints draw from. A Store is single-writer: callers
// serialize Begin/Commit externally (the public Checkpoint APIs hold
// the DB/Planner locks across the whole operation anyway).
type Store struct {
	dev blockio.Device
	bs  int

	gen  uint64
	slot int // header slot of the live generation; -1 when none
	verr error
	// degraded: a header decoded but its chains did not — Load fails,
	// and the next checkpoint reclaims every data page.
	degraded bool
	toc      []StreamInfo
	live     map[blockio.PageID]struct{}
}

// Open reads the shadow headers (when present) and walks the live
// generation's chains to learn which pages it owns. A fresh or
// garbage device yields an empty store: Err reports ErrBadSnapshot
// (nothing to restore) but Begin still works, so the same call serves
// first-checkpoint and re-checkpoint paths. The one exception is a
// device holding a *newer-format* snapshot: Open succeeds but both
// Err and Begin report ErrSnapshotVersion, so an old binary neither
// misreads nor clobbers it.
func Open(dev blockio.Device) (*Store, error) {
	bs := dev.BlockSize()
	if bs < MinBlockSize {
		return nil, fmt.Errorf("snapshot: block size %d below minimum %d: %w", bs, MinBlockSize, trerr.ErrBadConfig)
	}
	s := &Store{dev: dev, bs: bs, slot: -1, live: make(map[blockio.PageID]struct{})}
	extent := blockio.DeviceExtent(dev)
	if extent == 0 {
		return s, nil
	}
	var (
		best     header
		bestSlot = -1
		verr     error
	)
	buf := make([]byte, bs)
	for slot := 0; slot < headerSlots && slot < extent; slot++ {
		if err := dev.Read(blockio.PageID(slot), buf); err != nil {
			return nil, fmt.Errorf("snapshot: read header slot %d: %w", slot, err)
		}
		h, err := decodeHeader(buf, bs)
		if err != nil {
			if isVersionErr(err) {
				verr = err
			}
			continue
		}
		if bestSlot == -1 || h.gen > best.gen {
			best, bestSlot = h, slot
		}
	}
	if bestSlot == -1 {
		// No readable generation. If a newer-format header is present,
		// refuse to treat the device as free space.
		s.verr = verr
		return s, nil
	}
	s.gen, s.slot = best.gen, bestSlot
	if err := s.loadGeneration(best); err != nil {
		// The header committed but its chains are unreadable (bit rot or
		// an externally truncated file). Nothing restorable remains;
		// remember why so Load can report it, and let the next
		// checkpoint start from a clean slate.
		s.degraded = true
		s.toc = nil
		s.live = make(map[blockio.PageID]struct{})
	}
	return s, nil
}

func isVersionErr(err error) bool { return errors.Is(err, trerr.ErrSnapshotVersion) }

// loadGeneration walks the TOC and every stream chain, populating
// s.toc and s.live.
func (s *Store) loadGeneration(h header) error {
	tocR := &StreamReader{
		s:         s,
		typ:       TypeTOC,
		next:      h.tocHead,
		remaining: int64(h.tocLen),
		visit:     s.visitLive,
	}
	toc, err := decodeTOC(tocR)
	if err != nil {
		return err
	}
	for _, info := range toc {
		r := &StreamReader{s: s, typ: info.Type, next: info.Head, remaining: info.Len, visit: s.visitLive}
		if _, err := io.Copy(io.Discard, r); err != nil {
			return fmt.Errorf("snapshot: stream %q: %w", info.Name, err)
		}
	}
	s.toc = toc
	return nil
}

func (s *Store) visitLive(id blockio.PageID) { s.live[id] = struct{}{} }

// Generation returns the live generation number (0 when none).
func (s *Store) Generation() uint64 { return s.gen }

// Err reports whether the store holds a restorable generation: nil
// when it does, ErrSnapshotVersion for a newer-format snapshot, and
// ErrBadSnapshot otherwise (fresh device, torn first checkpoint, or
// corrupt chains).
func (s *Store) Err() error {
	switch {
	case s.verr != nil:
		return s.verr
	case s.slot == -1:
		return fmt.Errorf("snapshot: no completed checkpoint on device: %w", trerr.ErrBadSnapshot)
	case s.degraded:
		return fmt.Errorf("snapshot: generation %d has unreadable pages: %w", s.gen, trerr.ErrBadSnapshot)
	}
	return nil
}

// Streams lists the live generation's streams in checkpoint order.
func (s *Store) Streams() ([]StreamInfo, error) {
	if err := s.Err(); err != nil {
		return nil, err
	}
	out := make([]StreamInfo, len(s.toc))
	copy(out, s.toc)
	return out, nil
}

// OpenStream returns a verifying reader over the named stream of the
// live generation.
func (s *Store) OpenStream(name string, wantType byte) (io.Reader, error) {
	if err := s.Err(); err != nil {
		return nil, err
	}
	for _, info := range s.toc {
		if info.Name != name {
			continue
		}
		if info.Type != wantType {
			return nil, fmt.Errorf("snapshot: stream %q has type %d, want %d: %w",
				name, info.Type, wantType, trerr.ErrBadSnapshot)
		}
		return &StreamReader{s: s, typ: info.Type, next: info.Head, remaining: info.Len}, nil
	}
	return nil, fmt.Errorf("snapshot: stream %q not in snapshot: %w", name, trerr.ErrBadSnapshot)
}

// Checkpoint is one in-progress generation write. Streams are written
// one at a time; Commit atomically publishes them as the new live
// generation. On any error the caller abandons the Checkpoint — the
// device still holds the previous generation, and a later Begin
// reclaims whatever the failed attempt wrote.
type Checkpoint struct {
	s       *Store
	free    []blockio.PageID // reusable pages, ascending
	freeIdx int
	pages   []blockio.PageID // pages written by this checkpoint
	toc     []StreamInfo
	cur     *StreamWriter
	err     error
	done    bool
}

// Begin starts a new checkpoint. The header pair is allocated on a
// fresh device, and the free set is derived as "every data page the
// live generation does not own" — which transparently reclaims dead
// generations and the debris of interrupted checkpoints.
func (s *Store) Begin() (*Checkpoint, error) {
	if s.verr != nil {
		return nil, fmt.Errorf("snapshot: refusing to overwrite newer-format snapshot: %w", s.verr)
	}
	for blockio.DeviceExtent(s.dev) < headerSlots {
		id, err := s.dev.Alloc()
		if err != nil {
			return nil, fmt.Errorf("snapshot: allocate header page: %w", err)
		}
		if int(id) >= headerSlots {
			return nil, fmt.Errorf("snapshot: device handed page %d for a header slot: %w", id, trerr.ErrBadConfig)
		}
	}
	cp := &Checkpoint{s: s}
	extent := blockio.DeviceExtent(s.dev)
	for id := blockio.PageID(headerSlots); int(id) < extent; id++ {
		if _, ok := s.live[id]; !ok {
			cp.free = append(cp.free, id)
		}
	}
	sort.Slice(cp.free, func(i, j int) bool { return cp.free[i] < cp.free[j] })
	return cp, nil
}

// alloc hands out the next page for this checkpoint: reuse before
// extension.
func (cp *Checkpoint) alloc() (blockio.PageID, error) {
	if cp.freeIdx < len(cp.free) {
		id := cp.free[cp.freeIdx]
		cp.freeIdx++
		return id, nil
	}
	id, err := cp.s.dev.Alloc()
	if err != nil {
		return blockio.InvalidPage, fmt.Errorf("snapshot: grow device: %w", err)
	}
	return id, nil
}

// Stream opens the next named stream for writing. The previous stream
// must be closed first.
func (cp *Checkpoint) Stream(name string, typ byte) (*StreamWriter, error) {
	if cp.err != nil {
		return nil, cp.err
	}
	if cp.done {
		return nil, fmt.Errorf("snapshot: checkpoint already committed: %w", trerr.ErrBadConfig)
	}
	if cp.cur != nil {
		return nil, fmt.Errorf("snapshot: stream %q still open: %w", cp.cur.name, trerr.ErrBadConfig)
	}
	head, err := cp.alloc()
	if err != nil {
		cp.err = err
		return nil, err
	}
	w := &StreamWriter{
		cp:    cp,
		name:  name,
		typ:   typ,
		head:  head,
		curID: head,
		buf:   make([]byte, cp.s.bs),
		off:   pageHeaderSize,
	}
	cp.cur = w
	return w, nil
}

// Commit writes the TOC, syncs the data pages, publishes the new
// header into the standby slot, and syncs again — the two barriers of
// the shadow-header protocol. On success the store's live generation
// advances; on failure the previous generation remains the live one.
func (cp *Checkpoint) Commit() error {
	if cp.err != nil {
		return cp.err
	}
	if cp.done {
		return fmt.Errorf("snapshot: checkpoint already committed: %w", trerr.ErrBadConfig)
	}
	if cp.cur != nil {
		return fmt.Errorf("snapshot: stream %q still open at commit: %w", cp.cur.name, trerr.ErrBadConfig)
	}
	toc := cp.toc
	w, err := cp.Stream("", TypeTOC)
	if err != nil {
		return err
	}
	if err := encodeTOC(w, toc); err != nil {
		cp.err = err
		return err
	}
	tocHead, tocLen := w.head, w.n
	if err := w.Close(); err != nil {
		return err
	}
	cp.toc = toc // drop the TOC's own self-entry appended by Close
	// Barrier 1: every data page durable before the header points at it.
	if err := blockio.SyncDevice(cp.s.dev); err != nil {
		cp.err = err
		return fmt.Errorf("snapshot: sync data pages: %w", err)
	}
	s := cp.s
	newGen := s.gen + 1
	slot := 0
	if s.slot == 0 {
		slot = 1
	}
	hbuf := make([]byte, s.bs)
	encodeHeader(hbuf, header{
		version:   FormatVersion,
		blockSize: uint32(s.bs),
		gen:       newGen,
		tocHead:   tocHead,
		tocLen:    uint64(tocLen),
	})
	if err := s.dev.Write(blockio.PageID(slot), hbuf); err != nil {
		cp.err = err
		return fmt.Errorf("snapshot: write header: %w", err)
	}
	// Barrier 2: the new generation is live only once its header is on
	// stable storage.
	if err := blockio.SyncDevice(s.dev); err != nil {
		cp.err = err
		return fmt.Errorf("snapshot: sync header: %w", err)
	}
	s.gen, s.slot = newGen, slot
	s.toc = toc
	s.degraded = false
	s.live = make(map[blockio.PageID]struct{}, len(cp.pages))
	for _, id := range cp.pages {
		s.live[id] = struct{}{}
	}
	cp.done = true
	return nil
}

// StreamWriter buffers one page at a time and chains full pages
// through the checkpoint's allocator. It implements io.Writer.
type StreamWriter struct {
	cp     *Checkpoint
	name   string
	typ    byte
	head   blockio.PageID
	curID  blockio.PageID
	buf    []byte
	off    int
	n      int64
	closed bool
}

// Write implements io.Writer.
func (w *StreamWriter) Write(p []byte) (int, error) {
	if w.cp.err != nil {
		return 0, w.cp.err
	}
	if w.closed {
		return 0, fmt.Errorf("snapshot: write to closed stream %q: %w", w.name, trerr.ErrBadConfig)
	}
	total := len(p)
	for len(p) > 0 {
		if w.off == len(w.buf) {
			if err := w.flush(true); err != nil {
				return total - len(p), err
			}
		}
		n := copy(w.buf[w.off:], p)
		w.off += n
		w.n += int64(n)
		p = p[n:]
	}
	return total, nil
}

// flush finalizes the current page — allocating and linking a
// successor when more data follows — and writes it out.
func (w *StreamWriter) flush(more bool) error {
	next := blockio.InvalidPage
	if more {
		id, err := w.cp.alloc()
		if err != nil {
			w.cp.err = err
			return err
		}
		next = id
	}
	encodePageHeader(w.buf, w.typ, w.off-pageHeaderSize, next)
	if err := w.cp.s.dev.Write(w.curID, w.buf); err != nil {
		w.cp.err = fmt.Errorf("snapshot: write page %d: %w", w.curID, err)
		return w.cp.err
	}
	w.cp.pages = append(w.cp.pages, w.curID)
	w.curID = next
	w.off = pageHeaderSize
	return nil
}

// Close finalizes the last page and registers the stream in the
// checkpoint's TOC.
func (w *StreamWriter) Close() error {
	if w.cp.err != nil {
		return w.cp.err
	}
	if w.closed {
		return nil
	}
	if err := w.flush(false); err != nil {
		return err
	}
	w.closed = true
	w.cp.cur = nil
	w.cp.toc = append(w.cp.toc, StreamInfo{Name: w.name, Type: w.typ, Head: w.head, Len: w.n})
	return nil
}

// StreamReader reads a chained stream back, verifying each page's type
// tag and CRC before handing out its payload. It implements io.Reader;
// any integrity failure wraps trerr.ErrBadSnapshot.
type StreamReader struct {
	s         *Store
	typ       byte
	next      blockio.PageID
	remaining int64
	buf       []byte
	off       int
	avail     int
	visit     func(blockio.PageID) // optional: live-set collection during Open
}

// Read implements io.Reader.
func (r *StreamReader) Read(p []byte) (int, error) {
	if r.off == r.avail {
		if r.remaining == 0 {
			return 0, io.EOF
		}
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	n := copy(p, r.buf[r.off:r.avail])
	r.off += n
	return n, nil
}

// fill loads and verifies the next page of the chain.
func (r *StreamReader) fill() error {
	if r.next == blockio.InvalidPage {
		return fmt.Errorf("snapshot: stream truncated with %d bytes missing: %w", r.remaining, trerr.ErrBadSnapshot)
	}
	if r.buf == nil {
		r.buf = make([]byte, r.s.bs)
	}
	id := r.next
	if err := r.s.dev.Read(id, r.buf); err != nil {
		return fmt.Errorf("snapshot: read page %d: %v: %w", id, err, trerr.ErrBadSnapshot)
	}
	n, next, err := decodePageHeader(r.buf, r.typ)
	if err != nil {
		return fmt.Errorf("snapshot: page %d: %w", id, err)
	}
	if n == 0 || int64(n) > r.remaining {
		return fmt.Errorf("snapshot: page %d payload %d inconsistent with stream length: %w", id, n, trerr.ErrBadSnapshot)
	}
	if r.visit != nil {
		r.visit(id)
	}
	r.remaining -= int64(n)
	r.next = next
	r.off = pageHeaderSize
	r.avail = pageHeaderSize + n
	return nil
}
