package memtable

import (
	"sync"
	"sync/atomic"
)

// Gen is one immutable generation of the delta layer: a base B (the
// compacted dataset + indexes, opaque to this package), an optional
// frozen table a compaction is draining, and the active table taking
// writes. Generations are never mutated — transitions build a new Gen
// and publish it atomically — so a reader holding a *Gen sees a
// consistent base/frozen/active triple for as long as it likes.
type Gen[B any] struct {
	Base   B
	Frozen *Table
	Active *Table
}

// Layer is the generation holder: readers pin the current generation
// with one atomic load; writers insert into the pinned generation's
// active table under a shared lock; freeze/install transitions swap the
// generation under the exclusive side of the same lock, so a transition
// waits out in-flight appends and no append can land in a table after
// it freezes.
type Layer[B any] struct {
	// swapMu orders appends against generation swaps. It ranks above
	// the table stripe locks: Append acquires a stripe while holding
	// swapMu.RLock, never the reverse.
	swapMu sync.RWMutex //tr:lockrank 1
	gen    atomic.Pointer[Gen[B]]
}

// NewLayer creates a layer publishing g as the current generation.
func NewLayer[B any](g *Gen[B]) *Layer[B] {
	l := &Layer[B]{}
	l.gen.Store(g)
	return l
}

// Load pins and returns the current generation. Lock-free.
//
//tr:hotpath
func (l *Layer[B]) Load() *Gen[B] { return l.gen.Load() }

// Append inserts one segment into the current generation's active
// table, returning the series' previous end time. The shared swap lock
// guarantees the insert lands in a table that is still active — a
// concurrent freeze waits for it.
//
//tr:hotpath
func (l *Layer[B]) Append(id int, t, v float64) (prevEnd float64, err error) {
	l.swapMu.RLock()
	prevEnd, err = l.gen.Load().Active.Append(id, t, v)
	l.swapMu.RUnlock()
	return prevEnd, err
}

// Update publishes f(current) as the new generation and returns it,
// holding the exclusive swap lock across the transition. f must be
// brief (build work belongs between transitions, not inside one) and
// may return its argument unchanged to decline the transition.
func (l *Layer[B]) Update(f func(old *Gen[B]) *Gen[B]) *Gen[B] {
	l.swapMu.Lock()
	g := f(l.gen.Load())
	l.gen.Store(g)
	l.swapMu.Unlock()
	return g
}
