package memtable

import "sync/atomic"

// bloomWords is the fixed filter size in 64-bit words: 1 KiB per table,
// 8192 bits. With two probes per key the false-positive rate stays
// under ~1% up to roughly a thousand distinct series per table, and a
// false positive only costs one stripe map lookup.
const bloomWords = 128

// bloom is a fixed-size concurrent bloom filter over series ids. Adds
// and queries are lock-free; a query that races an add may miss the key
// (callers already order acknowledgement after the add).
type bloom struct {
	words []atomic.Uint64
}

func (b *bloom) init() {
	b.words = make([]atomic.Uint64, bloomWords)
}

// mix is splitmix64's finalizer: a cheap, well-distributed hash for
// small integer keys.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// probes derives two independent bit positions for key.
func probes(key uint64) (uint64, uint64) {
	h := mix(key + 0x9e3779b97f4a7c15)
	const bits = bloomWords * 64
	return h % bits, (h >> 32) % bits
}

//tr:hotpath
func (b *bloom) add(key uint64) {
	p1, p2 := probes(key)
	b.words[p1/64].Or(1 << (p1 % 64))
	b.words[p2/64].Or(1 << (p2 % 64))
}

//tr:hotpath
func (b *bloom) mayContain(key uint64) bool {
	p1, p2 := probes(key)
	if b.words[p1/64].Load()&(1<<(p1%64)) == 0 {
		return false
	}
	return b.words[p2/64].Load()&(1<<(p2%64)) != 0
}
