// Package memtable is the write-optimized delta layer in front of the
// immutable indexes: recent appends land in an in-memory table of
// per-series sorted runs (guarded by striped locks, summarized by a
// bloom filter) instead of mutating the indexes under an exclusive
// lock. Queries merge the table's deltas with the frozen base; a
// background compaction drains a frozen table into freshly built
// indexes without ever blocking readers or writers.
//
// The layer holds generations: an immutable base B (dataset + indexes),
// an optional frozen table being compacted, and the active table taking
// writes. Readers pin a generation with one atomic load; compaction
// publishes a new generation with one atomic store. The only write-path
// lock is a short striped mutex per series bucket plus a read-lock on
// the generation-swap mutex, so concurrent appenders to different
// series never contend.
package memtable

import (
	"fmt"
	"sync"
	"sync/atomic"

	"temporalrank/internal/tsdata"
)

// FrontierFunc resolves the current end vertex (time, value) of a
// series in the layers below a table — the frozen table if it holds the
// series, otherwise the base dataset. ok is false for unknown ids.
type FrontierFunc func(id int) (t, v float64, ok bool)

// stripeCount is the default number of lock stripes (must be a power of
// two). 16 keeps contention negligible at typical writer counts while
// costing ~1 KiB per table.
const stripeCount = 16

// stripe is one lock bucket of the table. The stripe mutex ranks below
// the layer's generation-swap lock: Append holds swapMu.RLock around a
// stripe acquisition, never the reverse.
type stripe struct {
	mu   sync.RWMutex //tr:lockrank 2
	runs map[int]*tsdata.Series
}

// Table is one memtable: per-series sorted runs of recently appended
// segments. Each run is a tsdata.Series whose first vertex is the
// series' frontier at the time of its first memtable append, so the
// run's prefix sums are exactly the delta the base is missing. Safe for
// concurrent use.
type Table struct {
	frontier FrontierFunc
	mask     uint32
	stripes  []stripe
	bloom    bloom
	segs     atomic.Int64
}

// NewTable creates an empty table. stripes is rounded up to a power of
// two (<= 0 selects the default); frontier resolves first-append base
// vertices and must remain valid for the table's lifetime.
func NewTable(frontier FrontierFunc, stripes int) *Table {
	n := stripeCount
	if stripes > 0 {
		n = 1
		for n < stripes {
			n <<= 1
		}
	}
	t := &Table{frontier: frontier, mask: uint32(n - 1), stripes: make([]stripe, n)}
	for i := range t.stripes {
		t.stripes[i].runs = make(map[int]*tsdata.Series)
	}
	t.bloom.init()
	return t
}

// Append inserts one segment extending series id to (ts, v), returning
// the series' previous end time (the new segment covers (prevEnd, ts]).
// The frontier for a first append is resolved with no stripe lock held
// — the FrontierFunc may itself read another table's stripes.
//
//tr:hotpath
func (t *Table) Append(id int, ts, v float64) (prevEnd float64, err error) {
	st := &t.stripes[uint32(id)&t.mask]
	st.mu.Lock()
	if r := st.runs[id]; r != nil {
		prev := r.End()
		err := r.Append(ts, v)
		st.mu.Unlock()
		if err != nil {
			return prev, err
		}
		t.segs.Add(1)
		return prev, nil
	}
	st.mu.Unlock()

	ft, fv, ok := t.frontier(id)
	if !ok {
		//tr:alloc-ok error path, not reached on successful appends
		return 0, fmt.Errorf("memtable: unknown series %d", id)
	}

	st.mu.Lock()
	if r := st.runs[id]; r != nil {
		// Raced with another first appender: the run exists now.
		prev := r.End()
		err := r.Append(ts, v)
		st.mu.Unlock()
		if err != nil {
			return prev, err
		}
		t.segs.Add(1)
		return prev, nil
	}
	//tr:alloc-ok first append to a series creates its run
	r, err := tsdata.NewSeries(tsdata.SeriesID(id), []float64{ft, ts}, []float64{fv, v})
	if err != nil {
		st.mu.Unlock()
		//tr:alloc-ok error path, not reached on successful appends
		return ft, fmt.Errorf("memtable: series %d: %w", id, err)
	}
	st.runs[id] = r
	st.mu.Unlock()
	t.segs.Add(1)
	t.bloom.add(uint64(id))
	return ft, nil
}

// Segments returns the number of segments appended so far.
func (t *Table) Segments() int64 { return t.segs.Load() }

// MayContain reports whether the table can hold a run for id; false is
// definitive.
//
//tr:hotpath
func (t *Table) MayContain(id int) bool {
	return t.segs.Load() != 0 && t.bloom.mayContain(uint64(id))
}

// Frontier returns the end vertex of id's run, if the table holds one.
//
//tr:hotpath
func (t *Table) Frontier(id int) (ts, v float64, ok bool) {
	if !t.MayContain(id) {
		return 0, 0, false
	}
	st := &t.stripes[uint32(id)&t.mask]
	st.mu.RLock()
	r := st.runs[id]
	if r == nil {
		st.mu.RUnlock()
		return 0, 0, false
	}
	ts, v = r.End(), r.VertexValue(r.NumSegments())
	st.mu.RUnlock()
	return ts, v, true
}

// Delta returns the integral of id's run over [t1, t2] — the mass the
// base layers are missing for that window. Zero when the table has no
// overlapping run.
//
//tr:hotpath
func (t *Table) Delta(id int, t1, t2 float64) float64 {
	if !t.MayContain(id) {
		return 0
	}
	st := &t.stripes[uint32(id)&t.mask]
	st.mu.RLock()
	r := st.runs[id]
	var d float64
	if r != nil {
		d = r.Range(t1, t2)
	}
	st.mu.RUnlock()
	return d
}

// At returns the value of id's run at ts, and whether the run covers ts
// — its domain is the half-open (start, end], start being the frontier
// the base already answers for.
//
//tr:hotpath
func (t *Table) At(id int, ts float64) (float64, bool) {
	if !t.MayContain(id) {
		return 0, false
	}
	st := &t.stripes[uint32(id)&t.mask]
	st.mu.RLock()
	r := st.runs[id]
	var v float64
	ok := false
	if r != nil && r.Start() < ts && ts <= r.End() {
		v, ok = r.At(ts), true
	}
	st.mu.RUnlock()
	return v, ok
}

// CollectRange calls f(id, delta) for every run whose appended mass
// overlaps the window [t1, t2] (a run's mass lies in (start, end]).
// f runs with the stripe read lock held and must not call back into the
// table.
//
//tr:hotpath
func (t *Table) CollectRange(t1, t2 float64, f func(id int, delta float64)) {
	if t.segs.Load() == 0 {
		return
	}
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.RLock()
		for id, r := range st.runs {
			if r.Start() < t2 && t1 < r.End() {
				f(id, r.Range(t1, t2))
			}
		}
		st.mu.RUnlock()
	}
}

// CollectAt calls f(id, value) for every run covering the instant ts
// (domain (start, end]). f runs with the stripe read lock held and must
// not call back into the table.
//
//tr:hotpath
func (t *Table) CollectAt(ts float64, f func(id int, v float64)) {
	if t.segs.Load() == 0 {
		return
	}
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.RLock()
		for id, r := range st.runs {
			if r.Start() < ts && ts <= r.End() {
				f(id, r.At(ts))
			}
		}
		st.mu.RUnlock()
	}
}

// All streams every run's appended vertices (excluding the seed
// frontier vertex) to f, stripe by stripe. It is meant for compaction
// of a frozen table: callers must ensure no concurrent appends, so the
// vertex slices passed to f are stable snapshots.
func (t *Table) All(f func(id int, times, values []float64)) {
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.RLock()
		type snap struct {
			id            int
			times, values []float64
		}
		snaps := make([]snap, 0, len(st.runs))
		for id, r := range st.runs {
			n := r.NumSegments()
			times := make([]float64, n)
			values := make([]float64, n)
			for j := 1; j <= n; j++ {
				times[j-1] = r.VertexTime(j)
				values[j-1] = r.VertexValue(j)
			}
			snaps = append(snaps, snap{id: id, times: times, values: values})
		}
		st.mu.RUnlock()
		for _, s := range snaps {
			f(s.id, s.times, s.values)
		}
	}
}

// NumSeries returns how many series currently hold runs.
func (t *Table) NumSeries() int {
	n := 0
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.RLock()
		n += len(st.runs)
		st.mu.RUnlock()
	}
	return n
}
