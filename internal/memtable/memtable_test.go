package memtable

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// flatFrontier is a FrontierFunc over n series all ending at (t0, v0).
func flatFrontier(n int, t0, v0 float64) FrontierFunc {
	return func(id int) (float64, float64, bool) {
		if id < 0 || id >= n {
			return 0, 0, false
		}
		return t0, v0, true
	}
}

func TestTableAppendAndFrontier(t *testing.T) {
	tb := NewTable(flatFrontier(4, 10, 2), 0)
	if tb.Segments() != 0 || tb.NumSeries() != 0 {
		t.Fatal("fresh table not empty")
	}
	if tb.MayContain(1) {
		t.Fatal("empty table claims series 1")
	}

	prev, err := tb.Append(1, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if prev != 10 {
		t.Fatalf("first append prevEnd %g, want the base frontier 10", prev)
	}
	prev, err = tb.Append(1, 14, 6)
	if err != nil {
		t.Fatal(err)
	}
	if prev != 12 {
		t.Fatalf("second append prevEnd %g, want 12", prev)
	}
	if tb.Segments() != 2 || tb.NumSeries() != 1 {
		t.Fatalf("got %d segments / %d series, want 2 / 1", tb.Segments(), tb.NumSeries())
	}
	if !tb.MayContain(1) {
		t.Fatal("bloom lost series 1")
	}
	ts, v, ok := tb.Frontier(1)
	if !ok || ts != 14 || v != 6 {
		t.Fatalf("frontier (%g, %g, %v), want (14, 6, true)", ts, v, ok)
	}
	if _, _, ok := tb.Frontier(2); ok {
		t.Fatal("frontier for an absent series")
	}

	// Violations: unknown series, behind-frontier time.
	if _, err := tb.Append(99, 20, 1); err == nil {
		t.Fatal("unknown series accepted")
	}
	if _, err := tb.Append(1, 13, 1); err == nil {
		t.Fatal("behind-frontier append accepted")
	}
	if _, err := tb.Append(2, 9, 1); err == nil {
		t.Fatal("first append behind the base frontier accepted")
	}
}

func TestTableDeltaAndAt(t *testing.T) {
	// Base frontier (10, 2); run vertices (10,2) -> (12,4) -> (14,0).
	tb := NewTable(flatFrontier(2, 10, 2), 0)
	mustAppend := func(id int, ts, v float64) {
		t.Helper()
		if _, err := tb.Append(id, ts, v); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(0, 12, 4)
	mustAppend(0, 14, 0)

	// Full-run integral: trapezoids (2+4)/2*2 + (4+0)/2*2 = 6 + 4 = 10.
	if d := tb.Delta(0, 10, 14); math.Abs(d-10) > 1e-12 {
		t.Fatalf("full delta %g, want 10", d)
	}
	// Clipped to [11, 13]: value at 11 is 3, at 12 is 4, at 13 is 2 →
	// (3+4)/2 + (4+2)/2 = 3.5 + 3 = 6.5.
	if d := tb.Delta(0, 11, 13); math.Abs(d-6.5) > 1e-12 {
		t.Fatalf("clipped delta %g, want 6.5", d)
	}
	// Outside the run and absent series contribute nothing.
	if d := tb.Delta(0, 20, 30); d != 0 {
		t.Fatalf("beyond-run delta %g, want 0", d)
	}
	if d := tb.Delta(1, 10, 14); d != 0 {
		t.Fatalf("absent-series delta %g, want 0", d)
	}

	// At: domain is (start, end] — the frontier instant belongs to the
	// base, the end instant to the run.
	if _, ok := tb.At(0, 10); ok {
		t.Fatal("At(10) covered: the frontier vertex belongs to the base")
	}
	if v, ok := tb.At(0, 12); !ok || v != 4 {
		t.Fatalf("At(12) = (%g, %v), want (4, true)", v, ok)
	}
	if v, ok := tb.At(0, 14); !ok || v != 0 {
		t.Fatalf("At(14) = (%g, %v), want (0, true)", v, ok)
	}
	if v, ok := tb.At(0, 13); !ok || math.Abs(v-2) > 1e-12 {
		t.Fatalf("At(13) = (%g, %v), want (2, true)", v, ok)
	}
	if _, ok := tb.At(0, 15); ok {
		t.Fatal("At beyond the run covered")
	}
}

func TestTableCollect(t *testing.T) {
	tb := NewTable(flatFrontier(8, 0, 0), 2)
	for id := 0; id < 4; id++ {
		if _, err := tb.Append(id, float64(10+id), 1); err != nil {
			t.Fatal(err)
		}
	}
	got := map[int]float64{}
	tb.CollectRange(0, 20, func(id int, d float64) { got[id] = d })
	if len(got) != 4 {
		t.Fatalf("CollectRange found %d series, want 4", len(got))
	}
	// Run for id covers (0, 10+id] with values 0→1: mass (10+id)/2.
	for id, d := range got {
		want := float64(10+id) / 2
		if math.Abs(d-want) > 1e-12 {
			t.Fatalf("series %d delta %g, want %g", id, d, want)
		}
	}
	// A window before every run's mass (all runs start at 0, exclusive).
	none := 0
	tb.CollectRange(-5, 0, func(int, float64) { none++ })
	if none != 0 {
		t.Fatalf("window ending at the shared frontier matched %d runs", none)
	}
	ids := []int{}
	tb.CollectAt(10, func(id int, v float64) { ids = append(ids, id) })
	sort.Ints(ids)
	if len(ids) != 4 {
		t.Fatalf("CollectAt(10) matched %v, want all 4 runs", ids)
	}
}

func TestTableAllSnapshots(t *testing.T) {
	tb := NewTable(flatFrontier(8, 5, 1), 0)
	want := map[int][][2]float64{}
	for id := 0; id < 5; id++ {
		for j := 0; j < 3; j++ {
			ts := 5 + float64(j+1)
			v := float64(id*10 + j)
			if _, err := tb.Append(id, ts, v); err != nil {
				t.Fatal(err)
			}
			want[id] = append(want[id], [2]float64{ts, v})
		}
	}
	seen := map[int]bool{}
	tb.All(func(id int, times, values []float64) {
		if seen[id] {
			t.Fatalf("series %d streamed twice", id)
		}
		seen[id] = true
		w := want[id]
		if len(times) != len(w) || len(values) != len(w) {
			t.Fatalf("series %d: %d vertices, want %d", id, len(times), len(w))
		}
		for j := range w {
			if times[j] != w[j][0] || values[j] != w[j][1] {
				t.Fatalf("series %d vertex %d: (%g, %g), want (%g, %g)",
					id, j, times[j], values[j], w[j][0], w[j][1])
			}
		}
	})
	if len(seen) != 5 {
		t.Fatalf("All streamed %d series, want 5", len(seen))
	}
}

func TestTableConcurrentAppend(t *testing.T) {
	const (
		series  = 64
		writers = 8
		perID   = 50
	)
	tb := NewTable(flatFrontier(series, 0, 0), 0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer owns a disjoint slice of series, so appends per
			// series are ordered and must all succeed.
			for i := 0; i < perID; i++ {
				for id := w; id < series; id += writers {
					if _, err := tb.Append(id, float64(i+1), float64(i)); err != nil {
						t.Errorf("writer %d series %d: %v", w, id, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tb.Segments(); got != series*perID {
		t.Fatalf("%d segments, want %d", got, series*perID)
	}
	if got := tb.NumSeries(); got != series {
		t.Fatalf("%d series, want %d", got, series)
	}
	for id := 0; id < series; id++ {
		if ts, _, ok := tb.Frontier(id); !ok || ts != perID {
			t.Fatalf("series %d frontier (%g, %v), want (%d, true)", id, ts, ok, perID)
		}
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	var b bloom
	b.init()
	rng := rand.New(rand.NewSource(7))
	added := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		k := rng.Uint64() % 10000
		b.add(k)
		added[k] = true
	}
	for k := range added {
		if !b.mayContain(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
	// False-positive sanity: with 500 keys in 8192 bits / 2 probes the
	// rate should stay well under 50% — this guards against a broken
	// hash collapsing everything onto one word.
	fp := 0
	for k := uint64(20000); k < 21000; k++ {
		if b.mayContain(k) {
			fp++
		}
	}
	if fp > 500 {
		t.Fatalf("%d/1000 false positives — filter degenerate", fp)
	}
}

func TestLayerGenerations(t *testing.T) {
	type base struct{ gen int }
	active := NewTable(flatFrontier(4, 0, 0), 0)
	l := NewLayer(&Gen[base]{Base: base{gen: 0}, Active: active})

	if _, err := l.Append(1, 5, 2); err != nil {
		t.Fatal(err)
	}
	g := l.Load()
	if g.Active != active || g.Frozen != nil || g.Base.gen != 0 {
		t.Fatal("load returned a different generation")
	}

	// Freeze: active becomes frozen, a fresh table takes writes.
	fresh := NewTable(flatFrontier(4, 0, 0), 0)
	g2 := l.Update(func(old *Gen[base]) *Gen[base] {
		return &Gen[base]{Base: old.Base, Frozen: old.Active, Active: fresh}
	})
	if g2.Frozen != active || g2.Active != fresh {
		t.Fatal("freeze transition wrong")
	}
	if g.Frozen != nil {
		t.Fatal("previously pinned generation mutated")
	}
	// Install: frozen drains into a new base.
	g3 := l.Update(func(old *Gen[base]) *Gen[base] {
		return &Gen[base]{Base: base{gen: 1}, Active: old.Active}
	})
	if g3.Frozen != nil || g3.Base.gen != 1 || g3.Active != fresh {
		t.Fatal("install transition wrong")
	}
	// Declining a transition returns the argument unchanged.
	g4 := l.Update(func(old *Gen[base]) *Gen[base] { return old })
	if g4 != g3 {
		t.Fatal("declined transition replaced the generation")
	}
}

// TestLayerAppendSwapRace freezes generations while writers append;
// every append must land in exactly one table (none lost, none
// duplicated). Run with -race.
func TestLayerAppendSwapRace(t *testing.T) {
	const series = 16
	// A fixed base frontier at t=0 keeps every run valid no matter when
	// a swap resets it: per-series append times only ever grow, so a
	// fresh table's seed vertex (0, 0) always precedes the next append.
	frontier := flatFrontier(series, 0, 0)
	l := NewLayer(&Gen[int]{Active: NewTable(frontier, 0)})

	var writers sync.WaitGroup
	var appended atomic.Int64
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			// Writer w owns series w*4..w*4+3; each id's times strictly
			// increase across iterations.
			for i := 0; i < 200; i++ {
				id := w*4 + i%4
				ts := float64(i/4 + 1)
				if _, err := l.Append(id, ts, 1); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				appended.Add(1)
			}
		}(w)
	}
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	var drained int64 // owned by the swapper goroutine; read after Wait
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			g := l.Update(func(old *Gen[int]) *Gen[int] {
				if old.Active.Segments() == 0 {
					return old
				}
				return &Gen[int]{Frozen: old.Active, Active: NewTable(frontier, 0)}
			})
			if g.Frozen != nil {
				drained += g.Frozen.Segments()
				l.Update(func(old *Gen[int]) *Gen[int] {
					return &Gen[int]{Active: old.Active}
				})
			}
		}
	}()
	writers.Wait()
	close(stop)
	swapper.Wait()
	drained += l.Load().Active.Segments()
	if g := l.Load(); g.Frozen != nil {
		drained += g.Frozen.Segments()
	}
	if drained != appended.Load() {
		t.Fatalf("drained %d segments, appended %d", drained, appended.Load())
	}
}
