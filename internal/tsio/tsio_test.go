package tsio

import (
	"bytes"
	"strings"
	"testing"

	"temporalrank/internal/gen"
	"temporalrank/internal/tsdata"
)

func fixture(t *testing.T) *tsdata.Dataset {
	t.Helper()
	ds, err := gen.Temp(gen.TempConfig{M: 12, Navg: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func datasetsEqual(t *testing.T, a, b *tsdata.Dataset) {
	t.Helper()
	if a.NumSeries() != b.NumSeries() || a.NumSegments() != b.NumSegments() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)",
			a.NumSeries(), a.NumSegments(), b.NumSeries(), b.NumSegments())
	}
	for i := 0; i < a.NumSeries(); i++ {
		sa := a.Series(tsdata.SeriesID(i))
		sb := b.Series(tsdata.SeriesID(i))
		if sa.NumSegments() != sb.NumSegments() {
			t.Fatalf("series %d segments differ", i)
		}
		for j := 0; j <= sa.NumSegments(); j++ {
			if sa.VertexTime(j) != sb.VertexTime(j) || sa.VertexValue(j) != sb.VertexValue(j) {
				t.Fatalf("series %d vertex %d differs", i, j)
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := fixture(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, ds, back)
}

func TestBinaryRoundTrip(t *testing.T) {
	ds := fixture(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, ds, back)
}

func TestCSVInterleavedAndComments(t *testing.T) {
	in := `# comment
1,0,5
0,0,1
1,1,6

0,1,2
0,2,3
1,2,7
`
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSeries() != 2 {
		t.Fatalf("m = %d", ds.NumSeries())
	}
	if got := ds.Series(0).Range(0, 2); got != 4 { // trapezoid (1+2)/2 + (2+3)/2 = 1.5+2.5
		t.Errorf("series 0 integral = %g, want 4", got)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad fields":   "1,2\n",
		"bad id":       "x,0,1\n",
		"bad time":     "0,x,1\n",
		"bad value":    "0,0,x\n",
		"negative id":  "-1,0,1\n",
		"empty":        "",
		"sparse ids":   "0,0,1\n0,1,2\n5,0,1\n5,1,2\n",
		"single point": "0,0,1\n",
		"dup time":     "0,1,1\n0,1,2\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("TRK1")); err == nil {
		t.Error("truncated header accepted")
	}
	// Truncated body.
	ds := fixture(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestCSVNegativeValues(t *testing.T) {
	ds, err := gen.RandomWalk(gen.RandomWalkConfig{M: 5, Navg: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, ds, back)
	if !back.HasNegative() {
		t.Error("negatives lost in round trip")
	}
}
