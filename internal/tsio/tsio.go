// Package tsio reads and writes temporal datasets in two formats:
//
//   - CSV: one "id,time,value" row per reading, readings of an object
//     in increasing time order (the natural export of both MesoWest and
//     Memetracker dumps the paper uses). IDs must be dense 0..m-1 but
//     rows of different objects may interleave.
//   - A compact binary format (magic "TRK1") for fast reload of large
//     generated datasets.
package tsio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"temporalrank/internal/tsdata"
)

// WriteCSV emits the dataset as id,time,value rows.
func WriteCSV(w io.Writer, ds *tsdata.Dataset) error {
	bw := bufio.NewWriter(w)
	for _, s := range ds.AllSeries() {
		for j := 0; j <= s.NumSegments(); j++ {
			if _, err := fmt.Fprintf(bw, "%d,%s,%s\n", s.ID,
				strconv.FormatFloat(s.VertexTime(j), 'g', -1, 64),
				strconv.FormatFloat(s.VertexValue(j), 'g', -1, 64)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCSV parses id,time,value rows into a dataset. Blank lines and
// lines starting with '#' are skipped.
func ReadCSV(r io.Reader) (*tsdata.Dataset, error) {
	type vertex struct{ t, v float64 }
	byID := map[int][]vertex{}
	maxID := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("tsio: line %d: want id,time,value, got %q", lineNo, line)
		}
		id, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("tsio: line %d: bad id: %w", lineNo, err)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("tsio: line %d: bad time: %w", lineNo, err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("tsio: line %d: bad value: %w", lineNo, err)
		}
		if id < 0 {
			return nil, fmt.Errorf("tsio: line %d: negative id %d", lineNo, id)
		}
		byID[id] = append(byID[id], vertex{t, v})
		if id > maxID {
			maxID = id
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxID < 0 {
		return nil, fmt.Errorf("tsio: empty input")
	}
	series := make([]*tsdata.Series, maxID+1)
	for id := 0; id <= maxID; id++ {
		vs := byID[id]
		if len(vs) < 2 {
			return nil, fmt.Errorf("tsio: object %d has %d readings, need >= 2 (ids must be dense)", id, len(vs))
		}
		sort.Slice(vs, func(a, b int) bool { return vs[a].t < vs[b].t })
		times := make([]float64, len(vs))
		values := make([]float64, len(vs))
		for j, p := range vs {
			times[j] = p.t
			values[j] = p.v
		}
		s, err := tsdata.NewSeries(tsdata.SeriesID(id), times, values)
		if err != nil {
			return nil, fmt.Errorf("tsio: object %d: %w", id, err)
		}
		series[id] = s
	}
	return tsdata.NewDataset(series)
}

const binaryMagic = "TRK1"

// WriteBinary emits the compact binary format: magic, m, then per
// object the vertex count followed by (time, value) pairs.
func WriteBinary(w io.Writer, ds *tsdata.Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var scratch [8]byte
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := writeU64(uint64(ds.NumSeries())); err != nil {
		return err
	}
	for _, s := range ds.AllSeries() {
		if err := writeU64(uint64(s.NumSegments() + 1)); err != nil {
			return err
		}
		for j := 0; j <= s.NumSegments(); j++ {
			if err := writeU64(math.Float64bits(s.VertexTime(j))); err != nil {
				return err
			}
			if err := writeU64(math.Float64bits(s.VertexValue(j))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary format.
func ReadBinary(r io.Reader) (*tsdata.Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("tsio: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("tsio: bad magic %q", magic)
	}
	var scratch [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	m, err := readU64()
	if err != nil {
		return nil, err
	}
	if m == 0 || m > 1<<32 {
		return nil, fmt.Errorf("tsio: implausible object count %d", m)
	}
	series := make([]*tsdata.Series, m)
	for i := uint64(0); i < m; i++ {
		n, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("tsio: object %d header: %w", i, err)
		}
		if n < 2 || n > 1<<40 {
			return nil, fmt.Errorf("tsio: object %d has implausible vertex count %d", i, n)
		}
		times := make([]float64, n)
		values := make([]float64, n)
		for j := uint64(0); j < n; j++ {
			tb, err := readU64()
			if err != nil {
				return nil, err
			}
			vb, err := readU64()
			if err != nil {
				return nil, err
			}
			times[j] = math.Float64frombits(tb)
			values[j] = math.Float64frombits(vb)
		}
		s, err := tsdata.NewSeries(tsdata.SeriesID(i), times, values)
		if err != nil {
			return nil, fmt.Errorf("tsio: object %d: %w", i, err)
		}
		series[i] = s
	}
	return tsdata.NewDataset(series)
}
