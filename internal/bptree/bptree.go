// Package bptree implements a disk-based B+-tree over a blockio.Device.
//
// Keys are float64 time instances; values are fixed-size opaque byte
// payloads (the caller encodes segments, prefix sums, or page pointers
// into them). The tree supports bulk-loading from sorted input, ordered
// insertion with node splits, ceiling search (first entry with key >=
// x), and forward range scans via leaf sibling links.
//
// This is the workhorse index of the paper: EXACT1 keys all N segments
// by left endpoint, EXACT2 builds one tree per object keyed by segment
// right endpoints, and QUERY1 nests trees over breakpoints (§2, §3.2).
package bptree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"temporalrank/internal/blockio"
)

// Entry is one key/value pair. Value length must equal the tree's
// configured ValueSize.
type Entry struct {
	Key   float64
	Value []byte
}

// Tree is a B+-tree handle. The zero value is not usable; create trees
// with New or BulkLoad.
type Tree struct {
	dev       blockio.Device
	valueSize int

	root       blockio.PageID
	height     int // 1 = root is a leaf
	numEntries int

	// Capacities derived from the block size.
	leafCap     int
	internalCap int // max number of keys in an internal node
}

const (
	leafHeaderSize     = 1 + 2 + 8 // type, count, next
	internalHeaderSize = 1 + 2     // type, count
	keySize            = 8
	childSize          = 8
)

var (
	// ErrNotFound is returned by searches that run off the end of the
	// key space.
	ErrNotFound = errors.New("bptree: not found")
	// ErrBadValueSize is returned when an entry's value length differs
	// from the tree's ValueSize.
	ErrBadValueSize = errors.New("bptree: value size mismatch")
)

// New creates an empty tree on dev whose entries carry valueSize-byte
// payloads.
func New(dev blockio.Device, valueSize int) (*Tree, error) {
	t := &Tree{dev: dev, valueSize: valueSize}
	if err := t.computeCaps(); err != nil {
		return nil, err
	}
	rootPage, err := dev.Alloc()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, dev.BlockSize())
	initLeaf(buf)
	if err := dev.Write(rootPage, buf); err != nil {
		return nil, err
	}
	t.root = rootPage
	t.height = 1
	return t, nil
}

func (t *Tree) computeCaps() error {
	bs := t.dev.BlockSize()
	entry := keySize + t.valueSize
	t.leafCap = (bs - leafHeaderSize) / entry
	t.internalCap = (bs - internalHeaderSize - childSize) / (keySize + childSize)
	if t.leafCap < 2 || t.internalCap < 2 {
		return fmt.Errorf("bptree: block size %d too small for value size %d", bs, t.valueSize)
	}
	return nil
}

// ValueSize returns the configured payload size.
func (t *Tree) ValueSize() int { return t.valueSize }

// Len returns the number of entries.
func (t *Tree) Len() int { return t.numEntries }

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() int { return t.height }

// Root exposes the root page (for meta-persistence by callers).
func (t *Tree) Root() blockio.PageID { return t.root }

// LeafCapacity returns the max entries per leaf (fanout diagnostics).
func (t *Tree) LeafCapacity() int { return t.leafCap }

// Meta is the handful of fields that, together with the device holding
// the node pages, fully determine a Tree. Snapshot checkpoints persist
// it alongside the raw page image; Open reattaches.
type Meta struct {
	Root       blockio.PageID
	Height     int
	NumEntries int
	ValueSize  int
}

// Meta captures the tree's persistent handle state.
func (t *Tree) Meta() Meta {
	return Meta{Root: t.root, Height: t.height, NumEntries: t.numEntries, ValueSize: t.valueSize}
}

// Open reattaches a tree to node pages already present on dev (the
// restore path — no nodes are rebuilt). The root page is read once to
// verify it exists and its node kind matches the recorded height.
func Open(dev blockio.Device, m Meta) (*Tree, error) {
	if m.Height < 1 || m.NumEntries < 0 || m.ValueSize < 1 {
		return nil, fmt.Errorf("bptree: invalid meta %+v", m)
	}
	t := &Tree{dev: dev, valueSize: m.ValueSize, root: m.Root, height: m.Height, numEntries: m.NumEntries}
	if err := t.computeCaps(); err != nil {
		return nil, err
	}
	v, err := blockio.View(dev, m.Root)
	if err != nil {
		return nil, fmt.Errorf("bptree: open root %d: %w", m.Root, err)
	}
	rootIsLeaf := isLeaf(v.Data())
	v.Release()
	if rootIsLeaf != (m.Height == 1) {
		return nil, fmt.Errorf("bptree: root node kind contradicts height %d", m.Height)
	}
	return t, nil
}

// --- page codecs ---------------------------------------------------

func initLeaf(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	buf[0] = 1
	putPageID(buf[3:], blockio.InvalidPage)
}

func initInternal(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	buf[0] = 0
}

func isLeaf(buf []byte) bool { return buf[0] == 1 }

func leafCount(buf []byte) int       { return int(binary.LittleEndian.Uint16(buf[1:])) }
func setLeafCount(buf []byte, n int) { binary.LittleEndian.PutUint16(buf[1:], uint16(n)) }

func leafNext(buf []byte) blockio.PageID       { return getPageID(buf[3:]) }
func setLeafNext(buf []byte, p blockio.PageID) { putPageID(buf[3:], p) }

func (t *Tree) leafKey(buf []byte, i int) float64 {
	off := leafHeaderSize + i*(keySize+t.valueSize)
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
}

func (t *Tree) leafValue(buf []byte, i int) []byte {
	off := leafHeaderSize + i*(keySize+t.valueSize) + keySize
	return buf[off : off+t.valueSize]
}

func (t *Tree) setLeafEntry(buf []byte, i int, key float64, value []byte) {
	off := leafHeaderSize + i*(keySize+t.valueSize)
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(key))
	copy(buf[off+keySize:off+keySize+t.valueSize], value)
}

func internalCount(buf []byte) int       { return int(binary.LittleEndian.Uint16(buf[1:])) }
func setInternalCount(buf []byte, n int) { binary.LittleEndian.PutUint16(buf[1:], uint16(n)) }

func (t *Tree) internalChild(buf []byte, i int) blockio.PageID {
	off := internalHeaderSize + i*childSize
	return getPageID(buf[off:])
}

func (t *Tree) setInternalChild(buf []byte, i int, p blockio.PageID) {
	off := internalHeaderSize + i*childSize
	putPageID(buf[off:], p)
}

func (t *Tree) internalKey(buf []byte, i int) float64 {
	off := internalHeaderSize + (t.internalCap+1)*childSize + i*keySize
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
}

func (t *Tree) setInternalKey(buf []byte, i int, k float64) {
	off := internalHeaderSize + (t.internalCap+1)*childSize + i*keySize
	binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(k))
}

func getPageID(b []byte) blockio.PageID {
	return blockio.PageID(int64(binary.LittleEndian.Uint64(b)))
}

func putPageID(b []byte, p blockio.PageID) {
	binary.LittleEndian.PutUint64(b, uint64(int64(p)))
}

// --- search ----------------------------------------------------------

// Cursor iterates leaf entries in key order, decoding in place from a
// zero-copy page view of the current leaf. Cursors are returned by
// value (no per-search heap allocation); the caller must Close the
// cursor when iteration ends to release the view — on a pooled device
// an open cursor pins its leaf frame.
type Cursor struct {
	t    *Tree
	page blockio.PageID
	view blockio.PageView
	idx  int
	err  error
}

// SearchCeil positions a cursor at the first entry with key >= x.
// Returns ErrNotFound when every key is < x (or the tree is empty);
// the cursor needs no Close on any error return. The descent holds at
// most one page view at a time (each internal node is released before
// its child is mapped), so a search never pins more than one frame.
//
//tr:hotpath
func (t *Tree) SearchCeil(x float64) (Cursor, error) {
	page := t.root
	var v blockio.PageView
	for {
		var err error
		v, err = blockio.View(t.dev, page)
		if err != nil {
			return Cursor{}, err
		}
		buf := v.Data()
		if isLeaf(buf) {
			break
		}
		n := internalCount(buf)
		// Descend to the first child that can contain a key >= x:
		// child i covers keys < key[i]; child j where j = #(key_i <= x).
		j := 0
		for j < n && t.internalKey(buf, j) <= x {
			j++
		}
		page = t.internalChild(buf, j)
		v.Release()
	}
	c := Cursor{t: t, page: page, view: v}
	buf := c.view.Data()
	n := leafCount(buf)
	// Binary search within the leaf for first key >= x.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if t.leafKey(buf, mid) < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c.idx = lo
	if lo == n {
		// All keys in this leaf < x; the ceil (if any) is the first
		// entry of the next leaf.
		if !c.advanceLeaf() {
			c.Close()
			if c.err != nil {
				return Cursor{}, c.err
			}
			return Cursor{}, ErrNotFound
		}
	}
	if leafCount(c.view.Data()) == 0 {
		c.Close()
		return Cursor{}, ErrNotFound
	}
	return c, nil
}

// Min positions a cursor at the smallest entry.
func (t *Tree) Min() (Cursor, error) {
	return t.SearchCeil(math.Inf(-1))
}

// Key returns the cursor's current key.
//
//tr:hotpath
func (c *Cursor) Key() float64 { return c.t.leafKey(c.view.Data(), c.idx) }

// Value returns the cursor's current value. The slice aliases the
// cursor's page view and is invalidated by Next and Close.
//
//tr:hotpath
func (c *Cursor) Value() []byte { return c.t.leafValue(c.view.Data(), c.idx) }

// Next advances to the following entry; it reports false at the end of
// the tree or on IO error (check Err).
//
//tr:hotpath
func (c *Cursor) Next() bool {
	c.idx++
	if c.idx < leafCount(c.view.Data()) {
		return true
	}
	return c.advanceLeaf()
}

//tr:hotpath
func (c *Cursor) advanceLeaf() bool {
	next := leafNext(c.view.Data())
	for next != blockio.InvalidPage {
		v, err := blockio.View(c.t.dev, next)
		if err != nil {
			c.err = err
			return false
		}
		c.view.Release()
		c.view = v
		c.page = next
		c.idx = 0
		if leafCount(v.Data()) > 0 {
			return true
		}
		next = leafNext(v.Data())
	}
	return false
}

// Close releases the cursor's leaf view. Idempotent; safe on the zero
// cursor. Every cursor obtained from SearchCeil/Min must be closed
// once iteration (or value decoding) is done.
//
//tr:hotpath
func (c *Cursor) Close() { c.view.Release() }

// Err returns the IO error that stopped iteration, if any.
func (c *Cursor) Err() error { return c.err }

// SetDevice re-seats the tree onto a device holding the same page
// image — the seal path swaps the build device for an Arena. The
// caller must guarantee no operation is in flight.
func (t *Tree) SetDevice(dev blockio.Device) { t.dev = dev }

// --- bulk load -------------------------------------------------------

// BulkLoad builds a tree from entries already sorted by key (ties
// allowed). It writes leaves left to right at the given fill factor
// and builds internal levels bottom-up — the O((N/B) log_B N) build
// the paper assumes for all its B+-trees.
func BulkLoad(dev blockio.Device, valueSize int, entries []Entry) (*Tree, error) {
	t := &Tree{dev: dev, valueSize: valueSize}
	if err := t.computeCaps(); err != nil {
		return nil, err
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Key < entries[i-1].Key {
			return nil, fmt.Errorf("bptree: bulk-load input not sorted at %d", i)
		}
	}
	if len(entries) == 0 {
		return New(dev, valueSize)
	}
	buf := make([]byte, dev.BlockSize())

	// Level 0: leaves.
	type nodeRef struct {
		page   blockio.PageID
		minKey float64
	}
	var level []nodeRef
	var prevLeaf blockio.PageID = blockio.InvalidPage
	var prevBuf []byte
	for start := 0; start < len(entries); start += t.leafCap {
		end := start + t.leafCap
		if end > len(entries) {
			end = len(entries)
		}
		page, err := dev.Alloc()
		if err != nil {
			return nil, err
		}
		initLeaf(buf)
		for i := start; i < end; i++ {
			e := entries[i]
			if len(e.Value) != valueSize {
				return nil, fmt.Errorf("%w: got %d, want %d", ErrBadValueSize, len(e.Value), valueSize)
			}
			t.setLeafEntry(buf, i-start, e.Key, e.Value)
		}
		setLeafCount(buf, end-start)
		if prevLeaf != blockio.InvalidPage {
			setLeafNext(prevBuf, page)
			if err := dev.Write(prevLeaf, prevBuf); err != nil {
				return nil, err
			}
		}
		prevLeaf = page
		prevBuf = append(prevBuf[:0], buf...)
		level = append(level, nodeRef{page: page, minKey: entries[start].Key})
	}
	if err := dev.Write(prevLeaf, prevBuf); err != nil {
		return nil, err
	}
	t.numEntries = len(entries)
	t.height = 1

	// Internal levels.
	for len(level) > 1 {
		var next []nodeRef
		fan := t.internalCap + 1 // children per internal node
		for start := 0; start < len(level); start += fan {
			end := start + fan
			if end > len(level) {
				end = len(level)
			}
			page, err := dev.Alloc()
			if err != nil {
				return nil, err
			}
			initInternal(buf)
			for i := start; i < end; i++ {
				t.setInternalChild(buf, i-start, level[i].page)
				if i > start {
					t.setInternalKey(buf, i-start-1, level[i].minKey)
				}
			}
			setInternalCount(buf, end-start-1)
			if err := dev.Write(page, buf); err != nil {
				return nil, err
			}
			next = append(next, nodeRef{page: page, minKey: level[start].minKey})
		}
		level = next
		t.height++
	}
	t.root = level[0].page
	return t, nil
}

// --- insert ----------------------------------------------------------

// Insert adds an entry, splitting nodes as needed. Duplicate keys are
// allowed; the new entry lands after existing equal keys.
func (t *Tree) Insert(key float64, value []byte) error {
	if len(value) != t.valueSize {
		return fmt.Errorf("%w: got %d, want %d", ErrBadValueSize, len(value), t.valueSize)
	}
	splitKey, newPage, err := t.insertRec(t.root, key, value)
	if err != nil {
		return err
	}
	if newPage != blockio.InvalidPage {
		// Root split: grow the tree by one level.
		rootPage, err := t.dev.Alloc()
		if err != nil {
			return err
		}
		buf := make([]byte, t.dev.BlockSize())
		initInternal(buf)
		t.setInternalChild(buf, 0, t.root)
		t.setInternalChild(buf, 1, newPage)
		t.setInternalKey(buf, 0, splitKey)
		setInternalCount(buf, 1)
		if err := t.dev.Write(rootPage, buf); err != nil {
			return err
		}
		t.root = rootPage
		t.height++
	}
	t.numEntries++
	return nil
}

// insertRec inserts below page; when page splits it returns the
// separator key and the new right sibling.
func (t *Tree) insertRec(page blockio.PageID, key float64, value []byte) (float64, blockio.PageID, error) {
	buf := make([]byte, t.dev.BlockSize())
	if err := t.dev.Read(page, buf); err != nil {
		return 0, blockio.InvalidPage, err
	}
	if isLeaf(buf) {
		return t.insertLeaf(page, buf, key, value)
	}
	n := internalCount(buf)
	j := 0
	for j < n && t.internalKey(buf, j) <= key {
		j++
	}
	child := t.internalChild(buf, j)
	splitKey, newChild, err := t.insertRec(child, key, value)
	if err != nil || newChild == blockio.InvalidPage {
		return 0, blockio.InvalidPage, err
	}
	// Insert (splitKey, newChild) after position j.
	// Re-read: the recursive call may be deep but does not touch this
	// page, so buf is still current.
	if n < t.internalCap {
		for i := n; i > j; i-- {
			t.setInternalKey(buf, i, t.internalKey(buf, i-1))
			t.setInternalChild(buf, i+1, t.internalChild(buf, i))
		}
		t.setInternalKey(buf, j, splitKey)
		t.setInternalChild(buf, j+1, newChild)
		setInternalCount(buf, n+1)
		return 0, blockio.InvalidPage, t.dev.Write(page, buf)
	}
	// Split the internal node. Build the virtual key/child lists.
	keys := make([]float64, 0, n+1)
	children := make([]blockio.PageID, 0, n+2)
	for i := 0; i <= n; i++ {
		children = append(children, t.internalChild(buf, i))
	}
	for i := 0; i < n; i++ {
		keys = append(keys, t.internalKey(buf, i))
	}
	keys = append(keys[:j], append([]float64{splitKey}, keys[j:]...)...)
	children = append(children[:j+1], append([]blockio.PageID{newChild}, children[j+1:]...)...)

	mid := len(keys) / 2
	upKey := keys[mid]
	leftKeys, rightKeys := keys[:mid], keys[mid+1:]
	leftChildren, rightChildren := children[:mid+1], children[mid+1:]

	initInternal(buf)
	for i, c := range leftChildren {
		t.setInternalChild(buf, i, c)
	}
	for i, k := range leftKeys {
		t.setInternalKey(buf, i, k)
	}
	setInternalCount(buf, len(leftKeys))
	if err := t.dev.Write(page, buf); err != nil {
		return 0, blockio.InvalidPage, err
	}

	rightPage, err := t.dev.Alloc()
	if err != nil {
		return 0, blockio.InvalidPage, err
	}
	initInternal(buf)
	for i, c := range rightChildren {
		t.setInternalChild(buf, i, c)
	}
	for i, k := range rightKeys {
		t.setInternalKey(buf, i, k)
	}
	setInternalCount(buf, len(rightKeys))
	if err := t.dev.Write(rightPage, buf); err != nil {
		return 0, blockio.InvalidPage, err
	}
	return upKey, rightPage, nil
}

func (t *Tree) insertLeaf(page blockio.PageID, buf []byte, key float64, value []byte) (float64, blockio.PageID, error) {
	n := leafCount(buf)
	// Position after existing equal keys.
	pos := 0
	for pos < n && t.leafKey(buf, pos) <= key {
		pos++
	}
	if n < t.leafCap {
		for i := n; i > pos; i-- {
			t.setLeafEntry(buf, i, t.leafKey(buf, i-1), t.leafValue(buf, i-1))
		}
		t.setLeafEntry(buf, pos, key, value)
		setLeafCount(buf, n+1)
		return 0, blockio.InvalidPage, t.dev.Write(page, buf)
	}
	// Split. Gather all n+1 entries.
	type kv struct {
		k float64
		v []byte
	}
	all := make([]kv, 0, n+1)
	for i := 0; i < n; i++ {
		v := make([]byte, t.valueSize)
		copy(v, t.leafValue(buf, i))
		all = append(all, kv{t.leafKey(buf, i), v})
	}
	nv := make([]byte, t.valueSize)
	copy(nv, value)
	all = append(all[:pos], append([]kv{{key, nv}}, all[pos:]...)...)

	mid := len(all) / 2
	oldNext := leafNext(buf)

	rightPage, err := t.dev.Alloc()
	if err != nil {
		return 0, blockio.InvalidPage, err
	}

	initLeaf(buf)
	for i := 0; i < mid; i++ {
		t.setLeafEntry(buf, i, all[i].k, all[i].v)
	}
	setLeafCount(buf, mid)
	setLeafNext(buf, rightPage)
	if err := t.dev.Write(page, buf); err != nil {
		return 0, blockio.InvalidPage, err
	}

	initLeaf(buf)
	for i := mid; i < len(all); i++ {
		t.setLeafEntry(buf, i-mid, all[i].k, all[i].v)
	}
	setLeafCount(buf, len(all)-mid)
	setLeafNext(buf, oldNext)
	if err := t.dev.Write(rightPage, buf); err != nil {
		return 0, blockio.InvalidPage, err
	}
	return all[mid].k, rightPage, nil
}

// Last returns the largest entry (key, value) in O(height) IOs; used by
// EXACT2 updates to fetch σ_i(I_{i,n_i}) from the last entry in T_i.
// The value is copied out, so no view outlives the call.
func (t *Tree) Last() (float64, []byte, error) {
	page := t.root
	for {
		v, err := blockio.View(t.dev, page)
		if err != nil {
			return 0, nil, err
		}
		buf := v.Data()
		if isLeaf(buf) {
			n := leafCount(buf)
			if n == 0 {
				v.Release()
				return 0, nil, ErrNotFound
			}
			val := make([]byte, t.valueSize)
			copy(val, t.leafValue(buf, n-1))
			key := t.leafKey(buf, n-1)
			v.Release()
			return key, val, nil
		}
		page = t.internalChild(buf, internalCount(buf))
		v.Release()
	}
}
