package bptree

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"temporalrank/internal/blockio"
)

func val8(x uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, x)
	return b
}

func dec8(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func mkEntries(keys []float64) []Entry {
	es := make([]Entry, len(keys))
	for i, k := range keys {
		es[i] = Entry{Key: k, Value: val8(uint64(i))}
	}
	return es
}

func collect(t *testing.T, tr *Tree) []float64 {
	t.Helper()
	c, err := tr.Min()
	if errors.Is(err, ErrNotFound) {
		return nil
	}
	if err != nil {
		t.Fatalf("Min: %v", err)
	}
	var keys []float64
	for {
		keys = append(keys, c.Key())
		if !c.Next() {
			break
		}
	}
	if c.Err() != nil {
		t.Fatalf("cursor error: %v", c.Err())
	}
	return keys
}

func TestEmptyTree(t *testing.T) {
	dev := blockio.NewMemDevice(256)
	tr, err := New(dev, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, err := tr.SearchCeil(0); !errors.Is(err, ErrNotFound) {
		t.Errorf("SearchCeil on empty = %v, want ErrNotFound", err)
	}
	if _, _, err := tr.Last(); !errors.Is(err, ErrNotFound) {
		t.Errorf("Last on empty = %v, want ErrNotFound", err)
	}
}

func TestBulkLoadSmall(t *testing.T) {
	dev := blockio.NewMemDevice(4096)
	keys := []float64{1, 2, 3, 5, 8, 13}
	tr, err := BulkLoad(dev, 8, mkEntries(keys))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(keys) {
		t.Errorf("Len = %d", tr.Len())
	}
	got := collect(t, tr)
	if len(got) != len(keys) {
		t.Fatalf("collected %d keys, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Errorf("key %d = %g, want %g", i, got[i], keys[i])
		}
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	dev := blockio.NewMemDevice(4096)
	if _, err := BulkLoad(dev, 8, mkEntries([]float64{2, 1})); err == nil {
		t.Error("unsorted input accepted")
	}
}

func TestBulkLoadMultiLevel(t *testing.T) {
	// Small blocks force several levels.
	dev := blockio.NewMemDevice(128)
	n := 5000
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(i) * 0.5
	}
	tr, err := BulkLoad(dev, 8, mkEntries(keys))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d, want >= 3 with 128B blocks", tr.Height())
	}
	got := collect(t, tr)
	if len(got) != n {
		t.Fatalf("collected %d, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != keys[i] {
			t.Fatalf("key %d mismatch", i)
		}
	}
	// Values carried through: SearchCeil on each key returns ordinal.
	for i := 0; i < n; i += 97 {
		c, err := tr.SearchCeil(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if c.Key() != keys[i] || dec8(c.Value()) != uint64(i) {
			t.Fatalf("SearchCeil(%g): key=%g val=%d", keys[i], c.Key(), dec8(c.Value()))
		}
	}
}

func TestSearchCeilSemantics(t *testing.T) {
	dev := blockio.NewMemDevice(128)
	keys := []float64{10, 20, 20, 20, 30, 40}
	tr, err := BulkLoad(dev, 8, mkEntries(keys))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{-1, 10}, {10, 10}, {10.5, 20}, {20, 20}, {25, 30}, {40, 40},
	}
	for _, c := range cases {
		cur, err := tr.SearchCeil(c.x)
		if err != nil {
			t.Fatalf("SearchCeil(%g): %v", c.x, err)
		}
		if cur.Key() != c.want {
			t.Errorf("SearchCeil(%g) = %g, want %g", c.x, cur.Key(), c.want)
		}
	}
	if _, err := tr.SearchCeil(41); !errors.Is(err, ErrNotFound) {
		t.Errorf("SearchCeil past end = %v, want ErrNotFound", err)
	}
	// Duplicate run: first of the duplicates is returned, and scanning
	// yields all of them.
	cur, _ := tr.SearchCeil(20)
	count := 0
	for cur.Key() == 20 {
		count++
		if !cur.Next() {
			break
		}
	}
	if count != 3 {
		t.Errorf("duplicate scan found %d copies, want 3", count)
	}
}

func TestInsertSequential(t *testing.T) {
	dev := blockio.NewMemDevice(128)
	tr, err := New(dev, 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(float64(i), val8(uint64(i))); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Errorf("Len = %d", tr.Len())
	}
	got := collect(t, tr)
	if len(got) != n {
		t.Fatalf("collected %d", len(got))
	}
	if !sort.Float64sAreSorted(got) {
		t.Error("keys not sorted")
	}
	k, v, err := tr.Last()
	if err != nil || k != n-1 || dec8(v) != n-1 {
		t.Errorf("Last = (%g, %d, %v)", k, dec8(v), err)
	}
}

func TestInsertRandomOrder(t *testing.T) {
	dev := blockio.NewMemDevice(256)
	tr, err := New(dev, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	keys := rng.Perm(3000)
	for _, k := range keys {
		if err := tr.Insert(float64(k), val8(uint64(k))); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, tr)
	if len(got) != len(keys) {
		t.Fatalf("collected %d, want %d", len(got), len(keys))
	}
	for i := range got {
		if got[i] != float64(i) {
			t.Fatalf("key %d = %g", i, got[i])
		}
	}
	// Spot-check value association.
	for probe := 0; probe < 3000; probe += 131 {
		c, err := tr.SearchCeil(float64(probe))
		if err != nil {
			t.Fatal(err)
		}
		if dec8(c.Value()) != uint64(probe) {
			t.Fatalf("value for %d = %d", probe, dec8(c.Value()))
		}
	}
}

func TestInsertIntoBulkLoaded(t *testing.T) {
	dev := blockio.NewMemDevice(128)
	keys := make([]float64, 500)
	for i := range keys {
		keys[i] = float64(i * 2) // evens
	}
	tr, err := BulkLoad(dev, 8, mkEntries(keys))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Insert(float64(i*2+1), val8(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, tr)
	if len(got) != 1000 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i] != float64(i) {
			t.Fatalf("key %d = %g", i, got[i])
		}
	}
}

func TestValueSizeValidation(t *testing.T) {
	dev := blockio.NewMemDevice(4096)
	tr, err := New(dev, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, make([]byte, 8)); err == nil {
		t.Error("wrong value size accepted by Insert")
	}
	if _, err := BulkLoad(blockio.NewMemDevice(4096), 16, []Entry{{Key: 1, Value: make([]byte, 4)}}); err == nil {
		t.Error("wrong value size accepted by BulkLoad")
	}
	if _, err := New(blockio.NewMemDevice(32), 64); err == nil {
		t.Error("impossible geometry accepted")
	}
}

func TestLargeValues(t *testing.T) {
	dev := blockio.NewMemDevice(4096)
	vs := 100
	tr, err := New(dev, vs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		v := make([]byte, vs)
		v[0] = byte(i)
		v[vs-1] = byte(i * 3)
		if err := tr.Insert(float64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i += 37 {
		c, err := tr.SearchCeil(float64(i))
		if err != nil {
			t.Fatal(err)
		}
		v := c.Value()
		if v[0] != byte(i) || v[vs-1] != byte(i*3) {
			t.Fatalf("value payload corrupted at %d", i)
		}
	}
}

// Property: bulk-load and insert produce the same key sequence for any
// random multiset of keys.
func TestBulkEqualsInsertProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%120 + 1
		rng := rand.New(rand.NewSource(seed))
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = math.Floor(rng.Float64()*50) / 2 // force duplicates
		}
		sorted := append([]float64(nil), keys...)
		sort.Float64s(sorted)

		bl, err := BulkLoad(blockio.NewMemDevice(128), 8, mkEntries(sorted))
		if err != nil {
			return false
		}
		ins, err := New(blockio.NewMemDevice(128), 8)
		if err != nil {
			return false
		}
		for i, k := range keys {
			if err := ins.Insert(k, val8(uint64(i))); err != nil {
				return false
			}
		}
		a := collectKeys(bl)
		b := collectKeys(ins)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func collectKeys(tr *Tree) []float64 {
	c, err := tr.Min()
	if err != nil {
		return nil
	}
	var keys []float64
	for {
		keys = append(keys, c.Key())
		if !c.Next() {
			break
		}
	}
	return keys
}

// Property: SearchCeil agrees with a sorted-slice reference.
func TestSearchCeilMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = math.Floor(rng.Float64() * 100)
		}
		sort.Float64s(keys)
		tr, err := BulkLoad(blockio.NewMemDevice(128), 8, mkEntries(keys))
		if err != nil {
			return false
		}
		for probe := 0; probe < 30; probe++ {
			x := rng.Float64()*120 - 10
			idx := sort.SearchFloat64s(keys, x)
			c, err := tr.SearchCeil(x)
			if idx == n {
				if !errors.Is(err, ErrNotFound) {
					return false
				}
				continue
			}
			if err != nil || c.Key() != keys[idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTreeOnFileDevice(t *testing.T) {
	dev, err := blockio.OpenFileDevice(t.TempDir()+"/tree.bin", 512)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	keys := make([]float64, 1000)
	for i := range keys {
		keys[i] = float64(i)
	}
	tr, err := BulkLoad(dev, 8, mkEntries(keys))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, tr)
	if len(got) != 1000 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestIOCountsScaleWithHeight(t *testing.T) {
	dev := blockio.NewMemDevice(128)
	keys := make([]float64, 20000)
	for i := range keys {
		keys[i] = float64(i)
	}
	tr, err := BulkLoad(dev, 8, mkEntries(keys))
	if err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	if _, err := tr.SearchCeil(10000); err != nil {
		t.Fatal(err)
	}
	reads := dev.Stats().Reads
	if int(reads) < tr.Height() || int(reads) > tr.Height()+1 {
		t.Errorf("search reads = %d, height = %d: want one read per level", reads, tr.Height())
	}
}
