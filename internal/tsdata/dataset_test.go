package tsdata

import (
	"math/rand"
	"testing"
)

func mustDataset(t *testing.T, series ...*Series) *Dataset {
	t.Helper()
	d, err := NewDataset(series)
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	return d
}

func randomDataset(rng *rand.Rand, m, maxSegs int, allowNegative bool) *Dataset {
	series := make([]*Series, m)
	for i := 0; i < m; i++ {
		series[i] = randomSeries(rng, SeriesID(i), 1+rng.Intn(maxSegs), allowNegative)
	}
	d, err := NewDataset(series)
	if err != nil {
		panic(err)
	}
	return d
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil); err == nil {
		t.Error("empty dataset accepted")
	}
	s0 := mustSeries(t, 0, []float64{0, 1}, []float64{1, 1})
	if _, err := NewDataset([]*Series{s0, nil}); err == nil {
		t.Error("nil series accepted")
	}
	s5 := mustSeries(t, 5, []float64{0, 1}, []float64{1, 1})
	if _, err := NewDataset([]*Series{s0, s5}); err == nil {
		t.Error("non-dense IDs accepted")
	}
}

func TestDatasetAggregates(t *testing.T) {
	s0 := mustSeries(t, 0, []float64{0, 2}, []float64{3, 3})   // total 6
	s1 := mustSeries(t, 1, []float64{1, 5}, []float64{0, 2})   // total 4
	s2 := mustSeries(t, 2, []float64{0, 4}, []float64{-1, -1}) // total -4, abs 4
	d := mustDataset(t, s0, s1, s2)
	if d.NumSeries() != 3 || d.NumSegments() != 3 {
		t.Errorf("m=%d N=%d", d.NumSeries(), d.NumSegments())
	}
	if d.Start() != 0 || d.End() != 5 {
		t.Errorf("domain [%g,%g], want [0,5]", d.Start(), d.End())
	}
	if !d.HasNegative() {
		t.Error("negatives not detected")
	}
	if got := d.SignedTotal(); !approxEq(got, 6, 1e-12) {
		t.Errorf("SignedTotal = %g, want 6", got)
	}
	if got := d.M(); !approxEq(got, 14, 1e-12) {
		t.Errorf("M = %g, want 14 (abs totals)", got)
	}
	if got := d.AvgSegments(); !approxEq(got, 1, 1e-12) {
		t.Errorf("AvgSegments = %g, want 1", got)
	}
	if got := d.MaxSegments(); got != 1 {
		t.Errorf("MaxSegments = %d, want 1", got)
	}
}

func TestDatasetFlatSegmentsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randomDataset(rng, 20, 15, false)
	flat := d.FlatSegments()
	if len(flat) != d.NumSegments() {
		t.Fatalf("flat len %d != N %d", len(flat), d.NumSegments())
	}
	for i := 1; i < len(flat); i++ {
		if flat[i].Segment.T1 < flat[i-1].Segment.T1 {
			t.Fatalf("flat not sorted at %d", i)
		}
	}
	// Every (series, index) pair appears exactly once.
	seen := make(map[[2]int32]bool, len(flat))
	for _, ref := range flat {
		key := [2]int32{int32(ref.Series), ref.Index}
		if seen[key] {
			t.Fatalf("duplicate segment ref %v", key)
		}
		seen[key] = true
	}
}

func TestDatasetRefreshAfterAppend(t *testing.T) {
	s0 := mustSeries(t, 0, []float64{0, 1}, []float64{2, 2})
	d := mustDataset(t, s0)
	oldM := d.M()
	if err := s0.Append(2, 2); err != nil {
		t.Fatal(err)
	}
	d.Refresh()
	if d.NumSegments() != 2 {
		t.Errorf("N after refresh = %d, want 2", d.NumSegments())
	}
	if d.M() <= oldM {
		t.Errorf("M did not grow: %g -> %g", oldM, d.M())
	}
	if d.End() != 2 {
		t.Errorf("End = %g, want 2", d.End())
	}
}

func TestDatasetClone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := randomDataset(rng, 10, 10, true)
	c := d.Clone()
	if c.NumSeries() != d.NumSeries() || c.NumSegments() != d.NumSegments() {
		t.Fatal("clone shape mismatch")
	}
	// Mutating the clone must not affect the original.
	origN := d.NumSegments()
	if err := c.Series(0).Append(c.Series(0).End()+1, 1); err != nil {
		t.Fatal(err)
	}
	c.Refresh()
	if d.NumSegments() != origN {
		t.Error("clone mutation leaked into original")
	}
	// Values agree.
	for i := 0; i < d.NumSeries(); i++ {
		id := SeriesID(i)
		a, b := d.Series(id), c.Series(id)
		t1 := a.Start() + (a.End()-a.Start())*0.25
		t2 := a.Start() + (a.End()-a.Start())*0.75
		if !approxEq(a.Range(t1, t2), b.Range(t1, t2), 1e-12) {
			t.Fatalf("series %d clone range mismatch", i)
		}
	}
}
