package tsdata

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSeries(t *testing.T, id SeriesID, times, values []float64) *Series {
	t.Helper()
	s, err := NewSeries(id, times, values)
	if err != nil {
		t.Fatalf("NewSeries: %v", err)
	}
	return s
}

// randomSeries builds a random piecewise-linear series for property
// tests: n segments over [0, 100].
func randomSeries(rng *rand.Rand, id SeriesID, n int, allowNegative bool) *Series {
	times := make([]float64, n+1)
	values := make([]float64, n+1)
	t := rng.Float64() * 5
	for j := 0; j <= n; j++ {
		times[j] = t
		t += 0.1 + rng.Float64()*3
		v := rng.Float64() * 100
		if allowNegative {
			v -= 50
		}
		values[j] = v
	}
	s, err := NewSeries(id, times, values)
	if err != nil {
		panic(err)
	}
	return s
}

func TestNewSeriesValidation(t *testing.T) {
	if _, err := NewSeries(0, []float64{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewSeries(0, []float64{0}, []float64{1}); err == nil {
		t.Error("single vertex accepted")
	}
	if _, err := NewSeries(0, []float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-increasing times accepted")
	}
	if _, err := NewSeries(0, []float64{0, math.NaN()}, []float64{1, 2}); err == nil {
		t.Error("NaN time accepted")
	}
	if _, err := NewSeries(0, []float64{0, 1}, []float64{1, math.Inf(1)}); err == nil {
		t.Error("Inf value accepted")
	}
}

func TestSeriesFromSegments(t *testing.T) {
	segs := []Segment{
		{T1: 0, T2: 1, V1: 0, V2: 2},
		{T1: 1, T2: 3, V1: 2, V2: 2},
	}
	s, err := SeriesFromSegments(7, segs)
	if err != nil {
		t.Fatalf("SeriesFromSegments: %v", err)
	}
	if s.ID != 7 || s.NumSegments() != 2 {
		t.Errorf("got ID=%d n=%d", s.ID, s.NumSegments())
	}
	if got := s.Total(); !approxEq(got, 5, 1e-12) {
		t.Errorf("Total = %g, want 5", got)
	}
	// Non-contiguous chain must be rejected.
	bad := []Segment{
		{T1: 0, T2: 1, V1: 0, V2: 2},
		{T1: 2, T2: 3, V1: 2, V2: 2},
	}
	if _, err := SeriesFromSegments(0, bad); err == nil {
		t.Error("non-contiguous chain accepted")
	}
	// Value-discontinuous chain must be rejected too.
	bad2 := []Segment{
		{T1: 0, T2: 1, V1: 0, V2: 2},
		{T1: 1, T2: 3, V1: 5, V2: 2},
	}
	if _, err := SeriesFromSegments(0, bad2); err == nil {
		t.Error("value-discontinuous chain accepted")
	}
	if _, err := SeriesFromSegments(0, nil); err == nil {
		t.Error("empty chain accepted")
	}
}

func TestSeriesPrefix(t *testing.T) {
	// g: (0,0)->(2,4)->(4,0): areas 4 and 4.
	s := mustSeries(t, 0, []float64{0, 2, 4}, []float64{0, 4, 0})
	wants := []float64{0, 4, 8}
	for j, w := range wants {
		if got := s.Prefix(j); !approxEq(got, w, 1e-12) {
			t.Errorf("Prefix(%d) = %g, want %g", j, got, w)
		}
	}
	if got := s.Total(); !approxEq(got, 8, 1e-12) {
		t.Errorf("Total = %g, want 8", got)
	}
}

func TestSeriesAtOutsideDomain(t *testing.T) {
	s := mustSeries(t, 0, []float64{1, 2}, []float64{5, 5})
	if got := s.At(0.5); got != 0 {
		t.Errorf("At before domain = %g, want 0", got)
	}
	if got := s.At(3); got != 0 {
		t.Errorf("At after domain = %g, want 0", got)
	}
	if got := s.At(1.5); got != 5 {
		t.Errorf("At inside = %g, want 5", got)
	}
}

func TestSeriesSegmentAt(t *testing.T) {
	s := mustSeries(t, 0, []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3})
	cases := []struct {
		t    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 1}, {1.5, 1}, {2, 2}, {2.9, 2}, {3, 2},
	}
	for _, c := range cases {
		if got := s.SegmentAt(c.t); got != c.want {
			t.Errorf("SegmentAt(%g) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestSeriesRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := randomSeries(rng, 0, 1+rng.Intn(40), trial%2 == 0)
		for q := 0; q < 40; q++ {
			t1 := s.Start() - 2 + rng.Float64()*(s.End()-s.Start()+4)
			t2 := t1 + rng.Float64()*(s.End()-s.Start())
			want := bruteRange(s, t1, t2)
			got := s.Range(t1, t2)
			if !approxEq(got, want, 1e-8) {
				t.Fatalf("trial %d: Range(%g,%g) = %g, want %g", trial, t1, t2, got, want)
			}
		}
	}
}

// bruteRange sums IntegralOver across every segment — the O(n) EXACT1
// inner loop, used as ground truth.
func bruteRange(s *Series, t1, t2 float64) float64 {
	var sum float64
	for j := 0; j < s.NumSegments(); j++ {
		sum += s.Segment(j).IntegralOver(t1, t2)
	}
	return sum
}

func bruteAbsRange(s *Series, t1, t2 float64) float64 {
	var sum float64
	for j := 0; j < s.NumSegments(); j++ {
		sum += s.Segment(j).AbsIntegralOver(t1, t2)
	}
	return sum
}

func TestSeriesAbsRangeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		s := randomSeries(rng, 0, 1+rng.Intn(30), true)
		for q := 0; q < 30; q++ {
			t1 := s.Start() + rng.Float64()*(s.End()-s.Start())
			t2 := t1 + rng.Float64()*(s.End()-t1)
			want := bruteAbsRange(s, t1, t2)
			got := s.AbsRange(t1, t2)
			if !approxEq(got, want, 1e-8) {
				t.Fatalf("trial %d: AbsRange(%g,%g) = %g, want %g", trial, t1, t2, got, want)
			}
		}
	}
}

func TestSeriesRangeDegenerate(t *testing.T) {
	s := mustSeries(t, 0, []float64{0, 10}, []float64{1, 1})
	if got := s.Range(5, 5); got != 0 {
		t.Errorf("empty interval = %g", got)
	}
	if got := s.Range(7, 3); got != 0 {
		t.Errorf("inverted interval = %g", got)
	}
	if got := s.Range(-5, -1); got != 0 {
		t.Errorf("fully left = %g", got)
	}
	if got := s.Range(11, 15); got != 0 {
		t.Errorf("fully right = %g", got)
	}
	if got := s.Range(-5, 15); !approxEq(got, 10, 1e-12) {
		t.Errorf("covering = %g, want 10", got)
	}
}

func TestSeriesAppend(t *testing.T) {
	s := mustSeries(t, 0, []float64{0, 1}, []float64{2, 2})
	if err := s.Append(2, 4); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if s.NumSegments() != 2 {
		t.Fatalf("NumSegments = %d, want 2", s.NumSegments())
	}
	if got := s.Total(); !approxEq(got, 2+3, 1e-12) {
		t.Errorf("Total after append = %g, want 5", got)
	}
	if err := s.Append(1.5, 0); err == nil {
		t.Error("append before end accepted")
	}
	if err := s.Append(3, math.NaN()); err == nil {
		t.Error("NaN append accepted")
	}
}

func TestSeriesAppendNegativeTransitionsAbsPrefix(t *testing.T) {
	s := mustSeries(t, 0, []float64{0, 1}, []float64{2, 2})
	if s.HasNegative() {
		t.Fatal("fresh positive series claims negatives")
	}
	if err := s.Append(2, -2); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if !s.HasNegative() {
		t.Fatal("negative append not detected")
	}
	// Segment (1,2)->(2,-2) crosses zero at 1.5: |area| = 1 + 1 = ... :
	// trapezoid from 2 to -2 over width 1: crossing at t=1.5,
	// |left|=0.5*0.5*2=0.5, |right|=0.5*0.5*2=0.5 -> 1.0. Plus first
	// segment area 2.
	if got := s.AbsTotal(); !approxEq(got, 3, 1e-12) {
		t.Errorf("AbsTotal = %g, want 3", got)
	}
	if got := s.Total(); !approxEq(got, 2, 1e-12) {
		t.Errorf("Total = %g, want 2", got)
	}
}

// Property: Range is additive over a split point.
func TestSeriesRangeAdditivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, c1, c2 float64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSeries(r, 0, 1+r.Intn(20), true)
		span := s.End() - s.Start()
		a := s.Start() + span*clamp01(c1)
		c := s.Start() + span*clamp01(c2)
		if a > c {
			a, c = c, a
		}
		b := (a + c) / 2
		return approxEq(s.Range(a, c), s.Range(a, b)+s.Range(b, c), 1e-8)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: appending then querying within the old domain is unchanged.
func TestSeriesAppendPreservesHistoryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSeries(r, 0, 2+r.Intn(15), false)
		oldEnd := s.End()
		before := s.Range(s.Start(), oldEnd)
		if err := s.Append(oldEnd+1+r.Float64(), r.Float64()*10); err != nil {
			return false
		}
		after := s.Range(s.Start(), oldEnd)
		return approxEq(before, after, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
