package tsdata

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return d <= tol
	}
	return d <= tol*scale
}

func TestSegmentAtEndpoints(t *testing.T) {
	s := Segment{T1: 2, T2: 6, V1: 10, V2: -2}
	if got := s.At(2); got != 10 {
		t.Errorf("At(T1) = %g, want 10", got)
	}
	if got := s.At(6); got != -2 {
		t.Errorf("At(T2) = %g, want -2", got)
	}
	if got := s.At(4); !approxEq(got, 4, 1e-12) {
		t.Errorf("At(mid) = %g, want 4", got)
	}
}

func TestSegmentSlope(t *testing.T) {
	s := Segment{T1: 0, T2: 2, V1: 1, V2: 5}
	if got := s.Slope(); got != 2 {
		t.Errorf("Slope = %g, want 2", got)
	}
}

func TestSegmentIntegralConstant(t *testing.T) {
	s := Segment{T1: 1, T2: 5, V1: 3, V2: 3}
	if got := s.Integral(); !approxEq(got, 12, 1e-12) {
		t.Errorf("Integral = %g, want 12", got)
	}
}

func TestSegmentIntegralTriangle(t *testing.T) {
	s := Segment{T1: 0, T2: 4, V1: 0, V2: 8}
	if got := s.Integral(); !approxEq(got, 16, 1e-12) {
		t.Errorf("Integral = %g, want 16", got)
	}
}

func TestSegmentIntegralOverClipping(t *testing.T) {
	s := Segment{T1: 0, T2: 10, V1: 0, V2: 10} // g(t) = t
	cases := []struct {
		t1, t2, want float64
	}{
		{0, 10, 50},
		{-5, 15, 50},  // clipped to full span
		{2, 4, 6},     // ∫_2^4 t dt = 6
		{10, 20, 0},   // disjoint right (touching)
		{-10, 0, 0},   // disjoint left (touching)
		{11, 20, 0},   // disjoint right
		{-10, -1, 0},  // disjoint left
		{5, 5, 0},     // empty interval
		{4, 2, 0},     // inverted interval
		{9, 100, 9.5}, // partial right ∫_9^10 t dt
	}
	for _, c := range cases {
		if got := s.IntegralOver(c.t1, c.t2); !approxEq(got, c.want, 1e-12) {
			t.Errorf("IntegralOver(%g,%g) = %g, want %g", c.t1, c.t2, got, c.want)
		}
	}
}

func TestSegmentIntegralOverNegative(t *testing.T) {
	s := Segment{T1: 0, T2: 2, V1: -1, V2: -3}
	if got := s.IntegralOver(0, 2); !approxEq(got, -4, 1e-12) {
		t.Errorf("IntegralOver = %g, want -4", got)
	}
}

func TestSegmentAbsIntegralNoCrossing(t *testing.T) {
	pos := Segment{T1: 0, T2: 2, V1: 1, V2: 3}
	if got := pos.AbsIntegral(); !approxEq(got, 4, 1e-12) {
		t.Errorf("AbsIntegral(pos) = %g, want 4", got)
	}
	neg := Segment{T1: 0, T2: 2, V1: -1, V2: -3}
	if got := neg.AbsIntegral(); !approxEq(got, 4, 1e-12) {
		t.Errorf("AbsIntegral(neg) = %g, want 4", got)
	}
}

func TestSegmentAbsIntegralCrossing(t *testing.T) {
	// g(t) = t-1 on [0,2]: |area| = 0.5 + 0.5 = 1.
	s := Segment{T1: 0, T2: 2, V1: -1, V2: 1}
	if got := s.AbsIntegral(); !approxEq(got, 1, 1e-12) {
		t.Errorf("AbsIntegral = %g, want 1", got)
	}
	// Clipped around the crossing.
	if got := s.AbsIntegralOver(0.5, 1.5); !approxEq(got, 0.25, 1e-12) {
		t.Errorf("AbsIntegralOver(0.5,1.5) = %g, want 0.25", got)
	}
}

func TestSegmentValidate(t *testing.T) {
	good := Segment{T1: 0, T2: 1, V1: 0, V2: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid segment rejected: %v", err)
	}
	bads := []Segment{
		{T1: 1, T2: 1, V1: 0, V2: 0},
		{T1: 2, T2: 1, V1: 0, V2: 0},
		{T1: math.NaN(), T2: 1, V1: 0, V2: 0},
		{T1: 0, T2: math.Inf(1), V1: 0, V2: 0},
		{T1: 0, T2: 1, V1: math.NaN(), V2: 0},
	}
	for _, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("invalid segment %v accepted", b)
		}
	}
}

func TestSolveIntegralForwardLinear(t *testing.T) {
	// Constant g = 2 on [0, 10]: ∫_0^x = 2x, target 6 -> x = 3.
	s := Segment{T1: 0, T2: 10, V1: 2, V2: 2}
	got, ok := s.SolveIntegralForward(0, 6)
	if !ok || !approxEq(got, 3, 1e-12) {
		t.Errorf("SolveIntegralForward = (%g,%v), want (3,true)", got, ok)
	}
}

func TestSolveIntegralForwardQuadratic(t *testing.T) {
	// g(t) = t on [0,10]: ∫_0^x = x²/2, target 8 -> x = 4.
	s := Segment{T1: 0, T2: 10, V1: 0, V2: 10}
	got, ok := s.SolveIntegralForward(0, 8)
	if !ok || !approxEq(got, 4, 1e-12) {
		t.Errorf("SolveIntegralForward = (%g,%v), want (4,true)", got, ok)
	}
	// From a midpoint: ∫_2^x t dt = target.
	got, ok = s.SolveIntegralForward(2, 6) // x²/2 - 2 = 6 -> x = 4
	if !ok || !approxEq(got, 4, 1e-12) {
		t.Errorf("SolveIntegralForward(from 2) = (%g,%v), want (4,true)", got, ok)
	}
}

func TestSolveIntegralForwardUnreachable(t *testing.T) {
	s := Segment{T1: 0, T2: 1, V1: 1, V2: 1} // total area 1
	if _, ok := s.SolveIntegralForward(0, 2); ok {
		t.Error("target beyond segment total should fail")
	}
}

func TestSolveIntegralForwardAtBoundary(t *testing.T) {
	s := Segment{T1: 0, T2: 2, V1: 1, V2: 1}
	got, ok := s.SolveIntegralForward(0, 2) // exactly the full area
	if !ok || !approxEq(got, 2, 1e-9) {
		t.Errorf("boundary solve = (%g,%v), want (2,true)", got, ok)
	}
}

func TestSolveIntegralForwardDecreasingSlope(t *testing.T) {
	// g(t) = 4-t on [0,4]: ∫_0^x = 4x - x²/2; target 6 -> x = 2.
	s := Segment{T1: 0, T2: 4, V1: 4, V2: 0}
	got, ok := s.SolveIntegralForward(0, 6)
	if !ok || !approxEq(got, 2, 1e-9) {
		t.Errorf("decreasing solve = (%g,%v), want (2,true)", got, ok)
	}
}

// Property: IntegralOver is additive: σ(a,c) = σ(a,b) + σ(b,c).
func TestSegmentIntegralAdditivityProperty(t *testing.T) {
	f := func(rawT1, rawDur, v1, v2, cut1, cut2 float64) bool {
		t1 := math.Mod(math.Abs(rawT1), 100)
		dur := math.Mod(math.Abs(rawDur), 50) + 0.1
		v1 = math.Mod(v1, 1000)
		v2 = math.Mod(v2, 1000)
		s := Segment{T1: t1, T2: t1 + dur, V1: v1, V2: v2}
		a := t1 + dur*clamp01(cut1)
		c := t1 + dur*clamp01(cut2)
		if a > c {
			a, c = c, a
		}
		b := (a + c) / 2
		whole := s.IntegralOver(a, c)
		split := s.IntegralOver(a, b) + s.IntegralOver(b, c)
		return approxEq(whole, split, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: SolveIntegralForward inverts IntegralOver for positive
// segments.
func TestSolveInvertsIntegralProperty(t *testing.T) {
	f := func(rawV1, rawV2, rawFrac float64) bool {
		v1 := math.Mod(math.Abs(rawV1), 100) + 0.5
		v2 := math.Mod(math.Abs(rawV2), 100) + 0.5
		s := Segment{T1: 0, T2: 10, V1: v1, V2: v2}
		frac := clamp01(rawFrac)*0.98 + 0.01
		target := s.Integral() * frac
		x, ok := s.SolveIntegralForward(0, target)
		if !ok {
			return false
		}
		return approxEq(s.IntegralOver(0, x), target, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: |AbsIntegralOver| >= |IntegralOver| and both agree for
// non-negative segments.
func TestAbsIntegralDominatesProperty(t *testing.T) {
	f := func(v1, v2, c1, c2 float64) bool {
		v1 = math.Mod(v1, 100)
		v2 = math.Mod(v2, 100)
		s := Segment{T1: 0, T2: 5, V1: v1, V2: v2}
		a := 5 * clamp01(c1)
		b := 5 * clamp01(c2)
		if a > b {
			a, b = b, a
		}
		abs := s.AbsIntegralOver(a, b)
		signed := s.IntegralOver(a, b)
		if abs < math.Abs(signed)-1e-9*math.Max(1, abs) {
			return false
		}
		if v1 >= 0 && v2 >= 0 && !approxEq(abs, signed, 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSolveAbsIntegralForwardPositive(t *testing.T) {
	// Pure positive segment: behaves like the signed solver.
	s := Segment{T1: 0, T2: 10, V1: 2, V2: 2}
	got, ok := s.SolveAbsIntegralForward(0, 6)
	if !ok || !approxEq(got, 3, 1e-9) {
		t.Errorf("= (%g,%v), want (3,true)", got, ok)
	}
}

func TestSolveAbsIntegralForwardNegative(t *testing.T) {
	// Pure negative segment g=-2: |g|=2, target 6 -> t=3.
	s := Segment{T1: 0, T2: 10, V1: -2, V2: -2}
	got, ok := s.SolveAbsIntegralForward(0, 6)
	if !ok || !approxEq(got, 3, 1e-9) {
		t.Errorf("= (%g,%v), want (3,true)", got, ok)
	}
}

func TestSolveAbsIntegralForwardCrossing(t *testing.T) {
	// g(t) = t-2 on [0,4]: |area| over [0,2] = 2, over [2,4] = 2.
	s := Segment{T1: 0, T2: 4, V1: -2, V2: 2}
	// Target 2 reached exactly at the crossing t=2.
	got, ok := s.SolveAbsIntegralForward(0, 2)
	if !ok || !approxEq(got, 2, 1e-9) {
		t.Errorf("target 2 = (%g,%v), want (2,true)", got, ok)
	}
	// Target 2.5: 0.5 into the positive piece: ∫_2^x (t-2) = (x-2)²/2 = 0.5 -> x=3.
	got, ok = s.SolveAbsIntegralForward(0, 2.5)
	if !ok || !approxEq(got, 3, 1e-9) {
		t.Errorf("target 2.5 = (%g,%v), want (3,true)", got, ok)
	}
	// Unreachable.
	if _, ok := s.SolveAbsIntegralForward(0, 5); ok {
		t.Error("target beyond |area| accepted")
	}
}

// Property: SolveAbsIntegralForward inverts AbsIntegralOver.
func TestSolveAbsInvertsProperty(t *testing.T) {
	f := func(rawV1, rawV2, rawFrac float64) bool {
		v1 := math.Mod(rawV1, 100)
		v2 := math.Mod(rawV2, 100)
		if v1 == 0 && v2 == 0 {
			return true
		}
		s := Segment{T1: 1, T2: 9, V1: v1, V2: v2}
		frac := clamp01(rawFrac)*0.96 + 0.02
		target := s.AbsIntegral() * frac
		if target <= 0 {
			return true
		}
		x, ok := s.SolveAbsIntegralForward(1, target)
		if !ok {
			return false
		}
		return approxEq(s.AbsIntegralOver(1, x), target, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func clamp01(x float64) float64 {
	x = math.Abs(math.Mod(x, 1))
	if math.IsNaN(x) {
		return 0.5
	}
	return x
}
