package tsdata

import (
	"fmt"
	"math"
	"sort"
)

// Dataset is the full temporal database: m objects with N total
// segments over temporal domain [Start, End] (the paper's [0, T]).
type Dataset struct {
	series []*Series

	totalSegments int
	start, end    float64
	m             float64 // Σ_i σ_i(0,T) with absolute values when negatives present
	sum           float64 // Σ_i σ_i(0,T), signed
	hasNegative   bool
}

// NewDataset assembles a Dataset. Series must be indexed by their ID:
// series[i].ID == i is enforced so that per-object running-sum arrays
// can be indexed densely.
func NewDataset(series []*Series) (*Dataset, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("tsdata: empty dataset")
	}
	d := &Dataset{series: series, start: math.Inf(1), end: math.Inf(-1)}
	for i, s := range series {
		if s == nil {
			return nil, fmt.Errorf("tsdata: nil series at %d", i)
		}
		if int(s.ID) != i {
			return nil, fmt.Errorf("tsdata: series at position %d has ID %d (must be dense 0..m-1)", i, s.ID)
		}
		d.totalSegments += s.NumSegments()
		d.start = math.Min(d.start, s.Start())
		d.end = math.Max(d.end, s.End())
		d.sum += s.Total()
		d.m += s.AbsTotal()
		if s.HasNegative() {
			d.hasNegative = true
		}
	}
	return d, nil
}

// NumSeries returns m, the number of objects.
func (d *Dataset) NumSeries() int { return len(d.series) }

// NumSegments returns N, the total number of segments.
func (d *Dataset) NumSegments() int { return d.totalSegments }

// Series returns object i.
func (d *Dataset) Series(i SeriesID) *Series { return d.series[i] }

// AllSeries returns the underlying slice (callers must not mutate).
func (d *Dataset) AllSeries() []*Series { return d.series }

// Start returns the left end of the temporal domain.
func (d *Dataset) Start() float64 { return d.start }

// End returns T, the right end of the temporal domain.
func (d *Dataset) End() float64 { return d.end }

// Span returns End-Start.
func (d *Dataset) Span() float64 { return d.end - d.start }

// M returns M = Σ_i σ_i(0,T), using absolute integrals when any series
// has negative values (the §4 extension); this is the normalizer in the
// (ε,α)-approximation guarantees.
func (d *Dataset) M() float64 { return d.m }

// SignedTotal returns Σ_i σ_i(0,T) without the absolute-value
// adjustment.
func (d *Dataset) SignedTotal() float64 { return d.sum }

// HasNegative reports whether any object has a negative score anywhere.
func (d *Dataset) HasNegative() bool { return d.hasNegative }

// AvgSegments returns navg.
func (d *Dataset) AvgSegments() float64 {
	return float64(d.totalSegments) / float64(len(d.series))
}

// MaxSegments returns n = max_i n_i.
func (d *Dataset) MaxSegments() int {
	n := 0
	for _, s := range d.series {
		if s.NumSegments() > n {
			n = s.NumSegments()
		}
	}
	return n
}

// Range computes σ_i(t1,t2) for object i (in-memory reference path).
func (d *Dataset) Range(i SeriesID, t1, t2 float64) float64 {
	return d.series[i].Range(t1, t2)
}

// Refresh recomputes dataset-level aggregates after series have been
// extended via Series.Append. O(m).
func (d *Dataset) Refresh() {
	d.totalSegments = 0
	d.start, d.end = math.Inf(1), math.Inf(-1)
	d.sum, d.m = 0, 0
	d.hasNegative = false
	for _, s := range d.series {
		d.totalSegments += s.NumSegments()
		d.start = math.Min(d.start, s.Start())
		d.end = math.Max(d.end, s.End())
		d.sum += s.Total()
		d.m += s.AbsTotal()
		if s.HasNegative() {
			d.hasNegative = true
		}
	}
}

// SegmentRef identifies a segment within the dataset: object i, local
// segment index j.
type SegmentRef struct {
	Series  SeriesID
	Index   int32
	Segment Segment
}

// FlatSegments returns every segment of every object, sorted by left
// endpoint time (ties broken by series then index). This is the input
// ordering required by EXACT1 bulk-loading and breakpoint construction;
// the sort mirrors the paper's external sort (at our scale it runs
// in memory, the IO-metered variant lives in internal/extsort).
func (d *Dataset) FlatSegments() []SegmentRef {
	out := make([]SegmentRef, 0, d.totalSegments)
	for _, s := range d.series {
		for j := 0; j < s.NumSegments(); j++ {
			out = append(out, SegmentRef{Series: s.ID, Index: int32(j), Segment: s.Segment(j)})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		sa, sb := out[a], out[b]
		if sa.Segment.T1 != sb.Segment.T1 {
			return sa.Segment.T1 < sb.Segment.T1
		}
		if sa.Series != sb.Series {
			return sa.Series < sb.Series
		}
		return sa.Index < sb.Index
	})
	return out
}

// Clone deep-copies the dataset (used by update benchmarks so appends
// do not pollute shared fixtures).
func (d *Dataset) Clone() *Dataset {
	cp := make([]*Series, len(d.series))
	for i, s := range d.series {
		times := append([]float64(nil), s.times...)
		values := append([]float64(nil), s.values...)
		ns, err := NewSeries(s.ID, times, values)
		if err != nil {
			panic(fmt.Sprintf("tsdata: clone of valid series failed: %v", err))
		}
		cp[i] = ns
	}
	nd, err := NewDataset(cp)
	if err != nil {
		panic(fmt.Sprintf("tsdata: clone of valid dataset failed: %v", err))
	}
	return nd
}
