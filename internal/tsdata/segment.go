// Package tsdata defines the temporal data model used throughout the
// library: objects represented as piecewise-linear score functions, the
// trapezoid integration primitive (Eq. 1 of the paper), and prefix-sum
// decomposition (Eq. 2). All methods in internal/exact and
// internal/approx are built on these primitives.
//
// An object o_i is a function g_i: [t_{i,0}, t_{i,n_i}] -> R given by n_i
// linear segments. Outside its domain an object scores 0. Time and score
// are float64; aggregate scores are exact integrals of the piecewise
// linear function (no numeric quadrature involved).
package tsdata

import (
	"fmt"
	"math"
)

// SeriesID identifies an object (a temporal series) within a Dataset.
// IDs are dense: 0..m-1.
type SeriesID int32

// Segment is one linear piece of an object's score function: the line
// from (T1, V1) to (T2, V2) with T1 < T2.
type Segment struct {
	T1, T2 float64 // time span, T1 < T2
	V1, V2 float64 // scores at T1 and T2
}

// Slope returns the segment's slope (V2-V1)/(T2-T1).
func (s Segment) Slope() float64 { return (s.V2 - s.V1) / (s.T2 - s.T1) }

// At evaluates the segment's line at time t. t should lie in [T1, T2];
// values outside are linear extrapolations (used internally when solving
// for threshold crossings).
func (s Segment) At(t float64) float64 {
	// Interpolate in a numerically stable form: exact at both endpoints.
	w := (t - s.T1) / (s.T2 - s.T1)
	return s.V1*(1-w) + s.V2*w
}

// Duration returns T2-T1.
func (s Segment) Duration() float64 { return s.T2 - s.T1 }

// Integral returns the full integral of the segment over [T1, T2]: the
// (signed) trapezoid area.
func (s Segment) Integral() float64 {
	return 0.5 * (s.T2 - s.T1) * (s.V1 + s.V2)
}

// IntegralOver returns the integral of the segment's line over
// [t1,t2] ∩ [T1,T2], i.e. σ_i(I) of Eq. (1): zero when the ranges are
// disjoint, otherwise the area of the trapezoid between tL=max(t1,T1)
// and tR=min(t2,T2).
func (s Segment) IntegralOver(t1, t2 float64) float64 {
	tL := math.Max(t1, s.T1)
	tR := math.Min(t2, s.T2)
	if tR <= tL {
		return 0
	}
	return 0.5 * (tR - tL) * (s.At(tL) + s.At(tR))
}

// IntegralFrom returns the integral over [t, T2] for t already known
// to lie in [T1, T2]: IntegralOver(t, T2) without the clamping
// min/max, bit-identical to it on that domain (At(T2) evaluates to
// exactly V2). The stab visitors call this once per object per query,
// where the two math.Max/Min calls of the general form are measurable.
func (s Segment) IntegralFrom(t float64) float64 {
	if s.T2 <= t {
		return 0
	}
	return 0.5 * (s.T2 - t) * (s.At(t) + s.V2)
}

// AbsIntegral returns the integral of |g| over the segment's own span.
// Used when scores may be negative: breakpoint construction (§4 of the
// paper) replaces σ by ∫|g| when defining M and thresholds.
func (s Segment) AbsIntegral() float64 {
	return s.AbsIntegralOver(s.T1, s.T2)
}

// AbsIntegralOver returns ∫ |g(t)| dt over [t1,t2] ∩ [T1,T2]. If the
// line crosses zero inside the clipped range the two sub-trapezoids are
// accumulated separately.
func (s Segment) AbsIntegralOver(t1, t2 float64) float64 {
	tL := math.Max(t1, s.T1)
	tR := math.Min(t2, s.T2)
	if tR <= tL {
		return 0
	}
	vL, vR := s.At(tL), s.At(tR)
	if vL >= 0 && vR >= 0 {
		return 0.5 * (tR - tL) * (vL + vR)
	}
	if vL <= 0 && vR <= 0 {
		return -0.5 * (tR - tL) * (vL + vR)
	}
	// One sign change: find the zero crossing tz on the line.
	tz := tL + (tR-tL)*vL/(vL-vR)
	left := 0.5 * (tz - tL) * vL
	right := 0.5 * (tR - tz) * vR
	return math.Abs(left) + math.Abs(right)
}

// Validate reports whether the segment is well formed: finite endpoints
// and strictly increasing time span.
func (s Segment) Validate() error {
	for _, v := range [...]float64{s.T1, s.T2, s.V1, s.V2} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("tsdata: segment %+v has non-finite field", s)
		}
	}
	if s.T2 <= s.T1 {
		return fmt.Errorf("tsdata: segment %+v has non-positive duration", s)
	}
	return nil
}

// String implements fmt.Stringer.
func (s Segment) String() string {
	return fmt.Sprintf("[(%g,%g)->(%g,%g)]", s.T1, s.V1, s.T2, s.V2)
}

// SolveIntegralForward returns the earliest time t in (from, s.T2] such
// that ∫_{from}^{t} g = target, or (0,false) if the integral over
// (from, s.T2] never reaches target. Requires from in [T1,T2) and
// target > 0; used to locate breakpoints mid-segment (§3.1).
//
// With v = g(from) and slope w, the running integral is
// I(t) = w/2·(t-from)² + v·(t-from); we solve I(t)=target for the
// smallest positive root.
func (s Segment) SolveIntegralForward(from, target float64) (float64, bool) {
	if target <= 0 {
		return from, true
	}
	total := s.IntegralOver(from, s.T2)
	if total < target {
		return 0, false
	}
	v := s.At(from)
	w := s.Slope()
	dt, ok := solveQuadIntegral(v, w, target, s.T2-from)
	if !ok {
		return 0, false
	}
	return from + dt, true
}

// SolveAbsIntegralForward returns the earliest time t in (from, s.T2]
// such that ∫_{from}^{t} |g| = target, or (0,false) if unreachable
// within the segment. This is the threshold-crossing primitive of
// breakpoint construction under the §4 negative-score extension (the
// paper replaces σ by ∫|g| when defining M and thresholds).
func (s Segment) SolveAbsIntegralForward(from, target float64) (float64, bool) {
	if target <= 0 {
		return from, true
	}
	if s.AbsIntegralOver(from, s.T2)*(1+1e-12) < target {
		return 0, false
	}
	// Split [from, T2] at the segment's zero crossing (computed from the
	// full span, so a `from` sitting on the crossing cannot stall).
	cuts := []float64{from, s.T2}
	if (s.V1 < 0) != (s.V2 < 0) && s.V1 != s.V2 {
		tz := s.T1 + (s.T2-s.T1)*s.V1/(s.V1-s.V2)
		if tz > from && tz < s.T2 {
			cuts = []float64{from, tz, s.T2}
		}
	}
	w := s.Slope()
	remaining := target
	for p := 0; p+1 < len(cuts); p++ {
		a, b := cuts[p], cuts[p+1]
		area := s.AbsIntegralOver(a, b)
		if remaining > area && p+2 < len(cuts) {
			remaining -= area
			continue
		}
		// Solve within this one-signed piece: |g| has value |g(a)| and
		// slope ±w according to the piece's sign.
		sign := 1.0
		if s.At((a+b)/2) < 0 {
			sign = -1
		}
		v0 := sign * s.At(a)
		if v0 < 0 {
			v0 = 0 // rounding noise at the crossing
		}
		if remaining > area {
			remaining = area // clamp rounding noise on the last piece
		}
		dt, ok := solveQuadIntegral(v0, sign*w, remaining, b-a)
		if !ok {
			return b, true // target met at the piece boundary modulo rounding
		}
		return a + dt, true
	}
	return 0, false
}

// solveQuadIntegral solves w/2·x² + v·x = target for the smallest
// x in (0, maxX]. Handles the linear case w≈0 and clamps numeric noise.
func solveQuadIntegral(v, w, target, maxX float64) (float64, bool) {
	const tiny = 1e-300
	if math.Abs(w) < tiny {
		if v <= 0 {
			return 0, false
		}
		x := target / v
		if x > maxX {
			// Integral reaches target exactly at/after maxX due to
			// rounding in the caller's pre-check; clamp.
			if target <= v*maxX*(1+1e-9) {
				return maxX, true
			}
			return 0, false
		}
		return x, true
	}
	// w/2 x² + v x - target = 0 -> x = (-v ± sqrt(v² + 2w·target)) / w
	disc := v*v + 2*w*target
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	// Stable smallest-positive-root selection.
	var roots [2]float64
	roots[0] = (-v + sq) / w
	roots[1] = (-v - sq) / w
	best := math.Inf(1)
	for _, r := range roots {
		if r > 0 && r < best {
			best = r
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	if best > maxX {
		if best <= maxX*(1+1e-9) {
			return maxX, true
		}
		return 0, false
	}
	return best, true
}
