package tsdata

import (
	"fmt"
	"math"
	"sort"
)

// Series is one temporal object: a contiguous chain of linear segments.
// Segment j's right endpoint is segment j+1's left endpoint, so the
// series is fully described by its n+1 vertices (t_j, v_j); the exported
// Segments view materializes them as n Segment values.
type Series struct {
	ID SeriesID

	// times and values are the n+1 vertices, times strictly increasing.
	times  []float64
	values []float64

	// prefix[j] = σ_i(I_{i,j}) = integral of the series over
	// [times[0], times[j]]; prefix[0] = 0. This is the prefix-sum array
	// of EXACT2 (Eq. 2) and is also used by breakpoint construction.
	prefix []float64

	// absPrefix is the prefix array of ∫|g|; only populated when the
	// series contains negative values (see Dataset.HasNegative).
	absPrefix []float64
}

// NewSeries builds a Series from vertex lists. times must be strictly
// increasing and the slices of equal length >= 2.
func NewSeries(id SeriesID, times, values []float64) (*Series, error) {
	if len(times) != len(values) {
		return nil, fmt.Errorf("tsdata: series %d: %d times vs %d values", id, len(times), len(values))
	}
	if len(times) < 2 {
		return nil, fmt.Errorf("tsdata: series %d: need at least 2 vertices, got %d", id, len(times))
	}
	for i, t := range times {
		if math.IsNaN(t) || math.IsInf(t, 0) || math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
			return nil, fmt.Errorf("tsdata: series %d: non-finite vertex %d", id, i)
		}
		if i > 0 && t <= times[i-1] {
			return nil, fmt.Errorf("tsdata: series %d: times not strictly increasing at %d (%g <= %g)", id, i, t, times[i-1])
		}
	}
	s := &Series{ID: id, times: times, values: values}
	s.buildPrefix()
	return s, nil
}

// SeriesFromSegments builds a Series from a contiguous segment chain.
func SeriesFromSegments(id SeriesID, segs []Segment) (*Series, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("tsdata: series %d: empty segment list", id)
	}
	times := make([]float64, 0, len(segs)+1)
	values := make([]float64, 0, len(segs)+1)
	times = append(times, segs[0].T1)
	values = append(values, segs[0].V1)
	for j, sg := range segs {
		if err := sg.Validate(); err != nil {
			return nil, err
		}
		if j > 0 {
			if sg.T1 != segs[j-1].T2 || sg.V1 != segs[j-1].V2 {
				return nil, fmt.Errorf("tsdata: series %d: segment %d not contiguous with predecessor", id, j)
			}
		}
		times = append(times, sg.T2)
		values = append(values, sg.V2)
	}
	return NewSeries(id, times, values)
}

func (s *Series) buildPrefix() {
	n := len(s.times) - 1
	s.prefix = make([]float64, n+1)
	neg := false
	for j := 0; j < n; j++ {
		seg := Segment{s.times[j], s.times[j+1], s.values[j], s.values[j+1]}
		s.prefix[j+1] = s.prefix[j] + seg.Integral()
		if s.values[j] < 0 || s.values[j+1] < 0 {
			neg = true
		}
	}
	if neg {
		s.absPrefix = make([]float64, n+1)
		for j := 0; j < n; j++ {
			seg := Segment{s.times[j], s.times[j+1], s.values[j], s.values[j+1]}
			s.absPrefix[j+1] = s.absPrefix[j] + seg.AbsIntegral()
		}
	}
}

// NumSegments returns n_i, the number of linear segments.
func (s *Series) NumSegments() int { return len(s.times) - 1 }

// Start returns t_{i,0}, the first vertex time.
func (s *Series) Start() float64 { return s.times[0] }

// End returns t_{i,n_i}, the last vertex time.
func (s *Series) End() float64 { return s.times[len(s.times)-1] }

// VertexTime returns t_{i,j} for j in [0, n_i].
func (s *Series) VertexTime(j int) float64 { return s.times[j] }

// VertexValue returns v_{i,j} for j in [0, n_i].
func (s *Series) VertexValue(j int) float64 { return s.values[j] }

// Prefix returns σ_i([t_{i,0}, t_{i,j}]), the precomputed prefix
// aggregate through vertex j.
func (s *Series) Prefix(j int) float64 { return s.prefix[j] }

// HasNegative reports whether any vertex value is negative.
func (s *Series) HasNegative() bool { return s.absPrefix != nil }

// AbsTotal returns ∫|g| over the full domain (equals Total when the
// series is non-negative).
func (s *Series) AbsTotal() float64 {
	if s.absPrefix != nil {
		return s.absPrefix[len(s.absPrefix)-1]
	}
	return s.prefix[len(s.prefix)-1]
}

// Total returns σ_i(0,T): the integral over the series' full domain.
func (s *Series) Total() float64 { return s.prefix[len(s.prefix)-1] }

// Segment returns the j-th segment g_{i,j+1} (0-based j in [0, n_i)).
func (s *Series) Segment(j int) Segment {
	return Segment{s.times[j], s.times[j+1], s.values[j], s.values[j+1]}
}

// At evaluates g_i(t); zero outside the series' domain.
func (s *Series) At(t float64) float64 {
	if t < s.times[0] || t > s.End() {
		return 0
	}
	j := s.SegmentAt(t)
	return s.Segment(j).At(t)
}

// SegmentAt returns the index of the segment whose span contains t,
// i.e. the largest j with times[j] <= t (clamped to a valid segment
// index). Caller must ensure t is within the series domain.
func (s *Series) SegmentAt(t float64) int {
	// sort.SearchFloat64s gives the first index with times[idx] >= t.
	idx := sort.SearchFloat64s(s.times, t)
	if idx == len(s.times) {
		return len(s.times) - 2
	}
	if s.times[idx] == t {
		if idx == len(s.times)-1 {
			return idx - 1
		}
		return idx
	}
	if idx == 0 {
		return 0
	}
	return idx - 1
}

// Range computes σ_i(t1,t2) exactly via the prefix array: two binary
// searches plus two partial trapezoids (this is Eq. 2 evaluated
// in-memory; EXACT2/EXACT3 compute the same quantity from disk pages).
func (s *Series) Range(t1, t2 float64) float64 {
	if t2 <= t1 {
		return 0
	}
	// Clip to domain; outside the domain the function is 0.
	t1 = math.Max(t1, s.Start())
	t2 = math.Min(t2, s.End())
	if t2 <= t1 {
		return 0
	}
	jL := s.SegmentAt(t1)
	jR := s.SegmentAt(t2)
	// σ(t1,t2) = prefix[jR] - prefix[jL+1] + σ(t1, t_{jL+1}) + σ(t_{jR}, t2)
	segL := s.Segment(jL)
	segR := s.Segment(jR)
	if jL == jR {
		return segL.IntegralOver(t1, t2)
	}
	mid := s.prefix[jR] - s.prefix[jL+1]
	return mid + segL.IntegralOver(t1, segL.T2) + segR.IntegralOver(segR.T1, t2)
}

// AbsRange computes ∫_{t1}^{t2} |g_i| dt exactly.
func (s *Series) AbsRange(t1, t2 float64) float64 {
	if t2 <= t1 {
		return 0
	}
	t1 = math.Max(t1, s.Start())
	t2 = math.Min(t2, s.End())
	if t2 <= t1 {
		return 0
	}
	jL := s.SegmentAt(t1)
	jR := s.SegmentAt(t2)
	segL := s.Segment(jL)
	segR := s.Segment(jR)
	if jL == jR {
		return segL.AbsIntegralOver(t1, t2)
	}
	var mid float64
	if s.absPrefix != nil {
		mid = s.absPrefix[jR] - s.absPrefix[jL+1]
	} else {
		mid = s.prefix[jR] - s.prefix[jL+1]
	}
	return mid + segL.AbsIntegralOver(t1, segL.T2) + segR.AbsIntegralOver(segR.T1, t2)
}

// Append extends the series with one new segment whose left endpoint is
// the current last vertex (the §4 update model: temporal data receives
// updates only at the current time instance). The prefix arrays are
// extended in O(1).
func (s *Series) Append(t, v float64) error {
	last := len(s.times) - 1
	if t <= s.times[last] {
		return fmt.Errorf("tsdata: series %d: append time %g not after end %g", s.ID, t, s.times[last])
	}
	if math.IsNaN(t) || math.IsInf(t, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("tsdata: series %d: non-finite append", s.ID)
	}
	seg := Segment{s.times[last], t, s.values[last], v}
	s.times = append(s.times, t)
	s.values = append(s.values, v)
	s.prefix = append(s.prefix, s.prefix[len(s.prefix)-1]+seg.Integral())
	if s.absPrefix == nil && v < 0 {
		// First negative value: build abs prefix from scratch.
		s.absPrefix = make([]float64, 1, len(s.times))
		for j := 0; j < len(s.times)-1; j++ {
			sg := s.Segment(j)
			s.absPrefix = append(s.absPrefix, s.absPrefix[j]+sg.AbsIntegral())
		}
	} else if s.absPrefix != nil {
		s.absPrefix = append(s.absPrefix, s.absPrefix[len(s.absPrefix)-1]+seg.AbsIntegral())
	}
	return nil
}
