// Package analysis is a self-contained, dependency-free miniature of
// the golang.org/x/tools/go/analysis API: an Analyzer inspects one
// type-checked package and reports Diagnostics through its Pass.
//
// The engine's project-specific invariants (blockio lock ordering,
// trerr sentinel discipline, context threading, hot-path allocation
// hygiene) are encoded as analyzers under internal/analysis/... and
// driven by cmd/trlint. The API mirrors x/tools closely enough that
// the analyzers could be ported to a real multichecker by swapping
// imports, but it is implemented entirely on the standard library so
// the module keeps zero external dependencies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name for diagnostics and
// enable/disable flags, documentation, and the Run function applied to
// each package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be
	// a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: first line a one-sentence
	// summary, then free-form detail.
	Doc string

	// Run applies the check to one package and reports findings via
	// pass.Report/Reportf. The result value is unused by this driver
	// (kept for x/tools API shape).
	Run func(pass *Pass) (any, error)
}

// Pass is one (analyzer, package) application: the type-checked
// syntax, type information, and the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver owns ordering,
	// deduplication, and suppression.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
