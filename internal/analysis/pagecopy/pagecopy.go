// Package pagecopy keeps annotated hot-path functions on the
// zero-copy read path: inside a //tr:hotpath function it flags
// copy-based page access — Device.Read into caller scratch, and
// GetPageBuf scratch rental — wherever the device vocabulary offers a
// zero-copy View instead. It is the mechanical guard for the PR-10
// read-path rework: without it, the next convenient `dev.Read(id,
// buf)` quietly reintroduces a full-page memcpy per access on paths
// the benchmarks assume are copy-free.
//
// # Scoping
//
// Like lockorder, the analyzer switches itself on structurally rather
// than by import path: it looks for a dependency (or the package
// itself) that declares the view vocabulary — a `PageView` type and a
// `Viewer` interface with a `View` method. Packages with no such
// dependency are never inspected, which keeps the golden testdata
// self-contained. The declaring package itself is exempt: it hosts
// the copy-based fallbacks the rest of the engine degrades to (the
// buffer pool's miss fill, the universal copy view), which are
// copy-based by design.
//
// # What is flagged
//
// Inside a //tr:hotpath function:
//
//   - calls to a method named Read declared by the view package whose
//     signature is the page-read shape (page id + byte slice → error),
//     whether through the Device interface or a concrete device;
//   - calls to the view package's GetPageBuf (renting copy scratch on
//     a hot path is the tell of a copy-based scan).
//
// A sanctioned copy — a write path that must materialize bytes, a
// cold error branch — is waived line-by-line with
//
//	//tr:pagecopy-ok <reason>
//
// on (or immediately above) the offending line, mirroring hotalloc's
// waiver contract.
package pagecopy

import (
	"go/ast"
	"go/types"
	"strings"

	"temporalrank/internal/analysis"
)

// Analyzer is the pagecopy analysis.
var Analyzer = &analysis.Analyzer{
	Name: "pagecopy",
	Doc:  "flag copy-based page reads inside //tr:hotpath functions where a zero-copy View exists",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	vp := viewPackage(pass.Pkg)
	if vp == nil || vp == pass.Pkg {
		return nil, nil
	}
	for _, f := range pass.Files {
		waived := waivedLines(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			c := &checker{pass: pass, vp: vp, waived: waived}
			c.check(fd.Body)
		}
	}
	return nil, nil
}

// viewPackage returns the package providing the zero-copy view
// vocabulary — a PageView type plus a Viewer interface with a View
// method — looked up in pkg itself and its direct imports.
func viewPackage(pkg *types.Package) *types.Package {
	if declaresViews(pkg) {
		return pkg
	}
	for _, imp := range pkg.Imports() {
		if declaresViews(imp) {
			return imp
		}
	}
	return nil
}

func declaresViews(pkg *types.Package) bool {
	if _, ok := pkg.Scope().Lookup("PageView").(*types.TypeName); !ok {
		return false
	}
	obj, ok := pkg.Scope().Lookup("Viewer").(*types.TypeName)
	if !ok {
		return false
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "View" {
			return true
		}
	}
	return false
}

// isHotPath reports whether the declaration carries //tr:hotpath.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//tr:hotpath") {
			return true
		}
	}
	return false
}

// waivedLines collects the lines carrying a //tr:pagecopy-ok waiver.
func waivedLines(pass *analysis.Pass, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//tr:pagecopy-ok") {
				out[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

type checker struct {
	pass   *analysis.Pass
	vp     *types.Package
	waived map[int]bool
}

func (c *checker) report(n ast.Node, format string, args ...any) {
	line := c.pass.Fset.Position(n.Pos()).Line
	if c.waived[line] || c.waived[line-1] {
		return
	}
	c.pass.Reportf(n.Pos(), format, args...)
}

func (c *checker) check(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(c.pass, call)
		if fn == nil || fn.Pkg() != c.vp {
			return true
		}
		switch {
		case fn.Name() == "Read" && isPageReadSig(fn):
			c.report(call, "copy-based page Read on hot path: decode in place from a View (%s.View) instead, or waive with //tr:pagecopy-ok", c.vp.Name())
		case fn.Name() == "GetPageBuf":
			c.report(call, "page scratch rental on hot path: decode in place from a View instead of copying into GetPageBuf scratch, or waive with //tr:pagecopy-ok")
		}
		return true
	})
}

// isPageReadSig reports whether fn has the page-read method shape:
// two parameters — a defined integer page id type from the view
// package and a byte slice — returning exactly one error.
func isPageReadSig(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	params := sig.Params()
	results := sig.Results()
	if params.Len() != 2 || results.Len() != 1 {
		return false
	}
	named, ok := params.At(0).Type().(*types.Named)
	if !ok || named.Obj().Pkg() != fn.Pkg() {
		return false
	}
	if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return false
	}
	slice, ok := params.At(1).Type().Underlying().(*types.Slice)
	if !ok || !isByte(slice.Elem()) {
		return false
	}
	return isError(results.At(0).Type())
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

func isError(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// calleeFunc resolves the called function object, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
