package pagecopy_test

import (
	"testing"

	"temporalrank/internal/analysis/analysistest"
	"temporalrank/internal/analysis/pagecopy"
)

func TestPageCopy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), pagecopy.Analyzer, "pagecopytest", "selfviews", "noviews")
}
