// Package pagecopytest exercises the pagecopy analyzer against the
// real blockio vocabulary: hot-path functions must not fall back to
// copy-based page access when a zero-copy View exists.
package pagecopytest

import (
	"encoding/binary"

	"temporalrank/internal/blockio"
)

// hotInterfaceRead reads through the Device interface on a hot path:
// the canonical regression the analyzer exists to catch.
//
//tr:hotpath
func hotInterfaceRead(dev blockio.Device, id blockio.PageID, buf []byte) error {
	return dev.Read(id, buf) // want `copy-based page Read on hot path`
}

// hotConcreteRead reads through a concrete device type; the method
// still resolves to a blockio Read with the page-read shape.
//
//tr:hotpath
func hotConcreteRead(dev *blockio.MemDevice, id blockio.PageID, buf []byte) error {
	return dev.Read(id, buf) // want `copy-based page Read on hot path`
}

// hotScratch rents copy scratch on a hot path: the tell of a
// copy-based scan even before the Read lands.
//
//tr:hotpath
func hotScratch(dev blockio.Device, id blockio.PageID) (uint64, error) {
	buf := blockio.GetPageBuf(dev.BlockSize()) // want `page scratch rental on hot path`
	defer blockio.PutPageBuf(buf)
	if err := dev.Read(id, *buf); err != nil { // want `copy-based page Read on hot path`
		return 0, err
	}
	return binary.LittleEndian.Uint64(*buf), nil
}

// hotViewOK decodes in place from a view: the sanctioned shape.
//
//tr:hotpath
func hotViewOK(dev blockio.Device, id blockio.PageID) (uint64, error) {
	v, err := blockio.View(dev, id)
	if err != nil {
		return 0, err
	}
	defer v.Release()
	return binary.LittleEndian.Uint64(v.Data()), nil
}

// hotWaived materializes bytes deliberately — a copy-out boundary —
// and says so.
//
//tr:hotpath
func hotWaived(dev blockio.Device, id blockio.PageID, out []byte) error {
	//tr:pagecopy-ok copy-out API boundary: caller owns out
	return dev.Read(id, out)
}

// hotWaivedSameLine carries the waiver on the flagged line itself.
//
//tr:hotpath
func hotWaivedSameLine(dev blockio.Device, id blockio.PageID, out []byte) error {
	return dev.Read(id, out) //tr:pagecopy-ok copy-out API boundary: caller owns out
}

// coldRead is unannotated: copies off the hot path are fine.
func coldRead(dev blockio.Device, id blockio.PageID, buf []byte) error {
	return dev.Read(id, buf)
}

// hotOtherRead calls a Read that is not blockio's (io.Reader shape):
// must not be flagged.
//
//tr:hotpath
func hotOtherRead(r interface{ Read(p []byte) (int, error) }, p []byte) (int, error) {
	return r.Read(p)
}
