// Package selfviews declares the view vocabulary itself — PageView
// plus a Viewer interface — standing in for blockio. The declaring
// package hosts the copy-based fallbacks by design, so the analyzer
// must stay silent here even on annotated hot paths.
package selfviews

// PageID addresses one page.
type PageID int64

// PageView is a zero-copy page view.
type PageView struct{ data []byte }

// Data returns the viewed bytes.
func (v PageView) Data() []byte { return v.data }

// Viewer yields zero-copy views.
type Viewer interface {
	View(id PageID) (PageView, error)
}

// Device is the copy-based page store.
type Device interface {
	Read(id PageID, buf []byte) error
}

// GetPageBuf rents scratch.
func GetPageBuf(size int) *[]byte {
	b := make([]byte, size)
	return &b
}

// hotFallback is the universal copy-based fallback the engine
// degrades to: legitimate inside the declaring package.
//
//tr:hotpath
func hotFallback(dev Device, id PageID) (PageView, error) {
	buf := GetPageBuf(8)
	if err := dev.Read(id, *buf); err != nil {
		return PageView{}, err
	}
	return PageView{data: *buf}, nil
}
