// Package noviews has no view vocabulary in scope: the analyzer must
// not switch on, even for hot-path functions calling methods named
// Read.
package noviews

import "os"

//tr:hotpath
func hotFileRead(f *os.File, p []byte) (int, error) {
	return f.Read(p)
}
