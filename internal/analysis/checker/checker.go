// Package checker runs analyzers over loaded packages and collects
// their findings: the shared driver behind cmd/trlint.
package checker

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"temporalrank/internal/analysis"
	"temporalrank/internal/analysis/load"
)

// Finding is one reported diagnostic, resolved to a position.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Posn, f.Analyzer, f.Message)
}

// Run applies every analyzer to every unit and returns the surviving
// findings sorted by position. A finding is suppressed when the line
// it is reported on (or the line above it) carries a comment of the
// form
//
//	//trlint:ignore <analyzer> <reason>
//
// naming the reporting analyzer; the reason is mandatory by
// convention and the suppression applies to that line only.
func Run(units []*load.Package, fset *token.FileSet, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, u := range units {
		ignored := ignoreLines(fset, u.Files)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     u.Files,
				Pkg:       u.Types,
				TypesInfo: u.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				posn := fset.Position(d.Pos)
				key := ignoreKey{file: posn.Filename, line: posn.Line, analyzer: name}
				above := ignoreKey{file: posn.Filename, line: posn.Line - 1, analyzer: name}
				if ignored[key] || ignored[above] {
					return
				}
				findings = append(findings, Finding{Analyzer: name, Posn: posn, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("checker: %s on %s: %w", a.Name, u.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// ignoreLines indexes every //trlint:ignore comment by file, line and
// named analyzer.
func ignoreLines(fset *token.FileSet, files []*ast.File) map[ignoreKey]bool {
	out := make(map[ignoreKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//trlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				posn := fset.Position(c.Pos())
				out[ignoreKey{file: posn.Filename, line: posn.Line, analyzer: fields[0]}] = true
			}
		}
	}
	return out
}
