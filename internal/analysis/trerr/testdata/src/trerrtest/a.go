// Package trerrtest exercises the sentinel-comparison and missing-%w
// rules on both polarities.
package trerrtest

import (
	"errors"
	"fmt"
)

var (
	ErrNotFound = errors.New("not found")
	ErrClosed   = errors.New("closed")
)

func compare(err error) int {
	if err == ErrNotFound { // want `comparison with sentinel ErrNotFound breaks on wrapped errors: use errors\.Is\(err, ErrNotFound\)`
		return 1
	}
	if err != ErrClosed { // want `comparison with sentinel ErrClosed breaks on wrapped errors: use !errors\.Is\(err, ErrClosed\)`
		return 2
	}
	if ErrNotFound == err { // want `comparison with sentinel ErrNotFound breaks on wrapped errors`
		return 3
	}
	return 0
}

func classify(err error) int {
	switch err {
	case nil:
		return 0
	case ErrNotFound: // want `switch compares error against sentinel ErrNotFound by value`
		return 1
	}
	return 2
}

// good classifies the approved ways: nil checks and errors.Is.
func good(err error) bool {
	if err == nil {
		return true
	}
	return errors.Is(err, ErrNotFound)
}

// localCompare compares two non-sentinel error values; no sentinel is
// involved, so nothing is flagged.
func localCompare(a, b error) bool {
	return a == b
}

type scanError struct{ id int }

func (e *scanError) Error() string { return "scan" }

// Is implements the errors.Is protocol: here value equality against
// the sentinel IS the definition and must not be flagged.
func (e *scanError) Is(target error) bool {
	return target == ErrNotFound
}

func wrapDropped(err error) error {
	return fmt.Errorf("op failed: %v", err) // want `fmt\.Errorf formats err without %w`
}

func wrapKept(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

func wrapIndexed(err error) error {
	return fmt.Errorf("op %[1]d failed: %[2]w", 7, err)
}

func noErrorOperand(n int) error {
	return fmt.Errorf("bad count %d", n)
}
