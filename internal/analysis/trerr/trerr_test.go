package trerr_test

import (
	"testing"

	"temporalrank/internal/analysis/analysistest"
	"temporalrank/internal/analysis/trerr"
)

func TestTrerr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), trerr.Analyzer, "trerrtest")
}
