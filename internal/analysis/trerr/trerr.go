// Package trerr enforces the typed-sentinel error discipline built
// around internal/trerr: every layer wraps the shared sentinels, so
// callers must classify errors with errors.Is, never with pointer
// equality — and every fmt.Errorf that carries an error must wrap it
// with %w so the sentinel stays reachable.
//
// Flagged:
//
//   - err == ErrX / err != ErrX where ErrX is a package-level error
//     variable (a sentinel), including switch err { case ErrX: }.
//     Comparisons against nil are fine; so is == inside an
//     Is(error) bool method, where the equality IS the definition.
//   - fmt.Errorf with a constant format, at least one error-typed
//     operand, and no %w verb: the chain is broken and errors.Is can
//     no longer see through it.
package trerr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"temporalrank/internal/analysis"
)

// Analyzer is the trerr analysis.
var Analyzer = &analysis.Analyzer{
	Name: "trerr",
	Doc:  "flag sentinel error comparisons that bypass errors.Is and fmt.Errorf calls that drop %w",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if insideIsMethod(stack, pass) {
					return true
				}
				checkComparison(pass, errorIface, n.X, n.Y, n.OpPos, n.Op)
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				tv, ok := pass.TypesInfo.Types[n.Tag]
				if !ok || !types.Implements(tv.Type, errorIface) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := sentinel(pass, errorIface, e); ok {
							pass.Reportf(e.Pos(),
								"switch compares error against sentinel %s by value: use if errors.Is(err, %s) instead",
								name, name)
						}
					}
				}
			case *ast.CallExpr:
				checkErrorf(pass, errorIface, n)
			}
			return true
		})
	}
	return nil, nil
}

// insideIsMethod reports whether the innermost enclosing function
// declaration is an Is(error) bool method — the one place value
// equality against a sentinel is the point.
func insideIsMethod(stack []ast.Node, pass *analysis.Pass) bool {
	var fd *ast.FuncDecl
	for i := len(stack) - 1; i >= 0 && fd == nil; i-- {
		fd, _ = stack[i].(*ast.FuncDecl)
	}
	if fd == nil || fd.Name.Name != "Is" || fd.Recv == nil {
		return false
	}
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 1 && sig.Results().Len() == 1
}

func checkComparison(pass *analysis.Pass, errorIface *types.Interface, x, y ast.Expr, pos token.Pos, op token.Token) {
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		name, ok := sentinel(pass, errorIface, pair[0])
		if !ok {
			continue
		}
		otherTV, okTV := pass.TypesInfo.Types[pair[1]]
		if !okTV || otherTV.IsNil() || !types.Implements(otherTV.Type, errorIface) {
			continue
		}
		hint := "errors.Is(%s, %s)"
		if op == token.NEQ {
			hint = "!errors.Is(%s, %s)"
		}
		pass.Reportf(pos, "comparison with sentinel %s breaks on wrapped errors: use "+hint,
			name, types.ExprString(pair[1]), name)
		return
	}
}

// sentinel reports whether e names a package-level error variable.
func sentinel(pass *analysis.Pass, errorIface *types.Interface, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !types.Implements(v.Type(), errorIface) {
		return "", false
	}
	return types.ExprString(e), true
}

// checkErrorf flags fmt.Errorf calls whose constant format has no %w
// verb while an error operand is present.
func checkErrorf(pass *analysis.Pass, errorIface *types.Interface, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	formatTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || formatTV.Value == nil || formatTV.Value.Kind() != constant.String {
		return
	}
	if hasWrapVerb(constant.StringVal(formatTV.Value)) {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, ok := pass.TypesInfo.Types[arg]
		if ok && !tv.IsNil() && types.Implements(tv.Type, errorIface) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats %s without %%w: the wrapped sentinel becomes invisible to errors.Is",
				types.ExprString(arg))
			return
		}
	}
}

// hasWrapVerb reports whether format contains a %w (or %[n]w) verb.
func hasWrapVerb(format string) bool {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision, and argument indexes.
		for i < len(format) {
			c := format[i]
			if c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' || c == '.' || c == '*' ||
				c == '[' || c == ']' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) && format[i] == 'w' {
			return true
		}
	}
	return false
}
