package lockorder_test

import (
	"testing"

	"temporalrank/internal/analysis/analysistest"
	"temporalrank/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "blockio", "nodevice", "ranked")
}
