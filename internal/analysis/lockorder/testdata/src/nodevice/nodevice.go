// Package nodevice declares no Device interface, so the analyzer must
// ignore it entirely — even shapes that would be violations in blockio.
package nodevice

import "sync"

type closer interface {
	Close() error
}

type store struct {
	mu sync.Mutex
}

func (s *store) shutdown(c closer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.Close()
}
