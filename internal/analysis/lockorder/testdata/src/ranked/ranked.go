// Package ranked declares no Device interface but carries
// //tr:lockrank annotations, which alone must switch the analyzer on:
// ranked locks may only be acquired in strictly increasing rank order.
package ranked

import "sync"

type layer struct {
	swapMu sync.RWMutex //tr:lockrank 1
}

type table struct {
	mu sync.Mutex //tr:lockrank 2
}

type sidecar struct {
	mu sync.Mutex //tr:lockrank 2
}

type unranked struct {
	mu sync.Mutex
}

// increasingOK acquires rank 1 then rank 2: the documented order.
func increasingOK(l *layer, t *table) {
	l.swapMu.RLock()
	t.mu.Lock()
	t.mu.Unlock()
	l.swapMu.RUnlock()
}

// invertedBad acquires rank 1 while rank 2 is held.
func invertedBad(l *layer, t *table) {
	t.mu.Lock()
	l.swapMu.RLock() // want `acquiring l\.swapMu \(rank 1\) while t\.mu \(rank 2\) is held: locks must be acquired in increasing //tr:lockrank order`
	l.swapMu.RUnlock()
	t.mu.Unlock()
}

// equalBad acquires rank 2 while a different rank-2 class is held:
// equal ranks are an ordering violation even across classes.
func equalBad(t *table, s *sidecar) {
	t.mu.Lock()
	s.mu.Lock() // want `acquiring s\.mu \(rank 2\) while t\.mu \(rank 2\) is held: locks must be acquired in increasing //tr:lockrank order`
	s.mu.Unlock()
	t.mu.Unlock()
}

// unrankedOK: locks without a rank stay outside the rank rule.
func unrankedOK(l *layer, u *unranked) {
	u.mu.Lock()
	l.swapMu.RLock()
	l.swapMu.RUnlock()
	u.mu.Unlock()
}

func lockLayer(l *layer) {
	l.swapMu.Lock()
	l.swapMu.Unlock()
}

// calleeBad reaches the inverted acquisition one call deep.
func calleeBad(l *layer, t *table) {
	t.mu.Lock()
	lockLayer(l) // want `call to lockLayer, which acquires rank-1 lock l\.swapMu, while t\.mu \(rank 2\) is held: locks must be acquired in increasing //tr:lockrank order`
	t.mu.Unlock()
}

// releasedOK: the rank-2 lock is released before rank 1 is taken.
func releasedOK(l *layer, t *table) {
	t.mu.Lock()
	t.mu.Unlock()
	l.swapMu.RLock()
	l.swapMu.RUnlock()
}
