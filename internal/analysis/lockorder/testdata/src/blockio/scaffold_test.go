package blockio

// _test.go files are exempt from the lock-ordering rule: test
// scaffolding may take shortcuts the engine must not. This violation
// must produce no diagnostic.

func (p *pool) testOnlyHelper(id int) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p.dev.Alloc()
}
