// Package blockio is a miniature replica of the engine's buffer-pool
// shapes: a Device interface with the full method set (which switches
// the analyzer on), striped shard locks, and a pool-wide lock.
package blockio

import "sync"

type Device interface {
	BlockSize() int
	Read(id int, p []byte) error
	Write(id int, p []byte) error
	Alloc() (int, error)
	Free(id int) error
	Close() error
}

type shard struct {
	mu    sync.Mutex
	slots map[int]int
}

type pool struct {
	mu     sync.Mutex
	dev    Device
	shards []shard
}

func (p *pool) shardFor(id int) *shard { return &p.shards[id%len(p.shards)] }
