package blockio

// The legal patterns the real buffer pool uses. None of these may be
// flagged.

// alloc runs dev.Alloc strictly before taking the shard lock — the
// sanctioned ordering.
func (p *pool) alloc() (int, error) {
	id, err := p.dev.Alloc()
	if err != nil {
		return 0, err
	}
	sh := p.shardFor(id)
	sh.mu.Lock()
	sh.slots[id] = 0
	sh.mu.Unlock()
	return id, nil
}

// read is the hit/miss shape: early unlock and return on the hit
// branch, a deferred unlock over the data-path fill on the miss branch
// — exactly one lock held at the dev.Read.
func (p *pool) read(id int, buf []byte) error {
	sh := p.shardFor(id)
	sh.mu.Lock()
	if slot, ok := sh.slots[id]; ok {
		_ = slot
		sh.mu.Unlock()
		return nil
	}
	defer sh.mu.Unlock()
	return p.dev.Read(id, buf)
}

// flush locks shards strictly sequentially: each iteration releases
// before the next acquires, so no two shard locks are ever held.
func (p *pool) flush(bufs [][]byte) error {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		if err := p.dev.Write(i, bufs[i]); err != nil {
			sh.mu.Unlock()
			return err
		}
		sh.mu.Unlock()
	}
	return nil
}

// background spawns a goroutine: it starts with none of this frame's
// locks held, so its device call is not a violation here.
func (p *pool) background(id int) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	go func() {
		p.dev.Free(id)
	}()
}
