package blockio

// Every rule violated once, directly or through a callee.

func (p *pool) allocUnderLock(id int) (int, error) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return p.dev.Alloc() // want `allocation-path device call p\.dev\.Alloc while lock sh\.mu is held`
}

func (p *pool) lockTwoShards(a, b int) {
	x := p.shardFor(a)
	y := p.shardFor(b)
	x.mu.Lock()
	y.mu.Lock() // want `acquiring y\.mu while x\.mu is already held`
	y.mu.Unlock()
	x.mu.Unlock()
}

func (p *pool) readUnderTwoLocks(id int, buf []byte) error {
	sh := p.shardFor(id)
	p.mu.Lock()
	sh.mu.Lock()
	err := p.dev.Read(id, buf) // want `data-path device call p\.dev\.Read while 2 locks are held`
	sh.mu.Unlock()
	p.mu.Unlock()
	return err
}

// reclaim is clean on its own; the violation appears at the locked
// call site, through its summary.
func (p *pool) reclaim(id int) {
	p.dev.Free(id)
}

func (p *pool) evictLocked(id int) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p.reclaim(id) // want `call to reclaim, which reaches allocation-path device call p\.dev\.Free, while lock sh\.mu is held`
}

func (p *pool) lockShardZero() {
	p.shards[0].mu.Lock()
	p.shards[0].mu.Unlock()
}

func (p *pool) nestedLock(id int) {
	sh := p.shardFor(id)
	sh.mu.Lock()
	p.lockShardZero() // want `call to lockShardZero, which acquires blockio\.shard\.mu lock p\.shards\[0\]\.mu, while sh\.mu is already held`
	sh.mu.Unlock()
}
