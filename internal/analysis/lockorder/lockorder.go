// Package lockorder enforces the buffer-pool lock-ordering rule
// documented on blockio.BufferPool:
//
//   - allocation-path device calls (Alloc, Free, Close) must run with
//     no shard lock held;
//   - data-path device calls (Read, Write) may run under at most one
//     held lock;
//   - no function may hold two locks of the same class (for example
//     two poolShard mutexes) at once.
//
// It also enforces declared lock ranks: a mutex struct field annotated
//
//	mu sync.Mutex //tr:lockrank N
//
// joins rank class N, and no function may acquire a ranked lock while
// holding another ranked lock of equal or higher rank — ranks must
// strictly increase along any acquisition chain (in this module,
// memtable's generation-swap lock ranks below its stripe locks).
//
// The analyzer self-scopes: it only inspects packages that declare a
// Device interface with the Read/Write/Alloc/Free/Close method set
// (in this module, internal/blockio) or at least one //tr:lockrank
// annotation (internal/memtable), and it skips _test.go files —
// the invariant governs engine code, not test scaffolding. "Device
// call" means a call whose receiver's static type implements that
// interface. Held locks are tracked per function over sync.Mutex and
// sync.RWMutex values, conservatively: branches merge by union, a
// branch ending in return/break/continue is discarded, and a deferred
// Unlock keeps its lock held to the end of the function. Calls to
// same-package functions are checked against a transitive summary of
// the callee (locks it may acquire, allocation-path device calls it
// may reach), so a violation hidden one call deep is still reported.
package lockorder

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"temporalrank/internal/analysis"
)

// Analyzer is the lockorder analysis.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "check blockio's shard-lock/device-call ordering rule and //tr:lockrank acquisition order",
	Run:  run,
}

var allocPath = map[string]bool{"Alloc": true, "Free": true, "Close": true}
var dataPath = map[string]bool{"Read": true, "Write": true}

// summary is what a package function may do, transitively.
type summary struct {
	// alloc is a witness chain ("f → dev.Alloc") when the function may
	// reach an allocation-path device call.
	alloc string
	// locks maps lock classes the function may acquire to a witness
	// expression.
	locks map[string]string
	// callees are same-package functions called directly.
	callees []*types.Func
}

type checker struct {
	pass      *analysis.Pass
	iface     *types.Interface // nil in rank-only packages
	ranks     map[string]int   // lock class -> declared //tr:lockrank
	summaries map[*types.Func]*summary
	decls     map[*types.Func]*ast.FuncDecl
}

func run(pass *analysis.Pass) (any, error) {
	iface := deviceInterface(pass.Pkg)
	ranks := collectRanks(pass)
	if iface == nil && len(ranks) == 0 {
		return nil, nil
	}
	c := &checker{
		pass:      pass,
		iface:     iface,
		ranks:     ranks,
		summaries: make(map[*types.Func]*summary),
		decls:     make(map[*types.Func]*ast.FuncDecl),
	}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		if c.testFile(f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.decls[obj] = fd
					decls = append(decls, fd)
				}
			}
		}
	}
	c.buildSummaries()
	for _, fd := range decls {
		c.checkFunc(fd)
	}
	return nil, nil
}

func (c *checker) testFile(f *ast.File) bool {
	return strings.HasSuffix(c.pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// deviceInterface returns the package's Device interface when it has
// the full Read/Write/Alloc/Free/Close method set, else nil.
func deviceInterface(pkg *types.Package) *types.Interface {
	obj, ok := pkg.Scope().Lookup("Device").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	for name := range allocPath {
		if !hasMethod(iface, name) {
			return nil
		}
	}
	for name := range dataPath {
		if !hasMethod(iface, name) {
			return nil
		}
	}
	return iface
}

func hasMethod(iface *types.Interface, name string) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// collectRanks gathers //tr:lockrank annotations from mutex struct
// fields (non-test files), keyed by the same lock class lockClass
// assigns to acquisitions of that field.
func collectRanks(pass *analysis.Pass) map[string]int {
	ranks := make(map[string]int)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				owner := stripTypeArgs(types.TypeString(obj.Type(), nil))
				for _, field := range st.Fields.List {
					tv, ok := pass.TypesInfo.Types[field.Type]
					if !ok || !isMutex(tv.Type) {
						continue
					}
					rank, ok := lockrankComment(field)
					if !ok {
						continue
					}
					for _, name := range field.Names {
						ranks[owner+"."+name.Name] = rank
					}
				}
			}
		}
	}
	return ranks
}

// lockrankComment parses a field's //tr:lockrank N line or doc comment.
func lockrankComment(field *ast.Field) (int, bool) {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, cm := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
			rest, ok := strings.CutPrefix(text, "tr:lockrank")
			if !ok {
				continue
			}
			rank, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				continue
			}
			return rank, true
		}
	}
	return 0, false
}

// stripTypeArgs drops a generic type's argument list so that ranks
// declared on a parameterized struct match acquisitions from any
// instantiation (and from methods that rename the type parameters).
func stripTypeArgs(s string) string {
	if i := strings.IndexByte(s, '['); i >= 0 && strings.HasSuffix(s, "]") {
		return s[:i]
	}
	return s
}

// deviceCall classifies call as a device method call. kind is "alloc"
// or "data".
func (c *checker) deviceCall(call *ast.CallExpr) (kind, desc string, ok bool) {
	if c.iface == nil {
		return "", "", false
	}
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	name := sel.Sel.Name
	if !allocPath[name] && !dataPath[name] {
		return "", "", false
	}
	selection, okSel := c.pass.TypesInfo.Selections[sel]
	if !okSel || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	recv := selection.Recv()
	if !types.Implements(recv, c.iface) && !types.Implements(types.NewPointer(recv), c.iface) {
		return "", "", false
	}
	kind = "data"
	if allocPath[name] {
		kind = "alloc"
	}
	return kind, types.ExprString(sel), true
}

// lockOp classifies call as a mutex operation: op is "lock" or
// "unlock", key identifies the mutex expression, class its lock class
// (owner type and field for selector-rooted locks).
func (c *checker) lockOp(call *ast.CallExpr) (op, key, class string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", "", "", false
	}
	tv, okType := c.pass.TypesInfo.Types[sel.X]
	if !okType || !isMutex(tv.Type) {
		return "", "", "", false
	}
	key = types.ExprString(sel.X)
	class = lockClass(c.pass, sel.X)
	return op, key, class, true
}

func isMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockClass names the "kind" of lock an expression denotes: for a
// field selector like sh.mu it is the owner type plus field name (so
// two different poolShard values' mu fields share a class); for a
// plain variable it is the variable's type.
func lockClass(pass *analysis.Pass, x ast.Expr) string {
	if sel, ok := x.(*ast.SelectorExpr); ok {
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok {
			t := tv.Type
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			return stripTypeArgs(types.TypeString(t, nil)) + "." + sel.Sel.Name
		}
	}
	if tv, ok := pass.TypesInfo.Types[x]; ok {
		return "var " + types.TypeString(tv.Type, nil)
	}
	return "var"
}

// staticCallee resolves a call to a same-package function with a body.
func (c *checker) staticCallee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if selection, ok := c.pass.TypesInfo.Selections[fun]; ok && selection.Kind() == types.MethodVal {
			obj = selection.Obj()
		} else {
			obj = c.pass.TypesInfo.Uses[fun.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != c.pass.Pkg {
		return nil
	}
	if _, ok := c.decls[fn]; !ok {
		return nil
	}
	return fn
}

// buildSummaries computes, to a fixed point, which lock classes and
// allocation-path device calls each package function may reach.
// Function literals are excluded: a literal generally runs on another
// goroutine or after the enclosing frame's locks are released, and
// including them would flag the legal deferred-unlock pattern.
func (c *checker) buildSummaries() {
	for fn, fd := range c.decls {
		s := &summary{locks: make(map[string]string)}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if kind, desc, ok := c.deviceCall(call); ok && kind == "alloc" {
				s.alloc = desc
			}
			if op, key, class, ok := c.lockOp(call); ok && op == "lock" {
				s.locks[class] = key
			}
			if callee := c.staticCallee(call); callee != nil {
				s.callees = append(s.callees, callee)
			}
			return true
		})
		c.summaries[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for fn, s := range c.summaries {
			for _, callee := range s.callees {
				cs := c.summaries[callee]
				if cs == nil {
					continue
				}
				if s.alloc == "" && cs.alloc != "" {
					s.alloc = callee.Name() + " → " + cs.alloc
					changed = true
				}
				for class, key := range cs.locks {
					if _, ok := s.locks[class]; !ok {
						s.locks[class] = key
						changed = true
					}
				}
			}
			c.summaries[fn] = s
		}
	}
}

// state is the set of locks held at a program point.
type state struct {
	held       map[string]string // key -> class
	terminated bool
}

func newState() *state { return &state{held: make(map[string]string)} }

func (s *state) clone() *state {
	n := newState()
	for k, v := range s.held {
		n.held[k] = v
	}
	n.terminated = s.terminated
	return n
}

// merge replaces s with the union of the non-terminated branch
// states; s terminates only when every branch did.
func (s *state) merge(branches ...*state) {
	allDone := true
	union := make(map[string]string)
	for _, b := range branches {
		if b.terminated {
			continue
		}
		allDone = false
		for k, v := range b.held {
			union[k] = v
		}
	}
	s.held = union
	s.terminated = allDone
}

func (s *state) anyHeld() (key string, ok bool) {
	for k := range s.held {
		return k, true
	}
	return "", false
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	st := newState()
	c.walkStmt(fd.Body, st)
}

func (c *checker) walkStmt(stmt ast.Stmt, st *state) {
	if stmt == nil || st.terminated {
		return
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			if st.terminated {
				return
			}
			c.walkStmt(inner, st)
		}
	case *ast.ExprStmt:
		c.walkExpr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.walkExpr(e, st)
		}
		for _, e := range s.Lhs {
			c.walkExpr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.walkExpr(e, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.walkExpr(s.X, st)
	case *ast.SendStmt:
		c.walkExpr(s.Chan, st)
		c.walkExpr(s.Value, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.walkExpr(e, st)
		}
		st.terminated = true
	case *ast.BranchStmt:
		st.terminated = true
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		c.walkStmt(s.Init, st)
		c.walkExpr(s.Cond, st)
		then := st.clone()
		c.walkStmt(s.Body, then)
		alt := st.clone()
		if s.Else != nil {
			c.walkStmt(s.Else, alt)
		}
		st.merge(then, alt)
	case *ast.ForStmt:
		c.walkStmt(s.Init, st)
		c.walkExpr(s.Cond, st)
		body := st.clone()
		c.walkStmt(s.Body, body)
		c.walkStmt(s.Post, body)
		// The body may run zero times; break/return inside it discards
		// its end state, so the pre-loop state always survives.
		st.merge(st.clone(), body)
	case *ast.RangeStmt:
		c.walkExpr(s.X, st)
		body := st.clone()
		c.walkStmt(s.Body, body)
		st.merge(st.clone(), body)
	case *ast.SwitchStmt:
		c.walkStmt(s.Init, st)
		c.walkExpr(s.Tag, st)
		c.walkCases(s.Body, st)
	case *ast.TypeSwitchStmt:
		c.walkStmt(s.Init, st)
		c.walkCases(s.Body, st)
	case *ast.SelectStmt:
		c.walkCases(s.Body, st)
	case *ast.DeferStmt:
		c.walkDefer(s.Call, st)
	case *ast.GoStmt:
		// The spawned goroutine starts with no locks of this frame held.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmt(lit.Body, newState())
		}
		for _, arg := range s.Call.Args {
			c.walkExpr(arg, st)
		}
	}
}

// walkCases walks a switch/select body: each clause runs from the
// same entry state and the results merge.
func (c *checker) walkCases(body *ast.BlockStmt, st *state) {
	branches := []*state{st.clone()} // the no-clause-taken path
	for _, clause := range body.List {
		b := st.clone()
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.walkExpr(e, b)
			}
			for _, inner := range cl.Body {
				if b.terminated {
					break
				}
				c.walkStmt(inner, b)
			}
		case *ast.CommClause:
			c.walkStmt(cl.Comm, b)
			for _, inner := range cl.Body {
				if b.terminated {
					break
				}
				c.walkStmt(inner, b)
			}
		}
		branches = append(branches, b)
	}
	st.merge(branches...)
}

// walkDefer handles a deferred call: a deferred Unlock keeps the lock
// held to function exit (so nothing is removed from the state), and
// any other deferred work is checked against the current held set.
func (c *checker) walkDefer(call *ast.CallExpr, st *state) {
	if op, _, _, ok := c.lockOp(call); ok && op == "unlock" {
		return
	}
	if _, ok := call.Fun.(*ast.FuncLit); ok {
		// Commonly the unlock-at-exit loop; its Unlocks run at exit, so
		// there is nothing to check here and nothing to release now.
		return
	}
	c.checkCall(call, st)
}

// walkExpr visits every call inside e in evaluation order, updating
// the held set as locks are taken and released.
func (c *checker) walkExpr(e ast.Expr, st *state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Not invoked here (an immediately-invoked literal is the
			// CallExpr case below): it runs in an unknown context, so
			// check its body against an empty held set.
			c.walkStmt(n.Body, newState())
			return false
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal: runs right here, with the
				// current locks held.
				for _, arg := range n.Args {
					c.walkExpr(arg, st)
				}
				c.walkStmt(lit.Body, st)
				return false
			}
			c.checkCall(n, st)
		}
		return true
	})
}

// checkCall applies the ordering rules to one call at one state.
func (c *checker) checkCall(call *ast.CallExpr, st *state) {
	if op, key, class, ok := c.lockOp(call); ok {
		if op == "unlock" {
			delete(st.held, key)
			return
		}
		for heldKey, heldClass := range st.held {
			if heldClass == class {
				c.pass.Reportf(call.Pos(),
					"acquiring %s while %s is already held: no function may hold two %s locks at once",
					key, heldKey, class)
				continue
			}
			if rank, heldRank, ok := c.rankPair(class, heldClass); ok && heldRank >= rank {
				c.pass.Reportf(call.Pos(),
					"acquiring %s (rank %d) while %s (rank %d) is held: locks must be acquired in increasing //tr:lockrank order",
					key, rank, heldKey, heldRank)
			}
		}
		st.held[key] = class
		return
	}
	if kind, desc, ok := c.deviceCall(call); ok {
		heldKey, anyHeld := st.anyHeld()
		switch {
		case kind == "alloc" && anyHeld:
			c.pass.Reportf(call.Pos(),
				"allocation-path device call %s while lock %s is held: Alloc/Free/Close must run with no shard lock held",
				desc, heldKey)
		case kind == "data" && len(st.held) > 1:
			c.pass.Reportf(call.Pos(),
				"data-path device call %s while %d locks are held: Read/Write may run under at most one shard lock",
				desc, len(st.held))
		}
		return
	}
	if callee := c.staticCallee(call); callee != nil {
		s := c.summaries[callee]
		heldKey, anyHeld := st.anyHeld()
		if s == nil || !anyHeld {
			return
		}
		if s.alloc != "" {
			c.pass.Reportf(call.Pos(),
				"call to %s, which reaches allocation-path device call %s, while lock %s is held",
				callee.Name(), s.alloc, heldKey)
		}
		for class, witness := range s.locks {
			for heldKey, heldClass := range st.held {
				if heldClass == class {
					c.pass.Reportf(call.Pos(),
						"call to %s, which acquires %s lock %s, while %s is already held",
						callee.Name(), class, witness, heldKey)
					continue
				}
				if rank, heldRank, ok := c.rankPair(class, heldClass); ok && heldRank >= rank {
					c.pass.Reportf(call.Pos(),
						"call to %s, which acquires rank-%d lock %s, while %s (rank %d) is held: locks must be acquired in increasing //tr:lockrank order",
						callee.Name(), rank, witness, heldKey, heldRank)
				}
			}
		}
	}
}

// rankPair returns both classes' declared ranks when each has one.
func (c *checker) rankPair(class, heldClass string) (rank, heldRank int, ok bool) {
	rank, ok = c.ranks[class]
	if !ok {
		return 0, 0, false
	}
	heldRank, ok = c.ranks[heldClass]
	return rank, heldRank, ok
}
