// Package analysistest runs an analyzer over golden test packages and
// checks its diagnostics against expectations written in the sources,
// mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library alone.
//
// A test package lives under testdata/src/<path>/ as ordinary Go
// files whose imports must resolve to the standard library. A line
// that should be flagged carries a trailing comment of the form
//
//	x := fmt.Sprintf("%d", n) // want `Sprintf`
//
// with one or more backquoted or double-quoted regular expressions,
// each of which must match a distinct diagnostic reported on that
// line. Diagnostics on lines with no matching expectation, and
// expectations no diagnostic matched, fail the test.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"temporalrank/internal/analysis"
	"temporalrank/internal/analysis/load"
)

// TestData returns the absolute path of the caller's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads testdata/src/<path> for each path, applies the analyzer,
// and reports expectation mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		runOne(t, filepath.Join(testdata, "src", path), a)
	}
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}

	exports := load.NewExports("")
	var imports []string
	for _, f := range files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports = append(imports, p)
			}
		}
	}
	if err := exports.Prefetch(imports); err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: exports.Importer(fset)}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: type-checking %s: %v", dir, err)
	}

	// Collect // want expectations, keyed by (file, line).
	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				key := lineKey{file: posn.Filename, line: posn.Line}
				for _, pat := range parseWants(t, posn, text) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, pat, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := lineKey{file: posn.Filename, line: posn.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched `%s`", key.file, key.line, w.rx)
			}
		}
	}
}

// parseWants extracts the quoted patterns following "// want".
func parseWants(t *testing.T, posn token.Position, text string) []string {
	t.Helper()
	var pats []string
	rest := strings.TrimSpace(text)
	for rest != "" {
		var quote byte
		switch rest[0] {
		case '`', '"':
			quote = rest[0]
		default:
			t.Fatalf("%s: malformed want expectation near %q", posn, rest)
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", posn, rest)
		}
		pats = append(pats, rest[1:1+end])
		rest = strings.TrimSpace(rest[2+end:])
	}
	return pats
}
