// Package load type-checks this module's packages for static
// analysis, using only the standard library and the go command.
//
// Module packages are parsed and type-checked from source in
// dependency order; packages outside the module (the standard
// library) are imported from compiler export data located with
// `go list -export`, exactly as go vet's driver does. The result is a
// set of analysis units — one per package, plus one per external test
// package — sharing a single token.FileSet and a consistent
// types.Package identity for every cross-package reference.
package load

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one analysis unit: a type-checked set of files. A module
// package with in-package test files yields a unit containing
// GoFiles+TestGoFiles; its external (_test package) files, if any,
// form a second unit with IsXTest set.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	IsXTest    bool

	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath   string
	Name         string
	Dir          string
	Standard     bool
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Module       *struct {
		Path      string
		GoVersion string
	}
	Error *struct{ Err string }
}

// Exports locates compiler export data for non-module packages via
// `go list -export`, batching and caching lookups. It is safe for
// concurrent use and usable on its own (the analysistest harness uses
// it to resolve testdata imports of the standard library).
type Exports struct {
	Dir string // working directory for the go command ("" = cwd)

	mu    sync.Mutex
	files map[string]string // import path -> export file ("" = known absent)
}

// NewExports returns an export-data locator running go commands in dir.
func NewExports(dir string) *Exports {
	return &Exports{Dir: dir, files: make(map[string]string)}
}

// Prefetch resolves export files for paths in one go command
// invocation. Unresolvable paths are recorded as absent.
func (e *Exports) Prefetch(paths []string) error {
	var missing []string
	e.mu.Lock()
	for _, p := range paths {
		if _, ok := e.files[p]; !ok {
			missing = append(missing, p)
		}
	}
	e.mu.Unlock()
	if len(missing) == 0 {
		return nil
	}
	args := append([]string{"list", "-e", "-export", "-f", "{{.ImportPath}}\t{{.Export}}"}, missing...)
	cmd := exec.Command("go", args...)
	cmd.Dir = e.Dir
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("load: go %s: %w", strings.Join(args[:4], " "), err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, line := range strings.Split(strings.TrimSuffix(string(out), "\n"), "\n") {
		path, file, ok := strings.Cut(line, "\t")
		if ok {
			e.files[path] = file
		}
	}
	for _, p := range missing {
		if _, ok := e.files[p]; !ok {
			e.files[p] = ""
		}
	}
	return nil
}

// Lookup returns a reader over the export data for path, in the shape
// go/importer's gc lookup expects. Unknown paths fall back to a
// one-off go list call (transitive dependencies of prefetched
// packages resolve through here).
func (e *Exports) Lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	file, ok := e.files[path]
	e.mu.Unlock()
	if !ok {
		if err := e.Prefetch([]string{path}); err != nil {
			return nil, err
		}
		e.mu.Lock()
		file = e.files[path]
		e.mu.Unlock()
	}
	if file == "" {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(file)
}

// Importer returns a types.Importer resolving every path through this
// locator's export data, sharing one package cache so type identity
// is consistent across every unit checked against it.
func (e *Exports) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", e.Lookup)
}

// moduleImporter resolves module-internal imports to from-source
// packages (checking them on demand, so transitive dependencies get
// the same identity as direct ones) and everything else through
// export data.
type moduleImporter struct {
	l *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if _, ok := m.l.metas[path]; ok {
		return m.l.checkSource(path)
	}
	return m.l.gc.Import(path)
}

// Loader loads and type-checks module packages.
type Loader struct {
	Dir  string // module directory (working dir for go commands)
	Fset *token.FileSet

	exports   *Exports
	gc        types.Importer
	goVersion string
	files     map[string]*ast.File // absolute filename -> parsed file
	plain     map[string]*types.Package
	metas     map[string]*listPkg
}

// NewLoader creates a loader rooted at dir.
func NewLoader(dir string) *Loader {
	fset := token.NewFileSet()
	ex := NewExports(dir)
	return &Loader{
		Dir:     dir,
		Fset:    fset,
		exports: ex,
		gc:      ex.Importer(fset),
		files:   make(map[string]*ast.File),
		plain:   make(map[string]*types.Package),
		metas:   make(map[string]*listPkg),
	}
}

// Load lists patterns with the go command and returns one analysis
// unit per matched module package (GoFiles plus in-package test
// files) and one per external test package.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	targets, err := l.list(append([]string{"list", "-e", "-json"}, patterns...))
	if err != nil {
		return nil, err
	}
	// Module dependencies of the targets must type-check from source
	// too; -deps lists them (and the standard library, filtered below).
	deps, err := l.list(append([]string{"list", "-e", "-json", "-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	for _, p := range deps {
		if !p.Standard && p.Module != nil {
			l.metas[p.ImportPath] = p
		}
	}
	var modTargets []*listPkg
	for _, p := range targets {
		if p.Error != nil && p.Name == "" {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Standard || p.Module == nil {
			continue
		}
		l.metas[p.ImportPath] = p
		modTargets = append(modTargets, p)
		if l.goVersion == "" && p.Module.GoVersion != "" {
			l.goVersion = "go" + strings.TrimPrefix(p.Module.GoVersion, "go")
		}
	}
	if len(modTargets) == 0 {
		return nil, fmt.Errorf("load: no module packages match %v", patterns)
	}
	// One batched lookup for every non-module import any unit needs.
	var std []string
	for _, p := range l.metas {
		for _, imps := range [][]string{p.Imports, p.TestImports, p.XTestImports} {
			for _, imp := range imps {
				if _, ok := l.metas[imp]; !ok && imp != "C" && imp != p.ImportPath {
					std = append(std, imp)
				}
			}
		}
	}
	if err := l.exports.Prefetch(std); err != nil {
		return nil, err
	}

	var units []*Package
	for _, p := range modTargets {
		unit, err := l.checkUnit(p, p.Name, append(p.GoFiles, p.TestGoFiles...), false)
		if err != nil {
			return nil, err
		}
		units = append(units, unit)
		if len(p.XTestGoFiles) > 0 {
			xunit, err := l.checkUnit(p, p.Name+"_test", p.XTestGoFiles, true)
			if err != nil {
				return nil, err
			}
			units = append(units, xunit)
		}
	}
	return units, nil
}

// list runs one go list command and decodes its JSON stream.
func (l *Loader) list(args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkSource type-checks the plain (non-test) form of a module
// package from source, memoized; cross-package imports inside the
// module resolve through here so every unit sees one identity per
// package.
func (l *Loader) checkSource(path string) (*types.Package, error) {
	if pkg, ok := l.plain[path]; ok {
		return pkg, nil
	}
	meta, ok := l.metas[path]
	if !ok {
		return l.gc.Import(path)
	}
	files, err := l.parse(meta.Dir, meta.GoFiles)
	if err != nil {
		return nil, err
	}
	conf := l.config()
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	l.plain[path] = pkg
	return pkg, nil
}

// checkUnit builds one analysis unit over filenames, first making sure
// every module import has its plain form checked.
func (l *Loader) checkUnit(meta *listPkg, name string, filenames []string, xtest bool) (*Package, error) {
	if len(meta.CgoFiles) > 0 {
		return nil, fmt.Errorf("load: %s: cgo packages are not supported", meta.ImportPath)
	}
	for _, imps := range [][]string{meta.Imports, meta.TestImports, meta.XTestImports} {
		for _, imp := range imps {
			if _, ok := l.metas[imp]; ok {
				if _, err := l.checkSource(imp); err != nil {
					return nil, err
				}
			}
		}
	}
	files, err := l.parse(meta.Dir, filenames)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := l.config()
	path := meta.ImportPath
	if xtest {
		path += "_test"
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	return &Package{
		ImportPath: meta.ImportPath,
		Name:       name,
		Dir:        meta.Dir,
		IsXTest:    xtest,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}, nil
}

// config assembles the shared type-checker configuration.
func (l *Loader) config() types.Config {
	return types.Config{
		Importer:  &moduleImporter{l: l},
		GoVersion: l.goVersion,
	}
}

// parse parses dir/filenames with comments, memoized on the absolute
// path so a file shared between the plain and test-augmented forms of
// a package is parsed once.
func (l *Loader) parse(dir string, filenames []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		abs := fn
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(dir, fn)
		}
		if f, ok := l.files[abs]; ok {
			files = append(files, f)
			continue
		}
		f, err := parser.ParseFile(l.Fset, abs, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		l.files[abs] = f
		files = append(files, f)
	}
	return files, nil
}
